package bce

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// batchScenarios builds n independent scenarios with derived seeds.
func batchScenarios(n int, days float64) []*Scenario {
	scns := make([]*Scenario, n)
	for i := range scns {
		s := twoProjectScenario()
		s.Name = fmt.Sprintf("batch-%d", i)
		s.DurationDays = days
		s.Seed = DeriveSeed(3, i)
		scns[i] = s
	}
	return scns
}

// RunBatch with several workers must reproduce the sequential Run path
// bit for bit, scenario by scenario.
func TestRunBatchMatchesSequential(t *testing.T) {
	scns := batchScenarios(6, 1)
	want := make([]*Result, len(scns))
	for i, s := range scns {
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	results, err := RunBatch(context.Background(), scns, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(scns) {
		t.Fatalf("got %d results for %d scenarios", len(results), len(scns))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %d: %v", i, r.Err)
		}
		if r.Index != i || r.Label != scns[i].Name {
			t.Fatalf("scenario %d misattributed: index=%d label=%q", i, r.Index, r.Label)
		}
		if !reflect.DeepEqual(r.Result.Metrics, want[i].Metrics) {
			t.Errorf("scenario %d: parallel metrics differ from sequential run", i)
		}
		if r.Result.Events != want[i].Events {
			t.Errorf("scenario %d: %d events parallel vs %d sequential", i, r.Result.Events, want[i].Events)
		}
	}
}

// Cancelling the context must return promptly with a wrapped
// context.Canceled, even for emulations that would run much longer.
func TestRunBatchCancellation(t *testing.T) {
	scns := batchScenarios(8, 3650) // ten simulated years each
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	opts := []BatchOption{
		WithWorkers(2),
		WithProgress(func(p BatchProgress) {
			if p.Started > 0 && fired.CompareAndSwap(false, true) {
				cancel()
			}
		}),
	}
	begin := time.Now()
	results, err := RunBatch(ctx, scns, opts...)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if d := time.Since(begin); d > 30*time.Second {
		t.Fatalf("cancellation took %v; want prompt return", d)
	}
	if len(results) != len(scns) {
		t.Fatalf("got %d results for %d scenarios", len(results), len(scns))
	}
	cancel()
}

// RunContext on an expired deadline must not run the emulation.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RunContext(ctx, twoProjectScenario()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// An invalid scenario inside a batch fails that run without poisoning
// its siblings (no fail-fast by default).
func TestRunBatchPartialFailure(t *testing.T) {
	scns := batchScenarios(3, 1)
	scns[1] = &Scenario{Name: "broken"}
	results, err := RunBatch(context.Background(), scns, WithWorkers(2))
	if err != nil {
		t.Fatalf("batch error without fail-fast: %v", err)
	}
	if results[1].Err == nil {
		t.Fatal("broken scenario reported no error")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Result == nil {
			t.Fatalf("scenario %d should have completed: %v", i, results[i].Err)
		}
	}
}

// On machines with enough cores, the parallel engine must beat the
// sequential path by a wide margin (ISSUE acceptance: ≥2x on ≥4 cores).
func TestRunBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >=4 CPUs for a meaningful speedup test, have %d", runtime.NumCPU())
	}
	scns := batchScenarios(32, 2)
	begin := time.Now()
	if _, err := RunBatch(context.Background(), scns, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	seq := time.Since(begin)
	begin = time.Now()
	if _, err := RunBatch(context.Background(), scns, WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	par := time.Since(begin)
	if speedup := seq.Seconds() / par.Seconds(); speedup < 2 {
		t.Errorf("4-worker speedup %.2fx, want >=2x (seq %v, par %v)", speedup, seq, par)
	}
}
