// server_study exercises the EmBOINC-style server-side emulator
// (paper §6.1/§6.2): a project server with work generator, feeder
// cache, replication/quorum validation and transitioner timeouts,
// serving a statistical population of volunteer hosts. The study
// sweeps the replication level — the classic volunteer-computing
// trade-off between result confidence and wasted computation.
//
//	go run ./examples/server_study
package main

import (
	"fmt"

	"bce/internal/emserver"
)

func main() {
	fmt.Println("200 hosts, 5% abandonment, 3% error rate, 10-day emulation")
	fmt.Println()
	fmt.Printf("%-12s %12s %10s %14s %12s\n",
		"replication", "valid WU/day", "waste", "turnaround (h)", "timeouts")
	for _, c := range []struct {
		label          string
		target, quorum int
	}{
		{"1-of-1", 1, 1},
		{"2-of-2", 2, 2},
		{"2-of-3", 3, 2}, // extra replica cuts turnaround, costs waste
		{"3-of-3", 3, 3},
	} {
		st := emserver.Run(emserver.Params{
			Seed:           1,
			NHosts:         200,
			TargetNResults: c.target,
			MinQuorum:      c.quorum,
		})
		fmt.Printf("%-12s %12.1f %10.3f %14.1f %12d\n",
			c.label, st.Throughput(10*86400), st.WasteFraction(),
			st.Turnaround.Mean()/3600, st.TimedOut)
	}
	fmt.Println()
	fmt.Println("higher replication buys result confidence with duplicated")
	fmt.Println("computation; the feeder/transitioner keep validation going")
	fmt.Println("despite abandoned and erroneous results.")
}
