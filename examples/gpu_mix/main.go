// gpu_mix reproduces the paper's scenario 2 through the public API: a
// 4-CPU + 1-GPU host (GPU 10× one CPU) attached to a CPU-only project
// and a CPU+GPU project with equal shares. It compares local and
// global resource-share accounting: local accounting splits the CPUs
// evenly and badly violates the aggregate shares; global accounting
// gives the CPU-only project all of the CPUs, which is as close to the
// shares as this hardware allows (paper Figure 4).
//
//	go run ./examples/gpu_mix
package main

import (
	"fmt"
	"log"

	"bce"
)

func scenario(sched string) *bce.Scenario {
	return &bce.Scenario{
		Name:         "gpu-mix",
		DurationDays: 5,
		Seed:         1,
		Host: bce.HostJSON{
			NCPU: 4, CPUGFlops: 1,
			NGPU: 1, GPUGFlops: 10,
			MinQueueHours: 1.2, MaxQueueHours: 6,
		},
		Projects: []bce.ProjectJSON{
			{Name: "cpu_only", Share: 100, Apps: []bce.AppJSON{
				{Name: "cpu", NCPUs: 1, MeanSecs: 1000, StdevSecs: 50, LatencySecs: 86400},
			}},
			{Name: "cpu_and_gpu", Share: 100, Apps: []bce.AppJSON{
				{Name: "cpu", NCPUs: 1, MeanSecs: 1000, StdevSecs: 50, LatencySecs: 86400},
				{Name: "gpu", NCPUs: 0.2, NGPUs: 1, MeanSecs: 500, StdevSecs: 25, LatencySecs: 86400},
			}},
		},
		Policies: bce.Policies{JobSched: sched},
	}
}

func main() {
	fmt.Println("host: 4×1 GFLOPS CPU + 1×10 GFLOPS GPU (14 GFLOPS total)")
	fmt.Println("equal shares: each project deserves 7 GFLOPS")
	fmt.Println()
	for _, sched := range []string{"JS-LOCAL", "JS-GLOBAL"} {
		res, err := bce.Run(scenario(sched))
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		total := m.UsedByProject[0] + m.UsedByProject[1]
		fmt.Printf("%-10s share violation %.3f | cpu_only got %4.1f%%, cpu_and_gpu got %4.1f%%\n",
			sched, m.ShareViolation,
			100*m.UsedByProject[0]/total, 100*m.UsedByProject[1]/total)
	}
	fmt.Println("\nglobal accounting trades CPU time to the CPU-only project to")
	fmt.Println("compensate for the GPU it cannot use (lower violation is better).")
}
