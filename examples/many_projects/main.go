// many_projects reproduces the paper's scenario 4 through the public
// API: a CPU+GPU host attached to twenty projects with varying job
// types. It compares the two job-fetch policies and prints an ASCII
// timeline: JF-ORIG tops the queue up with small frequent requests
// spread over many projects (many RPCs, well-mixed schedule), while
// JF-HYSTERESIS waits for the queue to drain and then fills it from a
// single project (few RPCs, monotonous schedule) — paper Figure 5.
//
//	go run ./examples/many_projects
package main

import (
	"fmt"
	"log"

	"bce"
)

func scenario(fetchPolicy string) *bce.Scenario {
	s := &bce.Scenario{
		Name:         "many-projects",
		DurationDays: 3,
		Seed:         7,
		Host: bce.HostJSON{
			NCPU: 4, CPUGFlops: 1,
			NGPU: 1, GPUGFlops: 10,
			MinQueueHours: 2.4, MaxQueueHours: 14.4,
		},
		Policies: bce.Policies{JobSched: "JS-GLOBAL", JobFetch: fetchPolicy},
	}
	for i := 0; i < 20; i++ {
		mean := float64(300 * (1 + i%7))
		p := bce.ProjectJSON{
			Name:  fmt.Sprintf("proj%02d", i),
			Share: 100,
		}
		switch i % 4 {
		case 0: // GPU-only project
			p.Apps = []bce.AppJSON{{
				Name: "gpu", NCPUs: 0.2, NGPUs: 1,
				MeanSecs: mean / 2, StdevSecs: mean / 20, LatencySecs: mean * 50,
			}}
		case 1: // both CPU and GPU jobs
			p.Apps = []bce.AppJSON{
				{Name: "cpu", NCPUs: 1, MeanSecs: mean, StdevSecs: mean / 10, LatencySecs: mean * 50},
				{Name: "gpu", NCPUs: 0.2, NGPUs: 1, MeanSecs: mean / 2, StdevSecs: mean / 20, LatencySecs: mean * 50},
			}
		default: // CPU only
			p.Apps = []bce.AppJSON{{
				Name: "cpu", NCPUs: 1, MeanSecs: mean, StdevSecs: mean / 10, LatencySecs: mean * 50,
			}}
		}
		s.Projects = append(s.Projects, p)
	}
	return s
}

func main() {
	for _, policy := range []string{"JF-ORIG", "JF-HYSTERESIS"} {
		s := scenario(policy)
		res, err := bce.RunWithTimeline(s, nil)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("== %s\n", policy)
		fmt.Printf("   rpcs/job %.3f   monotony %.3f   idle %.3f   (%d jobs, %d RPCs)\n",
			m.RPCsPerJob, m.Monotony, m.IdleFraction, m.CompletedJobs, m.RPCs)
		// Show the first few projects' occupancy; a hysteresis schedule
		// shows long solid runs, the top-up schedule a fine mix.
		fmt.Print(res.Timeline.ASCII(6, 96))
		fmt.Println()
	}
}
