// population demonstrates the Monte-Carlo population study (paper
// §6.2): sample random volunteer hosts from a population model and
// compare policy combinations across the whole sample rather than on a
// single scenario.
//
//	go run ./examples/population
package main

import (
	"fmt"
	"log"

	"bce"
)

const nSamples = 12

func main() {
	// Draw a small population of random scenarios (hardware,
	// availability, attached projects and job properties all vary).
	population := make([]*bce.Scenario, nSamples)
	for i := range population {
		population[i] = bce.SampleScenario(int64(100 + i))
		population[i].DurationDays = 1 // keep the demo quick
	}

	fmt.Printf("comparing policies over %d sampled scenarios (1 day each)\n\n", nSamples)
	fmt.Printf("%-26s %8s %8s %8s %8s %8s\n",
		"policy", "idle", "wasted", "viol", "mono", "rpc/job")

	for _, combo := range [][2]string{
		{"JS-LOCAL", "JF-ORIG"},
		{"JS-LOCAL", "JF-HYSTERESIS"},
		{"JS-GLOBAL", "JF-HYSTERESIS"},
	} {
		var sum [5]float64
		for _, base := range population {
			s := *base
			s.Policies.JobSched = combo[0]
			s.Policies.JobFetch = combo[1]
			res, err := bce.Run(&s)
			if err != nil {
				log.Fatal(err)
			}
			for i, v := range res.Metrics.Values() {
				sum[i] += v
			}
		}
		fmt.Printf("%-26s", combo[0]+"/"+combo[1])
		for _, v := range sum {
			fmt.Printf(" %8.4f", v/nSamples)
		}
		fmt.Println()
	}
	fmt.Println("\n(population means; see scengen -study for small studies, or")
	fmt.Println(" bcectl study for large checkpointed ones)")
}
