// data_intensive exercises the file-transfer extension (paper §6.2:
// "Model file transfers... It would be important to model an
// additional scheduling policy: the order in which files are uploaded
// and downloaded."). A host with a slow DSL-class link runs a
// data-heavy project (large inputs, tight deadlines) alongside a
// compute-heavy one, under each transfer-ordering policy.
//
//	go run ./examples/data_intensive
package main

import (
	"fmt"
	"log"

	"bce"
)

func scenario(transferPolicy string, seed int64) *bce.Scenario {
	return &bce.Scenario{
		Name:         "data-intensive",
		DurationDays: 2,
		Seed:         seed,
		Host: bce.HostJSON{
			NCPU: 2, CPUGFlops: 2,
			MinQueueHours: 1, MaxQueueHours: 4,
			DownMbps: 8, UpMbps: 8, // ~1 MB/s each way
		},
		Projects: []bce.ProjectJSON{
			{Name: "mix", Share: 100, Apps: []bce.AppJSON{
				// Urgent jobs carry big inputs (300 MB ≈ 300 s of
				// download) and a tight 30-minute deadline; bulk jobs
				// have smaller files but all the time in the world.
				// Whether an urgent input waits behind bulk ones is
				// exactly what the transfer-ordering policy decides.
				{Name: "urgent", NCPUs: 1, MeanSecs: 600, LatencySecs: 1800,
					InputMB: 300, OutputMB: 5},
				{Name: "bulk", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400,
					InputMB: 100, OutputMB: 5},
			}},
		},
		Policies: bce.Policies{Transfers: transferPolicy},
	}
}

func main() {
	fmt.Println("slow link (8/8 Mbps); urgent jobs carry 300 MB inputs and 30 min deadlines,")
	fmt.Println("bulk jobs 100 MB and a 24 h deadline; 5 seeds per policy")
	fmt.Println()
	fmt.Printf("%-16s %8s %8s %8s\n", "transfer order", "wasted", "jobs", "missed")
	for _, policy := range []string{"fifo", "smallest-first", "edf"} {
		var jobs, missed int
		var wasted float64
		const seeds = 5
		for seed := int64(0); seed < seeds; seed++ {
			res, err := bce.Run(scenario(policy, seed))
			if err != nil {
				log.Fatal(err)
			}
			jobs += res.Metrics.CompletedJobs
			missed += res.Metrics.MissedJobs
			wasted += res.Metrics.WastedFraction
		}
		fmt.Printf("%-16s %8.4f %8d %8d\n", policy, wasted/seeds, jobs, missed)
	}
	fmt.Println("\nEDF transfer ordering moves deadline-urgent inputs to the front of")
	fmt.Println("the link; smallest-first minimises waiting but starves urgent bulk.")
}
