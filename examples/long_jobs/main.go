// long_jobs reproduces the paper's scenario 3 through the public API:
// one project supplies very long, low-slack jobs that are immediately
// deadline-endangered and run to the exclusion of everything else.
// The REC averaging half-life controls how long the client remembers
// that over-use; sweeping it shows the paper's Figure-6 effect: short
// memory → high resource-share violation, memory of several job
// lengths → low violation.
//
//	go run ./examples/long_jobs
package main

import (
	"fmt"
	"log"

	"bce"
)

const longJob = 250000 // ~2.9 days of execution per long job

func scenario(halfLife float64) *bce.Scenario {
	return &bce.Scenario{
		Name:         "long-low-slack",
		DurationDays: 20,
		Seed:         1,
		Host: bce.HostJSON{
			NCPU: 1, CPUGFlops: 1,
			MinQueueHours: 1.2, MaxQueueHours: 6,
		},
		Projects: []bce.ProjectJSON{
			{Name: "marathon", Share: 100, Apps: []bce.AppJSON{
				// Slack 1.5×: under weighted round-robin the job would
				// take 2× its runtime, so it is endangered on arrival.
				{Name: "long", NCPUs: 1, MeanSecs: longJob, LatencySecs: 1.5 * longJob},
			}},
			{Name: "sprint", Share: 100, Apps: []bce.AppJSON{
				{Name: "short", NCPUs: 1, MeanSecs: 1000, StdevSecs: 50, LatencySecs: 864000},
			}},
		},
		Policies: bce.Policies{JobSched: "JS-GLOBAL"},
	}
}

func main() {
	fmt.Printf("long jobs: %d s each; equal shares; 20-day emulation\n\n", longJob)
	fmt.Printf("%-14s %-16s %s\n", "half-life (s)", "share violation", "marathon's share of processing")
	for _, a := range []float64{0.1 * longJob, 0.5 * longJob, 2 * longJob, 8 * longJob} {
		s := scenario(a)
		s.Policies.RECHalfLife = a
		res, err := bce.Run(s)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		total := m.UsedByProject[0] + m.UsedByProject[1]
		fmt.Printf("%-14.0f %-16.3f %.1f%%\n", a, m.ShareViolation, 100*m.UsedByProject[0]/total)
	}
	fmt.Println("\na longer half-life makes the client compensate the starved")
	fmt.Println("project for longer after each marathon job (paper Figure 6).")
}
