// fleet demonstrates multi-host resource-share enforcement (paper
// §6.2): a volunteer with a GPU desktop and a CPU server attaches both
// to a GPU-capable project and a CPU-only project with equal global
// shares. Enforcing shares per host over-serves the GPU project;
// planning shares across the fleet specialises each host and recovers
// the global split.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"bce/internal/fleet"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
)

func main() {
	gpuDesktop := host.StdHost(4, 1e9, 1, 10e9) // 14 GFLOPS
	cpuServer := host.StdHost(8, 1e9, 0, 0)     // 8 GFLOPS
	for _, h := range []*host.Host{gpuDesktop, cpuServer} {
		h.Prefs.MinQueue = 1200
		h.Prefs.MaxQueue = 3600
	}

	projA := project.Spec{ // CPU and GPU applications
		Name: "gpu_capable", Share: 100,
		Apps: []project.AppSpec{
			{Name: "cpu", Usage: job.Usage{AvgCPUs: 1},
				MeanDuration: 1000, LatencyBound: 864000, CheckpointPeriod: 60},
			{Name: "gpu", Usage: job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1},
				MeanDuration: 500, LatencyBound: 864000, CheckpointPeriod: 60},
		},
	}
	projB := project.Spec{ // CPU only
		Name: "cpu_only", Share: 100,
		Apps: []project.AppSpec{
			{Name: "cpu", Usage: job.Usage{AvgCPUs: 1},
				MeanDuration: 1000, LatencyBound: 864000, CheckpointPeriod: 60},
		},
	}

	f := &fleet.Fleet{
		Hosts:    []*host.Host{gpuDesktop, cpuServer},
		Projects: []project.Spec{projA, projB},
	}

	fmt.Println("fleet: 4-CPU+GPU desktop (14 GF) + 8-CPU server (8 GF); equal global shares")
	fmt.Println()

	uniform, err := f.Evaluate(fleet.Uniform(f), 2*86400, 1)
	if err != nil {
		log.Fatal(err)
	}
	report("per-host shares (naive)", f, uniform)

	plan, err := fleet.Optimize(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for h, row := range plan.Shares {
		fmt.Printf("  planned shares host %d: %s %.0f%%, %s %.0f%%\n",
			h, projA.Name, row[0], projB.Name, row[1])
	}
	optimized, err := f.Evaluate(plan, 2*86400, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report("fleet-planned shares  ", f, optimized)
}

func report(label string, f *fleet.Fleet, ev *fleet.Evaluation) {
	fmt.Printf("%s: global violation %.3f | split:", label, ev.GlobalViolation)
	for p, u := range ev.GlobalUsed {
		fmt.Printf(" %s %.1f%%", f.Projects[p].Name, 100*u/ev.Throughput)
	}
	fmt.Println()
}
