// Quickstart: emulate a two-project host for a day and print the
// figures of merit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bce"
)

func main() {
	// A 4-core 2.5 GFLOPS/core machine attached to two projects with
	// a 2:1 resource share. Einstein-like jobs take an hour with a
	// one-day deadline; SETI-like jobs take 20 minutes with a
	// half-day deadline.
	s := &bce.Scenario{
		Name:         "quickstart",
		DurationDays: 1,
		Seed:         42,
		Host: bce.HostJSON{
			NCPU:          4,
			CPUGFlops:     2.5,
			MinQueueHours: 2,
			MaxQueueHours: 8,
		},
		Projects: []bce.ProjectJSON{
			{Name: "einstein", Share: 200, Apps: []bce.AppJSON{{
				Name: "hour_jobs", NCPUs: 1,
				MeanSecs: 3600, StdevSecs: 300, LatencySecs: 86400,
			}}},
			{Name: "seti", Share: 100, Apps: []bce.AppJSON{{
				Name: "short_jobs", NCPUs: 1,
				MeanSecs: 1200, StdevSecs: 120, LatencySecs: 43200,
			}}},
		},
		// Default policies: JS-LOCAL scheduling, JF-HYSTERESIS fetch.
	}

	res, err := bce.Run(s)
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Println("figures of merit (0 = good, 1 = bad):")
	names := bce.MetricNames()
	for i, v := range m.Values() {
		fmt.Printf("  %-16s %.4f\n", names[i], v)
	}
	fmt.Printf("\n%d jobs completed, %d missed their deadline, %d scheduler RPCs\n",
		m.CompletedJobs, m.MissedJobs, m.RPCs)
	total := m.UsedByProject[0] + m.UsedByProject[1]
	fmt.Printf("einstein received %.0f%% of the processing (share says %.0f%%)\n",
		100*m.UsedByProject[0]/total, 100.0*200/300)
}
