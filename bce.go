// Package bce is a BOINC client emulator: a reproduction of the system
// described in David P. Anderson, "Emulating Volunteer Computing
// Scheduling Policies" (IPDPS Workshops / PCGrid 2011).
//
// The emulator runs the BOINC client's scheduling machinery — round-
// robin simulation, debt/REC resource-share accounting, deadline-aware
// job scheduling, and work-fetch policies — inside a discrete-event
// simulation of everything the client interacts with: job execution
// with normally distributed runtimes, host availability as an
// exponential on/off process, network delays, and simplified project
// servers. It reports five figures of merit (idle fraction, wasted
// fraction, resource-share violation, monotony, RPCs per job), each
// scaled to [0,1] where 0 is good.
//
// # Quick start
//
//	s := &bce.Scenario{
//		Name: "two-projects", DurationDays: 10, Seed: 1,
//		Host: bce.HostJSON{NCPU: 4, CPUGFlops: 2.5},
//		Projects: []bce.ProjectJSON{
//			{Name: "a", Share: 100, Apps: []bce.AppJSON{
//				{Name: "app", NCPUs: 1, MeanSecs: 3600, LatencySecs: 86400},
//			}},
//			{Name: "b", Share: 100, Apps: []bce.AppJSON{
//				{Name: "app", NCPUs: 1, MeanSecs: 1800, LatencySecs: 43200},
//			}},
//		},
//	}
//	res, err := bce.Run(s)
//	if err != nil { ... }
//	fmt.Println(res.Metrics)
//
// Policy variants are selected per scenario (Policies field) or, at a
// lower level, via Config. The experiments subpackage regenerates the
// paper's figures; cmd/bce, cmd/bcectl, cmd/scengen and cmd/bceweb are
// the command-line and web frontends.
package bce

import (
	"io"

	"bce/internal/client"
	"bce/internal/metrics"
	"bce/internal/scenario"
	"bce/internal/stats"
	"bce/internal/timeline"
)

// Scenario is a complete emulator input: host, projects, policies.
type Scenario = scenario.Scenario

// HostJSON describes the emulated host.
type HostJSON = scenario.HostJSON

// ProjectJSON describes one attached project.
type ProjectJSON = scenario.ProjectJSON

// AppJSON describes one application's job stream.
type AppJSON = scenario.AppJSON

// AvailJSON parameterises an availability channel (hours on/off).
type AvailJSON = scenario.AvailJSON

// Policies selects the policy variants under test.
type Policies = scenario.Policies

// Config is the low-level emulator configuration (the scenario
// compiled against live host/project objects).
type Config = client.Config

// Metrics is the figures-of-merit report.
type Metrics = metrics.Metrics

// Result is one emulation outcome.
type Result = client.Result

// Timeline is the recorded processor-usage timeline.
type Timeline = timeline.Recorder

// Run emulates the scenario and reports the figures of merit.
func Run(s *Scenario) (*Result, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	return RunConfig(cfg)
}

// RunConfig emulates a low-level configuration.
func RunConfig(cfg Config) (*Result, error) {
	c, err := client.New(cfg)
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// RunWithTimeline emulates the scenario recording the processor-usage
// timeline (renderable as ASCII or SVG) and writing the message log of
// scheduling decisions to log (nil discards it).
func RunWithTimeline(s *Scenario, log io.Writer) (*Result, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	cfg.RecordTimeline = true
	cfg.Log = log
	return RunConfig(cfg)
}

// LoadScenario reads a scenario from JSON.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// LoadScenarioFile reads a scenario from a JSON file.
func LoadScenarioFile(path string) (*Scenario, error) { return scenario.LoadFile(path) }

// ImportClientState reconstructs a scenario from a BOINC
// client_state.xml file (subset), the paper's web-interface workflow.
func ImportClientState(r io.Reader) (*Scenario, error) {
	return scenario.ImportClientState(r)
}

// SampleScenario draws a random scenario from a population model of
// volunteer hosts (the paper's Monte-Carlo future-work direction).
func SampleScenario(seed int64) *Scenario {
	return scenario.Sample(stats.NewRNG(seed), scenario.PopulationParams{})
}

// MetricNames returns the five figure-of-merit names in report order.
func MetricNames() [5]string { return metrics.Names() }
