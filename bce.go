// Package bce is a BOINC client emulator: a reproduction of the system
// described in David P. Anderson, "Emulating Volunteer Computing
// Scheduling Policies" (IPDPS Workshops / PCGrid 2011).
//
// The emulator runs the BOINC client's scheduling machinery — round-
// robin simulation, debt/REC resource-share accounting, deadline-aware
// job scheduling, and work-fetch policies — inside a discrete-event
// simulation of everything the client interacts with: job execution
// with normally distributed runtimes, host availability as an
// exponential on/off process, network delays, and simplified project
// servers. It reports five figures of merit (idle fraction, wasted
// fraction, resource-share violation, monotony, RPCs per job), each
// scaled to [0,1] where 0 is good.
//
// # Quick start
//
//	s := &bce.Scenario{
//		Name: "two-projects", DurationDays: 10, Seed: 1,
//		Host: bce.HostJSON{NCPU: 4, CPUGFlops: 2.5},
//		Projects: []bce.ProjectJSON{
//			{Name: "a", Share: 100, Apps: []bce.AppJSON{
//				{Name: "app", NCPUs: 1, MeanSecs: 3600, LatencySecs: 86400},
//			}},
//			{Name: "b", Share: 100, Apps: []bce.AppJSON{
//				{Name: "app", NCPUs: 1, MeanSecs: 1800, LatencySecs: 43200},
//			}},
//		},
//	}
//	res, err := bce.Run(s)
//	if err != nil { ... }
//	fmt.Println(res.Metrics)
//
// Policy variants are selected per scenario (Policies field) or, at a
// lower level, via Config. The experiments subpackage regenerates the
// paper's figures; cmd/bce, cmd/bcectl, cmd/scengen and cmd/bceweb are
// the command-line and web frontends.
package bce

import (
	"context"
	"fmt"
	"io"

	"bce/internal/client"
	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/scenario"
	"bce/internal/stats"
	"bce/internal/timeline"
)

// Scenario is a complete emulator input: host, projects, policies.
type Scenario = scenario.Scenario

// HostJSON describes the emulated host.
type HostJSON = scenario.HostJSON

// ProjectJSON describes one attached project.
type ProjectJSON = scenario.ProjectJSON

// AppJSON describes one application's job stream.
type AppJSON = scenario.AppJSON

// AvailJSON parameterises an availability channel (hours on/off).
type AvailJSON = scenario.AvailJSON

// Policies selects the policy variants under test.
type Policies = scenario.Policies

// Config is the low-level emulator configuration (the scenario
// compiled against live host/project objects).
type Config = client.Config

// Metrics is the figures-of-merit report.
type Metrics = metrics.Metrics

// Result is one emulation outcome.
type Result = client.Result

// Timeline is the recorded processor-usage timeline.
type Timeline = timeline.Recorder

// Run emulates the scenario and reports the figures of merit. It is
// RunContext with a background context.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Run(s *Scenario) (*Result, error) { return RunContext(context.Background(), s) }

// RunContext emulates the scenario under ctx: cancellation or timeout
// stops the emulation between simulator events and returns an error
// wrapping the context's cause, so errors.Is(err, context.Canceled)
// reports a canceled run. Panics inside the emulation are recovered
// and surfaced as errors.
func RunContext(ctx context.Context, s *Scenario) (*Result, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	return RunConfigContext(ctx, cfg)
}

// RunConfig emulates a low-level configuration.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func RunConfig(cfg Config) (*Result, error) {
	return RunConfigContext(context.Background(), cfg)
}

// RunConfigContext emulates a low-level configuration under ctx (see
// RunContext for the cancellation contract).
func RunConfigContext(ctx context.Context, cfg Config) (*Result, error) {
	return runner.Run(ctx, cfg)
}

// BatchOption configures RunBatch; see WithWorkers, WithProgress,
// WithFailFast and WithBatchOptions.
type BatchOption = runner.Option

// BatchOptions is the engine's full option set as a struct — the same
// knobs the With* helpers set one at a time. It is shared by every
// batch entry point in the module (RunBatch, harness, study, fleet,
// population), so configuring concurrency means learning exactly one
// type.
type BatchOptions = runner.Options

// WithBatchOptions applies every set field of o at once; zero fields
// keep their defaults.
func WithBatchOptions(o BatchOptions) BatchOption { return runner.WithOptions(o) }

// BatchProgress is a live snapshot of a batch in flight.
type BatchProgress = runner.Progress

// BatchResult is the outcome of one run of a batch; results are
// returned in scenario order regardless of completion order.
type BatchResult = runner.RunResult

// WithWorkers bounds the batch worker pool to n concurrent runs
// (default runtime.GOMAXPROCS(0)).
func WithWorkers(n int) BatchOption { return runner.WithWorkers(n) }

// WithProgress installs a live progress callback (runs started/done,
// events simulated, wall-clock rates). The callback is invoked
// serially and should return quickly.
func WithProgress(fn func(BatchProgress)) BatchOption { return runner.WithProgress(fn) }

// WithFailFast makes the first run error cancel the rest of the batch.
func WithFailFast(on bool) BatchOption { return runner.WithFailFast(on) }

// RunBatch emulates many scenarios concurrently on a bounded worker
// pool. Each run builds its own emulator state from its scenario, and
// every scenario keeps its own Seed, so the results — returned in
// scenario order — are bit-identical to running the scenarios
// sequentially, for any worker count. Scenarios must not be mutated
// while the batch runs. The returned error is non-nil only when the
// whole batch stopped early (context canceled, or a run failed under
// WithFailFast); otherwise per-run failures are reported in the
// results.
func RunBatch(ctx context.Context, scenarios []*Scenario, opts ...BatchOption) ([]BatchResult, error) {
	specs := make([]runner.Spec, len(scenarios))
	for i, s := range scenarios {
		s := s
		label := s.Name
		if label == "" {
			label = fmt.Sprintf("scenario %d", i)
		}
		specs[i] = runner.Spec{Label: label, Make: s.Config}
	}
	return runner.Batch(ctx, specs, opts...)
}

// DeriveSeed deterministically derives the i-th run's seed from a base
// seed, decorrelating replicated scenarios without shared RNG state:
// the same (base, i) yields the same seed on any machine with any
// worker count. Use it to stamp Seed when fanning one scenario out
// into a batch.
func DeriveSeed(base int64, i int) int64 { return runner.DeriveSeed(base, i) }

// RunWithTimeline emulates the scenario recording the processor-usage
// timeline (renderable as ASCII or SVG) and writing the message log of
// scheduling decisions to log (nil discards it).
func RunWithTimeline(s *Scenario, log io.Writer) (*Result, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	cfg.RecordTimeline = true
	cfg.Log = log
	return RunConfig(cfg)
}

// LoadScenario reads a scenario from JSON.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// LoadScenarioFile reads a scenario from a JSON file.
func LoadScenarioFile(path string) (*Scenario, error) { return scenario.LoadFile(path) }

// ImportClientState reconstructs a scenario from a BOINC
// client_state.xml file (subset), the paper's web-interface workflow.
func ImportClientState(r io.Reader) (*Scenario, error) {
	return scenario.ImportClientState(r)
}

// SampleScenario draws a random scenario from a population model of
// volunteer hosts (the paper's Monte-Carlo future-work direction).
func SampleScenario(seed int64) *Scenario {
	return scenario.Sample(stats.NewRNG(seed), scenario.PopulationParams{})
}

// MetricNames returns the five figure-of-merit names in report order.
func MetricNames() [5]string { return metrics.Names() }
