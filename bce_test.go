package bce

import (
	"strings"
	"testing"
)

func twoProjectScenario() *Scenario {
	return &Scenario{
		Name: "api-test", DurationDays: 1, Seed: 3,
		Host: HostJSON{NCPU: 2, CPUGFlops: 1, MinQueueHours: 0.5, MaxQueueHours: 1},
		Projects: []ProjectJSON{
			{Name: "a", Share: 100, Apps: []AppJSON{
				{Name: "app", NCPUs: 1, MeanSecs: 900, LatencySecs: 86400},
			}},
			{Name: "b", Share: 100, Apps: []AppJSON{
				{Name: "app", NCPUs: 1, MeanSecs: 600, LatencySecs: 86400},
			}},
		},
	}
}

func TestRunScenario(t *testing.T) {
	res, err := Run(twoProjectScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CompletedJobs == 0 {
		t.Fatal("no jobs completed")
	}
	for _, v := range res.Metrics.Values() {
		if v < 0 || v > 1 {
			t.Fatalf("metric out of range: %v", res.Metrics)
		}
	}
}

func TestRunInvalidScenario(t *testing.T) {
	if _, err := Run(&Scenario{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
}

func TestRunWithTimeline(t *testing.T) {
	var log strings.Builder
	res, err := RunWithTimeline(twoProjectScenario(), &log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil || len(res.Timeline.Segments) == 0 {
		t.Fatal("no timeline recorded")
	}
	if !strings.Contains(log.String(), "start ") {
		t.Fatal("message log not written")
	}
	if out := res.Timeline.ASCII(2, 60); !strings.Contains(out, "#") {
		t.Fatal("ASCII timeline empty")
	}
}

func TestScenarioJSONAPI(t *testing.T) {
	s := twoProjectScenario()
	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name {
		t.Fatal("round trip lost name")
	}
}

func TestSampleScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	s := SampleScenario(11)
	s.DurationDays = 0.5 // keep the test fast
	res, err := Run(s)
	if err != nil {
		t.Fatalf("sampled scenario failed: %v", err)
	}
	_ = res
}

func TestMetricNames(t *testing.T) {
	n := MetricNames()
	if n[0] != "idle" || n[2] != "share_violation" {
		t.Fatalf("MetricNames = %v", n)
	}
}

func TestDeterministicAPI(t *testing.T) {
	a, err := Run(twoProjectScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(twoProjectScenario())
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Values() != b.Metrics.Values() {
		t.Fatal("same scenario+seed produced different metrics")
	}
}

func TestLoadScenarioFileAPI(t *testing.T) {
	s, err := LoadScenarioFile("testdata/two_projects.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "two-projects" || len(s.Projects) != 2 {
		t.Fatalf("loaded scenario wrong: %+v", s)
	}
	if _, err := LoadScenarioFile("testdata/does_not_exist.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestImportClientStateAPI(t *testing.T) {
	const state = `<client_state>
  <host_info><p_ncpus>2</p_ncpus><p_fpops>1e9</p_fpops><m_nbytes>4e9</m_nbytes></host_info>
  <project><master_url>http://x/</master_url><resource_share>100</resource_share></project>
</client_state>`
	s, err := ImportClientState(strings.NewReader(state))
	if err != nil {
		t.Fatal(err)
	}
	if s.Host.NCPU != 2 {
		t.Fatal("import wrong")
	}
	res, err := func() (*Result, error) {
		s.DurationDays = 0.1
		return Run(s)
	}()
	if err != nil || res == nil {
		t.Fatalf("imported scenario failed to run: %v", err)
	}
	if _, err := ImportClientState(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRunConfigInvalid(t *testing.T) {
	if _, err := RunConfig(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
