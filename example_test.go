package bce_test

// Godoc examples for the public API. These run as part of the test
// suite and double as the shortest possible usage documentation.

import (
	"fmt"

	"bce"
)

// Example emulates a one-project host for six hours and reports how
// many jobs completed. Everything is deterministic for a fixed seed.
func Example() {
	s := &bce.Scenario{
		Name: "example", DurationDays: 0.25, Seed: 1,
		Host: bce.HostJSON{NCPU: 2, CPUGFlops: 1, MinQueueHours: 0.5, MaxQueueHours: 1},
		Projects: []bce.ProjectJSON{
			{Name: "proj", Share: 100, Apps: []bce.AppJSON{
				{Name: "app", NCPUs: 1, MeanSecs: 600, LatencySecs: 86400},
			}},
		},
	}
	res, err := bce.Run(s)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d jobs, missed %d deadlines\n",
		res.Metrics.CompletedJobs, res.Metrics.MissedJobs)
	// Output: completed 70 jobs, missed 0 deadlines
}

// ExampleRunWithTimeline shows how to capture the processor-usage
// timeline and render it as ASCII art.
func ExampleRunWithTimeline() {
	s := &bce.Scenario{
		Name: "timeline", DurationDays: 0.1, Seed: 1,
		Host: bce.HostJSON{NCPU: 1, CPUGFlops: 1, MinQueueHours: 0.5, MaxQueueHours: 1},
		Projects: []bce.ProjectJSON{
			{Name: "p", Share: 100, Apps: []bce.AppJSON{
				{Name: "a", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400},
			}},
		},
	}
	res, err := bce.RunWithTimeline(s, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Timeline.Segments) > 0)
	// Output: true
}

// ExampleMetricNames lists the five figures of merit in report order.
func ExampleMetricNames() {
	for _, n := range bce.MetricNames() {
		fmt.Println(n)
	}
	// Output:
	// idle
	// wasted
	// share_violation
	// monotony
	// rpcs_per_job
}
