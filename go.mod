module bce

go 1.22
