package bce_test

// End-to-end golden tests freezing the emulator's exact outputs. The
// kernel speed campaign (sim event loop, scheduling scans, fetch
// evaluation, rr_sim inner loop) rewrites hot paths under a strict
// contract: results must stay bit-identical, because the figures of
// merit are reproduced to the last bit across runs and any last-ulp
// drift would surface as a spurious policy difference. These fixtures
// were generated before the campaign (go test -run TestGoldenEmulation
// -update) and every optimization since must leave them untouched.
//
// The scenario set deliberately crosses the hot paths being rewritten:
// every job-scheduling and job-fetch policy, finite-bandwidth transfers
// under each ordering policy, GPU seating, availability churn,
// checkpoint loss, many-project fetch scans, and a deep job-heavy
// queue that stresses the round-robin simulation.

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"bce"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

const goldenPath = "testdata/golden_emulation.json"

// goldenRecord is everything observable from one run that downstream
// consumers aggregate: the full metrics report, the event count, and
// the per-project server counters.
type goldenRecord struct {
	Metrics    bce.Metrics `json:"metrics"`
	Events     uint64      `json:"events"`
	Dispatched []int       `json:"dispatched"`
	Refused    []int       `json:"refused"`
}

func goldenScenarios() []*bce.Scenario {
	app := func(name string, ncpus, mean, latency float64) bce.AppJSON {
		return bce.AppJSON{Name: name, NCPUs: ncpus, MeanSecs: mean, LatencySecs: latency}
	}
	base := func(name string, days float64, seed int64, pol bce.Policies) *bce.Scenario {
		return &bce.Scenario{
			Name: name, DurationDays: days, Seed: seed, Policies: pol,
			Host: bce.HostJSON{NCPU: 4, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 4},
			Projects: []bce.ProjectJSON{
				{Name: "a", Share: 100, Apps: []bce.AppJSON{app("x", 1, 1200, 86400)}},
				{Name: "b", Share: 100, Apps: []bce.AppJSON{app("y", 1, 2400, 86400)}},
			},
		}
	}

	var out []*bce.Scenario

	// Scheduling-policy × fetch-policy cross on the standard host.
	for _, js := range []string{"JS-LOCAL", "JS-GLOBAL", "JS-WRR", "JS-LLF"} {
		out = append(out, base("sched-"+js, 2, 7, bce.Policies{JobSched: js, JobFetch: "JF-ORIG"}))
	}
	for _, jf := range []string{"JF-ORIG", "JF-HYSTERESIS", "JF-SPREAD"} {
		out = append(out, base("fetch-"+jf, 2, 11, bce.Policies{JobFetch: jf}))
	}

	// Deep queue: every scheduling point pays a full rr_sim pass.
	out = append(out, &bce.Scenario{
		Name: "jobheavy", DurationDays: 0.1, Seed: 1,
		Host: bce.HostJSON{NCPU: 4, CPUGFlops: 1, MinQueueHours: 36, MaxQueueHours: 48},
		Projects: []bce.ProjectJSON{
			{Name: "a", Share: 100, Apps: []bce.AppJSON{app("x", 1, 600, 4*86400)}},
			{Name: "b", Share: 100, Apps: []bce.AppJSON{app("y", 1, 600, 4*86400)}},
		},
	})

	// GPU + CPU mix with distinct shares and an unavailable stretch.
	out = append(out, &bce.Scenario{
		Name: "gpu-mix", DurationDays: 2, Seed: 3,
		Host: bce.HostJSON{
			NCPU: 4, CPUGFlops: 1, NGPU: 1, GPUGFlops: 20,
			MinQueueHours: 1, MaxQueueHours: 6,
			Avail:    bce.AvailJSON{MeanOnHours: 10, MeanOffHours: 4},
			GPUAvail: bce.AvailJSON{MeanOnHours: 20, MeanOffHours: 4},
		},
		Projects: []bce.ProjectJSON{
			{Name: "cpuproj", Share: 300, Apps: []bce.AppJSON{app("c", 1, 3000, 86400)}},
			{Name: "gpuproj", Share: 100, Apps: []bce.AppJSON{
				{Name: "g", NCPUs: 0.2, NGPUs: 1, MeanSecs: 900, LatencySecs: 43200},
			}},
		},
	})

	// Finite link with mixed data-heavy apps under each transfer policy.
	for _, tp := range []string{"fifo", "smallest-first", "edf"} {
		out = append(out, &bce.Scenario{
			Name: "xfer-" + tp, DurationDays: 1, Seed: 5,
			Host: bce.HostJSON{
				NCPU: 2, CPUGFlops: 2, MinQueueHours: 1, MaxQueueHours: 4,
				DownMbps: 8, UpMbps: 8,
				NetAvail: bce.AvailJSON{MeanOnHours: 6, MeanOffHours: 1},
			},
			Projects: []bce.ProjectJSON{
				{Name: "mix", Share: 100, Apps: []bce.AppJSON{
					{Name: "urgent", NCPUs: 1, MeanSecs: 600, LatencySecs: 1800, InputMB: 300, OutputMB: 5},
					{Name: "bulk", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400, InputMB: 100, OutputMB: 5},
				}},
			},
			Policies: bce.Policies{Transfers: tp},
		})
	}

	// Rare checkpoints: preemption loses work (exercises lost-work
	// accounting through the preempt path).
	out = append(out, &bce.Scenario{
		Name: "checkpoint-loss", DurationDays: 1, Seed: 13,
		Host: bce.HostJSON{NCPU: 1, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 3},
		Projects: []bce.ProjectJSON{
			{Name: "a", Share: 100, Apps: []bce.AppJSON{
				{Name: "x", NCPUs: 1, MeanSecs: 4000, LatencySecs: 864000, CheckpointS: -1},
			}},
			{Name: "b", Share: 100, Apps: []bce.AppJSON{
				{Name: "y", NCPUs: 1, MeanSecs: 4000, LatencySecs: 864000, CheckpointS: 120},
			}},
		},
	})

	// Many projects with server downtime and dry spells: fetch scans and
	// backoff handling across eight servers.
	many := &bce.Scenario{
		Name: "many-projects", DurationDays: 2, Seed: 17,
		Host: bce.HostJSON{NCPU: 8, CPUGFlops: 1.5, MinQueueHours: 2, MaxQueueHours: 8},
		Policies: bce.Policies{
			JobSched: "JS-GLOBAL", JobFetch: "JF-HYSTERESIS", RECHalfLife: 5 * 86400,
		},
	}
	for i := 0; i < 8; i++ {
		p := bce.ProjectJSON{
			Name:  string(rune('a' + i)),
			Share: float64(50 * (i + 1)),
			Apps:  []bce.AppJSON{app("app", 1, float64(600+300*i), 2*86400)},
		}
		if i%3 == 0 {
			p.Downtime = bce.AvailJSON{MeanOnHours: 12, MeanOffHours: 2}
		}
		if i%4 == 1 {
			p.WorkGaps = bce.AvailJSON{MeanOnHours: 8, MeanOffHours: 3}
		}
		many.Projects = append(many.Projects, p)
	}
	out = append(out, many)

	return out
}

// TestGoldenEmulation runs every golden scenario and requires the
// recorded outputs to match the committed fixtures bit for bit.
func TestGoldenEmulation(t *testing.T) {
	scns := goldenScenarios()
	got := make(map[string]goldenRecord, len(scns))
	for _, s := range scns {
		res, err := bce.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if _, dup := got[s.Name]; dup {
			t.Fatalf("duplicate golden scenario name %q", s.Name)
		}
		got[s.Name] = goldenRecord{
			Metrics:    res.Metrics,
			Events:     res.Events,
			Dispatched: res.Dispatched,
			Refused:    res.Refused,
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d scenarios", goldenPath, len(got))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update to generate): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixtures: %v", err)
	}
	if len(want) != len(got) {
		t.Errorf("fixture has %d scenarios, test produced %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: missing from this run", name)
			continue
		}
		compareGolden(t, name, w, g)
	}
}

// compareGolden reports any field that drifted. Floats are compared
// exactly: the determinism contract (DESIGN.md §10) promises
// bit-identical reproduction, and JSON round-trips float64 exactly.
func compareGolden(t *testing.T, name string, w, g goldenRecord) {
	t.Helper()
	if g.Events != w.Events {
		t.Errorf("%s: events = %d, golden %d", name, g.Events, w.Events)
	}
	if !floatsEq(g.Metrics.Values(), w.Metrics.Values()) {
		t.Errorf("%s: figures of merit drifted:\n got  %v\n want %v",
			name, g.Metrics.Values(), w.Metrics.Values())
	}
	gm, wm := g.Metrics, w.Metrics
	if gm.RPCs != wm.RPCs || gm.CompletedJobs != wm.CompletedJobs || gm.MissedJobs != wm.MissedJobs {
		t.Errorf("%s: counters drifted: got rpcs=%d jobs=%d missed=%d, want rpcs=%d jobs=%d missed=%d",
			name, gm.RPCs, gm.CompletedJobs, gm.MissedJobs, wm.RPCs, wm.CompletedJobs, wm.MissedJobs)
	}
	for _, f := range []struct {
		label     string
		got, want float64
	}{
		{"used_flops_sec", gm.UsedFLOPSsec, wm.UsedFLOPSsec},
		{"wasted_flops_sec", gm.WastedFLOPSsec, wm.WastedFLOPSsec},
		{"lost_flops_sec", gm.LostFLOPSsec, wm.LostFLOPSsec},
		{"avail_flops_sec", gm.AvailFLOPSsec, wm.AvailFLOPSsec},
	} {
		if !floatEq(f.got, f.want) {
			t.Errorf("%s: %s = %v, golden %v", name, f.label, f.got, f.want)
		}
	}
	if !intSliceEq(g.Dispatched, w.Dispatched) || !intSliceEq(g.Refused, w.Refused) {
		t.Errorf("%s: server counters drifted: got %v/%v, want %v/%v",
			name, g.Dispatched, g.Refused, w.Dispatched, w.Refused)
	}
	if len(gm.UsedByProject) != len(wm.UsedByProject) {
		t.Errorf("%s: per-project usage length %d, golden %d",
			name, len(gm.UsedByProject), len(wm.UsedByProject))
	} else {
		for i := range gm.UsedByProject {
			if !floatEq(gm.UsedByProject[i], wm.UsedByProject[i]) {
				t.Errorf("%s: project %d usage = %v, golden %v",
					name, i, gm.UsedByProject[i], wm.UsedByProject[i])
			}
		}
	}
}

func floatEq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func floatsEq(a, b [5]float64) bool {
	for i := range a {
		if !floatEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
