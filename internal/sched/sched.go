// Package sched implements the BOINC client's job scheduling policy
// (paper §3.3) and its variants:
//
//   - JS-LOCAL: the baseline policy with local (per-type debt)
//     accounting,
//   - JS-GLOBAL: the baseline policy with global (REC) accounting,
//   - JS-WRR: JS-LOCAL without deadline awareness (pure weighted
//     round-robin ordering).
//
// The policy builds an ordered job list — running jobs that have not
// checkpointed first, then deadline-endangered jobs (earliest deadline
// first), GPU jobs before CPU jobs, then priority order — and scans it,
// running jobs until processors are fully committed, skipping jobs that
// would exceed the memory limit.
package sched

import (
	"fmt"
	"slices"

	"bce/internal/host"
	"bce/internal/job"
)

// Policy selects a job-scheduling policy variant.
type Policy int

const (
	// JSLocal is the baseline policy with local accounting.
	JSLocal Policy = iota
	// JSGlobal is the baseline policy with global accounting.
	JSGlobal
	// JSWRR ignores deadlines (weighted round-robin only).
	JSWRR
	// JSLLF orders endangered jobs by least laxity instead of earliest
	// deadline — the paper's §6.2 note that EDF is optimal only for
	// uniprocessors and that other heuristics can beat it on
	// multiprocessors. Uses global accounting.
	JSLLF
)

// String returns the paper's name for the policy.
func (p Policy) String() string {
	switch p {
	case JSLocal:
		return "JS-LOCAL"
	case JSGlobal:
		return "JS-GLOBAL"
	case JSWRR:
		return "JS-WRR"
	case JSLLF:
		return "JS-LLF"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// UsesDeadlines reports whether the variant promotes deadline-
// endangered jobs (true for all but JS-WRR).
func (p Policy) UsesDeadlines() bool { return p != JSWRR }

// Input is everything one scheduling pass needs.
type Input struct {
	Policy   Policy
	Hardware *host.Hardware

	// Now is the current time, used by laxity-based ordering.
	Now float64

	// Tasks is the client's queue: every unfinished task, whatever its
	// state.
	Tasks []*job.Task

	// Endangered reports the round-robin simulation's deadline verdict
	// for a task (ignored by JS-WRR).
	Endangered func(*job.Task) bool

	// Prio is PRIO_sched(P, T) from the accounting scheme.
	Prio func(p int, t host.ProcType) float64

	// MaxMemBytes caps the summed working sets of scheduled jobs.
	MaxMemBytes float64

	// GPUAllowed gates GPU jobs (the "GPU computing allowed"
	// availability channel / preference).
	GPUAllowed bool
}

// Decision is the outcome of a scheduling pass: the exact set of tasks
// that should be running. A Decision returned by an Enforcer aliases
// the Enforcer's scratch storage and is valid until its next Enforce
// call.
type Decision struct {
	Run []*job.Task
}

// RunSet returns the decision's tasks as a set for differencing.
//
// Deprecated: the run set is small (bounded by processor counts);
// differencing with Decision.Contains avoids the per-pass map
// allocation on the emulator's hot path.
func (d Decision) RunSet() map[*job.Task]bool {
	m := make(map[*job.Task]bool, len(d.Run))
	for _, t := range d.Run {
		m[t] = true
	}
	return m
}

// Contains reports whether the decision schedules t. Linear scan: Run
// is bounded by the host's processor counts, so this beats building a
// set for realistic hardware.
func (d Decision) Contains(t *job.Task) bool {
	for _, r := range d.Run {
		if r == t {
			return true
		}
	}
	return false
}

// rank orders the job list. Lower rank runs earlier in the scan.
type rank struct {
	task       *job.Task
	class      int     // 0: running un-checkpointed, 1: endangered GPU, 2: GPU, 3: endangered CPU, 4: CPU
	key        float64 // within a class, ascending: deadline (or laxity) for endangered classes, negated accounting priority otherwise
	running    bool    // tie-break: prefer already-running (fewer preemptions)
	receivedAt float64 // final tie-break: FIFO
}

// cmpRank is the job-list order as a three-way comparison. It is the
// exact predicate the original sort.SliceStable call used (negating the
// priority turns its descending comparison into key's ascending one —
// equivalent for all finite floats); with a stable sort the output
// ordering is uniquely determined by the predicate and the input order,
// so swapping the sort implementation keeps emulations bit-identical.
func cmpRank(a, b rank) int {
	if lessRank(a, b) {
		return -1
	}
	if lessRank(b, a) {
		return 1
	}
	return 0
}

// lessRank is cmpRank as a strict less-than, cheap enough for the
// insertion sort's inner loop.
func lessRank(a, b rank) bool {
	if a.class != b.class {
		return a.class < b.class
	}
	if a.key != b.key {
		return a.key < b.key
	}
	if a.running != b.running {
		return a.running
	}
	return a.receivedAt < b.receivedAt
}

// Enforcer runs scheduling passes with reusable scratch storage, so a
// steady-state pass allocates nothing. The zero value is ready to use.
// Not safe for concurrent use; each emulated client owns one.
type Enforcer struct {
	ranks []rank
	run   []*job.Task
}

// Enforce computes the set of tasks to run (paper §3.3's "build an
// ordered job list, then scan it"). The returned Decision aliases the
// Enforcer's scratch and is valid until the next call.
//
//bce:hotpath
//bce:scratch
func (e *Enforcer) Enforce(in Input) Decision {
	if cap(e.ranks) < len(in.Tasks) {
		e.ranks = make([]rank, 0, len(in.Tasks)) //bce:allocok amortized grow of reusable scratch, stops once sized to the queue
	}
	ranks := e.ranks[:0]
	for _, t := range in.Tasks {
		if t.Finished() || t.State == job.Downloading {
			continue // not runnable until its input files arrive
		}
		isGPU := t.Usage.IsGPU()
		if isGPU && !in.GPUAllowed {
			continue
		}
		r := rank{
			task:       t,
			running:    t.State == job.Running,
			receivedAt: t.ReceivedAt,
		}
		endangered := in.Policy.UsesDeadlines() && in.Endangered != nil && in.Endangered(t)
		switch {
		case t.State == job.Running && t.SinceCheckpoint() > 0 && !t.CheckpointedSinceStart():
			// "Running jobs that have not checkpointed yet have
			// precedence over all others." Once a job checkpoints
			// during its run session it becomes preemptable (at most
			// one checkpoint period of work is at risk).
			r.class = 0
		case isGPU && endangered:
			r.class = 1
		case isGPU:
			r.class = 2
		case endangered:
			r.class = 3
		default:
			r.class = 4
		}
		switch r.class {
		case 1, 3: // endangered: earliest deadline (or least laxity) first
			if in.Policy == JSLLF {
				// Laxity: time to deadline minus estimated remaining
				// execution.
				r.key = (t.Deadline - in.Now) - t.EstRemaining()
			} else {
				r.key = t.Deadline
			}
		default:
			r.key = -in.Prio(t.Project, t.Usage.Type())
		}
		ranks = append(ranks, r)
	}
	e.ranks = ranks //bce:retainok ranks alias in.Tasks only until the next Enforce; the Decision contract documents this

	// Stable sort. Any stable sort over the same comparator produces
	// the same permutation, so the implementation is free to vary by
	// size: small queues (the common case — one host's active tasks)
	// use a direct insertion sort, which beats the generic sort's
	// function-pointer comparisons; large queues fall back to the
	// O(n log n) generic sort.
	if len(ranks) <= smallSortMax {
		insertionSortRanks(ranks)
	} else {
		slices.SortStableFunc(ranks, cmpRank)
	}

	// Scan: commit device instances and memory in rank order; stop when
	// everything is saturated.
	var remain [host.NumProcTypes]float64
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		remain[t] = float64(in.Hardware.Proc[t].Count)
	}
	memRemain := in.MaxMemBytes
	if memRemain <= 0 {
		memRemain = in.Hardware.MemBytes
	}

	run := e.run[:0]
	const eps = 1e-9
	for _, r := range ranks {
		u := r.task.Usage
		if u.MemBytes > memRemain+eps {
			continue // "jobs are skipped if total memory usage would exceed the limit"
		}
		if u.IsGPU() {
			if u.GPUUsage > remain[u.GPUType]+eps {
				continue // "... or if GPUs cannot be allocated"
			}
			// GPU jobs may oversubscribe the CPU slightly; their CPU
			// demand is typically fractional.
			remain[u.GPUType] -= u.GPUUsage
			remain[host.CPU] -= u.AvgCPUs
		} else {
			if remain[host.CPU] <= eps {
				continue
			}
			// A CPU job runs when any CPU capacity remains; its full
			// demand is committed (slight oversubscription allowed at
			// the margin, as in BOINC).
			remain[host.CPU] -= u.AvgCPUs
		}
		memRemain -= u.MemBytes
		run = append(run, r.task)

		if saturated(remain, in.Hardware) {
			break
		}
	}
	e.run = run //bce:retainok the Decision deliberately aliases scratch holding caller tasks until the next Enforce
	return Decision{Run: run}
}

// smallSortMax bounds the insertion-sorted queue size; beyond it the
// quadratic comparison count overtakes the generic sort's overhead.
const smallSortMax = 32

// insertionSortRanks stable-sorts ranks in place by lessRank: an
// element moves left only past strictly greater predecessors, so equal
// elements keep their input order.
func insertionSortRanks(r []rank) {
	for i := 1; i < len(r); i++ {
		for j := i; j > 0 && lessRank(r[j], r[j-1]); j-- {
			r[j], r[j-1] = r[j-1], r[j]
		}
	}
}

// Enforce runs one scheduling pass with throwaway scratch. Hot-path
// callers should keep an Enforcer and use its method.
func Enforce(in Input) Decision {
	var e Enforcer
	return e.Enforce(in)
}

func saturated(remain [host.NumProcTypes]float64, hw *host.Hardware) bool {
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if hw.Proc[t].Count > 0 && remain[t] > 1e-9 {
			return false
		}
	}
	return true
}
