package sched

import (
	"testing"

	"bce/internal/host"
	"bce/internal/job"
)

func hwCPU(n int) *host.Hardware {
	h := host.StdHost(n, 1e9, 0, 0)
	return &h.Hardware
}

func hwMixed(ncpu, ngpu int) *host.Hardware {
	h := host.StdHost(ncpu, 1e9, ngpu, 10e9)
	return &h.Hardware
}

func cpuTask(p int, name string) *job.Task {
	return &job.Task{
		Name: name, Project: p,
		Usage:    job.Usage{AvgCPUs: 1},
		Duration: 1000, EstDuration: 1000, Deadline: 1e9,
		CheckpointPeriod: 60,
	}
}

func gpuTask(p int, name string) *job.Task {
	t := cpuTask(p, name)
	t.Usage = job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1}
	return t
}

func noEndangered(*job.Task) bool         { return false }
func flatPrio(int, host.ProcType) float64 { return 0 }

func names(d Decision) []string {
	var out []string
	for _, t := range d.Run {
		out = append(out, t.Name)
	}
	return out
}

func has(d Decision, name string) bool {
	for _, t := range d.Run {
		if t.Name == name {
			return true
		}
	}
	return false
}

func TestPolicyStrings(t *testing.T) {
	if JSLocal.String() != "JS-LOCAL" || JSGlobal.String() != "JS-GLOBAL" || JSWRR.String() != "JS-WRR" {
		t.Fatal("policy names wrong")
	}
	if !JSLocal.UsesDeadlines() || !JSGlobal.UsesDeadlines() || JSWRR.UsesDeadlines() {
		t.Fatal("UsesDeadlines classification wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy formatting")
	}
}

func TestRunsUpToCPUCount(t *testing.T) {
	tasks := []*job.Task{cpuTask(0, "a"), cpuTask(0, "b"), cpuTask(0, "c")}
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(2), Tasks: tasks,
		Endangered: noEndangered, Prio: flatPrio, GPUAllowed: true,
	})
	if len(d.Run) != 2 {
		t.Fatalf("ran %v, want 2 tasks on 2 CPUs", names(d))
	}
}

func TestPriorityOrdersProjects(t *testing.T) {
	tasks := []*job.Task{cpuTask(0, "p0"), cpuTask(1, "p1")}
	prio := func(p int, _ host.ProcType) float64 { return float64(p) } // p1 higher
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(1), Tasks: tasks,
		Endangered: noEndangered, Prio: prio, GPUAllowed: true,
	})
	if len(d.Run) != 1 || d.Run[0].Name != "p1" {
		t.Fatalf("ran %v, want p1 (higher priority)", names(d))
	}
}

func TestEndangeredPrecedence(t *testing.T) {
	low := cpuTask(0, "low")
	low.Deadline = 5000
	high := cpuTask(1, "high")
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(1),
		Tasks:      []*job.Task{high, low},
		Endangered: func(tk *job.Task) bool { return tk.Name == "low" },
		Prio:       func(p int, _ host.ProcType) float64 { return float64(p) }, // high has higher prio
		GPUAllowed: true,
	})
	if len(d.Run) != 1 || d.Run[0].Name != "low" {
		t.Fatalf("ran %v, want the endangered job despite lower priority", names(d))
	}
}

func TestWRRIgnoresDeadlines(t *testing.T) {
	low := cpuTask(0, "low")
	high := cpuTask(1, "high")
	d := Enforce(Input{
		Policy: JSWRR, Hardware: hwCPU(1),
		Tasks:      []*job.Task{high, low},
		Endangered: func(tk *job.Task) bool { return tk.Name == "low" },
		Prio:       func(p int, _ host.ProcType) float64 { return float64(p) },
		GPUAllowed: true,
	})
	if len(d.Run) != 1 || d.Run[0].Name != "high" {
		t.Fatalf("JS-WRR ran %v, want priority order only", names(d))
	}
}

func TestEDFWithinEndangered(t *testing.T) {
	a := cpuTask(0, "later")
	a.Deadline = 2000
	b := cpuTask(1, "sooner")
	b.Deadline = 1000
	d := Enforce(Input{
		Policy: JSGlobal, Hardware: hwCPU(1),
		Tasks:      []*job.Task{a, b},
		Endangered: func(*job.Task) bool { return true },
		Prio:       flatPrio, GPUAllowed: true,
	})
	if d.Run[0].Name != "sooner" {
		t.Fatalf("ran %v, want earliest deadline first", names(d))
	}
}

func TestGPUJobsPrecedeCPUJobs(t *testing.T) {
	// 1 CPU. The GPU job's 0.2 CPUs are committed first, leaving the
	// CPU job to run too; both should be scheduled, GPU first.
	g := gpuTask(0, "gpu")
	c := cpuTask(1, "cpu")
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwMixed(1, 1),
		Tasks:      []*job.Task{c, g},
		Endangered: noEndangered, Prio: flatPrio, GPUAllowed: true,
	})
	if len(d.Run) != 2 || d.Run[0].Name != "gpu" {
		t.Fatalf("ran %v, want GPU job first then CPU job", names(d))
	}
}

func TestGPUNotAllowed(t *testing.T) {
	g := gpuTask(0, "gpu")
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwMixed(1, 1),
		Tasks:      []*job.Task{g},
		Endangered: noEndangered, Prio: flatPrio, GPUAllowed: false,
	})
	if len(d.Run) != 0 {
		t.Fatal("GPU job scheduled while GPU computing disallowed")
	}
}

func TestGPUExhaustion(t *testing.T) {
	g1, g2 := gpuTask(0, "g1"), gpuTask(1, "g2")
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwMixed(4, 1),
		Tasks:      []*job.Task{g1, g2},
		Endangered: noEndangered, Prio: flatPrio, GPUAllowed: true,
	})
	count := 0
	for _, tk := range d.Run {
		if tk.Usage.IsGPU() {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d GPU jobs on 1 GPU, want 1", count)
	}
}

func TestFractionalGPUSharing(t *testing.T) {
	g1, g2 := gpuTask(0, "g1"), gpuTask(1, "g2")
	g1.Usage.GPUUsage, g2.Usage.GPUUsage = 0.5, 0.5
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwMixed(4, 1),
		Tasks:      []*job.Task{g1, g2},
		Endangered: noEndangered, Prio: flatPrio, GPUAllowed: true,
	})
	if len(d.Run) != 2 {
		t.Fatalf("ran %v, want both half-GPU jobs", names(d))
	}
}

func TestMemoryLimitSkips(t *testing.T) {
	big := cpuTask(0, "big")
	big.Usage.MemBytes = 6e9
	small := cpuTask(1, "small")
	small.Usage.MemBytes = 1e9
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(2),
		Tasks:       []*job.Task{big, small},
		Endangered:  noEndangered,
		Prio:        func(p int, _ host.ProcType) float64 { return float64(-p) }, // big first
		MaxMemBytes: 5e9,
		GPUAllowed:  true,
	})
	// big doesn't fit in 5 GB; small does.
	if has(d, "big") || !has(d, "small") {
		t.Fatalf("ran %v, want memory-limited skip of big", names(d))
	}
}

func TestRunningUncheckpointedFirst(t *testing.T) {
	running := cpuTask(0, "running")
	running.Start(0)
	running.Advance(30, 30) // 30 s of un-checkpointed work (period 60)
	fresh := cpuTask(1, "fresh")
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(1),
		Tasks:      []*job.Task{fresh, running},
		Endangered: func(tk *job.Task) bool { return tk == fresh }, // even endangered loses
		Prio:       func(p int, _ host.ProcType) float64 { return float64(p) },
		GPUAllowed: true,
	})
	if d.Run[0].Name != "running" {
		t.Fatalf("ran %v, want un-checkpointed running job protected", names(d))
	}
}

func TestFinishedTasksIgnored(t *testing.T) {
	done := cpuTask(0, "done")
	done.State = job.Done
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(1),
		Tasks:      []*job.Task{done},
		Endangered: noEndangered, Prio: flatPrio, GPUAllowed: true,
	})
	if len(d.Run) != 0 {
		t.Fatal("finished task scheduled")
	}
}

func TestEmptyQueue(t *testing.T) {
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(4),
		Endangered: noEndangered, Prio: flatPrio, GPUAllowed: true,
	})
	if len(d.Run) != 0 {
		t.Fatal("empty queue produced a run set")
	}
}

func TestRunSet(t *testing.T) {
	a, b := cpuTask(0, "a"), cpuTask(0, "b")
	d := Decision{Run: []*job.Task{a, b}}
	s := d.RunSet()
	if !s[a] || !s[b] || len(s) != 2 {
		t.Fatal("RunSet content wrong")
	}
}

func TestTieBreakPrefersRunning(t *testing.T) {
	// Same project, same priority: the already-running (checkpointed)
	// task should be kept to avoid churn.
	r := cpuTask(0, "already")
	r.Start(0)
	r.Advance(60, 60) // exactly at checkpoint: SinceCheckpoint == 0
	q := cpuTask(0, "queued")
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(1),
		Tasks:      []*job.Task{q, r},
		Endangered: noEndangered, Prio: flatPrio, GPUAllowed: true,
	})
	if d.Run[0].Name != "already" {
		t.Fatalf("ran %v, want running task preferred on ties", names(d))
	}
}

func TestMultiCPUJobCommitsAll(t *testing.T) {
	wide := cpuTask(0, "wide")
	wide.Usage.AvgCPUs = 4
	extra := cpuTask(1, "extra")
	d := Enforce(Input{
		Policy: JSLocal, Hardware: hwCPU(4),
		Tasks:      []*job.Task{wide, extra},
		Endangered: noEndangered,
		Prio:       func(p int, _ host.ProcType) float64 { return float64(-p) },
		GPUAllowed: true,
	})
	if !has(d, "wide") || has(d, "extra") {
		t.Fatalf("ran %v, want the 4-CPU job to fill the host", names(d))
	}
}

func TestLLFOrdersByLaxity(t *testing.T) {
	// Job "tight" has less laxity (deadline 2000, 1500 s remaining →
	// laxity 500) than "soon" (deadline 1000, 100 s remaining →
	// laxity 900), so LLF runs "tight" first even though "soon" has
	// the earlier deadline.
	tight := cpuTask(0, "tight")
	tight.Duration, tight.EstDuration, tight.Deadline = 1500, 1500, 2000
	soon := cpuTask(1, "soon")
	soon.Duration, soon.EstDuration, soon.Deadline = 100, 100, 1000
	d := Enforce(Input{
		Policy: JSLLF, Now: 0, Hardware: hwCPU(1),
		Tasks:      []*job.Task{soon, tight},
		Endangered: func(*job.Task) bool { return true },
		Prio:       flatPrio, GPUAllowed: true,
	})
	if d.Run[0].Name != "tight" {
		t.Fatalf("ran %v, want least-laxity job first", names(d))
	}
	// EDF would pick the other one.
	d = Enforce(Input{
		Policy: JSLocal, Now: 0, Hardware: hwCPU(1),
		Tasks:      []*job.Task{soon, tight},
		Endangered: func(*job.Task) bool { return true },
		Prio:       flatPrio, GPUAllowed: true,
	})
	if d.Run[0].Name != "soon" {
		t.Fatalf("EDF ran %v, want earliest deadline first", names(d))
	}
}

func TestLLFName(t *testing.T) {
	if JSLLF.String() != "JS-LLF" || !JSLLF.UsesDeadlines() {
		t.Fatal("JS-LLF misdescribed")
	}
}
