// Package experiments defines the paper's four evaluation scenarios
// (§5) and a generator per figure. Each generator reruns the emulator
// the way the paper's controller script did and returns the figure's
// series; integration tests assert the paper's qualitative claims on
// the same data, and cmd/bcectl prints it.
package experiments

import (
	"context"
	"fmt"

	"bce/internal/client"
	"bce/internal/fetch"
	"bce/internal/harness"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
	"bce/internal/rrsim"
	"bce/internal/runner"
	"bce/internal/sched"
)

// Figure is one reproduced figure: X values and one Y series per
// variant/curve label.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Labels []string // curve order
	X      []float64
	Y      map[string][]float64 // label -> len(X) values
	Notes  string
}

// Row formats point i as a table row.
func (f *Figure) Row(i int) string {
	s := fmt.Sprintf("%-12.5g", f.X[i])
	for _, l := range f.Labels {
		s += fmt.Sprintf(" %12.4f", f.Y[l][i])
	}
	return s
}

// Header formats the column header row.
func (f *Figure) Header() string {
	s := fmt.Sprintf("%-12s", f.XLabel)
	for _, l := range f.Labels {
		s += fmt.Sprintf(" %12s", l)
	}
	return s
}

func cpuApp(name string, mean, stdev, bound float64) project.AppSpec {
	return project.AppSpec{
		Name:             name,
		Usage:            job.Usage{AvgCPUs: 1, MemBytes: 100e6},
		MeanDuration:     mean,
		StdevDuration:    stdev,
		LatencyBound:     bound,
		CheckpointPeriod: 60,
	}
}

func gpuApp(name string, mean, stdev, bound float64) project.AppSpec {
	return project.AppSpec{
		Name:             name,
		Usage:            job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1, MemBytes: 100e6},
		MeanDuration:     mean,
		StdevDuration:    stdev,
		LatencyBound:     bound,
		CheckpointPeriod: 60,
	}
}

// Scenario1 is the paper's "CPU only, two projects": project 1's jobs
// run 1000 s with the given latency bound (the figure-3 sweep variable);
// project 2 has the same jobs with a 10-day bound.
func Scenario1(latencyBound float64, js sched.Policy, seed int64) client.Config {
	h := host.StdHost(1, 1e9, 0, 0)
	// Queue preferences below one job length, so each fetch brings a
	// single job: the figure isolates the scheduling policy's effect
	// rather than queue-pressure (a queued second tight job can never
	// meet its deadline regardless of policy).
	h.Prefs.MinQueue = 300
	h.Prefs.MaxQueue = 900
	return client.Config{
		Host: h,
		Projects: []project.Spec{
			{Name: "project1", Share: 100, Apps: []project.AppSpec{cpuApp("tight", 1000, 0, latencyBound)}},
			{Name: "project2", Share: 100, Apps: []project.AppSpec{cpuApp("normal", 1000, 0, 10*86400)}},
		},
		JobSched: js,
		JobFetch: fetch.JFHysteresis,
		Duration: 10 * 86400,
		Seed:     seed,
	}
}

// Scenario2 is "4 CPUs and 1 GPU, GPU 10× faster than one CPU; two
// projects, one with CPU jobs, one with both".
func Scenario2(js sched.Policy, seed int64) client.Config {
	h := host.StdHost(4, 1e9, 1, 10e9)
	h.Prefs.MinQueue = 0.05 * 86400
	h.Prefs.MaxQueue = 0.25 * 86400
	return client.Config{
		Host: h,
		Projects: []project.Spec{
			{Name: "project1", Share: 100, Apps: []project.AppSpec{
				cpuApp("cpu", 1000, 50, 86400),
			}},
			{Name: "project2", Share: 100, Apps: []project.AppSpec{
				cpuApp("cpu", 1000, 50, 86400),
				gpuApp("gpu", 500, 25, 86400),
			}},
		},
		JobSched: js,
		JobFetch: fetch.JFHysteresis,
		Duration: 10 * 86400,
		Seed:     seed,
	}
}

// Scenario3LongJobSecs is the length of project 1's "long low-slack"
// jobs (the paper's million-second jobs).
const Scenario3LongJobSecs = 1e6

// Scenario3 is "CPU only; two projects, one with very long low-slack
// jobs". The low slack makes the long jobs immediately deadline-
// endangered, so they run to the exclusion of project 2; the REC
// half-life controls how long the system remembers the resulting
// overuse (figure 6).
func Scenario3(halfLife float64, seed int64) client.Config {
	h := host.StdHost(1, 1e9, 0, 0)
	h.Prefs.MinQueue = 0.05 * 86400
	h.Prefs.MaxQueue = 0.25 * 86400
	return client.Config{
		Host: h,
		Projects: []project.Spec{
			{Name: "longjobs", Share: 100, Apps: []project.AppSpec{
				cpuApp("long", Scenario3LongJobSecs, 0, 1.5*Scenario3LongJobSecs),
			}},
			{Name: "normal", Share: 100, Apps: []project.AppSpec{
				cpuApp("normal", 1000, 50, 10*86400),
			}},
		},
		JobSched:    sched.JSGlobal, // the paper's JS-REC
		JobFetch:    fetch.JFHysteresis,
		RECHalfLife: halfLife,
		Duration:    60 * 86400, // several long-job lengths
		Seed:        seed,
	}
}

// Scenario4 is "CPU and GPU; twenty projects with varying job types".
func Scenario4(jf fetch.PolicyKind, seed int64) client.Config {
	h := host.StdHost(4, 1e9, 1, 10e9)
	h.Prefs.MinQueue = 0.1 * 86400
	h.Prefs.MaxQueue = 0.6 * 86400
	var projects []project.Spec
	for i := 0; i < 20; i++ {
		mean := 300 * float64(1+i%7) // runtimes from 5 min to 35 min
		bound := mean * 50
		var apps []project.AppSpec
		switch i % 4 {
		case 0:
			apps = []project.AppSpec{gpuApp("gpu", mean/2, mean/20, bound)}
		case 1:
			apps = []project.AppSpec{
				cpuApp("cpu", mean, mean/10, bound),
				gpuApp("gpu", mean/2, mean/20, bound),
			}
		default:
			apps = []project.AppSpec{cpuApp("cpu", mean, mean/10, bound)}
		}
		projects = append(projects, project.Spec{
			Name:  fmt.Sprintf("proj%02d", i),
			Share: 100,
			Apps:  apps,
		})
	}
	return client.Config{
		Host:     h,
		Projects: projects,
		JobSched: sched.JSGlobal,
		JobFetch: jf,
		Duration: 10 * 86400,
		Seed:     seed,
	}
}

// Figure1 reproduces the paper's Figure 1: on a host with a 10 GFLOPS
// CPU and a 20 GFLOPS GPU, projects A (CPU+GPU jobs) and B (GPU only)
// with equal shares should each receive 15 GFLOPS — A gets 100% of the
// CPU plus 25% of the GPU, B gets 75% of the GPU. The emulator is run
// for 10 days and the achieved per-device throughput is reported.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Figure1(seeds []int64) (*Figure, error) {
	return Figure1Context(context.Background(), seeds)
}

// Figure1Context is Figure1 on the runner engine: the replicated runs
// execute on the engine's worker pool under ctx.
func Figure1Context(ctx context.Context, seeds []int64, opts ...runner.Option) (*Figure, error) {
	fig := &Figure{
		ID:     "fig1",
		Title:  "Resource share applies to combined processing resources",
		XLabel: "project",
		YLabel: "achieved GFLOPS",
		Labels: []string{"CPU", "GPU", "total"},
		X:      []float64{0, 1},
		Y:      map[string][]float64{"CPU": {0, 0}, "GPU": {0, 0}, "total": {0, 0}},
		Notes:  "expect A=10+5=15, B=0+15=15",
	}
	h := func(seed int64) client.Config {
		hh := host.StdHost(1, 10e9, 1, 20e9)
		hh.Prefs.MinQueue = 0.05 * 86400
		hh.Prefs.MaxQueue = 0.25 * 86400
		return client.Config{
			Host: hh,
			Projects: []project.Spec{
				{Name: "A", Share: 100, Apps: []project.AppSpec{
					cpuApp("cpu", 1000, 0, 86400),
					gpuApp("gpu", 500, 0, 86400),
				}},
				{Name: "B", Share: 100, Apps: []project.AppSpec{
					gpuApp("gpu", 500, 0, 86400),
				}},
			},
			JobSched: sched.JSGlobal,
			JobFetch: fetch.JFHysteresis,
			Duration: 10 * 86400,
			Seed:     seed,
		}
	}
	agg, err := harness.ReplicateContext(ctx, harness.Variant{Label: "fig1", Make: h}, seeds, opts...)
	if err != nil {
		return nil, err
	}
	for _, m := range agg.Raw {
		dur := 10 * 86400.0
		for p := 0; p < 2; p++ {
			cpu := m.UsedByProjectType[p][host.CPU] / dur / 1e9
			gpu := m.UsedByProjectType[p][host.NvidiaGPU] / dur / 1e9
			fig.Y["CPU"][p] += cpu
			fig.Y["GPU"][p] += gpu
			fig.Y["total"][p] += cpu + gpu
		}
	}
	for _, l := range fig.Labels {
		for i := range fig.Y[l] {
			fig.Y[l][i] /= float64(agg.N)
		}
	}
	return fig, nil
}

// Figure2 reproduces the round-robin-simulation illustration: the
// predicted busy-instance step function for a sample workload.
func Figure2() *Figure {
	hw := &host.StdHost(4, 1e9, 1, 10e9).Hardware
	jobs := []*rrsim.Job{
		{Project: 0, Type: host.CPU, Instances: 1, Remaining: 4000, Deadline: 20000},
		{Project: 0, Type: host.CPU, Instances: 1, Remaining: 8000, Deadline: 20000},
		{Project: 1, Type: host.CPU, Instances: 2, Remaining: 3000, Deadline: 30000},
		{Project: 1, Type: host.NvidiaGPU, Instances: 1, Remaining: 2500, Deadline: 30000},
	}
	res := rrsim.Run(rrsim.Input{
		Hardware: hw, Shares: []float64{100, 100},
		HorizonMin: 3600, HorizonMax: 14400,
		Jobs: jobs, Trace: true,
	})
	fig := &Figure{
		ID:     "fig2",
		Title:  "Round-robin simulation: predicted busy instances over time",
		XLabel: "time (s)",
		YLabel: "busy instances",
		Labels: []string{"CPU", "GPU"},
		Y:      map[string][]float64{"CPU": nil, "GPU": nil},
		Notes: fmt.Sprintf("SAT(CPU)=%.0f SHORTFALL_max(CPU)=%.0f SAT(GPU)=%.0f SHORTFALL_max(GPU)=%.0f",
			res.Saturated[host.CPU], res.ShortfallMax[host.CPU],
			res.Saturated[host.NvidiaGPU], res.ShortfallMax[host.NvidiaGPU]),
	}
	for _, st := range res.Trace {
		fig.X = append(fig.X, st.Start)
		fig.Y["CPU"] = append(fig.Y["CPU"], st.Busy[host.CPU])
		fig.Y["GPU"] = append(fig.Y["GPU"], st.Busy[host.NvidiaGPU])
	}
	return fig
}

// Figure3 reproduces "a job-scheduling policy that incorporates
// deadlines wastes less processing time": wasted fraction vs project
// 1's latency bound (1000–2000 s for 1000 s jobs) under JS-WRR,
// JS-LOCAL and JS-GLOBAL in scenario 1.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Figure3(seeds []int64) (*Figure, error) {
	return Figure3Context(context.Background(), seeds)
}

// Figure3Context is Figure3 on the runner engine.
func Figure3Context(ctx context.Context, seeds []int64, opts ...runner.Option) (*Figure, error) {
	bounds := []float64{1000, 1100, 1200, 1400, 1600, 1800, 2000}
	variants := func(x float64) []harness.Variant {
		return []harness.Variant{
			{Label: "JS-WRR", Make: func(s int64) client.Config { return Scenario1(x, sched.JSWRR, s) }},
			{Label: "JS-LOCAL", Make: func(s int64) client.Config { return Scenario1(x, sched.JSLocal, s) }},
			{Label: "JS-GLOBAL", Make: func(s int64) client.Config { return Scenario1(x, sched.JSGlobal, s) }},
		}
	}
	sweep, err := harness.SweepContext(ctx, "latency_bound", bounds, variants, seeds, opts...)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig3",
		Title:  "Deadline scheduling reduces wasted processing (scenario 1)",
		XLabel: "latency bound (s)",
		YLabel: "wasted fraction",
		Labels: []string{"JS-WRR", "JS-LOCAL", "JS-GLOBAL"},
		X:      bounds,
		Y:      map[string][]float64{},
	}
	for _, l := range fig.Labels {
		_, ys := sweep.Series(l, "wasted")
		fig.Y[l] = ys
	}
	return fig, nil
}

// Figure4 reproduces "global accounting reduces share violation":
// share violation (and idle fraction for context) for JS-LOCAL vs
// JS-GLOBAL in scenario 2.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Figure4(seeds []int64) (*Figure, error) {
	return Figure4Context(context.Background(), seeds)
}

// Figure4Context is Figure4 on the runner engine.
func Figure4Context(ctx context.Context, seeds []int64, opts ...runner.Option) (*Figure, error) {
	cmp, err := harness.CompareContext(ctx, []harness.Variant{
		{Label: "JS-LOCAL", Make: func(s int64) client.Config { return Scenario2(sched.JSLocal, s) }},
		{Label: "JS-GLOBAL", Make: func(s int64) client.Config { return Scenario2(sched.JSGlobal, s) }},
	}, seeds, opts...)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig4",
		Title:  "Global resource-share accounting reduces share violation (scenario 2)",
		XLabel: "metric [0=violation 1=idle 2=wasted]",
		YLabel: "value",
		Labels: []string{"JS-LOCAL", "JS-GLOBAL"},
		X:      []float64{0, 1, 2},
		Y:      map[string][]float64{},
	}
	for _, l := range fig.Labels {
		agg := cmp.Aggs[l]
		fig.Y[l] = []float64{
			agg.MetricByName("share_violation"),
			agg.MetricByName("idle"),
			agg.MetricByName("wasted"),
		}
	}
	return fig, nil
}

// Figure5 reproduces "job-fetch hysteresis reduces scheduler RPCs":
// RPCs/job and monotony for JF-ORIG vs JF-HYSTERESIS in scenario 4,
// plus the JF-SPREAD hybrid (§6.2 "other policy alternatives") between
// them.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Figure5(seeds []int64) (*Figure, error) {
	return Figure5Context(context.Background(), seeds)
}

// Figure5Context is Figure5 on the runner engine.
func Figure5Context(ctx context.Context, seeds []int64, opts ...runner.Option) (*Figure, error) {
	cmp, err := harness.CompareContext(ctx, []harness.Variant{
		{Label: "JF-ORIG", Make: func(s int64) client.Config { return Scenario4(fetch.JFOrig, s) }},
		{Label: "JF-HYSTERESIS", Make: func(s int64) client.Config { return Scenario4(fetch.JFHysteresis, s) }},
		{Label: "JF-SPREAD", Make: func(s int64) client.Config { return Scenario4(fetch.JFSpread, s) }},
	}, seeds, opts...)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig5",
		Title:  "Fetch hysteresis reduces RPCs per job, raises monotony (scenario 4)",
		XLabel: "metric [0=rpcs_per_job 1=monotony 2=idle]",
		YLabel: "value",
		Labels: []string{"JF-ORIG", "JF-HYSTERESIS", "JF-SPREAD"},
		X:      []float64{0, 1, 2},
		Y:      map[string][]float64{},
	}
	for _, l := range fig.Labels {
		agg := cmp.Aggs[l]
		fig.Y[l] = []float64{
			agg.MetricByName("rpcs_per_job"),
			agg.MetricByName("monotony"),
			agg.MetricByName("idle"),
		}
	}
	return fig, nil
}

// Figure6 reproduces "credit-estimate half-life affects resource share
// violation": share violation vs REC half-life A in scenario 3.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Figure6(seeds []int64) (*Figure, error) {
	return Figure6Context(context.Background(), seeds)
}

// Figure6Context is Figure6 on the runner engine.
func Figure6Context(ctx context.Context, seeds []int64, opts ...runner.Option) (*Figure, error) {
	halfLives := []float64{
		0.1 * Scenario3LongJobSecs,
		0.3 * Scenario3LongJobSecs,
		1 * Scenario3LongJobSecs,
		3 * Scenario3LongJobSecs,
		10 * Scenario3LongJobSecs,
	}
	variants := func(x float64) []harness.Variant {
		return []harness.Variant{
			{Label: "JS-REC", Make: func(s int64) client.Config { return Scenario3(x, s) }},
		}
	}
	sweep, err := harness.SweepContext(ctx, "half_life", halfLives, variants, seeds, opts...)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig6",
		Title:  "Longer REC half-life reduces share violation with long jobs (scenario 3)",
		XLabel: "half-life (s)",
		YLabel: "share violation",
		Labels: []string{"JS-REC"},
		X:      halfLives,
		Y:      map[string][]float64{},
	}
	_, ys := sweep.Series("JS-REC", "share_violation")
	fig.Y["JS-REC"] = ys
	return fig, nil
}
