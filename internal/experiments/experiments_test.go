package experiments

import (
	"testing"

	"bce/internal/client"
	"bce/internal/harness"
	"bce/internal/host"
	"bce/internal/sched"
)

// One seed keeps the suite fast; the figures are strongly separated so
// a single replication is decisive. cmd/bcectl and the benchmarks run
// more seeds.
var seeds = []int64{1}

func TestFigure1ShareSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	fig, err := Figure1(seeds)
	if err != nil {
		t.Fatal(err)
	}
	aCPU, bCPU := fig.Y["CPU"][0], fig.Y["CPU"][1]
	aGPU, bGPU := fig.Y["GPU"][0], fig.Y["GPU"][1]
	aTot, bTot := fig.Y["total"][0], fig.Y["total"][1]
	// Paper Figure 1: A ≈ 10 GF CPU + 5 GF GPU, B ≈ 15 GF GPU; each
	// project ends up with ~15 GF. Allow emulation slack.
	if aCPU < 8 {
		t.Fatalf("project A CPU = %v GF, want ~10 (all of the CPU)", aCPU)
	}
	if bCPU > 3 {
		t.Fatalf("project B CPU = %v GF, want ~0 (B has no CPU jobs beyond GPU feeding)", bCPU)
	}
	if aGPU < 3 || aGPU > 8 {
		t.Fatalf("project A GPU = %v GF, want ~5 (25%% of the GPU)", aGPU)
	}
	if bGPU < 12 || bGPU > 18 {
		t.Fatalf("project B GPU = %v GF, want ~15 (75%% of the GPU)", bGPU)
	}
	if aTot < 13 || aTot > 18 || bTot < 13 || bTot > 18 {
		t.Fatalf("totals A=%v B=%v, want ~15 each (equal shares)", aTot, bTot)
	}
}

func TestFigure2Trace(t *testing.T) {
	fig := Figure2()
	if len(fig.X) < 3 {
		t.Fatalf("trace has %d steps, want several", len(fig.X))
	}
	// Busy counts never exceed the instance counts and end at 0.
	for i := range fig.X {
		if fig.Y["CPU"][i] < 0 || fig.Y["CPU"][i] > 4 {
			t.Fatalf("CPU busy out of range at %d: %v", i, fig.Y["CPU"][i])
		}
		if fig.Y["GPU"][i] < 0 || fig.Y["GPU"][i] > 1 {
			t.Fatalf("GPU busy out of range at %d: %v", i, fig.Y["GPU"][i])
		}
	}
	last := len(fig.X) - 1
	if fig.Y["CPU"][last] != 0 {
		t.Fatalf("workload should drain; final CPU busy = %v", fig.Y["CPU"][last])
	}
	// Starts fully busy (4 CPU jobs' worth queued on 4 CPUs).
	if fig.Y["CPU"][0] != 4 || fig.Y["GPU"][0] != 1 {
		t.Fatalf("initial busy = %v/%v, want 4/1", fig.Y["CPU"][0], fig.Y["GPU"][0])
	}
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	fig, err := Figure3(seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Zero slack: every policy wastes about half the processing.
	for _, l := range fig.Labels {
		if v := fig.Y[l][0]; v < 0.35 || v > 0.65 {
			t.Fatalf("%s wasted %v at zero slack, want ~0.5", l, v)
		}
	}
	// With slack, the deadline-aware policies waste much less than WRR.
	for i := 1; i < len(fig.X); i++ {
		wrr := fig.Y["JS-WRR"][i]
		for _, l := range []string{"JS-LOCAL", "JS-GLOBAL"} {
			if fig.Y[l][i] >= wrr {
				t.Fatalf("at bound %v, %s wasted %v >= JS-WRR %v",
					fig.X[i], l, fig.Y[l][i], wrr)
			}
		}
	}
	// And they approach zero at generous slack.
	if v := fig.Y["JS-LOCAL"][len(fig.X)-1]; v > 0.1 {
		t.Fatalf("JS-LOCAL wasted %v at bound 2000, want ~0", v)
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	fig, err := Figure4(seeds)
	if err != nil {
		t.Fatal(err)
	}
	local, global := fig.Y["JS-LOCAL"][0], fig.Y["JS-GLOBAL"][0]
	if global >= local {
		t.Fatalf("share violation: global %v >= local %v; paper says global is lower", global, local)
	}
	// Both keep the machine busy (idle ~0).
	if fig.Y["JS-LOCAL"][1] > 0.1 || fig.Y["JS-GLOBAL"][1] > 0.1 {
		t.Fatalf("idle fractions too high: %v / %v", fig.Y["JS-LOCAL"][1], fig.Y["JS-GLOBAL"][1])
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	fig, err := Figure5(seeds)
	if err != nil {
		t.Fatal(err)
	}
	origRPC, hystRPC := fig.Y["JF-ORIG"][0], fig.Y["JF-HYSTERESIS"][0]
	if hystRPC >= origRPC {
		t.Fatalf("RPCs/job: hysteresis %v >= orig %v; paper says hysteresis is lower", hystRPC, origRPC)
	}
	origMono, hystMono := fig.Y["JF-ORIG"][1], fig.Y["JF-HYSTERESIS"][1]
	if hystMono <= origMono {
		t.Fatalf("monotony: hysteresis %v <= orig %v; paper says hysteresis increases it", hystMono, origMono)
	}
	// The JF-SPREAD hybrid should land between the two on both axes.
	spreadRPC, spreadMono := fig.Y["JF-SPREAD"][0], fig.Y["JF-SPREAD"][1]
	if spreadRPC <= hystRPC || spreadRPC >= origRPC {
		t.Fatalf("JF-SPREAD RPCs %v not between hysteresis %v and orig %v", spreadRPC, hystRPC, origRPC)
	}
	if spreadMono <= origMono || spreadMono >= hystMono {
		t.Fatalf("JF-SPREAD monotony %v not between orig %v and hysteresis %v", spreadMono, origMono, hystMono)
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	fig, err := Figure6(seeds)
	if err != nil {
		t.Fatal(err)
	}
	ys := fig.Y["JS-REC"]
	// Short memory → high violation; long memory → low.
	if ys[0] <= ys[len(ys)-1] {
		t.Fatalf("violation should fall with half-life: %v", ys)
	}
	if ys[0] < 0.2 {
		t.Fatalf("violation at short half-life = %v, want substantial", ys[0])
	}
	if ys[len(ys)-1] > 0.2 {
		t.Fatalf("violation at long half-life = %v, want small", ys[len(ys)-1])
	}
	// Broadly decreasing (allow one inversion from noise).
	inversions := 0
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+0.02 {
			inversions++
		}
	}
	if inversions > 1 {
		t.Fatalf("violation not broadly decreasing: %v", ys)
	}
}

func TestScenarioConfigsValid(t *testing.T) {
	for name, cfg := range map[string]client.Config{
		"s1": Scenario1(1500, 0, 1),
		"s2": Scenario2(0, 1),
		"s3": Scenario3(1e6, 1),
		"s4": Scenario4(0, 1),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
}

func TestScenario4Composition(t *testing.T) {
	cfg := Scenario4(0, 1)
	if len(cfg.Projects) != 20 {
		t.Fatalf("scenario 4 has %d projects, want 20", len(cfg.Projects))
	}
	gpuOnly, both, cpuOnly := 0, 0, 0
	for _, p := range cfg.Projects {
		hasCPU, hasGPU := false, false
		for _, a := range p.Apps {
			if a.Usage.IsGPU() {
				hasGPU = true
			} else {
				hasCPU = true
			}
		}
		switch {
		case hasCPU && hasGPU:
			both++
		case hasGPU:
			gpuOnly++
		default:
			cpuOnly++
		}
	}
	if gpuOnly == 0 || both == 0 || cpuOnly == 0 {
		t.Fatalf("job types not varied: gpu=%d both=%d cpu=%d", gpuOnly, both, cpuOnly)
	}
}

func TestFigureFormatting(t *testing.T) {
	fig := Figure2()
	if fig.Header() == "" || fig.Row(0) == "" {
		t.Fatal("figure formatting empty")
	}
}

// Sanity: the scenario-2 hardware matches the paper (GPU 10× one CPU).
func TestScenario2Hardware(t *testing.T) {
	cfg := Scenario2(0, 1)
	hw := cfg.Host.Hardware
	if hw.Proc[host.CPU].Count != 4 || hw.Proc[host.NvidiaGPU].Count != 1 {
		t.Fatal("scenario 2 device counts wrong")
	}
	ratio := hw.Proc[host.NvidiaGPU].FLOPSPerInst / hw.Proc[host.CPU].FLOPSPerInst
	if ratio != 10 {
		t.Fatalf("GPU/CPU speed ratio = %v, want 10", ratio)
	}
}

// The harness path used by bcectl agrees with a direct client run.
func TestHarnessIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	agg, err := harness.Replicate(harness.Variant{
		Label: "s2-local",
		Make:  func(s int64) client.Config { return Scenario2(sched.JSLocal, s) },
	}, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := harness.Run(Scenario2(sched.JSLocal, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Metrics.Values()
	for i, v := range agg.Mean {
		if diff := v - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("harness aggregate %v != direct run %v", agg.Mean, want)
		}
	}
}

func TestExtTransferShape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	fig, err := ExtTransfer(seeds)
	if err != nil {
		t.Fatal(err)
	}
	missed := fig.Y["missed_per_day"]
	// Order on X: fifo, smallest-first, edf. EDF best, smallest worst.
	if missed[2] >= missed[0] {
		t.Fatalf("EDF misses %v >= FIFO %v", missed[2], missed[0])
	}
	if missed[1] <= missed[0] {
		t.Fatalf("smallest-first misses %v <= FIFO %v", missed[1], missed[0])
	}
}

func TestExtFleetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	fig, err := ExtFleet(seeds)
	if err != nil {
		t.Fatal(err)
	}
	v := fig.Y["violation"]
	if v[1] >= v[0] {
		t.Fatalf("planned violation %v >= uniform %v", v[1], v[0])
	}
	if v[1] > 0.05 {
		t.Fatalf("planned violation %v, want near zero", v[1])
	}
}

func TestExtServerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	fig, err := ExtServer([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	thr := fig.Y["validWU_per_day"]
	// Throughput falls as quorum rises: 1of1 > 2of2 > 3of3.
	if !(thr[0] > thr[1] && thr[1] > thr[3]) {
		t.Fatalf("throughput not ordered by quorum: %v", thr)
	}
	// 2-of-3 carries the redundancy waste.
	waste := fig.Y["waste"]
	if waste[2] <= waste[1] {
		t.Fatalf("2-of-3 waste %v <= 2-of-2 %v", waste[2], waste[1])
	}
	// ... and buys a shorter turnaround than 2-of-2.
	turn := fig.Y["turnaround_h"]
	if turn[2] >= turn[1] {
		t.Fatalf("2-of-3 turnaround %v >= 2-of-2 %v", turn[2], turn[1])
	}
}

func TestExtensionRegistry(t *testing.T) {
	if len(Extensions()) != 3 {
		t.Fatal("extension registry size")
	}
	if _, err := ExtensionByID("ext-fleet"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtensionByID("nope"); err == nil {
		t.Fatal("unknown extension accepted")
	}
}
