// Appendix experiments: the same figure machinery applied to the
// repository's extensions (paper §6.2 future work), so bcectl can
// regenerate them alongside the paper's figures.
package experiments

import (
	"context"
	"fmt"

	"bce/internal/client"
	"bce/internal/emserver"
	"bce/internal/fetch"
	"bce/internal/fleet"
	"bce/internal/harness"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
	"bce/internal/runner"
	"bce/internal/transfer"
)

// ExtTransfer compares the file-transfer ordering policies on a
// slow-link host running urgent big-input jobs next to bulk ones
// (§6.2 "the order in which files are uploaded and downloaded").
// Reported value: deadline misses per emulated day, per policy.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func ExtTransfer(seeds []int64) (*Figure, error) {
	return ExtTransferContext(context.Background(), seeds)
}

// ExtTransferContext is ExtTransfer on the runner engine.
func ExtTransferContext(ctx context.Context, seeds []int64, opts ...runner.Option) (*Figure, error) {
	mkCfg := func(policy transfer.Policy, seed int64) client.Config {
		h := host.StdHost(2, 2e9, 0, 0)
		h.Prefs.MinQueue = 3600
		h.Prefs.MaxQueue = 4 * 3600
		h.Hardware.DownloadBps = 1e6
		h.Hardware.UploadBps = 1e6
		urgent := project.AppSpec{
			Name: "urgent", Usage: job.Usage{AvgCPUs: 1, MemBytes: 100e6},
			MeanDuration: 600, LatencyBound: 1800, CheckpointPeriod: 60,
			InputBytes: 300e6, OutputBytes: 5e6,
		}
		bulk := project.AppSpec{
			Name: "bulk", Usage: job.Usage{AvgCPUs: 1, MemBytes: 100e6},
			MeanDuration: 1200, LatencyBound: 86400, CheckpointPeriod: 60,
			InputBytes: 100e6, OutputBytes: 5e6,
		}
		return client.Config{
			Host: h,
			Projects: []project.Spec{
				{Name: "mix", Share: 100, Apps: []project.AppSpec{urgent, bulk}},
			},
			// Hysteresis fetch brings jobs in bursts, so several input
			// files queue on the link at once — which is when the
			// transfer-ordering policy matters.
			JobFetch:       fetch.JFHysteresis,
			TransferPolicy: policy,
			Duration:       2 * 86400,
			Seed:           seed,
		}
	}
	fig := &Figure{
		ID:     "ext-transfer",
		Title:  "Transfer ordering vs deadline misses (file-transfer extension)",
		XLabel: "policy [0=fifo 1=smallest 2=edf]",
		YLabel: "wasted fraction",
		Labels: []string{"wasted", "missed_per_day"},
		X:      []float64{0, 1, 2},
		Y:      map[string][]float64{"wasted": {}, "missed_per_day": {}},
	}
	for _, pol := range []transfer.Policy{transfer.FIFO, transfer.SmallestFirst, transfer.EDF} {
		pol := pol
		agg, err := harness.ReplicateContext(ctx, harness.Variant{
			Label: pol.String(),
			Make:  func(s int64) client.Config { return mkCfg(pol, s) },
		}, seeds, opts...)
		if err != nil {
			return nil, err
		}
		var missed float64
		for _, m := range agg.Raw {
			missed += float64(m.MissedJobs)
		}
		fig.Y["wasted"] = append(fig.Y["wasted"], agg.MetricByName("wasted"))
		fig.Y["missed_per_day"] = append(fig.Y["missed_per_day"], missed/float64(len(agg.Raw))/2)
	}
	fig.Notes = "EDF ordering should miss the fewest deadlines; smallest-first the most"
	return fig, nil
}

// ExtFleet compares uniform per-host shares against fleet-planned
// shares (§6.2 "enforcing resource share across a volunteer's hosts").
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func ExtFleet(seeds []int64) (*Figure, error) {
	return ExtFleetContext(context.Background(), seeds)
}

// ExtFleetContext is ExtFleet on the runner engine: each fleet
// evaluation emulates its hosts concurrently.
func ExtFleetContext(ctx context.Context, seeds []int64, opts ...runner.Option) (*Figure, error) {
	mkFleet := func() *fleet.Fleet {
		mk := func(ncpu int, cpuF float64, ngpu int, gpuF float64) *host.Host {
			h := host.StdHost(ncpu, cpuF, ngpu, gpuF)
			h.Prefs.MinQueue = 1200
			h.Prefs.MaxQueue = 3600
			return h
		}
		cpuA := project.AppSpec{Name: "cpu", Usage: job.Usage{AvgCPUs: 1},
			MeanDuration: 1000, LatencyBound: 864000, CheckpointPeriod: 60}
		gpuA := project.AppSpec{Name: "gpu",
			Usage:        job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1},
			MeanDuration: 500, LatencyBound: 864000, CheckpointPeriod: 60}
		return &fleet.Fleet{
			Hosts: []*host.Host{mk(4, 1e9, 1, 10e9), mk(8, 1e9, 0, 0)},
			Projects: []project.Spec{
				{Name: "A", Share: 100, Apps: []project.AppSpec{cpuA, gpuA}},
				{Name: "B", Share: 100, Apps: []project.AppSpec{cpuA}},
			},
		}
	}
	fig := &Figure{
		ID:     "ext-fleet",
		Title:  "Fleet-wide share planning vs per-host enforcement",
		XLabel: "plan [0=uniform 1=planned]",
		YLabel: "global share violation",
		Labels: []string{"violation"},
		X:      []float64{0, 1},
		Y:      map[string][]float64{"violation": {0, 0}},
	}
	for _, seed := range seeds {
		f := mkFleet()
		uni, err := f.EvaluateContext(ctx, fleet.Uniform(f), 2*86400, seed, opts...)
		if err != nil {
			return nil, err
		}
		plan, err := fleet.Optimize(f)
		if err != nil {
			return nil, err
		}
		opt, err := f.EvaluateContext(ctx, plan, 2*86400, seed, opts...)
		if err != nil {
			return nil, err
		}
		fig.Y["violation"][0] += uni.GlobalViolation / float64(len(seeds))
		fig.Y["violation"][1] += opt.GlobalViolation / float64(len(seeds))
	}
	fig.Notes = "planned shares should roughly eliminate the global violation"
	return fig, nil
}

// ExtServer sweeps the replication level of the EmBOINC-style server
// emulation (the §6.1 complement): validated throughput and waste per
// replication policy.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func ExtServer(seeds []int64) (*Figure, error) {
	return ExtServerContext(context.Background(), seeds)
}

// ExtServerContext is ExtServer with cancellation between server
// emulations (the emserver substrate is a single sequential emulation
// per cell, so ctx is checked at cell boundaries).
func ExtServerContext(ctx context.Context, seeds []int64, _ ...runner.Option) (*Figure, error) {
	type combo struct {
		label          string
		target, quorum int
	}
	combos := []combo{{"1-of-1", 1, 1}, {"2-of-2", 2, 2}, {"2-of-3", 3, 2}, {"3-of-3", 3, 3}}
	fig := &Figure{
		ID:     "ext-server",
		Title:  "Server-side replication trade-off (EmBOINC-style emulation)",
		XLabel: "policy [0=1of1 1=2of2 2=2of3 3=3of3]",
		YLabel: "value",
		Labels: []string{"validWU_per_day", "waste", "turnaround_h"},
		X:      []float64{0, 1, 2, 3},
		Y: map[string][]float64{
			"validWU_per_day": {}, "waste": {}, "turnaround_h": {},
		},
	}
	for _, c := range combos {
		var thr, waste, turn float64
		for _, seed := range seeds {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: %s stopped: %w", fig.ID, context.Cause(ctx))
			}
			st := emserver.Run(emserver.Params{
				Seed:           seed,
				NHosts:         150,
				Duration:       6 * 86400,
				TargetNResults: c.target,
				MinQuorum:      c.quorum,
			})
			thr += st.Throughput(6*86400) / float64(len(seeds))
			waste += st.WasteFraction() / float64(len(seeds))
			turn += st.Turnaround.Mean() / 3600 / float64(len(seeds))
		}
		fig.Y["validWU_per_day"] = append(fig.Y["validWU_per_day"], thr)
		fig.Y["waste"] = append(fig.Y["waste"], waste)
		fig.Y["turnaround_h"] = append(fig.Y["turnaround_h"], turn)
	}
	fig.Notes = "2-of-3 trades waste for lower turnaround; quorum growth divides throughput"
	return fig, nil
}

// Extension is the registry entry for an appendix experiment. Gen runs
// on the runner engine under ctx with the given batch options.
type Extension struct {
	ID  string
	Gen func(ctx context.Context, seeds []int64, opts ...runner.Option) (*Figure, error)
}

// Extensions lists the appendix experiments in order.
func Extensions() []Extension {
	return []Extension{
		{"ext-transfer", ExtTransferContext},
		{"ext-fleet", ExtFleetContext},
		{"ext-server", ExtServerContext},
	}
}

// ExtensionByID returns the generator for one appendix experiment.
func ExtensionByID(id string) (Extension, error) {
	for _, e := range Extensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Extension{}, fmt.Errorf("experiments: unknown extension %q", id)
}
