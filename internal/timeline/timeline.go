// Package timeline records which tasks executed when and renders the
// paper's "time-line visualization of processor usage" as ASCII art or
// SVG. Segments are recorded by the client as tasks start and stop;
// rendering groups them by project.
package timeline

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"bce/internal/host"
)

// Segment is one contiguous execution span of one task.
type Segment struct {
	Start, End float64
	Task       string
	Project    int
	Type       host.ProcType
	Instances  float64
}

// Recorder accumulates segments.
type Recorder struct {
	Segments []Segment
	open     map[string]*Segment
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[string]*Segment)}
}

// Start opens a segment for the task at time now.
func (r *Recorder) Start(now float64, task string, project int, t host.ProcType, instances float64) {
	r.open[task] = &Segment{Start: now, Task: task, Project: project, Type: t, Instances: instances}
}

// Stop closes the task's open segment at time now (no-op if none).
func (r *Recorder) Stop(now float64, task string) {
	s, ok := r.open[task]
	if !ok {
		return
	}
	delete(r.open, task)
	s.End = now
	if s.End > s.Start {
		r.Segments = append(r.Segments, *s)
	}
}

// CloseAll closes every open segment at time now (end of emulation).
// Closing happens in sorted task order: map order would append the
// final segments to Segments differently run to run, making the
// rendered ASCII/SVG text order-unstable.
func (r *Recorder) CloseAll(now float64) {
	tasks := make([]string, 0, len(r.open))
	for task := range r.open { //bce:unordered collecting keys to sort just below
		tasks = append(tasks, task)
	}
	sort.Strings(tasks)
	for _, task := range tasks {
		r.Stop(now, task)
	}
}

// Span returns the [min start, max end] of all segments.
func (r *Recorder) Span() (float64, float64) {
	if len(r.Segments) == 0 {
		return 0, 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range r.Segments {
		lo = math.Min(lo, s.Start)
		hi = math.Max(hi, s.End)
	}
	return lo, hi
}

// ASCII renders per-project occupancy rows with the given width in
// characters. Each cell shows whether the project ran anything during
// that time slice ('#' busy, '.' idle).
func (r *Recorder) ASCII(nproj, width int) string {
	lo, hi := r.Span()
	if hi <= lo || width <= 0 {
		return "(empty timeline)\n"
	}
	var b strings.Builder
	cell := (hi - lo) / float64(width)
	for p := 0; p < nproj; p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range r.Segments {
			if s.Project != p {
				continue
			}
			i0 := int((s.Start - lo) / cell)
			i1 := int(math.Ceil((s.End - lo) / cell))
			for i := i0; i < i1 && i < width; i++ {
				if i >= 0 {
					row[i] = '#'
				}
			}
		}
		fmt.Fprintf(&b, "P%-2d |%s|\n", p, row)
	}
	fmt.Fprintf(&b, "     %-*s%s\n", width-7, fmt.Sprintf("t=%.0fs", lo), fmt.Sprintf("t=%.0fs", hi))
	return b.String()
}

var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// SVG renders the timeline as lanes per processor type, with one band
// per running task colored by project.
func (r *Recorder) SVG(width, laneHeight int) string {
	lo, hi := r.Span()
	var b strings.Builder
	if hi <= lo {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"></svg>`
	}
	// Assign each segment a row within its processor-type lane using
	// greedy interval packing.
	type lane struct {
		rows [][]Segment // per row, sorted segments
	}
	lanes := map[host.ProcType]*lane{}
	segs := append([]Segment(nil), r.Segments...)
	// Tie-break equal starts by task name so the emitted SVG text is
	// byte-stable regardless of recording order.
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Start != segs[j].Start {
			return segs[i].Start < segs[j].Start
		}
		return segs[i].Task < segs[j].Task
	})
	rowOf := make([]int, len(segs))
	for i, s := range segs {
		l := lanes[s.Type]
		if l == nil {
			l = &lane{}
			lanes[s.Type] = l
		}
		placed := false
		for ri := range l.rows {
			row := l.rows[ri]
			if len(row) == 0 || row[len(row)-1].End <= s.Start+1e-9 {
				l.rows[ri] = append(row, s)
				rowOf[i] = ri
				placed = true
				break
			}
		}
		if !placed {
			l.rows = append(l.rows, []Segment{s})
			rowOf[i] = len(l.rows) - 1
		}
	}

	// Stable lane ordering: CPU, NVIDIA, ATI.
	var totalRows int
	laneBase := map[host.ProcType]int{}
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if l, ok := lanes[t]; ok {
			laneBase[t] = totalRows
			totalRows += len(l.rows)
		}
	}
	h := totalRows*laneHeight + 30
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">`, width, h)
	fmt.Fprintln(&b)
	scale := float64(width-80) / (hi - lo)
	for i, s := range segs {
		y := (laneBase[s.Type] + rowOf[i]) * laneHeight
		x := 70 + (s.Start-lo)*scale
		w := (s.End - s.Start) * scale
		color := palette[((s.Project%len(palette))+len(palette))%len(palette)]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s P%d [%.0f,%.0f]</title></rect>`,
			x, y+2, math.Max(w, 0.5), laneHeight-4, color, s.Task, s.Project, s.Start, s.End)
		fmt.Fprintln(&b)
	}
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if base, ok := laneBase[t]; ok {
			fmt.Fprintf(&b, `<text x="2" y="%d">%s</text>`, base*laneHeight+12, t)
			fmt.Fprintln(&b)
		}
	}
	fmt.Fprintf(&b, `<text x="70" y="%d">t=%.0fs</text><text x="%d" y="%d" text-anchor="end">t=%.0fs</text>`,
		h-8, lo, width-4, h-8, hi)
	fmt.Fprintln(&b, `</svg>`)
	return b.String()
}
