package timeline

import (
	"strings"
	"testing"

	"bce/internal/host"
)

func TestStartStop(t *testing.T) {
	r := NewRecorder()
	r.Start(10, "a", 0, host.CPU, 1)
	r.Stop(30, "a")
	if len(r.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(r.Segments))
	}
	s := r.Segments[0]
	if s.Start != 10 || s.End != 30 || s.Task != "a" || s.Project != 0 {
		t.Fatalf("segment wrong: %+v", s)
	}
}

func TestStopUnknownNoop(t *testing.T) {
	r := NewRecorder()
	r.Stop(5, "ghost")
	if len(r.Segments) != 0 {
		t.Fatal("stopping unknown task created a segment")
	}
}

func TestZeroLengthDropped(t *testing.T) {
	r := NewRecorder()
	r.Start(10, "a", 0, host.CPU, 1)
	r.Stop(10, "a")
	if len(r.Segments) != 0 {
		t.Fatal("zero-length segment recorded")
	}
}

func TestCloseAll(t *testing.T) {
	r := NewRecorder()
	r.Start(0, "a", 0, host.CPU, 1)
	r.Start(5, "b", 1, host.NvidiaGPU, 1)
	r.CloseAll(100)
	if len(r.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(r.Segments))
	}
	for _, s := range r.Segments {
		if s.End != 100 {
			t.Fatalf("segment not closed at 100: %+v", s)
		}
	}
}

func TestSpan(t *testing.T) {
	r := NewRecorder()
	lo, hi := r.Span()
	if lo != 0 || hi != 0 {
		t.Fatal("empty span should be (0,0)")
	}
	r.Start(10, "a", 0, host.CPU, 1)
	r.Stop(50, "a")
	r.Start(20, "b", 1, host.CPU, 1)
	r.Stop(90, "b")
	lo, hi = r.Span()
	if lo != 10 || hi != 90 {
		t.Fatalf("span = (%v,%v), want (10,90)", lo, hi)
	}
}

func TestASCII(t *testing.T) {
	r := NewRecorder()
	r.Start(0, "a", 0, host.CPU, 1)
	r.Stop(50, "a")
	r.Start(50, "b", 1, host.CPU, 1)
	r.Stop(100, "b")
	out := r.ASCII(2, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("ASCII lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "#") || !strings.Contains(lines[1], "#") {
		t.Fatalf("rows lack busy marks:\n%s", out)
	}
	// Project 0 busy in the first half only.
	row0 := lines[0][strings.Index(lines[0], "|")+1:]
	if row0[0] != '#' || row0[15] != '.' {
		t.Fatalf("project 0 occupancy wrong: %q", row0)
	}
}

func TestASCIIEmpty(t *testing.T) {
	r := NewRecorder()
	if out := r.ASCII(2, 10); !strings.Contains(out, "empty") {
		t.Fatalf("empty timeline output: %q", out)
	}
}

func TestSVGWellFormed(t *testing.T) {
	r := NewRecorder()
	r.Start(0, "a", 0, host.CPU, 1)
	r.Stop(100, "a")
	r.Start(0, "g", 1, host.NvidiaGPU, 1)
	r.Stop(80, "g")
	svg := r.SVG(800, 20)
	for _, want := range []string{"<svg", "</svg>", "<rect", "CPU", "NVIDIA"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<rect") != 2 {
		t.Fatalf("SVG rect count = %d, want 2", strings.Count(svg, "<rect"))
	}
}

func TestSVGPacksOverlaps(t *testing.T) {
	r := NewRecorder()
	// Two overlapping CPU tasks need two rows.
	r.Start(0, "a", 0, host.CPU, 1)
	r.Start(10, "b", 1, host.CPU, 1)
	r.Stop(50, "a")
	r.Stop(60, "b")
	svg := r.SVG(400, 20)
	// Row 0 at y=2, row 1 at y=22.
	if !strings.Contains(svg, `y="2"`) || !strings.Contains(svg, `y="22"`) {
		t.Fatalf("overlapping segments not packed into rows:\n%s", svg)
	}
}

func TestSVGEmpty(t *testing.T) {
	r := NewRecorder()
	if svg := r.SVG(100, 10); !strings.Contains(svg, "<svg") {
		t.Fatal("empty SVG not well-formed")
	}
}
