// Package emserver is the complement the paper points to in §6.1/§6.2:
// an EmBOINC-style emulation of the *server side* of a BOINC project
// (Estrada et al., "Performance Prediction and Analysis of BOINC
// Projects: An Empirical Study with EmBOINC"). Where the client
// emulator drives real client policies against simulated servers, this
// package models the server's scheduling machinery — work generation,
// the feeder's shared-memory result cache, dispatch, replication and
// quorum validation, and the transitioner's timeout handling — against
// a simulated population of volunteer hosts.
//
// The host model here is deliberately statistical (speed and
// availability distributions, error and abandonment rates, periodic
// scheduler RPCs), mirroring EmBOINC's design.
package emserver

import (
	"fmt"
	"math"

	"bce/internal/sim"
	"bce/internal/stats"
)

// Params configures one server emulation.
type Params struct {
	// Duration is the emulated period in seconds (default 10 days).
	Duration float64
	Seed     int64

	// Host population.
	NHosts        int     // number of volunteer hosts (default 100)
	HostSpeedMean float64 // GFLOPS (default 3)
	HostSpeedCV   float64 // coefficient of variation (default 0.5)
	HostAvailMean float64 // mean available fraction (default 0.8)
	HostQueueSecs float64 // seconds of work hosts keep queued (default 8640)
	ConnectPeriod float64 // mean seconds between scheduler RPCs (default 3600)
	ErrorRate     float64 // probability a result computes to an error (default 0.03)
	AbandonRate   float64 // probability a result is never returned (default 0.05)

	// Workunits.
	FPOpsEst       float64 // operations per job (default 3.6e13 ≈ 1 h at 10 GF)
	DelayBound     float64 // latency bound in seconds (default 3 days)
	TargetNResults int     // initial replication (default 2)
	MinQuorum      int     // successes needed to validate (default 2)
	MaxErrorTotal  int     // give up on a workunit after this many failures (default 8)

	// Server machinery.
	CacheSize    int     // feeder shared-memory slots (default 100)
	FeederPeriod float64 // refill interval in seconds (default 60)
	LowWater     int     // keep at least this many unsent results (default 500)

	// HostLifetime is the mean time before a host churns (departs and
	// is replaced by a fresh one, dropping everything in progress);
	// 0 disables churn. EmBOINC models exactly this population
	// dynamic.
	HostLifetime float64

	// CreditNoise is the lognormal sigma of hosts' claimed credit
	// (default 0.2); the validator grants each validated workunit the
	// minimum claim among its quorum, so inflated claims don't pay.
	CreditNoise float64
}

func (p Params) withDefaults() Params {
	def := func(v *float64, d float64) {
		if *v <= 0 {
			*v = d
		}
	}
	defi := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&p.Duration, 10*86400)
	defi(&p.NHosts, 100)
	def(&p.HostSpeedMean, 3)
	def(&p.HostSpeedCV, 0.5)
	def(&p.HostAvailMean, 0.8)
	def(&p.HostQueueSecs, 8640)
	def(&p.ConnectPeriod, 3600)
	def(&p.FPOpsEst, 3.6e13)
	def(&p.DelayBound, 3*86400)
	defi(&p.TargetNResults, 2)
	defi(&p.MinQuorum, 2)
	defi(&p.MaxErrorTotal, 8)
	defi(&p.CacheSize, 100)
	def(&p.FeederPeriod, 60)
	defi(&p.LowWater, 500)
	// Zero means "use the default"; pass a tiny value (e.g. 1e-9) for
	// an effectively error-free population.
	if p.ErrorRate == 0 || p.ErrorRate < 0 || p.ErrorRate >= 1 {
		p.ErrorRate = 0.03
	}
	if p.AbandonRate == 0 || p.AbandonRate < 0 || p.AbandonRate >= 1 {
		p.AbandonRate = 0.05
	}
	if p.CreditNoise <= 0 {
		p.CreditNoise = 0.2
	}
	return p
}

// resultState tracks one result instance's lifecycle.
type resultState int

const (
	unsent resultState = iota
	inProgress
	succeeded
	errored
	timedOut
	cancelled
)

type result struct {
	wu    *workunit
	state resultState
	host  int
	sent  float64
	claim float64 // claimed credit, set when the result succeeds
}

type wuState int

const (
	wuActive wuState = iota
	wuValidated
	wuFailed
)

type workunit struct {
	id        int
	created   float64
	firstSent float64 // 0 until first dispatch
	state     wuState
	results   []*result
	successes int
	failures  int
}

type simHost struct {
	speed float64 // FLOPS
	avail float64 // available fraction (throughput scaling)
	queue float64 // queued seconds of work
	// gen increments when the host churns: completion events from a
	// previous generation are silently dropped (the old owner is gone).
	gen int
	// claimBias is the host's systematic credit over/under-claim.
	claimBias float64
}

// Stats is the emulation outcome.
type Stats struct {
	WUsCreated   int
	WUsValidated int
	WUsFailed    int

	ResultsCreated int
	Dispatched     int
	Succeeded      int
	Errored        int
	TimedOut       int
	Cancelled      int
	RPCs           int
	EmptyCacheRPCs int // RPCs that wanted work but the cache was dry
	Churned        int // host departures/replacements

	// CreditGranted is the total credit granted to validated
	// workunits (the minimum claim among each quorum, so inflated
	// claims don't pay); CreditClaimed sums all successful claims.
	CreditGranted float64
	CreditClaimed float64

	// FLOPS spent by hosts, split by what became of it.
	UsefulFlops    float64 // first MinQuorum successes of validated WUs
	RedundantFlops float64 // extra successes beyond the quorum
	WastedFlops    float64 // errors and successes of failed/late WUs

	// Turnaround: workunit creation to validation, seconds.
	Turnaround stats.Mean
	// DispatchLatency: workunit creation to first dispatch.
	DispatchLatency stats.Mean
}

// Throughput returns validated workunits per day.
func (s *Stats) Throughput(duration float64) float64 {
	return float64(s.WUsValidated) / (duration / 86400)
}

// WasteFraction returns the share of host FLOPS that did not become
// the quorum of a validated workunit.
func (s *Stats) WasteFraction() float64 {
	total := s.UsefulFlops + s.RedundantFlops + s.WastedFlops
	if total <= 0 {
		return 0
	}
	return (s.RedundantFlops + s.WastedFlops) / total
}

// String summarises the stats.
func (s *Stats) String() string {
	return fmt.Sprintf("WUs valid=%d failed=%d | results sent=%d ok=%d err=%d timeout=%d | waste=%.3f turnaround=%.0fs",
		s.WUsValidated, s.WUsFailed, s.Dispatched, s.Succeeded, s.Errored, s.TimedOut,
		s.WasteFraction(), s.Turnaround.Mean())
}

// Server is one emulation in progress.
type Server struct {
	p     Params
	sim   *sim.Simulator
	rng   *stats.RNG
	stats Stats

	wus     []*workunit
	unsent  []*result // the transitioner's backlog
	cache   []*result // feeder shared memory
	hosts   []*simHost
	hostRNG *stats.RNG
	nextWU  int
}

// New builds a server emulation.
func New(p Params) *Server {
	p = p.withDefaults()
	s := &Server{p: p, sim: sim.New(), rng: stats.NewRNG(p.Seed)}
	s.hostRNG = s.rng.Fork("hosts")
	for i := 0; i < p.NHosts; i++ {
		h := &simHost{}
		s.rollHost(h)
		s.hosts = append(s.hosts, h)
	}
	return s
}

// rollHost (re)draws a host's characteristics — used at start-up and
// whenever the host churns.
func (s *Server) rollHost(h *simHost) {
	h.speed = s.hostRNG.TruncNormal(s.p.HostSpeedMean, s.p.HostSpeedMean*s.p.HostSpeedCV,
		s.p.HostSpeedMean/10, s.p.HostSpeedMean*10) * 1e9
	h.avail = math.Min(1, math.Max(0.05, s.hostRNG.Normal(s.p.HostAvailMean, 0.15)))
	h.claimBias = s.hostRNG.Lognormal(0, s.p.CreditNoise)
	h.queue = 0
	h.gen++
}

// Run executes the emulation and returns the statistics.
func (s *Server) Run() *Stats {
	s.generateWork()
	s.feeder()
	s.sim.After(s.p.FeederPeriod, s.feederLoop)
	// Stagger the hosts' first RPCs across one connect period.
	rpcRNG := s.rng.Fork("rpc")
	for i := range s.hosts {
		i := i
		s.sim.After(rpcRNG.Uniform(0, s.p.ConnectPeriod), func() { s.hostRPC(i, rpcRNG) })
		if s.p.HostLifetime > 0 {
			s.scheduleChurn(i, rpcRNG)
		}
	}
	s.sim.RunUntil(s.p.Duration)
	return &s.stats
}

// scheduleChurn arranges for host hi to depart and be replaced after an
// exponentially distributed lifetime; everything it was computing is
// dropped (the transitioner's timeouts recover the workunits).
func (s *Server) scheduleChurn(hi int, rng *stats.RNG) {
	s.sim.After(rng.Exp(s.p.HostLifetime), func() {
		s.rollHost(s.hosts[hi])
		s.stats.Churned++
		s.scheduleChurn(hi, rng)
	})
}

// generateWork keeps the unsent backlog at the low-water mark (the
// work generator daemon).
func (s *Server) generateWork() {
	for len(s.unsent) < s.p.LowWater {
		wu := &workunit{id: s.nextWU, created: s.sim.Now()}
		s.nextWU++
		s.wus = append(s.wus, wu)
		s.stats.WUsCreated++
		for i := 0; i < s.p.TargetNResults; i++ {
			s.addResult(wu)
		}
	}
}

func (s *Server) addResult(wu *workunit) {
	r := &result{wu: wu}
	wu.results = append(wu.results, r)
	s.unsent = append(s.unsent, r)
	s.stats.ResultsCreated++
}

// feeder refills the shared-memory cache from the unsent backlog.
func (s *Server) feeder() {
	for len(s.cache) < s.p.CacheSize && len(s.unsent) > 0 {
		r := s.unsent[0]
		s.unsent = s.unsent[1:]
		if r.state != unsent { // cancelled while queued
			continue
		}
		s.cache = append(s.cache, r)
	}
}

func (s *Server) feederLoop() {
	s.generateWork()
	s.feeder()
	s.sim.After(s.p.FeederPeriod, s.feederLoop)
}

// hostRPC is one scheduler RPC: the host reports nothing (returns are
// modelled as events) and requests enough work to fill its queue.
func (s *Server) hostRPC(hi int, rng *stats.RNG) {
	h := s.hosts[hi]
	s.stats.RPCs++
	wantSecs := s.p.HostQueueSecs - h.queue
	wanted := wantSecs > 0
	for wantSecs > 0 {
		r := s.takeFromCache(hi)
		if r == nil {
			if wanted {
				s.stats.EmptyCacheRPCs++
			}
			break
		}
		s.dispatch(r, hi)
		jobSecs := s.p.FPOpsEst / (h.speed * h.avail)
		wantSecs -= jobSecs
		h.queue += jobSecs
	}
	s.sim.After(rng.Exp(s.p.ConnectPeriod), func() { s.hostRPC(hi, rng) })
}

// takeFromCache pops a result the host may receive (not a sibling of
// one it already holds — BOINC's "one result per WU per host" rule).
func (s *Server) takeFromCache(hi int) *result {
	for i, r := range s.cache {
		if r.state != unsent || r.wu.state != wuActive {
			s.cache = append(s.cache[:i], s.cache[i+1:]...)
			return s.takeFromCache(hi)
		}
		conflict := false
		for _, sib := range r.wu.results {
			if sib != r && sib.host == hi && sib.state != unsent {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		s.cache = append(s.cache[:i], s.cache[i+1:]...)
		return r
	}
	return nil
}

// dispatch sends a result to a host and schedules its outcome and the
// transitioner's timeout check.
func (s *Server) dispatch(r *result, hi int) {
	h := s.hosts[hi]
	r.state = inProgress
	r.host = hi
	r.sent = s.sim.Now()
	if r.wu.firstSent == 0 {
		r.wu.firstSent = s.sim.Now()
		s.stats.DispatchLatency.Add(s.sim.Now() - r.wu.created)
	}
	s.stats.Dispatched++

	// Completion: after the host's queue drains to this job plus its
	// own computation (approximated by the queue length at dispatch).
	computeSecs := s.p.FPOpsEst / (h.speed * h.avail)
	finishAt := s.sim.Now() + h.queue + computeSecs
	abandoned := s.rng.Float64() < s.p.AbandonRate
	isError := !abandoned && s.rng.Float64() < s.p.ErrorRate
	gen := h.gen

	s.sim.At(math.Min(finishAt, s.p.Duration+1), func() {
		if s.hosts[hi].gen != gen {
			return // the host churned; this computation is gone
		}
		s.hosts[hi].queue -= computeSecs
		if s.hosts[hi].queue < 0 {
			s.hosts[hi].queue = 0
		}
		if !abandoned {
			s.returned(r, isError)
		}
	})

	// Transitioner timeout check at the deadline.
	deadline := s.sim.Now() + s.p.DelayBound
	s.sim.At(deadline, func() { s.timeoutCheck(r) })
}

// returned processes a result arriving back at the server.
func (s *Server) returned(r *result, isError bool) {
	if r.state != inProgress {
		return // timed out (already replaced) or cancelled
	}
	wu := r.wu
	flops := s.p.FPOpsEst
	if isError {
		r.state = errored
		s.stats.Errored++
		s.stats.WastedFlops += flops
		wu.failures++
		s.transition(wu)
		return
	}
	r.state = succeeded
	s.stats.Succeeded++
	// Claimed credit: proportional to the job's operations, scaled by
	// the host's systematic bias (BOINC's "cobblestones").
	r.claim = s.p.FPOpsEst / 1e9 * s.hosts[r.host].claimBias
	s.stats.CreditClaimed += r.claim
	wu.successes++
	switch {
	case wu.state != wuActive:
		// Late success for an already-decided workunit.
		if wu.state == wuValidated {
			s.stats.RedundantFlops += flops
		} else {
			s.stats.WastedFlops += flops
		}
	case wu.successes >= s.p.MinQuorum:
		s.stats.UsefulFlops += flops
		s.validate(wu)
	default:
		s.stats.UsefulFlops += flops
	}
	s.transition(wu)
}

// timeoutCheck is the transitioner's deadline pass for one result.
func (s *Server) timeoutCheck(r *result) {
	if r.state != inProgress || r.wu.state != wuActive {
		return
	}
	r.state = timedOut
	s.stats.TimedOut++
	r.wu.failures++
	s.transition(r.wu)
}

// transition re-examines a workunit: issue replacement results for
// failures, fail it outright after too many errors.
func (s *Server) transition(wu *workunit) {
	if wu.state != wuActive {
		return
	}
	if wu.failures >= s.p.MaxErrorTotal {
		wu.state = wuFailed
		s.stats.WUsFailed++
		s.cancelOutstanding(wu)
		return
	}
	// Keep enough live results to still reach quorum.
	live := 0
	for _, r := range wu.results {
		if r.state == unsent || r.state == inProgress || r.state == succeeded {
			live++
		}
	}
	for live < s.p.MinQuorum {
		s.addResult(wu)
		live++
	}
}

// validate marks a workunit complete, grants credit (the minimum claim
// among its successful results, one grant per success, so over-claiming
// never pays), and cancels its unsent siblings.
func (s *Server) validate(wu *workunit) {
	wu.state = wuValidated
	s.stats.WUsValidated++
	s.stats.Turnaround.Add(s.sim.Now() - wu.created)
	grant := math.Inf(1)
	n := 0
	for _, r := range wu.results {
		if r.state == succeeded {
			grant = math.Min(grant, r.claim)
			n++
		}
	}
	if n > 0 && !math.IsInf(grant, 1) {
		s.stats.CreditGranted += grant * float64(n)
	}
	s.cancelOutstanding(wu)
}

func (s *Server) cancelOutstanding(wu *workunit) {
	for _, r := range wu.results {
		if r.state == unsent {
			r.state = cancelled
			s.stats.Cancelled++
		}
	}
}

// Run is a convenience wrapper: build and run in one call.
func Run(p Params) *Stats {
	return New(p).Run()
}
