package emserver

import (
	"math"
	"testing"
)

func quickParams() Params {
	return Params{
		Duration:      4 * 86400,
		Seed:          1,
		NHosts:        50,
		ConnectPeriod: 1800,
		FPOpsEst:      1.08e13, // ~1 h on a 3 GF host
		DelayBound:    2 * 86400,
		LowWater:      200,
	}
}

func TestBasicRun(t *testing.T) {
	st := Run(quickParams())
	if st.WUsValidated == 0 {
		t.Fatal("no workunits validated")
	}
	if st.Dispatched == 0 || st.RPCs == 0 {
		t.Fatal("no dispatch activity")
	}
	if st.Succeeded+st.Errored+st.TimedOut > st.Dispatched {
		t.Fatalf("outcome counts exceed dispatches: %+v", st)
	}
	if st.WasteFraction() < 0 || st.WasteFraction() > 1 {
		t.Fatalf("waste fraction %v out of range", st.WasteFraction())
	}
	if st.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := Run(quickParams()), Run(quickParams())
	if a.WUsValidated != b.WUsValidated || a.Dispatched != b.Dispatched ||
		a.UsefulFlops != b.UsefulFlops {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestReplicationIncreasesWaste(t *testing.T) {
	p1 := quickParams()
	p1.TargetNResults, p1.MinQuorum = 1, 1
	p3 := quickParams()
	p3.TargetNResults, p3.MinQuorum = 3, 3

	s1, s3 := Run(p1), Run(p3)
	// With quorum 3 each validated WU costs ≥3 results: throughput in
	// validated WUs drops, per-WU cost rises.
	if s3.WUsValidated >= s1.WUsValidated {
		t.Fatalf("quorum-3 validated %d >= quorum-1 %d", s3.WUsValidated, s1.WUsValidated)
	}
	cost1 := s1.UsefulFlops / float64(s1.WUsValidated)
	cost3 := s3.UsefulFlops / float64(s3.WUsValidated)
	if cost3 <= cost1*2 {
		t.Fatalf("per-WU useful flops: quorum3 %v, quorum1 %v — want ~3×", cost3, cost1)
	}
}

func TestErrorsForceReissue(t *testing.T) {
	clean := quickParams()
	clean.ErrorRate = 1e-9
	clean.AbandonRate = 1e-9
	dirty := quickParams()
	dirty.ErrorRate = 0.3

	sc, sd := Run(clean), Run(dirty)
	if sd.Errored == 0 {
		t.Fatal("no errors with 30% error rate")
	}
	if sd.WasteFraction() <= sc.WasteFraction() {
		t.Fatalf("error-prone population wasted %v <= clean %v",
			sd.WasteFraction(), sc.WasteFraction())
	}
	// Reissue keeps validation going despite errors.
	if sd.WUsValidated == 0 {
		t.Fatal("errors wiped out all validation")
	}
	if sd.ResultsCreated <= sd.WUsCreated*sd.WUsValidated/(sd.WUsValidated+1) {
		// (loose sanity: replacements were created)
		_ = sd
	}
}

func TestAbandonmentTimesOut(t *testing.T) {
	p := quickParams()
	p.AbandonRate = 0.5
	p.DelayBound = 6 * 3600 // short bound so timeouts land inside the run
	st := Run(p)
	if st.TimedOut == 0 {
		t.Fatal("half the population abandons but nothing timed out")
	}
}

func TestTightCacheStarvesRPCs(t *testing.T) {
	small := quickParams()
	small.CacheSize = 2
	small.FeederPeriod = 3600 // slow feeder
	big := quickParams()
	big.CacheSize = 2000

	ss, sb := Run(small), Run(big)
	if ss.EmptyCacheRPCs <= sb.EmptyCacheRPCs {
		t.Fatalf("tiny cache empty-RPCs %d <= big cache %d", ss.EmptyCacheRPCs, sb.EmptyCacheRPCs)
	}
	if ss.WUsValidated >= sb.WUsValidated {
		t.Fatalf("starved feeder validated %d >= %d", ss.WUsValidated, sb.WUsValidated)
	}
}

func TestQuorumNeverExceededByUseful(t *testing.T) {
	st := Run(quickParams())
	// A workunit can accumulate at most MinQuorum "useful" successes
	// (further ones are classed redundant), so useful flops are bounded
	// by quorum × workunits created × per-job flops.
	p := quickParams().withDefaults()
	maxUseful := float64(p.MinQuorum) * float64(st.WUsCreated) * p.FPOpsEst
	if st.UsefulFlops > maxUseful {
		t.Fatalf("useful flops %v exceed quorum bound %v", st.UsefulFlops, maxUseful)
	}
}

func TestTurnaroundPositiveAndBounded(t *testing.T) {
	p := quickParams()
	st := Run(p)
	if st.Turnaround.N() == 0 {
		t.Fatal("no turnaround samples")
	}
	if st.Turnaround.Mean() <= 0 || st.Turnaround.Mean() > p.Duration {
		t.Fatalf("turnaround %v out of range", st.Turnaround.Mean())
	}
	if st.DispatchLatency.Mean() < 0 || st.DispatchLatency.Mean() > p.Duration {
		t.Fatalf("dispatch latency %v out of range", st.DispatchLatency.Mean())
	}
	if math.IsNaN(st.Throughput(p.Duration)) || st.Throughput(p.Duration) <= 0 {
		t.Fatalf("throughput %v", st.Throughput(p.Duration))
	}
}

func TestFasterPopulationValidatesMore(t *testing.T) {
	slow := quickParams()
	slow.HostSpeedMean = 1
	fast := quickParams()
	fast.HostSpeedMean = 10
	ss, sf := Run(slow), Run(fast)
	if sf.WUsValidated <= ss.WUsValidated {
		t.Fatalf("10× faster hosts validated %d <= %d", sf.WUsValidated, ss.WUsValidated)
	}
}

func TestHostChurnCausesTimeouts(t *testing.T) {
	stable := quickParams()
	stable.AbandonRate = 1e-9
	stable.ErrorRate = 1e-9
	churny := stable
	churny.HostLifetime = 6 * 3600 // hosts last ~6 h
	churny.DelayBound = 12 * 3600  // so timeouts land inside the run

	ss, sc := Run(stable), Run(churny)
	if sc.Churned == 0 {
		t.Fatal("no churn recorded")
	}
	if sc.TimedOut <= ss.TimedOut {
		t.Fatalf("churn timeouts %d <= stable %d", sc.TimedOut, ss.TimedOut)
	}
	// Validation continues despite churn.
	if sc.WUsValidated == 0 {
		t.Fatal("churny population validated nothing")
	}
}

func TestCreditGrantedNeverExceedsClaimed(t *testing.T) {
	st := Run(quickParams())
	if st.CreditClaimed <= 0 || st.CreditGranted <= 0 {
		t.Fatalf("no credit flow: claimed %v granted %v", st.CreditClaimed, st.CreditGranted)
	}
	if st.CreditGranted > st.CreditClaimed+1e-6 {
		t.Fatalf("granted %v > claimed %v", st.CreditGranted, st.CreditClaimed)
	}
}

func TestOverclaimingDoesNotPay(t *testing.T) {
	// With min-claim granting, wild claim noise lowers the granted
	// total relative to the claimed total much more than mild noise.
	mild := quickParams()
	mild.CreditNoise = 0.05
	wild := quickParams()
	wild.CreditNoise = 1.0

	sm, sw := Run(mild), Run(wild)
	ratioMild := sm.CreditGranted / sm.CreditClaimed
	ratioWild := sw.CreditGranted / sw.CreditClaimed
	if ratioWild >= ratioMild {
		t.Fatalf("grant/claim ratio with wild noise %v >= mild %v", ratioWild, ratioMild)
	}
	if ratioMild < 0.8 || ratioMild > 1.0 {
		t.Fatalf("mild-noise grant ratio %v, want near 1", ratioMild)
	}
}
