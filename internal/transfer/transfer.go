// Package transfer models file transfers (paper §6.2: "Jobs are
// assumed to be runnable immediately after dispatch. For data-intensive
// applications this is not a realistic assumption. It would be
// important to model an additional scheduling policy: the order in
// which files are uploaded and downloaded.").
//
// The model is a shared link per direction with a fixed bandwidth:
// transfers are served one at a time in an order chosen by the
// transfer-scheduling policy (FIFO, smallest-first, or earliest-
// deadline-first on the owning job's deadline). Network unavailability
// pauses the active transfer, preserving partial progress. Zero
// bandwidth means an infinitely fast link: transfers complete on the
// next event while the network is up (and queue until it comes back
// otherwise), which reproduces the paper's baseline assumption.
package transfer

import (
	"fmt"

	"bce/internal/sim"
)

// Direction distinguishes downloads (job inputs) from uploads (results).
type Direction int

const (
	// Down is server-to-client (job input files).
	Down Direction = iota
	// Up is client-to-server (result output files).
	Up
	// NumDirections is the number of transfer directions.
	NumDirections
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case Down:
		return "download"
	case Up:
		return "upload"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Policy selects the order in which queued transfers are served.
type Policy int

const (
	// FIFO serves transfers in arrival order.
	FIFO Policy = iota
	// SmallestFirst serves the smallest remaining transfer first,
	// minimising mean job readiness delay.
	SmallestFirst
	// EDF serves the transfer whose job has the earliest deadline.
	EDF
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case SmallestFirst:
		return "smallest-first"
	case EDF:
		return "edf"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy converts a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fifo", "FIFO":
		return FIFO, nil
	case "smallest-first", "smallest", "sjf":
		return SmallestFirst, nil
	case "edf", "EDF":
		return EDF, nil
	}
	return 0, fmt.Errorf("transfer: unknown policy %q", s)
}

// Transfer is one queued or active file transfer.
type Transfer struct {
	Name     string
	Bytes    float64 // total size
	Deadline float64 // owning job's deadline (for EDF ordering)
	Done     func()  // called when the transfer completes

	remaining float64
	seq       int
}

// Manager schedules transfers over the two directions of one host's
// network link.
type Manager struct {
	sim    *sim.Simulator
	bps    [NumDirections]float64
	policy Policy
	online bool

	queue  [NumDirections][]*Transfer
	active [NumDirections]*Transfer
	timer  [NumDirections]*sim.Timer
	start  [NumDirections]float64 // when the active transfer (re)started
	seq    int

	// Completed and BytesMoved count finished transfers per direction.
	Completed  [NumDirections]int
	BytesMoved [NumDirections]float64
}

// New creates a manager. downBps/upBps are link speeds in bytes/s;
// <= 0 means infinitely fast.
func New(s *sim.Simulator, downBps, upBps float64, policy Policy) *Manager {
	m := &Manager{sim: s, policy: policy, online: true}
	m.bps[Down] = downBps
	m.bps[Up] = upBps
	return m
}

// Enqueue adds a transfer; its Done callback fires (via a simulator
// event) when the last byte arrives. Even infinitely-fast transfers go
// through the queue, so they respect SetOnline(false) and are released
// on resume like any other transfer.
func (m *Manager) Enqueue(dir Direction, t *Transfer) {
	t.remaining = t.Bytes
	t.seq = m.seq
	m.seq++
	m.queue[dir] = append(m.queue[dir], t)
	m.startNext(dir)
}

// QueueLen returns the number of waiting-plus-active transfers.
func (m *Manager) QueueLen(dir Direction) int {
	n := len(m.queue[dir])
	if m.active[dir] != nil {
		n++
	}
	return n
}

// SetOnline pauses (false) or resumes (true) both directions; the
// active transfers keep their partial progress.
func (m *Manager) SetOnline(on bool) {
	if on == m.online {
		return
	}
	m.online = on
	for dir := Direction(0); dir < NumDirections; dir++ {
		if !on {
			m.pause(dir)
		} else {
			m.startNext(dir)
		}
	}
}

// pause stops the active transfer, crediting its progress.
func (m *Manager) pause(dir Direction) {
	t := m.active[dir]
	if t == nil {
		return
	}
	if m.bps[dir] > 0 {
		elapsed := m.sim.Now() - m.start[dir]
		t.remaining -= elapsed * m.bps[dir]
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
	m.sim.Cancel(m.timer[dir])
	m.timer[dir] = nil
	m.active[dir] = nil
	// Back to the queue; the policy will pick it (or another) up on
	// resume.
	m.queue[dir] = append(m.queue[dir], t)
}

// pick removes and returns the next transfer per the policy.
func (m *Manager) pick(dir Direction) *Transfer {
	q := m.queue[dir]
	if len(q) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(q); i++ {
		switch m.policy {
		case SmallestFirst:
			if q[i].remaining < q[best].remaining ||
				(q[i].remaining == q[best].remaining && q[i].seq < q[best].seq) {
				best = i
			}
		case EDF:
			if q[i].Deadline < q[best].Deadline ||
				(q[i].Deadline == q[best].Deadline && q[i].seq < q[best].seq) {
				best = i
			}
		default: // FIFO
			if q[i].seq < q[best].seq {
				best = i
			}
		}
	}
	t := q[best]
	m.queue[dir] = append(q[:best], q[best+1:]...)
	return t
}

// startNext begins the next queued transfer if the link is free.
func (m *Manager) startNext(dir Direction) {
	if !m.online || m.active[dir] != nil {
		return
	}
	t := m.pick(dir)
	if t == nil {
		return
	}
	m.active[dir] = t
	m.start[dir] = m.sim.Now()
	// Infinitely fast links (bps <= 0, the paper's baseline) and
	// zero-byte transfers complete on the next event, so callers never
	// re-enter synchronously.
	var dur float64
	if m.bps[dir] > 0 {
		dur = t.remaining / m.bps[dir]
	}
	m.timer[dir] = m.sim.After(dur, func() {
		m.active[dir] = nil
		m.timer[dir] = nil
		m.Completed[dir]++
		m.BytesMoved[dir] += t.Bytes
		if t.Done != nil {
			t.Done()
		}
		m.startNext(dir)
	})
}
