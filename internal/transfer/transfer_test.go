package transfer

import (
	"testing"

	"bce/internal/sim"
)

func TestDirectionAndPolicyNames(t *testing.T) {
	if Down.String() != "download" || Up.String() != "upload" {
		t.Fatal("direction names")
	}
	if FIFO.String() != "fifo" || SmallestFirst.String() != "smallest-first" || EDF.String() != "edf" {
		t.Fatal("policy names")
	}
	if Direction(9).String() == "" || Policy(9).String() == "" {
		t.Fatal("unknown formatting")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"": FIFO, "fifo": FIFO, "smallest-first": SmallestFirst, "edf": EDF,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("zzz"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestSingleTransferTiming(t *testing.T) {
	s := sim.New()
	m := New(s, 1000, 1000, FIFO) // 1000 B/s
	var doneAt float64
	m.Enqueue(Down, &Transfer{Name: "f", Bytes: 5000, Done: func() { doneAt = s.Now() }})
	s.Run()
	if doneAt != 5 {
		t.Fatalf("transfer finished at %v, want 5 s", doneAt)
	}
	if m.Completed[Down] != 1 || m.BytesMoved[Down] != 5000 {
		t.Fatalf("counters wrong: %v %v", m.Completed, m.BytesMoved)
	}
}

func TestInfiniteLinkImmediate(t *testing.T) {
	s := sim.New()
	m := New(s, 0, 0, FIFO)
	done := false
	m.Enqueue(Up, &Transfer{Bytes: 1e12, Done: func() { done = true }})
	if done {
		t.Fatal("completion must be deferred to an event, not synchronous")
	}
	s.Run()
	if !done || s.Now() != 0 {
		t.Fatalf("infinite link: done=%v at %v, want immediate completion", done, s.Now())
	}
}

func TestSequentialFIFO(t *testing.T) {
	s := sim.New()
	m := New(s, 100, 100, FIFO)
	var order []string
	mk := func(name string, bytes float64) *Transfer {
		return &Transfer{Name: name, Bytes: bytes, Done: func() { order = append(order, name) }}
	}
	m.Enqueue(Down, mk("big", 1000))
	m.Enqueue(Down, mk("small", 100))
	s.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("FIFO order = %v", order)
	}
	// Sequential: second finishes at 10+1 = 11 s.
	if s.Now() != 11 {
		t.Fatalf("finished at %v, want 11", s.Now())
	}
}

func TestSmallestFirst(t *testing.T) {
	s := sim.New()
	m := New(s, 100, 100, SmallestFirst)
	var order []string
	mk := func(name string, bytes float64) *Transfer {
		return &Transfer{Name: name, Bytes: bytes, Done: func() { order = append(order, name) }}
	}
	// Enqueue both before the simulator runs: "big" starts first (link
	// idle), but among the queued, smallest goes next.
	m.Enqueue(Down, mk("big", 1000))
	m.Enqueue(Down, mk("mid", 500))
	m.Enqueue(Down, mk("small", 100))
	s.Run()
	if order[1] != "small" || order[2] != "mid" {
		t.Fatalf("smallest-first order = %v", order)
	}
}

func TestEDFOrder(t *testing.T) {
	s := sim.New()
	m := New(s, 100, 100, EDF)
	var order []string
	mk := func(name string, deadline float64) *Transfer {
		return &Transfer{Name: name, Bytes: 100, Deadline: deadline, Done: func() { order = append(order, name) }}
	}
	m.Enqueue(Down, mk("first", 1e9)) // starts immediately
	m.Enqueue(Down, mk("late", 5000))
	m.Enqueue(Down, mk("urgent", 1000))
	s.Run()
	if order[1] != "urgent" || order[2] != "late" {
		t.Fatalf("EDF order = %v", order)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	s := sim.New()
	m := New(s, 100, 100, FIFO)
	var downAt, upAt float64
	m.Enqueue(Down, &Transfer{Bytes: 1000, Done: func() { downAt = s.Now() }})
	m.Enqueue(Up, &Transfer{Bytes: 500, Done: func() { upAt = s.Now() }})
	s.Run()
	// They proceed concurrently on separate directions.
	if downAt != 10 || upAt != 5 {
		t.Fatalf("down at %v up at %v, want 10 and 5", downAt, upAt)
	}
}

func TestPauseResumeKeepsProgress(t *testing.T) {
	s := sim.New()
	m := New(s, 100, 100, FIFO)
	var doneAt float64
	m.Enqueue(Down, &Transfer{Bytes: 1000, Done: func() { doneAt = s.Now() }})
	// Pause at t=4 (400 B done), resume at t=10: finish at 10+6 = 16.
	s.At(4, func() { m.SetOnline(false) })
	s.At(10, func() { m.SetOnline(true) })
	s.Run()
	if doneAt != 16 {
		t.Fatalf("finished at %v, want 16 (progress preserved across pause)", doneAt)
	}
}

func TestEnqueueWhileOffline(t *testing.T) {
	s := sim.New()
	m := New(s, 100, 100, FIFO)
	m.SetOnline(false)
	var doneAt float64
	m.Enqueue(Down, &Transfer{Bytes: 100, Done: func() { doneAt = s.Now() }})
	s.At(50, func() { m.SetOnline(true) })
	s.Run()
	if doneAt != 51 {
		t.Fatalf("finished at %v, want 51 (starts on resume)", doneAt)
	}
}

// Regression: the infinitely-fast path used to schedule completion
// unconditionally, so zero-bandwidth transfers completed (and were
// counted) even while the network was down.
func TestInfiniteLinkRespectsOffline(t *testing.T) {
	s := sim.New()
	m := New(s, 0, 0, FIFO)
	m.SetOnline(false)
	var doneAt = -1.0
	m.Enqueue(Down, &Transfer{Bytes: 500, Done: func() { doneAt = s.Now() }})
	s.At(5, func() {
		if m.Completed[Down] != 0 || m.BytesMoved[Down] != 0 || doneAt >= 0 {
			t.Errorf("transfer completed while offline: completed=%d moved=%v doneAt=%v",
				m.Completed[Down], m.BytesMoved[Down], doneAt)
		}
		if m.QueueLen(Down) != 1 {
			t.Errorf("QueueLen = %d while offline, want 1", m.QueueLen(Down))
		}
	})
	s.At(9, func() { m.SetOnline(true) })
	s.Run()
	if doneAt != 9 {
		t.Fatalf("finished at %v, want 9 (released on resume)", doneAt)
	}
	if m.Completed[Down] != 1 || m.BytesMoved[Down] != 500 {
		t.Fatalf("counters wrong after resume: %v %v", m.Completed, m.BytesMoved)
	}
}

// Going offline mid-completion of an infinitely-fast transfer must not
// lose it: the pending completion event is canceled and the transfer
// re-queued with its progress (trivially all of it) intact.
func TestInfiniteLinkOfflineBeforeCompletionEvent(t *testing.T) {
	s := sim.New()
	m := New(s, 0, 0, FIFO)
	done := false
	m.Enqueue(Up, &Transfer{Bytes: 100, Done: func() { done = true }})
	// Same sim time, but queued before the completion event fires.
	m.SetOnline(false)
	s.At(3, func() { m.SetOnline(true) })
	s.Run()
	if !done {
		t.Fatal("transfer lost across offline toggle")
	}
	if m.Completed[Up] != 1 {
		t.Fatalf("Completed = %d, want 1", m.Completed[Up])
	}
}

func TestQueueLen(t *testing.T) {
	s := sim.New()
	m := New(s, 100, 100, FIFO)
	if m.QueueLen(Down) != 0 {
		t.Fatal("fresh queue not empty")
	}
	m.Enqueue(Down, &Transfer{Bytes: 1000})
	m.Enqueue(Down, &Transfer{Bytes: 1000})
	if m.QueueLen(Down) != 2 {
		t.Fatalf("QueueLen = %d, want 2 (1 active + 1 waiting)", m.QueueLen(Down))
	}
	s.Run()
	if m.QueueLen(Down) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestDoubleSetOnlineNoop(t *testing.T) {
	s := sim.New()
	m := New(s, 100, 100, FIFO)
	m.SetOnline(true) // already online
	done := false
	m.Enqueue(Down, &Transfer{Bytes: 100, Done: func() { done = true }})
	m.SetOnline(false)
	m.SetOnline(false)
	m.SetOnline(true)
	s.Run()
	if !done {
		t.Fatal("transfer lost across redundant toggles")
	}
}
