package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	s.Run()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Step() {
		t.Fatal("Step on empty simulator returned true")
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var at float64
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	s := New()
	fired := false
	s.After(-3, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatalf("After(-3) fired=%v at %v, want fired at 0", fired, s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.At(1, func() { fired = true })
	s.Cancel(tm)
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double cancel is a no-op.
	s.Cancel(tm)
	s.Cancel(nil)
}

func TestCancelDuringRun(t *testing.T) {
	s := New()
	fired := false
	var tm *Timer
	s.At(1, func() { s.Cancel(tm) })
	tm = s.At(2, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("timer cancelled mid-run still fired")
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	var at float64
	tm := s.At(1, func() { at = s.Now() })
	s.At(0.5, func() { s.Reschedule(tm, 7) })
	s.Run()
	if at != 7 {
		t.Fatalf("rescheduled timer fired at %v, want 7", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1,2,3", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v, want all 5", fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now() = %v, want 10 (clock advances to end)", s.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	fired := false
	s.At(3, func() { fired = true })
	s.RunUntil(3)
	if !fired {
		t.Fatal("event at exactly the RunUntil boundary did not fire")
	}
}

func TestFiredCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(float64(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled from within callbacks interleave correctly.
	s := New()
	var got []string
	s.At(1, func() {
		got = append(got, "a")
		s.At(2, func() { got = append(got, "a2") })
	})
	s.At(2, func() { got = append(got, "b") })
	s.Run()
	want := []string{"a", "b", "a2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Property: for any set of event times, events fire in nondecreasing
// time order and the clock never goes backwards.
func TestPropertyMonotoneClock(t *testing.T) {
	f := func(times []float64, seed int64) bool {
		s := New()
		var fired []float64
		for _, tt := range times {
			if tt < 0 {
				tt = -tt
			}
			if tt != tt { // NaN
				continue
			}
			tt := tt
			s.At(tt, func() { fired = append(fired, tt) })
		}
		// Randomly cancel some.
		rng := rand.New(rand.NewSource(seed))
		_ = rng
		s.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCancelSubset(t *testing.T) {
	// Cancelling an arbitrary subset fires exactly the complement.
	f := func(n uint8, mask uint64) bool {
		s := New()
		count := int(n%32) + 1
		fired := make([]bool, count)
		timers := make([]*Timer, count)
		for i := 0; i < count; i++ {
			i := i
			timers[i] = s.At(float64(i), func() { fired[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Cancel(timers[i])
			}
		}
		s.Run()
		for i := 0; i < count; i++ {
			want := mask&(1<<uint(i)) == 0
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(float64(j%97), func() {})
		}
		s.Run()
	}
}

func TestRunUntilN(t *testing.T) {
	s := New()
	fired := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() { fired++ })
	}
	if n := s.RunUntilN(20, 3); n != 3 || fired != 3 {
		t.Fatalf("first batch: n=%d fired=%d, want 3", n, fired)
	}
	if s.Now() != 3 {
		t.Fatalf("clock stopped mid-batch at %v, want 3", s.Now())
	}
	// Remaining 7 events fit in the next batch; the clock then advances
	// to the horizon even though no event sits there.
	if n := s.RunUntilN(20, 100); n != 7 || fired != 10 {
		t.Fatalf("second batch: n=%d fired=%d, want 7/10", n, fired)
	}
	if s.Now() != 20 {
		t.Fatalf("Now() = %v, want horizon 20", s.Now())
	}
	// An exhausted simulator fires nothing and stays put.
	if n := s.RunUntilN(20, 100); n != 0 || s.Now() != 20 {
		t.Fatalf("exhausted: n=%d now=%v", n, s.Now())
	}
}

func TestRunUntilNHonorsHorizon(t *testing.T) {
	s := New()
	fired := 0
	s.At(5, func() { fired++ })
	s.At(15, func() { fired++ })
	if n := s.RunUntilN(10, 100); n != 1 || fired != 1 {
		t.Fatalf("n=%d fired=%d, want 1 (event at 15 is past the horizon)", n, fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", s.Now())
	}
}

// A timer handle is in exactly one of three states — pending, fired,
// cancelled — and Cancel must not retroactively relabel a fired timer
// as cancelled.
func TestTimerHandleStates(t *testing.T) {
	s := New()
	tm := s.At(5, func() {})
	if !tm.Pending() || tm.Fired() || tm.Canceled() {
		t.Fatalf("fresh timer: pending=%v fired=%v canceled=%v, want pending only",
			tm.Pending(), tm.Fired(), tm.Canceled())
	}
	s.RunUntil(10)
	if tm.Pending() || !tm.Fired() || tm.Canceled() {
		t.Fatalf("after firing: pending=%v fired=%v canceled=%v, want fired only",
			tm.Pending(), tm.Fired(), tm.Canceled())
	}
	// Cancelling a fired timer is a no-op, not a state change.
	s.Cancel(tm)
	if tm.Canceled() {
		t.Fatal("Cancel on a fired timer relabelled it as cancelled")
	}
	if !tm.Fired() {
		t.Fatal("Cancel on a fired timer cleared Fired()")
	}
}

func TestTimerCancelledState(t *testing.T) {
	s := New()
	fired := false
	tm := s.At(5, func() { fired = true })
	s.Cancel(tm)
	if tm.Pending() || tm.Fired() || !tm.Canceled() {
		t.Fatalf("after Cancel: pending=%v fired=%v canceled=%v, want cancelled only",
			tm.Pending(), tm.Fired(), tm.Canceled())
	}
	// Cancel is idempotent.
	s.Cancel(tm)
	if !tm.Canceled() || tm.Fired() {
		t.Fatal("second Cancel changed state")
	}
	s.RunUntil(10)
	if fired {
		t.Fatal("cancelled timer fired anyway")
	}
	if tm.Fired() {
		t.Fatal("cancelled timer reports Fired()")
	}
}

// Reschedule must work from all three handle states: move a pending
// timer, revive a fired one, revive a cancelled one.
func TestTimerRescheduleFromEachState(t *testing.T) {
	s := New()
	count := 0
	fn := func() { count++ }

	pending := s.At(5, fn)
	pending = s.Reschedule(pending, 7)
	if !pending.Pending() {
		t.Fatal("rescheduled pending timer not pending")
	}

	cancelled := s.At(6, fn)
	s.Cancel(cancelled)
	revived := s.Reschedule(cancelled, 8)
	if !revived.Pending() {
		t.Fatal("rescheduling a cancelled timer did not yield a pending one")
	}

	s.RunUntil(10)
	if count != 2 {
		t.Fatalf("fired %d timers, want 2 (moved + revived)", count)
	}

	again := s.Reschedule(pending, 12)
	if !again.Pending() {
		t.Fatal("rescheduling a fired timer did not yield a pending one")
	}
	s.RunUntil(15)
	if count != 3 {
		t.Fatalf("fired %d, want 3 after reviving the fired timer", count)
	}
}
