// Package sim provides the discrete-event simulation kernel used by the
// BOINC client emulator. Time is a float64 count of seconds from the start
// of the emulation. Events are callbacks scheduled at absolute times;
// events scheduled for the same instant fire in the order they were
// scheduled, which keeps emulations deterministic for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"bce/internal/invariant"
)

// Timer is a handle to a scheduled event. A handle is in exactly one of
// three states: pending (scheduled, not yet dispatched), fired (its
// callback ran), or cancelled (Cancel removed it before it could fire).
// Cancelling a timer that has already fired or been cancelled is a
// no-op — in particular it does NOT flip a fired timer to cancelled, so
// the two terminal states stay distinguishable.
type Timer struct {
	at       float64
	seq      uint64
	fn       func()
	index    int // heap index, -1 when popped or cancelled
	canceled bool
	fired    bool
	pooled   bool // no caller holds a handle; recycle after firing
}

// At returns the absolute simulation time the timer is set for.
func (t *Timer) At() float64 { return t.at }

// Canceled reports whether Cancel removed the timer before it fired.
// A fired timer reports false even if Cancel was called afterwards.
func (t *Timer) Canceled() bool { return t.canceled }

// Fired reports whether the timer's callback has been dispatched.
func (t *Timer) Fired() bool { return t.fired }

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t.index >= 0 && !t.canceled }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Simulator is a single-threaded discrete-event scheduler.
// The zero value is ready to use and starts at time 0.
type Simulator struct {
	now    float64
	seq    uint64
	events eventHeap
	nfired uint64

	// free recycles Timer structs. Only timers provably unreferenced by
	// callers enter it: Post* timers (no handle was ever returned) and
	// explicitly Recycle()d handles. At/After/Post all draw from it, so
	// a steady-state event loop stops allocating timers entirely.
	free []*Timer
}

// New returns a simulator starting at time 0.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events that have been dispatched.
func (s *Simulator) Fired() uint64 { return s.nfired }

// Pending returns the number of events waiting to fire (including
// cancelled timers that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now()) panics: it indicates a logic error in the model.
func (s *Simulator) At(t float64, fn func()) *Timer {
	return s.schedule(t, fn, false)
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, fn, false)
}

// PostAt schedules fn at absolute time t fire-and-forget: no handle is
// returned, so the timer cannot be cancelled, and its struct is
// recycled after firing. Use it for the self-rescheduling chains that
// dominate an emulation's event count.
func (s *Simulator) PostAt(t float64, fn func()) {
	s.schedule(t, fn, true)
}

// Post schedules fn to run d seconds from now, fire-and-forget.
func (s *Simulator) Post(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, fn, true)
}

func (s *Simulator) schedule(t float64, fn func(), pooled bool) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN")
	}
	var tm *Timer
	if n := len(s.free); n > 0 {
		tm = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*tm = Timer{at: t, seq: s.seq, fn: fn, pooled: pooled}
	} else {
		tm = &Timer{at: t, seq: s.seq, fn: fn, pooled: pooled}
	}
	s.seq++
	heap.Push(&s.events, tm)
	return tm
}

// recycle resets a timer nobody references and pushes it on the
// freelist. The fn reference is dropped so captured state can be
// collected even while the struct sits in the pool.
func (s *Simulator) recycle(t *Timer) {
	*t = Timer{index: -1}
	s.free = append(s.free, t)
}

// Recycle returns a timer handle to the simulator's pool. The caller
// promises to drop the handle: after Recycle the Timer may be reused
// by any later At/After/Post call. A pending timer is cancelled first;
// recycling nil is a no-op.
func (s *Simulator) Recycle(t *Timer) {
	if t == nil {
		return
	}
	if t.index >= 0 {
		heap.Remove(&s.events, t.index)
	}
	s.recycle(t)
}

// Move reschedules a pending timer to absolute time at, keeping its
// callback but taking a fresh sequence number — same-time ordering
// behaves exactly as if the timer had been cancelled and rescheduled.
// Moving a fired or cancelled timer panics: the caller's bookkeeping
// is wrong, and silently rescheduling it would double-fire the
// callback.
func (s *Simulator) Move(t *Timer, at float64) {
	if t == nil || t.index < 0 || t.canceled {
		panic("sim: Move of inactive timer")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: moving to %v before now %v", at, s.now))
	}
	if math.IsNaN(at) {
		panic("sim: moving to NaN")
	}
	t.at = at
	t.seq = s.seq
	s.seq++
	heap.Fix(&s.events, t.index)
}

// Cancel removes a pending timer so its callback never runs. Calling
// it on a fired or already-cancelled timer is a no-op: a fired timer
// stays Fired() (not Canceled()), so callers can tell "ran, then
// someone tried to cancel" apart from "never ran".
func (s *Simulator) Cancel(t *Timer) {
	if t == nil || t.canceled || t.fired || t.index < 0 {
		return
	}
	t.canceled = true
	heap.Remove(&s.events, t.index)
	t.index = -1
}

// Reschedule moves t's callback to a new absolute time, returning the
// (possibly identical) timer handle. A still-pending timer is moved in
// place; a fired or cancelled one gets a fresh timer for the same
// callback — the two cases are distinguishable via Fired()/Canceled()
// on the old handle, and neither can double-fire.
func (s *Simulator) Reschedule(t *Timer, at float64) *Timer {
	if t.Pending() {
		s.Move(t, at)
		return t
	}
	return s.At(at, t.fn)
}

// Step fires the next event, advancing the clock to its time.
// It returns false if no events remain.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		t := heap.Pop(&s.events).(*Timer)
		if t.canceled {
			if t.pooled {
				s.recycle(t)
			}
			continue
		}
		if invariant.Enabled {
			invariant.Check(t.at >= s.now && !math.IsNaN(t.at),
				"sim: time must be monotone: next event at %v, now %v", t.at, s.now)
		}
		s.now = t.at
		s.nfired++
		t.fired = true
		fn := t.fn
		if t.pooled {
			// Recycled before firing so a self-rescheduling chain can
			// reuse the very struct it is running from.
			s.recycle(t)
		}
		fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the clock would pass `end`,
// then sets the clock to exactly `end`. Events scheduled at exactly
// `end` do fire.
func (s *Simulator) RunUntil(end float64) {
	for s.RunUntilN(end, math.MaxInt) == math.MaxInt {
	}
}

// RunUntilN fires at most max events whose time is <= end, advancing
// the clock, and returns the number fired. A return value below max
// means the horizon was reached — no events remain at or before end —
// and the clock has been set to exactly `end`. Callers interleave work
// between batches of events; the runner engine uses it to poll context
// cancellation without putting a check on the per-event path.
func (s *Simulator) RunUntilN(end float64, max int) int {
	fired := 0
	for fired < max && len(s.events) > 0 {
		t := s.events[0]
		if t.canceled {
			heap.Pop(&s.events)
			if t.pooled {
				s.recycle(t)
			}
			continue
		}
		if t.at > end {
			break
		}
		heap.Pop(&s.events)
		if invariant.Enabled {
			invariant.Check(t.at >= s.now && !math.IsNaN(t.at),
				"sim: time must be monotone: next event at %v, now %v", t.at, s.now)
		}
		s.now = t.at
		s.nfired++
		t.fired = true
		fn := t.fn
		if t.pooled {
			s.recycle(t)
		}
		fn()
		fired++
	}
	if fired < max && end > s.now {
		s.now = end
	}
	return fired
}

// Run fires events until none remain.
func (s *Simulator) Run() {
	for s.Step() {
	}
}
