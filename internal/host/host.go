// Package host models the volunteered computer: its processing resources
// (CPU and GPU types, instance counts, per-instance peak FLOPS), memory,
// user preferences governing the client, and its availability process.
//
// Availability follows the paper's model: available and unavailable
// periods with exponentially distributed lengths, with separate channels
// for "computing allowed", "GPU computing allowed", and "connected to
// the Internet".
package host

import (
	"fmt"
	"math"

	"bce/internal/stats"
)

// ProcType identifies a processor type. The paper's BOINC supports CPUs
// plus NVIDIA and ATI GPUs as coprocessors.
type ProcType int

const (
	// CPU is the host's central processor type.
	CPU ProcType = iota
	// NvidiaGPU is the NVIDIA coprocessor type.
	NvidiaGPU
	// AtiGPU is the ATI/AMD coprocessor type.
	AtiGPU
	// NumProcTypes is the number of processor types.
	NumProcTypes
)

// String returns the BOINC-style name of the processor type.
func (t ProcType) String() string {
	switch t {
	case CPU:
		return "CPU"
	case NvidiaGPU:
		return "NVIDIA"
	case AtiGPU:
		return "ATI"
	}
	return fmt.Sprintf("ProcType(%d)", int(t))
}

// IsGPU reports whether the type is a coprocessor.
func (t ProcType) IsGPU() bool { return t == NvidiaGPU || t == AtiGPU }

// Resource describes the host's complement of one processor type.
type Resource struct {
	Count        int     // number of instances (0 = absent)
	FLOPSPerInst float64 // peak FLOPS of one instance
}

// Hardware is the host's measured hardware description, the information
// the BOINC client probes at startup.
type Hardware struct {
	Proc      [NumProcTypes]Resource
	MemBytes  float64 // main memory
	VRAMBytes float64 // video memory (shared across GPU jobs)

	// DownloadBps/UploadBps are the network link speeds in bytes/s;
	// <= 0 means transfers are instantaneous (the paper's baseline
	// assumption that jobs are runnable immediately after dispatch).
	DownloadBps float64
	UploadBps   float64
}

// PeakFLOPS returns the total peak FLOPS of all instances of type t.
func (h *Hardware) PeakFLOPS(t ProcType) float64 {
	r := h.Proc[t]
	return float64(r.Count) * r.FLOPSPerInst
}

// TotalPeakFLOPS returns the host's aggregate peak FLOPS across all
// processor types; resource share applies to this aggregate (paper §2.1).
func (h *Hardware) TotalPeakFLOPS() float64 {
	var sum float64
	for t := ProcType(0); t < NumProcTypes; t++ {
		sum += h.PeakFLOPS(t)
	}
	return sum
}

// HasGPU reports whether any coprocessor is present.
func (h *Hardware) HasGPU() bool {
	return h.Proc[NvidiaGPU].Count > 0 || h.Proc[AtiGPU].Count > 0
}

// Validate reports structural problems with the hardware description.
func (h *Hardware) Validate() error {
	if h.Proc[CPU].Count <= 0 {
		return fmt.Errorf("host: must have at least one CPU, got %d", h.Proc[CPU].Count)
	}
	for t := ProcType(0); t < NumProcTypes; t++ {
		r := h.Proc[t]
		if r.Count < 0 {
			return fmt.Errorf("host: %v count %d < 0", t, r.Count)
		}
		if r.Count > 0 && r.FLOPSPerInst <= 0 {
			return fmt.Errorf("host: %v has %d instances but FLOPS %v", t, r.Count, r.FLOPSPerInst)
		}
	}
	if h.MemBytes <= 0 {
		return fmt.Errorf("host: memory %v must be positive", h.MemBytes)
	}
	return nil
}

// Preferences are the user-specified settings that govern the client
// (paper §2.2 and §3.4). Durations are in seconds, fractions in [0,1].
type Preferences struct {
	MinQueue        float64 // min buffer: keep processors busy for this long
	MaxQueue        float64 // max buffer: don't fetch past this much work
	MaxMemFrac      float64 // fraction of RAM BOINC jobs may use (default 0.9)
	LeaveInMemory   bool    // keep preempted jobs in RAM (no checkpoint loss)
	CPUSchedPeriod  float64 // re-schedule interval (BOINC default 60 s)
	WorkFetchPeriod float64 // fetch policy poll interval (default 60 s)
}

// Defaults fills in zero fields with the BOINC client defaults.
func (p Preferences) Defaults() Preferences {
	if p.MinQueue <= 0 {
		p.MinQueue = 0.1 * 86400 // BOINC default: 0.1 days
	}
	if p.MaxQueue < p.MinQueue {
		p.MaxQueue = p.MinQueue + 0.5*86400
	}
	if p.MaxMemFrac <= 0 || p.MaxMemFrac > 1 {
		p.MaxMemFrac = 0.9
	}
	if p.CPUSchedPeriod <= 0 {
		p.CPUSchedPeriod = 60
	}
	if p.WorkFetchPeriod <= 0 {
		p.WorkFetchPeriod = 60
	}
	return p
}

// Channel identifies an availability channel.
type Channel int

const (
	// Compute is "powered on, BOINC running, computing allowed".
	Compute Channel = iota
	// GPUCompute is "GPU computing allowed" (subordinate to Compute).
	GPUCompute
	// Network is "connected to the Internet".
	Network
	// NumChannels is the number of availability channels.
	NumChannels
)

// String returns the channel name.
func (c Channel) String() string {
	switch c {
	case Compute:
		return "compute"
	case GPUCompute:
		return "gpu"
	case Network:
		return "network"
	}
	return fmt.Sprintf("Channel(%d)", int(c))
}

// AvailSpec parameterises one availability channel as a random process
// with exponentially distributed available/unavailable period lengths.
// MeanOff == 0 means always available.
type AvailSpec struct {
	MeanOn  float64 // mean length of available periods, seconds
	MeanOff float64 // mean length of unavailable periods, seconds
}

// Frac returns the long-run available fraction of the channel.
func (a AvailSpec) Frac() float64 {
	if a.MeanOff <= 0 {
		return 1
	}
	if a.MeanOn <= 0 {
		return 0
	}
	return a.MeanOn / (a.MeanOn + a.MeanOff)
}

// Period is one segment of an availability trace.
type Period struct {
	Duration float64 // seconds
	On       bool
}

// Availability bundles the three channels' specs. A channel with a
// non-empty Trace replays that recorded trace (looping) instead of the
// random process — the trace-driven mode of EmBOINC-style studies.
type Availability struct {
	Spec  [NumChannels]AvailSpec
	Trace [NumChannels][]Period
}

// AlwaysOn returns an availability with every channel always available.
func AlwaysOn() Availability { return Availability{} }

// Frac returns the channel's long-run available fraction, honouring a
// trace when present.
func (a Availability) Frac(ch Channel) float64 {
	if tr := a.Trace[ch]; len(tr) > 0 {
		var on, total float64
		for _, p := range tr {
			total += p.Duration
			if p.On {
				on += p.Duration
			}
		}
		if total <= 0 {
			return 1
		}
		return on / total
	}
	return a.Spec[ch].Frac()
}

// PeriodSource generates successive availability periods. Both the
// random Process and TraceReplay implement it.
type PeriodSource interface {
	// Next returns the next period's length and whether the channel is
	// available during it. Duration <= 0 with on == true means
	// "available forever".
	Next() (duration float64, on bool)
}

// TraceReplay replays a recorded availability trace, looping back to
// the start when it runs out. Zero-length periods are skipped.
type TraceReplay struct {
	periods []Period
	i       int
}

// NewTraceReplay returns a source replaying the trace. An empty trace
// behaves as always-on.
func NewTraceReplay(trace []Period) *TraceReplay {
	var clean []Period
	for _, p := range trace {
		if p.Duration > 0 {
			clean = append(clean, p)
		}
	}
	return &TraceReplay{periods: clean}
}

// Next implements PeriodSource.
func (t *TraceReplay) Next() (float64, bool) {
	if len(t.periods) == 0 {
		return 0, true
	}
	p := t.periods[t.i%len(t.periods)]
	t.i++
	return p.Duration, p.On
}

// Source returns the period source for one channel: a trace replay if
// a trace is present, the random process otherwise, or nil when the
// channel is simply always on.
func (a Availability) Source(ch Channel, rng *stats.RNG) PeriodSource {
	if tr := a.Trace[ch]; len(tr) > 0 {
		return NewTraceReplay(tr)
	}
	if a.Spec[ch].MeanOff <= 0 {
		return nil
	}
	return NewProcess(a.Spec[ch], rng)
}

// DailyWindowTrace builds the looping availability trace for a
// time-of-day computing preference (paper §2.2: "time-of-day limits on
// computing"): available from startHour to endHour each day. Windows
// crossing midnight (e.g. 22→6) are supported. Equal start and end
// means always available (nil trace).
func DailyWindowTrace(startHour, endHour float64) []Period {
	const day = 24.0
	startHour = math.Mod(math.Mod(startHour, day)+day, day)
	endHour = math.Mod(math.Mod(endHour, day)+day, day)
	if startHour == endHour {
		return nil
	}
	if startHour < endHour {
		// Off [0,start), on [start,end), off [end,24). The trace must
		// begin at time zero (midnight).
		return trimZero([]Period{
			{Duration: startHour * 3600, On: false},
			{Duration: (endHour - startHour) * 3600, On: true},
			{Duration: (day - endHour) * 3600, On: false},
		})
	}
	// Crosses midnight: on [0,end), off [end,start), on [start,24).
	return trimZero([]Period{
		{Duration: endHour * 3600, On: true},
		{Duration: (startHour - endHour) * 3600, On: false},
		{Duration: (day - startHour) * 3600, On: true},
	})
}

func trimZero(ps []Period) []Period {
	out := ps[:0]
	for _, p := range ps {
		if p.Duration > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Process generates the alternating on/off periods for one channel.
// Successive calls to Next return (duration, on) pairs starting with an
// available period.
type Process struct {
	spec AvailSpec
	rng  *stats.RNG
	on   bool
}

// NewProcess creates an availability process for the spec. The process
// begins in the available state.
func NewProcess(spec AvailSpec, rng *stats.RNG) *Process {
	return &Process{spec: spec, rng: rng, on: false}
}

// Next returns the length of the next period and whether the channel is
// available during it. An always-on spec returns a single infinite "on"
// period (duration <= 0 means forever).
func (p *Process) Next() (duration float64, on bool) {
	p.on = !p.on
	if p.spec.MeanOff <= 0 {
		return 0, true // forever on
	}
	if p.on {
		return p.rng.Exp(p.spec.MeanOn), true
	}
	return p.rng.Exp(p.spec.MeanOff), false
}

// Host combines hardware, preferences and availability: one usage
// scenario's machine.
type Host struct {
	Hardware Hardware
	Prefs    Preferences
	Avail    Availability
}

// New returns a host with defaults applied to the preferences.
func New(hw Hardware, prefs Preferences, avail Availability) (*Host, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	return &Host{Hardware: hw, Prefs: prefs.Defaults(), Avail: avail}, nil
}

// StdHost returns a simple always-on host: ncpu CPUs of cpuFlops each and
// optionally ngpu NVIDIA GPUs of gpuFlops each, 8 GB RAM. It is the
// building block for the paper's scenarios.
func StdHost(ncpu int, cpuFlops float64, ngpu int, gpuFlops float64) *Host {
	hw := Hardware{
		MemBytes:  8e9,
		VRAMBytes: 4e9,
	}
	hw.Proc[CPU] = Resource{Count: ncpu, FLOPSPerInst: cpuFlops}
	if ngpu > 0 {
		hw.Proc[NvidiaGPU] = Resource{Count: ngpu, FLOPSPerInst: gpuFlops}
	}
	h, err := New(hw, Preferences{}, AlwaysOn())
	if err != nil {
		panic(err) // impossible for valid arguments
	}
	return h
}
