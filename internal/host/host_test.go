package host

import (
	"math"
	"testing"
	"testing/quick"

	"bce/internal/stats"
)

func TestProcTypeString(t *testing.T) {
	if CPU.String() != "CPU" || NvidiaGPU.String() != "NVIDIA" || AtiGPU.String() != "ATI" {
		t.Fatal("unexpected ProcType names")
	}
	if ProcType(9).String() != "ProcType(9)" {
		t.Fatal("unknown type should format as ProcType(n)")
	}
	if CPU.IsGPU() || !NvidiaGPU.IsGPU() || !AtiGPU.IsGPU() {
		t.Fatal("IsGPU classification wrong")
	}
}

func TestPeakFLOPS(t *testing.T) {
	h := StdHost(4, 2.5e9, 1, 100e9)
	if got := h.Hardware.PeakFLOPS(CPU); got != 10e9 {
		t.Fatalf("CPU peak = %v, want 10e9", got)
	}
	if got := h.Hardware.PeakFLOPS(NvidiaGPU); got != 100e9 {
		t.Fatalf("GPU peak = %v, want 100e9", got)
	}
	if got := h.Hardware.TotalPeakFLOPS(); got != 110e9 {
		t.Fatalf("total peak = %v, want 110e9", got)
	}
	if !h.Hardware.HasGPU() {
		t.Fatal("HasGPU = false for host with a GPU")
	}
	if StdHost(1, 1e9, 0, 0).Hardware.HasGPU() {
		t.Fatal("HasGPU = true for CPU-only host")
	}
}

func TestValidate(t *testing.T) {
	bad := []Hardware{
		{}, // no CPU
		{Proc: [NumProcTypes]Resource{{Count: -1, FLOPSPerInst: 1e9}}, MemBytes: 1e9},
		{Proc: [NumProcTypes]Resource{{Count: 1, FLOPSPerInst: 0}}, MemBytes: 1e9},
		{Proc: [NumProcTypes]Resource{{Count: 1, FLOPSPerInst: 1e9}}}, // no memory
		{Proc: [NumProcTypes]Resource{{Count: 1, FLOPSPerInst: 1e9}, {Count: 1, FLOPSPerInst: -1}}, MemBytes: 1e9},
	}
	for i, hw := range bad {
		if err := hw.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted invalid hardware", i)
		}
	}
	good := Hardware{MemBytes: 1e9}
	good.Proc[CPU] = Resource{Count: 2, FLOPSPerInst: 3e9}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected valid hardware: %v", err)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Hardware{}, Preferences{}, AlwaysOn()); err == nil {
		t.Fatal("New accepted invalid hardware")
	}
}

func TestPreferenceDefaults(t *testing.T) {
	p := Preferences{}.Defaults()
	if p.MinQueue != 8640 {
		t.Fatalf("MinQueue default = %v, want 8640 (0.1 day)", p.MinQueue)
	}
	if p.MaxQueue <= p.MinQueue {
		t.Fatalf("MaxQueue %v should exceed MinQueue %v", p.MaxQueue, p.MinQueue)
	}
	if p.MaxMemFrac != 0.9 || p.CPUSchedPeriod != 60 || p.WorkFetchPeriod != 60 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	// Explicit values survive.
	q := Preferences{MinQueue: 100, MaxQueue: 5000, MaxMemFrac: 0.5}.Defaults()
	if q.MinQueue != 100 || q.MaxQueue != 5000 || q.MaxMemFrac != 0.5 {
		t.Fatalf("explicit preferences overridden: %+v", q)
	}
	// MaxQueue below MinQueue is repaired.
	r := Preferences{MinQueue: 1000, MaxQueue: 10}.Defaults()
	if r.MaxQueue < r.MinQueue {
		t.Fatalf("MaxQueue %v < MinQueue %v after Defaults", r.MaxQueue, r.MinQueue)
	}
}

func TestAvailSpecFrac(t *testing.T) {
	if f := (AvailSpec{}).Frac(); f != 1 {
		t.Fatalf("always-on Frac = %v, want 1", f)
	}
	if f := (AvailSpec{MeanOn: 3, MeanOff: 1}).Frac(); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("Frac = %v, want 0.75", f)
	}
	if f := (AvailSpec{MeanOn: 0, MeanOff: 5}).Frac(); f != 0 {
		t.Fatalf("never-on Frac = %v, want 0", f)
	}
}

func TestProcessAlwaysOn(t *testing.T) {
	p := NewProcess(AvailSpec{}, stats.NewRNG(1))
	d, on := p.Next()
	if !on || d > 0 {
		t.Fatalf("always-on process returned (%v,%v), want infinite on period", d, on)
	}
}

func TestProcessAlternatesAndConverges(t *testing.T) {
	spec := AvailSpec{MeanOn: 3600, MeanOff: 1200}
	p := NewProcess(spec, stats.NewRNG(5))
	var onTime, offTime float64
	prevOn := false
	for i := 0; i < 20000; i++ {
		d, on := p.Next()
		if i > 0 && on == prevOn {
			t.Fatal("process did not alternate on/off")
		}
		prevOn = on
		if on {
			onTime += d
		} else {
			offTime += d
		}
	}
	frac := onTime / (onTime + offTime)
	if math.Abs(frac-spec.Frac()) > 0.02 {
		t.Fatalf("long-run on fraction %v, want ~%v", frac, spec.Frac())
	}
}

func TestProcessStartsOn(t *testing.T) {
	p := NewProcess(AvailSpec{MeanOn: 10, MeanOff: 10}, stats.NewRNG(2))
	if _, on := p.Next(); !on {
		t.Fatal("process must start with an available period")
	}
}

func TestPropertyFracInRange(t *testing.T) {
	f := func(on, off float64) bool {
		on, off = math.Abs(on), math.Abs(off)
		if math.IsNaN(on) || math.IsNaN(off) || math.IsInf(on, 0) || math.IsInf(off, 0) {
			return true
		}
		fr := AvailSpec{MeanOn: on, MeanOff: off}.Frac()
		return fr >= 0 && fr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelString(t *testing.T) {
	if Compute.String() != "compute" || GPUCompute.String() != "gpu" || Network.String() != "network" {
		t.Fatal("unexpected channel names")
	}
	if Channel(7).String() != "Channel(7)" {
		t.Fatal("unknown channel formatting")
	}
}

func TestTraceReplayLoops(t *testing.T) {
	tr := NewTraceReplay([]Period{
		{Duration: 10, On: true},
		{Duration: 5, On: false},
	})
	for round := 0; round < 3; round++ {
		d, on := tr.Next()
		if d != 10 || !on {
			t.Fatalf("round %d: first period = (%v,%v)", round, d, on)
		}
		d, on = tr.Next()
		if d != 5 || on {
			t.Fatalf("round %d: second period = (%v,%v)", round, d, on)
		}
	}
}

func TestTraceReplaySkipsZeroPeriods(t *testing.T) {
	tr := NewTraceReplay([]Period{
		{Duration: 0, On: false},
		{Duration: 7, On: true},
	})
	if d, on := tr.Next(); d != 7 || !on {
		t.Fatalf("zero-length period not skipped: (%v,%v)", d, on)
	}
}

func TestTraceReplayEmptyAlwaysOn(t *testing.T) {
	tr := NewTraceReplay(nil)
	if d, on := tr.Next(); d != 0 || !on {
		t.Fatal("empty trace should behave as always-on")
	}
}

func TestAvailabilityFrac(t *testing.T) {
	var a Availability
	if a.Frac(Compute) != 1 {
		t.Fatal("always-on Frac should be 1")
	}
	a.Spec[Compute] = AvailSpec{MeanOn: 1, MeanOff: 3}
	if f := a.Frac(Compute); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("spec Frac = %v, want 0.25", f)
	}
	// A trace overrides the spec.
	a.Trace[Compute] = []Period{{Duration: 6, On: true}, {Duration: 2, On: false}}
	if f := a.Frac(Compute); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("trace Frac = %v, want 0.75", f)
	}
}

func TestAvailabilitySource(t *testing.T) {
	var a Availability
	if src := a.Source(Compute, stats.NewRNG(1)); src != nil {
		t.Fatal("always-on channel should have nil source")
	}
	a.Spec[Compute] = AvailSpec{MeanOn: 10, MeanOff: 10}
	if _, ok := a.Source(Compute, stats.NewRNG(1)).(*Process); !ok {
		t.Fatal("spec channel should use the random process")
	}
	a.Trace[Compute] = []Period{{Duration: 1, On: true}}
	if _, ok := a.Source(Compute, stats.NewRNG(1)).(*TraceReplay); !ok {
		t.Fatal("traced channel should use trace replay")
	}
}

func TestDailyWindowTrace(t *testing.T) {
	// 9:00–17:00: off 9 h, on 8 h, off 7 h.
	tr := DailyWindowTrace(9, 17)
	want := []Period{{9 * 3600, false}, {8 * 3600, true}, {7 * 3600, false}}
	if len(tr) != 3 {
		t.Fatalf("trace = %v", tr)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, tr[i], want[i])
		}
	}
	var total float64
	for _, p := range tr {
		total += p.Duration
	}
	if total != 86400 {
		t.Fatalf("trace does not cover one day: %v", total)
	}
}

func TestDailyWindowTraceCrossesMidnight(t *testing.T) {
	// 22:00–06:00: on 6 h, off 16 h, on 2 h.
	tr := DailyWindowTrace(22, 6)
	want := []Period{{6 * 3600, true}, {16 * 3600, false}, {2 * 3600, true}}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, tr[i], want[i])
		}
	}
}

func TestDailyWindowTraceDegenerate(t *testing.T) {
	if tr := DailyWindowTrace(8, 8); tr != nil {
		t.Fatalf("equal start/end should mean always on, got %v", tr)
	}
	// Midnight boundary: 0→8 has no leading off period.
	tr := DailyWindowTrace(0, 8)
	if len(tr) != 2 || !tr[0].On || tr[0].Duration != 8*3600 {
		t.Fatalf("0–8 window trace = %v", tr)
	}
	// Negative hours normalise.
	tr2 := DailyWindowTrace(-2, 6) // == 22→6
	if len(tr2) != 3 || !tr2[0].On {
		t.Fatalf("-2–6 window trace = %v", tr2)
	}
}
