package study

import (
	"strings"
	"testing"

	"bce/internal/scenario"
	"bce/internal/stats"
)

func samplePop(n int) []*scenario.Scenario {
	rng := stats.NewRNG(9)
	out := make([]*scenario.Scenario, n)
	for i := range out {
		out[i] = scenario.Sample(rng, scenario.PopulationParams{DurationDays: 0.5})
	}
	return out
}

func TestRunDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	res, err := Run(samplePop(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Combos) != len(DefaultCombos()) || res.Scenarios != 4 {
		t.Fatalf("result shape wrong: %d combos, %d scenarios", len(res.Combos), res.Scenarios)
	}
	for _, combo := range res.Combos {
		if len(res.Values[combo]) != 4 {
			t.Fatalf("%s has %d values", combo, len(res.Values[combo]))
		}
		for m := 0; m < 5; m++ {
			mean, _ := res.Mean(combo, m)
			if mean < 0 || mean > 1 {
				t.Fatalf("%s metric %d mean %v out of range", combo, m, mean)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if _, err := Run(nil, nil); err == nil {
		t.Fatal("empty population accepted")
	}
}

func TestPairedWinsIdenticalCombosTie(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	combos := []Combo{
		{Sched: "JS-LOCAL", Fetch: "JF-HYSTERESIS"},
		{Sched: "JS-LOCAL", Fetch: "JF-HYSTERESIS"},
	}
	res, err := Run(samplePop(3), combos)
	if err != nil {
		t.Fatal(err)
	}
	a, b, ties := res.PairedWins(0, combos[0], combos[1])
	if a != 0 || b != 0 || ties != 3 {
		t.Fatalf("identical combos: wins %d/%d ties %d, want all ties", a, b, ties)
	}
}

func TestPairedWinsDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	// JF-ORIG vs JF-HYSTERESIS on RPCs/job (metric 4): hysteresis
	// should win on most multi-project scenarios.
	combos := []Combo{
		{Sched: "JS-LOCAL", Fetch: "JF-HYSTERESIS"},
		{Sched: "JS-LOCAL", Fetch: "JF-ORIG"},
	}
	res, err := Run(samplePop(6), combos)
	if err != nil {
		t.Fatal(err)
	}
	hystWins, origWins, _ := res.PairedWins(4, combos[0], combos[1])
	if hystWins <= origWins {
		t.Fatalf("hysteresis RPC wins %d <= orig wins %d", hystWins, origWins)
	}
}

func TestTables(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	res, err := Run(samplePop(2), []Combo{
		{Sched: "JS-LOCAL", Fetch: "JF-HYSTERESIS"},
		{Sched: "JS-GLOBAL", Fetch: "JF-HYSTERESIS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	for _, want := range []string{"policy", "JS-LOCAL/JF-HYSTERESIS", "JS-GLOBAL/JF-HYSTERESIS", "±"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	wins := res.WinsTable(0)
	if !strings.Contains(wins, "paired wins") || !strings.Contains(wins, "baseline") {
		t.Fatalf("wins table malformed:\n%s", wins)
	}
	if (&Result{Combos: []Combo{{Sched: "a", Fetch: "b"}}}).WinsTable(0) != "" {
		t.Fatal("single-combo wins table should be empty")
	}
}

func TestComboString(t *testing.T) {
	if (Combo{Sched: "JS-WRR", Fetch: "JF-ORIG"}).String() != "JS-WRR/JF-ORIG" {
		t.Fatal("combo formatting")
	}
}

func TestBadComboRejected(t *testing.T) {
	_, err := Run(samplePop(1), []Combo{{Sched: "JS-NOPE", Fetch: "JF-ORIG"}})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
}
