// Package study runs Monte-Carlo policy studies over scenario
// populations — the paper's §6.2 direction: "Characterize the actual
// population of scenarios, and develop a system, perhaps based on
// Monte-Carlo sampling, to study policies over the entire population."
//
// A study evaluates every policy combination on every sampled scenario
// and reports population means with confidence intervals plus paired
// per-scenario comparisons (which policy wins on how many scenarios),
// which is far more sensitive than comparing means across a
// heterogeneous population.
package study

import (
	"context"
	"fmt"
	"strings"

	"bce/internal/client"
	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/scenario"
	"bce/internal/stats"
)

// Combo is one policy combination under study.
type Combo struct {
	Sched string // "JS-LOCAL", "JS-GLOBAL", "JS-WRR", "JS-LLF"
	Fetch string // "JF-ORIG", "JF-HYSTERESIS", "JF-SPREAD"
}

// String returns "sched/fetch".
func (c Combo) String() string { return c.Sched + "/" + c.Fetch }

// DefaultCombos is the policy matrix the paper's variants span.
func DefaultCombos() []Combo {
	return []Combo{
		{"JS-LOCAL", "JF-ORIG"},
		{"JS-LOCAL", "JF-HYSTERESIS"},
		{"JS-GLOBAL", "JF-ORIG"},
		{"JS-GLOBAL", "JF-HYSTERESIS"},
		{"JS-WRR", "JF-HYSTERESIS"},
	}
}

// Result holds per-scenario metric values for every combo.
type Result struct {
	Combos    []Combo
	Scenarios int
	// Values[combo][scenario] is the five figures of merit.
	Values map[Combo][][5]float64
	Failed map[Combo]int
}

// Run evaluates the combos over the sampled scenarios. Each scenario
// keeps its own seed and duration; only the policies vary, so the
// comparison is paired.
//
//bce:ctxshim
func Run(samples []*scenario.Scenario, combos []Combo) (*Result, error) {
	return RunContext(context.Background(), samples, combos)
}

// comboConfig builds the config for one (scenario, combo) cell. It is
// called once up front for validation and again inside the worker, so
// every run gets its own fresh host/project state.
func comboConfig(base *scenario.Scenario, combo Combo) (client.Config, error) {
	s := *base
	s.Policies.JobSched = combo.Sched
	s.Policies.JobFetch = combo.Fetch
	return s.Config()
}

// RunContext evaluates every (combo, scenario) cell on the engine's
// worker pool. Configuration errors abort the study up front;
// emulation failures are tolerated and counted per combo, exactly like
// the sequential path. Cell values are collected in (combo, scenario)
// order, so results are identical for any worker count.
func RunContext(ctx context.Context, samples []*scenario.Scenario, combos []Combo, opts ...runner.Option) (*Result, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("study: no scenarios")
	}
	if len(combos) == 0 {
		combos = DefaultCombos()
	}
	res := &Result{
		Combos:    combos,
		Scenarios: len(samples),
		Values:    make(map[Combo][][5]float64),
		Failed:    make(map[Combo]int),
	}
	specs := make([]runner.Spec, 0, len(combos)*len(samples))
	for _, combo := range combos {
		for _, base := range samples {
			if _, err := comboConfig(base, combo); err != nil {
				return nil, fmt.Errorf("study: scenario %s with %s: %w", base.Name, combo, err)
			}
			combo, base := combo, base
			specs = append(specs, runner.Spec{
				Label: fmt.Sprintf("%s/%s", base.Name, combo),
				Make:  func() (client.Config, error) { return comboConfig(base, combo) },
			})
		}
	}
	results, err := runner.Batch(ctx, specs, opts...)
	if err != nil {
		return nil, err
	}
	for ci, combo := range combos {
		vals := make([][5]float64, 0, len(samples))
		for si := range samples {
			r := results[ci*len(samples)+si]
			if r.Err != nil {
				res.Failed[combo]++
				vals = append(vals, [5]float64{-1, -1, -1, -1, -1}) // sentinel, excluded below
				continue
			}
			vals = append(vals, r.Result.Metrics.Values())
		}
		res.Values[combo] = vals
	}
	return res, nil
}

// Mean returns the population mean and 95% CI half-width of one metric
// for one combo (failed runs excluded).
func (r *Result) Mean(combo Combo, metric int) (mean, ci float64) {
	var m stats.Mean
	for _, v := range r.Values[combo] {
		if v[0] >= 0 {
			m.Add(v[metric])
		}
	}
	return m.Mean(), m.CI95()
}

// PairedWins counts, per scenario, which of a and b had the strictly
// lower (better) value of the metric. Scenarios where either failed
// are skipped.
func (r *Result) PairedWins(metric int, a, b Combo) (aWins, bWins, ties int) {
	va, vb := r.Values[a], r.Values[b]
	for i := 0; i < len(va) && i < len(vb); i++ {
		if va[i][0] < 0 || vb[i][0] < 0 {
			continue
		}
		switch {
		case va[i][metric] < vb[i][metric]:
			aWins++
		case vb[i][metric] < va[i][metric]:
			bWins++
		default:
			ties++
		}
	}
	return
}

// Table renders the population means, one row per combo.
func (r *Result) Table() string {
	var b strings.Builder
	names := metrics.Names()
	fmt.Fprintf(&b, "%-26s", "policy")
	for _, n := range names {
		fmt.Fprintf(&b, " %16s", n)
	}
	b.WriteByte('\n')
	for _, combo := range r.Combos {
		fmt.Fprintf(&b, "%-26s", combo.String())
		for m := range names {
			mean, ci := r.Mean(combo, m)
			fmt.Fprintf(&b, " %16s", fmt.Sprintf("%.4f±%.3f", mean, ci))
		}
		if f := r.Failed[combo]; f > 0 {
			fmt.Fprintf(&b, "  (%d failed)", f)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WinsTable renders the paired comparison of every combo against the
// first (the baseline) for one metric.
func (r *Result) WinsTable(metric int) string {
	if len(r.Combos) < 2 {
		return ""
	}
	names := metrics.Names()
	base := r.Combos[0]
	var b strings.Builder
	fmt.Fprintf(&b, "paired wins on %s vs baseline %s (lower is better)\n", names[metric], base)
	for _, combo := range r.Combos[1:] {
		cw, bw, ties := r.PairedWins(metric, combo, base)
		fmt.Fprintf(&b, "  %-26s wins %3d, loses %3d, ties %3d\n", combo.String(), cw, bw, ties)
	}
	return b.String()
}
