// Package study runs Monte-Carlo policy studies over scenario
// populations — the paper's §6.2 direction: "Characterize the actual
// population of scenarios, and develop a system, perhaps based on
// Monte-Carlo sampling, to study policies over the entire population."
//
// A study evaluates every policy combination on every sampled scenario
// and reports population means with confidence intervals plus paired
// per-scenario comparisons (which policy wins on how many scenarios),
// which is far more sensitive than comparing means across a
// heterogeneous population.
//
// This package is the in-memory view: it keeps every per-scenario
// value, which is convenient for small studies and tests. Large or
// resumable studies should use internal/population directly, which
// streams the same cells into constant-size mergeable aggregates; for
// studies too big for one process, internal/fabric shards a population
// study across worker processes and merges the partial aggregates back
// into the identical result (DESIGN.md §14).
package study

import (
	"context"
	"fmt"
	"strings"

	"bce/internal/client"
	"bce/internal/metrics"
	"bce/internal/population"
	"bce/internal/runner"
	"bce/internal/scenario"
	"bce/internal/stats"
)

// Combo is one policy combination under study.
type Combo = population.Combo

// DefaultCombos is the policy matrix the paper's variants span.
func DefaultCombos() []Combo { return population.DefaultCombos() }

// Result holds per-scenario metric values for every combo.
type Result struct {
	Combos    []Combo
	Scenarios int
	// Values[combo][scenario] is the five figures of merit.
	Values map[Combo][][5]float64
	Failed map[Combo]int
}

// Run evaluates the combos over the sampled scenarios. Each scenario
// keeps its own seed and duration; only the policies vary, so the
// comparison is paired.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Run(samples []*scenario.Scenario, combos []Combo) (*Result, error) {
	return RunContext(context.Background(), samples, combos)
}

// comboConfig builds the config for one (scenario, combo) cell; it is
// used here only to validate every cell up front.
func comboConfig(base *scenario.Scenario, combo Combo) (client.Config, error) {
	s := *base
	s.Policies.JobSched = combo.Sched
	s.Policies.JobFetch = combo.Fetch
	return s.Config()
}

// RunContext evaluates every (combo, scenario) cell on the streaming
// population engine and materializes the per-scenario values.
// Configuration errors abort the study up front; emulation failures are
// tolerated and counted per combo. Cell values are folded in scenario
// order, so results are identical for any worker count.
func RunContext(ctx context.Context, samples []*scenario.Scenario, combos []Combo, opts ...runner.Option) (*Result, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("study: no scenarios")
	}
	if len(combos) == 0 {
		combos = DefaultCombos()
	}
	for _, combo := range combos {
		for _, base := range samples {
			if _, err := comboConfig(base, combo); err != nil {
				return nil, fmt.Errorf("study: scenario %s with %s: %w", base.Name, combo, err)
			}
		}
	}
	cells := make([][][5]float64, len(combos))
	failed := make([]int, len(combos))
	for c := range cells {
		cells[c] = make([][5]float64, len(samples))
	}
	p := population.Params{
		Combos:    combos,
		Scenarios: len(samples),
		Source:    func(i int) (*scenario.Scenario, error) { return samples[i], nil },
		OnCell: func(scenarioIdx, comboIdx int, vals [population.NumMetrics]float64, fail bool) {
			if fail {
				failed[comboIdx]++
				cells[comboIdx][scenarioIdx] = [5]float64{-1, -1, -1, -1, -1} // sentinel, excluded below
				return
			}
			cells[comboIdx][scenarioIdx] = vals
		},
	}
	if _, err := population.Run(ctx, p, opts...); err != nil {
		return nil, err
	}
	res := &Result{
		Combos:    combos,
		Scenarios: len(samples),
		Values:    make(map[Combo][][5]float64),
		Failed:    make(map[Combo]int),
	}
	for c, combo := range combos {
		res.Values[combo] = cells[c]
		res.Failed[combo] += failed[c]
	}
	return res, nil
}

// Mean returns the population mean and 95% CI half-width of one metric
// for one combo (failed runs excluded).
func (r *Result) Mean(combo Combo, metric int) (mean, ci float64) {
	var m stats.Mean
	for _, v := range r.Values[combo] {
		if v[0] >= 0 {
			m.Add(v[metric])
		}
	}
	return m.Mean(), m.CI95()
}

// PairedWins counts, per scenario, which of a and b had the strictly
// lower (better) value of the metric. Scenarios where either failed
// are skipped.
func (r *Result) PairedWins(metric int, a, b Combo) (aWins, bWins, ties int) {
	va, vb := r.Values[a], r.Values[b]
	for i := 0; i < len(va) && i < len(vb); i++ {
		if va[i][0] < 0 || vb[i][0] < 0 {
			continue
		}
		switch {
		case va[i][metric] < vb[i][metric]:
			aWins++
		case vb[i][metric] < va[i][metric]:
			bWins++
		default:
			ties++
		}
	}
	return
}

// Table renders the population means, one row per combo.
func (r *Result) Table() string {
	var b strings.Builder
	names := metrics.Names()
	fmt.Fprintf(&b, "%-26s", "policy")
	for _, n := range names {
		fmt.Fprintf(&b, " %16s", n)
	}
	b.WriteByte('\n')
	for _, combo := range r.Combos {
		fmt.Fprintf(&b, "%-26s", combo.String())
		for m := range names {
			mean, ci := r.Mean(combo, m)
			fmt.Fprintf(&b, " %16s", fmt.Sprintf("%.4f±%.3f", mean, ci))
		}
		if f := r.Failed[combo]; f > 0 {
			fmt.Fprintf(&b, "  (%d failed)", f)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WinsTable renders the paired comparison of every combo against the
// first (the baseline) for one metric.
func (r *Result) WinsTable(metric int) string {
	if len(r.Combos) < 2 {
		return ""
	}
	names := metrics.Names()
	base := r.Combos[0]
	var b strings.Builder
	fmt.Fprintf(&b, "paired wins on %s vs baseline %s (lower is better)\n", names[metric], base)
	for _, combo := range r.Combos[1:] {
		cw, bw, ties := r.PairedWins(metric, combo, base)
		fmt.Fprintf(&b, "  %-26s wins %3d, loses %3d, ties %3d\n", combo.String(), cw, bw, ties)
	}
	return b.String()
}
