package chart

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func lineChart() *Chart {
	return &Chart{
		Title: "waste vs slack", XLabel: "slack (s)", YLabel: "wasted",
		Series: []Series{
			{Label: "JS-WRR", X: []float64{0, 500, 1000}, Y: []float64{0.5, 0.4, 0.3}},
			{Label: "JS-LOCAL", X: []float64{0, 500, 1000}, Y: []float64{0.5, 0.1, 0.0}},
		},
	}
}

func TestLineSVGWellFormed(t *testing.T) {
	svg := lineChart().LineSVG()
	for _, want := range []string{"<svg", "</svg>", "<polyline", "JS-WRR", "JS-LOCAL", "waste vs slack", "slack (s)"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("polyline count %d, want 2", strings.Count(svg, "<polyline"))
	}
	// One circle per point.
	if strings.Count(svg, "<circle") != 6 {
		t.Fatalf("circle count %d, want 6", strings.Count(svg, "<circle"))
	}
}

func TestBarSVGWellFormed(t *testing.T) {
	c := &Chart{
		Title: "fig4", YLabel: "value",
		Categories: []string{"violation", "idle"},
		Series: []Series{
			{Label: "JS-LOCAL", Y: []float64{0.35, 0.0}},
			{Label: "JS-GLOBAL", Y: []float64{0.22, 0.0}},
		},
	}
	svg := c.BarSVG()
	for _, want := range []string{"<svg", "</svg>", "<rect", "violation", "idle", "JS-LOCAL"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("bar SVG missing %q", want)
		}
	}
	// Frame rect + 3 bars with positive height (zero-height bars still
	// render with height 0... they render as rects). At least 3 data
	// rects + frame + 2 legend swatches.
	if strings.Count(svg, "<rect") < 5 {
		t.Fatalf("rect count %d too low", strings.Count(svg, "<rect"))
	}
}

func TestEmptyCharts(t *testing.T) {
	c := &Chart{Title: "empty"}
	if svg := c.LineSVG(); !strings.Contains(svg, "</svg>") {
		t.Fatal("empty line chart not well-formed")
	}
	if svg := c.BarSVG(); !strings.Contains(svg, "</svg>") {
		t.Fatal("empty bar chart not well-formed")
	}
}

func TestNaNSkipped(t *testing.T) {
	c := &Chart{
		Series: []Series{{Label: "s", X: []float64{0, 1, 2}, Y: []float64{0.5, math.NaN(), 0.7}}},
	}
	svg := c.LineSVG()
	if strings.Count(svg, "<circle") != 2 {
		t.Fatalf("NaN point not skipped: %d circles", strings.Count(svg, "<circle"))
	}
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestEscaping(t *testing.T) {
	c := &Chart{Title: `<script>"x"&y</script>`, Series: []Series{{Label: "a<b", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	svg := c.LineSVG()
	if strings.Contains(svg, "<script>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b") {
		t.Fatal("label not escaped")
	}
}

func TestTicksRound(t *testing.T) {
	tk := ticks(0, 1.05, 5)
	if len(tk) < 3 {
		t.Fatalf("ticks = %v", tk)
	}
	for i := 1; i < len(tk); i++ {
		if tk[i] <= tk[i-1] {
			t.Fatalf("ticks not increasing: %v", tk)
		}
	}
	if tk[0] < 0 || tk[len(tk)-1] > 1.06 {
		t.Fatalf("ticks out of range: %v", tk)
	}
	if got := ticks(5, 5, 4); len(got) != 2 {
		t.Fatalf("degenerate range ticks = %v", got)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		0.5:  "0.5",
		1:    "1",
		12.5: "12.5",
		1e7:  "1.0e+07",
	}
	for in, want := range cases {
		if got := fmtTick(in); got != want {
			t.Fatalf("fmtTick(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: arbitrary finite data never produces NaN/Inf coordinates in
// the SVG and always closes the document.
func TestPropertySVGRobust(t *testing.T) {
	f := func(ys [6]float64, xs [6]float64) bool {
		s := Series{Label: "s"}
		for i := range ys {
			x, y := xs[i], ys[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, math.Abs(y))
		}
		c := &Chart{Series: []Series{s}}
		svg := c.LineSVG()
		return strings.HasSuffix(strings.TrimSpace(svg), "</svg>") &&
			!strings.Contains(svg, "NaN") && !strings.Contains(svg, "Inf")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
