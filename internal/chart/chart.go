// Package chart renders line and bar charts as self-contained SVG,
// used by the HTML report generator and the web frontend. It is a
// deliberately small, dependency-free renderer: numeric axes with tick
// labels, multiple named series in a fixed palette, and a legend.
package chart

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line or bar group.
type Series struct {
	Label string
	X     []float64 // ignored for bar charts (categorical)
	Y     []float64
}

// Chart describes one plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series

	// Categories label the x positions of bar charts.
	Categories []string

	Width, Height int // pixels; defaults 640×360
}

var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7",
}

const (
	marginLeft   = 56
	marginRight  = 16
	marginTop    = 28
	marginBottom = 44
)

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 360
	}
	return
}

// yRange returns the y axis range: [0, max] padded (figures of merit
// live in [0,1]; other data gets 5% headroom).
func (c *Chart) yRange() (float64, float64) {
	maxY := 0.0
	for _, s := range c.Series {
		for _, y := range s.Y {
			if !math.IsNaN(y) && y > maxY {
				maxY = y
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	if maxY > math.MaxFloat64/2 {
		maxY = math.MaxFloat64 / 2 // keep the 5% headroom finite
	}
	return 0, maxY * 1.05
}

func (c *Chart) xRange() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, x := range s.X {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// frac maps v into [0,1] over [lo,hi], staying finite even when the
// span overflows float64 (halve both operands first).
func frac(v, lo, hi float64) float64 {
	span := hi - lo
	if math.IsInf(span, 0) {
		return (v/2 - lo/2) / (hi/2 - lo/2)
	}
	if span <= 0 {
		return 0
	}
	return (v - lo) / span
}

// ticks returns ~n round tick values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 || math.IsInf(hi-lo, 0) {
		return []float64{lo, hi}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step/1e6; v += step {
		out = append(out, v)
	}
	return out
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case av < 10:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.1f", v), "0"), ".")
	}
}

// LineSVG renders the chart as connected line series over numeric x.
func (c *Chart) LineSVG() string {
	w, h := c.dims()
	var b strings.Builder
	c.header(&b, w, h)
	x0, x1 := c.xRange()
	y0, y1 := c.yRange()
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	px := func(x float64) float64 { return marginLeft + frac(x, x0, x1)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - frac(y, y0, y1)*plotH }

	c.axes(&b, w, h, x0, x1, y0, y1, true)

	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`,
				color, strings.Join(pts, " "))
			b.WriteByte('\n')
		}
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`, xy[0], xy[1], color)
			b.WriteByte('\n')
		}
	}
	c.legend(&b, w)
	b.WriteString("</svg>\n")
	return b.String()
}

// BarSVG renders the chart as grouped bars over categorical x
// (Categories); each series contributes one bar per category.
func (c *Chart) BarSVG() string {
	w, h := c.dims()
	var b strings.Builder
	c.header(&b, w, h)
	y0, y1 := c.yRange()
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	py := func(y float64) float64 { return marginTop + plotH - frac(y, y0, y1)*plotH }

	ncat := len(c.Categories)
	if ncat == 0 {
		for _, s := range c.Series {
			if len(s.Y) > ncat {
				ncat = len(s.Y)
			}
		}
	}
	if ncat == 0 {
		b.WriteString("</svg>\n")
		return b.String()
	}
	c.axes(&b, w, h, 0, 1, y0, y1, false)

	groupW := plotW / float64(ncat)
	barW := groupW * 0.8 / float64(len(c.Series))
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		for i, y := range s.Y {
			if i >= ncat || math.IsNaN(y) {
				continue
			}
			x := marginLeft + float64(i)*groupW + groupW*0.1 + float64(si)*barW
			top := py(y)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s: %.4g</title></rect>`,
				x, top, barW, marginTop+plotH-top, color, s.Label, y)
			b.WriteByte('\n')
		}
	}
	for i, cat := range c.Categories {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11">%s</text>`,
			marginLeft+(float64(i)+0.5)*groupW, h-marginBottom+16, esc(cat))
		b.WriteByte('\n')
	}
	c.legend(&b, w)
	b.WriteString("</svg>\n")
	return b.String()
}

func (c *Chart) header(b *strings.Builder, w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, w, h)
	b.WriteByte('\n')
	fmt.Fprintf(b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`, marginLeft, esc(c.Title))
	b.WriteByte('\n')
}

func (c *Chart) axes(b *strings.Builder, w, h int, x0, x1, y0, y1 float64, numericX bool) {
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	// Frame.
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#999"/>`,
		marginLeft, marginTop, plotW, plotH)
	b.WriteByte('\n')
	// Y ticks + gridlines.
	for _, v := range ticks(y0, y1, 5) {
		y := marginTop + plotH - frac(v, y0, y1)*plotH
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`,
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end" font-size="11">%s</text>`,
			marginLeft-6, y+4, fmtTick(v))
		b.WriteByte('\n')
	}
	if numericX {
		for _, v := range ticks(x0, x1, 6) {
			x := marginLeft + frac(v, x0, x1)*plotW
			fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11">%s</text>`,
				x, h-marginBottom+16, fmtTick(v))
			b.WriteByte('\n')
		}
	}
	// Axis labels.
	fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="12">%s</text>`,
		marginLeft+plotW/2, h-8, esc(c.XLabel))
	fmt.Fprintf(b, `<text x="14" y="%.1f" text-anchor="middle" font-size="12" transform="rotate(-90 14 %.1f)">%s</text>`,
		marginTop+plotH/2, marginTop+plotH/2, esc(c.YLabel))
	b.WriteByte('\n')
}

func (c *Chart) legend(b *strings.Builder, w int) {
	x := marginLeft + 8
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, x, marginTop+4, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`, x+14, marginTop+13, esc(s.Label))
		b.WriteByte('\n')
		x += 14 + 8*len(s.Label) + 16
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
