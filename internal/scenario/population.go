// Scenario population sampling (paper §6.2: "characterize the actual
// population of scenarios, and develop a system, perhaps based on
// Monte-Carlo sampling, to study policies over the entire population").
// The distributions below are loosely modelled on published SETI@home
// host statistics: core counts cluster at small powers of two, a
// minority of hosts have GPUs, most volunteers attach a handful of
// projects, and availability varies from always-on to sporadic.
package scenario

import (
	"fmt"
	"math"

	"bce/internal/stats"
)

// PopulationParams tunes the scenario sampler. The fraction fields are
// pointers because zero is a meaningful setting (a CPU-only or
// always-available population): nil means "use the default", while
// Frac(0) pins the fraction to exactly zero. The zero value
// PopulationParams{} keeps its historical meaning — every field at its
// default.
type PopulationParams struct {
	MaxProjects  int      `json:"max_projects,omitempty"`  // cap on attached projects (default 20)
	GPUFraction  *float64 `json:"gpu_fraction,omitempty"`  // fraction of hosts with a GPU (default 0.3)
	SporadicFrac *float64 `json:"sporadic_frac,omitempty"` // fraction of hosts with on/off availability (default 0.6)
	DurationDays float64  `json:"duration_days,omitempty"` // emulation length (default 10)
}

// Frac wraps a fraction for PopulationParams, distinguishing an
// explicit value (including 0) from an unset field.
func Frac(v float64) *float64 { return &v }

// resolved is PopulationParams with every default applied — the form
// the sampler consumes.
type resolved struct {
	maxProjects  int
	gpuFraction  float64
	sporadicFrac float64
	durationDays float64
}

func (p PopulationParams) withDefaults() resolved {
	r := resolved{maxProjects: p.MaxProjects, durationDays: p.DurationDays,
		gpuFraction: 0.3, sporadicFrac: 0.6}
	if r.maxProjects <= 0 {
		r.maxProjects = 20
	}
	if p.GPUFraction != nil {
		r.gpuFraction = clampFrac(*p.GPUFraction)
	}
	if p.SporadicFrac != nil {
		r.sporadicFrac = clampFrac(*p.SporadicFrac)
	}
	if r.durationDays <= 0 {
		r.durationDays = 10
	}
	return r
}

func clampFrac(v float64) float64 {
	switch {
	case math.IsNaN(v), v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// Sample draws one random scenario from the population model.
func Sample(rng *stats.RNG, params PopulationParams) *Scenario {
	p := params.withDefaults()
	s := &Scenario{
		Name:         fmt.Sprintf("sampled-%06d", rng.Intn(1_000_000)),
		DurationDays: p.durationDays,
		Seed:         int64(rng.Intn(1 << 30)),
	}

	// Hardware: 1..16 cores biased toward 2-8; per-core speed 1-8 GFLOPS.
	cores := []int{1, 2, 2, 4, 4, 4, 8, 8, 16}
	s.Host.NCPU = cores[rng.Intn(len(cores))]
	s.Host.CPUGFlops = rng.Uniform(1, 8)
	s.Host.MemGB = []float64{2, 4, 8, 8, 16, 32}[rng.Intn(6)]
	if rng.Float64() < p.gpuFraction {
		s.Host.NGPU = 1
		if rng.Float64() < 0.15 {
			s.Host.NGPU = 2
		}
		s.Host.GPUGFlops = rng.Uniform(50, 1000)
		if rng.Float64() < 0.3 {
			s.Host.GPUKind = "ati"
		}
	}

	// Preferences: queue sizes from hours to days.
	s.Host.MinQueueHours = rng.Uniform(0.5, 24)
	s.Host.MaxQueueHours = s.Host.MinQueueHours + rng.Uniform(1, 48)
	s.Host.LeaveInMemory = rng.Float64() < 0.5

	// Availability: a majority of hosts cycle on/off.
	if rng.Float64() < p.sporadicFrac {
		s.Host.Avail = AvailJSON{
			MeanOnHours:  rng.Uniform(2, 30),
			MeanOffHours: rng.Uniform(1, 16),
		}
	}

	// Projects: 1..MaxProjects with a strong bias toward few.
	nproj := 1 + int(math.Floor(rng.Exp(2)))
	if nproj > p.maxProjects {
		nproj = p.maxProjects
	}
	for i := 0; i < nproj; i++ {
		s.Projects = append(s.Projects, sampleProject(rng, i, s.Host.NGPU > 0, s.Host.GPUKind))
	}
	return s
}

func sampleProject(rng *stats.RNG, idx int, hostHasGPU bool, gpuKind string) ProjectJSON {
	p := ProjectJSON{
		Name:  fmt.Sprintf("proj%02d", idx),
		Share: []float64{25, 50, 100, 100, 100, 200, 400}[rng.Intn(7)],
	}
	// Job length from minutes to ~a week, lognormal-ish.
	mean := math.Exp(rng.Uniform(math.Log(300), math.Log(600000)))
	slackFactor := rng.Uniform(1.5, 30)
	app := AppJSON{
		Name:        "app",
		NCPUs:       1,
		MemMB:       rng.Uniform(50, 1500),
		MeanSecs:    mean,
		StdevSecs:   mean * rng.Uniform(0, 0.3),
		LatencySecs: mean * slackFactor,
	}
	kind := rng.Float64()
	switch {
	case hostHasGPU && kind < 0.25: // GPU-only project
		app.NCPUs = rng.Uniform(0.05, 0.5)
		app.NGPUs = 1
		app.GPUKind = gpuKind
		p.Apps = []AppJSON{app}
	case hostHasGPU && kind < 0.45: // both CPU and GPU apps
		gpu := app
		gpu.Name = "app_gpu"
		gpu.NCPUs = rng.Uniform(0.05, 0.5)
		gpu.NGPUs = 1
		gpu.GPUKind = gpuKind
		gpu.MeanSecs = mean * rng.Uniform(0.05, 0.3)
		gpu.LatencySecs = gpu.MeanSecs * slackFactor
		p.Apps = []AppJSON{app, gpu}
	default:
		p.Apps = []AppJSON{app}
	}
	// Some projects are flaky or sporadically dry.
	if rng.Float64() < 0.2 {
		p.Downtime = AvailJSON{MeanOnHours: rng.Uniform(24, 24*14), MeanOffHours: rng.Uniform(1, 24)}
	}
	if rng.Float64() < 0.2 {
		p.WorkGaps = AvailJSON{MeanOnHours: rng.Uniform(12, 24*7), MeanOffHours: rng.Uniform(1, 48)}
	}
	return p
}
