// Scenario population sampling (paper §6.2: "characterize the actual
// population of scenarios, and develop a system, perhaps based on
// Monte-Carlo sampling, to study policies over the entire population").
// The distributions below are loosely modelled on published SETI@home
// host statistics: core counts cluster at small powers of two, a
// minority of hosts have GPUs, most volunteers attach a handful of
// projects, and availability varies from always-on to sporadic.
package scenario

import (
	"fmt"
	"math"

	"bce/internal/stats"
)

// PopulationParams tunes the scenario sampler.
type PopulationParams struct {
	MaxProjects  int     // cap on attached projects (default 20)
	GPUFraction  float64 // fraction of hosts with a GPU (default 0.3)
	SporadicFrac float64 // fraction of hosts with on/off availability (default 0.6)
	DurationDays float64 // emulation length (default 10)
}

func (p PopulationParams) withDefaults() PopulationParams {
	if p.MaxProjects <= 0 {
		p.MaxProjects = 20
	}
	if p.GPUFraction <= 0 {
		p.GPUFraction = 0.3
	}
	if p.SporadicFrac <= 0 {
		p.SporadicFrac = 0.6
	}
	if p.DurationDays <= 0 {
		p.DurationDays = 10
	}
	return p
}

// Sample draws one random scenario from the population model.
func Sample(rng *stats.RNG, params PopulationParams) *Scenario {
	params = params.withDefaults()
	s := &Scenario{
		Name:         fmt.Sprintf("sampled-%06d", rng.Intn(1_000_000)),
		DurationDays: params.DurationDays,
		Seed:         int64(rng.Intn(1 << 30)),
	}

	// Hardware: 1..16 cores biased toward 2-8; per-core speed 1-8 GFLOPS.
	cores := []int{1, 2, 2, 4, 4, 4, 8, 8, 16}
	s.Host.NCPU = cores[rng.Intn(len(cores))]
	s.Host.CPUGFlops = rng.Uniform(1, 8)
	s.Host.MemGB = []float64{2, 4, 8, 8, 16, 32}[rng.Intn(6)]
	if rng.Float64() < params.GPUFraction {
		s.Host.NGPU = 1
		if rng.Float64() < 0.15 {
			s.Host.NGPU = 2
		}
		s.Host.GPUGFlops = rng.Uniform(50, 1000)
		if rng.Float64() < 0.3 {
			s.Host.GPUKind = "ati"
		}
	}

	// Preferences: queue sizes from hours to days.
	s.Host.MinQueueHours = rng.Uniform(0.5, 24)
	s.Host.MaxQueueHours = s.Host.MinQueueHours + rng.Uniform(1, 48)
	s.Host.LeaveInMemory = rng.Float64() < 0.5

	// Availability: a majority of hosts cycle on/off.
	if rng.Float64() < params.SporadicFrac {
		s.Host.Avail = AvailJSON{
			MeanOnHours:  rng.Uniform(2, 30),
			MeanOffHours: rng.Uniform(1, 16),
		}
	}

	// Projects: 1..MaxProjects with a strong bias toward few.
	nproj := 1 + int(math.Floor(rng.Exp(2)))
	if nproj > params.MaxProjects {
		nproj = params.MaxProjects
	}
	for i := 0; i < nproj; i++ {
		s.Projects = append(s.Projects, sampleProject(rng, i, s.Host.NGPU > 0, s.Host.GPUKind))
	}
	return s
}

func sampleProject(rng *stats.RNG, idx int, hostHasGPU bool, gpuKind string) ProjectJSON {
	p := ProjectJSON{
		Name:  fmt.Sprintf("proj%02d", idx),
		Share: []float64{25, 50, 100, 100, 100, 200, 400}[rng.Intn(7)],
	}
	// Job length from minutes to ~a week, lognormal-ish.
	mean := math.Exp(rng.Uniform(math.Log(300), math.Log(600000)))
	slackFactor := rng.Uniform(1.5, 30)
	app := AppJSON{
		Name:        "app",
		NCPUs:       1,
		MemMB:       rng.Uniform(50, 1500),
		MeanSecs:    mean,
		StdevSecs:   mean * rng.Uniform(0, 0.3),
		LatencySecs: mean * slackFactor,
	}
	kind := rng.Float64()
	switch {
	case hostHasGPU && kind < 0.25: // GPU-only project
		app.NCPUs = rng.Uniform(0.05, 0.5)
		app.NGPUs = 1
		app.GPUKind = gpuKind
		p.Apps = []AppJSON{app}
	case hostHasGPU && kind < 0.45: // both CPU and GPU apps
		gpu := app
		gpu.Name = "app_gpu"
		gpu.NCPUs = rng.Uniform(0.05, 0.5)
		gpu.NGPUs = 1
		gpu.GPUKind = gpuKind
		gpu.MeanSecs = mean * rng.Uniform(0.05, 0.3)
		gpu.LatencySecs = gpu.MeanSecs * slackFactor
		p.Apps = []AppJSON{app, gpu}
	default:
		p.Apps = []AppJSON{app}
	}
	// Some projects are flaky or sporadically dry.
	if rng.Float64() < 0.2 {
		p.Downtime = AvailJSON{MeanOnHours: rng.Uniform(24, 24*14), MeanOffHours: rng.Uniform(1, 24)}
	}
	if rng.Float64() < 0.2 {
		p.WorkGaps = AvailJSON{MeanOnHours: rng.Uniform(12, 24*7), MeanOffHours: rng.Uniform(1, 48)}
	}
	return p
}
