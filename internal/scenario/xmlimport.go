// client_state.xml import: the paper's web interface lets alpha testers
// paste their BOINC client state files to reproduce scheduling problems
// under the emulator. This file parses the subset of that format needed
// to reconstruct a scenario: host hardware, coprocessors, attached
// projects with resource shares, application versions (device usage),
// and in-progress results (whose estimates and deadlines parameterise
// each project's job stream).
package scenario

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

type xmlClientState struct {
	XMLName  xml.Name        `xml:"client_state"`
	HostInfo xmlHostInfo     `xml:"host_info"`
	Projects []xmlProject    `xml:"project"`
	Apps     []xmlAppVersion `xml:"app_version"`
	Workunit []xmlWorkunit   `xml:"workunit"`
	Results  []xmlResult     `xml:"result"`
	Prefs    xmlGlobalPrefs  `xml:"global_preferences"`
	TimeNow  float64         `xml:"time_stats>now"` // optional
}

type xmlHostInfo struct {
	NCPUs   int       `xml:"p_ncpus"`
	FPOps   float64   `xml:"p_fpops"`
	MemSize float64   `xml:"m_nbytes"`
	Coprocs xmlCoproc `xml:"coprocs"`
}

type xmlCoproc struct {
	Cuda xmlGPU `xml:"coproc_cuda"`
	Ati  xmlGPU `xml:"coproc_ati"`
}

type xmlGPU struct {
	Count     int     `xml:"count"`
	PeakFlops float64 `xml:"peak_flops"`
}

type xmlProject struct {
	MasterURL     string  `xml:"master_url"`
	ProjectName   string  `xml:"project_name"`
	ResourceShare float64 `xml:"resource_share"`
}

type xmlAppVersion struct {
	AppName  string      `xml:"app_name"`
	AvgNCPUs float64     `xml:"avg_ncpus"`
	Flops    float64     `xml:"flops"`
	Coproc   xmlAVCoproc `xml:"coproc"`
}

type xmlAVCoproc struct {
	Type  string  `xml:"type"`
	Count float64 `xml:"count"`
}

type xmlWorkunit struct {
	Name     string  `xml:"name"`
	AppName  string  `xml:"app_name"`
	FPOpsEst float64 `xml:"rsc_fpops_est"`
}

type xmlResult struct {
	Name           string  `xml:"name"`
	WUName         string  `xml:"wu_name"`
	ProjectURL     string  `xml:"project_url"`
	ReceivedTime   float64 `xml:"received_time"`
	ReportDeadline float64 `xml:"report_deadline"`
}

type xmlGlobalPrefs struct {
	WorkBufMinDays        float64 `xml:"work_buf_min_days"`
	WorkBufAdditionalDays float64 `xml:"work_buf_additional_days"`
	LeaveAppsInMemory     int     `xml:"leave_apps_in_memory"`
	MaxMemPct             float64 `xml:"ram_max_used_busy_pct"`
}

// ImportClientState parses a BOINC client_state.xml (subset) into a
// Scenario. The import is best-effort: job streams are reconstructed
// from the in-progress results' estimates and deadlines, since the
// state file is a snapshot, not a generator.
func ImportClientState(r io.Reader) (*Scenario, error) {
	var cs xmlClientState
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&cs); err != nil {
		return nil, fmt.Errorf("client_state: %w", err)
	}
	if cs.HostInfo.NCPUs <= 0 || cs.HostInfo.FPOps <= 0 {
		return nil, fmt.Errorf("client_state: missing or invalid <host_info>")
	}
	if len(cs.Projects) == 0 {
		return nil, fmt.Errorf("client_state: no <project> entries")
	}

	s := &Scenario{
		Name: "imported",
		Host: HostJSON{
			NCPU:      cs.HostInfo.NCPUs,
			CPUGFlops: cs.HostInfo.FPOps / 1e9,
			MemGB:     cs.HostInfo.MemSize / 1e9,
		},
	}
	if cs.HostInfo.Coprocs.Cuda.Count > 0 {
		s.Host.NGPU = cs.HostInfo.Coprocs.Cuda.Count
		s.Host.GPUGFlops = cs.HostInfo.Coprocs.Cuda.PeakFlops / float64(cs.HostInfo.Coprocs.Cuda.Count) / 1e9
		s.Host.GPUKind = "nvidia"
	} else if cs.HostInfo.Coprocs.Ati.Count > 0 {
		s.Host.NGPU = cs.HostInfo.Coprocs.Ati.Count
		s.Host.GPUGFlops = cs.HostInfo.Coprocs.Ati.PeakFlops / float64(cs.HostInfo.Coprocs.Ati.Count) / 1e9
		s.Host.GPUKind = "ati"
	}
	if cs.Prefs.WorkBufMinDays > 0 {
		s.Host.MinQueueHours = cs.Prefs.WorkBufMinDays * 24
		s.Host.MaxQueueHours = (cs.Prefs.WorkBufMinDays + cs.Prefs.WorkBufAdditionalDays) * 24
	}
	s.Host.LeaveInMemory = cs.Prefs.LeaveAppsInMemory != 0

	// Index workunits and app versions by name.
	wus := make(map[string]xmlWorkunit, len(cs.Workunit))
	for _, w := range cs.Workunit {
		wus[w.Name] = w
	}
	apps := make(map[string]xmlAppVersion, len(cs.Apps))
	for _, a := range cs.Apps {
		apps[a.AppName] = a
	}

	// Group results by project URL to recover per-project job streams.
	type appStats struct {
		name      string
		durations []float64
		latencies []float64
		av        xmlAppVersion
		hasAV     bool
	}
	byProject := make(map[string]map[string]*appStats)
	for _, res := range cs.Results {
		wu, ok := wus[res.WUName]
		if !ok {
			continue
		}
		av, hasAV := apps[wu.AppName]
		flops := av.Flops
		if flops <= 0 {
			flops = cs.HostInfo.FPOps
		}
		dur := wu.FPOpsEst / flops
		if dur <= 0 {
			continue
		}
		lat := res.ReportDeadline - res.ReceivedTime
		if lat <= 0 {
			lat = dur * 10
		}
		pm := byProject[res.ProjectURL]
		if pm == nil {
			pm = make(map[string]*appStats)
			byProject[res.ProjectURL] = pm
		}
		st := pm[wu.AppName]
		if st == nil {
			st = &appStats{name: wu.AppName, av: av, hasAV: hasAV}
			pm[wu.AppName] = st
		}
		st.durations = append(st.durations, dur)
		st.latencies = append(st.latencies, lat)
	}

	for _, p := range cs.Projects {
		pj := ProjectJSON{
			Name:  projectLabel(p),
			Share: p.ResourceShare,
		}
		if pj.Share <= 0 {
			pj.Share = 100
		}
		pm := byProject[p.MasterURL]
		// Deterministic app order.
		var names []string
		for n := range pm {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			st := pm[n]
			app := AppJSON{
				Name:        n,
				NCPUs:       1,
				MeanSecs:    median(st.durations),
				LatencySecs: median(st.latencies),
			}
			if st.hasAV {
				if st.av.AvgNCPUs > 0 {
					app.NCPUs = st.av.AvgNCPUs
				}
				if st.av.Coproc.Count > 0 {
					app.NGPUs = st.av.Coproc.Count
					switch strings.ToUpper(st.av.Coproc.Type) {
					case "ATI", "CAL", "AMD":
						app.GPUKind = "ati"
					default:
						app.GPUKind = "nvidia"
					}
				}
			}
			pj.Apps = append(pj.Apps, app)
		}
		if len(pj.Apps) == 0 {
			// Project with no in-progress results: synthesise a generic
			// CPU app so it still participates in scheduling.
			pj.Apps = append(pj.Apps, AppJSON{
				Name: "generic", NCPUs: 1, MeanSecs: 3600, LatencySecs: 86400,
			})
		}
		s.Projects = append(s.Projects, pj)
	}
	if _, err := s.Config(); err != nil {
		return nil, fmt.Errorf("client_state: imported scenario invalid: %w", err)
	}
	return s, nil
}

func projectLabel(p xmlProject) string {
	if p.ProjectName != "" {
		return p.ProjectName
	}
	return p.MasterURL
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
