// client_state.xml import: the paper's web interface lets alpha testers
// paste their BOINC client state files to reproduce scheduling problems
// under the emulator. This file parses the subset of that format needed
// to reconstruct a scenario: host hardware, coprocessors, attached
// projects with resource shares, application versions (device usage),
// and in-progress results (whose estimates and deadlines parameterise
// each project's job stream).
package scenario

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// finitePos reports whether x is a finite positive number. State files
// are untrusted input; NaN/Inf would sail through the `<= 0` style
// validation checks downstream and poison every figure of merit.
func finitePos(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x > 0
}

type xmlClientState struct {
	XMLName  xml.Name        `xml:"client_state"`
	HostInfo xmlHostInfo     `xml:"host_info"`
	Projects []xmlProject    `xml:"project"`
	Apps     []xmlAppVersion `xml:"app_version"`
	Workunit []xmlWorkunit   `xml:"workunit"`
	Results  []xmlResult     `xml:"result"`
	Prefs    xmlGlobalPrefs  `xml:"global_preferences"`
	TimeNow  float64         `xml:"time_stats>now"` // optional
}

type xmlHostInfo struct {
	NCPUs   int       `xml:"p_ncpus"`
	FPOps   float64   `xml:"p_fpops"`
	MemSize float64   `xml:"m_nbytes"`
	Coprocs xmlCoproc `xml:"coprocs"`
}

type xmlCoproc struct {
	Cuda xmlGPU `xml:"coproc_cuda"`
	Ati  xmlGPU `xml:"coproc_ati"`
}

type xmlGPU struct {
	Count     int     `xml:"count"`
	PeakFlops float64 `xml:"peak_flops"`
}

type xmlProject struct {
	MasterURL     string  `xml:"master_url"`
	ProjectName   string  `xml:"project_name"`
	ResourceShare float64 `xml:"resource_share"`
}

type xmlAppVersion struct {
	AppName  string      `xml:"app_name"`
	AvgNCPUs float64     `xml:"avg_ncpus"`
	Flops    float64     `xml:"flops"`
	Coproc   xmlAVCoproc `xml:"coproc"`
}

type xmlAVCoproc struct {
	Type  string  `xml:"type"`
	Count float64 `xml:"count"`
}

type xmlWorkunit struct {
	Name     string  `xml:"name"`
	AppName  string  `xml:"app_name"`
	FPOpsEst float64 `xml:"rsc_fpops_est"`
}

type xmlResult struct {
	Name           string  `xml:"name"`
	WUName         string  `xml:"wu_name"`
	ProjectURL     string  `xml:"project_url"`
	ReceivedTime   float64 `xml:"received_time"`
	ReportDeadline float64 `xml:"report_deadline"`
}

type xmlGlobalPrefs struct {
	WorkBufMinDays        float64 `xml:"work_buf_min_days"`
	WorkBufAdditionalDays float64 `xml:"work_buf_additional_days"`
	LeaveAppsInMemory     int     `xml:"leave_apps_in_memory"`
	MaxMemPct             float64 `xml:"ram_max_used_busy_pct"`
}

// ImportClientState parses a BOINC client_state.xml (subset) into a
// Scenario. The import is best-effort: job streams are reconstructed
// from the in-progress results' estimates and deadlines, since the
// state file is a snapshot, not a generator.
func ImportClientState(r io.Reader) (*Scenario, error) {
	var cs xmlClientState
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&cs); err != nil {
		return nil, fmt.Errorf("client_state: %w", err)
	}
	if cs.HostInfo.NCPUs <= 0 || !finitePos(cs.HostInfo.FPOps) {
		return nil, fmt.Errorf("client_state: missing or invalid <host_info>")
	}
	if m := cs.HostInfo.MemSize; m != 0 && !finitePos(m) {
		return nil, fmt.Errorf("client_state: invalid <m_nbytes> %v", m)
	}
	if len(cs.Projects) == 0 {
		return nil, fmt.Errorf("client_state: no <project> entries")
	}

	s := &Scenario{
		Name: "imported",
		Host: HostJSON{
			NCPU:      cs.HostInfo.NCPUs,
			CPUGFlops: cs.HostInfo.FPOps / 1e9,
			MemGB:     cs.HostInfo.MemSize / 1e9,
		},
	}
	// A coprocessor with a nonsensical peak speed is dropped rather
	// than rejected: the import is best-effort and the host still works
	// as a CPU-only machine.
	if gpu := cs.HostInfo.Coprocs.Cuda; gpu.Count > 0 && finitePos(gpu.PeakFlops) {
		s.Host.NGPU = gpu.Count
		s.Host.GPUGFlops = gpu.PeakFlops / float64(gpu.Count) / 1e9
		s.Host.GPUKind = "nvidia"
	} else if gpu := cs.HostInfo.Coprocs.Ati; gpu.Count > 0 && finitePos(gpu.PeakFlops) {
		s.Host.NGPU = gpu.Count
		s.Host.GPUGFlops = gpu.PeakFlops / float64(gpu.Count) / 1e9
		s.Host.GPUKind = "ati"
	}
	if finitePos(cs.Prefs.WorkBufMinDays) {
		extra := cs.Prefs.WorkBufAdditionalDays
		if !finitePos(extra) {
			extra = 0
		}
		lo := cs.Prefs.WorkBufMinDays * 24
		hi := (cs.Prefs.WorkBufMinDays + extra) * 24
		// Guard the products, not just the inputs: a finite day count
		// near MaxFloat64 still overflows to +Inf when scaled.
		if finitePos(lo) && finitePos(hi) {
			s.Host.MinQueueHours = lo
			s.Host.MaxQueueHours = hi
		}
	}
	s.Host.LeaveInMemory = cs.Prefs.LeaveAppsInMemory != 0

	// Index workunits and app versions by name.
	wus := make(map[string]xmlWorkunit, len(cs.Workunit))
	for _, w := range cs.Workunit {
		wus[w.Name] = w
	}
	apps := make(map[string]xmlAppVersion, len(cs.Apps))
	for _, a := range cs.Apps {
		apps[a.AppName] = a
	}

	// Group results by project URL to recover per-project job streams.
	type appStats struct {
		name      string
		durations []float64
		latencies []float64
		av        xmlAppVersion
		hasAV     bool
	}
	byProject := make(map[string]map[string]*appStats)
	for _, res := range cs.Results {
		wu, ok := wus[res.WUName]
		if !ok {
			continue
		}
		av, hasAV := apps[wu.AppName]
		flops := av.Flops
		if !finitePos(flops) {
			flops = cs.HostInfo.FPOps
		}
		dur := wu.FPOpsEst / flops
		if !finitePos(dur) {
			continue
		}
		lat := res.ReportDeadline - res.ReceivedTime
		if !finitePos(lat) {
			lat = dur * 10
		}
		pm := byProject[res.ProjectURL]
		if pm == nil {
			pm = make(map[string]*appStats)
			byProject[res.ProjectURL] = pm
		}
		st := pm[wu.AppName]
		if st == nil {
			st = &appStats{name: wu.AppName, av: av, hasAV: hasAV}
			pm[wu.AppName] = st
		}
		st.durations = append(st.durations, dur)
		st.latencies = append(st.latencies, lat)
	}

	for _, p := range cs.Projects {
		pj := ProjectJSON{
			Name:  projectLabel(p),
			Share: p.ResourceShare,
		}
		if !finitePos(pj.Share) {
			pj.Share = 100
		}
		pm := byProject[p.MasterURL]
		// Deterministic app order.
		var names []string
		for n := range pm {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			st := pm[n]
			app := AppJSON{
				Name:        n,
				NCPUs:       1,
				MeanSecs:    median(st.durations),
				LatencySecs: median(st.latencies),
			}
			if st.hasAV {
				if finitePos(st.av.AvgNCPUs) {
					app.NCPUs = st.av.AvgNCPUs
				}
				if finitePos(st.av.Coproc.Count) {
					app.NGPUs = st.av.Coproc.Count
					switch strings.ToUpper(st.av.Coproc.Type) {
					case "ATI", "CAL", "AMD":
						app.GPUKind = "ati"
					default:
						app.GPUKind = "nvidia"
					}
				}
			}
			pj.Apps = append(pj.Apps, app)
		}
		if len(pj.Apps) == 0 {
			// Project with no in-progress results: synthesise a generic
			// CPU app so it still participates in scheduling.
			pj.Apps = append(pj.Apps, AppJSON{
				Name: "generic", NCPUs: 1, MeanSecs: 3600, LatencySecs: 86400,
			})
		}
		s.Projects = append(s.Projects, pj)
	}
	if _, err := s.Config(); err != nil {
		return nil, fmt.Errorf("client_state: imported scenario invalid: %w", err)
	}
	return s, nil
}

func projectLabel(p xmlProject) string {
	if p.ProjectName != "" {
		return p.ProjectName
	}
	return p.MasterURL
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
