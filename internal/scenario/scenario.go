// Package scenario defines the serializable usage-scenario format the
// emulator consumes (paper §4.1: hardware, availability, attached
// projects with shares and job properties, and policy selections), plus
// an importer for a subset of BOINC's client_state.xml — the format
// volunteers upload through the web interface (§4.3).
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bce/internal/client"
	"bce/internal/fetch"
	"bce/internal/host"
	"bce/internal/project"
	"bce/internal/sched"
	"bce/internal/transfer"
)

// Policies selects the policy variants for a run.
type Policies struct {
	JobSched    string  `json:"job_sched"`     // "JS-LOCAL", "JS-GLOBAL", "JS-WRR", "JS-LLF"
	JobFetch    string  `json:"job_fetch"`     // "JF-ORIG", "JF-HYSTERESIS"
	RECHalfLife float64 `json:"rec_half_life"` // seconds; 0 = BOINC default
	Transfers   string  `json:"transfers"`     // "fifo", "smallest-first", "edf"
}

// ParseJobSched converts a policy name to its enum.
func ParseJobSched(s string) (sched.Policy, error) {
	switch s {
	case "", "JS-LOCAL", "js-local", "local":
		return sched.JSLocal, nil
	case "JS-GLOBAL", "js-global", "global":
		return sched.JSGlobal, nil
	case "JS-WRR", "js-wrr", "wrr":
		return sched.JSWRR, nil
	case "JS-LLF", "js-llf", "llf":
		return sched.JSLLF, nil
	}
	return 0, fmt.Errorf("scenario: unknown job scheduling policy %q", s)
}

// ParseJobFetch converts a fetch policy name to its enum.
func ParseJobFetch(s string) (fetch.PolicyKind, error) {
	switch s {
	case "", "JF-HYSTERESIS", "jf-hysteresis", "hysteresis":
		return fetch.JFHysteresis, nil
	case "JF-ORIG", "jf-orig", "orig":
		return fetch.JFOrig, nil
	case "JF-SPREAD", "jf-spread", "spread":
		return fetch.JFSpread, nil
	}
	return 0, fmt.Errorf("scenario: unknown job fetch policy %q", s)
}

// AvailJSON is an availability channel in hours.
type AvailJSON struct {
	MeanOnHours  float64 `json:"mean_on_hours"`
	MeanOffHours float64 `json:"mean_off_hours"` // 0 = always on
}

func (a AvailJSON) spec() host.AvailSpec {
	return host.AvailSpec{MeanOn: a.MeanOnHours * 3600, MeanOff: a.MeanOffHours * 3600}
}

// HostJSON describes the host hardware and preferences.
type HostJSON struct {
	NCPU      int     `json:"ncpu"`
	CPUGFlops float64 `json:"cpu_gflops"`
	NGPU      int     `json:"ngpu,omitempty"`
	GPUGFlops float64 `json:"gpu_gflops,omitempty"`
	GPUKind   string  `json:"gpu_kind,omitempty"` // "nvidia" (default) or "ati"
	MemGB     float64 `json:"mem_gb,omitempty"`   // default 8
	VRAMGB    float64 `json:"vram_gb,omitempty"`  // default 4

	MinQueueHours float64 `json:"min_queue_hours,omitempty"`
	MaxQueueHours float64 `json:"max_queue_hours,omitempty"`
	LeaveInMemory bool    `json:"leave_in_memory,omitempty"`

	// DownMbps/UpMbps are network link speeds in megabits/s; 0 means
	// instantaneous transfers (the paper's baseline).
	DownMbps float64 `json:"down_mbps,omitempty"`
	UpMbps   float64 `json:"up_mbps,omitempty"`

	Avail    AvailJSON `json:"availability,omitempty"`
	GPUAvail AvailJSON `json:"gpu_availability,omitempty"`
	NetAvail AvailJSON `json:"net_availability,omitempty"`

	// AvailTrace, when non-empty, replays a recorded computing-
	// availability trace (looping) instead of the random process.
	AvailTrace []TracePeriodJSON `json:"availability_trace,omitempty"`

	// ComputeHours restricts computing to a daily time-of-day window
	// [start, end) in hours (paper §2.2's time-of-day preference);
	// windows may cross midnight. Ignored when AvailTrace is set.
	ComputeHours [2]float64 `json:"compute_hours,omitempty"`
}

// TracePeriodJSON is one segment of an availability trace.
type TracePeriodJSON struct {
	Hours float64 `json:"hours"`
	On    bool    `json:"on"`
}

// AppJSON describes one application's jobs.
type AppJSON struct {
	Name        string  `json:"name"`
	NCPUs       float64 `json:"ncpus"`
	GPUKind     string  `json:"gpu_kind,omitempty"`
	NGPUs       float64 `json:"ngpus,omitempty"`
	MemMB       float64 `json:"mem_mb,omitempty"`
	MeanSecs    float64 `json:"mean_secs"`
	StdevSecs   float64 `json:"stdev_secs,omitempty"`
	LatencySecs float64 `json:"latency_secs"`
	InputMB     float64 `json:"input_mb,omitempty"`
	OutputMB    float64 `json:"output_mb,omitempty"`
	CheckpointS float64 `json:"checkpoint_secs,omitempty"` // default 60; -1 = never
	EstErrBias  float64 `json:"est_err_bias,omitempty"`
	EstErrSigma float64 `json:"est_err_sigma,omitempty"`
	Weight      float64 `json:"weight,omitempty"`
}

// ProjectJSON describes one attached project.
type ProjectJSON struct {
	Name     string    `json:"name"`
	Share    float64   `json:"share"`
	Apps     []AppJSON `json:"apps"`
	Downtime AvailJSON `json:"downtime,omitempty"`  // mean up/down in hours
	WorkGaps AvailJSON `json:"work_gaps,omitempty"` // mean has-work/dry in hours
	Check    string    `json:"deadline_check,omitempty"`
}

// Scenario is a complete emulator input.
type Scenario struct {
	Name         string        `json:"name"`
	DurationDays float64       `json:"duration_days"`
	Seed         int64         `json:"seed"`
	Host         HostJSON      `json:"host"`
	Projects     []ProjectJSON `json:"projects"`
	Policies     Policies      `json:"policies"`
}

func gpuType(kind string) (host.ProcType, error) {
	switch kind {
	case "", "nvidia", "NVIDIA", "cuda", "CUDA":
		return host.NvidiaGPU, nil
	case "ati", "ATI", "amd", "AMD", "CAL":
		return host.AtiGPU, nil
	}
	return 0, fmt.Errorf("scenario: unknown GPU kind %q", kind)
}

// BuildHost converts the host description.
func (h HostJSON) BuildHost() (*host.Host, error) {
	hw := host.Hardware{
		MemBytes:  orDefault(h.MemGB, 8) * 1e9,
		VRAMBytes: orDefault(h.VRAMGB, 4) * 1e9,
	}
	hw.DownloadBps = h.DownMbps * 1e6 / 8
	hw.UploadBps = h.UpMbps * 1e6 / 8
	hw.Proc[host.CPU] = host.Resource{Count: h.NCPU, FLOPSPerInst: h.CPUGFlops * 1e9}
	if h.NGPU > 0 {
		gt, err := gpuType(h.GPUKind)
		if err != nil {
			return nil, err
		}
		hw.Proc[gt] = host.Resource{Count: h.NGPU, FLOPSPerInst: h.GPUGFlops * 1e9}
	}
	prefs := host.Preferences{
		MinQueue:      h.MinQueueHours * 3600,
		MaxQueue:      h.MaxQueueHours * 3600,
		LeaveInMemory: h.LeaveInMemory,
	}
	var avail host.Availability
	avail.Spec[host.Compute] = h.Avail.spec()
	avail.Spec[host.GPUCompute] = h.GPUAvail.spec()
	avail.Spec[host.Network] = h.NetAvail.spec()
	for _, p := range h.AvailTrace {
		avail.Trace[host.Compute] = append(avail.Trace[host.Compute],
			host.Period{Duration: p.Hours * 3600, On: p.On})
	}
	if len(avail.Trace[host.Compute]) == 0 && h.ComputeHours[0] != h.ComputeHours[1] {
		avail.Trace[host.Compute] = host.DailyWindowTrace(h.ComputeHours[0], h.ComputeHours[1])
	}
	return host.New(hw, prefs, avail)
}

func orDefault(v, d float64) float64 {
	if v <= 0 {
		return d
	}
	return v
}

// buildApps converts the applications of one project.
func buildApps(apps []AppJSON) ([]project.AppSpec, error) {
	var out []project.AppSpec
	for _, a := range apps {
		cp := a.CheckpointS
		if cp == 0 {
			cp = 60
		} else if cp < 0 {
			cp = 0 // "never checkpoints"
		}
		spec := project.AppSpec{
			Name:             a.Name,
			MeanDuration:     a.MeanSecs,
			StdevDuration:    a.StdevSecs,
			LatencyBound:     a.LatencySecs,
			CheckpointPeriod: cp,
			EstErrBias:       a.EstErrBias,
			EstErrSigma:      a.EstErrSigma,
			InputBytes:       a.InputMB * 1e6,
			OutputBytes:      a.OutputMB * 1e6,
			Weight:           a.Weight,
		}
		spec.Usage.AvgCPUs = a.NCPUs
		spec.Usage.MemBytes = a.MemMB * 1e6
		if a.NGPUs > 0 {
			gt, err := gpuType(a.GPUKind)
			if err != nil {
				return nil, err
			}
			spec.Usage.GPUType = gt
			spec.Usage.GPUUsage = a.NGPUs
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseCheck(s string) (project.DeadlineCheck, error) {
	switch s {
	case "", "none":
		return project.NoCheck, nil
	case "simple":
		return project.SimpleCheck, nil
	case "availability", "avail":
		return project.AvailCheck, nil
	}
	return 0, fmt.Errorf("scenario: unknown deadline check %q", s)
}

// BuildProjects converts the project descriptions.
func (s *Scenario) BuildProjects() ([]project.Spec, error) {
	var out []project.Spec
	for _, p := range s.Projects {
		apps, err := buildApps(p.Apps)
		if err != nil {
			return nil, err
		}
		check, err := parseCheck(p.Check)
		if err != nil {
			return nil, err
		}
		out = append(out, project.Spec{
			Name:     p.Name,
			Share:    p.Share,
			Apps:     apps,
			Downtime: host.AvailSpec{MeanOn: p.Downtime.MeanOnHours * 3600, MeanOff: p.Downtime.MeanOffHours * 3600},
			WorkGaps: host.AvailSpec{MeanOn: p.WorkGaps.MeanOnHours * 3600, MeanOff: p.WorkGaps.MeanOffHours * 3600},
			Check:    check,
		})
	}
	return out, nil
}

// Config builds the full emulator configuration.
func (s *Scenario) Config() (client.Config, error) {
	h, err := s.Host.BuildHost()
	if err != nil {
		return client.Config{}, err
	}
	projects, err := s.BuildProjects()
	if err != nil {
		return client.Config{}, err
	}
	js, err := ParseJobSched(s.Policies.JobSched)
	if err != nil {
		return client.Config{}, err
	}
	jf, err := ParseJobFetch(s.Policies.JobFetch)
	if err != nil {
		return client.Config{}, err
	}
	tp, err := transfer.ParsePolicy(s.Policies.Transfers)
	if err != nil {
		return client.Config{}, err
	}
	dur := s.DurationDays
	if dur <= 0 {
		dur = 10 // the paper's default simulation period
	}
	cfg := client.Config{
		Host:           h,
		Projects:       projects,
		JobSched:       js,
		JobFetch:       jf,
		RECHalfLife:    s.Policies.RECHalfLife,
		TransferPolicy: tp,
		Duration:       dur * 86400,
		Seed:           s.Seed,
	}
	if err := cfg.Validate(); err != nil {
		return client.Config{}, err
	}
	return cfg, nil
}

// Load reads a scenario from JSON.
func Load(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if _, err := s.Config(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a scenario from a JSON file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //bce:errok read-side close; Load's decode already reported any read failure
	return Load(f)
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
