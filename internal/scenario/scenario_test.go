package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bce/internal/fetch"
	"bce/internal/host"
	"bce/internal/sched"
	"bce/internal/stats"
)

func sampleScenario() *Scenario {
	return &Scenario{
		Name:         "test",
		DurationDays: 1,
		Seed:         7,
		Host: HostJSON{
			NCPU: 4, CPUGFlops: 2.5,
			NGPU: 1, GPUGFlops: 100,
			MinQueueHours: 1, MaxQueueHours: 4,
		},
		Projects: []ProjectJSON{
			{
				Name: "alpha", Share: 100,
				Apps: []AppJSON{{Name: "a", NCPUs: 1, MeanSecs: 1000, LatencySecs: 10000}},
			},
			{
				Name: "beta", Share: 50,
				Apps: []AppJSON{{Name: "g", NCPUs: 0.2, NGPUs: 1, MeanSecs: 500, LatencySecs: 5000}},
			},
		},
		Policies: Policies{JobSched: "JS-GLOBAL", JobFetch: "JF-ORIG", RECHalfLife: 86400},
	}
}

func TestConfigConversion(t *testing.T) {
	s := sampleScenario()
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.JobSched != sched.JSGlobal || cfg.JobFetch != fetch.JFOrig {
		t.Fatalf("policies wrong: %v %v", cfg.JobSched, cfg.JobFetch)
	}
	if cfg.Duration != 86400 {
		t.Fatalf("duration = %v, want 86400", cfg.Duration)
	}
	if cfg.Host.Hardware.Proc[host.CPU].Count != 4 {
		t.Fatal("CPU count wrong")
	}
	if cfg.Host.Hardware.Proc[host.NvidiaGPU].FLOPSPerInst != 100e9 {
		t.Fatal("GPU flops wrong")
	}
	if cfg.Host.Prefs.MinQueue != 3600 || cfg.Host.Prefs.MaxQueue != 4*3600 {
		t.Fatalf("queue prefs wrong: %+v", cfg.Host.Prefs)
	}
	if len(cfg.Projects) != 2 || cfg.Projects[1].Apps[0].Usage.GPUUsage != 1 {
		t.Fatal("project conversion wrong")
	}
	if cfg.RECHalfLife != 86400 {
		t.Fatal("REC half-life not passed through")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := sampleScenario()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Projects) != 2 || got.Projects[1].Apps[0].NGPUs != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"name":"x","bogus":1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadRejectsInvalidScenario(t *testing.T) {
	// Valid JSON, invalid semantics (no projects).
	_, err := Load(strings.NewReader(`{"name":"x","host":{"ncpu":1,"cpu_gflops":1}}`))
	if err == nil {
		t.Fatal("scenario without projects accepted")
	}
}

func TestPolicyParsing(t *testing.T) {
	for in, want := range map[string]sched.Policy{
		"": sched.JSLocal, "JS-LOCAL": sched.JSLocal, "global": sched.JSGlobal, "JS-WRR": sched.JSWRR,
	} {
		got, err := ParseJobSched(in)
		if err != nil || got != want {
			t.Fatalf("ParseJobSched(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseJobSched("nope"); err == nil {
		t.Fatal("bad policy accepted")
	}
	for in, want := range map[string]fetch.PolicyKind{
		"": fetch.JFHysteresis, "JF-ORIG": fetch.JFOrig, "hysteresis": fetch.JFHysteresis,
	} {
		got, err := ParseJobFetch(in)
		if err != nil || got != want {
			t.Fatalf("ParseJobFetch(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseJobFetch("nope"); err == nil {
		t.Fatal("bad fetch policy accepted")
	}
}

func TestGPUKinds(t *testing.T) {
	s := sampleScenario()
	s.Host.GPUKind = "ati"
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Host.Hardware.Proc[host.AtiGPU].Count != 1 {
		t.Fatal("ATI GPU not built")
	}
	s.Host.GPUKind = "voodoo"
	if _, err := s.Config(); err == nil {
		t.Fatal("unknown GPU kind accepted")
	}
}

func TestCheckpointNever(t *testing.T) {
	s := sampleScenario()
	s.Projects[0].Apps[0].CheckpointS = -1
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Projects[0].Apps[0].CheckpointPeriod != 0 {
		t.Fatal("checkpoint -1 should mean never (period 0)")
	}
	s.Projects[0].Apps[0].CheckpointS = 0
	cfg, _ = s.Config()
	if cfg.Projects[0].Apps[0].CheckpointPeriod != 60 {
		t.Fatal("checkpoint default should be 60")
	}
}

const sampleXML = `<client_state>
  <host_info>
    <p_ncpus>4</p_ncpus>
    <p_fpops>2.5e9</p_fpops>
    <m_nbytes>8.0e9</m_nbytes>
    <coprocs>
      <coproc_cuda>
        <count>1</count>
        <peak_flops>1.0e11</peak_flops>
      </coproc_cuda>
    </coprocs>
  </host_info>
  <global_preferences>
    <work_buf_min_days>0.1</work_buf_min_days>
    <work_buf_additional_days>0.4</work_buf_additional_days>
    <leave_apps_in_memory>1</leave_apps_in_memory>
  </global_preferences>
  <project>
    <master_url>http://setiathome.berkeley.edu/</master_url>
    <project_name>SETI@home</project_name>
    <resource_share>100</resource_share>
  </project>
  <project>
    <master_url>http://einstein.phys.uwm.edu/</master_url>
    <project_name>Einstein@Home</project_name>
    <resource_share>50</resource_share>
  </project>
  <app_version>
    <app_name>setiathome_enhanced</app_name>
    <avg_ncpus>0.2</avg_ncpus>
    <flops>9.0e10</flops>
    <coproc><type>CUDA</type><count>1</count></coproc>
  </app_version>
  <app_version>
    <app_name>einstein_S5R6</app_name>
    <avg_ncpus>1</avg_ncpus>
    <flops>2.5e9</flops>
  </app_version>
  <workunit>
    <name>wu_seti_1</name>
    <app_name>setiathome_enhanced</app_name>
    <rsc_fpops_est>9.0e13</rsc_fpops_est>
  </workunit>
  <workunit>
    <name>wu_e_1</name>
    <app_name>einstein_S5R6</app_name>
    <rsc_fpops_est>2.5e13</rsc_fpops_est>
  </workunit>
  <result>
    <name>r1</name>
    <wu_name>wu_seti_1</wu_name>
    <project_url>http://setiathome.berkeley.edu/</project_url>
    <received_time>1000</received_time>
    <report_deadline>87400</report_deadline>
  </result>
  <result>
    <name>r2</name>
    <wu_name>wu_e_1</wu_name>
    <project_url>http://einstein.phys.uwm.edu/</project_url>
    <received_time>1000</received_time>
    <report_deadline>605800</report_deadline>
  </result>
</client_state>`

func TestImportClientState(t *testing.T) {
	s, err := ImportClientState(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Host.NCPU != 4 || s.Host.CPUGFlops != 2.5 || s.Host.NGPU != 1 {
		t.Fatalf("host import wrong: %+v", s.Host)
	}
	if s.Host.GPUGFlops != 100 {
		t.Fatalf("GPU GFlops = %v, want 100", s.Host.GPUGFlops)
	}
	if math.Abs(s.Host.MinQueueHours-2.4) > 1e-9 || !s.Host.LeaveInMemory {
		t.Fatalf("prefs import wrong: %+v", s.Host)
	}
	if len(s.Projects) != 2 {
		t.Fatalf("projects = %d, want 2", len(s.Projects))
	}
	seti := s.Projects[0]
	if seti.Name != "SETI@home" || seti.Share != 100 {
		t.Fatalf("project import wrong: %+v", seti)
	}
	app := seti.Apps[0]
	// 9e13 fpops at 9e10 flops = 1000 s; deadline 87400-1000 = 86400.
	if app.MeanSecs != 1000 || app.LatencySecs != 86400 {
		t.Fatalf("app stream wrong: %+v", app)
	}
	if app.NGPUs != 1 || app.GPUKind != "nvidia" || app.NCPUs != 0.2 {
		t.Fatalf("app usage wrong: %+v", app)
	}
	// The imported scenario must build a valid config.
	if _, err := s.Config(); err != nil {
		t.Fatal(err)
	}
}

func TestImportRejectsEmpty(t *testing.T) {
	if _, err := ImportClientState(strings.NewReader("<client_state></client_state>")); err == nil {
		t.Fatal("empty state accepted")
	}
	if _, err := ImportClientState(strings.NewReader("not xml at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestImportProjectWithoutResults(t *testing.T) {
	xmlstr := `<client_state>
  <host_info><p_ncpus>2</p_ncpus><p_fpops>1e9</p_fpops><m_nbytes>4e9</m_nbytes></host_info>
  <project><master_url>http://x/</master_url><resource_share>100</resource_share></project>
</client_state>`
	s, err := ImportClientState(strings.NewReader(xmlstr))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Projects) != 1 || len(s.Projects[0].Apps) != 1 {
		t.Fatal("idle project should get a synthetic app")
	}
	if s.Projects[0].Name != "http://x/" {
		t.Fatal("project without name should use URL")
	}
}

func TestSampleProducesValidScenarios(t *testing.T) {
	rng := stats.NewRNG(42)
	for i := 0; i < 200; i++ {
		s := Sample(rng, PopulationParams{})
		cfg, err := s.Config()
		if err != nil {
			t.Fatalf("sample %d invalid: %v\n%+v", i, err, s)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("sample %d config invalid: %v", i, err)
		}
		if len(s.Projects) < 1 || len(s.Projects) > 20 {
			t.Fatalf("sample %d has %d projects", i, len(s.Projects))
		}
	}
}

func TestSampleDiversity(t *testing.T) {
	rng := stats.NewRNG(1)
	gpus, sporadic, multi := 0, 0, 0
	const n = 300
	for i := 0; i < n; i++ {
		s := Sample(rng, PopulationParams{})
		if s.Host.NGPU > 0 {
			gpus++
		}
		if s.Host.Avail.MeanOffHours > 0 {
			sporadic++
		}
		if len(s.Projects) > 1 {
			multi++
		}
	}
	if gpus < n/10 || gpus > n*3/5 {
		t.Fatalf("GPU hosts %d/%d, want roughly 30%%", gpus, n)
	}
	if sporadic < n/4 {
		t.Fatalf("sporadic hosts %d/%d, want majority-ish", sporadic, n)
	}
	if multi < n/4 {
		t.Fatalf("multi-project scenarios %d/%d, want many", multi, n)
	}
}

func TestComputeHoursBuildTrace(t *testing.T) {
	s := sampleScenario()
	s.Host.ComputeHours = [2]float64{9, 17}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.Host.Avail.Trace[host.Compute]
	if len(tr) != 3 {
		t.Fatalf("compute-hours trace = %v", tr)
	}
	if f := cfg.Host.Avail.Frac(host.Compute); math.Abs(f-8.0/24) > 1e-9 {
		t.Fatalf("availability fraction %v, want 1/3", f)
	}
	// Explicit trace wins over compute hours.
	s.Host.AvailTrace = []TracePeriodJSON{{Hours: 1, On: true}, {Hours: 1, On: false}}
	cfg, err = s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Host.Avail.Trace[host.Compute]) != 2 {
		t.Fatal("explicit trace should override compute hours")
	}
}

func TestSpreadPolicyParsed(t *testing.T) {
	got, err := ParseJobFetch("JF-SPREAD")
	if err != nil || got != fetch.JFSpread {
		t.Fatalf("ParseJobFetch(JF-SPREAD) = %v, %v", got, err)
	}
}
