package scenario

import (
	"math"
	"strings"
	"testing"
)

// FuzzImportClientState feeds arbitrary bytes to the client_state.xml
// importer. The contract under test: ImportClientState never panics,
// and whenever it accepts the input, the resulting scenario builds a
// valid config whose numbers are all finite — malformed XML, truncated
// documents, and absurd durations/shares (NaN, Inf, negatives) must be
// rejected or sanitised, never imported verbatim.
func FuzzImportClientState(f *testing.F) {
	f.Add(sampleXML)
	f.Add("")
	f.Add("not xml at all")
	f.Add("<client_state></client_state>")
	f.Add("<client_state><host_info><p_ncpus>4</p_ncpus><p_fpops>2.5e9")
	f.Add(`<client_state>
  <host_info><p_ncpus>1</p_ncpus><p_fpops>NaN</p_fpops><m_nbytes>-Inf</m_nbytes></host_info>
  <project><master_url>http://x/</master_url><resource_share>NaN</resource_share></project>
</client_state>`)
	f.Add(`<client_state>
  <host_info><p_ncpus>2</p_ncpus><p_fpops>1e9</p_fpops>
    <coprocs><coproc_cuda><count>3</count><peak_flops>Inf</peak_flops></coproc_cuda></coprocs>
  </host_info>
  <global_preferences><work_buf_min_days>Inf</work_buf_min_days></global_preferences>
  <project><master_url>http://x/</master_url><resource_share>-50</resource_share></project>
  <app_version><app_name>a</app_name><avg_ncpus>Inf</avg_ncpus><flops>0</flops></app_version>
  <workunit><name>w</name><app_name>a</app_name><rsc_fpops_est>1e308</rsc_fpops_est></workunit>
  <result><name>r</name><wu_name>w</wu_name><project_url>http://x/</project_url>
    <received_time>1e308</received_time><report_deadline>-1e308</report_deadline></result>
</client_state>`)

	f.Fuzz(func(t *testing.T, data string) {
		s, err := ImportClientState(strings.NewReader(data))
		if err != nil {
			return
		}
		cfg, err := s.Config()
		if err != nil {
			t.Fatalf("accepted scenario fails Config(): %v\ninput: %q", err, data)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted scenario builds invalid config: %v\ninput: %q", err, data)
		}
		checkFinite := func(name string, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted scenario has non-finite %s = %v\ninput: %q", name, v, data)
			}
		}
		checkFinite("CPUGFlops", s.Host.CPUGFlops)
		checkFinite("GPUGFlops", s.Host.GPUGFlops)
		checkFinite("MemGB", s.Host.MemGB)
		checkFinite("MinQueueHours", s.Host.MinQueueHours)
		checkFinite("MaxQueueHours", s.Host.MaxQueueHours)
		for _, p := range s.Projects {
			checkFinite("Share", p.Share)
			if p.Share <= 0 {
				t.Fatalf("accepted scenario has non-positive share %v\ninput: %q", p.Share, data)
			}
			for _, a := range p.Apps {
				checkFinite("MeanSecs", a.MeanSecs)
				checkFinite("LatencySecs", a.LatencySecs)
				checkFinite("NCPUs", a.NCPUs)
				checkFinite("NGPUs", a.NGPUs)
			}
		}
	})
}
