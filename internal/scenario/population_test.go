package scenario

import (
	"testing"

	"bce/internal/stats"
)

// Regression: explicit zeros used to be treated as "unset" and silently
// replaced by the defaults (0.3 GPU / 0.6 sporadic), so a CPU-only or
// always-available population was impossible to sample.
func TestSampleExplicitZeroFractions(t *testing.T) {
	rng := stats.NewRNG(42)
	params := PopulationParams{GPUFraction: Frac(0), SporadicFrac: Frac(0)}
	for i := 0; i < 200; i++ {
		s := Sample(rng, params)
		if s.Host.NGPU != 0 {
			t.Fatalf("sample %d has a GPU despite GPUFraction=0", i)
		}
		if s.Host.Avail.MeanOffHours != 0 {
			t.Fatalf("sample %d has sporadic availability despite SporadicFrac=0", i)
		}
	}
}

func TestSampleExplicitOneFractions(t *testing.T) {
	rng := stats.NewRNG(42)
	params := PopulationParams{GPUFraction: Frac(1), SporadicFrac: Frac(1)}
	for i := 0; i < 50; i++ {
		s := Sample(rng, params)
		if s.Host.NGPU == 0 {
			t.Fatalf("sample %d has no GPU despite GPUFraction=1", i)
		}
		if s.Host.Avail.MeanOffHours == 0 {
			t.Fatalf("sample %d always-on despite SporadicFrac=1", i)
		}
	}
}

// The zero value keeps its historical meaning: defaults everywhere, so
// a large sample contains both GPU and sporadic hosts.
func TestSampleZeroValueKeepsDefaults(t *testing.T) {
	rng := stats.NewRNG(42)
	gpus, sporadic := 0, 0
	const n = 300
	for i := 0; i < n; i++ {
		s := Sample(rng, PopulationParams{})
		if s.Host.NGPU > 0 {
			gpus++
		}
		if s.Host.Avail.MeanOffHours > 0 {
			sporadic++
		}
	}
	if gpus == 0 || gpus == n {
		t.Fatalf("default GPUFraction not applied: %d/%d GPU hosts", gpus, n)
	}
	if sporadic == 0 || sporadic == n {
		t.Fatalf("default SporadicFrac not applied: %d/%d sporadic hosts", sporadic, n)
	}
}

func TestClampFrac(t *testing.T) {
	rng := stats.NewRNG(1)
	// Out-of-range fractions are clamped rather than rejected.
	s := Sample(rng, PopulationParams{GPUFraction: Frac(-3), SporadicFrac: Frac(7)})
	if s.Host.NGPU != 0 {
		t.Fatal("negative GPUFraction should clamp to 0")
	}
	if s.Host.Avail.MeanOffHours == 0 {
		t.Fatal("SporadicFrac above 1 should clamp to 1")
	}
}
