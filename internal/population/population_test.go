package population

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bce/internal/client"
	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/scenario"
)

// stubBatch fabricates deterministic per-cell metrics from the spec
// label (no emulation), so checkpoint/resume mechanics can be tested at
// the 10k-scenario scale the acceptance criteria name in milliseconds.
func stubBatch(ctx context.Context, specs []runner.Spec, opts ...runner.Option) ([]runner.RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]runner.RunResult, len(specs))
	for i, sp := range specs {
		h := uint64(14695981039346656037)
		for _, c := range []byte(sp.Label) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		var m metrics.Metrics
		m.IdleFraction = float64(h%1000) / 1000
		m.WastedFraction = float64((h>>10)%1000) / 1000
		m.ShareViolation = float64((h>>20)%1000) / 1000
		m.Monotony = float64((h>>30)%1000) / 1000
		m.RPCsPerJob = float64((h>>40)%1000) / 1000
		results[i] = runner.RunResult{Index: i, Label: sp.Label, Result: &client.Result{Metrics: m}}
	}
	return results, nil
}

func stubParams(n int, ck string) Params {
	return Params{
		Combos:         []Combo{{"JS-LOCAL", "JF-ORIG"}, {"JS-GLOBAL", "JF-HYSTERESIS"}, {"JS-WRR", "JF-HYSTERESIS"}},
		Scenarios:      n,
		Seed:           42,
		BatchSize:      128,
		CheckpointPath: ck,
		RunBatch:       stubBatch,
	}
}

func studyJSON(t *testing.T, st *Study) string {
	t.Helper()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// The acceptance-criteria scale: 10k scenarios straight vs. killed at
// ~5k and resumed; the aggregate states must be bit-identical.
func TestResumeEquivalence10k(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")

	straight, err := Run(context.Background(), stubParams(10_000, ""))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel once 5k scenarios are folded. The cancel
	// lands between batches, like a SIGINT through runner.Batch.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := stubParams(10_000, ck)
	p.Progress = func(done, total int) {
		if done >= 5_000 {
			cancel()
		}
	}
	partial, err := Run(ctx, p)
	if err == nil {
		t.Fatal("canceled run reported no error")
	}
	if partial.Done >= 10_000 || partial.Done < 5_000 {
		t.Fatalf("interrupted at %d scenarios, want within [5000,10000)", partial.Done)
	}

	resumed, err := Resume(context.Background(), ck, Params{RunBatch: stubBatch})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Done != 10_000 || resumed.Target != 10_000 {
		t.Fatalf("resume finished at %d/%d, want 10000/10000", resumed.Done, resumed.Target)
	}
	if a, b := studyJSON(t, straight), studyJSON(t, resumed); a != b {
		t.Fatal("resumed aggregates are not bit-identical to the uninterrupted run")
	}
}

// Resume can also extend a completed study to a larger target, and the
// result matches running the larger study from scratch.
func TestResumeExtendsTarget(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")
	if _, err := Run(context.Background(), stubParams(3_000, ck)); err != nil {
		t.Fatal(err)
	}
	extended, err := Resume(context.Background(), ck, Params{Scenarios: 9_000, RunBatch: stubBatch})
	if err != nil {
		t.Fatal(err)
	}
	straight, err := Run(context.Background(), stubParams(9_000, ""))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := studyJSON(t, straight), studyJSON(t, extended); a != b {
		t.Fatal("extended study diverged from a straight run")
	}
}

// Resume is insensitive to batch size: fold order is scenario order,
// not batch structure.
func TestResumeDifferentBatchSize(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")
	p := stubParams(2_500, ck)
	p.BatchSize = 97
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Progress = func(done, total int) {
		if done >= 1_000 {
			cancel()
		}
	}
	if _, err := Run(ctx, p); err == nil {
		t.Fatal("canceled run reported no error")
	}
	resumed, err := Resume(context.Background(), ck, Params{BatchSize: 31, RunBatch: stubBatch})
	if err != nil {
		t.Fatal(err)
	}
	straight, err := Run(context.Background(), stubParams(2_500, ""))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := studyJSON(t, straight), studyJSON(t, resumed); a != b {
		t.Fatal("batch-size change broke resume equivalence")
	}
}

// The streaming path must not retain per-scenario values: the
// aggregate state (= checkpoint size) stays bounded as the scenario
// count grows 10x. The quantile sketches add one bin per occupied
// log-bucket, so the state creeps up sub-linearly as more buckets see
// their first sample — allow that, but reject anything resembling
// per-scenario growth (10x scenarios must stay far under 2x bytes).
func TestAggregateStateSizeIndependentOfN(t *testing.T) {
	small, err := Run(context.Background(), stubParams(500, ""))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(context.Background(), stubParams(5_000, ""))
	if err != nil {
		t.Fatal(err)
	}
	a, b := len(studyJSON(t, small)), len(studyJSON(t, large))
	if b > a+a/2 {
		t.Fatalf("aggregate state grew with N: %d bytes at 500, %d at 5000", a, b)
	}
}

func TestOnCellFoldOrder(t *testing.T) {
	var cells []string
	p := stubParams(7, "")
	p.BatchSize = 3
	p.OnCell = func(i, c int, vals [NumMetrics]float64, failed bool) {
		cells = append(cells, fmt.Sprintf("%d/%d", i, c))
		if failed {
			t.Errorf("cell %d/%d unexpectedly failed", i, c)
		}
	}
	if _, err := Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 7*3 {
		t.Fatalf("OnCell fired %d times, want 21", len(cells))
	}
	want := 0
	for i := 0; i < 7; i++ {
		for c := 0; c < 3; c++ {
			if cells[want] != fmt.Sprintf("%d/%d", i, c) {
				t.Fatalf("fold order broken at %d: %v", want, cells[want])
			}
			want++
		}
	}
}

func TestPairedWinsSymmetry(t *testing.T) {
	st, err := Run(context.Background(), stubParams(200, ""))
	if err != nil {
		t.Fatal(err)
	}
	aw, bw, ties := st.PairedWins(0, 0, 1)
	bw2, aw2, ties2 := st.PairedWins(0, 1, 0)
	if aw != aw2 || bw != bw2 || ties != ties2 {
		t.Fatalf("PairedWins not symmetric: %d/%d/%d vs %d/%d/%d", aw, bw, ties, aw2, bw2, ties2)
	}
	if aw+bw+ties != 200 {
		t.Fatalf("pair outcomes sum to %d, want 200", aw+bw+ties)
	}
	if _, _, self := st.PairedWins(0, 1, 1); self != 200 {
		t.Fatalf("self-pair ties = %d, want 200", self)
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	if err := os.WriteFile(bad, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Fatal("wrong-version checkpoint accepted")
	}
	if err := os.WriteFile(bad, []byte(`{"version":1,"combos":[{"sched":"a","fetch":"b"}],"aggs":[{}],"pairs":[],"target":5,"done":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Fatal("done > target checkpoint accepted")
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestRunRejectsZeroScenarios(t *testing.T) {
	if _, err := Run(context.Background(), Params{RunBatch: stubBatch}); err == nil {
		t.Fatal("zero-scenario study accepted")
	}
}

// realParams is a small real-emulation study: tiny scenarios, two
// combos, so the whole test stays in the hundreds of milliseconds.
func realParams(n int, ck string) Params {
	return Params{
		Combos:    []Combo{{"JS-LOCAL", "JF-HYSTERESIS"}, {"JS-GLOBAL", "JF-ORIG"}},
		Scenarios: n,
		Seed:      7,
		Population: scenario.PopulationParams{
			DurationDays: 0.2,
			MaxProjects:  3,
			GPUFraction:  scenario.Frac(0.2),
		},
		BatchSize:      4,
		CheckpointPath: ck,
	}
}

// End-to-end: a real (emulating) study killed mid-run and resumed must
// match the uninterrupted run bit-for-bit.
func TestRealResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")

	straight, err := Run(context.Background(), realParams(12, ""))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := realParams(12, ck)
	p.Progress = func(done, total int) {
		if done >= 6 {
			cancel()
		}
	}
	if _, err := Run(ctx, p); err == nil {
		t.Fatal("canceled run reported no error")
	}
	st, err := LoadCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done < 6 || st.Done >= 12 {
		t.Fatalf("checkpoint at %d scenarios, want within [6,12)", st.Done)
	}
	resumed, err := Resume(context.Background(), ck, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := studyJSON(t, straight), studyJSON(t, resumed); a != b {
		t.Fatal("real resumed aggregates are not bit-identical to the uninterrupted run")
	}
}

// The aggregates are identical for any worker count: results are folded
// in scenario order regardless of completion order.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	one, err := Run(context.Background(), realParams(8, ""), runner.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(context.Background(), realParams(8, ""), runner.WithWorkers(7))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := studyJSON(t, one), studyJSON(t, many); a != b {
		t.Fatal("worker count changed the aggregates")
	}
}

// A canceled run surfaces a context error the caller can test with
// errors.Is, and still returns the partial study.
func TestCancelReturnsPartialStudy(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := Run(ctx, stubParams(100, ""))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st == nil || st.Done != 0 {
		t.Fatalf("partial study = %+v", st)
	}
}
