// Checkpoint persistence: the Study aggregate state serialized as JSON
// and written atomically (temp file + fsync + rename + parent-directory
// fsync), so a reader never observes a torn checkpoint, a crash
// mid-write leaves the previous checkpoint intact, and a crash right
// after the rename cannot lose the new directory entry. Go encodes
// float64 values in their shortest exact round-trip form, so loading a
// checkpoint reconstructs the exact-sum mean and sketch bucket state
// bit-for-bit — the basis of the resume-equals-uninterrupted guarantee.
package population

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// SaveCheckpoint atomically replaces path with st's JSON encoding and
// makes the replacement durable: the data is fsynced before the rename
// and the parent directory is fsynced after it, so a crash at any point
// leaves either the old complete checkpoint or the new one.
func SaveCheckpoint(path string, st *Study) error {
	blob, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return fmt.Errorf("population: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.json")
	if err != nil {
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) //bce:errok best-effort cleanup; a no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close() //bce:errok the write error already propagates; this close only releases the fd
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //bce:errok the sync error already propagates; this close only releases the fd
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	// The rename is atomic but not durable until the directory entry
	// itself reaches disk: without this fsync a crash after the rename
	// can roll the directory back and lose the checkpoint entirely.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("population: checkpoint: sync %s: %w", dir, err)
	}
	return nil
}

// syncDir fsyncs a directory. Filesystems that cannot sync directories
// (some network and FUSE mounts report EINVAL or ENOTSUP) get
// best-effort semantics — the rename still happened; only crash
// durability is reduced, and there is nothing more we can do there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //bce:errok read-only fd; close failure cannot lose data
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Study, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("population: %w", err)
	}
	st := &Study{}
	if err := json.Unmarshal(blob, st); err != nil {
		return nil, fmt.Errorf("population: parse checkpoint %s: %w", path, err)
	}
	if st.Version != CheckpointVersion {
		return nil, fmt.Errorf("population: checkpoint %s has version %d, want %d",
			path, st.Version, CheckpointVersion)
	}
	if len(st.Combos) == 0 || len(st.Aggs) != len(st.Combos) {
		return nil, fmt.Errorf("population: checkpoint %s is malformed: %d combos, %d aggregates",
			path, len(st.Combos), len(st.Aggs))
	}
	if want := len(st.Combos) * (len(st.Combos) - 1) / 2; len(st.Pairs) != want {
		return nil, fmt.Errorf("population: checkpoint %s is malformed: %d pairs, want %d",
			path, len(st.Pairs), want)
	}
	if st.Lo < 0 {
		return nil, fmt.Errorf("population: checkpoint %s is malformed: negative shard offset %d",
			path, st.Lo)
	}
	if st.Done < 0 || st.Target < 0 || st.Done > st.Target {
		return nil, fmt.Errorf("population: checkpoint %s is malformed: done %d of target %d",
			path, st.Done, st.Target)
	}
	return st, nil
}
