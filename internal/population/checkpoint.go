// Checkpoint persistence: the Study aggregate state serialized as JSON
// and written atomically (temp file + rename in the target directory),
// so a reader never observes a torn checkpoint and a crash mid-write
// leaves the previous checkpoint intact. Go encodes float64 values in
// their shortest exact round-trip form, so loading a checkpoint
// reconstructs the Welford and P² marker state bit-for-bit — the basis
// of the resume-equals-uninterrupted guarantee.
package population

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// writeCheckpoint atomically replaces path with st's JSON encoding.
func writeCheckpoint(path string, st *Study) error {
	blob, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return fmt.Errorf("population: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.json")
	if err != nil {
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) //bce:errok best-effort cleanup; a no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close() //bce:errok the write error already propagates; this close only releases the fd
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //bce:errok the sync error already propagates; this close only releases the fd
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("population: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Study, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("population: %w", err)
	}
	st := &Study{}
	if err := json.Unmarshal(blob, st); err != nil {
		return nil, fmt.Errorf("population: parse checkpoint %s: %w", path, err)
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("population: checkpoint %s has version %d, want %d",
			path, st.Version, checkpointVersion)
	}
	if len(st.Combos) == 0 || len(st.Aggs) != len(st.Combos) {
		return nil, fmt.Errorf("population: checkpoint %s is malformed: %d combos, %d aggregates",
			path, len(st.Combos), len(st.Aggs))
	}
	if want := len(st.Combos) * (len(st.Combos) - 1) / 2; len(st.Pairs) != want {
		return nil, fmt.Errorf("population: checkpoint %s is malformed: %d pairs, want %d",
			path, len(st.Pairs), want)
	}
	if st.Done < 0 || st.Target < 0 || st.Done > st.Target {
		return nil, fmt.Errorf("population: checkpoint %s is malformed: done %d of target %d",
			path, st.Done, st.Target)
	}
	return st, nil
}
