// Merging shard studies back into a whole-population study, plus the
// parameter-diff helper that keeps resumes honest. MergeStudies is the
// coordinator's reduce step: because the per-combo aggregates are pure
// functions of the folded sample multiset (exact sums, integer bucket
// and win counts — see internal/stats), merging complete shards of a
// population in any order produces state bit-identical to one process
// folding the whole range.
package population

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
)

// MergeStudies merges complete shard studies of the same population
// into a single study covering their combined range. The shards must
// share seed, combos, population parameters and checkpoint version,
// each must be finished (Done == Target), and their ranges must tile a
// contiguous span without gaps or overlap. The inputs are not
// modified; the result is independent state.
//
// Merge order does not matter: the shards are sorted by range before
// folding, and the underlying aggregates are associative and
// commutative, so any grouping of merges yields identical bits.
func MergeStudies(parts []*Study) (*Study, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("population: merge of zero studies")
	}
	sorted := make([]*Study, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })

	first := sorted[0]
	out, err := cloneStudy(first)
	if err != nil {
		return nil, err
	}
	for _, st := range sorted {
		if st.Done != st.Target {
			return nil, fmt.Errorf("population: shard [%d,%d) is incomplete (%d of %d scenarios)",
				st.Lo, st.Lo+st.Target, st.Done, st.Target)
		}
	}
	for i := 1; i < len(sorted); i++ {
		st := sorted[i]
		if err := sameSpec(first, st); err != nil {
			return nil, err
		}
		if want := out.Lo + out.Target; st.Lo != want {
			if st.Lo < want {
				return nil, fmt.Errorf("population: shard [%d,%d) overlaps merged range [%d,%d)",
					st.Lo, st.Lo+st.Target, out.Lo, want)
			}
			return nil, fmt.Errorf("population: gap before shard [%d,%d): merged range ends at %d",
				st.Lo, st.Lo+st.Target, want)
		}
		for c := range out.Aggs {
			if err := out.Aggs[c].merge(&st.Aggs[c]); err != nil {
				return nil, err
			}
		}
		for pi := range out.Pairs {
			if err := out.Pairs[pi].Merge(st.Pairs[pi]); err != nil {
				return nil, err
			}
		}
		out.Target += st.Target
		out.Done += st.Done
	}
	return out, nil
}

// cloneStudy deep-copies a study through its JSON encoding — the same
// round trip a checkpoint takes, which is exact for all aggregate
// state.
func cloneStudy(st *Study) (*Study, error) {
	blob, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("population: clone study: %w", err)
	}
	out := &Study{}
	if err := json.Unmarshal(blob, out); err != nil {
		return nil, fmt.Errorf("population: clone study: %w", err)
	}
	return out, nil
}

// sameSpec verifies two studies describe the same population.
func sameSpec(a, b *Study) error {
	if a.Version != b.Version {
		return fmt.Errorf("population: merging different checkpoint versions (%d vs %d)", a.Version, b.Version)
	}
	if a.Seed != b.Seed {
		return fmt.Errorf("population: merging different seeds (%d vs %d)", a.Seed, b.Seed)
	}
	if !reflect.DeepEqual(a.Combos, b.Combos) {
		return fmt.Errorf("population: merging different combo sets (%v vs %v)", a.Combos, b.Combos)
	}
	ap, _ := json.Marshal(a.Population) //bce:errok plain struct of scalars; Marshal cannot fail
	bp, _ := json.Marshal(b.Population) //bce:errok plain struct of scalars; Marshal cannot fail
	if string(ap) != string(bp) {
		return fmt.Errorf("population: merging different population params (%s vs %s)", ap, bp)
	}
	return nil
}

// ParamDiff is one disagreement between a checkpoint and the
// parameters of the run trying to resume it.
type ParamDiff struct {
	Field      string // flag-style name, e.g. "seed", "combos", "days"
	Checkpoint string // value recorded in the checkpoint
	Want       string // value requested by the current run
}

func (d ParamDiff) String() string {
	return fmt.Sprintf("%s: checkpoint has %s, flags say %s", d.Field, d.Checkpoint, d.Want)
}

// DiffParams compares a checkpoint's recorded population spec against
// freshly requested parameters and reports every field that disagrees.
// An empty result means the checkpoint can safely absorb the run;
// anything else means folding would silently mix incompatible
// aggregates, and the caller must refuse. Scenario-count policy
// (extending vs shrinking the target) is the caller's call and is not
// diffed here.
func DiffParams(st *Study, p Params) []ParamDiff {
	var diffs []ParamDiff
	if st.Seed != p.Seed {
		diffs = append(diffs, ParamDiff{"seed", fmt.Sprint(st.Seed), fmt.Sprint(p.Seed)})
	}
	combos := p.Combos
	if len(combos) == 0 {
		combos = DefaultCombos()
	}
	if !reflect.DeepEqual(st.Combos, combos) {
		diffs = append(diffs, ParamDiff{"combos", comboList(st.Combos), comboList(combos)})
	}
	cp, wp := st.Population, p.Population
	if cp.DurationDays != wp.DurationDays {
		diffs = append(diffs, ParamDiff{"days", fmt.Sprint(cp.DurationDays), fmt.Sprint(wp.DurationDays)})
	}
	if cp.MaxProjects != wp.MaxProjects {
		diffs = append(diffs, ParamDiff{"max-projects", fmt.Sprint(cp.MaxProjects), fmt.Sprint(wp.MaxProjects)})
	}
	if d := diffFrac("gpu-frac", cp.GPUFraction, wp.GPUFraction); d != nil {
		diffs = append(diffs, *d)
	}
	if d := diffFrac("sporadic-frac", cp.SporadicFrac, wp.SporadicFrac); d != nil {
		diffs = append(diffs, *d)
	}
	if st.Lo != p.Lo {
		diffs = append(diffs, ParamDiff{"shard offset", fmt.Sprint(st.Lo), fmt.Sprint(p.Lo)})
	}
	return diffs
}

func comboList(cs []Combo) string {
	out := ""
	for i, c := range cs {
		if i > 0 {
			out += ","
		}
		out += c.String()
	}
	return out
}

func diffFrac(field string, a, b *float64) *ParamDiff {
	fv := func(p *float64) string {
		if p == nil {
			return "default"
		}
		return fmt.Sprint(*p)
	}
	switch {
	case a == nil && b == nil:
		return nil
	case a != nil && b != nil && *a == *b:
		return nil
	}
	return &ParamDiff{field, fv(a), fv(b)}
}
