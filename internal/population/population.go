// Package population is the streaming Monte-Carlo study engine — the
// paper's §6.2 direction ("characterize the actual population of
// scenarios, and develop a system, perhaps based on Monte-Carlo
// sampling, to study policies over the entire population") built to the
// ROADMAP's scale: millions of scenarios, bounded memory.
//
// Scenarios are sampled on the fly (scenario i is always drawn from an
// RNG seeded with DeriveSeed(seed, i), so the population is a pure
// function of the base seed), sharded across the runner worker pool in
// bounded batches of (combo, scenario) cells, and folded into online
// aggregates: an exact-sum mean/variance accumulator and a mergeable
// log-bucket quantile sketch per (combo, figure of merit), plus paired
// per-scenario win/loss counts for every combo pair. Memory is
// O(combos), not O(scenarios) — nothing per-scenario is retained.
//
// Determinism: every cell's result is a pure function of (seed, i,
// combo), and the aggregates are pure functions of the folded sample
// multiset (exact sums and integer bucket counts, see internal/stats),
// so the final aggregates are bit-identical for any worker count, any
// batch size — and, via MergeStudies, any sharding of the scenario
// range across processes. Checkpoints serialize the exact aggregate
// state (Go's JSON float64 encoding round-trips exactly), so a run
// killed at a batch boundary and resumed reports aggregates
// bit-identical to an uninterrupted run.
//
// Sharding: a Study may cover a sub-range [Lo, Lo+Target) of a larger
// population; shards of the same population (same seed, combos,
// params) covering contiguous, non-overlapping ranges merge with
// MergeStudies into the state a single process would have produced.
//
// Concurrency: this package is single-goroutine by design and owns no
// locks — parallelism lives entirely in runner.Batch, and every fold
// into the aggregates happens on the caller's goroutine after the
// batch returns. There are therefore no //bce:guardedby annotations
// here: no field is ever shared between goroutines (the concurrency
// analyzers, DESIGN.md §10.2, verify the absence of go statements and
// sync primitives rather than a locking discipline).
package population

import (
	"context"
	"fmt"

	"bce/internal/client"
	"bce/internal/runner"
	"bce/internal/scenario"
	"bce/internal/stats"
)

// Combo is one policy combination under study.
type Combo struct {
	Sched string `json:"sched"` // "JS-LOCAL", "JS-GLOBAL", "JS-WRR", "JS-LLF"
	Fetch string `json:"fetch"` // "JF-ORIG", "JF-HYSTERESIS", "JF-SPREAD"
}

// String returns "sched/fetch".
func (c Combo) String() string { return c.Sched + "/" + c.Fetch }

// DefaultCombos is the policy matrix the paper's variants span.
func DefaultCombos() []Combo {
	return []Combo{
		{"JS-LOCAL", "JF-ORIG"},
		{"JS-LOCAL", "JF-HYSTERESIS"},
		{"JS-GLOBAL", "JF-ORIG"},
		{"JS-GLOBAL", "JF-HYSTERESIS"},
		{"JS-WRR", "JF-HYSTERESIS"},
	}
}

// NumMetrics is the number of figures of merit folded per cell.
const NumMetrics = 5

// Params configures a streaming population study.
type Params struct {
	// Combos is the policy matrix (DefaultCombos when empty).
	Combos []Combo
	// Scenarios is the number of scenarios to evaluate in this run.
	Scenarios int
	// Lo is the index of the first scenario; the run covers
	// [Lo, Lo+Scenarios). Nonzero only for shards of a larger study.
	Lo int
	// Seed is the base seed: scenario i is sampled from an RNG seeded
	// with DeriveSeed(Seed, i), independent of batching and workers.
	Seed int64
	// Population tunes the scenario sampler.
	Population scenario.PopulationParams
	// BatchSize bounds how many scenarios are in flight at once; the
	// engine holds BatchSize×len(Combos) results at peak (default 64).
	BatchSize int
	// CheckpointPath, when nonempty, receives an atomically written
	// JSON checkpoint every CheckpointEvery batches and on
	// cancellation, enabling bit-identical resume.
	CheckpointPath string
	// CheckpointEvery is the number of batches between checkpoint
	// writes (default 1).
	CheckpointEvery int

	// Source overrides the population sampler with a fixed scenario
	// source: it must return the i-th scenario deterministically. Used
	// by the small-N study adapter.
	Source func(i int) (*scenario.Scenario, error)
	// OnCell, when set, observes every folded cell in fold order
	// (scenario-major, then combo). Failed cells report failed=true
	// with a zero value.
	OnCell func(scenarioIdx, comboIdx int, vals [NumMetrics]float64, failed bool)
	// Progress, when set, is called after every folded batch with the
	// number of scenarios completed and the target.
	Progress func(done, total int)

	// RunBatch substitutes the execution engine; nil means
	// runner.Batch. Exported so the fabric worker's tests (and the
	// sharded CI smoke) can inject a deterministic stub engine.
	RunBatch func(ctx context.Context, specs []runner.Spec, opts ...runner.Option) ([]runner.RunResult, error)
}

func (p Params) withDefaults() Params {
	if len(p.Combos) == 0 {
		p.Combos = DefaultCombos()
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 64
	}
	if p.CheckpointEvery <= 0 {
		p.CheckpointEvery = 1
	}
	if p.RunBatch == nil {
		p.RunBatch = runner.Batch
	}
	return p
}

// ComboAgg is the online aggregate state for one combo: an exact-sum
// mean/variance accumulator and a mergeable quantile sketch per figure
// of merit, plus the failed-cell count. All state is serializable and
// resumes exactly; aggregates from disjoint scenario ranges merge into
// the state a single fold would have produced (see MergeStudies).
type ComboAgg struct {
	Failed int                             `json:"failed"`
	Mean   [NumMetrics]stats.Mean          `json:"mean"`
	Quants [NumMetrics]stats.MergingSketch `json:"quants"`
}

// merge folds o into a; the sketches must share an accuracy parameter.
func (a *ComboAgg) merge(o *ComboAgg) error {
	a.Failed += o.Failed
	for m := 0; m < NumMetrics; m++ {
		a.Mean[m].Merge(&o.Mean[m])
		if err := a.Quants[m].Merge(&o.Quants[m]); err != nil {
			return err
		}
	}
	return nil
}

// PairAgg counts paired per-scenario outcomes between combos A and B
// (indices into Study.Combos, A < B) for every metric. Lower is better,
// so AWins[m] counts scenarios where combo A had the strictly lower
// value of metric m; scenarios where either combo failed are skipped.
type PairAgg struct {
	A     int             `json:"a"`
	B     int             `json:"b"`
	AWins [NumMetrics]int `json:"a_wins"`
	BWins [NumMetrics]int `json:"b_wins"`
	Ties  [NumMetrics]int `json:"ties"`
}

// Merge adds o's counts into p; both must describe the same combo pair.
func (p *PairAgg) Merge(o PairAgg) error {
	if p.A != o.A || p.B != o.B {
		return fmt.Errorf("population: merging mismatched pairs (%d,%d) vs (%d,%d)", p.A, p.B, o.A, o.B)
	}
	for m := 0; m < NumMetrics; m++ {
		p.AWins[m] += o.AWins[m]
		p.BWins[m] += o.BWins[m]
		p.Ties[m] += o.Ties[m]
	}
	return nil
}

// Study is both the running aggregate state and the final result; its
// JSON encoding is the checkpoint format.
type Study struct {
	Version    int                       `json:"version"`
	Seed       int64                     `json:"seed"`
	Population scenario.PopulationParams `json:"population"`
	Combos     []Combo                   `json:"combos"`
	// Lo is the index of the first scenario this study covers: the
	// range is [Lo, Lo+Target). Zero for a whole-population study;
	// nonzero for one shard of a sharded study.
	Lo int `json:"lo,omitempty"`
	// Target is the scenario count the run is heading for; Done is how
	// many have been folded (the next scenario index is Lo+Done). A
	// checkpoint with Done < Target is a run in flight (killed or still
	// going); Resume picks up at Done.
	Target int        `json:"target"`
	Done   int        `json:"done"`
	Aggs   []ComboAgg `json:"aggs"`
	Pairs  []PairAgg  `json:"pairs"`
}

// CheckpointVersion guards the checkpoint format. Version 2 switched
// the per-combo aggregates from Welford/P² state to exact-sum means
// and mergeable sketches and added the shard range; version-1
// checkpoints are rejected rather than misread.
const CheckpointVersion = 2

// newStudy builds the empty aggregate state for p. The zero
// stats.Mean and stats.MergingSketch are ready to use, so only the
// pair table needs populating.
func newStudy(p Params) *Study {
	st := &Study{
		Version:    CheckpointVersion,
		Seed:       p.Seed,
		Population: p.Population,
		Combos:     append([]Combo(nil), p.Combos...),
		Lo:         p.Lo,
		Target:     p.Scenarios,
		Aggs:       make([]ComboAgg, len(p.Combos)),
	}
	for a := 0; a < len(p.Combos); a++ {
		for b := a + 1; b < len(p.Combos); b++ {
			st.Pairs = append(st.Pairs, PairAgg{A: a, B: b})
		}
	}
	return st
}

// Run executes a fresh streaming study. On cancellation it writes a
// final checkpoint (when CheckpointPath is set) and returns the partial
// study alongside the error, so callers can inspect or resume it.
func Run(ctx context.Context, p Params, opts ...runner.Option) (*Study, error) {
	p = p.withDefaults()
	if p.Scenarios <= 0 {
		return nil, fmt.Errorf("population: no scenarios requested")
	}
	if p.Lo < 0 {
		return nil, fmt.Errorf("population: negative shard offset %d", p.Lo)
	}
	return run(ctx, newStudy(p), p, opts...)
}

// Resume continues a study from a checkpoint file. The checkpoint's
// seed, combos and population parameters override p's; p.Scenarios,
// when larger than the checkpoint's target, extends the run to the new
// total (0 keeps the original target). The checkpoint is rewritten as
// the run progresses (to p.CheckpointPath, defaulting to path).
func Resume(ctx context.Context, path string, p Params, opts ...runner.Option) (*Study, error) {
	st, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	p = p.withDefaults()
	p.Seed = st.Seed
	p.Combos = st.Combos
	p.Population = st.Population
	p.Lo = st.Lo
	if p.CheckpointPath == "" {
		p.CheckpointPath = path
	}
	if p.Scenarios > st.Target {
		st.Target = p.Scenarios
	}
	p.Scenarios = st.Target
	return run(ctx, st, p, opts...)
}

// run drives the batched sample → emulate → fold loop from st.Done to
// st.Target (absolute scenario indices st.Lo+st.Done to st.Lo+st.Target).
func run(ctx context.Context, st *Study, p Params, opts ...runner.Option) (*Study, error) {
	sinceCheckpoint := 0
	checkpoint := func() error {
		if p.CheckpointPath == "" {
			return nil
		}
		return SaveCheckpoint(p.CheckpointPath, st)
	}
	for st.Done < st.Target {
		lo, hi := st.Lo+st.Done, st.Lo+st.Done+p.BatchSize
		if hi > st.Lo+st.Target {
			hi = st.Lo + st.Target
		}
		specs, errs := batchSpecs(p, lo, hi)
		results, err := p.RunBatch(ctx, specs, opts...)
		if err != nil {
			// Canceled (or failed fast) mid-batch: persist the folded
			// prefix so the run can resume exactly where it stopped.
			if ckErr := checkpoint(); ckErr != nil {
				return st, fmt.Errorf("population: %w (checkpoint also failed: %v)", err, ckErr)
			}
			return st, err
		}
		foldBatch(st, p, lo, hi, specs, errs, results)
		if p.Progress != nil {
			p.Progress(st.Done, st.Target)
		}
		sinceCheckpoint++
		if sinceCheckpoint >= p.CheckpointEvery {
			if err := checkpoint(); err != nil {
				return st, err
			}
			sinceCheckpoint = 0
		}
	}
	if err := checkpoint(); err != nil {
		return st, err
	}
	return st, nil
}

// batchSpecs builds the (scenario, combo) cell specs for scenarios
// [lo,hi), scenario-major. Scenarios that fail to sample or configure
// are recorded in errs (indexed like specs) and run as no-ops.
func batchSpecs(p Params, lo, hi int) ([]runner.Spec, []error) {
	nc := len(p.Combos)
	specs := make([]runner.Spec, 0, (hi-lo)*nc)
	errs := make([]error, (hi-lo)*nc)
	for i := lo; i < hi; i++ {
		scn, err := sampleScenario(p, i)
		for c := range p.Combos {
			cell := (i-lo)*nc + c
			if err != nil {
				errs[cell] = err
				err := err
				specs = append(specs, runner.Spec{
					Label: fmt.Sprintf("pop-%07d (bad sample)", i),
					Make:  func() (client.Config, error) { return client.Config{}, err },
				})
				continue
			}
			combo := p.Combos[c]
			scn := scn
			specs = append(specs, runner.Spec{
				Label: fmt.Sprintf("%s/%s", scn.Name, combo),
				Make:  func() (client.Config, error) { return comboConfig(scn, combo) },
			})
		}
	}
	return specs, errs
}

// sampleScenario materializes scenario i: from the fixed Source, or
// drawn from the population model with a per-index derived seed.
func sampleScenario(p Params, i int) (*scenario.Scenario, error) {
	if p.Source != nil {
		return p.Source(i)
	}
	rng := stats.NewRNG(runner.DeriveSeed(p.Seed, i))
	scn := scenario.Sample(rng, p.Population)
	scn.Name = fmt.Sprintf("pop-%07d", i)
	return scn, nil
}

// comboConfig builds the config for one (scenario, combo) cell; the
// scenario is copied so concurrent cells never share mutable state.
func comboConfig(base *scenario.Scenario, combo Combo) (client.Config, error) {
	s := *base
	s.Policies.JobSched = combo.Sched
	s.Policies.JobFetch = combo.Fetch
	return s.Config()
}

// foldBatch folds one batch of results into the aggregates, strictly
// in scenario order (then combo order), so the accumulated floating-
// point state is independent of worker scheduling.
func foldBatch(st *Study, p Params, lo, hi int, specs []runner.Spec, errs []error, results []runner.RunResult) {
	nc := len(st.Combos)
	vals := make([][NumMetrics]float64, nc)
	failed := make([]bool, nc)
	for i := lo; i < hi; i++ {
		for c := 0; c < nc; c++ {
			cell := (i-lo)*nc + c
			switch {
			case errs[cell] != nil:
				failed[c] = true
			case results[cell].Err != nil:
				failed[c] = true
			default:
				vals[c] = results[cell].Result.Metrics.Values()
				failed[c] = false
			}
			if failed[c] {
				vals[c] = [NumMetrics]float64{}
			}
		}
		foldScenario(st, vals, failed)
		if p.OnCell != nil {
			for c := 0; c < nc; c++ {
				p.OnCell(i, c, vals[c], failed[c])
			}
		}
		st.Done++
	}
}

// foldScenario folds one scenario's per-combo values. vals and failed
// are the caller's reusable batch buffers, overwritten per scenario, so
// nothing here may allocate or hold a reference to them past the call.
//
//bce:hotpath
//bce:scratch
func foldScenario(st *Study, vals [][NumMetrics]float64, failed []bool) {
	for c := range st.Aggs {
		ag := &st.Aggs[c]
		if failed[c] {
			ag.Failed++
			continue
		}
		for m := 0; m < NumMetrics; m++ {
			ag.Mean[m].Add(vals[c][m])
			ag.Quants[m].Add(vals[c][m])
		}
	}
	for pi := range st.Pairs {
		pr := &st.Pairs[pi]
		if failed[pr.A] || failed[pr.B] {
			continue
		}
		for m := 0; m < NumMetrics; m++ {
			switch {
			case vals[pr.A][m] < vals[pr.B][m]:
				pr.AWins[m]++
			case vals[pr.B][m] < vals[pr.A][m]:
				pr.BWins[m]++
			default:
				pr.Ties[m]++
			}
		}
	}
}

// Mean returns the population mean and 95% CI half-width of one metric
// for one combo (failed scenarios excluded).
func (st *Study) Mean(combo, metric int) (mean, ci float64) {
	m := &st.Aggs[combo].Mean[metric]
	return m.Mean(), m.CI95()
}

// Quantile returns the estimated quantile of one metric for one combo,
// accurate to the sketch's relative-error bound (stats.MergingSketch).
func (st *Study) Quantile(combo, metric int, p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("population: quantile %v outside [0,1]", p)
	}
	return st.Aggs[combo].Quants[metric].Quantile(p), nil
}

// PairedWins returns the paired per-scenario comparison of combos a and
// b (indices into Combos) on one metric: scenarios where a was strictly
// better (lower), where b was, and ties.
func (st *Study) PairedWins(metric, a, b int) (aWins, bWins, ties int) {
	if a == b {
		return 0, 0, st.Done - st.Aggs[a].Failed
	}
	swap := false
	if a > b {
		a, b, swap = b, a, true
	}
	for _, pr := range st.Pairs {
		if pr.A == a && pr.B == b {
			if swap {
				return pr.BWins[metric], pr.AWins[metric], pr.Ties[metric]
			}
			return pr.AWins[metric], pr.BWins[metric], pr.Ties[metric]
		}
	}
	return 0, 0, 0
}
