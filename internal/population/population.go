// Package population is the streaming Monte-Carlo study engine — the
// paper's §6.2 direction ("characterize the actual population of
// scenarios, and develop a system, perhaps based on Monte-Carlo
// sampling, to study policies over the entire population") built to the
// ROADMAP's scale: millions of scenarios, bounded memory.
//
// Scenarios are sampled on the fly (scenario i is always drawn from an
// RNG seeded with DeriveSeed(seed, i), so the population is a pure
// function of the base seed), sharded across the runner worker pool in
// bounded batches of (combo, scenario) cells, and folded into online
// aggregates: a Welford mean/variance and a fixed-size P² quantile
// sketch per (combo, figure of merit), plus paired per-scenario
// win/loss counts for every combo pair. Memory is O(combos), not
// O(scenarios) — nothing per-scenario is retained.
//
// Determinism: every cell's result is a pure function of (seed, i,
// combo), and folding happens strictly in scenario order, so the final
// aggregates are bit-identical for any worker count and any batch
// size. Checkpoints serialize the exact aggregate state (Go's JSON
// float64 encoding round-trips exactly), so a run killed at a batch
// boundary and resumed reports aggregates bit-identical to an
// uninterrupted run.
//
// Concurrency: this package is single-goroutine by design and owns no
// locks — parallelism lives entirely in runner.Batch, and every fold
// into the aggregates happens on the caller's goroutine after the
// batch returns. There are therefore no //bce:guardedby annotations
// here: no field is ever shared between goroutines (the concurrency
// analyzers, DESIGN.md §10.2, verify the absence of go statements and
// sync primitives rather than a locking discipline).
package population

import (
	"context"
	"fmt"

	"bce/internal/client"
	"bce/internal/runner"
	"bce/internal/scenario"
	"bce/internal/stats"
)

// Combo is one policy combination under study.
type Combo struct {
	Sched string `json:"sched"` // "JS-LOCAL", "JS-GLOBAL", "JS-WRR", "JS-LLF"
	Fetch string `json:"fetch"` // "JF-ORIG", "JF-HYSTERESIS", "JF-SPREAD"
}

// String returns "sched/fetch".
func (c Combo) String() string { return c.Sched + "/" + c.Fetch }

// DefaultCombos is the policy matrix the paper's variants span.
func DefaultCombos() []Combo {
	return []Combo{
		{"JS-LOCAL", "JF-ORIG"},
		{"JS-LOCAL", "JF-HYSTERESIS"},
		{"JS-GLOBAL", "JF-ORIG"},
		{"JS-GLOBAL", "JF-HYSTERESIS"},
		{"JS-WRR", "JF-HYSTERESIS"},
	}
}

// NumMetrics is the number of figures of merit folded per cell.
const NumMetrics = 5

// Params configures a streaming population study.
type Params struct {
	// Combos is the policy matrix (DefaultCombos when empty).
	Combos []Combo
	// Scenarios is the total number of scenarios to evaluate.
	Scenarios int
	// Seed is the base seed: scenario i is sampled from an RNG seeded
	// with DeriveSeed(Seed, i), independent of batching and workers.
	Seed int64
	// Population tunes the scenario sampler.
	Population scenario.PopulationParams
	// BatchSize bounds how many scenarios are in flight at once; the
	// engine holds BatchSize×len(Combos) results at peak (default 64).
	BatchSize int
	// CheckpointPath, when nonempty, receives an atomically written
	// JSON checkpoint every CheckpointEvery batches and on
	// cancellation, enabling bit-identical resume.
	CheckpointPath string
	// CheckpointEvery is the number of batches between checkpoint
	// writes (default 1).
	CheckpointEvery int

	// Source overrides the population sampler with a fixed scenario
	// source: it must return the i-th scenario deterministically. Used
	// by the small-N study adapter.
	Source func(i int) (*scenario.Scenario, error)
	// OnCell, when set, observes every folded cell in fold order
	// (scenario-major, then combo). Failed cells report failed=true
	// with a zero value.
	OnCell func(scenarioIdx, comboIdx int, vals [NumMetrics]float64, failed bool)
	// Progress, when set, is called after every folded batch with the
	// number of scenarios completed and the target.
	Progress func(done, total int)

	// runBatch substitutes the execution engine in tests; nil means
	// runner.Batch.
	runBatch func(ctx context.Context, specs []runner.Spec, opts ...runner.Option) ([]runner.RunResult, error)
}

func (p Params) withDefaults() Params {
	if len(p.Combos) == 0 {
		p.Combos = DefaultCombos()
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 64
	}
	if p.CheckpointEvery <= 0 {
		p.CheckpointEvery = 1
	}
	if p.runBatch == nil {
		p.runBatch = runner.Batch
	}
	return p
}

// ComboAgg is the online aggregate state for one combo: a Welford
// accumulator and a quantile sketch per figure of merit, plus the
// failed-cell count. All state is serializable and resumes exactly.
type ComboAgg struct {
	Failed int                              `json:"failed"`
	Mean   [NumMetrics]stats.MeanState      `json:"mean"`
	Quants [NumMetrics]stats.QuantileSketch `json:"quants"`
}

// PairAgg counts paired per-scenario outcomes between combos A and B
// (indices into Study.Combos, A < B) for every metric. Lower is better,
// so AWins[m] counts scenarios where combo A had the strictly lower
// value of metric m; scenarios where either combo failed are skipped.
type PairAgg struct {
	A     int             `json:"a"`
	B     int             `json:"b"`
	AWins [NumMetrics]int `json:"a_wins"`
	BWins [NumMetrics]int `json:"b_wins"`
	Ties  [NumMetrics]int `json:"ties"`
}

// Study is both the running aggregate state and the final result; its
// JSON encoding is the checkpoint format.
type Study struct {
	Version    int                       `json:"version"`
	Seed       int64                     `json:"seed"`
	Population scenario.PopulationParams `json:"population"`
	Combos     []Combo                   `json:"combos"`
	// Target is the scenario count the run is heading for; Done is how
	// many have been folded. A checkpoint with Done < Target is a run
	// in flight (killed or still going); Resume picks up at Done.
	Target int        `json:"target"`
	Done   int        `json:"done"`
	Aggs   []ComboAgg `json:"aggs"`
	Pairs  []PairAgg  `json:"pairs"`
}

// checkpointVersion guards the checkpoint format.
const checkpointVersion = 1

// newStudy builds the empty aggregate state for p.
func newStudy(p Params) *Study {
	st := &Study{
		Version:    checkpointVersion,
		Seed:       p.Seed,
		Population: p.Population,
		Combos:     append([]Combo(nil), p.Combos...),
		Target:     p.Scenarios,
		Aggs:       make([]ComboAgg, len(p.Combos)),
	}
	for c := range st.Aggs {
		for m := 0; m < NumMetrics; m++ {
			st.Aggs[c].Quants[m] = stats.NewQuantileSketch()
		}
	}
	for a := 0; a < len(p.Combos); a++ {
		for b := a + 1; b < len(p.Combos); b++ {
			st.Pairs = append(st.Pairs, PairAgg{A: a, B: b})
		}
	}
	return st
}

// Run executes a fresh streaming study. On cancellation it writes a
// final checkpoint (when CheckpointPath is set) and returns the partial
// study alongside the error, so callers can inspect or resume it.
func Run(ctx context.Context, p Params, opts ...runner.Option) (*Study, error) {
	p = p.withDefaults()
	if p.Scenarios <= 0 {
		return nil, fmt.Errorf("population: no scenarios requested")
	}
	return run(ctx, newStudy(p), p, opts...)
}

// Resume continues a study from a checkpoint file. The checkpoint's
// seed, combos and population parameters override p's; p.Scenarios,
// when larger than the checkpoint's target, extends the run to the new
// total (0 keeps the original target). The checkpoint is rewritten as
// the run progresses (to p.CheckpointPath, defaulting to path).
func Resume(ctx context.Context, path string, p Params, opts ...runner.Option) (*Study, error) {
	st, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	p = p.withDefaults()
	p.Seed = st.Seed
	p.Combos = st.Combos
	p.Population = st.Population
	if p.CheckpointPath == "" {
		p.CheckpointPath = path
	}
	if p.Scenarios > st.Target {
		st.Target = p.Scenarios
	}
	p.Scenarios = st.Target
	return run(ctx, st, p, opts...)
}

// run drives the batched sample → emulate → fold loop from st.Done to
// st.Target.
func run(ctx context.Context, st *Study, p Params, opts ...runner.Option) (*Study, error) {
	sinceCheckpoint := 0
	checkpoint := func() error {
		if p.CheckpointPath == "" {
			return nil
		}
		return writeCheckpoint(p.CheckpointPath, st)
	}
	for st.Done < st.Target {
		lo, hi := st.Done, st.Done+p.BatchSize
		if hi > st.Target {
			hi = st.Target
		}
		specs, errs := batchSpecs(p, lo, hi)
		results, err := p.runBatch(ctx, specs, opts...)
		if err != nil {
			// Canceled (or failed fast) mid-batch: persist the folded
			// prefix so the run can resume exactly where it stopped.
			if ckErr := checkpoint(); ckErr != nil {
				return st, fmt.Errorf("population: %w (checkpoint also failed: %v)", err, ckErr)
			}
			return st, err
		}
		foldBatch(st, p, lo, hi, specs, errs, results)
		if p.Progress != nil {
			p.Progress(st.Done, st.Target)
		}
		sinceCheckpoint++
		if sinceCheckpoint >= p.CheckpointEvery {
			if err := checkpoint(); err != nil {
				return st, err
			}
			sinceCheckpoint = 0
		}
	}
	if err := checkpoint(); err != nil {
		return st, err
	}
	return st, nil
}

// batchSpecs builds the (scenario, combo) cell specs for scenarios
// [lo,hi), scenario-major. Scenarios that fail to sample or configure
// are recorded in errs (indexed like specs) and run as no-ops.
func batchSpecs(p Params, lo, hi int) ([]runner.Spec, []error) {
	nc := len(p.Combos)
	specs := make([]runner.Spec, 0, (hi-lo)*nc)
	errs := make([]error, (hi-lo)*nc)
	for i := lo; i < hi; i++ {
		scn, err := sampleScenario(p, i)
		for c := range p.Combos {
			cell := (i-lo)*nc + c
			if err != nil {
				errs[cell] = err
				err := err
				specs = append(specs, runner.Spec{
					Label: fmt.Sprintf("pop-%07d (bad sample)", i),
					Make:  func() (client.Config, error) { return client.Config{}, err },
				})
				continue
			}
			combo := p.Combos[c]
			scn := scn
			specs = append(specs, runner.Spec{
				Label: fmt.Sprintf("%s/%s", scn.Name, combo),
				Make:  func() (client.Config, error) { return comboConfig(scn, combo) },
			})
		}
	}
	return specs, errs
}

// sampleScenario materializes scenario i: from the fixed Source, or
// drawn from the population model with a per-index derived seed.
func sampleScenario(p Params, i int) (*scenario.Scenario, error) {
	if p.Source != nil {
		return p.Source(i)
	}
	rng := stats.NewRNG(runner.DeriveSeed(p.Seed, i))
	scn := scenario.Sample(rng, p.Population)
	scn.Name = fmt.Sprintf("pop-%07d", i)
	return scn, nil
}

// comboConfig builds the config for one (scenario, combo) cell; the
// scenario is copied so concurrent cells never share mutable state.
func comboConfig(base *scenario.Scenario, combo Combo) (client.Config, error) {
	s := *base
	s.Policies.JobSched = combo.Sched
	s.Policies.JobFetch = combo.Fetch
	return s.Config()
}

// foldBatch folds one batch of results into the aggregates, strictly
// in scenario order (then combo order), so the accumulated floating-
// point state is independent of worker scheduling.
func foldBatch(st *Study, p Params, lo, hi int, specs []runner.Spec, errs []error, results []runner.RunResult) {
	nc := len(st.Combos)
	vals := make([][NumMetrics]float64, nc)
	failed := make([]bool, nc)
	for i := lo; i < hi; i++ {
		for c := 0; c < nc; c++ {
			cell := (i-lo)*nc + c
			switch {
			case errs[cell] != nil:
				failed[c] = true
			case results[cell].Err != nil:
				failed[c] = true
			default:
				vals[c] = results[cell].Result.Metrics.Values()
				failed[c] = false
			}
			if failed[c] {
				vals[c] = [NumMetrics]float64{}
			}
		}
		foldScenario(st, vals, failed)
		if p.OnCell != nil {
			for c := 0; c < nc; c++ {
				p.OnCell(i, c, vals[c], failed[c])
			}
		}
		st.Done++
	}
}

// foldScenario folds one scenario's per-combo values.
func foldScenario(st *Study, vals [][NumMetrics]float64, failed []bool) {
	for c := range st.Aggs {
		if failed[c] {
			st.Aggs[c].Failed++
			continue
		}
		for m := 0; m < NumMetrics; m++ {
			mean := stats.MeanFromState(st.Aggs[c].Mean[m])
			mean.Add(vals[c][m])
			st.Aggs[c].Mean[m] = mean.State()
			st.Aggs[c].Quants[m].Add(vals[c][m])
		}
	}
	for pi := range st.Pairs {
		pr := &st.Pairs[pi]
		if failed[pr.A] || failed[pr.B] {
			continue
		}
		for m := 0; m < NumMetrics; m++ {
			switch {
			case vals[pr.A][m] < vals[pr.B][m]:
				pr.AWins[m]++
			case vals[pr.B][m] < vals[pr.A][m]:
				pr.BWins[m]++
			default:
				pr.Ties[m]++
			}
		}
	}
}

// Mean returns the population mean and 95% CI half-width of one metric
// for one combo (failed scenarios excluded).
func (st *Study) Mean(combo, metric int) (mean, ci float64) {
	m := stats.MeanFromState(st.Aggs[combo].Mean[metric])
	return m.Mean(), m.CI95()
}

// Quantile returns the estimated quantile of one metric for one combo;
// p must be one of stats.DefaultQuantiles.
func (st *Study) Quantile(combo, metric int, p float64) (float64, error) {
	return st.Aggs[combo].Quants[metric].Quantile(p)
}

// PairedWins returns the paired per-scenario comparison of combos a and
// b (indices into Combos) on one metric: scenarios where a was strictly
// better (lower), where b was, and ties.
func (st *Study) PairedWins(metric, a, b int) (aWins, bWins, ties int) {
	if a == b {
		return 0, 0, st.Done - st.Aggs[a].Failed
	}
	swap := false
	if a > b {
		a, b, swap = b, a, true
	}
	for _, pr := range st.Pairs {
		if pr.A == a && pr.B == b {
			if swap {
				return pr.BWins[metric], pr.AWins[metric], pr.Ties[metric]
			}
			return pr.AWins[metric], pr.BWins[metric], pr.Ties[metric]
		}
	}
	return 0, 0, 0
}
