package population

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bce/internal/scenario"
	"bce/internal/stats"
)

// shardParams is stubParams for the shard [lo, lo+n).
func shardParams(lo, n int, ck string) Params {
	p := stubParams(n, ck)
	p.Lo = lo
	return p
}

// TestShardedMergeMatchesSingleFold is the tentpole property at the
// acceptance-criteria scale: split 10k scenarios into random contiguous
// shards, fold each shard in its own Study, merge the shards back in a
// shuffled order, and require the merged state to be bit-identical to
// the single-process fold.
func TestShardedMergeMatchesSingleFold(t *testing.T) {
	const n = 10_000
	whole, err := Run(context.Background(), stubParams(n, ""))
	if err != nil {
		t.Fatal(err)
	}
	want := studyJSON(t, whole)

	g := stats.NewRNG(1234)
	for trial := 0; trial < 3; trial++ {
		k := 2 + g.Intn(5)
		cuts := map[int]bool{}
		for len(cuts) < k-1 {
			cuts[1+g.Intn(n-1)] = true
		}
		pts := []int{0}
		for c := range cuts {
			pts = append(pts, c)
		}
		pts = append(pts, n)
		sortInts(pts)

		shards := make([]*Study, k)
		for i := 0; i < k; i++ {
			st, err := Run(context.Background(), shardParams(pts[i], pts[i+1]-pts[i], ""))
			if err != nil {
				t.Fatal(err)
			}
			shards[i] = st
		}
		// Shuffle: MergeStudies must not care about input order.
		for i := range shards {
			j := i + g.Intn(len(shards)-i)
			shards[i], shards[j] = shards[j], shards[i]
		}
		merged, err := MergeStudies(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := studyJSON(t, merged); got != want {
			t.Fatalf("trial %d (cuts %v): merged shards differ from single fold", trial, pts)
		}

		// Associativity: merge an adjacent pair first, then fold the
		// partial merge in with the rest — still bit-identical. (Partial
		// merges must cover a contiguous range, so nest over a sorted
		// copy.)
		if k >= 3 {
			byLo := append([]*Study(nil), shards...)
			for i := 1; i < len(byLo); i++ {
				for j := i; j > 0 && byLo[j].Lo < byLo[j-1].Lo; j-- {
					byLo[j], byLo[j-1] = byLo[j-1], byLo[j]
				}
			}
			head, err := MergeStudies(byLo[:2])
			if err != nil {
				t.Fatal(err)
			}
			nested, err := MergeStudies(append([]*Study{head}, byLo[2:]...))
			if err != nil {
				t.Fatal(err)
			}
			if got := studyJSON(t, nested); got != want {
				t.Fatalf("trial %d: nested merge differs from single fold", trial)
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// A shard killed mid-range and resumed must equal the uninterrupted
// shard — the Lo-offset cursor arithmetic has to survive checkpoints.
func TestShardResumeEquivalence(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "shard.json")

	straight, err := Run(context.Background(), shardParams(3_000, 2_000, ""))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := shardParams(3_000, 2_000, ck)
	p.Progress = func(done, total int) {
		if done >= 1_000 {
			cancel()
		}
	}
	if _, err := Run(ctx, p); err == nil {
		t.Fatal("canceled run reported no error")
	}

	resumed, err := Resume(context.Background(), ck, Params{RunBatch: stubBatch})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Lo != 3_000 || resumed.Done != 2_000 {
		t.Fatalf("resumed shard at lo=%d done=%d, want lo=3000 done=2000", resumed.Lo, resumed.Done)
	}
	if studyJSON(t, straight) != studyJSON(t, resumed) {
		t.Fatal("resumed shard differs from uninterrupted shard")
	}
}

func TestMergeStudiesRejectsBadShards(t *testing.T) {
	run := func(lo, n int) *Study {
		st, err := Run(context.Background(), shardParams(lo, n, ""))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(0, 100), run(100, 100)

	if _, err := MergeStudies(nil); err == nil {
		t.Error("empty merge should fail")
	}

	gap := run(250, 50)
	if _, err := MergeStudies([]*Study{a, gap}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap merge: got %v, want gap error", err)
	}

	overlap := run(50, 100)
	if _, err := MergeStudies([]*Study{a, overlap}); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap merge: got %v, want overlap error", err)
	}

	incomplete, err := cloneStudy(b)
	if err != nil {
		t.Fatal(err)
	}
	incomplete.Done--
	if _, err := MergeStudies([]*Study{a, incomplete}); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete merge: got %v, want incomplete error", err)
	}

	otherSeed, err := cloneStudy(b)
	if err != nil {
		t.Fatal(err)
	}
	otherSeed.Seed = 7
	if _, err := MergeStudies([]*Study{a, otherSeed}); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("seed-mismatch merge: got %v, want seed error", err)
	}
}

// MergeStudies must not mutate its inputs: merging twice from the same
// shards gives the same answer.
func TestMergeStudiesPure(t *testing.T) {
	var shards []*Study
	for _, r := range [][2]int{{0, 300}, {300, 200}, {500, 500}} {
		st, err := Run(context.Background(), shardParams(r[0], r[1], ""))
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, st)
	}
	before := make([]string, len(shards))
	for i, st := range shards {
		before[i] = studyJSON(t, st)
	}
	m1, err := MergeStudies(shards)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MergeStudies(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range shards {
		if studyJSON(t, st) != before[i] {
			t.Errorf("merge mutated shard %d", i)
		}
	}
	if studyJSON(t, m1) != studyJSON(t, m2) {
		t.Error("repeat merge of the same shards diverged")
	}
}

func TestDiffParams(t *testing.T) {
	st, err := Run(context.Background(), stubParams(50, ""))
	if err != nil {
		t.Fatal(err)
	}

	if diffs := DiffParams(st, stubParams(50, "")); len(diffs) != 0 {
		t.Fatalf("identical params reported diffs: %v", diffs)
	}

	p := stubParams(50, "")
	p.Seed = 99
	p.Combos = []Combo{{"JS-LOCAL", "JF-ORIG"}}
	p.Population = scenario.PopulationParams{DurationDays: 3, MaxProjects: 9, GPUFraction: scenario.Frac(0.5)}
	p.Lo = 10
	diffs := DiffParams(st, p)
	want := []string{"seed", "combos", "days", "max-projects", "gpu-frac", "shard offset"}
	if len(diffs) != len(want) {
		t.Fatalf("got %d diffs (%v), want %d", len(diffs), diffs, len(want))
	}
	for i, f := range want {
		if diffs[i].Field != f {
			t.Errorf("diff %d: field %q, want %q", i, diffs[i].Field, f)
		}
		if diffs[i].String() == "" {
			t.Errorf("diff %d renders empty", i)
		}
	}
}

// Satellite bugfix regression: a failed rename must surface the error,
// leave any previous checkpoint untouched, and clean up the temp file.
func TestSaveCheckpointRenameError(t *testing.T) {
	dir := t.TempDir()
	st, err := Run(context.Background(), stubParams(10, ""))
	if err != nil {
		t.Fatal(err)
	}

	// Renaming a file over a non-empty directory fails on every
	// platform we run on.
	target := filepath.Join(dir, "ck.json")
	if err := os.MkdirAll(filepath.Join(target, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(target, st); err == nil {
		t.Fatal("rename onto a non-empty directory should fail")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".checkpoint-") {
			t.Errorf("temp file %s left behind after failed rename", e.Name())
		}
	}
}

// The happy path must still fsync-and-swap: a save over an existing
// checkpoint replaces it atomically and loads back bit-identical.
func TestSaveCheckpointReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	a, err := Run(context.Background(), stubParams(10, ""))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), stubParams(20, ""))
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, a); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if studyJSON(t, got) != studyJSON(t, b) {
		t.Fatal("reloaded checkpoint differs from the last save")
	}
}
