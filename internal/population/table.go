// Text rendering of a Study: population means with confidence
// intervals, estimated quantiles, and paired per-scenario wins — the
// controller's console output.
package population

import (
	"fmt"
	"strings"

	"bce/internal/metrics"
)

// Table renders the population means with 95% confidence intervals,
// one row per combo.
func (st *Study) Table() string {
	var b strings.Builder
	names := metrics.Names()
	fmt.Fprintf(&b, "%-26s", "policy")
	for _, n := range names {
		fmt.Fprintf(&b, " %16s", n)
	}
	b.WriteByte('\n')
	for c, combo := range st.Combos {
		fmt.Fprintf(&b, "%-26s", combo.String())
		for m := range names {
			mean, ci := st.Mean(c, m)
			fmt.Fprintf(&b, " %16s", fmt.Sprintf("%.4f±%.3f", mean, ci))
		}
		if f := st.Aggs[c].Failed; f > 0 {
			fmt.Fprintf(&b, "  (%d failed)", f)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// QuantileTable renders the estimated quantiles of one metric.
func (st *Study) QuantileTable(metric int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s quantiles\n%-26s", metrics.Names()[metric], "policy")
	ps := []float64{0.25, 0.5, 0.75, 0.9, 0.95}
	for _, p := range ps {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("p%g", 100*p))
	}
	b.WriteByte('\n')
	for c, combo := range st.Combos {
		fmt.Fprintf(&b, "%-26s", combo.String())
		for _, p := range ps {
			v, err := st.Quantile(c, metric, p)
			if err != nil {
				fmt.Fprintf(&b, " %8s", "-")
				continue
			}
			fmt.Fprintf(&b, " %8.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WinsTable renders the paired comparison of every combo against the
// first (the baseline) for one metric.
func (st *Study) WinsTable(metric int) string {
	if len(st.Combos) < 2 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "paired wins on %s vs baseline %s (lower is better)\n",
		metrics.Names()[metric], st.Combos[0])
	for c := 1; c < len(st.Combos); c++ {
		cw, bw, ties := st.PairedWins(metric, c, 0)
		fmt.Fprintf(&b, "  %-26s wins %3d, loses %3d, ties %3d\n",
			st.Combos[c].String(), cw, bw, ties)
	}
	return b.String()
}
