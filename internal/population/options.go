package population

import "bce/internal/runner"

// The population engine once declared its own worker/progress option
// types; they are now thin aliases of the shared option set in
// internal/runner, kept so pre-consolidation call sites compile.
// (Params.Progress is different: it reports folded samples, not runs,
// and stays a Params field.)

// Option configures the batch engine underlying Run and Resume.
//
// Deprecated: use runner.Option (re-exported as bce.BatchOption).
type Option = runner.Option

// WithWorkers bounds the engine's worker pool.
//
// Deprecated: use runner.WithWorkers.
var WithWorkers = runner.WithWorkers

// WithProgress installs a live batch-progress callback.
//
// Deprecated: use runner.WithProgress.
var WithProgress = runner.WithProgress
