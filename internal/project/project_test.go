package project

import (
	"testing"

	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/stats"
)

func cpuApp(mean float64) AppSpec {
	return AppSpec{
		Name:             "cpu",
		Usage:            job.Usage{AvgCPUs: 1},
		MeanDuration:     mean,
		LatencyBound:     mean * 2,
		CheckpointPeriod: 60,
	}
}

func gpuApp(mean float64) AppSpec {
	return AppSpec{
		Name:             "gpu",
		Usage:            job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1},
		MeanDuration:     mean,
		LatencyBound:     mean * 2,
		CheckpointPeriod: 60,
	}
}

func newTestServer(t *testing.T, spec Spec) *Server {
	t.Helper()
	s, err := NewServer(spec, 0, stats.NewRNG(1))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Name: "p", Share: 0, Apps: []AppSpec{cpuApp(100)}},
		{Name: "p", Share: 1},
		{Name: "p", Share: 1, Apps: []AppSpec{{Name: "x"}}},
		{Name: "p", Share: 1, Apps: []AppSpec{{
			Name: "x", Usage: job.Usage{AvgCPUs: 1}, MeanDuration: 10, StdevDuration: -1, LatencyBound: 10}}},
		{Name: "p", Share: 1, Apps: []AppSpec{{
			Name: "x", Usage: job.Usage{AvgCPUs: 1}, MeanDuration: 10, LatencyBound: 0}}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("case %d: Validate accepted invalid spec", i)
		}
	}
}

func TestDeadlineCheckString(t *testing.T) {
	if NoCheck.String() != "none" || SimpleCheck.String() != "simple" || AvailCheck.String() != "availability" {
		t.Fatal("unexpected policy names")
	}
}

func TestSuppliesType(t *testing.T) {
	s := newTestServer(t, Spec{Name: "p", Share: 1, Apps: []AppSpec{cpuApp(100), gpuApp(100)}})
	if !s.SuppliesType(host.CPU) || !s.SuppliesType(host.NvidiaGPU) || s.SuppliesType(host.AtiGPU) {
		t.Fatal("SuppliesType classification wrong")
	}
}

func TestDispatchFillsRequest(t *testing.T) {
	s := newTestServer(t, Spec{Name: "p", Share: 1, Apps: []AppSpec{cpuApp(1000)}})
	tasks := s.Dispatch(0, []Request{{Type: host.CPU, Instances: 2, Seconds: 5000}}, HostInfo{OnFrac: 1})
	if len(tasks) == 0 {
		t.Fatal("no tasks dispatched")
	}
	var secs float64
	for _, tk := range tasks {
		if err := tk.Validate(); err != nil {
			t.Fatalf("dispatched invalid task: %v", err)
		}
		if tk.Deadline != tk.ReceivedAt+2000 {
			t.Fatalf("deadline %v, want receipt+latency bound", tk.Deadline)
		}
		secs += tk.EstDuration * tk.Usage.Instances()
	}
	if secs < 5000 {
		t.Fatalf("dispatched %v instance-seconds, want >= 5000", secs)
	}
	if s.Dispatched != len(tasks) {
		t.Fatalf("Dispatched = %d, want %d", s.Dispatched, len(tasks))
	}
}

func TestDispatchHonoursJobCap(t *testing.T) {
	s := newTestServer(t, Spec{Name: "p", Share: 1, MaxJobsPerRPC: 3, Apps: []AppSpec{cpuApp(10)}})
	tasks := s.Dispatch(0, []Request{{Type: host.CPU, Seconds: 1e6}}, HostInfo{})
	if len(tasks) != 3 {
		t.Fatalf("got %d tasks, want cap of 3", len(tasks))
	}
}

func TestDispatchEmptyRequest(t *testing.T) {
	s := newTestServer(t, Spec{Name: "p", Share: 1, Apps: []AppSpec{cpuApp(100)}})
	if tasks := s.Dispatch(0, []Request{{Type: host.CPU}}, HostInfo{}); len(tasks) != 0 {
		t.Fatalf("empty request got %d tasks", len(tasks))
	}
	if tasks := s.Dispatch(0, nil, HostInfo{}); len(tasks) != 0 {
		t.Fatal("nil request got tasks")
	}
}

func TestDispatchWrongType(t *testing.T) {
	s := newTestServer(t, Spec{Name: "p", Share: 1, Apps: []AppSpec{cpuApp(100)}})
	tasks := s.Dispatch(0, []Request{{Type: host.NvidiaGPU, Seconds: 1000}}, HostInfo{})
	if len(tasks) != 0 {
		t.Fatal("project without GPU apps dispatched GPU jobs")
	}
}

func TestRuntimesVaryButEstimatesDont(t *testing.T) {
	app := cpuApp(1000)
	app.StdevDuration = 200
	s := newTestServer(t, Spec{Name: "p", Share: 1, Apps: []AppSpec{app}})
	tasks := s.Dispatch(0, []Request{{Type: host.CPU, Seconds: 20000}}, HostInfo{})
	varied := false
	for _, tk := range tasks {
		if tk.EstDuration != 1000 {
			t.Fatalf("estimate %v, want mean 1000", tk.EstDuration)
		}
		if tk.Duration != 1000 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("true runtimes show no variation despite stdev")
	}
}

func TestEstimateErrorInjection(t *testing.T) {
	app := cpuApp(1000)
	app.EstErrBias = 2
	s := newTestServer(t, Spec{Name: "p", Share: 1, Apps: []AppSpec{app}})
	tasks := s.Dispatch(0, []Request{{Type: host.CPU, Seconds: 10000}}, HostInfo{})
	for _, tk := range tasks {
		if tk.EstDuration != 2000 {
			t.Fatalf("biased estimate %v, want 2000", tk.EstDuration)
		}
	}
	app.EstErrSigma = 0.5
	s2 := newTestServer(t, Spec{Name: "p2", Share: 1, Apps: []AppSpec{app}})
	tasks2 := s2.Dispatch(0, []Request{{Type: host.CPU, Seconds: 10000}}, HostInfo{})
	allSame := true
	for _, tk := range tasks2 {
		if tk.EstDuration != 2000 {
			allSame = false
		}
	}
	if allSame && len(tasks2) > 1 {
		t.Fatal("lognormal estimate error produced identical estimates")
	}
}

func TestSimpleDeadlineCheckRefuses(t *testing.T) {
	app := cpuApp(1000)
	app.LatencyBound = 500 // estimate 1000 can never fit
	s := newTestServer(t, Spec{Name: "p", Share: 1, Check: SimpleCheck, Apps: []AppSpec{app}})
	tasks := s.Dispatch(0, []Request{{Type: host.CPU, Seconds: 5000}}, HostInfo{OnFrac: 1})
	if len(tasks) != 0 {
		t.Fatal("SimpleCheck dispatched an infeasible job")
	}
	if s.Refused == 0 {
		t.Fatal("refusal not counted")
	}
}

func TestAvailCheckUsesOnFrac(t *testing.T) {
	app := cpuApp(1000)
	app.LatencyBound = 1500
	s := newTestServer(t, Spec{Name: "p", Share: 1, Check: AvailCheck, Apps: []AppSpec{app}})
	// With full availability 1000 <= 1500: feasible.
	if got := s.Dispatch(0, []Request{{Type: host.CPU, Seconds: 1000}}, HostInfo{OnFrac: 1}); len(got) == 0 {
		t.Fatal("AvailCheck refused a feasible job at full availability")
	}
	// At 50% availability effective runtime 2000 > 1500: refused.
	if got := s.Dispatch(0, []Request{{Type: host.CPU, Seconds: 1000}}, HostInfo{OnFrac: 0.5}); len(got) != 0 {
		t.Fatal("AvailCheck dispatched an infeasible job at half availability")
	}
}

func TestDowntimeBlocksDispatch(t *testing.T) {
	spec := Spec{
		Name: "p", Share: 1, Apps: []AppSpec{cpuApp(100)},
		Downtime: host.AvailSpec{MeanOn: 1000, MeanOff: 1000},
	}
	s := newTestServer(t, spec)
	sawDown, sawUp := false, false
	for now := 0.0; now < 1e5; now += 100 {
		up := s.Reachable(now)
		if up {
			sawUp = true
		} else {
			sawDown = true
			if got := s.Dispatch(now, []Request{{Type: host.CPU, Seconds: 100}}, HostInfo{}); len(got) != 0 {
				t.Fatal("down project dispatched jobs")
			}
		}
	}
	if !sawDown || !sawUp {
		t.Fatalf("downtime process never alternated (down=%v up=%v)", sawDown, sawUp)
	}
}

func TestWorkGapsBlockDispatch(t *testing.T) {
	spec := Spec{
		Name: "p", Share: 1, Apps: []AppSpec{cpuApp(100)},
		WorkGaps: host.AvailSpec{MeanOn: 1000, MeanOff: 1000},
	}
	s := newTestServer(t, spec)
	sawGap := false
	for now := 0.0; now < 1e5; now += 100 {
		if !s.HasWork(now, host.CPU) {
			sawGap = true
			if got := s.Dispatch(now, []Request{{Type: host.CPU, Seconds: 100}}, HostInfo{}); len(got) != 0 {
				t.Fatal("project without work dispatched jobs")
			}
		}
	}
	if !sawGap {
		t.Fatal("work-gap process never went dry")
	}
}

func TestWeightedAppSelection(t *testing.T) {
	a, b := cpuApp(100), cpuApp(100)
	a.Name, b.Name = "heavy", "light"
	a.Weight, b.Weight = 9, 1
	s := newTestServer(t, Spec{Name: "p", Share: 1, MaxJobsPerRPC: 1 << 20, Apps: []AppSpec{a, b}})
	tasks := s.Dispatch(0, []Request{{Type: host.CPU, Seconds: 2e5}}, HostInfo{})
	heavy := 0
	for _, tk := range tasks {
		if tk.Usage.AvgCPUs != 1 {
			t.Fatal("wrong usage")
		}
		if len(tk.Name) > 0 && containsName(tk.Name, "heavy") {
			heavy++
		}
	}
	frac := float64(heavy) / float64(len(tasks))
	if frac < 0.75 || frac > 1.0 {
		t.Fatalf("heavy app fraction %v, want ~0.9", frac)
	}
}

func containsName(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestUniqueJobNames(t *testing.T) {
	s := newTestServer(t, Spec{Name: "p", Share: 1, Apps: []AppSpec{cpuApp(10)}})
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		for _, tk := range s.Dispatch(float64(i), []Request{{Type: host.CPU, Seconds: 100}}, HostInfo{}) {
			if seen[tk.Name] {
				t.Fatalf("duplicate job name %q", tk.Name)
			}
			seen[tk.Name] = true
		}
	}
}

func TestEstimatedQueueSeconds(t *testing.T) {
	got := EstimatedQueueSeconds([]Request{
		{Seconds: 100}, {Seconds: -50}, {Seconds: 200},
	})
	if got != 300 {
		t.Fatalf("EstimatedQueueSeconds = %v, want 300", got)
	}
}
