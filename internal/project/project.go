// Package project is the server-side substrate: a simplified model of a
// BOINC project's scheduler, matching the paper's "BOINC schedulers are
// simulated with a simplified model". A project holds application
// templates (device usage, runtime distribution, latency bound), may be
// sporadically unreachable or out of work, and answers scheduler RPCs by
// dispatching jobs that cover the requested instance-seconds, optionally
// applying a server-side deadline feasibility check.
package project

import (
	"fmt"
	"math"

	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/stats"
)

// AppSpec is a template for the jobs one application supplies.
type AppSpec struct {
	Name  string
	Usage job.Usage

	// MeanDuration/StdevDuration parameterise the normally distributed
	// true runtimes (seconds on this host at full device allocation).
	MeanDuration  float64
	StdevDuration float64

	// LatencyBound sets each job's deadline: dispatch time + bound.
	LatencyBound float64

	// CheckpointPeriod is copied to generated tasks; <= 0 means the
	// application never checkpoints.
	CheckpointPeriod float64

	// EstErrBias and EstErrSigma inject a priori runtime estimate
	// error (paper §4.1 "errors in a priori job runtime estimates"):
	// the estimate sent with each job is
	// MeanDuration · EstErrBias · Lognormal(0, EstErrSigma).
	// Zero values mean an unbiased, exact-mean estimate.
	EstErrBias  float64
	EstErrSigma float64

	// InputBytes/OutputBytes size the jobs' files for the
	// file-transfer extension (0 = no files).
	InputBytes  float64
	OutputBytes float64

	// Weight is the app's share of the project's job stream when a
	// project supplies several kinds of jobs (default 1).
	Weight float64
}

func (a AppSpec) weight() float64 {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

// Validate reports structural problems with the app template.
func (a AppSpec) Validate() error {
	if err := a.Usage.Validate(); err != nil {
		return fmt.Errorf("app %s: %w", a.Name, err)
	}
	if a.MeanDuration <= 0 {
		return fmt.Errorf("app %s: mean duration %v must be positive", a.Name, a.MeanDuration)
	}
	if a.StdevDuration < 0 {
		return fmt.Errorf("app %s: stdev %v must be nonnegative", a.Name, a.StdevDuration)
	}
	if a.LatencyBound <= 0 {
		return fmt.Errorf("app %s: latency bound %v must be positive", a.Name, a.LatencyBound)
	}
	return nil
}

// DeadlineCheck selects the server's dispatch-time feasibility policy,
// one of the emulator's server-side policy knobs (paper §4.3 mentions
// "server deadline-check policies" as a BCE input).
type DeadlineCheck int

const (
	// NoCheck dispatches regardless of feasibility.
	NoCheck DeadlineCheck = iota
	// SimpleCheck refuses jobs whose estimated runtime exceeds the
	// latency bound outright.
	SimpleCheck
	// AvailCheck additionally discounts the host's availability
	// fraction: est/on_frac must fit in the bound.
	AvailCheck
)

// String returns the policy name.
func (d DeadlineCheck) String() string {
	switch d {
	case NoCheck:
		return "none"
	case SimpleCheck:
		return "simple"
	case AvailCheck:
		return "availability"
	}
	return fmt.Sprintf("DeadlineCheck(%d)", int(d))
}

// Spec describes one attached project in a scenario.
type Spec struct {
	Name  string
	Share float64 // volunteer-assigned resource share (paper §2.1)
	Apps  []AppSpec

	// Downtime models sporadic maintenance: periods when scheduler
	// RPCs fail. MeanOff == 0 means always reachable. (Interpreted
	// as MeanOn = mean up period, MeanOff = mean down period.)
	Downtime host.AvailSpec

	// WorkGaps models periods when the project is up but has no jobs
	// to send. MeanOff == 0 means jobs are always available.
	WorkGaps host.AvailSpec

	// Check is the server deadline-check policy.
	Check DeadlineCheck

	// MaxJobsPerRPC caps the jobs sent per scheduler reply
	// (default 64).
	MaxJobsPerRPC int
}

// Validate reports structural problems with the project spec.
func (s Spec) Validate() error {
	if s.Share <= 0 {
		return fmt.Errorf("project %s: share %v must be positive", s.Name, s.Share)
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("project %s: no applications", s.Name)
	}
	for _, a := range s.Apps {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("project %s: %w", s.Name, err)
		}
	}
	return nil
}

// Request is one processor type's slice of a scheduler RPC work request
// (paper §3.4): the client asks for enough jobs to occupy Instances idle
// instances and to add Seconds instance-seconds of queued work.
type Request struct {
	Type      host.ProcType
	Instances float64
	Seconds   float64
}

// HostInfo carries the host facts the server uses for deadline checks.
type HostInfo struct {
	OnFrac float64 // recent-average available fraction
}

// Server is the runtime state of one project's scheduler.
type Server struct {
	Spec  Spec
	Index int // project index within the scenario

	rng       *stats.RNG
	jobSeq    int
	reachable *flipFlop
	hasWork   *flipFlop

	// Dispatched counts jobs sent; Refused counts jobs withheld by the
	// deadline check.
	Dispatched int
	Refused    int
}

// flipFlop tracks an on/off process lazily: it stores the schedule of
// state changes as they are generated so queries at increasing times are
// cheap.
type flipFlop struct {
	proc    *host.Process
	always  bool
	until   float64 // time current period ends
	on      bool
	started bool
}

func newFlipFlop(spec host.AvailSpec, rng *stats.RNG) *flipFlop {
	if spec.MeanOff <= 0 {
		return &flipFlop{always: true, on: true}
	}
	return &flipFlop{proc: host.NewProcess(spec, rng)}
}

// stateAt returns whether the process is "on" at time t; t must be
// nondecreasing across calls.
func (f *flipFlop) stateAt(t float64) bool {
	if f.always {
		return true
	}
	if !f.started {
		d, on := f.proc.Next()
		f.until, f.on, f.started = d, on, true
	}
	for t >= f.until {
		d, on := f.proc.Next()
		f.until += d
		f.on = on
		if d <= 0 { // defensive: zero-length period
			f.until += 1e-6
		}
	}
	return f.on
}

// NewServer creates a project server with its own random stream.
func NewServer(spec Spec, index int, rng *stats.RNG) (*Server, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.MaxJobsPerRPC <= 0 {
		spec.MaxJobsPerRPC = 64
	}
	s := &Server{Spec: spec, Index: index, rng: rng}
	s.reachable = newFlipFlop(spec.Downtime, rng.Fork("downtime"))
	s.hasWork = newFlipFlop(spec.WorkGaps, rng.Fork("workgaps"))
	return s, nil
}

// Reachable reports whether the project answers RPCs at time now.
func (s *Server) Reachable(now float64) bool { return s.reachable.stateAt(now) }

// SuppliesType reports whether the project has applications using
// processor type t (the static property; job availability may still gate
// dispatch).
func (s *Server) SuppliesType(t host.ProcType) bool {
	for _, a := range s.Spec.Apps {
		if a.Usage.Type() == t {
			return true
		}
	}
	return false
}

// HasWork reports whether the project can send type-t jobs at time now.
func (s *Server) HasWork(now float64, t host.ProcType) bool {
	return s.SuppliesType(t) && s.hasWork.stateAt(now)
}

// pickApp chooses an application supplying type t, weighted by Weight.
func (s *Server) pickApp(t host.ProcType) *AppSpec {
	var total float64
	for i := range s.Spec.Apps {
		if s.Spec.Apps[i].Usage.Type() == t {
			total += s.Spec.Apps[i].weight()
		}
	}
	if total == 0 {
		return nil
	}
	x := s.rng.Float64() * total
	for i := range s.Spec.Apps {
		a := &s.Spec.Apps[i]
		if a.Usage.Type() != t {
			continue
		}
		x -= a.weight()
		if x <= 0 {
			return a
		}
	}
	// Float round-off: return the last matching app.
	for i := len(s.Spec.Apps) - 1; i >= 0; i-- {
		if s.Spec.Apps[i].Usage.Type() == t {
			return &s.Spec.Apps[i]
		}
	}
	return nil
}

// generate creates one task from an app template at dispatch time now.
func (s *Server) generate(a *AppSpec, now float64) *job.Task {
	s.jobSeq++
	dur := s.rng.TruncNormal(a.MeanDuration, a.StdevDuration,
		a.MeanDuration/10, a.MeanDuration*10)
	est := a.MeanDuration
	if a.EstErrBias > 0 {
		est *= a.EstErrBias
	}
	if a.EstErrSigma > 0 {
		est *= s.rng.Lognormal(0, a.EstErrSigma)
	}
	return &job.Task{
		Name:             fmt.Sprintf("%s_%s_%d", s.Spec.Name, a.Name, s.jobSeq),
		Project:          s.Index,
		Usage:            a.Usage,
		Duration:         dur,
		EstDuration:      est,
		ReceivedAt:       now,
		Deadline:         now + a.LatencyBound,
		CheckpointPeriod: a.CheckpointPeriod,
		InputBytes:       a.InputBytes,
		OutputBytes:      a.OutputBytes,
	}
}

// feasible applies the server deadline-check policy to a candidate.
func (s *Server) feasible(t *job.Task, bound float64, hi HostInfo) bool {
	switch s.Spec.Check {
	case SimpleCheck:
		return t.EstDuration <= bound
	case AvailCheck:
		onf := hi.OnFrac
		if onf <= 0 {
			onf = 1
		}
		return t.EstDuration/onf <= bound
	default:
		return true
	}
}

// Dispatch answers the work-request portion of a scheduler RPC: it
// returns jobs covering the requested idle instances and instance-
// seconds, for each requested type, subject to work availability, the
// per-RPC cap, and the deadline-check policy.
func (s *Server) Dispatch(now float64, reqs []Request, hi HostInfo) []*job.Task {
	if !s.Reachable(now) {
		return nil
	}
	var out []*job.Task
	for _, req := range reqs {
		if req.Seconds <= 0 && req.Instances <= 0 {
			continue
		}
		if !s.HasWork(now, req.Type) {
			continue
		}
		secs := req.Seconds
		inst := req.Instances
		for (secs > 1e-9 || inst > 1e-9) && len(out) < s.Spec.MaxJobsPerRPC {
			a := s.pickApp(req.Type)
			if a == nil {
				break
			}
			t := s.generate(a, now)
			if !s.feasible(t, a.LatencyBound, hi) {
				s.Refused++
				// A systematic refusal would loop forever; one refusal
				// per app per request is representative.
				break
			}
			out = append(out, t)
			s.Dispatched++
			secs -= t.EstDuration * t.Usage.Instances()
			inst -= t.Usage.Instances()
		}
	}
	return out
}

// EstimatedQueueSeconds returns the instance-seconds a set of requests
// asks for, a helper for logging and tests.
func EstimatedQueueSeconds(reqs []Request) float64 {
	var sum float64
	for _, r := range reqs {
		sum += math.Max(0, r.Seconds)
	}
	return sum
}
