// Package fleet implements the paper's §6.2 multi-host extension:
// "Increase system throughput by enforcing resource share across a
// volunteer's hosts, rather than for each host separately. For example,
// if a particular host is well-suited to a particular project, it could
// run only that project, and the difference could be made up on other
// hosts."
//
// A volunteer owns several hosts and assigns one global share per
// project. The naive deployment gives every host the same shares; the
// allocator here instead plans per-host shares: each (host, processor
// type) capacity is distributed among the projects that can actually
// use it, most-constrained resources first, in proportion to each
// project's remaining global deficit. The plan is then evaluated by
// emulating every host and aggregating delivered processing across the
// fleet.
package fleet

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bce/internal/client"
	"bce/internal/host"
	"bce/internal/metrics"
	"bce/internal/project"
	"bce/internal/runner"
	"bce/internal/sched"
	"bce/internal/stats"
)

// Fleet is a volunteer's set of hosts attached to a common set of
// projects with global shares.
type Fleet struct {
	Hosts    []*host.Host
	Projects []project.Spec // Share fields are the volunteer's global shares
}

// Validate reports structural problems.
func (f *Fleet) Validate() error {
	if len(f.Hosts) == 0 {
		return fmt.Errorf("fleet: no hosts")
	}
	if len(f.Projects) == 0 {
		return fmt.Errorf("fleet: no projects")
	}
	for i, h := range f.Hosts {
		if err := h.Hardware.Validate(); err != nil {
			return fmt.Errorf("fleet host %d: %w", i, err)
		}
	}
	for _, p := range f.Projects {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
	}
	return nil
}

// usable reports whether project p has an application that can use
// processor type t on hardware hw.
func usable(p *project.Spec, t host.ProcType, hw *host.Hardware) bool {
	if hw.Proc[t].Count == 0 {
		return false
	}
	for _, a := range p.Apps {
		if a.Usage.Type() == t {
			return true
		}
	}
	return false
}

// Plan is a per-host share assignment: Shares[h][p] is the resource
// share host h gives project p (0 = not attached).
type Plan struct {
	Shares [][]float64
	// Alloc[h][p] is the planned peak FLOPS of host h's devices going
	// to project p (the planner's internal model, for inspection).
	Alloc [][]float64
}

// Uniform returns the naive plan: every host uses the global shares.
func Uniform(f *Fleet) *Plan {
	plan := &Plan{}
	for range f.Hosts {
		row := make([]float64, len(f.Projects))
		for p, spec := range f.Projects {
			row[p] = spec.Share
		}
		plan.Shares = append(plan.Shares, row)
	}
	return plan
}

// resource is one (host, type) capacity pool the planner distributes.
type resource struct {
	host     int
	capacity float64 // peak FLOPS
	eligible []int   // projects that can use it
}

// Optimize plans per-host shares so the fleet-wide split of delivered
// peak FLOPS approaches the global shares. Most-constrained resources
// (fewest eligible projects) are allocated first; each goes to the
// eligible projects in proportion to their remaining global deficits.
func Optimize(f *Fleet) (*Plan, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	// Build resource pools and the global targets.
	var pools []resource
	var totalCap float64
	for h := range f.Hosts {
		hw := &f.Hosts[h].Hardware
		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			cap := hw.PeakFLOPS(t)
			if cap <= 0 {
				continue
			}
			r := resource{host: h, capacity: cap}
			for p := range f.Projects {
				if usable(&f.Projects[p], t, hw) {
					r.eligible = append(r.eligible, p)
				}
			}
			totalCap += cap
			if len(r.eligible) > 0 {
				pools = append(pools, r)
			}
		}
	}
	var shareSum float64
	for _, p := range f.Projects {
		shareSum += p.Share
	}
	deficit := make([]float64, len(f.Projects))
	for p, spec := range f.Projects {
		deficit[p] = spec.Share / shareSum * totalCap
	}

	// Most-constrained first: fewest eligible projects, then smallest
	// capacity; stable order for determinism.
	sort.SliceStable(pools, func(i, j int) bool {
		if len(pools[i].eligible) != len(pools[j].eligible) {
			return len(pools[i].eligible) < len(pools[j].eligible)
		}
		if pools[i].capacity != pools[j].capacity {
			return pools[i].capacity < pools[j].capacity
		}
		return pools[i].host < pools[j].host
	})

	alloc := make([][]float64, len(f.Hosts))
	for h := range alloc {
		alloc[h] = make([]float64, len(f.Projects))
	}
	for _, r := range pools {
		// Distribute this pool in proportion to positive remaining
		// deficits of its eligible projects, capping each grant at the
		// remaining deficit; any surplus beyond the summed deficits (and
		// pools with no project in deficit) falls back to global share
		// proportions (the capacity must go somewhere — idle devices
		// help nobody).
		byShares := func(amount float64) {
			var ss float64
			for _, p := range r.eligible {
				ss += f.Projects[p].Share
			}
			if ss <= 0 {
				return
			}
			for _, p := range r.eligible {
				alloc[r.host][p] += amount * f.Projects[p].Share / ss
			}
		}
		var defSum float64
		for _, p := range r.eligible {
			if deficit[p] > 0 {
				defSum += deficit[p]
			}
		}
		if defSum > 1e-9 {
			grant := math.Min(r.capacity, defSum)
			for _, p := range r.eligible {
				if deficit[p] <= 0 {
					continue
				}
				a := grant * deficit[p] / defSum
				alloc[r.host][p] += a
				deficit[p] -= a
			}
			if leftover := r.capacity - grant; leftover > 1e-9 {
				byShares(leftover)
			}
		} else {
			byShares(r.capacity)
		}
	}

	// Convert each host's planned FLOPS split into shares.
	plan := &Plan{Alloc: alloc}
	for h := range f.Hosts {
		var hostTotal float64
		for _, a := range alloc[h] {
			hostTotal += a
		}
		row := make([]float64, len(f.Projects))
		for p, a := range alloc[h] {
			if hostTotal > 0 {
				row[p] = 100 * a / hostTotal
			}
		}
		plan.Shares = append(plan.Shares, row)
	}
	return plan, nil
}

// PlannedViolation returns the RMS share violation the plan's internal
// allocation model predicts for the whole fleet.
func (f *Fleet) PlannedViolation(plan *Plan) float64 {
	if plan.Alloc == nil {
		return math.NaN()
	}
	got := make([]float64, len(f.Projects))
	var total float64
	for h := range plan.Alloc {
		for p, a := range plan.Alloc[h] {
			got[p] += a
			total += a
		}
	}
	var shareSum float64
	for _, p := range f.Projects {
		shareSum += p.Share
	}
	var rms stats.RMS
	for p, spec := range f.Projects {
		rms.Add(spec.Share/shareSum - got[p]/total)
	}
	return rms.Value()
}

// Evaluation aggregates emulated results across the fleet.
type Evaluation struct {
	PerHost []metrics.Metrics
	// GlobalUsed[p] is fleet-wide delivered peak-FLOPS-seconds.
	GlobalUsed []float64
	// GlobalViolation is the RMS gap between global shares and the
	// fleet-wide delivered split.
	GlobalViolation float64
	// Throughput is total delivered peak-FLOPS-seconds.
	Throughput float64
}

// Evaluate emulates every host under the plan's shares and aggregates.
// Hosts not attached to a project (share 0) skip it entirely.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func (f *Fleet) Evaluate(plan *Plan, duration float64, seed int64) (*Evaluation, error) {
	return f.EvaluateContext(context.Background(), plan, duration, seed)
}

// EvaluateContext emulates the fleet's hosts concurrently on the
// engine's worker pool — one independent emulation per attached host,
// each with a deterministic per-host seed — and aggregates delivered
// processing in host order, so the evaluation is identical for any
// worker count.
func (f *Fleet) EvaluateContext(ctx context.Context, plan *Plan, duration float64, seed int64, opts ...runner.Option) (*Evaluation, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	ev := &Evaluation{GlobalUsed: make([]float64, len(f.Projects))}
	var specs []runner.Spec
	var projIdx [][]int // batch index -> attached project indices
	for h := range f.Hosts {
		// Build this host's project list: only attached projects.
		var pspecs []project.Spec
		idx := make([]int, 0, len(f.Projects))
		for p, spec := range f.Projects {
			if plan.Shares[h][p] > 1e-9 {
				s := spec
				s.Share = plan.Shares[h][p]
				pspecs = append(pspecs, s)
				idx = append(idx, p)
			}
		}
		if len(pspecs) == 0 {
			continue
		}
		h, pspecs := h, pspecs
		specs = append(specs, runner.Spec{
			Label: fmt.Sprintf("fleet host %d", h),
			Make: func() (client.Config, error) {
				return client.Config{
					Host:     f.Hosts[h],
					Projects: pspecs,
					JobSched: sched.JSGlobal, // aggregate accounting matches the plan's model
					Duration: duration,
					// Per-host seeds go through the engine's seed
					// derivation: seed+h*101 collides across
					// evaluations whose base seeds differ by 101.
					Seed: runner.DeriveSeed(seed, h),
				}, nil
			},
		})
		projIdx = append(projIdx, idx)
	}
	results, err := runner.Batch(ctx, specs, append(opts, runner.WithFailFast(true))...)
	if err != nil {
		return nil, err
	}
	for bi, r := range results {
		ev.PerHost = append(ev.PerHost, r.Result.Metrics)
		for i, p := range projIdx[bi] {
			ev.GlobalUsed[p] += r.Result.Metrics.UsedByProject[i]
			ev.Throughput += r.Result.Metrics.UsedByProject[i]
		}
	}
	var shareSum float64
	for _, p := range f.Projects {
		shareSum += p.Share
	}
	if ev.Throughput > 0 && shareSum > 0 {
		var rms stats.RMS
		for p, spec := range f.Projects {
			rms.Add(spec.Share/shareSum - ev.GlobalUsed[p]/ev.Throughput)
		}
		ev.GlobalViolation = rms.Value()
	}
	return ev, nil
}
