package fleet

import (
	"math"
	"testing"

	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
)

func cpuProject(name string, share float64) project.Spec {
	return project.Spec{
		Name: name, Share: share,
		Apps: []project.AppSpec{{
			Name: "cpu", Usage: job.Usage{AvgCPUs: 1},
			MeanDuration: 1000, LatencyBound: 864000, CheckpointPeriod: 60,
		}},
	}
}

func gpuProject(name string, share float64) project.Spec {
	return project.Spec{
		Name: name, Share: share,
		Apps: []project.AppSpec{{
			Name: "gpu", Usage: job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1},
			MeanDuration: 500, LatencyBound: 864000, CheckpointPeriod: 60,
		}},
	}
}

func smallHost(ncpu int, cpuFlops float64, ngpu int, gpuFlops float64) *host.Host {
	h := host.StdHost(ncpu, cpuFlops, ngpu, gpuFlops)
	h.Prefs.MinQueue = 1200
	h.Prefs.MaxQueue = 3600
	return h
}

// The paper's §6.2 example: project A suits the GPU host (it has a GPU
// app), project B is CPU-only. Per-host enforcement over-serves A via
// the GPU; fleet-wide planning gives B the GPU host's CPUs and most of
// the CPU host, recovering the global 50/50 split.
func twoHostFleet() *Fleet {
	a := project.Spec{
		Name: "A", Share: 100,
		Apps: []project.AppSpec{
			cpuProject("x", 1).Apps[0],
			gpuProject("y", 1).Apps[0],
		},
	}
	return &Fleet{
		Hosts: []*host.Host{
			smallHost(4, 1e9, 1, 10e9), // 4 CPU + 10 GF GPU (14 GF)
			smallHost(8, 1e9, 0, 0),    // CPU machine (8 GF)
		},
		Projects: []project.Spec{a, cpuProject("B", 100)},
	}
}

func TestValidate(t *testing.T) {
	if (&Fleet{}).Validate() == nil {
		t.Fatal("empty fleet accepted")
	}
	if (&Fleet{Hosts: []*host.Host{smallHost(1, 1e9, 0, 0)}}).Validate() == nil {
		t.Fatal("fleet without projects accepted")
	}
	if err := twoHostFleet().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformPlan(t *testing.T) {
	f := twoHostFleet()
	plan := Uniform(f)
	if len(plan.Shares) != 2 {
		t.Fatal("plan rows")
	}
	for h := range plan.Shares {
		if plan.Shares[h][0] != 100 || plan.Shares[h][1] != 100 {
			t.Fatalf("uniform shares wrong: %v", plan.Shares[h])
		}
	}
}

func TestOptimizeSpecialises(t *testing.T) {
	f := twoHostFleet()
	plan, err := Optimize(f)
	if err != nil {
		t.Fatal(err)
	}
	// The GPU pool (10 GF) goes entirely to project A, its only user.
	if plan.Alloc[0][0] < 10e9-1 {
		t.Fatalf("GPU capacity allocated to A = %v, want >= 10e9", plan.Alloc[0][0])
	}
	// Project B gets the lion's share of both hosts' CPUs.
	cpuToB := plan.Alloc[0][1] + plan.Alloc[1][1]
	if cpuToB < 10e9 {
		t.Fatalf("CPU capacity to B = %v, want ~11e9", cpuToB)
	}
	// Targets are 11/11 out of 22 GF and both are reachable: the
	// planner should predict essentially zero violation.
	if v := f.PlannedViolation(plan); v > 0.01 {
		t.Fatalf("planned violation %v, want ~0", v)
	}
}

func TestOptimizeAllEligibleFallback(t *testing.T) {
	// Single CPU host, two CPU projects with 3:1 shares: allocation
	// should split the one pool 3:1.
	f := &Fleet{
		Hosts:    []*host.Host{smallHost(4, 1e9, 0, 0)},
		Projects: []project.Spec{cpuProject("a", 300), cpuProject("b", 100)},
	}
	plan, err := Optimize(f)
	if err != nil {
		t.Fatal(err)
	}
	ratio := plan.Alloc[0][0] / plan.Alloc[0][1]
	if math.Abs(ratio-3) > 1e-6 {
		t.Fatalf("allocation ratio %v, want 3", ratio)
	}
	if math.Abs(plan.Shares[0][0]-75) > 1e-6 || math.Abs(plan.Shares[0][1]-25) > 1e-6 {
		t.Fatalf("shares %v, want 75/25", plan.Shares[0])
	}
}

func TestOptimizeFigure1Geometry(t *testing.T) {
	// The paper's Figure 1 situation as a one-host "fleet": 10 GF CPU +
	// 20 GF GPU; A uses both, B only the GPU; equal shares. The planner
	// should give A the whole CPU and a quarter of the GPU.
	f := &Fleet{
		Hosts: []*host.Host{smallHost(1, 10e9, 1, 20e9)},
		Projects: []project.Spec{
			{Name: "A", Share: 100, Apps: []project.AppSpec{
				cpuProject("x", 1).Apps[0], gpuProject("y", 1).Apps[0],
			}},
			gpuProject("B", 100),
		},
	}
	plan, err := Optimize(f)
	if err != nil {
		t.Fatal(err)
	}
	// A: 10 (CPU) + 5 (GPU) = 15; B: 15 (GPU).
	if math.Abs(plan.Alloc[0][0]-15e9) > 1e-3 || math.Abs(plan.Alloc[0][1]-15e9) > 1e-3 {
		t.Fatalf("alloc = %v, want 15/15 GF", plan.Alloc[0])
	}
}

// Regression: when a pool's capacity exceeded the summed positive
// deficits, the proportional split granted each in-deficit project more
// than its deficit and the whole surplus landed on those projects;
// grants are now capped at the remaining deficit and the leftover
// spills to the share-proportional fallback.
func TestOptimizeSurplusSpillsToShares(t *testing.T) {
	// A (share 300): CPU + NVIDIA apps. B (100): CPU only. C (100): ATI
	// only. Pools in planning order: ATI 10 GF {C}, NVIDIA 120 GF {A},
	// CPU 100 GF {A,B}, CPU 170 GF {A,B}. C's remaining deficit is
	// stranded after its only pool, so the last CPU pool has 70 GF of
	// surplus beyond A+B's deficits, which must split 3:1 by share.
	a := project.Spec{
		Name: "A", Share: 300,
		Apps: []project.AppSpec{
			cpuProject("x", 1).Apps[0],
			gpuProject("y", 1).Apps[0],
		},
	}
	c := project.Spec{
		Name: "C", Share: 100,
		Apps: []project.AppSpec{{
			Name: "ati", Usage: job.Usage{AvgCPUs: 0.2, GPUType: host.AtiGPU, GPUUsage: 1},
			MeanDuration: 500, LatencyBound: 864000, CheckpointPeriod: 60,
		}},
	}
	h0 := smallHost(1, 170e9, 1, 120e9)
	h1 := smallHost(1, 100e9, 0, 0)
	h1.Hardware.Proc[host.AtiGPU] = host.Resource{Count: 1, FLOPSPerInst: 10e9}
	f := &Fleet{
		Hosts:    []*host.Host{h0, h1},
		Projects: []project.Spec{a, cpuProject("B", 100), c},
	}
	plan, err := Optimize(f)
	if err != nil {
		t.Fatal(err)
	}
	tot := make([]float64, 3)
	for h := range plan.Alloc {
		for p, v := range plan.Alloc[h] {
			tot[p] += v
		}
	}
	want := []float64{292.5e9, 97.5e9, 10e9}
	for p := range want {
		if math.Abs(tot[p]-want[p]) > 1 {
			t.Fatalf("project %d allocated %v, want %v (all: %v)", p, tot[p], want[p], tot)
		}
	}
	// The reachable split must follow shares exactly: A:B = 3.
	if r := tot[0] / tot[1]; math.Abs(r-3) > 1e-9 {
		t.Fatalf("A:B ratio %v, want 3 (surplus must spill by shares)", r)
	}
}

// Regression: per-host seeds were derived as seed + h*101, so two
// evaluations whose base seeds differ by 101 reused each other's
// per-host RNG streams (evaluation A's host 1 == evaluation B's host
// 0). With DeriveSeed the streams decorrelate.
func TestEvaluateSeedsDoNotCollideAcrossEvaluations(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	// Two identical hosts, so a seed collision reproduces the exact
	// same emulation on the shifted evaluation. Randomized runtimes
	// make the per-host RNG stream observable in the metrics.
	noisy := func(name string) project.Spec {
		p := cpuProject(name, 100)
		p.Apps[0].StdevDuration = 400
		return p
	}
	f := &Fleet{
		Hosts:    []*host.Host{smallHost(4, 1e9, 0, 0), smallHost(4, 1e9, 0, 0)},
		Projects: []project.Spec{noisy("a"), noisy("b")},
	}
	plan := Uniform(f)
	ev1, err := f.Evaluate(plan, 0.3*86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := f.Evaluate(plan, 0.3*86400, 1+101)
	if err != nil {
		t.Fatal(err)
	}
	// Old derivation: ev1 host 1 used seed 1+101 == ev2 host 0's seed,
	// so their runs were bit-identical.
	if ev1.PerHost[1].UsedFLOPSsec == ev2.PerHost[0].UsedFLOPSsec &&
		ev1.PerHost[1].RPCs == ev2.PerHost[0].RPCs &&
		ev1.PerHost[1].CompletedJobs == ev2.PerHost[0].CompletedJobs {
		t.Fatalf("host streams collide across evaluations: %+v vs %+v",
			ev1.PerHost[1], ev2.PerHost[0])
	}
}

func TestEvaluateOptimizedBeatsUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	f := twoHostFleet()
	uniform, err := f.Evaluate(Uniform(f), 2*86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Optimize(f)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := f.Evaluate(plan, 2*86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.GlobalViolation >= uniform.GlobalViolation {
		t.Fatalf("optimized violation %v >= uniform %v",
			optimized.GlobalViolation, uniform.GlobalViolation)
	}
	// Throughput must not collapse (within 10%).
	if optimized.Throughput < 0.9*uniform.Throughput {
		t.Fatalf("optimized throughput %v << uniform %v",
			optimized.Throughput, uniform.Throughput)
	}
}

func TestEvaluateSkipsUnattachedProjects(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	f := twoHostFleet()
	plan, _ := Optimize(f)
	ev, err := f.Evaluate(plan, 86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.PerHost) != 2 {
		t.Fatalf("per-host results = %d, want 2", len(ev.PerHost))
	}
	if ev.GlobalUsed[0] == 0 || ev.GlobalUsed[1] == 0 {
		t.Fatalf("a project got nothing: %v", ev.GlobalUsed)
	}
}

func TestPlannedViolationUniformNaN(t *testing.T) {
	f := twoHostFleet()
	if !math.IsNaN(f.PlannedViolation(Uniform(f))) {
		t.Fatal("uniform plan has no internal model; want NaN")
	}
}
