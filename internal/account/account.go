// Package account implements the two resource-share accounting schemes
// of paper §3.1, which turn a project's resource share and its history
// of actual usage into scheduling and work-fetch priorities:
//
//   - Local accounting: a per-(project, processor-type) debt D(P,T)
//     that grows in proportion to the project's share and shrinks as it
//     uses instances of that type.
//   - Global accounting: REC(P), an exponentially-decayed average of
//     the peak FLOPS used by the project across all processor types.
//
// Both implement Accounting; the scheduling and fetch policies consume
// the interface so any scheme can back any policy.
package account

import (
	"math"

	"bce/internal/host"
	"bce/internal/invariant"
)

// Accounting converts usage history into priorities. Implementations
// are not safe for concurrent use; the client is single-threaded.
type Accounting interface {
	// Charge records that project p used instSeconds instance-seconds
	// of type t, amounting to flopsSec peak-FLOPS-seconds, during the
	// interval ending at now.
	Charge(now float64, p int, t host.ProcType, instSeconds, flopsSec float64)

	// Update advances share accrual to time now. hasWork reports
	// whether project p currently has runnable or queued jobs of type
	// t; only such projects accrue type-t debt (the paper leaves open
	// whether shares accrue with no jobs available — BOINC's
	// short-term debt does not, and we follow it).
	Update(now float64, hasWork func(p int, t host.ProcType) bool)

	// PrioSched returns the job-scheduling priority of project p for
	// processor type t; higher runs sooner.
	PrioSched(p int, t host.ProcType) float64

	// PrioFetch returns the work-fetch priority of project p; the
	// fetch policies ask the highest-priority project for work.
	PrioFetch(p int) float64

	// Name identifies the scheme ("local" or "global").
	Name() string
}

// maxDebtSeconds caps debt magnitude, like BOINC's short-term debt
// limit, so long droughts don't create unbounded priority swings.
const maxDebtSeconds = 86400

// LocalDebt is the per-processor-type debt scheme.
type LocalDebt struct {
	shares   []float64
	hw       *host.Hardware
	debt     [][host.NumProcTypes]float64 // [project][type]
	lastT    float64
	eligible []bool // Update scratch; cleared per processor type
}

// NewLocalDebt creates local accounting for the given project shares on
// the given hardware.
func NewLocalDebt(shares []float64, hw *host.Hardware) *LocalDebt {
	return &LocalDebt{
		shares: shares,
		hw:     hw,
		debt:   make([][host.NumProcTypes]float64, len(shares)),
	}
}

// Name implements Accounting.
func (l *LocalDebt) Name() string { return "local" }

// Charge implements Accounting: usage reduces type debt.
func (l *LocalDebt) Charge(now float64, p int, t host.ProcType, instSeconds, flopsSec float64) {
	if p < 0 || p >= len(l.debt) {
		return
	}
	l.debt[p][t] -= instSeconds
}

// Update implements Accounting: projects with type-t work accrue
// share_frac·dt·ninst(t) of type-t debt; debts are then offset to zero
// mean across those projects and clamped.
func (l *LocalDebt) Update(now float64, hasWork func(p int, t host.ProcType) bool) {
	dt := now - l.lastT
	if dt < 0 {
		dt = 0
	}
	l.lastT = now
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		ninst := float64(l.hw.Proc[t].Count)
		if ninst == 0 {
			continue
		}
		if cap(l.eligible) < len(l.shares) {
			l.eligible = make([]bool, len(l.shares))
		}
		eligible := l.eligible[:len(l.shares)]
		clear(eligible)
		var shareSum float64
		n := 0
		for p, s := range l.shares {
			if s > 0 && hasWork(p, t) {
				eligible[p] = true
				shareSum += s
				n++
			}
		}
		if n == 0 || shareSum <= 0 {
			continue
		}
		if dt > 0 {
			for p := range l.shares {
				if eligible[p] {
					l.debt[p][t] += l.shares[p] / shareSum * dt * ninst
				}
			}
		}
		// Normalise eligible debts to zero mean, clamp.
		var mean float64
		for p := range l.shares {
			if eligible[p] {
				mean += l.debt[p][t]
			}
		}
		mean /= float64(n)
		for p := range l.shares {
			if eligible[p] {
				l.debt[p][t] -= mean
			}
		}
		if invariant.Enabled {
			// Debt conservation: normalising to zero mean means debt is
			// only ever redistributed among the eligible projects, never
			// created or destroyed (clamping below is the one sanctioned
			// exception, so the check runs before it).
			var sum, scale float64
			for p := range l.shares {
				if eligible[p] {
					sum += l.debt[p][t]
					scale += math.Abs(l.debt[p][t])
				}
			}
			invariant.Check(math.Abs(sum) <= 1e-9*(1+scale),
				"account: type-%v debt not conserved: eligible sum %v after zero-mean normalisation", t, sum)
		}
		for p := range l.shares {
			if !eligible[p] {
				continue
			}
			if l.debt[p][t] > maxDebtSeconds*ninst {
				l.debt[p][t] = maxDebtSeconds * ninst
			} else if l.debt[p][t] < -maxDebtSeconds*ninst {
				l.debt[p][t] = -maxDebtSeconds * ninst
			}
		}
	}
}

// PrioSched implements Accounting: PRIO_sched(P,T) = D(P,T).
func (l *LocalDebt) PrioSched(p int, t host.ProcType) float64 {
	if p < 0 || p >= len(l.debt) {
		return 0
	}
	return l.debt[p][t]
}

// PrioFetch implements Accounting: the sum of D(P,T) weighted by the
// peak FLOPS of T (paper §3.1).
func (l *LocalDebt) PrioFetch(p int) float64 {
	if p < 0 || p >= len(l.debt) {
		return 0
	}
	var sum float64
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		sum += l.debt[p][t] * l.hw.PeakFLOPS(t)
	}
	return sum
}

// Debt exposes D(P,T) for tests and logging.
func (l *LocalDebt) Debt(p int, t host.ProcType) float64 { return l.debt[p][t] }

// DefaultRECHalfLife is BOINC's REC averaging half-life (10 days).
const DefaultRECHalfLife = 10 * 86400

// GlobalREC is the cross-processor-type scheme: one exponentially
// decayed peak-FLOPS average per project.
type GlobalREC struct {
	shares   []float64
	halfLife float64
	rec      []float64
	lastT    float64
}

// NewGlobalREC creates global accounting with the given averaging
// half-life (seconds); halfLife <= 0 uses DefaultRECHalfLife.
func NewGlobalREC(shares []float64, halfLife float64) *GlobalREC {
	if halfLife <= 0 {
		halfLife = DefaultRECHalfLife
	}
	return &GlobalREC{
		shares:   shares,
		halfLife: halfLife,
		rec:      make([]float64, len(shares)),
	}
}

// Name implements Accounting.
func (g *GlobalREC) Name() string { return "global" }

// HalfLife returns the averaging half-life A (paper §5.4).
func (g *GlobalREC) HalfLife() float64 { return g.halfLife }

func (g *GlobalREC) decayTo(now float64) {
	if now > g.lastT {
		f := math.Exp2(-(now - g.lastT) / g.halfLife)
		for p := range g.rec {
			g.rec[p] *= f
		}
		g.lastT = now
	}
}

// Charge implements Accounting: REC accumulates peak-FLOPS-seconds
// across all processor types.
func (g *GlobalREC) Charge(now float64, p int, t host.ProcType, instSeconds, flopsSec float64) {
	g.decayTo(now)
	if p >= 0 && p < len(g.rec) {
		g.rec[p] += flopsSec
		if invariant.Enabled {
			invariant.Check(flopsSec >= 0,
				"account: negative REC charge %v for project %d", flopsSec, p)
			invariant.Check(g.rec[p] >= 0 && !math.IsNaN(g.rec[p]) && !math.IsInf(g.rec[p], 0),
				"account: REC for project %d left range: %v", p, g.rec[p])
		}
	}
}

// Update implements Accounting (REC needs only decay; share accrual is
// implicit in the priority formula).
func (g *GlobalREC) Update(now float64, hasWork func(p int, t host.ProcType) bool) {
	g.decayTo(now)
}

// prio is BOINC's published REC priority: −REC_frac(P)/share_frac(P).
// A project that has used less than its share has a higher (less
// negative) priority. The paper's "SHARE(P) REC(P)" formula lost its
// operator in transcription; this form preserves the intended ordering.
func (g *GlobalREC) prio(p int) float64 {
	if p < 0 || p >= len(g.rec) {
		return 0
	}
	var recSum, shareSum float64
	for i := range g.rec {
		recSum += g.rec[i]
		shareSum += g.shares[i]
	}
	if g.shares[p] <= 0 {
		return math.Inf(-1)
	}
	if recSum <= 0 {
		return 0
	}
	recFrac := g.rec[p] / recSum
	shareFrac := g.shares[p] / shareSum
	return -recFrac / shareFrac
}

// PrioSched implements Accounting; global priority is type-independent.
func (g *GlobalREC) PrioSched(p int, t host.ProcType) float64 { return g.prio(p) }

// PrioFetch implements Accounting.
func (g *GlobalREC) PrioFetch(p int) float64 { return g.prio(p) }

// REC exposes the decayed average for tests and logging.
func (g *GlobalREC) REC(now float64, p int) float64 {
	g.decayTo(now)
	return g.rec[p]
}
