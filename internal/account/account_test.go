package account

import (
	"math"
	"testing"
	"testing/quick"

	"bce/internal/host"
)

func hw(ncpu, ngpu int) *host.Hardware {
	h := host.StdHost(ncpu, 10e9, ngpu, 100e9)
	return &h.Hardware
}

func allWork(p int, t host.ProcType) bool { return true }

func cpuOnlyWork(p int, t host.ProcType) bool { return t == host.CPU }

func TestLocalDebtAccrual(t *testing.T) {
	l := NewLocalDebt([]float64{1, 1}, hw(2, 0))
	l.Update(0, cpuOnlyWork)
	l.Update(100, cpuOnlyWork)
	// Each project accrues 0.5·100·2 = 100; zero-mean leaves both at 0.
	if d := l.Debt(0, host.CPU); math.Abs(d) > 1e-9 {
		t.Fatalf("symmetric accrual should normalise to 0, got %v", d)
	}
}

func TestLocalDebtUsageShifts(t *testing.T) {
	l := NewLocalDebt([]float64{1, 1}, hw(1, 0))
	l.Update(0, cpuOnlyWork)
	// Project 0 runs the CPU exclusively for 100 s.
	l.Charge(100, 0, host.CPU, 100, 1e12)
	l.Update(100, cpuOnlyWork)
	d0, d1 := l.Debt(0, host.CPU), l.Debt(1, host.CPU)
	if d0 >= d1 {
		t.Fatalf("project that used the CPU should have lower debt: %v vs %v", d0, d1)
	}
	// Zero-mean after normalisation.
	if math.Abs(d0+d1) > 1e-9 {
		t.Fatalf("debts should sum to ~0, got %v", d0+d1)
	}
	if l.PrioSched(1, host.CPU) <= l.PrioSched(0, host.CPU) {
		t.Fatal("starved project should have higher scheduling priority")
	}
}

func TestLocalDebtSharesWeighting(t *testing.T) {
	l := NewLocalDebt([]float64{3, 1}, hw(1, 0))
	l.Update(0, cpuOnlyWork)
	// Both idle for 100 s: high-share project accrues more.
	l.Update(100, cpuOnlyWork)
	if l.Debt(0, host.CPU) <= l.Debt(1, host.CPU) {
		t.Fatalf("share-3 project should out-accrue share-1: %v vs %v",
			l.Debt(0, host.CPU), l.Debt(1, host.CPU))
	}
}

func TestLocalDebtOnlyProjectsWithWork(t *testing.T) {
	l := NewLocalDebt([]float64{1, 1}, hw(1, 0))
	onlyP0 := func(p int, tt host.ProcType) bool { return p == 0 && tt == host.CPU }
	l.Update(0, onlyP0)
	l.Update(1000, onlyP0)
	if d := l.Debt(1, host.CPU); d != 0 {
		t.Fatalf("project with no work accrued debt %v", d)
	}
}

func TestLocalDebtClamp(t *testing.T) {
	l := NewLocalDebt([]float64{1, 1}, hw(1, 0))
	l.Update(0, cpuOnlyWork)
	// Hugely lopsided usage for a very long time.
	l.Charge(1e7, 0, host.CPU, 1e7, 0)
	l.Update(1e7, cpuOnlyWork)
	lim := float64(maxDebtSeconds) * 1
	if d := l.Debt(1, host.CPU); d > lim+1e-6 {
		t.Fatalf("debt %v exceeds clamp %v", d, lim)
	}
	if d := l.Debt(0, host.CPU); d < -lim-1e-6 {
		t.Fatalf("debt %v below clamp %v", d, -lim)
	}
}

func TestLocalPrioFetchWeightsByPeakFLOPS(t *testing.T) {
	h := hw(4, 1) // CPU peak 40e9, GPU peak 100e9
	l := NewLocalDebt([]float64{1, 1}, h)
	// Give project 0 GPU debt +1, project 1 CPU debt +1 (manually via
	// charge asymmetry): charge p1 on GPU, p0 on CPU.
	l.Update(0, allWork)
	l.Charge(10, 0, host.CPU, 5, 0)
	l.Charge(10, 1, host.NvidiaGPU, 5, 0)
	l.Update(10, allWork)
	// p0 owes GPU time (prio fetch should be higher for p0 given GPU
	// weight dominates).
	if l.PrioFetch(0) <= l.PrioFetch(1) {
		t.Fatalf("GPU-starved project should have higher fetch priority: %v vs %v",
			l.PrioFetch(0), l.PrioFetch(1))
	}
}

func TestLocalOutOfRangeSafe(t *testing.T) {
	l := NewLocalDebt([]float64{1}, hw(1, 0))
	l.Charge(0, 99, host.CPU, 10, 10) // must not panic
	if l.PrioSched(99, host.CPU) != 0 || l.PrioFetch(-1) != 0 {
		t.Fatal("out-of-range projects should report zero priority")
	}
}

func TestGlobalRECDecay(t *testing.T) {
	g := NewGlobalREC([]float64{1, 1}, 1000)
	g.Charge(0, 0, host.CPU, 10, 8e9)
	if v := g.REC(1000, 0); math.Abs(v-4e9) > 1 {
		t.Fatalf("REC after one half-life = %v, want 4e9", v)
	}
}

func TestGlobalRECPriorityOrdering(t *testing.T) {
	g := NewGlobalREC([]float64{1, 1}, 1e6)
	g.Charge(100, 0, host.CPU, 100, 1e12) // project 0 used a lot
	g.Update(100, allWork)
	if g.PrioSched(0, host.CPU) >= g.PrioSched(1, host.CPU) {
		t.Fatalf("over-served project should have lower priority: %v vs %v",
			g.PrioSched(0, host.CPU), g.PrioSched(1, host.CPU))
	}
	if g.PrioFetch(0) >= g.PrioFetch(1) {
		t.Fatal("fetch priority should match")
	}
}

func TestGlobalRECShareWeighting(t *testing.T) {
	// Equal usage, unequal shares: the high-share project deserves more,
	// so its normalised usage is lower and priority higher.
	g := NewGlobalREC([]float64{3, 1}, 1e6)
	g.Charge(100, 0, host.CPU, 100, 1e12)
	g.Charge(100, 1, host.CPU, 100, 1e12)
	if g.PrioFetch(0) <= g.PrioFetch(1) {
		t.Fatalf("high-share project should have higher priority: %v vs %v",
			g.PrioFetch(0), g.PrioFetch(1))
	}
}

func TestGlobalRECZeroUsageNeutral(t *testing.T) {
	g := NewGlobalREC([]float64{1, 2}, 0)
	if g.HalfLife() != DefaultRECHalfLife {
		t.Fatalf("default half-life = %v, want %v", g.HalfLife(), float64(DefaultRECHalfLife))
	}
	if g.PrioFetch(0) != 0 || g.PrioFetch(1) != 0 {
		t.Fatal("with no usage all priorities should be 0")
	}
}

func TestGlobalRECTypeIndependent(t *testing.T) {
	g := NewGlobalREC([]float64{1, 1}, 1e6)
	g.Charge(50, 0, host.NvidiaGPU, 50, 5e12)
	for tt := host.ProcType(0); tt < host.NumProcTypes; tt++ {
		if g.PrioSched(0, tt) != g.PrioSched(0, host.CPU) {
			t.Fatal("global priority should not depend on processor type")
		}
	}
}

func TestGlobalOutOfRangeSafe(t *testing.T) {
	g := NewGlobalREC([]float64{1}, 100)
	g.Charge(0, 7, host.CPU, 1, 1)
	if g.PrioSched(7, host.CPU) != 0 {
		t.Fatal("out-of-range project priority should be 0")
	}
}

func TestNames(t *testing.T) {
	if NewLocalDebt(nil, hw(1, 0)).Name() != "local" {
		t.Fatal("local name")
	}
	if NewGlobalREC(nil, 0).Name() != "global" {
		t.Fatal("global name")
	}
}

// Property: local debts over eligible projects sum to ~0 after Update,
// regardless of charge history.
func TestPropertyLocalZeroMean(t *testing.T) {
	f := func(charges [12]uint16, shares8 [4]uint8) bool {
		shares := make([]float64, 4)
		var ssum float64
		for i := range shares {
			shares[i] = float64(shares8[i]%9) + 1
			ssum += shares[i]
		}
		l := NewLocalDebt(shares, hw(2, 0))
		now := 0.0
		l.Update(now, cpuOnlyWork)
		for i, c := range charges {
			now += 50
			l.Charge(now, i%4, host.CPU, float64(c%1000), 0)
			l.Update(now, cpuOnlyWork)
		}
		var sum float64
		for p := 0; p < 4; p++ {
			sum += l.Debt(p, host.CPU)
		}
		// Clamping can break exact zero-mean; allow clamp-scale slack
		// only when a debt actually hit the clamp.
		clamped := false
		for p := 0; p < 4; p++ {
			if math.Abs(l.Debt(p, host.CPU)) >= maxDebtSeconds*2-1 {
				clamped = true
			}
		}
		return clamped || math.Abs(sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: REC is nonnegative and decays monotonically without charges.
func TestPropertyRECNonnegativeMonotone(t *testing.T) {
	f := func(amounts [6]uint16, gap uint16) bool {
		g := NewGlobalREC([]float64{1, 1, 1}, 3600)
		now := 0.0
		for i, a := range amounts {
			now += 10
			g.Charge(now, i%3, host.CPU, 1, float64(a))
		}
		v1 := g.REC(now, 0)
		v2 := g.REC(now+float64(gap)+1, 0)
		return v1 >= 0 && v2 >= 0 && v2 <= v1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
