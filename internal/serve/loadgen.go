// Loadgen is the service's benchmark client (cf. sigmaos
// benchmarks/loadgen): it drives a running bceweb instance over HTTP
// through the async API and reports tail latency and throughput —
// closed-loop (a fixed set of virtual clients, each submit→poll→next)
// or open-loop (a fixed arrival rate regardless of completions, which
// is what exposes queueing collapse). Shed responses (429) honor the
// server's Retry-After.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"bce/internal/runner"
	"bce/internal/scenario"
)

// LoadgenOptions configures one load-generation run.
type LoadgenOptions struct {
	// URL is the target server base, e.g. "http://localhost:8080".
	URL string
	// Requests is the total number of submissions to complete.
	Requests int
	// Concurrency is the closed-loop virtual-client count (default 4).
	// Ignored in open-loop mode.
	Concurrency int
	// RatePerSec > 0 selects open-loop mode: submissions arrive at
	// this fixed rate regardless of completions.
	RatePerSec float64
	// Scenario is the submission template (a small built-in one when
	// nil). Each request gets a distinct derived seed unless Identical
	// is set, in which case every submission is byte-identical and the
	// run hammers the result cache instead of the emulator.
	Scenario  *scenario.Scenario
	Identical bool
	// PollInterval is the job-status poll period (default 10ms).
	PollInterval time.Duration
	// Timeout caps one request end to end, submit through completion
	// (default 2 minutes).
	Timeout time.Duration
}

// LoadgenResult is the measured outcome of a load run.
type LoadgenResult struct {
	Requests  int           // completed successfully
	Failed    int           // terminal failures (job failed, HTTP error, timeout)
	Shed      int           // 429 responses observed (each retried)
	CacheHits int           // completions served from the result cache
	Elapsed   time.Duration // wall clock for the whole run
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
	// Throughput is completed requests per second of wall clock.
	Throughput float64
}

// Table renders the result as an aligned text block.
func (r *LoadgenResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed   %d\n", r.Requests)
	fmt.Fprintf(&b, "failed      %d\n", r.Failed)
	fmt.Fprintf(&b, "shed (429)  %d\n", r.Shed)
	fmt.Fprintf(&b, "cache hits  %d\n", r.CacheHits)
	fmt.Fprintf(&b, "elapsed     %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput  %.1f req/s\n", r.Throughput)
	fmt.Fprintf(&b, "latency     p50 %v   p90 %v   p99 %v\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	return b.String()
}

// DefaultLoadgenScenario is the built-in submission template: one tiny
// two-project host whose emulation takes well under a second, so the
// measured latency is dominated by the service layer under test.
func DefaultLoadgenScenario(days float64) *scenario.Scenario {
	if days <= 0 {
		days = 0.05
	}
	return &scenario.Scenario{
		Name: "loadgen", DurationDays: days, Seed: 1,
		Host: scenario.HostJSON{NCPU: 2, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 2},
		Projects: []scenario.ProjectJSON{
			{Name: "a", Share: 100, Apps: []scenario.AppJSON{{Name: "x", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400}}},
			{Name: "b", Share: 100, Apps: []scenario.AppJSON{{Name: "y", NCPUs: 1, MeanSecs: 2400, LatencySecs: 86400}}},
		},
	}
}

// Loadgen drives the target with o.Requests submissions and reports
// latency percentiles (nearest-rank over the completed set) and
// throughput. It returns an error only for setup problems; individual
// request failures are counted in the result.
func Loadgen(ctx context.Context, o LoadgenOptions) (*LoadgenResult, error) {
	if o.URL == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	if o.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: no requests")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 10 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.Scenario == nil {
		o.Scenario = DefaultLoadgenScenario(0)
	}
	base := strings.TrimSuffix(o.URL, "/")
	client := &http.Client{}

	// Pre-marshal every request body up front so marshalling cost
	// never lands inside a latency sample.
	bodies := make([][]byte, o.Requests)
	for i := range bodies {
		s := *o.Scenario
		if !o.Identical {
			s.Seed = runner.DeriveSeed(o.Scenario.Seed, i)
			s.Name = fmt.Sprintf("%s-%d", o.Scenario.Name, i)
		}
		b, err := json.Marshal(&s)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshalling scenario: %w", err)
		}
		bodies[i] = b
	}

	res := &LoadgenResult{}
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, o.Requests)
	record := func(lat time.Duration, cacheHit bool, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			res.Failed++
			return
		}
		res.Requests++
		if cacheHit {
			res.CacheHits++
		}
		latencies = append(latencies, lat)
	}
	countShed := func(n int) {
		mu.Lock()
		res.Shed += n
		mu.Unlock()
	}

	start := time.Now() //bce:wallclock latency measurement is the whole point of a load generator
	var wg sync.WaitGroup
	if o.RatePerSec > 0 {
		// Open loop: fixed arrivals, one goroutine per in-flight request.
		interval := time.Duration(float64(time.Second) / o.RatePerSec)
		for i := 0; i < o.Requests; i++ {
			select {
			case <-ctx.Done():
			case <-time.After(interval): //bce:wallclock open-loop arrival pacing
			}
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			go func(body []byte) {
				defer wg.Done()
				lat, hit, shed, err := oneRequest(ctx, client, base, body, o)
				countShed(shed)
				record(lat, hit, err)
			}(bodies[i%len(bodies)])
		}
	} else {
		// Closed loop: Concurrency clients, each submit→wait→next.
		next := make(chan []byte)
		for w := 0; w < o.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for body := range next {
					lat, hit, shed, err := oneRequest(ctx, client, base, body, o)
					countShed(shed)
					record(lat, hit, err)
				}
			}()
		}
		for i := 0; i < o.Requests && ctx.Err() == nil; i++ {
			select {
			case next <- bodies[i]:
			case <-ctx.Done():
			}
		}
		close(next)
	}
	wg.Wait()
	res.Elapsed = time.Since(start) //bce:wallclock load generator reports real HTTP latency, outside any emulation

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = nearestRank(latencies, 0.50)
	res.P90 = nearestRank(latencies, 0.90)
	res.P99 = nearestRank(latencies, 0.99)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Requests) / res.Elapsed.Seconds()
	}
	return res, nil
}

// nearestRank returns the ceil(p·N)-th smallest of sorted — the same
// nearest-rank definition stats.P2Quantile uses for small samples.
func nearestRank(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*p+0.9999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// submitResponse mirrors the web layer's JSON submit reply.
type submitResponse struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Err      string `json:"err"`
}

// oneRequest runs one full submit→poll→done cycle, retrying shed
// submissions after the server's Retry-After. It returns the end-to-end
// latency, whether the result came from the cache, and how many sheds
// it absorbed.
func oneRequest(ctx context.Context, client *http.Client, base string, body []byte, o LoadgenOptions) (lat time.Duration, cacheHit bool, shed int, err error) {
	ctx, cancel := context.WithTimeout(ctx, o.Timeout)
	defer cancel()
	begin := time.Now() //bce:wallclock per-request latency sample
	var sub submitResponse
	for {
		status, retryAfter, decodeErr := postJSON(ctx, client, base+"/api/run", body, &sub)
		if decodeErr != nil {
			return 0, false, shed, decodeErr
		}
		if status == http.StatusTooManyRequests {
			shed++
			select {
			case <-ctx.Done():
				return 0, false, shed, ctx.Err()
			case <-time.After(retryAfter): //bce:wallclock honoring the server's Retry-After
			}
			continue
		}
		if status != http.StatusOK && status != http.StatusAccepted {
			return 0, false, shed, fmt.Errorf("loadgen: submit status %d", status)
		}
		break
	}
	state := sub.State
	cacheHit = sub.CacheHit
	for !state.Terminal() {
		select {
		case <-ctx.Done():
			return 0, false, shed, ctx.Err()
		case <-time.After(o.PollInterval): //bce:wallclock poll pacing
		}
		var jv JobView
		status, _, decodeErr := getJSON(ctx, client, base+"/api/jobs/"+sub.ID, &jv)
		if decodeErr != nil {
			return 0, false, shed, decodeErr
		}
		if status != http.StatusOK {
			return 0, false, shed, fmt.Errorf("loadgen: poll status %d", status)
		}
		state = jv.State
		cacheHit = cacheHit || jv.CacheHit
	}
	if state == StateFailed {
		return 0, false, shed, fmt.Errorf("loadgen: job failed")
	}
	return time.Since(begin), cacheHit, shed, nil //bce:wallclock load generator reports real HTTP latency, outside any emulation
}

func postJSON(ctx context.Context, client *http.Client, url string, body []byte, out any) (status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) (status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, err
	}
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) (status int, retryAfter time.Duration, err error) {
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close() //bce:errok read-side close after full drain
	retryAfter = ParseRetryAfter(resp.Header.Get("Retry-After"))
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, retryAfter, err
	}
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, retryAfter, fmt.Errorf("loadgen: bad response %q: %w", truncateBody(data), err)
		}
	}
	return resp.StatusCode, retryAfter, nil
}

func truncateBody(b []byte) string {
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
