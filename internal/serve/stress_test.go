package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"bce/internal/runner"
)

// TestStopFailsQueuedJobsAndClosesWatchers is the regression test for
// the shutdown leak: before the shutdown sweep existed, cancelling the
// Start context stopped the workers but left every still-queued job
// StateQueued forever, with its watcher channels never closed — an SSE
// client would hang until its own timeout. After Wait returns, every
// ticket must be terminal, every watcher channel closed, and Submit
// must shed with ErrNotStarted.
func TestStopFailsQueuedJobsAndClosesWatchers(t *testing.T) {
	s := New(Config{Batch: runner.Options{Workers: 1}, QueueCap: 8})
	ctx, cancel := context.WithCancel(context.Background()) //bce:ctxshim test
	s.Start(ctx)

	var ids []string
	var chans []<-chan Event
	for i := int64(100); i < 106; i++ {
		v, err := s.Submit(runRequest(i))
		if err != nil {
			t.Fatal(err)
		}
		ch, _, err := s.Watch(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		chans = append(chans, ch)
	}

	cancel()
	s.Wait()

	for _, id := range ids {
		v, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if !v.State.Terminal() {
			t.Errorf("job %s still %s after Wait; shutdown left it dangling", id, v.State)
		}
	}
	for i, ch := range chans {
		closed := false
		timeout := time.After(10 * time.Second) //bce:wallclock test timeout
	drain:
		for {
			select {
			case _, open := <-ch:
				if !open {
					closed = true
					break drain
				}
			case <-timeout:
				break drain
			}
		}
		if !closed {
			t.Errorf("watcher %d (job %s) never closed after Wait", i, ids[i])
		}
	}
	if _, err := s.Submit(runRequest(999)); !errors.Is(err, ErrNotStarted) {
		t.Errorf("Submit after shutdown: err = %v, want ErrNotStarted", err)
	}
}

// TestConcurrentStress hammers one service from parallel clients —
// mixed Submit (with deliberate fingerprint collisions to exercise
// dedup and the cache), Job, Outcome, Watch/unwatch — then stops it,
// asserting the whole run finishes inside a deadline (no deadlock
// under -race) and that the goroutine count returns to its baseline
// after Stop (no leaked workers or watchers).
func TestConcurrentStress(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Batch: runner.Options{Workers: 4}, QueueCap: 32})
	ctx, cancel := context.WithCancel(context.Background()) //bce:ctxshim test
	s.Start(ctx)

	const clients = 8
	const iters = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					// Six distinct seeds across 8 clients: collisions are
					// guaranteed, so dedup and cache paths run under load.
					v, err := s.Submit(runRequest(int64(200 + (c+i)%6)))
					if errors.Is(err, ErrQueueFull) {
						continue
					}
					if err != nil {
						t.Errorf("client %d: Submit: %v", c, err)
						return
					}
					if _, err := s.Job(v.ID); err != nil {
						t.Errorf("client %d: Job: %v", c, err)
						return
					}
					if _, _, err := s.Outcome(v.ID); err != nil && v.State != StateFailed {
						// Outcome errors only for failed jobs; a terminal
						// failure here would be a real bug.
						t.Errorf("client %d: Outcome(%s): %v", c, v.ID, err)
						return
					}
					ch, cancelW, err := s.Watch(v.ID)
					if err != nil {
						t.Errorf("client %d: Watch: %v", c, err)
						return
					}
					// Half the watchers detach immediately, half drain to
					// close — both unsubscribe paths stay hot.
					if i%2 == 0 {
						cancelW()
					} else {
						for range ch {
						}
						cancelW()
					}
					_ = s.Stats()
					_ = s.RetryAfter()
				}
			}(c)
		}
		wg.Wait()
	}()

	select {
	case <-done:
	case <-time.After(120 * time.Second): //bce:wallclock deadlock guard
		t.Fatal("stress run deadlocked: clients did not finish within 120s")
	}

	cancel()
	waited := make(chan struct{})
	go func() { s.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(60 * time.Second): //bce:wallclock deadlock guard
		t.Fatal("Wait did not return after cancel: worker pool or shutdown sweep stuck")
	}

	// The pool, shutdown supervisor, and any watcher-bound goroutines
	// must all be gone; poll briefly to let exiting goroutines clear
	// the scheduler.
	const slack = 10
	deadline := time.Now().Add(5 * time.Second) //bce:wallclock test poll deadline
	for {
		if g := runtime.NumGoroutine(); g <= before+slack {
			return
		}
		if time.Now().After(deadline) { //bce:wallclock test poll deadline
			t.Fatalf("goroutines: %d before, %d after Stop (slack %d): leak", before, runtime.NumGoroutine(), slack)
		}
		time.Sleep(20 * time.Millisecond) //bce:wallclock test poll
	}
}
