package serve

import (
	"net/http"
	"testing"
	"time"
)

// Satellite bugfix regression: every Retry-After form a server might
// send — integer seconds, fractional seconds, HTTP dates, zeros,
// negatives, garbage — must come back as a sane clamped backoff. The
// old parser only accepted positive integers, so "0" (a hot retry
// loop), "1.5", and every HTTP date silently fell through.
func TestParseRetryAfterTable(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"absent", "", DefaultRetryAfter},
		{"blank", "   ", DefaultRetryAfter},
		{"integer seconds", "7", 7 * time.Second},
		{"integer with spaces", "  7  ", 7 * time.Second},
		{"fractional seconds", "1.5", 1500 * time.Millisecond},
		{"zero clamps to minimum", "0", MinRetryAfter},
		{"sub-minimum clamps", "0.001", MinRetryAfter},
		{"negative clamps to minimum", "-3", MinRetryAfter},
		{"huge clamps to maximum", "86400", MaxRetryAfter},
		{"overflow clamps to maximum", "1e300", MaxRetryAfter},
		{"nan clamps to maximum", "NaN", MaxRetryAfter},
		{"http date future", now.Add(42 * time.Second).Format(http.TimeFormat), 42 * time.Second},
		{"http date ansic", now.Add(42 * time.Second).Format(time.ANSIC), 42 * time.Second},
		{"http date past clamps", now.Add(-time.Hour).Format(http.TimeFormat), MinRetryAfter},
		{"http date far future clamps", now.Add(24 * time.Hour).Format(http.TimeFormat), MaxRetryAfter},
		{"garbage", "soon", DefaultRetryAfter},
		{"garbage units", "7s", DefaultRetryAfter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfterAt(tc.header, now); got != tc.want {
				t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
			}
		})
	}
}

// The clamped parse must always land inside [MinRetryAfter,
// MaxRetryAfter] or be the default — never zero, never negative — so a
// retry loop built on it can never spin hot.
func TestParseRetryAfterNeverHot(t *testing.T) {
	for _, h := range []string{"", "0", "-1", "0.0000001", "NaN", "-Inf", "+Inf", "junk", "9999999999999"} {
		if got := ParseRetryAfter(h); got < MinRetryAfter && got != DefaultRetryAfter {
			t.Errorf("ParseRetryAfter(%q) = %v: below minimum backoff", h, got)
		}
	}
}
