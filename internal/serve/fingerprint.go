package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"bce/internal/scenario"
)

// fingerprintDoc is the canonical form a request is hashed through.
// Canonicalization happens by construction: the upload is parsed into
// the typed scenario.Scenario and re-marshalled here, so whitespace,
// key order, number spelling ("1e1" vs "10"), and ignored XML detail
// all collapse to one byte string — encoding/json writes struct fields
// in declaration order and round-trips float64 exactly. Two uploads
// that build the same scenario therefore share a fingerprint, and the
// determinism contract (DESIGN.md §10) guarantees they share a result.
type fingerprintDoc struct {
	V    int  `json:"v"` // fingerprint schema; bump to invalidate all cached results
	Kind Kind `json:"kind"`

	Scenario *scenario.Scenario `json:"scenario,omitempty"`

	StudyScenarios int     `json:"study_scenarios,omitempty"`
	StudyDays      float64 `json:"study_days,omitempty"`
	StudySeed      int64   `json:"study_seed,omitempty"`
}

// fingerprintVersion invalidates every cached result when the meaning
// of a fingerprint changes (e.g. a new field starts affecting runs).
const fingerprintVersion = 1

// Fingerprint returns the content address of a request: the SHA-256 of
// its canonical JSON form, hex-encoded. Equal fingerprints mean
// identical emulation inputs, hence (by determinism) identical
// results.
func Fingerprint(req Request) (string, error) {
	doc := fingerprintDoc{
		V:              fingerprintVersion,
		Kind:           req.Kind,
		Scenario:       req.Scenario,
		StudyScenarios: req.StudyScenarios,
		StudyDays:      req.StudyDays,
		StudySeed:      req.StudySeed,
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("serve: fingerprinting request: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
