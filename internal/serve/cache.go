package serve

import "container/list"

// lru is a fixed-capacity least-recently-used cache from fingerprint
// to *Outcome. It is not safe for concurrent use; the Service guards
// it with its mutex.
type lru struct {
	cap   int                      // immutable after newLRU
	ll    *list.List               //bce:guardedby Service.mu — front = most recently used
	items map[string]*list.Element //bce:guardedby Service.mu
}

type lruEntry struct {
	key string
	out *Outcome
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) get(key string) (*Outcome, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).out, true
}

func (c *lru) put(key string, out *Outcome) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).out = out
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, out: out})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the number of cached outcomes. Only tests call it, on an
// lru no other goroutine can reach.
func (c *lru) len() int { return c.ll.Len() } //bce:lockok test-only accessor on an unshared lru
