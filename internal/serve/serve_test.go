package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"bce/internal/runner"
	"bce/internal/scenario"
)

func tinyScenario(seed int64) *scenario.Scenario {
	s := DefaultLoadgenScenario(0.02)
	s.Seed = seed
	return s
}

func runRequest(seed int64) Request {
	return Request{Kind: KindRun, Scenario: tinyScenario(seed)}
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	a, err := Fingerprint(runRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(runRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical requests fingerprint differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not a hex SHA-256", a)
	}
	c, _ := Fingerprint(runRequest(2))
	if a == c {
		t.Fatal("different seeds share a fingerprint")
	}
	// A study request never collides with a run request.
	d, _ := Fingerprint(Request{Kind: KindStudy, StudyScenarios: 3, StudyDays: 0.1, StudySeed: 1})
	if d == a {
		t.Fatal("study and run requests share a fingerprint")
	}
}

// Two textually different uploads that parse to the same scenario must
// share a fingerprint: canonicalization happens by re-marshalling the
// typed struct, not by hashing upload bytes.
func TestFingerprintCanonicalizes(t *testing.T) {
	j1 := `{"name":"x","duration_days":10,"seed":1,` +
		`"host":{"ncpu":1,"cpu_gflops":1,"min_queue_hours":0.5,"max_queue_hours":1},` +
		`"projects":[{"name":"p","share":100,"apps":[{"name":"a","ncpus":1,"mean_secs":600,"latency_secs":86400}]}]}`
	// Same content: different key order, number spelling, whitespace.
	j2 := `{ "seed": 1, "duration_days": 1e1, "name": "x",` +
		`"projects":[{"apps":[{"latency_secs":86400,"name":"a","ncpus":1,"mean_secs":600}],"share":100.0,"name":"p"}],` +
		`"host":{"max_queue_hours":1,"ncpu":1,"cpu_gflops":1,"min_queue_hours":0.5} }`
	s1, err := scenario.Load(strings.NewReader(j1))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := scenario.Load(strings.NewReader(j2))
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := Fingerprint(Request{Kind: KindRun, Scenario: s1})
	f2, _ := Fingerprint(Request{Kind: KindRun, Scenario: s2})
	if f1 != f2 {
		t.Fatalf("equivalent uploads fingerprint differently:\n%s\n%s", f1, f2)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.put("a", &Outcome{Fingerprint: "a"})
	c.put("b", &Outcome{Fingerprint: "b"})
	if _, ok := c.get("a"); !ok { // touch a: b becomes the LRU entry
		t.Fatal("a missing before capacity reached")
	}
	c.put("c", &Outcome{Fingerprint: "c"})
	if _, ok := c.get("b"); ok {
		t.Fatal("least-recently-used entry b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %s evicted wrongly", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// Do must execute once and then serve the identical request from the
// cache, as counted by the Runs statistic.
func TestDoCachesByContent(t *testing.T) {
	s := New(Config{Batch: runner.Options{Workers: 2}})
	out1, hit1, err := s.Do(context.Background(), runRequest(1)) //bce:ctxshim test
	if err != nil || hit1 {
		t.Fatalf("first Do: hit=%v err=%v", hit1, err)
	}
	out2, hit2, err := s.Do(context.Background(), runRequest(1)) //bce:ctxshim test
	if err != nil || !hit2 {
		t.Fatalf("second Do: hit=%v err=%v, want cache hit", hit2, err)
	}
	if out1 != out2 {
		t.Fatal("cache returned a different outcome object")
	}
	st := s.Stats()
	if st.Runs != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 run / 1 hit", st)
	}
	// A different seed is a different content address.
	_, hit3, err := s.Do(context.Background(), runRequest(2)) //bce:ctxshim test
	if err != nil || hit3 {
		t.Fatalf("different request: hit=%v err=%v, want miss", hit3, err)
	}
	if s.Stats().Runs != 2 {
		t.Fatalf("Runs = %d, want 2", s.Stats().Runs)
	}
}

func TestSubmitRequiresStart(t *testing.T) {
	s := New(Config{})
	if _, err := s.Submit(runRequest(1)); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Submit before Start: %v, want ErrNotStarted", err)
	}
}

func TestSubmitPollOutcome(t *testing.T) {
	s := New(Config{Batch: runner.Options{Workers: 2}})
	ctx, cancel := context.WithCancel(context.Background()) //bce:ctxshim test
	defer cancel()
	s.Start(ctx)
	v, err := s.Submit(runRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.State.Terminal() {
		t.Fatalf("ticket = %+v", v)
	}
	waitDone(t, s, v.ID)
	out, finished, err := s.Outcome(v.ID)
	if err != nil || !finished || out == nil || out.Result == nil {
		t.Fatalf("outcome: finished=%v err=%v out=%v", finished, err, out)
	}
	if out.Log == "" {
		t.Fatal("run produced no message log")
	}
	if s.Stats().Runs != 1 {
		t.Fatalf("Runs = %d, want 1", s.Stats().Runs)
	}
}

// A submission identical to a live job must return the same ticket
// instead of a second queue slot.
func TestSubmitDedupsLiveJobs(t *testing.T) {
	s := New(Config{Batch: runner.Options{Workers: 1}})
	// Not started: enqueue manually by starting with a blocked worker.
	ctx, cancel := context.WithCancel(context.Background()) //bce:ctxshim test
	defer cancel()
	s.Start(ctx)
	// A long-ish run keeps the job live while we resubmit.
	scn := tinyScenario(4)
	scn.DurationDays = 0.5
	req := Request{Kind: KindRun, Scenario: scn}
	v1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID != v2.ID {
		t.Fatalf("identical live submissions got tickets %s and %s", v1.ID, v2.ID)
	}
	waitDone(t, s, v1.ID)
}

func TestQueueFullSheds(t *testing.T) {
	s := New(Config{Batch: runner.Options{Workers: 1}, QueueCap: 1})
	ctx, cancel := context.WithCancel(context.Background()) //bce:ctxshim test
	defer cancel()
	s.Start(ctx)
	// Occupy the single worker and the single queue slot, then overflow.
	var tickets []JobView
	shed := 0
	for i := int64(10); i < 20; i++ {
		v, err := s.Submit(runRequest(i))
		if errors.Is(err, ErrQueueFull) {
			shed++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, v)
	}
	if shed == 0 {
		t.Fatal("queue of capacity 1 absorbed 10 submissions without shedding")
	}
	if s.Stats().Shed != shed {
		t.Fatalf("Shed stat = %d, want %d", s.Stats().Shed, shed)
	}
	if ra := s.RetryAfter(); ra < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", ra)
	}
	for _, v := range tickets {
		waitDone(t, s, v.ID)
	}
}

func TestWatchSeesTerminalState(t *testing.T) {
	s := New(Config{Batch: runner.Options{Workers: 1}})
	ctx, cancel := context.WithCancel(context.Background()) //bce:ctxshim test
	defer cancel()
	s.Start(ctx)
	v, err := s.Submit(Request{Kind: KindStudy, StudyScenarios: 2, StudyDays: 0.02, StudySeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelW, err := s.Watch(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelW()
	var last Event
	deadline := time.After(60 * time.Second) //bce:wallclock test timeout
	for {
		select {
		case ev, open := <-ch:
			if !open {
				if !last.State.Terminal() {
					t.Fatalf("watch closed at non-terminal state %+v", last)
				}
				if last.State != StateDone {
					t.Fatalf("study ended %+v", last)
				}
				return
			}
			last = ev
		case <-deadline:
			t.Fatalf("no terminal event; last %+v", last)
		}
	}
}

func TestCapWriter(t *testing.T) {
	w := &capWriter{limit: 10}
	n, _ := w.Write([]byte("0123456789ABCDEF"))
	if n != 16 { // reports full write so the logger never errors
		t.Fatalf("n = %d, want 16", n)
	}
	if w.String() != "0123456789" || !w.truncated {
		t.Fatalf("buf = %q truncated=%v", w.String(), w.truncated)
	}
	w2 := &capWriter{limit: 10}
	w2.Write([]byte("short")) //bce:errok capWriter never errors
	if w2.truncated {
		t.Fatal("under-limit write marked truncated")
	}
}

func waitDone(t *testing.T, s *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second) //bce:wallclock test timeout
	for {
		v, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			if v.State != StateDone {
				t.Fatalf("job %s failed: %s", id, v.Err)
			}
			return
		}
		if time.Now().After(deadline) { //bce:wallclock test timeout
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond) //bce:wallclock test poll
	}
}
