// Package serve is the emulator's async job-submission service — the
// layer that turns the one-shot web frontend into a traffic-bearing
// system (ROADMAP item 2). It is shaped like the BOINC server
// machinery the paper's platform descends from: volunteer-facing
// services survive load not by spawning unbounded work per request but
// by queueing submissions behind a bounded worker pool and shedding
// load explicitly when the queue is full.
//
// The pieces:
//
//   - a bounded job queue: Submit returns a ticket immediately (or
//     ErrQueueFull, which HTTP layers map to 429 + Retry-After), and a
//     fixed worker pool sized off runner.Options drains it;
//   - a content-addressed result cache: an emulation is a pure
//     function of (scenario fingerprint, seed, policies, days) by the
//     determinism contract (DESIGN.md §10), so identical submissions
//     are served from the cache without re-emulating, with LRU
//     eviction bounding memory;
//   - in-flight deduplication: a submission identical to a queued or
//     running job returns that job's ticket instead of a new slot;
//   - progress events: every job publishes state transitions (and,
//     for studies, scenario counts) to watchers, which the web layer
//     streams out as server-sent events;
//   - a synchronous fast-path (Do) for tiny requests: cache-aware and
//     bounded by its own worker-sized semaphore, so small interactive
//     submissions keep their single-roundtrip UX without bypassing
//     load control.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"bce/internal/client"
	"bce/internal/population"
	"bce/internal/runner"
	"bce/internal/scenario"
)

// Errors the HTTP layer maps to response codes.
var (
	// ErrQueueFull is load-shedding: the bounded queue has no room.
	// HTTP layers respond 429 with a Retry-After estimate.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrBusy is the synchronous fast-path's shed: every sync slot is
	// occupied. Same 429 mapping as ErrQueueFull.
	ErrBusy = errors.New("serve: all workers busy")
	// ErrNotStarted is returned by Submit before Start has launched
	// the worker pool: an enqueued job would never run.
	ErrNotStarted = errors.New("serve: service not started")
	// ErrUnknownJob is returned for ticket IDs the service has no
	// record of (never issued, or evicted).
	ErrUnknownJob = errors.New("serve: unknown job")
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Kind selects what a job computes.
type Kind string

const (
	KindRun   Kind = "run"   // one emulation of one scenario
	KindStudy Kind = "study" // a streaming population study
)

// Request describes one unit of work. Exactly the fields that the
// fingerprint canonicalizes determine the result, so two Requests with
// equal fingerprints are interchangeable.
type Request struct {
	Kind Kind

	// Scenario is the full emulator input for KindRun (it carries the
	// scenario JSON, seed, policies, and duration — everything the
	// result is a function of).
	Scenario *scenario.Scenario

	// Study parameters for KindStudy.
	StudyScenarios int
	StudyDays      float64
	StudySeed      int64
}

// Validate checks the request is runnable before it takes a queue slot.
func (r Request) Validate() error {
	switch r.Kind {
	case KindRun:
		if r.Scenario == nil {
			return fmt.Errorf("serve: run request without a scenario")
		}
		if _, err := r.Scenario.Config(); err != nil {
			return err
		}
	case KindStudy:
		if r.StudyScenarios <= 0 {
			return fmt.Errorf("serve: study request with %d scenarios", r.StudyScenarios)
		}
		if r.StudyDays <= 0 {
			return fmt.Errorf("serve: study request with nonpositive days")
		}
	default:
		return fmt.Errorf("serve: unknown job kind %q", r.Kind)
	}
	return nil
}

// Outcome is a finished job's payload — everything the rendering layer
// needs, retained in the result cache under the request fingerprint.
type Outcome struct {
	Fingerprint string
	Kind        Kind

	// KindRun payload.
	Scenario *scenario.Scenario
	Result   *client.Result
	Log      string // message log, capped at maxLogBytes
	LogCap   bool   // true when the log exceeded the cap and was cut

	// KindStudy payload.
	Study *population.Study
}

// Event is one progress notification streamed to a job's watchers.
type Event struct {
	State State  `json:"state"`
	Err   string `json:"err,omitempty"`
	// Done/Total report study progress (scenarios folded); zero for
	// single runs, whose only transitions are the state changes.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// CacheHit marks jobs satisfied from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// JobView is a snapshot of a job, safe to serialize.
type JobView struct {
	ID       string `json:"id"`
	Kind     Kind   `json:"kind"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Err      string `json:"err,omitempty"`
	Done     int    `json:"done,omitempty"`
	Total    int    `json:"total,omitempty"`
	// QueuePos is the number of jobs ahead at snapshot time (1-based
	// position minus one); meaningful only while queued.
	QueuePos int `json:"queue_pos,omitempty"`
}

// job is the service-internal record. id/fp/req/seq are immutable
// after creation (runJob reads them without the lock); everything
// mutable is guarded by the owning Service's mutex.
type job struct {
	id       string
	fp       string
	req      Request
	state    State        //bce:guardedby Service.mu
	err      string       //bce:guardedby Service.mu
	cacheHit bool         //bce:guardedby Service.mu
	done     int          //bce:guardedby Service.mu — study progress
	total    int          //bce:guardedby Service.mu
	outcome  *Outcome     //bce:guardedby Service.mu
	watchers []chan Event //bce:guardedby Service.mu
	seq      int          // admission order, for queue-position estimates
}

// Config sizes the service. The zero value selects all defaults.
type Config struct {
	// Batch sizes the worker pool: the pool has
	// runner.Resolve(runner.WithOptions(Batch)).Workers workers, i.e.
	// Batch.Workers or GOMAXPROCS. Progress/FailFast are unused here.
	Batch runner.Options
	// QueueCap bounds the number of queued (not yet running) jobs;
	// beyond it Submit sheds with ErrQueueFull. Default 64.
	QueueCap int
	// CacheEntries bounds the LRU result cache. Default 128.
	CacheEntries int
	// MaxJobs bounds retained job records (tickets stay resolvable
	// until evicted oldest-first). Default 1024.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// Stats are the service's monotonic counters plus a queue snapshot.
type Stats struct {
	Runs      int // emulations/studies actually executed (cache misses)
	CacheHits int // submissions served from the result cache
	Shed      int // submissions rejected with ErrQueueFull/ErrBusy
	Queued    int // jobs waiting right now
	Running   int // jobs executing right now
}

// Service is the async job-submission engine. Construct with New,
// launch the worker pool with Start; Submit/Job/Outcome/Watch are safe
// for concurrent use.
type Service struct {
	// RunTimeout caps the wall-clock time of one queued emulation or
	// study (0 = no cap). Read at execution time, so it may be set any
	// time before Start.
	RunTimeout time.Duration

	cfg     Config
	workers int

	mu      sync.Mutex
	jobs    map[string]*job //bce:guardedby mu
	order   []string        //bce:guardedby mu — job IDs in admission order, for MaxJobs eviction
	byFP    map[string]*job //bce:guardedby mu — live (queued/running) jobs for dedup
	cache   *lru            //bce:guardedby mu
	queue   chan *job       // channel ops synchronize themselves
	started bool            //bce:guardedby mu
	nextSeq int             //bce:guardedby mu
	stats   Stats           //bce:guardedby mu
	// emaRunSecs is an exponential moving average of recent execution
	// wall times, the basis of RetryAfter estimates.
	emaRunSecs float64 //bce:guardedby mu

	syncSlots chan struct{} // fast-path semaphore, sized like the pool
	wg        sync.WaitGroup
}

// New builds a stopped service. Call Start to launch the worker pool;
// the synchronous fast-path (Do) works without Start.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	workers := runner.Resolve(runner.WithOptions(cfg.Batch)).Workers
	if workers < 1 {
		workers = 1
	}
	return &Service{
		cfg:       cfg,
		workers:   workers,
		jobs:      make(map[string]*job),
		byFP:      make(map[string]*job),
		cache:     newLRU(cfg.CacheEntries),
		queue:     make(chan *job, cfg.QueueCap),
		syncSlots: make(chan struct{}, workers),
	}
}

// Workers reports the worker-pool size.
func (s *Service) Workers() int { return s.workers }

// QueueCap reports the queue capacity.
func (s *Service) QueueCap() int { return s.cfg.QueueCap }

// Start launches the worker pool under ctx: cancelling ctx stops the
// workers (in-flight emulations stop at the next event-batch
// boundary). Once the pool has exited, jobs still sitting in the queue
// are failed and their watcher channels closed — without this, a
// cancelled service would leave queued tickets StateQueued forever and
// every subscribed watcher channel unclosed. Start is idempotent; Wait
// blocks until the pool and the shutdown sweep have finished.
func (s *Service) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	var workers sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		workers.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer workers.Done()
			s.worker(ctx)
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-ctx.Done()
		workers.Wait()
		s.shutdown()
	}()
}

// shutdown fails every job still queued after the workers have exited
// and closes its watcher channels, then marks the service stopped so
// later Submits shed with ErrNotStarted instead of enqueueing work
// nothing will run.
func (s *Service) shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.started = false
	for {
		select {
		case j := <-s.queue:
			delete(s.byFP, j.fp)
			j.state = StateFailed
			j.err = "serve: service stopped before the job ran"
			s.notifyLocked(j)
		default:
			return
		}
	}
}

// Started reports whether the worker pool is running.
func (s *Service) Started() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started
}

// Wait blocks until the worker pool has exited (after the Start
// context is cancelled).
func (s *Service) Wait() { s.wg.Wait() }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = len(s.queue)
	return st
}

// RetryAfter estimates how long a shed client should wait before
// resubmitting: the queue's expected drain time through the pool,
// floored at one second.
func (s *Service) RetryAfter() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	ema := s.emaRunSecs
	if ema <= 0 {
		ema = 1
	}
	backlog := len(s.queue) + s.stats.Running + 1
	secs := ema * float64(backlog) / float64(s.workers)
	if secs < 1 {
		secs = 1
	}
	return time.Duration(math.Ceil(secs)) * time.Second
}

// Submit enqueues a request and returns its ticket. A submission whose
// fingerprint matches a live job returns that job's ticket; one whose
// result is cached returns an already-done ticket without taking a
// queue slot; a full queue sheds with ErrQueueFull.
func (s *Service) Submit(req Request) (JobView, error) {
	if err := req.Validate(); err != nil {
		return JobView{}, err
	}
	fp, err := Fingerprint(req)
	if err != nil {
		return JobView{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if live, ok := s.byFP[fp]; ok {
		return s.viewLocked(live), nil
	}
	if out, ok := s.cache.get(fp); ok {
		j := s.newJobLocked(req, fp)
		j.state = StateDone
		j.cacheHit = true
		j.outcome = out
		s.stats.CacheHits++
		return s.viewLocked(j), nil
	}
	if !s.started {
		return JobView{}, ErrNotStarted
	}
	j := s.newJobLocked(req, fp)
	select {
	case s.queue <- j:
	default:
		s.dropJobLocked(j)
		s.stats.Shed++
		return JobView{}, ErrQueueFull
	}
	s.byFP[fp] = j
	return s.viewLocked(j), nil
}

// Do is the synchronous fast-path: serve from the cache, or execute
// the request inline under ctx. It is bounded by a worker-sized
// semaphore; when every sync slot is taken it sheds with ErrBusy
// instead of queueing, keeping the fast path fast under load. The
// returned bool reports a cache hit.
func (s *Service) Do(ctx context.Context, req Request) (*Outcome, bool, error) {
	if err := req.Validate(); err != nil {
		return nil, false, err
	}
	fp, err := Fingerprint(req)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if out, ok := s.cache.get(fp); ok {
		s.stats.CacheHits++
		s.mu.Unlock()
		return out, true, nil
	}
	s.mu.Unlock()

	select {
	case s.syncSlots <- struct{}{}:
	default:
		s.mu.Lock()
		s.stats.Shed++
		s.mu.Unlock()
		return nil, false, ErrBusy
	}
	defer func() { <-s.syncSlots }()

	out, err := s.execute(ctx, req, fp, nil)
	if err != nil {
		return nil, false, err
	}
	return out, false, nil
}

// Job returns a snapshot of the ticket's job.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return s.viewLocked(j), nil
}

// Outcome returns a finished job's payload. The bool is false while
// the job is still queued or running; failed jobs return an error.
func (s *Service) Outcome(id string) (*Outcome, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.state {
	case StateDone:
		return j.outcome, true, nil
	case StateFailed:
		return nil, true, errors.New(j.err)
	default:
		return nil, false, nil
	}
}

// Watch subscribes to a job's progress events. The channel carries the
// job's current state immediately, then every transition, and is
// closed once the job reaches a terminal state. The returned cancel
// func detaches the watcher (safe to call after close).
func (s *Service) Watch(id string) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	ch := make(chan Event, 16)
	ch <- s.eventLocked(j)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.watchers = append(j.watchers, ch)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				return
			}
		}
	}
	return ch, cancel, nil
}

// --- internals ---

func (s *Service) newJobLocked(req Request, fp string) *job {
	s.nextSeq++
	j := &job{
		// Tickets are sequence + fingerprint prefix: self-describing
		// in logs, no randomness needed (the service is not an
		// authentication boundary; results are content-addressed).
		id:    fmt.Sprintf("j%d-%.8s", s.nextSeq, fp),
		fp:    fp,
		req:   req,
		state: StateQueued,
		seq:   s.nextSeq,
	}
	if req.Kind == KindStudy {
		j.total = req.StudyScenarios
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Evict oldest terminal records past the cap; live jobs are never
	// evicted (the queue bound keeps their count small).
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			if old, ok := s.jobs[id]; ok && old.state.Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	return j
}

func (s *Service) dropJobLocked(j *job) {
	delete(s.jobs, j.id)
	if n := len(s.order); n > 0 && s.order[n-1] == j.id {
		s.order = s.order[:n-1]
	}
}

func (s *Service) viewLocked(j *job) JobView {
	v := JobView{
		ID:       j.id,
		Kind:     j.req.Kind,
		State:    j.state,
		CacheHit: j.cacheHit,
		Err:      j.err,
		Done:     j.done,
		Total:    j.total,
	}
	if j.state == StateQueued {
		for _, other := range s.byFP {
			if other.state == StateQueued && other.seq < j.seq {
				v.QueuePos++
			}
		}
	}
	return v
}

func (s *Service) eventLocked(j *job) Event {
	return Event{State: j.state, Err: j.err, Done: j.done, Total: j.total, CacheHit: j.cacheHit}
}

// notifyLocked publishes the job's current state to every watcher.
// Slow watchers lose intermediate events (non-blocking send) but never
// the terminal one: the channel close itself signals termination.
func (s *Service) notifyLocked(j *job) {
	ev := s.eventLocked(j)
	for _, w := range j.watchers {
		select {
		case w <- ev:
		default:
		}
	}
	if j.state.Terminal() {
		for _, w := range j.watchers {
			close(w)
		}
		j.watchers = nil
	}
}

func (s *Service) worker(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(ctx, j)
		}
	}
}

func (s *Service) runJob(ctx context.Context, j *job) {
	s.mu.Lock()
	j.state = StateRunning
	s.stats.Running++
	s.notifyLocked(j)
	s.mu.Unlock()

	onProgress := func(done, total int) {
		s.mu.Lock()
		j.done, j.total = done, total
		s.notifyLocked(j)
		s.mu.Unlock()
	}
	out, err := s.execute(ctx, j.req, j.fp, onProgress)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Running--
	delete(s.byFP, j.fp)
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.outcome = out
	}
	s.notifyLocked(j)
}

// maxLogBytes caps the retained message log of one run; the cap exists
// so the LRU's entry-count bound also bounds memory.
const maxLogBytes = 2 << 20

// execute runs the request under ctx (plus RunTimeout, if set), stores
// the outcome in the cache, and bumps the run counter and duration
// estimate. It is the single choke point both the queue workers and
// the sync fast-path go through, so "Runs" counts real emulations
// exactly.
func (s *Service) execute(ctx context.Context, req Request, fp string, onProgress func(done, total int)) (*Outcome, error) {
	if s.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.RunTimeout)
		defer cancel()
	}
	start := time.Now() //bce:wallclock run-duration EMA feeds real-time Retry-After estimates
	out := &Outcome{Fingerprint: fp, Kind: req.Kind}
	switch req.Kind {
	case KindRun:
		cfg, err := req.Scenario.Config()
		if err != nil {
			return nil, err
		}
		lw := &capWriter{limit: maxLogBytes}
		cfg.RecordTimeline = true
		cfg.Log = lw
		res, err := runner.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		out.Scenario = req.Scenario
		out.Result = res
		out.Log = lw.String()
		out.LogCap = lw.truncated
	case KindStudy:
		st, err := population.Run(ctx, population.Params{
			Scenarios:  req.StudyScenarios,
			Seed:       req.StudySeed,
			Population: scenario.PopulationParams{DurationDays: req.StudyDays},
			Progress:   onProgress,
		})
		if err != nil {
			return nil, err
		}
		out.Study = st
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q", req.Kind)
	}
	elapsed := time.Since(start).Seconds() //bce:wallclock see above

	s.mu.Lock()
	s.stats.Runs++
	if s.emaRunSecs == 0 {
		s.emaRunSecs = elapsed
	} else {
		s.emaRunSecs = 0.7*s.emaRunSecs + 0.3*elapsed
	}
	s.cache.put(fp, out)
	s.mu.Unlock()
	return out, nil
}

// capWriter retains the first limit bytes written and records whether
// anything was dropped.
type capWriter struct {
	buf       []byte
	limit     int
	truncated bool
}

func (w *capWriter) Write(p []byte) (int, error) {
	if room := w.limit - len(w.buf); room > 0 {
		if len(p) <= room {
			w.buf = append(w.buf, p...)
		} else {
			w.buf = append(w.buf, p[:room]...)
			w.truncated = true
		}
	} else if len(p) > 0 {
		w.truncated = true
	}
	return len(p), nil
}

func (w *capWriter) String() string { return string(w.buf) }
