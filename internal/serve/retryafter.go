// Robust Retry-After parsing, shared by the loadgen client and the
// fabric worker. RFC 9110 allows either a delay in seconds or an HTTP
// date; real servers additionally emit fractional seconds, zeros, and
// garbage, none of which should turn a polite backoff into a hot retry
// loop or an hour-long stall.
package serve

import (
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

const (
	// DefaultRetryAfter is used when the header is absent or
	// unparseable.
	DefaultRetryAfter = time.Second
	// MinRetryAfter floors the parsed delay: a server-sent 0 (or a date
	// in the past) must still back off instead of hammering.
	MinRetryAfter = 500 * time.Millisecond
	// MaxRetryAfter caps the parsed delay so a bogus far-future date or
	// huge number cannot stall a client for hours.
	MaxRetryAfter = 5 * time.Minute
)

// ParseRetryAfter interprets a Retry-After header value: delay seconds
// (integer or fractional) or an HTTP date, per RFC 9110 §10.2.3. The
// result is clamped to [MinRetryAfter, MaxRetryAfter]; an empty or
// unparseable value yields DefaultRetryAfter. The result is always a
// sane positive backoff, whatever the server sent.
func ParseRetryAfter(header string) time.Duration {
	return parseRetryAfterAt(header, time.Now()) //bce:wallclock HTTP-date Retry-After is defined relative to real time
}

// parseRetryAfterAt is ParseRetryAfter with an injectable clock for the
// HTTP-date form.
func parseRetryAfterAt(header string, now time.Time) time.Duration {
	s := strings.TrimSpace(header)
	if s == "" {
		return DefaultRetryAfter
	}
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsNaN(secs) || secs > MaxRetryAfter.Seconds() {
			return MaxRetryAfter
		}
		return clampRetryAfter(time.Duration(secs * float64(time.Second)))
	}
	if t, err := http.ParseTime(s); err == nil {
		return clampRetryAfter(t.Sub(now))
	}
	return DefaultRetryAfter
}

func clampRetryAfter(d time.Duration) time.Duration {
	if d < MinRetryAfter {
		return MinRetryAfter
	}
	if d > MaxRetryAfter {
		return MaxRetryAfter
	}
	return d
}
