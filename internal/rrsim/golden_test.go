package rrsim

// This file freezes the pre-Simulator implementation of Run (the
// straightforward allocate-per-step, scan-all-jobs version) as a
// reference fixture. The Simulator rewrite must produce bit-identical
// results — the emulator's figures of merit are reproduced to the last
// bit across runs, so even last-ulp drift in rr_sim would show up as a
// spurious emulation difference. TestGoldenCompare checks equality on
// seeded random workloads; BenchmarkRRSimReference keeps the old cost
// measurable next to BenchmarkRRSim.

import (
	"math"
	"math/rand"
	"testing"

	"bce/internal/host"
)

// referenceAllocate is the frozen pre-Simulator allocate.
func referenceAllocate(demand, weight []float64, total float64) []float64 {
	n := len(demand)
	alloc := make([]float64, n)
	if total <= 0 {
		return alloc
	}
	active := make([]bool, n)
	nActive := 0
	for i := range demand {
		if demand[i] > 0 && weight[i] > 0 {
			active[i] = true
			nActive++
		}
	}
	remaining := total
	for iter := 0; iter < n+1 && nActive > 0 && remaining > 1e-12; iter++ {
		var wsum float64
		for i := range demand {
			if active[i] {
				wsum += weight[i]
			}
		}
		if wsum <= 0 {
			break
		}
		capped := false
		for i := range demand {
			if !active[i] {
				continue
			}
			fair := remaining * weight[i] / wsum
			if alloc[i]+fair >= demand[i]-1e-12 {
				remaining -= demand[i] - alloc[i]
				alloc[i] = demand[i]
				active[i] = false
				nActive--
				capped = true
			}
		}
		if !capped {
			for i := range demand {
				if active[i] {
					alloc[i] += remaining * weight[i] / wsum
				}
			}
			remaining = 0
		}
	}
	return alloc
}

// referenceRun is the frozen pre-Simulator Run (with the finished-job
// endangered fix, which landed just before the rewrite).
func referenceRun(in Input) *Result {
	res := &Result{}
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if in.OnFrac[t] == 0 {
			in.OnFrac[t] = 1
		}
	}
	if in.HorizonMax < in.HorizonMin {
		in.HorizonMax = in.HorizonMin
	}

	nproj := len(in.Shares)
	rem := make([]float64, len(in.Jobs))
	unfinished := 0
	for i, j := range in.Jobs {
		rem[i] = j.Remaining * j.Instances
		if rem[i] > 0 {
			unfinished++
		} else {
			j.ProjectedFinish = in.Now
			j.Endangered = false
		}
	}

	satOpen := [host.NumProcTypes]bool{}
	firstStep := true
	elapsed := 0.0

	demand := make([]float64, nproj)
	rates := make([]float64, len(in.Jobs))

	for step := 0; step < maxSteps; step++ {
		var busy [host.NumProcTypes]float64
		for i := range rates {
			rates[i] = 0
		}
		anyRate := false
		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			n := float64(in.Hardware.Proc[t].Count)
			if n == 0 {
				continue
			}
			for p := range demand {
				demand[p] = 0
			}
			for i, j := range in.Jobs {
				if j.Type == t && rem[i] > 0 && j.Project < nproj {
					demand[j.Project] += j.Instances
				}
			}
			alloc := referenceAllocate(demand, in.Shares, n)
			for p, a := range alloc {
				busy[t] += a
				if a <= 0 {
					continue
				}
				for i, j := range in.Jobs {
					if a <= 1e-12 {
						break
					}
					if j.Type != t || rem[i] <= 0 || j.Project != p {
						continue
					}
					r := math.Min(j.Instances, a)
					a -= r
					rates[i] = r * in.OnFrac[t]
					anyRate = true
				}
			}
		}

		if firstStep {
			for t := host.ProcType(0); t < host.NumProcTypes; t++ {
				n := float64(in.Hardware.Proc[t].Count)
				res.IdleNow[t] = math.Max(0, n-busy[t])
				satOpen[t] = n > 0 && busy[t] >= n-1e-9
			}
			firstStep = false
		}

		dt := math.Inf(1)
		for i := range in.Jobs {
			if rem[i] > 0 && rates[i] > 0 {
				if d := rem[i] / rates[i]; d < dt {
					dt = d
				}
			}
		}
		atEnd := false
		if unfinished == 0 || !anyRate || math.IsInf(dt, 1) {
			dt = in.HorizonMax - elapsed
			atEnd = true
			if dt <= 0 {
				break
			}
		}

		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			n := float64(in.Hardware.Proc[t].Count)
			if n == 0 {
				continue
			}
			idle := math.Max(0, n-busy[t])
			if ov := overlap(elapsed, elapsed+dt, 0, in.HorizonMin); ov > 0 {
				res.ShortfallMin[t] += idle * ov
			}
			if ov := overlap(elapsed, elapsed+dt, 0, in.HorizonMax); ov > 0 {
				res.ShortfallMax[t] += idle * ov
			}
			if satOpen[t] {
				if busy[t] >= n-1e-9 {
					res.Saturated[t] += dt
				} else {
					satOpen[t] = false
				}
			}
		}
		if in.Trace {
			res.Trace = append(res.Trace, TraceStep{
				Start: in.Now + elapsed, End: in.Now + elapsed + dt, Busy: busy,
			})
		}

		for i, j := range in.Jobs {
			if rem[i] <= 0 || rates[i] <= 0 {
				continue
			}
			rem[i] -= rates[i] * dt
			if rem[i] <= 1e-9 {
				rem[i] = 0
				unfinished--
				j.ProjectedFinish = in.Now + elapsed + dt
				j.Endangered = j.ProjectedFinish > j.Deadline-in.DeadlineMargin
				if j.Endangered {
					res.NumEndangered++
				}
			}
		}
		elapsed += dt
		if atEnd {
			break
		}
	}

	for i, j := range in.Jobs {
		if rem[i] > 0 {
			j.ProjectedFinish = math.Inf(1)
			j.Endangered = true
			res.NumEndangered++
		}
	}
	return res
}

// randomWorkload builds a randomized Input plus an identical deep copy
// of its job slice, so reference and Simulator each get private output
// fields.
func randomWorkload(rng *rand.Rand) (Input, []*Job, []*Job) {
	nproj := 1 + rng.Intn(8)
	shares := make([]float64, nproj)
	for p := range shares {
		switch rng.Intn(4) {
		case 0:
			shares[p] = 0 // no share: its jobs can never run
		default:
			shares[p] = math.Trunc(rng.Float64()*1000) / 10
		}
	}
	hw := &host.Hardware{}
	hw.Proc[host.CPU] = host.Resource{Count: rng.Intn(9), FLOPSPerInst: 1e9}
	if rng.Intn(2) == 0 {
		hw.Proc[host.NvidiaGPU] = host.Resource{Count: rng.Intn(3), FLOPSPerInst: 1e11}
	}
	if rng.Intn(3) == 0 {
		hw.Proc[host.AtiGPU] = host.Resource{Count: rng.Intn(2), FLOPSPerInst: 5e10}
	}

	now := rng.Float64() * 1e6
	in := Input{
		Now:            now,
		Hardware:       hw,
		Shares:         shares,
		HorizonMin:     rng.Float64() * 3600,
		HorizonMax:     rng.Float64() * 86400,
		DeadlineMargin: float64(rng.Intn(3)) * 60,
		Trace:          rng.Intn(3) == 0,
	}
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if rng.Intn(2) == 0 {
			in.OnFrac[t] = 0.1 + 0.9*rng.Float64()
		}
	}

	njobs := rng.Intn(120)
	a := make([]*Job, njobs)
	b := make([]*Job, njobs)
	for i := range a {
		j := Job{
			// Occasionally nproj itself: a project with no share entry.
			Project:   rng.Intn(nproj + 1),
			Type:      host.CPU,
			Instances: 1,
			Remaining: rng.Float64() * 20000,
			Deadline:  now + rng.Float64()*2*86400 - 3600,
		}
		switch rng.Intn(4) {
		case 0:
			j.Type = host.NvidiaGPU
			j.Instances = 1
		case 1:
			if rng.Intn(2) == 0 {
				j.Type = host.AtiGPU
			}
			j.Instances = 0.5 + rng.Float64()*3.5 // multicore / fractional
		}
		if rng.Intn(10) == 0 {
			j.Remaining = 0 // finished before the simulation starts
		}
		cp := j
		a[i] = &j
		b[i] = &cp
	}
	in.Jobs = a
	return in, a, b
}

// TestGoldenCompare checks that the Simulator produces bit-identical
// results to the frozen reference implementation on seeded random
// workloads — every Result field and every per-job output, compared
// with ==, no tolerance.
func TestGoldenCompare(t *testing.T) {
	sim := New() // reused across cases to exercise scratch-buffer reuse
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in, jobsNew, jobsRef := randomWorkload(rng)

		in.Jobs = jobsRef
		want := referenceRun(in)
		in.Jobs = jobsNew
		got := sim.Run(in)

		if got.ShortfallMin != want.ShortfallMin || got.ShortfallMax != want.ShortfallMax ||
			got.Saturated != want.Saturated || got.IdleNow != want.IdleNow ||
			got.NumEndangered != want.NumEndangered {
			t.Fatalf("seed %d: Result mismatch\n got %+v\nwant %+v", seed, got, want)
		}
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("seed %d: trace length %d != %d", seed, len(got.Trace), len(want.Trace))
		}
		for i := range got.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Fatalf("seed %d: trace step %d: got %+v want %+v", seed, i, got.Trace[i], want.Trace[i])
			}
		}
		for i := range jobsNew {
			g, w := jobsNew[i], jobsRef[i]
			// Compare bit patterns so +Inf == +Inf and the test would
			// catch a NaN regression too.
			if math.Float64bits(g.ProjectedFinish) != math.Float64bits(w.ProjectedFinish) ||
				g.Endangered != w.Endangered {
				t.Fatalf("seed %d job %d: got finish=%v endangered=%v, want finish=%v endangered=%v",
					seed, i, g.ProjectedFinish, g.Endangered, w.ProjectedFinish, w.Endangered)
			}
		}
	}
}

// TestPackageRunMatchesSimulator pins the compat wrapper to the method.
func TestPackageRunMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in, jobsNew, jobsRef := randomWorkload(rng)
	in.Jobs = jobsRef
	want := New().Run(in)
	in.Jobs = jobsNew
	got := Run(in)
	if got.ShortfallMin != want.ShortfallMin || got.ShortfallMax != want.ShortfallMax ||
		got.Saturated != want.Saturated || got.IdleNow != want.IdleNow ||
		got.NumEndangered != want.NumEndangered {
		t.Fatalf("Run wrapper diverged: %+v vs %+v", got, want)
	}
}

// benchWorkload builds a deterministic workload of the given size.
// Deadlines are spread so some jobs are endangered, and remaining times
// differ so the simulation takes many completion steps (the worst case
// for the per-step scans).
func benchWorkload(njobs, nproj int) Input {
	rng := rand.New(rand.NewSource(7))
	shares := make([]float64, nproj)
	for p := range shares {
		shares[p] = float64(1 + rng.Intn(10))
	}
	hw := &host.Hardware{}
	hw.Proc[host.CPU] = host.Resource{Count: 4, FLOPSPerInst: 1e9}
	hw.Proc[host.NvidiaGPU] = host.Resource{Count: 1, FLOPSPerInst: 1e11}
	jobs := make([]*Job, njobs)
	for i := range jobs {
		j := &Job{
			Project:   rng.Intn(nproj),
			Type:      host.CPU,
			Instances: 1,
			Remaining: 100 + rng.Float64()*20000,
			Deadline:  rng.Float64() * 4 * 86400,
		}
		if i%8 == 0 {
			j.Type = host.NvidiaGPU
		}
		jobs[i] = j
	}
	return Input{
		Hardware:       hw,
		Shares:         shares,
		HorizonMin:     3600,
		HorizonMax:     86400,
		DeadlineMargin: 120,
		Jobs:           jobs,
	}
}

var benchSizes = []struct {
	name        string
	jobs, nproj int
}{
	{"small", 10, 2},
	{"medium", 100, 10},
	{"jobheavy", 1500, 20},
}

// BenchmarkRRSim measures the Simulator across workload sizes; Run only
// writes job output fields, so the input is safely reused across
// iterations.
func BenchmarkRRSim(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			in := benchWorkload(sz.jobs, sz.nproj)
			sim := New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(in)
			}
		})
	}
}

// BenchmarkRRSimReference measures the frozen pre-Simulator code on the
// same workloads, keeping the before/after comparison reproducible.
func BenchmarkRRSimReference(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			in := benchWorkload(sz.jobs, sz.nproj)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				referenceRun(in)
			}
		})
	}
}
