package rrsim

import (
	"math"
	"testing"
	"testing/quick"

	"bce/internal/host"
	"bce/internal/job"
)

func mkJob(p int, instances, remaining, deadline float64) *Job {
	return &Job{Project: p, Type: host.CPU, Instances: instances, Remaining: remaining, Deadline: deadline}
}

func mkGPUJob(p int, instances, remaining, deadline float64) *Job {
	j := mkJob(p, instances, remaining, deadline)
	j.Type = host.NvidiaGPU
	return j
}

func cpuHost(n int) *host.Hardware {
	h := host.StdHost(n, 1e9, 0, 0)
	return &h.Hardware
}

func mixedHost(ncpu, ngpu int) *host.Hardware {
	h := host.StdHost(ncpu, 1e9, ngpu, 10e9)
	return &h.Hardware
}

func TestAllocateBasics(t *testing.T) {
	sim := New()
	allocate := sim.allocate
	// Two equal-weight demands that both exceed fair share split evenly.
	a := allocate([]float64{10, 10}, []float64{1, 1}, 4)
	if math.Abs(a[0]-2) > 1e-9 || math.Abs(a[1]-2) > 1e-9 {
		t.Fatalf("equal split = %v, want [2 2]", a)
	}
	// A small demand caps and its excess flows to the other.
	a = allocate([]float64{1, 10}, []float64{1, 1}, 4)
	if math.Abs(a[0]-1) > 1e-9 || math.Abs(a[1]-3) > 1e-9 {
		t.Fatalf("capped split = %v, want [1 3]", a)
	}
	// Weighted split 3:1.
	a = allocate([]float64{10, 10}, []float64{3, 1}, 4)
	if math.Abs(a[0]-3) > 1e-9 || math.Abs(a[1]-1) > 1e-9 {
		t.Fatalf("weighted split = %v, want [3 1]", a)
	}
	// Zero total.
	a = allocate([]float64{5}, []float64{1}, 0)
	if a[0] != 0 {
		t.Fatalf("zero total allocated %v", a)
	}
}

func TestAllocateProperties(t *testing.T) {
	sim := New()
	f := func(d8, w8 [6]uint8, tot uint8) bool {
		demand := make([]float64, 6)
		weight := make([]float64, 6)
		var dsum float64
		for i := range demand {
			demand[i] = float64(d8[i]) / 10
			weight[i] = float64(w8[i])
			dsum += demand[i]
		}
		total := float64(tot) / 10
		alloc := sim.allocate(demand, weight, total)
		var asum float64
		for i := range alloc {
			if alloc[i] < -1e-9 || alloc[i] > demand[i]+1e-9 {
				return false
			}
			asum += alloc[i]
		}
		if asum > total+1e-6 {
			return false
		}
		// Work-conserving: all of min(total, feasible demand) is used,
		// where feasible demand counts only positive-weight entries.
		var feasible float64
		for i := range demand {
			if weight[i] > 0 {
				feasible += demand[i]
			}
		}
		want := math.Min(total, feasible)
		return math.Abs(asum-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleJobFinishTime(t *testing.T) {
	j := mkJob(0, 1, 1000, 5000)
	res := Run(Input{
		Hardware: cpuHost(1), Shares: []float64{1},
		HorizonMin: 100, HorizonMax: 200, Jobs: []*Job{j},
	})
	if math.Abs(j.ProjectedFinish-1000) > 1e-6 {
		t.Fatalf("finish = %v, want 1000", j.ProjectedFinish)
	}
	if j.Endangered {
		t.Fatal("job with ample slack flagged endangered")
	}
	// One instance busy for 1000 s >> horizons: no shortfall, SAT runs
	// past both horizons.
	if res.ShortfallMin[host.CPU] != 0 || res.ShortfallMax[host.CPU] != 0 {
		t.Fatalf("shortfall = %v/%v, want 0", res.ShortfallMin[host.CPU], res.ShortfallMax[host.CPU])
	}
	if res.Saturated[host.CPU] < 1000 {
		t.Fatalf("SAT = %v, want >= 1000", res.Saturated[host.CPU])
	}
	if res.IdleNow[host.CPU] != 0 {
		t.Fatalf("IdleNow = %v, want 0", res.IdleNow[host.CPU])
	}
}

func TestEndangeredClassification(t *testing.T) {
	// Two equal-share projects on one CPU: each runs at rate 1/2.
	// Project 0's job (1000 s of work) finishes at 2000.
	tight := mkJob(0, 1, 1000, 1500) // misses
	loose := mkJob(1, 1, 1000, 2500) // fits
	Run(Input{
		Hardware: cpuHost(1), Shares: []float64{1, 1},
		Jobs: []*Job{tight, loose},
	})
	if !tight.Endangered {
		t.Fatalf("tight job (finish %v, deadline 1500) not endangered", tight.ProjectedFinish)
	}
	if loose.Endangered {
		t.Fatalf("loose job (finish %v, deadline 2500) endangered", loose.ProjectedFinish)
	}
}

func TestWRRSharesDetermineFinishOrder(t *testing.T) {
	// Shares 3:1 on one CPU; equal work. High-share project finishes
	// at w/(3/4) = 1333..., the other continues alone and ends at 2000.
	a := mkJob(0, 1, 1000, 1e9)
	b := mkJob(1, 1, 1000, 1e9)
	Run(Input{Hardware: cpuHost(1), Shares: []float64{3, 1}, Jobs: []*Job{a, b}})
	if math.Abs(a.ProjectedFinish-4000.0/3) > 1e-6 {
		t.Fatalf("a finish = %v, want 1333.3", a.ProjectedFinish)
	}
	if math.Abs(b.ProjectedFinish-2000) > 1e-6 {
		t.Fatalf("b finish = %v, want 2000 (total work conserved)", b.ProjectedFinish)
	}
}

func TestShortfallEmptyQueue(t *testing.T) {
	res := Run(Input{
		Hardware: cpuHost(4), Shares: []float64{1},
		HorizonMin: 100, HorizonMax: 1000,
	})
	if res.ShortfallMin[host.CPU] != 400 {
		t.Fatalf("min shortfall = %v, want 4*100", res.ShortfallMin[host.CPU])
	}
	if res.ShortfallMax[host.CPU] != 4000 {
		t.Fatalf("max shortfall = %v, want 4*1000", res.ShortfallMax[host.CPU])
	}
	if res.Saturated[host.CPU] != 0 {
		t.Fatalf("SAT = %v, want 0", res.Saturated[host.CPU])
	}
	if res.IdleNow[host.CPU] != 4 {
		t.Fatalf("IdleNow = %v, want 4", res.IdleNow[host.CPU])
	}
}

func TestShortfallPartialQueue(t *testing.T) {
	// 2 CPUs, one job of 50 s. Busy: 1 instance for 50 s.
	// Horizon 100: idle = 1*50 (while job runs) + 2*50 (after) = 150.
	j := mkJob(0, 1, 50, 1e9)
	res := Run(Input{
		Hardware: cpuHost(2), Shares: []float64{1},
		HorizonMin: 100, HorizonMax: 100, Jobs: []*Job{j},
	})
	if math.Abs(res.ShortfallMin[host.CPU]-150) > 1e-6 {
		t.Fatalf("shortfall = %v, want 150", res.ShortfallMin[host.CPU])
	}
}

func TestSaturationEndsWhenJobEnds(t *testing.T) {
	// 1 CPU, one 300 s job, then idle.
	j := mkJob(0, 1, 300, 1e9)
	res := Run(Input{
		Hardware: cpuHost(1), Shares: []float64{1},
		HorizonMin: 1000, HorizonMax: 1000, Jobs: []*Job{j},
	})
	if math.Abs(res.Saturated[host.CPU]-300) > 1e-6 {
		t.Fatalf("SAT = %v, want 300", res.Saturated[host.CPU])
	}
}

func TestGPUJobsUseGPU(t *testing.T) {
	g := mkGPUJob(0, 1, 100, 1e9)
	c := mkJob(1, 1, 100, 1e9)
	res := Run(Input{
		Hardware: mixedHost(4, 1), Shares: []float64{1, 1},
		HorizonMin: 50, HorizonMax: 50, Jobs: []*Job{g, c},
	})
	// GPU job gets the whole GPU (only GPU demand), CPU job a whole CPU.
	if math.Abs(g.ProjectedFinish-100) > 1e-6 {
		t.Fatalf("GPU job finish = %v, want 100", g.ProjectedFinish)
	}
	if math.Abs(c.ProjectedFinish-100) > 1e-6 {
		t.Fatalf("CPU job finish = %v, want 100", c.ProjectedFinish)
	}
	// 3 idle CPUs over 50 s.
	if math.Abs(res.ShortfallMin[host.CPU]-150) > 1e-6 {
		t.Fatalf("CPU shortfall = %v, want 150", res.ShortfallMin[host.CPU])
	}
	if res.ShortfallMin[host.NvidiaGPU] != 0 {
		t.Fatalf("GPU shortfall = %v, want 0", res.ShortfallMin[host.NvidiaGPU])
	}
}

func TestProjectWithoutShareGetsNothing(t *testing.T) {
	j := mkJob(0, 1, 100, 1e9)
	// Project 0 has zero share: its job can never run.
	Run(Input{Hardware: cpuHost(1), Shares: []float64{0}, Jobs: []*Job{j}})
	if !math.IsInf(j.ProjectedFinish, 1) || !j.Endangered {
		t.Fatalf("zero-share job: finish=%v endangered=%v, want inf/true", j.ProjectedFinish, j.Endangered)
	}
}

func TestGPUJobWithoutGPUNeverFinishes(t *testing.T) {
	g := mkGPUJob(0, 1, 100, 1e9)
	Run(Input{Hardware: cpuHost(2), Shares: []float64{1}, Jobs: []*Job{g}})
	if !math.IsInf(g.ProjectedFinish, 1) || !g.Endangered {
		t.Fatal("GPU job on GPU-less host should be endangered, never finishing")
	}
}

func TestOnFracSlowsExecution(t *testing.T) {
	j := mkJob(0, 1, 100, 1e9)
	in := Input{Hardware: cpuHost(1), Shares: []float64{1}, Jobs: []*Job{j}}
	in.OnFrac[host.CPU] = 0.5
	Run(in)
	if math.Abs(j.ProjectedFinish-200) > 1e-6 {
		t.Fatalf("finish with 50%% availability = %v, want 200", j.ProjectedFinish)
	}
}

func TestDeadlineMargin(t *testing.T) {
	j := mkJob(0, 1, 100, 110)
	in := Input{Hardware: cpuHost(1), Shares: []float64{1}, Jobs: []*Job{j}, DeadlineMargin: 20}
	Run(in)
	if !j.Endangered {
		t.Fatal("margin of 20 should flag a job finishing 10 s before deadline")
	}
}

func TestAlreadyFinishedJob(t *testing.T) {
	j := mkJob(0, 1, 0, 100)
	res := Run(Input{Now: 50, Hardware: cpuHost(1), Shares: []float64{1}, Jobs: []*Job{j}})
	if j.ProjectedFinish != 50 || j.Endangered {
		t.Fatalf("finished job: finish=%v endangered=%v", j.ProjectedFinish, j.Endangered)
	}
	if res.NumEndangered != 0 {
		t.Fatal("finished job counted endangered")
	}
}

// A queue entry that is already finished when the simulation starts
// cannot miss its deadline, even when Now is past Deadline − margin;
// counting it endangered inflates NumEndangered and can trigger
// needless EDF promotion.
func TestFinishedJobPastDeadlineNotEndangered(t *testing.T) {
	done := mkJob(0, 1, 0, 100) // finished; deadline long gone
	live := mkJob(0, 1, 10, 1e9)
	res := Run(Input{Now: 500, Hardware: cpuHost(1), Shares: []float64{1},
		DeadlineMargin: 120, Jobs: []*Job{done, live}})
	if done.Endangered {
		t.Fatal("finished job past its deadline flagged endangered")
	}
	if done.ProjectedFinish != 500 {
		t.Fatalf("finished job ProjectedFinish = %v, want Now", done.ProjectedFinish)
	}
	if live.Endangered || res.NumEndangered != 0 {
		t.Fatalf("spurious endangered count: %d", res.NumEndangered)
	}
}

func TestMultiInstanceJob(t *testing.T) {
	// A 4-CPU job on a 4-CPU host takes exactly its duration.
	j := mkJob(0, 4, 100, 1e9)
	res := Run(Input{Hardware: cpuHost(4), Shares: []float64{1}, Jobs: []*Job{j},
		HorizonMin: 100, HorizonMax: 100})
	if math.Abs(j.ProjectedFinish-100) > 1e-6 {
		t.Fatalf("finish = %v, want 100", j.ProjectedFinish)
	}
	if res.ShortfallMin[host.CPU] != 0 {
		t.Fatalf("shortfall = %v, want 0", res.ShortfallMin[host.CPU])
	}
}

func TestFractionalGPUJobsShare(t *testing.T) {
	// Two 0.5-GPU jobs from one project run concurrently on one GPU.
	a := mkGPUJob(0, 0.5, 100, 1e9)
	b := mkGPUJob(0, 0.5, 100, 1e9)
	Run(Input{Hardware: mixedHost(1, 1), Shares: []float64{1}, Jobs: []*Job{a, b}})
	if math.Abs(a.ProjectedFinish-100) > 1e-6 || math.Abs(b.ProjectedFinish-100) > 1e-6 {
		t.Fatalf("fractional jobs finish at %v/%v, want 100/100", a.ProjectedFinish, b.ProjectedFinish)
	}
}

func TestTraceRecordsSteps(t *testing.T) {
	a := mkJob(0, 1, 100, 1e9)
	b := mkJob(0, 1, 200, 1e9)
	res := Run(Input{Hardware: cpuHost(2), Shares: []float64{1},
		HorizonMin: 400, HorizonMax: 400, Jobs: []*Job{a, b}, Trace: true})
	if len(res.Trace) < 2 {
		t.Fatalf("trace has %d steps, want >= 2", len(res.Trace))
	}
	// First step: both busy; contiguous, nonoverlapping, busy <= count.
	if res.Trace[0].Busy[host.CPU] != 2 {
		t.Fatalf("first step busy = %v, want 2", res.Trace[0].Busy[host.CPU])
	}
	for i := 1; i < len(res.Trace); i++ {
		if math.Abs(res.Trace[i].Start-res.Trace[i-1].End) > 1e-9 {
			t.Fatal("trace steps not contiguous")
		}
	}
}

// Property: shortfall over the max horizon is bounded by
// instances × horizon, never negative, and >= shortfall over min horizon.
func TestPropertyShortfallBounds(t *testing.T) {
	f := func(njobs uint8, work [8]uint16, deadlineSlack [8]uint8, ncpu uint8) bool {
		n := int(ncpu%4) + 1
		k := int(njobs % 8)
		jobs := make([]*Job, 0, k)
		for i := 0; i < k; i++ {
			w := float64(work[i]%5000) + 1
			jobs = append(jobs, mkJob(i%3, 1, w, w+float64(deadlineSlack[i])*100))
		}
		in := Input{
			Hardware: cpuHost(n), Shares: []float64{1, 2, 3},
			HorizonMin: 500, HorizonMax: 2000, Jobs: jobs,
		}
		res := Run(in)
		for tt := host.ProcType(0); tt < host.NumProcTypes; tt++ {
			maxSF := float64(in.Hardware.Proc[tt].Count) * in.HorizonMax
			if res.ShortfallMax[tt] < -1e-9 || res.ShortfallMax[tt] > maxSF+1e-6 {
				return false
			}
			if res.ShortfallMin[tt] > res.ShortfallMax[tt]+1e-6 {
				return false
			}
			if res.Saturated[tt] < 0 {
				return false
			}
			if res.IdleNow[tt] < 0 || res.IdleNow[tt] > float64(in.Hardware.Proc[tt].Count)+1e-9 {
				return false
			}
		}
		// All jobs got a projection.
		for _, j := range jobs {
			if j.ProjectedFinish == 0 && j.Remaining > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding work never decreases any job's projected finish time
// (more contention can only delay).
func TestPropertyMoreLoadDelays(t *testing.T) {
	f := func(w1, w2 uint16) bool {
		base := mkJob(0, 1, float64(w1%1000)+10, 1e9)
		solo := Run(Input{Hardware: cpuHost(1), Shares: []float64{1, 1}, Jobs: []*Job{base}})
		_ = solo
		f1 := base.ProjectedFinish

		again := mkJob(0, 1, float64(w1%1000)+10, 1e9)
		extra := mkJob(1, 1, float64(w2%1000)+10, 1e9)
		Run(Input{Hardware: cpuHost(1), Shares: []float64{1, 1}, Jobs: []*Job{again, extra}})
		return again.ProjectedFinish >= f1-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewJobCapturesTask(t *testing.T) {
	tk := &job.Task{
		Name: "x", Project: 2,
		Usage:    job.Usage{AvgCPUs: 0.3, GPUType: host.NvidiaGPU, GPUUsage: 0.5},
		Duration: 100, EstDuration: 150, Deadline: 999,
	}
	j := NewJob(tk)
	if j.Project != 2 || j.Type != host.NvidiaGPU || j.Instances != 0.5 {
		t.Fatalf("NewJob capture wrong: %+v", j)
	}
	if j.Remaining != 150 || j.Deadline != 999 {
		t.Fatalf("NewJob remaining/deadline wrong: %+v", j)
	}
}

func TestATIJobsSeparateFromNvidia(t *testing.T) {
	// Host with both GPU kinds; jobs drain independently.
	h := host.StdHost(2, 1e9, 1, 10e9)
	h.Hardware.Proc[host.AtiGPU] = host.Resource{Count: 1, FLOPSPerInst: 5e9}
	nv := mkGPUJob(0, 1, 100, 1e9)
	ati := mkGPUJob(1, 1, 200, 1e9)
	ati.Type = host.AtiGPU
	res := Run(Input{Hardware: &h.Hardware, Shares: []float64{1, 1},
		HorizonMin: 300, HorizonMax: 300, Jobs: []*Job{nv, ati}})
	if math.Abs(nv.ProjectedFinish-100) > 1e-6 || math.Abs(ati.ProjectedFinish-200) > 1e-6 {
		t.Fatalf("GPU kinds interfered: %v / %v", nv.ProjectedFinish, ati.ProjectedFinish)
	}
	if res.Saturated[host.NvidiaGPU] != 100 || res.Saturated[host.AtiGPU] != 200 {
		t.Fatalf("per-kind SAT wrong: %v", res.Saturated)
	}
}

func TestArrivalOrderSeating(t *testing.T) {
	// One project, one CPU, two jobs: the first-queued job is seated,
	// the second waits (no time-slicing within a project).
	first := mkJob(0, 1, 100, 1e9)
	second := mkJob(0, 1, 100, 1e9)
	Run(Input{Hardware: cpuHost(1), Shares: []float64{1}, Jobs: []*Job{first, second}})
	if math.Abs(first.ProjectedFinish-100) > 1e-6 {
		t.Fatalf("first job finish %v, want 100 (seated immediately)", first.ProjectedFinish)
	}
	if math.Abs(second.ProjectedFinish-200) > 1e-6 {
		t.Fatalf("second job finish %v, want 200 (waits for the first)", second.ProjectedFinish)
	}
}

func TestPartialSeatTimeslices(t *testing.T) {
	// Two equal-share projects, one CPU, one job each: each project's
	// allocation is 0.5 instances, so each job runs at half rate.
	a := mkJob(0, 1, 100, 1e9)
	b := mkJob(1, 1, 100, 1e9)
	Run(Input{Hardware: cpuHost(1), Shares: []float64{1, 1}, Jobs: []*Job{a, b}})
	if math.Abs(a.ProjectedFinish-200) > 1e-6 || math.Abs(b.ProjectedFinish-200) > 1e-6 {
		t.Fatalf("finishes %v/%v, want 200/200 (half rate each)", a.ProjectedFinish, b.ProjectedFinish)
	}
}

func TestHorizonMaxClampedToMin(t *testing.T) {
	res := Run(Input{Hardware: cpuHost(1), Shares: []float64{1},
		HorizonMin: 1000, HorizonMax: 10}) // max < min is repaired
	if res.ShortfallMax[host.CPU] < res.ShortfallMin[host.CPU] {
		t.Fatalf("max shortfall %v < min %v", res.ShortfallMax[host.CPU], res.ShortfallMin[host.CPU])
	}
}

func TestManyProjectsShareSplit(t *testing.T) {
	// 10 equal projects on 2 CPUs: each project's job runs at 0.2 rate.
	var jobs []*Job
	shares := make([]float64, 10)
	for i := range shares {
		shares[i] = 1
		jobs = append(jobs, mkJob(i, 1, 100, 1e9))
	}
	Run(Input{Hardware: cpuHost(2), Shares: shares, Jobs: jobs})
	for i, j := range jobs {
		if math.Abs(j.ProjectedFinish-500) > 1e-6 {
			t.Fatalf("job %d finish %v, want 500", i, j.ProjectedFinish)
		}
	}
}

// Property: total work is conserved — the sum of (instance-seconds
// completed by each finish time) never exceeds capacity × elapsed.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(work [6]uint16, ncpu uint8) bool {
		n := int(ncpu%3) + 1
		var jobs []*Job
		var total float64
		for i, w := range work {
			r := float64(w%2000) + 1
			jobs = append(jobs, mkJob(i%2, 1, r, 1e12))
			total += r
		}
		Run(Input{Hardware: cpuHost(n), Shares: []float64{1, 1}, Jobs: jobs})
		var last float64
		for _, j := range jobs {
			if j.ProjectedFinish > last {
				last = j.ProjectedFinish
			}
		}
		// All work fits within capacity: last >= total/n.
		return last >= total/float64(n)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
