// Package rrsim implements the BOINC client's round-robin simulation
// (paper §3.2): a continuous approximation of weighted round-robin
// execution of the current workload, used to predict which jobs will
// miss their deadlines (deadline-endangered), how long each processor
// type stays saturated (SAT), and how many idle instance-seconds fall
// within the work-buffer horizon (SHORTFALL).
//
// Instead of modelling individual timeslices, each project's jobs drain
// continuously at the rate of the project's share of each processor
// type, with unused allocation redistributed so devices stay saturated
// whenever demand exists.
//
// The simulation is re-executed at every scheduling point, so it is the
// emulator's hot path: a Simulator owns all working state and reuses it
// across calls, making a steady-state Run allocate only its Result.
package rrsim

import (
	"math"

	"bce/internal/host"
	"bce/internal/invariant"
	"bce/internal/job"
)

// Job is one simulated queue entry. EstRemaining and deadlines come from
// the client's estimates; results are written back into the struct.
type Job struct {
	Task *job.Task // identity only; not mutated

	// Inputs (captured from the task by NewJob).
	Project   int
	Type      host.ProcType
	Instances float64 // instances of Type occupied
	Remaining float64 // estimated execution seconds left
	Deadline  float64

	// Outputs.
	ProjectedFinish float64 // absolute time; +Inf if it never finishes
	Endangered      bool    // projected to miss its deadline
}

// NewJob captures the simulation view of a client task.
func NewJob(t *job.Task) *Job {
	return &Job{
		Task:      t,
		Project:   t.Project,
		Type:      t.Usage.Type(),
		Instances: t.Usage.Instances(),
		Remaining: t.EstRemaining(),
		Deadline:  t.Deadline,
	}
}

// Input parameterises one simulation run.
type Input struct {
	Now      float64
	Hardware *host.Hardware
	Shares   []float64 // resource share per project index

	// OnFrac discounts execution rates by the host's long-run
	// availability per processor type (1 = always available).
	OnFrac [host.NumProcTypes]float64

	// HorizonMin and HorizonMax are the work-buffer windows (seconds
	// from Now) over which shortfall is integrated; they correspond to
	// the min_queue and max_queue preferences.
	HorizonMin float64
	HorizonMax float64

	// DeadlineMargin is subtracted from deadlines when classifying
	// endangered jobs (a safety margin; 0 reproduces the bare policy).
	DeadlineMargin float64

	// Trace, when true, records the busy-instances step function for
	// timeline visualization (paper Figure 2).
	Trace bool

	Jobs []*Job
}

// TraceStep is one segment of the busy-instances step function.
type TraceStep struct {
	Start, End float64
	Busy       [host.NumProcTypes]float64
}

// Result is the simulation outcome.
type Result struct {
	// ShortfallMin/ShortfallMax are idle instance-seconds within the
	// min/max horizons, per processor type.
	ShortfallMin [host.NumProcTypes]float64
	ShortfallMax [host.NumProcTypes]float64

	// Saturated is SAT(T): how long all instances of T stay busy.
	Saturated [host.NumProcTypes]float64

	// IdleNow is the number of instances of T idle at Now.
	IdleNow [host.NumProcTypes]float64

	// NumEndangered counts deadline-endangered jobs.
	NumEndangered int

	Trace []TraceStep
}

const maxSteps = 100000

// Simulator executes round-robin simulations, owning all scratch state
// so repeated Runs do not allocate. A Simulator is not safe for
// concurrent use; each goroutine (each emulated client) keeps its own.
type Simulator struct {
	rem    []float64 // per-job remaining instance-seconds
	alloc  []float64 // allocate() output
	active []bool    // allocate() progressive-filling state

	// groups[t][p] holds the indices of unfinished type-t jobs of
	// project p in arrival order, so the seating loop visits exactly
	// the jobs it concerns instead of scanning the whole queue once
	// per project. Jobs leave their group as they complete.
	groups [host.NumProcTypes][][]int32

	// demand[t][p] caches group (t,p)'s unfinished instance demand.
	// Demand only changes when a member job finishes, so instead of
	// rescanning every group every step, finishes mark their group in
	// dirty and only those are recomputed before the next step.
	//
	// exact[t][p] marks groups whose every member has an integral
	// Instances value with an integral total below 2^52: for those,
	// float64 addition and subtraction are exact, so ANY summation
	// order yields the same bits and a finish can simply subtract the
	// job's demand instead of rescanning the group. Non-integral
	// groups keep the ordered rescan, which reproduces the reference
	// summation order bit for bit.
	demand [host.NumProcTypes][]float64
	exact  [host.NumProcTypes][]bool
	dirty  []groupKey

	// seats[t] is type t's current seating: the jobs granted capacity
	// and their drain rates. Rates depend only on the type's group
	// membership and allocation — not on remaining work — so the list
	// stays valid until a type-t group goes dirty and is rebuilt then.
	seats [host.NumProcTypes][]seat
}

// groupKey names one (type, project) job group.
type groupKey struct {
	t host.ProcType
	p int32
}

// seat is one job's capacity grant for the current step.
type seat struct {
	job  int32
	rate float64 // instance-seconds drained per second (> 0)
}

// New returns an empty Simulator; its buffers grow to fit the largest
// workload it has seen.
func New() *Simulator { return &Simulator{} }

// Run executes the round-robin simulation with a throwaway Simulator.
// Callers on a hot path should keep a Simulator and use its Run method
// to avoid re-allocating working state every call.
func Run(in Input) *Result { return New().Run(in) }

// growFloats returns s resized to n entries, reusing its backing array
// when possible. Contents are unspecified.
//
//bce:hotpath
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //bce:allocok amortized grow of a reusable scratch buffer, stops once sized to the workload
	}
	return s[:n]
}

// Run executes the round-robin simulation, allocating a fresh Result.
//
//bce:hotpath
func (s *Simulator) Run(in Input) *Result {
	res := &Result{} //bce:allocok one Result per call by design; steady-state callers reuse one via RunInto
	s.RunInto(res, in)
	return res
}

// RunInto executes the round-robin simulation, resetting res and
// writing the outcome into it. Hot-path callers keep one Result and
// reuse it across runs so a steady-state Run allocates nothing at all.
//
//bce:hotpath
//bce:scratch
func (s *Simulator) RunInto(res *Result, in Input) {
	*res = Result{}
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if in.OnFrac[t] == 0 {
			in.OnFrac[t] = 1
		}
	}
	if in.HorizonMax < in.HorizonMin {
		in.HorizonMax = in.HorizonMin
	}

	nproj := len(in.Shares)
	// Remaining work per job in instance-seconds.
	s.rem = growFloats(s.rem, len(in.Jobs))
	rem := s.rem
	unfinished := 0
	for i, j := range in.Jobs {
		rem[i] = j.Remaining * j.Instances
		if rem[i] > 0 {
			unfinished++
		} else {
			// Already finished at simulation start: it cannot miss its
			// deadline, however late Now is, so it is never endangered.
			j.ProjectedFinish = in.Now
			j.Endangered = false
		}
	}

	// Index unfinished jobs by (type, project). Jobs whose project has
	// no share entry get no group: they can never run and are
	// classified endangered at the end, like any other job with no
	// rate. Already-finished jobs are left out: they contribute no
	// demand and the seating loop would skip them anyway.
	for t := range s.groups {
		for len(s.groups[t]) < nproj {
			s.groups[t] = append(s.groups[t], nil)
		}
		for p := 0; p < nproj; p++ {
			s.groups[t][p] = s.groups[t][p][:0]
		}
	}
	// Demand accumulates during the same scan, job by job in arrival
	// order — the order the dirty-group sweep uses, so the two always
	// agree bit for bit. Groups that stay integral are marked exact:
	// their sums carry no rounding, so later finishes can maintain
	// demand by subtraction (see the exact field).
	for t := range s.demand {
		s.demand[t] = growFloats(s.demand[t], nproj)
		d := s.demand[t]
		for p := range d {
			d[p] = 0
		}
		if cap(s.exact[t]) < nproj {
			//bce:allocok amortized grow of a reusable scratch buffer, stops once sized to the workload
			s.exact[t] = make([]bool, nproj)
		}
		s.exact[t] = s.exact[t][:nproj]
		for p := range s.exact[t] {
			s.exact[t][p] = true
		}
	}
	for i, j := range in.Jobs {
		if rem[i] > 0 && j.Project >= 0 && j.Project < nproj &&
			j.Type >= 0 && j.Type < host.NumProcTypes {
			s.groups[j.Type][j.Project] = append(s.groups[j.Type][j.Project], int32(i))
			s.demand[j.Type][j.Project] += j.Instances
			if s.demand[j.Type][j.Project] >= 1<<52 ||
				(j.Instances != 1 && j.Instances != math.Trunc(j.Instances)) {
				s.exact[j.Type][j.Project] = false
			}
		}
	}

	satOpen := [host.NumProcTypes]bool{}
	firstStep := true
	elapsed := 0.0 // sim time since Now

	s.dirty = s.dirty[:0]

	// busy and the per-type seat lists persist across steps; a type is
	// re-allocated and re-seated only when one of its groups changes.
	var busy [host.NumProcTypes]float64
	var seatsStale [host.NumProcTypes]bool
	for t := range seatsStale {
		seatsStale[t] = true
		s.seats[t] = s.seats[t][:0]
	}

	for step := 0; step < maxSteps; step++ {
		// Refresh dirty groups — those with a finish since the last
		// step. Exact groups were already compacted and their demand
		// adjusted by subtraction at finish time (bit-identical: their
		// arithmetic carries no rounding), so they only invalidate the
		// seating. The rest get one ordered sweep each: drop finished
		// members (preserving the arrival order of the rest) and
		// re-sum the survivors' demand. The sum visits unfinished jobs
		// in arrival order, exactly the scan the per-step recompute
		// used before demands were cached, so every bit of the float64
		// matches.
		for _, k := range s.dirty {
			if !s.exact[k.t][k.p] {
				g := s.groups[k.t][k.p]
				kept := g[:0]
				var d float64
				for _, i := range g {
					if rem[i] > 0 {
						d += in.Jobs[i].Instances
						kept = append(kept, i)
					}
				}
				s.groups[k.t][k.p] = kept
				s.demand[k.t][k.p] = d
			}
			seatsStale[k.t] = true
		}
		s.dirty = s.dirty[:0]

		// Re-allocate stale types over the cached demands and seat
		// their jobs. Seat rates depend only on group membership and
		// allocation (never on remaining work), so an untouched type's
		// seating carries over from the previous step unchanged.
		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			n := float64(in.Hardware.Proc[t].Count)
			if n == 0 || !seatsStale[t] {
				continue
			}
			seatsStale[t] = false
			groups := s.groups[t]
			alloc := s.allocate(s.demand[t], in.Shares, n)
			busy[t] = 0
			seats := s.seats[t][:0]
			for p, a := range alloc {
				busy[t] += a
				if a <= 0 {
					continue
				}
				// Seat the project's jobs into its allocated instances
				// in arrival order; jobs beyond the allocation wait.
				// Seating deliberately ignores which job happens to be
				// running right now: a state-dependent seating makes
				// the endangered classification self-invalidating (the
				// job the scheduler promotes immediately looks safe and
				// is demoted again), causing preemption thrash.
				for _, i := range groups[p] {
					if a <= 1e-12 {
						break
					}
					if rem[i] <= 0 {
						continue
					}
					// min(Instances, a) by compare: both are strictly
					// positive here, where math.Min is exact anyway.
					r := in.Jobs[i].Instances
					if a < r {
						r = a
					}
					a -= r
					seats = append(seats, seat{job: i, rate: r * in.OnFrac[t]})
				}
			}
			s.seats[t] = seats
			if invariant.Enabled {
				// Progressive filling may never seat more instances than
				// the device has: alloc caps at demand and sum(alloc) at
				// the instance count.
				invariant.Check(busy[t] <= n+1e-9,
					"rrsim: seated %v instances of %v on %v devices", busy[t], t, n)
			}
		}

		// Earliest completion among the seated jobs (the only ones
		// draining). Pure min: visiting seats in the same type-then-
		// seating order the merged list used yields the same value.
		dt := math.Inf(1)
		nseated := 0
		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			if in.Hardware.Proc[t].Count == 0 {
				continue
			}
			for _, st := range s.seats[t] {
				if d := rem[st.job] / st.rate; d < dt {
					dt = d
				}
			}
			nseated += len(s.seats[t])
		}

		if firstStep {
			for t := host.ProcType(0); t < host.NumProcTypes; t++ {
				n := float64(in.Hardware.Proc[t].Count)
				res.IdleNow[t] = math.Max(0, n-busy[t])
				satOpen[t] = n > 0 && busy[t] >= n-1e-9
			}
			firstStep = false
		}

		// Step length: next job completion (or horizon end if no work).
		atEnd := false
		if unfinished == 0 || nseated == 0 || math.IsInf(dt, 1) {
			// Nothing can progress: run the clock to the horizon so the
			// shortfall integral completes, then stop.
			dt = in.HorizonMax - elapsed
			atEnd = true
			if dt <= 0 {
				break
			}
		}

		// Integrate shortfall and saturation over [elapsed, elapsed+dt].
		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			n := float64(in.Hardware.Proc[t].Count)
			if n == 0 {
				continue
			}
			// A saturated type contributes nothing to its shortfall
			// integrals (idle*ov == 0), so skip the overlap tests.
			if idle := math.Max(0, n-busy[t]); idle > 0 {
				if ov := overlap(elapsed, elapsed+dt, 0, in.HorizonMin); ov > 0 {
					res.ShortfallMin[t] += idle * ov
				}
				if ov := overlap(elapsed, elapsed+dt, 0, in.HorizonMax); ov > 0 {
					res.ShortfallMax[t] += idle * ov
				}
			}
			if satOpen[t] {
				if busy[t] >= n-1e-9 {
					res.Saturated[t] += dt
				} else {
					satOpen[t] = false
				}
			}
		}
		if in.Trace {
			res.Trace = append(res.Trace, TraceStep{
				Start: in.Now + elapsed, End: in.Now + elapsed + dt, Busy: busy,
			})
		}

		if invariant.Enabled {
			invariant.Check(dt >= 0 && !math.IsNaN(dt),
				"rrsim: non-monotone step %v at elapsed %v", dt, elapsed)
		}
		// Advance the seated jobs (the only ones with a nonzero rate),
		// in the same type-then-seating order the merged list used.
		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			if in.Hardware.Proc[t].Count == 0 {
				continue
			}
			for _, st := range s.seats[t] {
				i := st.job
				rem[i] -= st.rate * dt
				if rem[i] <= 1e-9 {
					rem[i] = 0
					unfinished--
					j := in.Jobs[i]
					j.ProjectedFinish = in.Now + elapsed + dt
					j.Endangered = j.ProjectedFinish > j.Deadline-in.DeadlineMargin
					if j.Endangered {
						res.NumEndangered++
					}
					// The group's cached demand is now stale. Exact
					// groups update in place — drop the job (keeping
					// arrival order) and subtract its demand, which
					// for integral values matches the ordered rescan
					// bit for bit. Others defer to the dirty sweep at
					// the top of the next step, which drops finished
					// members and re-sums in one pass. Either way the
					// group is marked dirty so its type re-seats;
					// seats within a type are contiguous per project,
					// so consecutive same-group finishes dedup against
					// the last entry.
					if s.exact[j.Type][j.Project] {
						g := s.groups[j.Type][j.Project]
						for k, gi := range g {
							if gi == i {
								copy(g[k:], g[k+1:])
								s.groups[j.Type][j.Project] = g[:len(g)-1]
								break
							}
						}
						s.demand[j.Type][j.Project] -= j.Instances
					}
					k := groupKey{t: j.Type, p: int32(j.Project)}
					if m := len(s.dirty); m == 0 || s.dirty[m-1] != k {
						s.dirty = append(s.dirty, k)
					}
				}
			}
		}
		elapsed += dt
		if atEnd {
			break
		}
	}

	// Jobs that never finish (no device, zero rate forever).
	for i, j := range in.Jobs {
		if rem[i] > 0 {
			j.ProjectedFinish = math.Inf(1)
			j.Endangered = true
			res.NumEndangered++
		}
	}
}

// allocate distributes `total` capacity among demands in proportion to
// weights, capping each at its demand and redistributing the excess
// (progressive filling). The returned slice satisfies alloc[i] <=
// demand[i], sum(alloc) <= total, and sum(alloc) == min(total,
// sum(demand)) up to round-off. It is valid until the next call.
//
//bce:hotpath
//bce:scratch
func (s *Simulator) allocate(demand, weight []float64, total float64) []float64 {
	n := len(demand)
	s.alloc = growFloats(s.alloc, n)
	alloc := s.alloc
	for i := range alloc {
		alloc[i] = 0
	}
	if total <= 0 {
		return alloc
	}
	if cap(s.active) < n {
		//bce:allocok amortized grow of a reusable scratch buffer, stops once sized to the workload
		s.active = make([]bool, n)
	}
	active := s.active[:n]
	nActive := 0
	for i := range demand {
		if demand[i] > 0 && weight[i] > 0 {
			active[i] = true
			nActive++
		} else {
			active[i] = false
		}
	}
	remaining := total
	for iter := 0; iter < n+1 && nActive > 0 && remaining > 1e-12; iter++ {
		var wsum float64
		for i := range demand {
			if active[i] {
				wsum += weight[i]
			}
		}
		if wsum <= 0 {
			break
		}
		capped := false
		for i := range demand {
			if !active[i] {
				continue
			}
			fair := remaining * weight[i] / wsum
			if alloc[i]+fair >= demand[i]-1e-12 {
				// This entry saturates; grant its demand and
				// redistribute the rest next round.
				remaining -= demand[i] - alloc[i]
				alloc[i] = demand[i]
				active[i] = false
				nActive--
				capped = true
			}
		}
		if !capped {
			for i := range demand {
				if active[i] {
					alloc[i] += remaining * weight[i] / wsum
				}
			}
			remaining = 0
		}
	}
	return alloc
}

// overlap returns the length of the intersection of [a0,a1] and [b0,b1].
func overlap(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}
