// Package rrsim implements the BOINC client's round-robin simulation
// (paper §3.2): a continuous approximation of weighted round-robin
// execution of the current workload, used to predict which jobs will
// miss their deadlines (deadline-endangered), how long each processor
// type stays saturated (SAT), and how many idle instance-seconds fall
// within the work-buffer horizon (SHORTFALL).
//
// Instead of modelling individual timeslices, each project's jobs drain
// continuously at the rate of the project's share of each processor
// type, with unused allocation redistributed so devices stay saturated
// whenever demand exists.
//
// The simulation is re-executed at every scheduling point, so it is the
// emulator's hot path: a Simulator owns all working state and reuses it
// across calls, making a steady-state Run allocate only its Result.
package rrsim

import (
	"math"

	"bce/internal/host"
	"bce/internal/invariant"
	"bce/internal/job"
)

// Job is one simulated queue entry. EstRemaining and deadlines come from
// the client's estimates; results are written back into the struct.
type Job struct {
	Task *job.Task // identity only; not mutated

	// Inputs (captured from the task by NewJob).
	Project   int
	Type      host.ProcType
	Instances float64 // instances of Type occupied
	Remaining float64 // estimated execution seconds left
	Deadline  float64

	// Outputs.
	ProjectedFinish float64 // absolute time; +Inf if it never finishes
	Endangered      bool    // projected to miss its deadline
}

// NewJob captures the simulation view of a client task.
func NewJob(t *job.Task) *Job {
	return &Job{
		Task:      t,
		Project:   t.Project,
		Type:      t.Usage.Type(),
		Instances: t.Usage.Instances(),
		Remaining: t.EstRemaining(),
		Deadline:  t.Deadline,
	}
}

// Input parameterises one simulation run.
type Input struct {
	Now      float64
	Hardware *host.Hardware
	Shares   []float64 // resource share per project index

	// OnFrac discounts execution rates by the host's long-run
	// availability per processor type (1 = always available).
	OnFrac [host.NumProcTypes]float64

	// HorizonMin and HorizonMax are the work-buffer windows (seconds
	// from Now) over which shortfall is integrated; they correspond to
	// the min_queue and max_queue preferences.
	HorizonMin float64
	HorizonMax float64

	// DeadlineMargin is subtracted from deadlines when classifying
	// endangered jobs (a safety margin; 0 reproduces the bare policy).
	DeadlineMargin float64

	// Trace, when true, records the busy-instances step function for
	// timeline visualization (paper Figure 2).
	Trace bool

	Jobs []*Job
}

// TraceStep is one segment of the busy-instances step function.
type TraceStep struct {
	Start, End float64
	Busy       [host.NumProcTypes]float64
}

// Result is the simulation outcome.
type Result struct {
	// ShortfallMin/ShortfallMax are idle instance-seconds within the
	// min/max horizons, per processor type.
	ShortfallMin [host.NumProcTypes]float64
	ShortfallMax [host.NumProcTypes]float64

	// Saturated is SAT(T): how long all instances of T stay busy.
	Saturated [host.NumProcTypes]float64

	// IdleNow is the number of instances of T idle at Now.
	IdleNow [host.NumProcTypes]float64

	// NumEndangered counts deadline-endangered jobs.
	NumEndangered int

	Trace []TraceStep
}

const maxSteps = 100000

// Simulator executes round-robin simulations, owning all scratch state
// so repeated Runs do not allocate. A Simulator is not safe for
// concurrent use; each goroutine (each emulated client) keeps its own.
type Simulator struct {
	rem    []float64 // per-job remaining instance-seconds
	demand []float64 // per-project demand for the type being allocated
	alloc  []float64 // allocate() output
	active []bool    // allocate() progressive-filling state
	seated []seat    // jobs granted capacity in the current step

	// groups[t][p] holds the indices of type-t jobs of project p in
	// arrival order, so the per-step demand and seating loops visit
	// exactly the jobs they concern instead of scanning the whole
	// queue once per project.
	groups [host.NumProcTypes][][]int32
}

// seat is one job's capacity grant for the current step.
type seat struct {
	job  int32
	rate float64 // instance-seconds drained per second (> 0)
}

// New returns an empty Simulator; its buffers grow to fit the largest
// workload it has seen.
func New() *Simulator { return &Simulator{} }

// Run executes the round-robin simulation with a throwaway Simulator.
// Callers on a hot path should keep a Simulator and use its Run method
// to avoid re-allocating working state every call.
func Run(in Input) *Result { return New().Run(in) }

// growFloats returns s resized to n entries, reusing its backing array
// when possible. Contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Run executes the round-robin simulation.
func (s *Simulator) Run(in Input) *Result {
	res := &Result{}
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if in.OnFrac[t] == 0 {
			in.OnFrac[t] = 1
		}
	}
	if in.HorizonMax < in.HorizonMin {
		in.HorizonMax = in.HorizonMin
	}

	nproj := len(in.Shares)
	// Remaining work per job in instance-seconds.
	s.rem = growFloats(s.rem, len(in.Jobs))
	rem := s.rem
	unfinished := 0
	for i, j := range in.Jobs {
		rem[i] = j.Remaining * j.Instances
		if rem[i] > 0 {
			unfinished++
		} else {
			// Already finished at simulation start: it cannot miss its
			// deadline, however late Now is, so it is never endangered.
			j.ProjectedFinish = in.Now
			j.Endangered = false
		}
	}

	// Index jobs by (type, project). Jobs whose project has no share
	// entry get no group: they can never run and are classified
	// endangered at the end, like any other job with no rate.
	for t := range s.groups {
		for len(s.groups[t]) < nproj {
			s.groups[t] = append(s.groups[t], nil)
		}
		for p := 0; p < nproj; p++ {
			s.groups[t][p] = s.groups[t][p][:0]
		}
	}
	for i, j := range in.Jobs {
		if j.Project >= 0 && j.Project < nproj &&
			j.Type >= 0 && j.Type < host.NumProcTypes {
			s.groups[j.Type][j.Project] = append(s.groups[j.Type][j.Project], int32(i))
		}
	}

	satOpen := [host.NumProcTypes]bool{}
	firstStep := true
	elapsed := 0.0 // sim time since Now

	s.demand = growFloats(s.demand, nproj)
	demand := s.demand

	for step := 0; step < maxSteps; step++ {
		// Compute per-project demand and allocation for each type, then
		// per-job drain rates; track the earliest completion as rates
		// are assigned, so no separate scan over the queue is needed.
		var busy [host.NumProcTypes]float64
		s.seated = s.seated[:0]
		dt := math.Inf(1)
		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			n := float64(in.Hardware.Proc[t].Count)
			if n == 0 {
				continue
			}
			groups := s.groups[t]
			for p := range demand {
				demand[p] = 0
				for _, i := range groups[p] {
					if rem[i] > 0 {
						demand[p] += in.Jobs[i].Instances
					}
				}
			}
			alloc := s.allocate(demand, in.Shares, n)
			for p, a := range alloc {
				busy[t] += a
				if a <= 0 {
					continue
				}
				// Seat the project's jobs into its allocated instances
				// in arrival order; jobs beyond the allocation wait.
				// Seating deliberately ignores which job happens to be
				// running right now: a state-dependent seating makes
				// the endangered classification self-invalidating (the
				// job the scheduler promotes immediately looks safe and
				// is demoted again), causing preemption thrash.
				for _, i := range groups[p] {
					if a <= 1e-12 {
						break
					}
					if rem[i] <= 0 {
						continue
					}
					r := math.Min(in.Jobs[i].Instances, a)
					a -= r
					rate := r * in.OnFrac[t]
					s.seated = append(s.seated, seat{job: i, rate: rate})
					if d := rem[i] / rate; d < dt {
						dt = d
					}
				}
			}
			if invariant.Enabled {
				// Progressive filling may never seat more instances than
				// the device has: alloc caps at demand and sum(alloc) at
				// the instance count.
				invariant.Check(busy[t] <= n+1e-9,
					"rrsim: seated %v instances of %v on %v devices", busy[t], t, n)
			}
		}

		if firstStep {
			for t := host.ProcType(0); t < host.NumProcTypes; t++ {
				n := float64(in.Hardware.Proc[t].Count)
				res.IdleNow[t] = math.Max(0, n-busy[t])
				satOpen[t] = n > 0 && busy[t] >= n-1e-9
			}
			firstStep = false
		}

		// Step length: next job completion (or horizon end if no work).
		atEnd := false
		if unfinished == 0 || len(s.seated) == 0 || math.IsInf(dt, 1) {
			// Nothing can progress: run the clock to the horizon so the
			// shortfall integral completes, then stop.
			dt = in.HorizonMax - elapsed
			atEnd = true
			if dt <= 0 {
				break
			}
		}

		// Integrate shortfall and saturation over [elapsed, elapsed+dt].
		for t := host.ProcType(0); t < host.NumProcTypes; t++ {
			n := float64(in.Hardware.Proc[t].Count)
			if n == 0 {
				continue
			}
			idle := math.Max(0, n-busy[t])
			if ov := overlap(elapsed, elapsed+dt, 0, in.HorizonMin); ov > 0 {
				res.ShortfallMin[t] += idle * ov
			}
			if ov := overlap(elapsed, elapsed+dt, 0, in.HorizonMax); ov > 0 {
				res.ShortfallMax[t] += idle * ov
			}
			if satOpen[t] {
				if busy[t] >= n-1e-9 {
					res.Saturated[t] += dt
				} else {
					satOpen[t] = false
				}
			}
		}
		if in.Trace {
			res.Trace = append(res.Trace, TraceStep{
				Start: in.Now + elapsed, End: in.Now + elapsed + dt, Busy: busy,
			})
		}

		if invariant.Enabled {
			invariant.Check(dt >= 0 && !math.IsNaN(dt),
				"rrsim: non-monotone step %v at elapsed %v", dt, elapsed)
		}
		// Advance the seated jobs (the only ones with a nonzero rate).
		for _, st := range s.seated {
			i := st.job
			rem[i] -= st.rate * dt
			if rem[i] <= 1e-9 {
				rem[i] = 0
				unfinished--
				j := in.Jobs[i]
				j.ProjectedFinish = in.Now + elapsed + dt
				j.Endangered = j.ProjectedFinish > j.Deadline-in.DeadlineMargin
				if j.Endangered {
					res.NumEndangered++
				}
			}
		}
		elapsed += dt
		if atEnd {
			break
		}
	}

	// Jobs that never finish (no device, zero rate forever).
	for i, j := range in.Jobs {
		if rem[i] > 0 {
			j.ProjectedFinish = math.Inf(1)
			j.Endangered = true
			res.NumEndangered++
		}
	}
	return res
}

// allocate distributes `total` capacity among demands in proportion to
// weights, capping each at its demand and redistributing the excess
// (progressive filling). The returned slice satisfies alloc[i] <=
// demand[i], sum(alloc) <= total, and sum(alloc) == min(total,
// sum(demand)) up to round-off. It is valid until the next call.
func (s *Simulator) allocate(demand, weight []float64, total float64) []float64 {
	n := len(demand)
	s.alloc = growFloats(s.alloc, n)
	alloc := s.alloc
	for i := range alloc {
		alloc[i] = 0
	}
	if total <= 0 {
		return alloc
	}
	if cap(s.active) < n {
		s.active = make([]bool, n)
	}
	active := s.active[:n]
	nActive := 0
	for i := range demand {
		if demand[i] > 0 && weight[i] > 0 {
			active[i] = true
			nActive++
		} else {
			active[i] = false
		}
	}
	remaining := total
	for iter := 0; iter < n+1 && nActive > 0 && remaining > 1e-12; iter++ {
		var wsum float64
		for i := range demand {
			if active[i] {
				wsum += weight[i]
			}
		}
		if wsum <= 0 {
			break
		}
		capped := false
		for i := range demand {
			if !active[i] {
				continue
			}
			fair := remaining * weight[i] / wsum
			if alloc[i]+fair >= demand[i]-1e-12 {
				// This entry saturates; grant its demand and
				// redistribute the rest next round.
				remaining -= demand[i] - alloc[i]
				alloc[i] = demand[i]
				active[i] = false
				nActive--
				capped = true
			}
		}
		if !capped {
			for i := range demand {
				if active[i] {
					alloc[i] += remaining * weight[i] / wsum
				}
			}
			remaining = 0
		}
	}
	return alloc
}

// overlap returns the length of the intersection of [a0,a1] and [b0,b1].
func overlap(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}
