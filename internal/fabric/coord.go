// The coordinator: owns the shard table, grants time-limited leases,
// collects reported shard aggregates, and merges them when the last
// one lands. Crash tolerance is persistence plus laziness — the spec
// and every reported shard go to disk as they arrive, leases expire by
// timestamp comparison at the next request (no timers), so a restarted
// coordinator reconstructs everything it needs from its directory and
// the workers' own retries.
package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bce/internal/population"
)

// DefaultLeaseTTL is how long a granted shard stays reserved without a
// progress renewal. Workers renew after every folded batch, so a live
// worker outruns this by orders of magnitude; only a dead one lets it
// lapse.
const DefaultLeaseTTL = 30 * time.Second

// maxBodyBytes bounds request bodies (a full shard report is aggregate
// state, O(combos), well under a megabyte even with generous sketches).
const maxBodyBytes = 32 << 20

// specFileName is the spec's file name inside the coordinator dir.
const specFileName = "spec.json"

// shard lease states.
const (
	shardIdle = iota
	shardLeased
	shardDone
)

type shardState struct {
	state   int
	worker  string            // leaseholder (state == shardLeased)
	expires time.Time         // lease deadline (state == shardLeased)
	done    int               // scenarios folded, per last progress report
	study   *population.Study // the reported aggregates (state == shardDone)
}

// CoordinatorOptions tunes a Coordinator.
type CoordinatorOptions struct {
	// Dir, when nonempty, is where the coordinator persists its spec
	// and every reported shard (shard-NNN.json), making it restartable:
	// a new coordinator pointed at the same dir verifies the spec
	// matches and adopts already-reported shards.
	Dir string
	// LeaseTTL overrides DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Log, when set, receives one line per lease/report event.
	Log func(format string, args ...any)

	// now overrides the clock in tests.
	now func() time.Time
}

// Coordinator tracks shard leases and merges reported aggregates. It
// is driven entirely by its HTTP handlers (see Handler); it starts no
// goroutines and owns no timers.
type Coordinator struct {
	spec     Spec
	dir      string
	leaseTTL time.Duration
	log      func(format string, args ...any)
	now      func() time.Time

	mu     sync.Mutex
	shards []shardState      //bce:guardedby mu
	result *population.Study //bce:guardedby mu — set once all shards report
	doneCh chan struct{}     //bce:guardedby mu — closed alongside result
}

// NewCoordinator builds a coordinator for spec. With a persistence
// dir, it either records the spec (fresh run) or verifies the recorded
// spec matches (restart) — a dir from a *different* study is refused
// loudly — and re-adopts every shard already reported there.
func NewCoordinator(spec Spec, opts CoordinatorOptions) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		spec:     spec,
		dir:      opts.Dir,
		leaseTTL: opts.LeaseTTL,
		log:      opts.Log,
		now:      opts.now,
		shards:   make([]shardState, spec.Shards),
		doneCh:   make(chan struct{}),
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = DefaultLeaseTTL
	}
	if c.log == nil {
		c.log = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = func() time.Time { return time.Now() } //bce:wallclock lease TTLs expire in real time across real processes
	}
	if c.dir != "" {
		if err := c.restore(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// restore binds the coordinator to its directory: spec check-or-write,
// then shard re-adoption.
func (c *Coordinator) restore() error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("fabric: coordinator dir: %w", err)
	}
	specPath := filepath.Join(c.dir, specFileName)
	want, err := json.MarshalIndent(&c.spec, "", " ")
	if err != nil {
		return fmt.Errorf("fabric: encode spec: %w", err)
	}
	switch have, err := os.ReadFile(specPath); {
	case err == nil:
		var onDisk Spec
		if jerr := json.Unmarshal(have, &onDisk); jerr != nil {
			return fmt.Errorf("fabric: parse %s: %w", specPath, jerr)
		}
		redisk, _ := json.Marshal(&onDisk) //bce:errok Spec just unmarshalled; Marshal cannot fail
		reWant, _ := json.Marshal(&c.spec) //bce:errok Spec marshalled indented two lines up
		if string(redisk) != string(reWant) {
			return fmt.Errorf("fabric: %s belongs to a different study: dir has %s, this run wants %s (use a fresh -dir or matching flags)",
				specPath, redisk, reWant)
		}
	case errors.Is(err, os.ErrNotExist):
		if werr := os.WriteFile(specPath, want, 0o644); werr != nil {
			return fmt.Errorf("fabric: write spec: %w", werr)
		}
	default:
		return fmt.Errorf("fabric: read spec: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.shards {
		st, err := population.LoadCheckpoint(c.shardPath(i))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("fabric: restore shard %d: %w", i, err)
		}
		if err := c.validateShardStudy(i, st); err != nil {
			return fmt.Errorf("fabric: restore shard %d: %w", i, err)
		}
		c.shards[i] = shardState{state: shardDone, done: st.Done, study: st}
		c.log("fabric: restored reported shard %d from %s", i, c.shardPath(i))
	}
	return c.maybeFinishLocked()
}

func (c *Coordinator) shardPath(i int) string {
	return filepath.Join(c.dir, fmt.Sprintf("shard-%03d.json", i))
}

// validateShardStudy checks that a study is the complete, correct
// aggregate for shard i of this spec.
func (c *Coordinator) validateShardStudy(i int, st *population.Study) error {
	lo, n := c.spec.ShardRange(i)
	if st.Lo != lo || st.Target != n {
		return fmt.Errorf("covers [%d,%d), want [%d,%d)", st.Lo, st.Lo+st.Target, lo, lo+n)
	}
	if st.Done != st.Target {
		return fmt.Errorf("incomplete: %d of %d scenarios", st.Done, st.Target)
	}
	p, err := c.spec.Params(i)
	if err != nil {
		return err
	}
	if diffs := population.DiffParams(st, p); len(diffs) != 0 {
		return fmt.Errorf("study disagrees with spec: %v", diffs)
	}
	return nil
}

// Handler returns the coordinator's HTTP interface (see wire.go).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/progress", c.handleProgress)
	mux.HandleFunc("/v1/report", c.handleReport)
	mux.HandleFunc("/v1/status", c.handleStatus)
	mux.HandleFunc("/v1/result", c.handleResult)
	return mux
}

// Done is closed when every shard has reported and the merge finished.
func (c *Coordinator) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doneCh
}

// Result returns the merged study, or an error while shards are still
// outstanding.
func (c *Coordinator) Result() (*population.Study, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.result == nil {
		return nil, fmt.Errorf("fabric: study incomplete")
	}
	return c.result, nil
}

// Status returns a snapshot of shard states.
func (c *Coordinator) Status() StatusReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	rep := StatusReply{Shards: len(c.shards), Scenarios: c.spec.Scenarios, Complete: c.result != nil}
	for i := range c.shards {
		sh := &c.shards[i]
		switch {
		case sh.state == shardDone:
			rep.Done++
			rep.ScenariosDone += sh.done
		case sh.state == shardLeased && now.Before(sh.expires):
			rep.Leased++
			rep.ScenariosDone += sh.done
			rep.Workers = append(rep.Workers, sh.worker)
		default:
			rep.Idle++
			rep.ScenariosDone += sh.done
		}
	}
	return rep
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "fabric: lease request without a worker name")
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()

	grant := func(i int) {
		sh := &c.shards[i] //bce:lockok grant only runs below, with handleLease's mu held
		sh.state = shardLeased
		sh.worker = req.Worker
		sh.expires = now.Add(c.leaseTTL)
		lo, n := c.spec.ShardRange(i)
		c.log("fabric: leased shard %d [%d,%d) to %s", i, lo, lo+n, req.Worker)
		spec := c.spec
		writeJSON(w, http.StatusOK, LeaseReply{
			Status: StatusLease, Shard: i, Lo: lo, N: n,
			Spec: &spec, LeaseSecs: c.leaseTTL.Seconds(),
		})
	}

	// A worker that already holds a lease gets the same shard back —
	// that's a restarted worker reclaiming its work, not a new claim.
	for i := range c.shards {
		sh := &c.shards[i]
		if sh.state == shardLeased && sh.worker == req.Worker {
			grant(i)
			return
		}
	}
	done := 0
	for i := range c.shards {
		sh := &c.shards[i]
		switch {
		case sh.state == shardDone:
			done++
		case sh.state == shardIdle, sh.state == shardLeased && !now.Before(sh.expires):
			if sh.state == shardLeased {
				c.log("fabric: lease on shard %d by %s expired; re-granting to %s", i, sh.worker, req.Worker)
			}
			grant(i)
			return
		}
	}
	if done == len(c.shards) {
		writeJSON(w, http.StatusOK, LeaseReply{Status: StatusDone})
		return
	}
	// Everything is leased out and live: come back later. Half a TTL
	// keeps waiting workers responsive to expiries without hammering.
	w.Header().Set("Retry-After", fmt.Sprintf("%g", c.leaseTTL.Seconds()/2))
	writeJSON(w, http.StatusOK, LeaseReply{Status: StatusWait})
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req ProgressRequest
	if !decodeInto(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Shard < 0 || req.Shard >= len(c.shards) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("fabric: no shard %d", req.Shard))
		return
	}
	sh := &c.shards[req.Shard]
	now := c.now()
	switch {
	case sh.state == shardDone:
		writeError(w, http.StatusConflict, fmt.Sprintf("fabric: shard %d already reported", req.Shard))
		return
	case sh.state == shardLeased && sh.worker != req.Worker && now.Before(sh.expires):
		writeError(w, http.StatusConflict,
			fmt.Sprintf("fabric: shard %d is leased to %s", req.Shard, sh.worker))
		return
	}
	// Idle, expired, or our own lease: (re-)adopt and renew. The idle
	// case matters after a coordinator restart — in-flight workers keep
	// renewing and silently re-register their leases.
	sh.state = shardLeased
	sh.worker = req.Worker
	sh.expires = now.Add(c.leaseTTL)
	sh.done = req.Done
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decodeInto(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Shard < 0 || req.Shard >= len(c.shards) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("fabric: no shard %d", req.Shard))
		return
	}
	if req.Study == nil {
		writeError(w, http.StatusBadRequest, "fabric: report without a study")
		return
	}
	if err := c.validateShardStudy(req.Shard, req.Study); err != nil {
		writeError(w, http.StatusConflict, fmt.Sprintf("fabric: rejected report for shard %d: %v", req.Shard, err))
		return
	}
	sh := &c.shards[req.Shard]
	if sh.state == shardDone {
		// Idempotent re-delivery is fine; a *different* result for the
		// same shard means determinism broke and must be loud.
		have, _ := json.Marshal(sh.study) //bce:errok a Study round-trips through JSON by construction
		got, _ := json.Marshal(req.Study) //bce:errok a Study round-trips through JSON by construction
		if string(have) == string(got) {
			writeJSON(w, http.StatusOK, struct{}{})
			return
		}
		writeError(w, http.StatusConflict,
			fmt.Sprintf("fabric: shard %d reported twice with different aggregates", req.Shard))
		return
	}
	if c.dir != "" {
		if err := population.SaveCheckpoint(c.shardPath(req.Shard), req.Study); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	sh.state = shardDone
	sh.worker = ""
	sh.done = req.Study.Done
	sh.study = req.Study
	c.log("fabric: shard %d reported by %s (%d scenarios)", req.Shard, req.Worker, req.Study.Done)
	if err := c.maybeFinishLocked(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// maybeFinishLocked merges once every shard has reported. Callers hold mu.
func (c *Coordinator) maybeFinishLocked() error {
	if c.result != nil {
		return nil
	}
	parts := make([]*population.Study, 0, len(c.shards))
	for i := range c.shards {
		if c.shards[i].state != shardDone {
			return nil
		}
		parts = append(parts, c.shards[i].study)
	}
	merged, err := population.MergeStudies(parts)
	if err != nil {
		return fmt.Errorf("fabric: merging %d shards: %w", len(parts), err)
	}
	c.result = merged
	close(c.doneCh)
	c.log("fabric: all %d shards reported; study complete (%d scenarios)", len(parts), merged.Done)
	return nil
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	st, err := c.Result()
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// decodeInto parses a POSTed JSON body, writing the error response
// itself when the request is unusable.
func decodeInto(w http.ResponseWriter, r *http.Request, out any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "fabric: POST required")
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("fabric: reading body: %v", err))
		return false
	}
	if err := json.Unmarshal(body, out); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("fabric: parsing body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) //bce:errok the client hung up; there is no one left to tell
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorReply{Error: msg})
}
