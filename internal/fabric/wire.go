// The wire protocol: four JSON-over-HTTP endpoints under /v1/. The
// vocabulary follows the serve package (JSON bodies both ways, 429/409
// with Retry-After for back-pressure and conflicts), so the worker can
// reuse serve.ParseRetryAfter for every backoff decision.
//
//	POST /v1/lease    LeaseRequest → LeaseReply    claim (or re-claim) a shard
//	POST /v1/progress ProgressRequest → {}         renew the lease, report done count
//	POST /v1/report   ReportRequest → {}           deliver a finished shard's aggregates
//	GET  /v1/status   → StatusReply                observability
//	GET  /v1/result   → population.Study           the merged study, once complete
package fabric

import "bce/internal/population"

// Lease states returned in LeaseReply.Status.
const (
	// StatusLease: a shard was granted; run it.
	StatusLease = "lease"
	// StatusWait: every shard is leased out but the study is not done;
	// retry after the Retry-After header's delay.
	StatusWait = "wait"
	// StatusDone: every shard has reported; the worker can exit.
	StatusDone = "done"
)

// LeaseRequest asks for a shard to work on. Worker names identify
// lease ownership across restarts: a restarted worker with the same
// name immediately reclaims its old shard instead of waiting for the
// lease to expire.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseReply is the coordinator's answer.
type LeaseReply struct {
	Status string `json:"status"`
	// Shard, Lo, N and Spec are set when Status is StatusLease.
	Shard int   `json:"shard,omitempty"`
	Lo    int   `json:"lo,omitempty"`
	N     int   `json:"n,omitempty"`
	Spec  *Spec `json:"spec,omitempty"`
	// LeaseSecs is how long the lease lasts without a progress
	// renewal before the coordinator re-grants the shard.
	LeaseSecs float64 `json:"lease_secs,omitempty"`
}

// ProgressRequest renews a lease and reports how far the shard has
// folded. Sent after every folded batch, it doubles as the liveness
// heartbeat. A 409 response means the lease is lost (another worker
// owns the shard, or it already reported) and the sender must abandon
// the shard.
type ProgressRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
	Done   int    `json:"done"`
}

// ReportRequest delivers a completed shard's full aggregate state.
// Reports are idempotent: re-delivering a bit-identical study is
// acknowledged; delivering a *different* study for a reported shard is
// a 409 — it would mean determinism broke somewhere.
type ReportRequest struct {
	Worker string            `json:"worker"`
	Shard  int               `json:"shard"`
	Study  *population.Study `json:"study"`
}

// StatusReply summarizes coordinator state for humans and smoke tests.
type StatusReply struct {
	Shards        int      `json:"shards"`
	Idle          int      `json:"idle"`
	Leased        int      `json:"leased"`
	Done          int      `json:"done"`
	Scenarios     int      `json:"scenarios"`
	ScenariosDone int      `json:"scenarios_done"`
	Complete      bool     `json:"complete"`
	Workers       []string `json:"workers,omitempty"`
}

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error string `json:"error"`
}
