// The worker: a sequential lease → fold → report loop around the
// single-process study engine. Everything crash-tolerance-related is
// delegated — the shard fold checkpoints through the population
// package's atomic files, lease arbitration lives in the coordinator —
// so the worker itself is just a careful HTTP client: it validates
// local checkpoints against the leased spec before resuming, renews
// its lease from the fold loop's progress callback, and abandons the
// shard the moment the coordinator says the lease is gone.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"bce/internal/population"
	"bce/internal/runner"
	"bce/internal/serve"
)

// errLeaseLost marks a shard abandoned because the coordinator granted
// it elsewhere (or already has its result); the worker loops back to
// lease something else. It never escapes Run.
var errLeaseLost = errors.New("fabric: lease lost")

// Worker runs shards against a coordinator until the study completes.
type Worker struct {
	// Coord is the coordinator base URL, e.g. "http://127.0.0.1:9931".
	Coord string
	// Name identifies this worker's leases; restarting a worker under
	// the same name reclaims its shard immediately. Required.
	Name string
	// Dir is where shard checkpoints live (one file per shard). A
	// worker restarted with the same Dir resumes mid-shard. Required.
	Dir string
	// HTTP overrides the transport in tests; nil uses a plain client.
	HTTP *http.Client
	// Log, when set, receives one line per lease/progress/report event.
	Log func(format string, args ...any)
	// Progress, when set, observes (shard, done, total) after every
	// folded batch — the CLI's progress meter.
	Progress func(shard, done, total int)
	// RunBatch substitutes the execution engine (tests, CI smoke);
	// nil means the real runner.Batch.
	RunBatch func(ctx context.Context, specs []runner.Spec, opts ...runner.Option) ([]runner.RunResult, error)
}

// Run leases and folds shards until the coordinator reports the study
// done (returns nil), the context is canceled (returns ctx.Err(); the
// current shard's checkpoint makes the work resumable), or something
// unrecoverable happens — a stale local checkpoint, a rejected report.
// opts are passed through to the runner for every batch.
func (w *Worker) Run(ctx context.Context, opts ...runner.Option) error {
	if w.Coord == "" || w.Name == "" || w.Dir == "" {
		return fmt.Errorf("fabric: worker needs Coord, Name and Dir")
	}
	if err := os.MkdirAll(w.Dir, 0o755); err != nil {
		return fmt.Errorf("fabric: worker dir: %w", err)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		reply, retryAfter, err := w.lease(ctx)
		if err != nil {
			// Coordinator unreachable: a restart in progress looks the
			// same as a crash; keep knocking politely.
			w.logf("fabric: %s: lease: %v (retrying)", w.Name, err)
			if serr := w.sleep(ctx, retryAfter); serr != nil {
				return serr
			}
			continue
		}
		switch reply.Status {
		case StatusDone:
			return nil
		case StatusWait:
			if serr := w.sleep(ctx, retryAfter); serr != nil {
				return serr
			}
		case StatusLease:
			err := w.runShard(ctx, reply, opts...)
			switch {
			case errors.Is(err, errLeaseLost):
				w.logf("fabric: %s: shard %d lease lost; re-leasing", w.Name, reply.Shard)
			case err != nil:
				return err
			}
		default:
			return fmt.Errorf("fabric: coordinator sent unknown lease status %q", reply.Status)
		}
	}
}

// runShard folds one leased shard to completion and reports it.
func (w *Worker) runShard(ctx context.Context, lease LeaseReply, opts ...runner.Option) error {
	if lease.Spec == nil {
		return fmt.Errorf("fabric: lease for shard %d carried no spec", lease.Shard)
	}
	p, err := lease.Spec.Params(lease.Shard)
	if err != nil {
		return err
	}
	p.RunBatch = w.RunBatch
	p.CheckpointPath = filepath.Join(w.Dir, fmt.Sprintf("shard-%03d.ck.json", lease.Shard))

	// Renew the lease from the fold loop itself: progress doubles as
	// the heartbeat, and a conflict response means another worker owns
	// the shard now — stop folding it immediately.
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	lost := false
	p.Progress = func(done, total int) {
		if w.Progress != nil {
			w.Progress(lease.Shard, done, total)
		}
		status, _, err := w.post(shardCtx, "/v1/progress",
			ProgressRequest{Worker: w.Name, Shard: lease.Shard, Done: done}, &struct{}{})
		switch {
		case err != nil:
			// Unreachable coordinator is not lease loss; the fold keeps
			// going and the report retries will sort it out.
			w.logf("fabric: %s: progress: %v", w.Name, err)
		case status == http.StatusConflict:
			lost = true
			cancel()
		}
	}

	var st *population.Study
	if _, err := os.Stat(p.CheckpointPath); err == nil {
		// A local checkpoint must belong to this exact shard of this
		// exact study; anything else is stale state from an old run and
		// folding onto it would poison the aggregates.
		ck, lerr := population.LoadCheckpoint(p.CheckpointPath)
		if lerr != nil {
			return fmt.Errorf("fabric: shard %d has an unreadable checkpoint (delete %s to refold): %w",
				lease.Shard, p.CheckpointPath, lerr)
		}
		if diffs := population.DiffParams(ck, p); len(diffs) != 0 {
			return fmt.Errorf("fabric: checkpoint %s disagrees with the leased spec: %v (delete it to refold shard %d)",
				p.CheckpointPath, diffs, lease.Shard)
		}
		if ck.Target != p.Scenarios {
			return fmt.Errorf("fabric: checkpoint %s targets %d scenarios, lease wants %d (delete it to refold shard %d)",
				p.CheckpointPath, ck.Target, p.Scenarios, lease.Shard)
		}
		w.logf("fabric: %s: resuming shard %d at %d/%d", w.Name, lease.Shard, ck.Done, ck.Target)
		st, err = population.Resume(shardCtx, p.CheckpointPath, p, opts...)
	} else {
		w.logf("fabric: %s: folding shard %d [%d,%d)", w.Name, lease.Shard, lease.Lo, lease.Lo+lease.N)
		st, err = population.Run(shardCtx, p, opts...)
	}
	if err != nil {
		if lost {
			return errLeaseLost
		}
		return err
	}
	return w.report(ctx, lease.Shard, st)
}

// report delivers the finished shard, retrying transient failures —
// the one HTTP call that must not give up early, because the folded
// work is sitting in it.
func (w *Worker) report(ctx context.Context, shard int, st *population.Study) error {
	req := ReportRequest{Worker: w.Name, Shard: shard, Study: st}
	var denied errorReply
	for attempt := 0; ; attempt++ {
		status, retryAfter, err := w.post(ctx, "/v1/report", req, &denied)
		switch {
		case err == nil && status == http.StatusOK:
			w.logf("fabric: %s: reported shard %d (%d scenarios)", w.Name, shard, st.Done)
			return nil
		case err == nil && status == http.StatusConflict:
			// The coordinator has a result for this shard already. If it
			// matched ours we'd have gotten 200 (idempotent re-delivery),
			// so this is a real disagreement — surface it, loudly.
			return fmt.Errorf("fabric: coordinator rejected shard %d: %s", shard, denied.Error)
		case err == nil && status != http.StatusOK:
			w.logf("fabric: %s: report shard %d: status %d: %s (retrying)", w.Name, shard, status, denied.Error)
		default:
			w.logf("fabric: %s: report shard %d: %v (retrying)", w.Name, shard, err)
		}
		if serr := w.sleep(ctx, retryAfter); serr != nil {
			return serr
		}
	}
}

// lease asks the coordinator for work.
func (w *Worker) lease(ctx context.Context) (LeaseReply, time.Duration, error) {
	var reply LeaseReply
	status, retryAfter, err := w.post(ctx, "/v1/lease", LeaseRequest{Worker: w.Name}, &reply)
	if err != nil {
		return LeaseReply{}, retryAfter, err
	}
	if status != http.StatusOK {
		return LeaseReply{}, retryAfter, fmt.Errorf("fabric: lease status %d", status)
	}
	return reply, retryAfter, nil
}

// post sends one JSON request and decodes the JSON reply. The returned
// delay is the server's Retry-After (or the serve package's default),
// already clamped to sane bounds — every retry path sleeps on it.
func (w *Worker) post(ctx context.Context, path string, in, out any) (status int, retryAfter time.Duration, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, serve.DefaultRetryAfter, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coord+path, bytes.NewReader(body))
	if err != nil {
		return 0, serve.DefaultRetryAfter, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := w.HTTP
	if client == nil {
		client = &http.Client{}
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, serve.DefaultRetryAfter, err
	}
	defer resp.Body.Close() //bce:errok read-side close after full drain
	retryAfter = serve.ParseRetryAfter(resp.Header.Get("Retry-After"))
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return resp.StatusCode, retryAfter, err
	}
	if out != nil && len(data) > 0 {
		if jerr := json.Unmarshal(data, out); jerr != nil {
			return resp.StatusCode, retryAfter, fmt.Errorf("fabric: bad reply from %s: %w", path, jerr)
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// sleep waits d or until the context dies.
func (w *Worker) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		d = serve.DefaultRetryAfter
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d): //bce:wallclock backing off against a real remote coordinator
		return nil
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}
