package fabric

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bce/internal/client"
	"bce/internal/metrics"
	"bce/internal/population"
	"bce/internal/runner"
)

// stubBatch fabricates deterministic per-cell metrics from the spec
// label, mirroring the population package's test stub: results depend
// only on the label, so a fabric run and a single-process run fold
// identical samples.
func stubBatch(ctx context.Context, specs []runner.Spec, opts ...runner.Option) ([]runner.RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]runner.RunResult, len(specs))
	for i, sp := range specs {
		h := uint64(14695981039346656037)
		for _, c := range []byte(sp.Label) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		var m metrics.Metrics
		m.IdleFraction = float64(h%1000) / 1000
		m.WastedFraction = float64((h>>10)%1000) / 1000
		m.ShareViolation = float64((h>>20)%1000) / 1000
		m.Monotony = float64((h>>30)%1000) / 1000
		m.RPCsPerJob = float64((h>>40)%1000) / 1000
		results[i] = runner.RunResult{Index: i, Label: sp.Label, Result: &client.Result{Metrics: m}}
	}
	return results, nil
}

func testSpec(scenarios, shards int) Spec {
	return Spec{
		Seed:      42,
		Combos:    []population.Combo{{Sched: "JS-LOCAL", Fetch: "JF-ORIG"}, {Sched: "JS-GLOBAL", Fetch: "JF-HYSTERESIS"}},
		Scenarios: scenarios,
		Shards:    shards,
		BatchSize: 16,
	}
}

// singleFold runs the whole spec range in one process with the same
// stub engine — the bit-identical reference every fabric test compares
// against.
func singleFold(t *testing.T, spec Spec) *population.Study {
	t.Helper()
	st, err := population.Run(context.Background(), population.Params{
		Combos:     spec.Combos,
		Scenarios:  spec.Scenarios,
		Seed:       spec.Seed,
		Population: spec.Population,
		BatchSize:  spec.BatchSize,
		RunBatch:   stubBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestShardRangeTiles(t *testing.T) {
	for _, tc := range [][2]int{{10, 3}, {10, 10}, {7, 2}, {1000, 7}, {5, 1}} {
		s := Spec{Scenarios: tc[0], Shards: tc[1]}
		next := 0
		for i := 0; i < s.Shards; i++ {
			lo, n := s.ShardRange(i)
			if lo != next {
				t.Fatalf("%v shard %d starts at %d, want %d", tc, i, lo, next)
			}
			if n <= 0 {
				t.Fatalf("%v shard %d is empty", tc, i)
			}
			next = lo + n
		}
		if next != s.Scenarios {
			t.Fatalf("%v shards tile to %d, want %d", tc, next, s.Scenarios)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		ok   bool
	}{
		{testSpec(100, 4), true},
		{testSpec(0, 4), false},
		{testSpec(100, 0), false},
		{testSpec(3, 4), false},
	} {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", tc.spec, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%+v: validation should fail", tc.spec)
		}
	}
}

// runWorkers drives n workers concurrently against the coordinator URL
// until each exits, failing the test on any worker error.
func runWorkers(t *testing.T, ctx context.Context, url, dir string, names ...string) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for i, name := range names {
		w := &Worker{Coord: url, Name: name, Dir: dir + "/" + name, RunBatch: stubBatch, Log: t.Logf}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %s: %v", names[i], err)
		}
	}
}

// The headline guarantee: two workers, four shards, a persisted
// coordinator — the merged result is bit-identical to one process
// folding the whole range.
func TestFabricEndToEndBitIdentical(t *testing.T) {
	spec := testSpec(200, 4)
	want := asJSON(t, singleFold(t, spec))

	dir := t.TempDir()
	c, err := NewCoordinator(spec, CoordinatorOptions{Dir: dir + "/coord", LeaseTTL: 5 * time.Second, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	runWorkers(t, context.Background(), srv.URL, dir, "w1", "w2")

	select {
	case <-c.Done():
	default:
		t.Fatal("workers exited but the study is not done")
	}
	got, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(t, got) != want {
		t.Fatal("sharded result differs from single-process fold")
	}
	status := c.Status()
	if !status.Complete || status.Done != spec.Shards || status.ScenariosDone != spec.Scenarios {
		t.Fatalf("status after completion: %+v", status)
	}
}

// Kill a worker mid-shard (context cancel — the in-process equivalent
// of kill -9 at a batch boundary), restart it under the same name and
// dir, and require the final merged study to match the uninterrupted
// reference bit for bit.
func TestFabricWorkerKillAndResume(t *testing.T) {
	spec := testSpec(240, 3)
	want := asJSON(t, singleFold(t, spec))

	dir := t.TempDir()
	c, err := NewCoordinator(spec, CoordinatorOptions{Dir: dir + "/coord", LeaseTTL: 5 * time.Second, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// First incarnation: dies after a couple of folded batches.
	killCtx, kill := context.WithCancel(context.Background())
	w1 := &Worker{Coord: srv.URL, Name: "w1", Dir: dir + "/w1", RunBatch: stubBatch, Log: t.Logf}
	batches := 0
	w1.Progress = func(shard, done, total int) {
		if batches++; batches == 2 {
			kill()
		}
	}
	if err := w1.Run(killCtx); err == nil {
		t.Fatal("killed worker reported success")
	}

	// Restart under the same identity: reclaims the lease, resumes the
	// shard checkpoint, finishes the study.
	w2 := &Worker{Coord: srv.URL, Name: "w1", Dir: dir + "/w1", RunBatch: stubBatch, Log: t.Logf}
	if err := w2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	got, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(t, got) != want {
		t.Fatal("kill/resume result differs from single-process fold")
	}
}

// Kill the coordinator between shard reports, restart it on the same
// dir, and finish the study — the spec file and persisted shard
// reports must carry all the state across.
func TestFabricCoordinatorRestart(t *testing.T) {
	spec := testSpec(120, 3)
	want := asJSON(t, singleFold(t, spec))

	dir := t.TempDir()
	coordDir := dir + "/coord"
	c1, err := NewCoordinator(spec, CoordinatorOptions{Dir: coordDir, LeaseTTL: 5 * time.Second, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())

	// Run one worker against coordinator #1 until the first shard is
	// reported, then "crash" the coordinator.
	stopCtx, stop := context.WithCancel(context.Background())
	w := &Worker{Coord: srv1.URL, Name: "w1", Dir: dir + "/w1", RunBatch: stubBatch, Log: t.Logf}
	go func() {
		for {
			select {
			case <-stopCtx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
			if c1.Status().Done >= 1 {
				stop()
				return
			}
		}
	}()
	_ = w.Run(stopCtx) //bce:errok the context cancel that stops the worker is the expected outcome here
	srv1.Close()
	if got := c1.Status().Done; got < 1 {
		t.Fatalf("setup: %d shards reported before the crash, want >= 1", got)
	}

	// Coordinator #2 on the same dir must refuse a different spec...
	other := spec
	other.Seed = 7
	if _, err := NewCoordinator(other, CoordinatorOptions{Dir: coordDir}); err == nil {
		t.Fatal("restart with a different spec should fail")
	}
	// ...and adopt the reported shards for the true spec.
	c2, err := NewCoordinator(spec, CoordinatorOptions{Dir: coordDir, LeaseTTL: 5 * time.Second, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Status().Done != c1.Status().Done {
		t.Fatalf("restarted coordinator sees %d done shards, want %d", c2.Status().Done, c1.Status().Done)
	}
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()

	runWorkers(t, context.Background(), srv2.URL, dir, "w1", "w2")
	got, err := c2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(t, got) != want {
		t.Fatal("post-restart result differs from single-process fold")
	}
}

// Lease arbitration under an injected clock: expiry hands the shard to
// a new worker, after which the old holder's renewals are refused.
func TestFabricLeaseExpiry(t *testing.T) {
	spec := testSpec(10, 1)
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	c, err := NewCoordinator(spec, CoordinatorOptions{
		LeaseTTL: 30 * time.Second,
		now:      func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx := context.Background()

	wa := &Worker{Coord: srv.URL, Name: "a", Dir: t.TempDir()}
	wb := &Worker{Coord: srv.URL, Name: "b", Dir: t.TempDir()}

	la, _, err := wa.lease(ctx)
	if err != nil || la.Status != StatusLease {
		t.Fatalf("a's lease: %+v, %v", la, err)
	}
	lb, _, err := wb.lease(ctx)
	if err != nil || lb.Status != StatusWait {
		t.Fatalf("b should wait while a holds the only shard: %+v, %v", lb, err)
	}

	// A heartbeats: still the holder.
	status, _, err := wa.post(ctx, "/v1/progress", ProgressRequest{Worker: "a", Shard: 0, Done: 1}, &struct{}{})
	if err != nil || status != 200 {
		t.Fatalf("a's renewal: %d, %v", status, err)
	}

	// Clock jumps past the TTL: b takes the shard over, and a's next
	// renewal is refused.
	clock = clock.Add(31 * time.Second)
	lb, _, err = wb.lease(ctx)
	if err != nil || lb.Status != StatusLease || lb.Shard != 0 {
		t.Fatalf("b should win the expired lease: %+v, %v", lb, err)
	}
	status, _, err = wa.post(ctx, "/v1/progress", ProgressRequest{Worker: "a", Shard: 0, Done: 2}, &struct{}{})
	if err != nil || status != 409 {
		t.Fatalf("a's renewal after expiry: status %d, %v; want 409", status, err)
	}
}

// Report validation: wrong ranges, incomplete shards and diverging
// duplicates are refused; bit-identical duplicates are acknowledged.
func TestFabricReportValidation(t *testing.T) {
	spec := testSpec(100, 2)
	c, err := NewCoordinator(spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx := context.Background()
	w := &Worker{Coord: srv.URL, Name: "w", Dir: t.TempDir()}

	foldShard := func(i int) *population.Study {
		p, err := spec.Params(i)
		if err != nil {
			t.Fatal(err)
		}
		p.RunBatch = stubBatch
		st, err := population.Run(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	post := func(req ReportRequest) (int, string) {
		var deny errorReply
		status, _, err := w.post(ctx, "/v1/report", req, &deny)
		if err != nil {
			t.Fatal(err)
		}
		return status, deny.Error
	}

	good := foldShard(0)
	if status, msg := post(ReportRequest{Worker: "w", Shard: 1, Study: good}); status != 409 || !strings.Contains(msg, "covers") {
		t.Fatalf("wrong-range report: %d %q", status, msg)
	}
	incomplete, err := population.Run(ctx, population.Params{
		Combos: spec.Combos, Scenarios: 10, Seed: spec.Seed, RunBatch: stubBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := post(ReportRequest{Worker: "w", Shard: 0, Study: incomplete}); status != 409 {
		t.Fatalf("short report accepted: %d", status)
	}
	if status, _ := post(ReportRequest{Worker: "w", Shard: 0, Study: good}); status != 200 {
		t.Fatalf("valid report refused: %d", status)
	}
	if status, _ := post(ReportRequest{Worker: "w", Shard: 0, Study: good}); status != 200 {
		t.Fatalf("idempotent re-report refused: %d", status)
	}
	mutated, err := population.MergeStudies([]*population.Study{good})
	if err != nil {
		t.Fatal(err)
	}
	mutated.Aggs[0].Failed++
	if status, msg := post(ReportRequest{Worker: "w", Shard: 0, Study: mutated}); status != 409 || !strings.Contains(msg, "different aggregates") {
		t.Fatalf("diverging re-report: %d %q", status, msg)
	}
}

// A stale local checkpoint (from some other study) must stop the
// worker loudly instead of poisoning the shard.
func TestFabricWorkerRejectsStaleCheckpoint(t *testing.T) {
	spec := testSpec(100, 2)
	c, err := NewCoordinator(spec, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Seed the worker dir with a checkpoint folded under another seed,
	// sitting exactly where shard 0's checkpoint belongs.
	dir := t.TempDir()
	stale, err := population.Run(context.Background(), population.Params{
		Combos: spec.Combos, Scenarios: 50, Seed: 999, RunBatch: stubBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := population.SaveCheckpoint(dir+"/shard-000.ck.json", stale); err != nil {
		t.Fatal(err)
	}

	w := &Worker{Coord: srv.URL, Name: "w", Dir: dir, RunBatch: stubBatch}
	err = w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("stale checkpoint: got %v, want a loud spec disagreement", err)
	}
}
