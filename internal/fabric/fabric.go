// Package fabric is the distributed population-study layer: a
// crash-tolerant coordinator that leases contiguous scenario shards to
// worker processes over a small JSON-over-HTTP wire protocol, collects
// their partial aggregates, and merges them into the study a single
// process would have produced (DESIGN.md §14).
//
// The correctness story leans entirely on two properties the rest of
// the repo already guarantees: every scenario is a pure function of
// (seed, index), and the population aggregates are pure functions of
// the folded sample multiset (exact sums, integer counts — see
// internal/stats and population.MergeStudies). The fabric therefore
// only has to get *coverage* right — every scenario folded exactly
// once, by some worker, eventually — and bit-identical output falls
// out. Workers checkpoint their shard locally (the same atomic
// checkpoint files a single-process study writes), so kill -9 and
// restart resumes mid-shard; the coordinator persists reported shard
// aggregates and its spec, so it can be restarted too.
//
// Concurrency: this package owns no goroutines. The coordinator is a
// set of http.Handlers sharing one mutex (the caller owns the
// http.Server and its goroutines; lease expiry is evaluated lazily at
// request time, so no timer goroutine exists either), and the worker
// is a single sequential loop on the caller's goroutine — parallelism
// inside a shard comes from runner.Batch, across shards from running
// more worker processes.
package fabric

import (
	"fmt"

	"bce/internal/population"
	"bce/internal/scenario"
)

// Spec pins down one sharded study completely: any two processes
// holding equal Specs will sample, shard, and fold the exact same
// population. The coordinator is the source of truth — workers receive
// the spec with their lease rather than trusting local flags.
type Spec struct {
	// Seed, Combos and Population define the scenario population,
	// exactly as in population.Params.
	Seed       int64                     `json:"seed"`
	Combos     []population.Combo        `json:"combos"`
	Population scenario.PopulationParams `json:"population"`
	// Scenarios is the whole-study scenario count, split over Shards
	// contiguous ranges.
	Scenarios int `json:"scenarios"`
	Shards    int `json:"shards"`
	// BatchSize and CheckpointEvery tune each worker's fold loop; they
	// affect throughput and checkpoint cadence, never results.
	BatchSize       int `json:"batch_size,omitempty"`
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Validate reports whether the spec describes a runnable study.
func (s *Spec) Validate() error {
	if s.Scenarios <= 0 {
		return fmt.Errorf("fabric: no scenarios in spec")
	}
	if s.Shards <= 0 {
		return fmt.Errorf("fabric: no shards in spec")
	}
	if s.Shards > s.Scenarios {
		return fmt.Errorf("fabric: %d shards for %d scenarios; shards must not outnumber scenarios",
			s.Shards, s.Scenarios)
	}
	return nil
}

// ShardRange returns the contiguous scenario range [lo, lo+n) owned by
// shard i. The split is balanced: the first Scenarios%Shards shards get
// one extra scenario. Ranges tile [0, Scenarios) exactly.
func (s *Spec) ShardRange(i int) (lo, n int) {
	base := s.Scenarios / s.Shards
	extra := s.Scenarios % s.Shards
	if i < extra {
		return i * (base + 1), base + 1
	}
	return extra*(base+1) + (i-extra)*base, base
}

// Params builds the population.Params for shard i. The caller supplies
// execution details (RunBatch, CheckpointPath, Progress).
func (s *Spec) Params(i int) (population.Params, error) {
	if i < 0 || i >= s.Shards {
		return population.Params{}, fmt.Errorf("fabric: shard %d outside [0,%d)", i, s.Shards)
	}
	lo, n := s.ShardRange(i)
	return population.Params{
		Combos:          s.Combos,
		Scenarios:       n,
		Lo:              lo,
		Seed:            s.Seed,
		Population:      s.Population,
		BatchSize:       s.BatchSize,
		CheckpointEvery: s.CheckpointEvery,
	}, nil
}
