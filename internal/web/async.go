package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"strings"

	"bce/internal/metrics"
	"bce/internal/serve"
)

// maxUploadBytes bounds an /api/run request body.
const maxUploadBytes = 8 << 20

var jobTmpl = template.Must(template.New("job").Parse(`<!doctype html>
<html><head><title>BCE job {{.ID}}</title>
{{if not .Terminal}}<meta http-equiv="refresh" content="3">{{end}}
<style>
 body { font-family: sans-serif; max-width: 56em; margin: 2em auto; }
 .state { font-size: 1.3em; }
 .failed { color: #a00; }
 progress { width: 100%; }
</style></head>
<body>
<h1>Job {{.ID}}</h1>
<p class="state{{if .Failed}} failed{{end}}">state: <b id="state">{{.State}}</b></p>
{{if .Err}}<p class="failed">{{.Err}}</p>{{end}}
{{if .Total}}<p><progress id="bar" max="{{.Total}}" value="{{.Done}}"></progress>
<span id="count">{{.Done}}/{{.Total}}</span> scenarios</p>{{end}}
{{if .Queued}}<p>{{.QueuePos}} job(s) ahead in the queue.</p>{{end}}
{{if .Done2}}<p><a href="/jobs/{{.ID}}/result">view result</a></p>{{end}}
{{if not .Terminal}}
<script>
const es = new EventSource("/jobs/{{.ID}}/events");
es.onmessage = (m) => {
  const ev = JSON.parse(m.data);
  document.getElementById("state").textContent = ev.state;
  const bar = document.getElementById("bar");
  if (bar && ev.total) { bar.max = ev.total; bar.value = ev.done || 0;
    document.getElementById("count").textContent = (ev.done||0) + "/" + ev.total; }
  if (ev.state === "done") { es.close(); location.href = "/jobs/{{.ID}}/result"; }
  if (ev.state === "failed") { es.close(); location.reload(); }
};
</script>
{{end}}
<p><a href="/">back</a></p>
</body></html>`))

// jobPages serves the human-facing job routes:
//
//	/jobs/{id}         — status page (meta-refresh + SSE auto-advance)
//	/jobs/{id}/result  — rendered result once done
//	/jobs/{id}/events  — server-sent progress events
func (s *Server) jobPages(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		http.NotFound(w, r)
		return
	}
	switch sub {
	case "":
		s.jobStatus(w, r, id)
	case "result":
		s.jobResult(w, r, id)
	case "events":
		s.jobEvents(w, r, id)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request, id string) {
	v, err := s.Svc.Job(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	if v.State == serve.StateDone {
		http.Redirect(w, r, "/jobs/"+v.ID+"/result", http.StatusSeeOther)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	//bce:errok headers are sent; a failed render only means the client hung up
	jobTmpl.Execute(w, struct {
		ID       string
		State    serve.State
		Err      string
		Done     int
		Total    int
		QueuePos int
		Queued   bool
		Failed   bool
		Done2    bool
		Terminal bool
	}{v.ID, v.State, v.Err, v.Done, v.Total, v.QueuePos,
		v.State == serve.StateQueued, v.State == serve.StateFailed,
		v.State == serve.StateDone, v.State.Terminal()})
}

func (s *Server) jobResult(w http.ResponseWriter, r *http.Request, id string) {
	out, finished, err := s.Svc.Outcome(id)
	if err != nil && out == nil && !finished {
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !finished {
		http.Redirect(w, r, "/jobs/"+id, http.StatusSeeOther)
		return
	}
	var notices []string
	if v, verr := s.Svc.Job(id); verr == nil && v.CacheHit {
		notices = append(notices, "served from the result cache: an identical submission was emulated earlier")
	}
	switch out.Kind {
	case serve.KindRun:
		s.renderRun(w, out, notices)
	case serve.KindStudy:
		s.renderStudy(w, out.Study, notices)
	default:
		http.Error(w, "unknown job kind", http.StatusInternalServerError)
	}
}

// jobEvents streams a job's progress as server-sent events. The stream
// ends when the job reaches a terminal state or the client goes away.
func (s *Server) jobEvents(w http.ResponseWriter, r *http.Request, id string) {
	ch, cancel, err := s.Svc.Watch(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			data, merr := json.Marshal(ev)
			if merr != nil {
				continue
			}
			fmt.Fprintf(w, "data: %s\n\n", data) //bce:errok a failed write only means the client hung up
			flusher.Flush()
		}
	}
}

// submitReply is the JSON body of /api/run and /api/study responses.
type submitReply struct {
	ID       string      `json:"id"`
	State    serve.State `json:"state"`
	CacheHit bool        `json:"cache_hit"`
	Err      string      `json:"err,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //bce:errok headers are sent; a failed write only means the client hung up
}

// submitJSON runs a validated request through Submit and writes the
// machine-facing reply: 200 for an immediately-done (cached) job, 202
// for an accepted ticket, 429 + Retry-After when shedding, 503 when
// the pool is not running.
func (s *Server) submitJSON(w http.ResponseWriter, req serve.Request) {
	view, err := s.Svc.Submit(req)
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.Svc.RetryAfter().Seconds())))
		writeJSON(w, http.StatusTooManyRequests, submitReply{Err: "queue full"})
		return
	case errors.Is(err, serve.ErrNotStarted):
		writeJSON(w, http.StatusServiceUnavailable, submitReply{Err: "job queue not running"})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, submitReply{Err: err.Error()})
		return
	}
	status := http.StatusAccepted
	if view.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, submitReply{ID: view.ID, State: view.State, CacheHit: view.CacheHit})
}

// apiRun is the machine-facing submission endpoint: the body is a JSON
// scenario or client_state.xml, query parameters days/seed/sched/fetch
// override the scenario the same way the form does (with the same
// caps), and the reply is a job ticket to poll at /api/jobs/{id}.
func (s *Server) apiRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, submitReply{Err: "reading body: " + err.Error()})
		return
	}
	state := strings.TrimSpace(string(body))
	if state == "" {
		writeJSON(w, http.StatusBadRequest, submitReply{Err: "no scenario supplied"})
		return
	}
	scn, perr := parseUpload(state)
	s.save(state, perr == nil)
	if perr != nil {
		writeJSON(w, http.StatusBadRequest, submitReply{Err: perr.Error()})
		return
	}
	q := r.URL.Query()
	if v, perr := strconv.ParseFloat(q.Get("days"), 64); perr == nil && v > 0 {
		scn.DurationDays = v
	}
	maxDays := s.MaxDays
	if maxDays <= 0 {
		maxDays = 30
	}
	if scn.DurationDays > maxDays || scn.DurationDays <= 0 {
		scn.DurationDays = maxDays
	}
	if v, perr := strconv.ParseInt(q.Get("seed"), 10, 64); perr == nil {
		scn.Seed = v
	}
	if p := q.Get("sched"); p != "" {
		scn.Policies.JobSched = p
	}
	if p := q.Get("fetch"); p != "" {
		scn.Policies.JobFetch = p
	}
	s.submitJSON(w, serve.Request{Kind: serve.KindRun, Scenario: scn})
}

// apiStudy submits a population study: query parameters n/days/seed,
// same caps as the form.
func (s *Server) apiStudy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	n, days, seed, _ := studyParams(q.Get("n"), q.Get("days"), q.Get("seed"))
	s.submitJSON(w, serve.Request{Kind: serve.KindStudy, StudyScenarios: n, StudyDays: days, StudySeed: seed})
}

// apiJobs serves the machine-facing job routes:
//
//	/api/jobs/{id}         — JobView JSON snapshot
//	/api/jobs/{id}/result  — result payload as JSON once done
func (s *Server) apiJobs(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		http.NotFound(w, r)
		return
	}
	switch sub {
	case "":
		v, err := s.Svc.Job(id)
		if err != nil {
			writeJSON(w, http.StatusNotFound, submitReply{Err: "unknown job"})
			return
		}
		writeJSON(w, http.StatusOK, v)
	case "result":
		s.apiJobResult(w, id)
	default:
		http.NotFound(w, r)
	}
}

// runResultJSON is the machine-facing payload of a finished run.
type runResultJSON struct {
	Name    string             `json:"name"`
	Days    float64            `json:"days"`
	Sched   string             `json:"sched"`
	Fetch   string             `json:"fetch"`
	Metrics map[string]float64 `json:"metrics"`
	Jobs    int                `json:"jobs"`
	Missed  int                `json:"missed"`
	RPCs    int                `json:"rpcs"`
}

// studyResultJSON is the machine-facing payload of a finished study.
type studyResultJSON struct {
	Scenarios int     `json:"scenarios"`
	Days      float64 `json:"days"`
	Seed      int64   `json:"seed"`
	Table     string  `json:"table"`
}

func (s *Server) apiJobResult(w http.ResponseWriter, id string) {
	out, finished, err := s.Svc.Outcome(id)
	if err != nil && out == nil && !finished {
		writeJSON(w, http.StatusNotFound, submitReply{Err: "unknown job"})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, submitReply{Err: err.Error()})
		return
	}
	if !finished {
		v, verr := s.Svc.Job(id)
		if verr != nil {
			writeJSON(w, http.StatusNotFound, submitReply{Err: "unknown job"})
			return
		}
		writeJSON(w, http.StatusConflict, v)
		return
	}
	switch out.Kind {
	case serve.KindRun:
		names := metrics.Names()
		vals := out.Result.Metrics.Values()
		m := make(map[string]float64, len(names))
		for i, n := range names {
			m[n] = vals[i]
		}
		writeJSON(w, http.StatusOK, runResultJSON{
			Name:    out.Scenario.Name,
			Days:    out.Scenario.DurationDays,
			Sched:   orDefault(out.Scenario.Policies.JobSched, "JS-LOCAL"),
			Fetch:   orDefault(out.Scenario.Policies.JobFetch, "JF-HYSTERESIS"),
			Metrics: m,
			Jobs:    out.Result.Metrics.CompletedJobs,
			Missed:  out.Result.Metrics.MissedJobs,
			RPCs:    out.Result.Metrics.RPCs,
		})
	case serve.KindStudy:
		writeJSON(w, http.StatusOK, studyResultJSON{
			Scenarios: out.Study.Target,
			Days:      out.Study.Population.DurationDays,
			Seed:      out.Study.Seed,
			Table:     out.Study.Table(),
		})
	default:
		writeJSON(w, http.StatusInternalServerError, submitReply{Err: "unknown job kind"})
	}
}
