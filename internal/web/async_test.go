package web

import (
	"os"
	"regexp"
	"strconv"

	"bce/internal/scenario"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"bce/internal/runner"
	"bce/internal/serve"
)

// startedServer returns a Server with a running worker pool and an
// httptest server in front of it. A nil cfg keeps the default service.
func startedServer(t *testing.T, cfg *serve.Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer("")
	if cfg != nil {
		s.Svc = serve.New(*cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func apiSubmit(t *testing.T, ts *httptest.Server, scn string, query string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/run"+query, "application/json", strings.NewReader(scn))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding submit reply: %v", err)
	}
	return resp, body
}

func pollDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			if v.State != serve.StateDone {
				t.Fatalf("job %s failed: %s", id, v.Err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Full async ticket flow over HTTP: submit through the API, poll the
// job to completion, fetch the JSON result.
func TestAPIEnqueuePollResult(t *testing.T) {
	_, ts := startedServer(t, nil)
	resp, body := apiSubmit(t, ts, jsonScenario, "?seed=11")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d body %v, want 202", resp.StatusCode, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("no ticket in %v", body)
	}
	pollDone(t, ts, id)

	res, err := http.Get(ts.URL + "/api/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("result status %d", res.StatusCode)
	}
	var rr runResultJSON
	if err := json.NewDecoder(res.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Name != "web-test" || len(rr.Metrics) == 0 {
		t.Fatalf("result = %+v", rr)
	}
}

// Submitting a byte-identical scenario twice must not emulate twice:
// the second submission is served from the content-addressed cache.
func TestAPICacheHitSkipsEmulation(t *testing.T) {
	s, ts := startedServer(t, nil)
	resp, body := apiSubmit(t, ts, jsonScenario, "?seed=21")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	pollDone(t, ts, body["id"].(string))
	if got := s.Runs(); got != 1 {
		t.Fatalf("after first run: Runs() = %d, want 1", got)
	}

	resp2, body2 := apiSubmit(t, ts, jsonScenario, "?seed=21")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status %d, want 200", resp2.StatusCode)
	}
	if hit, _ := body2["cache_hit"].(bool); !hit {
		t.Fatalf("second submit not marked cache_hit: %v", body2)
	}
	if got := s.Runs(); got != 1 {
		t.Fatalf("identical resubmission re-emulated: Runs() = %d, want 1", got)
	}
	// The cached job's result is immediately fetchable.
	res, err := http.Get(ts.URL + "/api/jobs/" + body2["id"].(string) + "/result")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("cached result status %d", res.StatusCode)
	}
}

// The form flow also hits the cache: same scenario twice through /run
// (sync fast-path), second render carries the cache notice.
func TestFormCacheHit(t *testing.T) {
	s := NewServer("")
	h := s.Handler()
	form := url.Values{"state": {jsonScenario}, "days": {"0.25"}, "seed": {"31"}}
	if rr := post(t, h, form); rr.Code != 200 {
		t.Fatalf("first run status %d", rr.Code)
	}
	rr := post(t, h, form)
	if rr.Code != 200 {
		t.Fatalf("second run status %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "result cache") {
		t.Fatal("cache hit not surfaced on the result page")
	}
	if s.Runs() != 1 {
		t.Fatalf("Runs() = %d, want 1 (second request must come from cache)", s.Runs())
	}
}

// A saturated queue sheds with 429 and a Retry-After estimate.
func TestAPIQueueFullSheds(t *testing.T) {
	s, ts := startedServer(t, &serve.Config{Batch: runner.Options{Workers: 1}, QueueCap: 1})
	// Submissions long enough that the single worker cannot drain the
	// one-slot queue while we flood it (the pool's context cancels the
	// oversized runs at test cleanup).
	s.MaxDays = 1e6
	shed := false
	var last *http.Response
	for i := 0; i < 25 && !shed; i++ {
		resp, _ := apiSubmit(t, ts, jsonScenario, fmt.Sprintf("?seed=%d&days=1000000", 100+i))
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = true
			last = resp
		}
	}
	if !shed {
		t.Fatal("25 submissions into a 1-worker/1-slot service never shed")
	}
	ra := last.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
}

// The form flow redirects large submissions to a job page and serves
// the rendered result from it once done.
func TestFormAsyncRedirect(t *testing.T) {
	s := NewServer("")
	s.SyncDays = 0.1 // force the async path for a 0.25-day run
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.PostForm(ts.URL+"/run", url.Values{
		"state": {jsonScenario}, "days": {"0.25"}, "seed": {"41"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("submit status %d, want 303", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, "/jobs/") {
		t.Fatalf("redirect to %q, want /jobs/{id}", loc)
	}
	id := strings.TrimPrefix(loc, "/jobs/")
	pollDone(t, ts, id)

	// The status page of a done job redirects to the result.
	resp, err = client.Get(ts.URL + loc)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther || resp.Header.Get("Location") != loc+"/result" {
		t.Fatalf("done-job status page: %d -> %q", resp.StatusCode, resp.Header.Get("Location"))
	}
	res, err := http.Get(ts.URL + loc + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	buf := new(strings.Builder)
	if _, err := fmt.Fprint(buf, readAll(t, res)); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"Figures of merit", "web-test", "<svg"} {
		if !strings.Contains(body, want) {
			t.Fatalf("async result page missing %q", want)
		}
	}
}

// The SSE endpoint frames job events as text/event-stream and ends at
// the terminal state.
func TestSSEProgress(t *testing.T) {
	_, ts := startedServer(t, nil)
	resp, body := apiSubmit(t, ts, jsonScenario, "?seed=51")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := body["id"].(string)

	// Subscribe while the job may still be live: the stream must carry
	// events until the terminal one, then end.
	res, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	stream := readAll(t, res)
	if !strings.Contains(stream, "data: {") {
		t.Fatalf("no SSE data frames in %q", stream)
	}
	if !strings.Contains(stream, `"state":"done"`) {
		t.Fatalf("stream ended without a done event: %q", stream)
	}
}

// Unknown tickets are 404s on every job route.
func TestUnknownJob(t *testing.T) {
	_, ts := startedServer(t, nil)
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result", "/jobs/nope/events", "/api/jobs/nope", "/api/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}

// The study form goes async past the scenario-day budget and renders
// from the job outcome.
func TestStudyAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	s, ts := startedServer(t, nil)
	_ = s
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	// 4 scenarios × 2 days = 8 scenario-days > the 5-day sync budget.
	resp, err := client.PostForm(ts.URL+"/study", url.Values{
		"n": {"4"}, "days": {"2"}, "seed": {"6"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("study submit status %d, want 303", resp.StatusCode)
	}
	id := strings.TrimPrefix(resp.Header.Get("Location"), "/jobs/")
	pollDone(t, ts, id)
	res, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body := readAll(t, res)
	for _, want := range []string{"4 sampled scenarios", "Population means"} {
		if !strings.Contains(body, want) {
			t.Fatalf("async study page missing %q", want)
		}
	}
}

// Loadgen smoke: drive an in-process server end to end and check the
// accounting adds up.
func TestLoadgenSmoke(t *testing.T) {
	_, ts := startedServer(t, nil)
	res, err := serve.Loadgen(context.Background(), serve.LoadgenOptions{
		URL: ts.URL, Requests: 8, Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 8 || res.Failed != 0 {
		t.Fatalf("loadgen result %+v, want 8 completed / 0 failed", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Throughput <= 0 {
		t.Fatalf("implausible latency stats %+v", res)
	}
	if !strings.Contains(res.Table(), "throughput") {
		t.Fatal("Table() missing throughput line")
	}

	// Identical mode hammers the cache: at most one real emulation.
	res2, err := serve.Loadgen(context.Background(), serve.LoadgenOptions{
		URL: ts.URL, Requests: 6, Concurrency: 2, Identical: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Requests != 6 || res2.CacheHits < 4 {
		t.Fatalf("identical-mode result %+v, want most completions cached", res2)
	}
}

func readAll(t *testing.T, res *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := res.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// The log excerpt header must report real line counts — not a fixed
// "first 500 lines" — and a longer log must end with an explicit
// truncation marker instead of silently dropping the remainder.
func TestLogExcerptCounts(t *testing.T) {
	s := NewServer("")
	rr := post(t, s.Handler(), url.Values{
		"state": {jsonScenario}, "days": {"0.25"}, "seed": {"61"},
	})
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	body := rr.Body.String()
	if strings.Contains(body, "first 500 lines") {
		t.Fatal("result page still claims a fixed 500-line excerpt")
	}
	m := regexp.MustCompile(`Message log \((\d+) of (\d+) lines\)`).FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("no line-count header in result page")
	}
	shown, total := m[1], m[2]
	if shown != total {
		t.Fatalf("short log reports %s of %s lines", shown, total)
	}
	if strings.Contains(body, "truncated") {
		t.Fatal("short log carries a truncation marker")
	}

	// A log longer than the excerpt cap must say so explicitly.
	out, _, err := s.Svc.Do(context.Background(), serve.Request{
		Kind: serve.KindRun, Scenario: mustParse(t, jsonScenario, "62"),
	})
	if err != nil {
		t.Fatal(err)
	}
	long := *out
	long.Log = strings.Repeat("line\n", 777)
	rec := httptest.NewRecorder()
	s.renderRun(rec, &long, nil)
	page := rec.Body.String()
	if !strings.Contains(page, "(500 of 777 lines)") {
		t.Fatalf("long log header wrong: %s",
			regexp.MustCompile(`Message log [^<]*`).FindString(page))
	}
	if !strings.Contains(page, "truncated (277 more lines not shown)") {
		t.Fatal("long log missing the explicit truncation marker")
	}
}

// Clamped parameters must surface as notices on the rendered page.
func TestClampNoticeRendered(t *testing.T) {
	s := NewServer("")
	s.MaxDays = 1
	rr := post(t, s.Handler(), url.Values{
		"state": {jsonScenario}, "days": {"10000"},
	})
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	body := rr.Body.String()
	if !strings.Contains(body, "1-day cap") || !strings.Contains(body, "10000") {
		t.Fatal("day clamp not reported on the result page")
	}
}

// Uploads that fail to parse are saved too, tagged _badparse.
func TestBadParseUploadSaved(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(dir)
	rr := post(t, s.Handler(), url.Values{"state": {"<client_state>not xml"}})
	if rr.Code != 400 {
		t.Fatalf("status %d, want 400", rr.Code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("saved = %v (%v), want the failed upload kept", entries, err)
	}
	if !strings.Contains(entries[0].Name(), "_badparse") {
		t.Fatalf("failed upload %q not tagged _badparse", entries[0].Name())
	}
}

func mustParse(t *testing.T, state, seed string) *scenario.Scenario {
	t.Helper()
	scn, err := parseUpload(state)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := strconv.ParseInt(seed, 10, 64); err == nil {
		scn.Seed = v
	}
	return scn
}
