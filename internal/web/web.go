// Package web implements the paper's web interface to BCE (§4.3): a
// page where volunteers paste or upload their BOINC client_state.xml
// (or a JSON scenario), pick policy variants, and get back the figures
// of merit, the message log of scheduling decisions, and an SVG
// timeline — the workflow alpha testers used to hand reproducible
// scheduling problems to the BOINC developers. Uploads are kept on the
// server (paper: "the input files are saved on the server").
package web

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"bce/internal/metrics"
	"bce/internal/population"
	"bce/internal/runner"
	"bce/internal/scenario"
)

// Server is the BCE web frontend. SaveDir, when nonempty, receives a
// copy of every uploaded scenario.
type Server struct {
	SaveDir string
	MaxDays float64 // cap on emulation length (default 30)

	// RunTimeout caps the wall-clock time of one emulation; the
	// request context is honored too, so an abandoned HTTP request
	// stops the emulation instead of burning CPU to completion.
	// 0 means no server-side cap (the request context still applies).
	RunTimeout time.Duration

	mu    sync.Mutex
	runs  int
	saved int
}

// DefaultRunTimeout bounds one web-triggered emulation unless the
// caller overrides RunTimeout.
const DefaultRunTimeout = 2 * time.Minute

// NewServer returns a web frontend saving uploads to saveDir ("" =
// don't save).
func NewServer(saveDir string) *Server {
	return &Server{SaveDir: saveDir, MaxDays: 30, RunTimeout: DefaultRunTimeout}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/run", s.run)
	mux.HandleFunc("/study", s.study)
	return mux
}

var indexTmpl = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>BCE — BOINC client emulator</title>
<style>
 body { font-family: sans-serif; max-width: 56em; margin: 2em auto; }
 textarea { width: 100%; font-family: monospace; }
 label { display: inline-block; margin-right: 1.5em; }
</style></head>
<body>
<h1>BOINC client emulator</h1>
<p>Paste your <code>client_state.xml</code> (or a JSON scenario) below,
pick the scheduling policies, and the emulator will predict the client's
behaviour and report the figures of merit.</p>
<form method="post" action="/run">
<textarea name="state" rows="16" placeholder="&lt;client_state&gt;...&lt;/client_state&gt;  or  {&quot;name&quot;: ...}"></textarea>
<p>
<label>job scheduling:
 <select name="sched">
  <option>JS-LOCAL</option><option>JS-GLOBAL</option><option>JS-WRR</option>
 </select></label>
<label>job fetch:
 <select name="fetch">
  <option>JF-HYSTERESIS</option><option>JF-ORIG</option>
 </select></label>
<label>days: <input name="days" value="10" size="4"></label>
<label>seed: <input name="seed" value="1" size="6"></label>
</p>
<p><input type="submit" value="Emulate"></p>
</form>
<h2>Population study</h2>
<p>Or sample a population of synthetic scenarios and compare the
standard policy combinations over all of them (paper §6.2).</p>
<form method="post" action="/study">
<label>scenarios: <input name="n" value="30" size="4"></label>
<label>days each: <input name="days" value="0.5" size="4"></label>
<label>seed: <input name="seed" value="1" size="6"></label>
<input type="submit" value="Run study">
</form>
</body></html>`))

var resultTmpl = template.Must(template.New("result").Parse(`<!doctype html>
<html><head><title>BCE result — {{.Name}}</title>
<style>
 body { font-family: sans-serif; max-width: 72em; margin: 2em auto; }
 table { border-collapse: collapse; }
 td, th { border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: right; }
 th { background: #eee; }
 pre { background: #f7f7f7; padding: 1em; overflow-x: auto; max-height: 30em; }
</style></head>
<body>
<h1>Emulation of “{{.Name}}”</h1>
<p>{{.NProjects}} project(s), {{.Days}} days, policies {{.Sched}} / {{.Fetch}}.</p>
<h2>Figures of merit</h2>
<table><tr>{{range .MetricNames}}<th>{{.}}</th>{{end}}</tr>
<tr>{{range .MetricValues}}<td>{{printf "%.4f" .}}</td>{{end}}</tr></table>
<p>{{.Jobs}} jobs completed ({{.Missed}} missed their deadline), {{.RPCs}} scheduler RPCs.</p>
<h2>Timeline</h2>
{{.SVG}}
<h2>Message log (first {{.LogLines}} lines)</h2>
<pre>{{.Log}}</pre>
<p><a href="/">run another scenario</a></p>
</body></html>`))

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	indexTmpl.Execute(w, nil) //bce:errok headers are sent; a failed render only means the client hung up
}

// maxLogLines bounds the log excerpt shown on the result page.
const maxLogLines = 500

func (s *Server) run(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	state := strings.TrimSpace(r.FormValue("state"))
	if state == "" {
		http.Error(w, "no scenario supplied", http.StatusBadRequest)
		return
	}
	scn, err := parseUpload(state)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if v, err := strconv.ParseFloat(r.FormValue("days"), 64); err == nil && v > 0 {
		scn.DurationDays = v
	}
	maxDays := s.MaxDays
	if maxDays <= 0 {
		maxDays = 30
	}
	if scn.DurationDays > maxDays || scn.DurationDays <= 0 {
		scn.DurationDays = maxDays
	}
	if v, err := strconv.ParseInt(r.FormValue("seed"), 10, 64); err == nil {
		scn.Seed = v
	}
	if p := r.FormValue("sched"); p != "" {
		scn.Policies.JobSched = p
	}
	if p := r.FormValue("fetch"); p != "" {
		scn.Policies.JobFetch = p
	}

	cfg, err := scn.Config()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.save(state)

	var log bytes.Buffer
	cfg.RecordTimeline = true
	cfg.Log = &log

	// The emulation runs under the request context: if the volunteer
	// closes the tab, the run stops at the next event-batch boundary.
	ctx := r.Context()
	if s.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.RunTimeout)
		defer cancel()
	}
	res, err := runner.Run(ctx, cfg)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// Client is gone; nobody is listening for the response.
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, fmt.Sprintf("emulation exceeded the server's %v limit; reduce days", s.RunTimeout),
				http.StatusGatewayTimeout)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.mu.Lock()
	s.runs++
	s.mu.Unlock()

	logLines := strings.SplitN(log.String(), "\n", maxLogLines+1)
	if len(logLines) > maxLogLines {
		logLines = logLines[:maxLogLines]
	}
	names := metrics.Names()
	data := struct {
		Name         string
		NProjects    int
		Days         float64
		Sched, Fetch string
		MetricNames  []string
		MetricValues []float64
		Jobs, Missed int
		RPCs         int
		SVG          template.HTML
		Log          string
		LogLines     int
	}{
		Name:         scn.Name,
		NProjects:    len(scn.Projects),
		Days:         scn.DurationDays,
		Sched:        orDefault(scn.Policies.JobSched, "JS-LOCAL"),
		Fetch:        orDefault(scn.Policies.JobFetch, "JF-HYSTERESIS"),
		MetricNames:  names[:],
		MetricValues: func() []float64 { v := res.Metrics.Values(); return v[:] }(),
		Jobs:         res.Metrics.CompletedJobs,
		Missed:       res.Metrics.MissedJobs,
		RPCs:         res.Metrics.RPCs,
		SVG:          template.HTML(res.Timeline.SVG(1100, 16)),
		Log:          strings.Join(logLines, "\n"),
		LogLines:     maxLogLines,
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	resultTmpl.Execute(w, data) //bce:errok headers are sent; a failed render only means the client hung up
}

var studyTmpl = template.Must(template.New("study").Parse(`<!doctype html>
<html><head><title>BCE population study</title>
<style>
 body { font-family: sans-serif; max-width: 72em; margin: 2em auto; }
 pre { background: #f7f7f7; padding: 1em; overflow-x: auto; }
</style></head>
<body>
<h1>Population study</h1>
<p>{{.N}} sampled scenarios of {{.Days}} days each, seed {{.Seed}}.</p>
<h2>Population means (95% CI)</h2>
<pre>{{.Table}}</pre>
<h2>share_violation quantiles</h2>
<pre>{{.Quantiles}}</pre>
<h2>Paired wins</h2>
<pre>{{.Wins}}</pre>
<p><a href="/">back</a></p>
</body></html>`))

// Caps on web-triggered studies: each cell is a full emulation, so the
// request must stay a small multiple of a single /run.
const (
	maxStudyScenarios = 200
	maxStudyDays      = 2.0
)

// studyParams parses and clamps the study form fields.
func studyParams(nStr, daysStr, seedStr string) (n int, days float64, seed int64) {
	n, days, seed = 30, 0.5, 1
	if v, err := strconv.Atoi(nStr); err == nil && v > 0 {
		n = v
	}
	if n > maxStudyScenarios {
		n = maxStudyScenarios
	}
	if v, err := strconv.ParseFloat(daysStr, 64); err == nil && v > 0 {
		days = v
	}
	if days > maxStudyDays {
		days = maxStudyDays
	}
	if v, err := strconv.ParseInt(seedStr, 10, 64); err == nil {
		seed = v
	}
	return n, days, seed
}

// study runs a small streaming population study (paper §6.2) under the
// request context and renders the aggregate tables.
func (s *Server) study(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	n, days, seed := studyParams(r.FormValue("n"), r.FormValue("days"), r.FormValue("seed"))

	ctx := r.Context()
	if s.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.RunTimeout)
		defer cancel()
	}
	st, err := population.Run(ctx, population.Params{
		Scenarios:  n,
		Seed:       seed,
		Population: scenario.PopulationParams{DurationDays: days},
	})
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// Client is gone; nobody is listening for the response.
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, fmt.Sprintf("study exceeded the server's %v limit; reduce scenarios or days", s.RunTimeout),
				http.StatusGatewayTimeout)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.mu.Lock()
	s.runs++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	//bce:errok headers are sent; a failed render only means the client hung up
	studyTmpl.Execute(w, struct {
		N                      int
		Days                   float64
		Seed                   int64
		Table, Quantiles, Wins string
	}{n, days, seed, st.Table(), st.QuantileTable(2), st.WinsTable(2) + "\n" + st.WinsTable(4)})
}

// parseUpload accepts either a client_state.xml or a JSON scenario.
func parseUpload(state string) (*scenario.Scenario, error) {
	if strings.HasPrefix(state, "{") {
		return scenario.Load(strings.NewReader(state))
	}
	if strings.Contains(state, "<client_state") {
		return scenario.ImportClientState(strings.NewReader(state))
	}
	return nil, fmt.Errorf("input is neither a JSON scenario nor a client_state.xml")
}

// save writes the upload to SaveDir for later debugging (the paper's
// "input files are saved on the server").
func (s *Server) save(state string) {
	if s.SaveDir == "" {
		return
	}
	s.mu.Lock()
	s.saved++
	n := s.saved
	s.mu.Unlock()
	//bce:wallclock uploaded state files are stamped with real receipt time
	name := fmt.Sprintf("upload_%s_%04d.txt", time.Now().UTC().Format("20060102T150405"), n)
	//bce:errok both drops below: saving uploads is best-effort debugging aid, never worth failing the request
	_ = os.MkdirAll(s.SaveDir, 0o755)
	_ = os.WriteFile(filepath.Join(s.SaveDir, name), []byte(state), 0o644) //bce:errok see above
}

// Runs reports how many emulations the server has performed.
func (s *Server) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}
