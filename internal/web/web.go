// Package web implements the paper's web interface to BCE (§4.3): a
// page where volunteers paste or upload their BOINC client_state.xml
// (or a JSON scenario), pick policy variants, and get back the figures
// of merit, the message log of scheduling decisions, and an SVG
// timeline — the workflow alpha testers used to hand reproducible
// scheduling problems to the BOINC developers. Uploads are kept on the
// server (paper: "the input files are saved on the server").
//
// Requests flow through the async job-submission service
// (internal/serve): tiny submissions keep the classic one-roundtrip UX
// on a cache-aware synchronous fast-path, larger ones get a ticket and
// a /jobs/{id} progress page (poll, SSE, result fetch), and when the
// bounded queue is full the server sheds load with 429 + Retry-After
// instead of melting.
package web

import (
	"context"
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"bce/internal/metrics"
	"bce/internal/population"
	"bce/internal/scenario"
	"bce/internal/serve"
)

// Server is the BCE web frontend. SaveDir, when nonempty, receives a
// copy of every uploaded scenario — including ones that fail to parse,
// which are exactly the uploads worth debugging.
type Server struct {
	SaveDir string
	MaxDays float64 // cap on emulation length (default 30)

	// RunTimeout caps the wall-clock time of one emulation; the
	// request context is honored too, so an abandoned HTTP request
	// stops the emulation instead of burning CPU to completion.
	// 0 means no server-side cap (the request context still applies).
	RunTimeout time.Duration

	// SyncDays is the synchronous fast-path threshold: /run
	// submissions at or under this many emulated days (and /study
	// submissions under SyncScenarioDays scenario-days) complete in
	// the request, larger ones are enqueued — provided Start has
	// launched the worker pool. Default 2.
	SyncDays float64

	// Svc is the async job service backing every submission.
	Svc *serve.Service

	mu    sync.Mutex
	saved int //bce:guardedby mu
}

// DefaultRunTimeout bounds one web-triggered emulation unless the
// caller overrides RunTimeout.
const DefaultRunTimeout = 2 * time.Minute

// SyncScenarioDays is the /study fast-path budget: studies of at most
// this many scenario-days (scenarios × days each) run synchronously.
const SyncScenarioDays = 5.0

// NewServer returns a web frontend saving uploads to saveDir ("" =
// don't save). The async worker pool starts with Start; without it
// every request uses the synchronous fast-path.
func NewServer(saveDir string) *Server {
	return &Server{
		SaveDir:    saveDir,
		MaxDays:    30,
		RunTimeout: DefaultRunTimeout,
		SyncDays:   2,
		Svc:        serve.New(serve.Config{}),
	}
}

// Start launches the async worker pool under ctx; cancelling ctx stops
// it. Until Start is called, /run and /study fall back to synchronous
// handling and the async API responds 503.
func (s *Server) Start(ctx context.Context) {
	s.Svc.RunTimeout = s.RunTimeout
	s.Svc.Start(ctx)
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/run", s.run)
	mux.HandleFunc("/study", s.study)
	mux.HandleFunc("/jobs/", s.jobPages)
	mux.HandleFunc("/api/run", s.apiRun)
	mux.HandleFunc("/api/study", s.apiStudy)
	mux.HandleFunc("/api/jobs/", s.apiJobs)
	return mux
}

var indexTmpl = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>BCE — BOINC client emulator</title>
<style>
 body { font-family: sans-serif; max-width: 56em; margin: 2em auto; }
 textarea { width: 100%; font-family: monospace; }
 label { display: inline-block; margin-right: 1.5em; }
</style></head>
<body>
<h1>BOINC client emulator</h1>
<p>Paste your <code>client_state.xml</code> (or a JSON scenario) below,
pick the scheduling policies, and the emulator will predict the client's
behaviour and report the figures of merit. Small requests come back
immediately; long emulations get a job ticket and a progress page.</p>
<form method="post" action="/run">
<textarea name="state" rows="16" placeholder="&lt;client_state&gt;...&lt;/client_state&gt;  or  {&quot;name&quot;: ...}"></textarea>
<p>
<label>job scheduling:
 <select name="sched">
  <option>JS-LOCAL</option><option>JS-GLOBAL</option><option>JS-WRR</option>
 </select></label>
<label>job fetch:
 <select name="fetch">
  <option>JF-HYSTERESIS</option><option>JF-ORIG</option>
 </select></label>
<label>days: <input name="days" value="10" size="4"></label>
<label>seed: <input name="seed" value="1" size="6"></label>
</p>
<p><input type="submit" value="Emulate"></p>
</form>
<h2>Population study</h2>
<p>Or sample a population of synthetic scenarios and compare the
standard policy combinations over all of them (paper §6.2).</p>
<form method="post" action="/study">
<label>scenarios: <input name="n" value="30" size="4"></label>
<label>days each: <input name="days" value="0.5" size="4"></label>
<label>seed: <input name="seed" value="1" size="6"></label>
<input type="submit" value="Run study">
</form>
</body></html>`))

var resultTmpl = template.Must(template.New("result").Parse(`<!doctype html>
<html><head><title>BCE result — {{.Name}}</title>
<style>
 body { font-family: sans-serif; max-width: 72em; margin: 2em auto; }
 table { border-collapse: collapse; }
 td, th { border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: right; }
 th { background: #eee; }
 pre { background: #f7f7f7; padding: 1em; overflow-x: auto; max-height: 30em; }
 .notice { background: #fff5d6; border: 1px solid #e0c050; padding: 0.5em 1em; }
</style></head>
<body>
<h1>Emulation of “{{.Name}}”</h1>
{{range .Notices}}<p class="notice">⚠ {{.}}</p>
{{end}}<p>{{.NProjects}} project(s), {{.Days}} days, policies {{.Sched}} / {{.Fetch}}.</p>
<h2>Figures of merit</h2>
<table><tr>{{range .MetricNames}}<th>{{.}}</th>{{end}}</tr>
<tr>{{range .MetricValues}}<td>{{printf "%.4f" .}}</td>{{end}}</tr></table>
<p>{{.Jobs}} jobs completed ({{.Missed}} missed their deadline), {{.RPCs}} scheduler RPCs.</p>
<h2>Timeline</h2>
{{.SVG}}
<h2>Message log ({{.LogShown}} of {{.LogTotal}} lines)</h2>
<pre>{{.Log}}</pre>
<p><a href="/">run another scenario</a></p>
</body></html>`))

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	indexTmpl.Execute(w, nil) //bce:errok headers are sent; a failed render only means the client hung up
}

// maxLogLines bounds the log excerpt shown on the result page.
const maxLogLines = 500

func (s *Server) run(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	state := strings.TrimSpace(r.FormValue("state"))
	if state == "" {
		http.Error(w, "no scenario supplied", http.StatusBadRequest)
		return
	}
	scn, err := parseUpload(state)
	// The stated purpose of saving uploads is debugging volunteer
	// inputs, and malformed uploads are exactly the ones worth
	// keeping — so save before rejecting, tagging parse failures.
	s.save(state, err == nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	var notices []string
	requestedDays := scn.DurationDays
	if dstr := r.FormValue("days"); dstr != "" {
		if v, perr := strconv.ParseFloat(dstr, 64); perr == nil && v > 0 {
			scn.DurationDays = v
			requestedDays = v
		} else {
			notices = append(notices, fmt.Sprintf("could not use requested days %q; kept the scenario's %g", dstr, scn.DurationDays))
		}
	}
	maxDays := s.MaxDays
	if maxDays <= 0 {
		maxDays = 30
	}
	switch {
	case scn.DurationDays > maxDays:
		scn.DurationDays = maxDays
		notices = append(notices, fmt.Sprintf("requested %g days exceeds this server's %g-day cap; emulated %g days instead", requestedDays, maxDays, maxDays))
	case scn.DurationDays <= 0:
		scn.DurationDays = maxDays
		notices = append(notices, fmt.Sprintf("requested duration %g is not positive; emulated the %g-day cap instead", requestedDays, maxDays))
	}
	if v, perr := strconv.ParseInt(r.FormValue("seed"), 10, 64); perr == nil {
		scn.Seed = v
	}
	if p := r.FormValue("sched"); p != "" {
		scn.Policies.JobSched = p
	}
	if p := r.FormValue("fetch"); p != "" {
		scn.Policies.JobFetch = p
	}

	req := serve.Request{Kind: serve.KindRun, Scenario: scn}
	if err := req.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Large request + running worker pool: enqueue and hand back a
	// ticket page instead of burning this handler goroutine.
	if s.Svc.Started() && scn.DurationDays > s.syncDays() {
		view, err := s.Svc.Submit(req)
		if err != nil {
			s.submitError(w, err)
			return
		}
		http.Redirect(w, r, "/jobs/"+view.ID, http.StatusSeeOther)
		return
	}

	// Synchronous fast-path: cache-aware, bounded, single roundtrip.
	ctx := r.Context()
	if s.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.RunTimeout)
		defer cancel()
	}
	out, cacheHit, err := s.Svc.Do(ctx, req)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// Client is gone; nobody is listening for the response.
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, fmt.Sprintf("emulation exceeded the server's %v limit; reduce days", s.RunTimeout),
				http.StatusGatewayTimeout)
		case errors.Is(err, serve.ErrBusy):
			s.shed(w)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	if cacheHit {
		notices = append(notices, "served from the result cache: an identical scenario was emulated earlier")
	}
	s.renderRun(w, out, notices)
}

// renderRun writes the result page for a finished run outcome.
func (s *Server) renderRun(w http.ResponseWriter, out *serve.Outcome, notices []string) {
	scn := out.Scenario
	res := out.Result

	lines := strings.Split(out.Log, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1] // the final newline is not an extra log line
	}
	total := len(lines)
	shown := total
	if shown > maxLogLines {
		shown = maxLogLines
	}
	logText := strings.Join(lines[:shown], "\n")
	if shown < total {
		logText += fmt.Sprintf("\n… truncated (%d more lines not shown)", total-shown)
	}
	if out.LogCap {
		logText += "\n… log capped on the server; line counts are lower bounds"
	}

	names := metrics.Names()
	data := struct {
		Name         string
		NProjects    int
		Days         float64
		Sched, Fetch string
		MetricNames  []string
		MetricValues []float64
		Jobs, Missed int
		RPCs         int
		SVG          template.HTML
		Log          string
		LogShown     int
		LogTotal     int
		Notices      []string
	}{
		Name:         scn.Name,
		NProjects:    len(scn.Projects),
		Days:         scn.DurationDays,
		Sched:        orDefault(scn.Policies.JobSched, "JS-LOCAL"),
		Fetch:        orDefault(scn.Policies.JobFetch, "JF-HYSTERESIS"),
		MetricNames:  names[:],
		MetricValues: func() []float64 { v := res.Metrics.Values(); return v[:] }(),
		Jobs:         res.Metrics.CompletedJobs,
		Missed:       res.Metrics.MissedJobs,
		RPCs:         res.Metrics.RPCs,
		SVG:          template.HTML(res.Timeline.SVG(1100, 16)),
		Log:          logText,
		LogShown:     shown,
		LogTotal:     total,
		Notices:      notices,
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	resultTmpl.Execute(w, data) //bce:errok headers are sent; a failed render only means the client hung up
}

var studyTmpl = template.Must(template.New("study").Parse(`<!doctype html>
<html><head><title>BCE population study</title>
<style>
 body { font-family: sans-serif; max-width: 72em; margin: 2em auto; }
 pre { background: #f7f7f7; padding: 1em; overflow-x: auto; }
 .notice { background: #fff5d6; border: 1px solid #e0c050; padding: 0.5em 1em; }
</style></head>
<body>
<h1>Population study</h1>
{{range .Notices}}<p class="notice">⚠ {{.}}</p>
{{end}}<p>{{.N}} sampled scenarios of {{.Days}} days each, seed {{.Seed}}.</p>
<h2>Population means (95% CI)</h2>
<pre>{{.Table}}</pre>
<h2>share_violation quantiles</h2>
<pre>{{.Quantiles}}</pre>
<h2>Paired wins</h2>
<pre>{{.Wins}}</pre>
<p><a href="/">back</a></p>
</body></html>`))

// Caps on web-triggered studies: each cell is a full emulation, so the
// request must stay a small multiple of a single /run.
const (
	maxStudyScenarios = 200
	maxStudyDays      = 2.0
)

// studyParams parses and clamps the study form fields, reporting every
// clamp as a user-visible notice — the page must not silently present
// results for a smaller study than the one requested.
func studyParams(nStr, daysStr, seedStr string) (n int, days float64, seed int64, notices []string) {
	n, days, seed = 30, 0.5, 1
	if v, err := strconv.Atoi(nStr); err == nil && v > 0 {
		n = v
	}
	if n > maxStudyScenarios {
		notices = append(notices, fmt.Sprintf("requested %d scenarios exceeds this server's cap; ran %d", n, maxStudyScenarios))
		n = maxStudyScenarios
	}
	if v, err := strconv.ParseFloat(daysStr, 64); err == nil && v > 0 {
		days = v
	}
	if days > maxStudyDays {
		notices = append(notices, fmt.Sprintf("requested %g days per scenario exceeds this server's cap; ran %g", days, maxStudyDays))
		days = maxStudyDays
	}
	if v, err := strconv.ParseInt(seedStr, 10, 64); err == nil {
		seed = v
	}
	return n, days, seed, notices
}

// study runs a small streaming population study (paper §6.2) — through
// the job queue when it is large and the pool is running, else
// synchronously under the request context.
func (s *Server) study(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	n, days, seed, notices := studyParams(r.FormValue("n"), r.FormValue("days"), r.FormValue("seed"))
	req := serve.Request{Kind: serve.KindStudy, StudyScenarios: n, StudyDays: days, StudySeed: seed}

	if s.Svc.Started() && float64(n)*days > SyncScenarioDays {
		view, err := s.Svc.Submit(req)
		if err != nil {
			s.submitError(w, err)
			return
		}
		http.Redirect(w, r, "/jobs/"+view.ID, http.StatusSeeOther)
		return
	}

	ctx := r.Context()
	if s.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.RunTimeout)
		defer cancel()
	}
	out, cacheHit, err := s.Svc.Do(ctx, req)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// Client is gone; nobody is listening for the response.
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, fmt.Sprintf("study exceeded the server's %v limit; reduce scenarios or days", s.RunTimeout),
				http.StatusGatewayTimeout)
		case errors.Is(err, serve.ErrBusy):
			s.shed(w)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	if cacheHit {
		notices = append(notices, "served from the result cache: an identical study ran earlier")
	}
	s.renderStudy(w, out.Study, notices)
}

// renderStudy writes the study page for a finished study outcome.
func (s *Server) renderStudy(w http.ResponseWriter, st *population.Study, notices []string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	//bce:errok headers are sent; a failed render only means the client hung up
	studyTmpl.Execute(w, struct {
		N                      int
		Days                   float64
		Seed                   int64
		Table, Quantiles, Wins string
		Notices                []string
	}{st.Target, st.Population.DurationDays, st.Seed,
		st.Table(), st.QuantileTable(2), st.WinsTable(2) + "\n" + st.WinsTable(4), notices})
}

// syncDays returns the effective fast-path threshold.
func (s *Server) syncDays() float64 {
	if s.SyncDays > 0 {
		return s.SyncDays
	}
	return 2
}

// shed writes the load-shedding response: 429 plus the service's
// queue-drain estimate as Retry-After.
func (s *Server) shed(w http.ResponseWriter) {
	ra := s.Svc.RetryAfter()
	w.Header().Set("Retry-After", strconv.Itoa(int(ra.Seconds())))
	http.Error(w, fmt.Sprintf("server is at capacity; retry in ~%v", ra), http.StatusTooManyRequests)
}

// submitError maps Submit errors to responses.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		s.shed(w)
	case errors.Is(err, serve.ErrNotStarted):
		http.Error(w, "job queue not running", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseUpload accepts either a client_state.xml or a JSON scenario.
func parseUpload(state string) (*scenario.Scenario, error) {
	if strings.HasPrefix(state, "{") {
		return scenario.Load(strings.NewReader(state))
	}
	if strings.Contains(state, "<client_state") {
		return scenario.ImportClientState(strings.NewReader(state))
	}
	return nil, fmt.Errorf("input is neither a JSON scenario nor a client_state.xml")
}

// save writes the upload to SaveDir for later debugging (the paper's
// "input files are saved on the server"). Uploads that failed to parse
// are saved too — tagged, because volunteer-submitted inputs the
// importer chokes on are the most valuable ones to keep.
func (s *Server) save(state string, parsedOK bool) {
	if s.SaveDir == "" {
		return
	}
	s.mu.Lock()
	s.saved++
	n := s.saved
	s.mu.Unlock()
	tag := ""
	if !parsedOK {
		tag = "_badparse"
	}
	//bce:wallclock uploaded state files are stamped with real receipt time
	name := fmt.Sprintf("upload_%s_%04d%s.txt", time.Now().UTC().Format("20060102T150405"), n, tag)
	//bce:errok both drops below: saving uploads is best-effort debugging aid, never worth failing the request
	_ = os.MkdirAll(s.SaveDir, 0o755)
	_ = os.WriteFile(filepath.Join(s.SaveDir, name), []byte(state), 0o644) //bce:errok see above
}

// Runs reports how many emulations/studies the server has actually
// executed (cache hits excluded).
func (s *Server) Runs() int {
	return s.Svc.Stats().Runs
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}
