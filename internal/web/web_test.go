package web

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const jsonScenario = `{
  "name": "web-test",
  "duration_days": 0.5,
  "seed": 1,
  "host": {"ncpu": 1, "cpu_gflops": 1, "min_queue_hours": 0.5, "max_queue_hours": 1},
  "projects": [
    {"name": "p", "share": 100, "apps": [
      {"name": "a", "ncpus": 1, "mean_secs": 600, "latency_secs": 86400}
    ]}
  ],
  "policies": {}
}`

const xmlState = `<client_state>
  <host_info><p_ncpus>1</p_ncpus><p_fpops>1e9</p_fpops><m_nbytes>4e9</m_nbytes></host_info>
  <project><master_url>http://x/</master_url><project_name>X</project_name><resource_share>100</resource_share></project>
</client_state>`

func post(t *testing.T, h http.Handler, form url.Values) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/run", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestIndexPage(t *testing.T) {
	h := NewServer("").Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != 200 {
		t.Fatalf("index status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"client_state", "JS-LOCAL", "JF-HYSTERESIS", "<form"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q", want)
		}
	}
}

func TestNotFound(t *testing.T) {
	h := NewServer("").Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/nope", nil))
	if rr.Code != 404 {
		t.Fatalf("status %d, want 404", rr.Code)
	}
}

func TestRunJSONScenario(t *testing.T) {
	s := NewServer("")
	rr := post(t, s.Handler(), url.Values{
		"state": {jsonScenario},
		"sched": {"JS-LOCAL"},
		"fetch": {"JF-HYSTERESIS"},
		"days":  {"0.25"},
		"seed":  {"7"},
	})
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	body := rr.Body.String()
	for _, want := range []string{"Figures of merit", "web-test", "<svg", "jobs completed", "start "} {
		if !strings.Contains(body, want) {
			t.Fatalf("result missing %q", want)
		}
	}
	if s.Runs() != 1 {
		t.Fatalf("Runs() = %d, want 1", s.Runs())
	}
}

func TestRunXMLState(t *testing.T) {
	s := NewServer("")
	rr := post(t, s.Handler(), url.Values{
		"state": {xmlState},
		"days":  {"0.25"},
	})
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "imported") {
		t.Fatal("imported scenario name missing")
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	s := NewServer("")
	rr := post(t, s.Handler(), url.Values{"state": {"hello"}})
	if rr.Code != 400 {
		t.Fatalf("garbage got status %d, want 400", rr.Code)
	}
	rr = post(t, s.Handler(), url.Values{})
	if rr.Code != 400 {
		t.Fatalf("empty got status %d, want 400", rr.Code)
	}
}

func TestRunRejectsGET(t *testing.T) {
	s := NewServer("")
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/run", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run status %d", rr.Code)
	}
}

func TestDurationCapped(t *testing.T) {
	s := NewServer("")
	s.MaxDays = 1
	rr := post(t, s.Handler(), url.Values{
		"state": {jsonScenario},
		"days":  {"10000"},
	})
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), " 1 days") {
		t.Fatal("duration not capped to MaxDays")
	}
}

func TestUploadsSaved(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(dir)
	rr := post(t, s.Handler(), url.Values{
		"state": {jsonScenario},
		"days":  {"0.25"},
	})
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("saved uploads = %v (%v), want 1 file", entries, err)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil || !strings.Contains(string(data), "web-test") {
		t.Fatal("saved upload content wrong")
	}
}

// An abandoned request (canceled context) must stop the emulation and
// write no response body.
func TestRunAbandonedRequest(t *testing.T) {
	srv := NewServer("")
	h := srv.Handler()
	form := url.Values{"state": {jsonScenario}, "days": {"30"}}
	req := httptest.NewRequest("POST", "/run", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // the volunteer closed the tab before the run began
	rr := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rr, req.WithContext(ctx))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler kept emulating after the request was abandoned")
	}
	if rr.Body.Len() != 0 {
		t.Fatalf("abandoned request wrote a response: %q", rr.Body.String())
	}
	if srv.Runs() != 0 {
		t.Fatal("abandoned request counted as a completed run")
	}
}

func TestStudyEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation-heavy")
	}
	s := NewServer("")
	req := httptest.NewRequest("POST", "/study", strings.NewReader(url.Values{
		"n":    {"3"},
		"days": {"0.2"},
		"seed": {"5"},
	}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	body := rr.Body.String()
	for _, want := range []string{"3 sampled scenarios", "Population means", "JS-LOCAL/JF-ORIG", "paired wins", "quantiles"} {
		if !strings.Contains(body, want) {
			t.Fatalf("study page missing %q:\n%s", want, body)
		}
	}
	if s.Runs() != 1 {
		t.Fatalf("Runs() = %d, want 1", s.Runs())
	}
}

func TestStudyRejectsGET(t *testing.T) {
	rr := httptest.NewRecorder()
	NewServer("").Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/study", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /study status %d", rr.Code)
	}
}

// The scenario and duration caps bound a web-triggered study even when
// the form asks for more.
func TestStudyCapsInputs(t *testing.T) {
	n, days, seed, notices := studyParams("999999", "50", "9")
	if n != maxStudyScenarios || days != maxStudyDays || seed != 9 {
		t.Fatalf("params = %d/%g/%d, want clamped to %d/%g/9", n, days, seed, maxStudyScenarios, maxStudyDays)
	}
	// Clamping must be reported, not silent (one notice per clamp).
	if len(notices) != 2 {
		t.Fatalf("notices = %q, want one per clamped field", notices)
	}
	n, days, seed, notices = studyParams("", "-3", "junk")
	if n != 30 || days != 0.5 || seed != 1 {
		t.Fatalf("defaults = %d/%g/%d, want 30/0.5/1", n, days, seed)
	}
	if len(notices) != 0 {
		t.Fatalf("defaults produced notices %q", notices)
	}
}

// A run that exceeds the server-side wall-clock cap gets a 504.
func TestRunTimeout(t *testing.T) {
	srv := NewServer("")
	srv.MaxDays = 100000
	srv.RunTimeout = time.Millisecond
	rr := post(t, srv.Handler(), url.Values{"state": {jsonScenario}, "days": {"100000"}})
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "limit") {
		t.Fatalf("timeout message missing: %q", rr.Body.String())
	}
}
