// Package client is the emulated BOINC client: the paper's BCE core.
// It drives the real policy implementations (round-robin simulation,
// debt/REC accounting, job scheduling, work fetch) inside a discrete-
// event simulation of everything else — job execution, host
// availability, network delays and project servers — and reports the
// figures of merit.
package client

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"bce/internal/account"
	"bce/internal/fetch"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/metrics"
	"bce/internal/project"
	"bce/internal/rrsim"
	"bce/internal/sched"
	"bce/internal/sim"
	"bce/internal/stats"
	"bce/internal/timeline"
	"bce/internal/transfer"
)

// Config assembles one emulation run: a scenario (host + projects), the
// policy variants under test, and emulator knobs.
type Config struct {
	Host     *host.Host
	Projects []project.Spec

	JobSched sched.Policy
	JobFetch fetch.PolicyKind

	// RECHalfLife is the global-accounting averaging half-life
	// (paper §5.4's parameter A); 0 uses the BOINC default.
	RECHalfLife float64

	// DeadlineMargin widens the endangered classification (seconds).
	// The zero value is a sentinel: it selects DefaultDeadlineMargin,
	// so zero-valued Configs keep the safe default. Any negative value
	// requests a margin of exactly zero (the paper's bare policy); use
	// ZeroDeadlineMargin to spell that readably.
	DeadlineMargin float64

	// RPCDelay is the simulated latency of one scheduler RPC (default 5 s).
	RPCDelay float64

	// ReportMaxDelay bounds how long a completed job waits before the
	// client makes an RPC just to report it (default 3600 s).
	ReportMaxDelay float64

	Duration float64 // emulation length in seconds
	Seed     int64

	// Log receives the emulator's message log (scheduling decisions);
	// nil discards it.
	Log io.Writer

	// RecordTimeline enables per-task execution segments.
	RecordTimeline bool

	// MonotonyWindow overrides the monotony metric window (seconds).
	MonotonyWindow float64

	// TransferPolicy orders file transfers when the host has a finite
	// link speed (file-transfer extension).
	TransferPolicy transfer.Policy
}

const (
	// DefaultDeadlineMargin is the endangered-classification safety
	// margin (seconds) applied when Config.DeadlineMargin is zero: two
	// scheduling periods, covering the reaction delay between
	// classification and enforcement plus one checkpoint period of
	// potentially lost work.
	DefaultDeadlineMargin = 120

	// ZeroDeadlineMargin is the Config.DeadlineMargin value requesting
	// a margin of exactly zero seconds (the paper's bare policy); the
	// literal zero is taken by the backward-compatible default
	// sentinel. Any negative value behaves the same.
	ZeroDeadlineMargin = -1
)

func (c Config) withDefaults() Config {
	if c.RPCDelay <= 0 {
		c.RPCDelay = 5
	}
	if c.ReportMaxDelay <= 0 {
		c.ReportMaxDelay = 3600
	}
	if c.DeadlineMargin == 0 {
		c.DeadlineMargin = DefaultDeadlineMargin
	} else if c.DeadlineMargin < 0 {
		c.DeadlineMargin = 0
	}
	if c.Duration <= 0 {
		c.Duration = 10 * 86400 // the paper's default period
	}
	return c
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Host == nil {
		return fmt.Errorf("client: no host")
	}
	if err := c.Host.Hardware.Validate(); err != nil {
		return err
	}
	if len(c.Projects) == 0 {
		return fmt.Errorf("client: no projects")
	}
	for _, p := range c.Projects {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of one emulation run.
type Result struct {
	Metrics  metrics.Metrics
	Timeline *timeline.Recorder // nil unless requested
	Events   uint64             // simulator events dispatched

	// Per-project dispatch counters, from the server substrate.
	Dispatched []int
	Refused    []int
}

const (
	rpcRetryMin    = 60       // min interval between RPCs to one project
	rpcBackoffMax  = 4 * 3600 // cap on exponential backoff
	maxQueuedTasks = 20000    // runaway-fetch guard
)

// Client is one emulation in progress.
type Client struct {
	cfg     Config
	sim     *sim.Simulator
	hw      *host.Hardware
	prefs   host.Preferences
	servers []*project.Server
	shares  []float64
	acct    account.Accounting
	rec     *metrics.Recorder
	tl      *timeline.Recorder
	rng     *stats.RNG

	// tasks is the queue. The running set is not tracked separately:
	// t.State == job.Running is authoritative (Start/Preempt/Advance
	// keep it exact), which spares the hot path a map.
	tasks []*job.Task

	// Per-tick scratch and persistent closures: a tick is the hot path,
	// so everything it needs lives on the Client instead of being
	// allocated per pass.
	enforcer         sched.Enforcer
	tickFn           func()
	prioFn           func(p int, t host.ProcType) float64 // c.acct.PrioSched, bound once
	runScratch       []*job.Task
	completedScratch []*job.Task

	lastAdvance float64

	computeOn bool
	gpuOn     bool
	netOn     bool
	logOn     bool    // cfg.Log != nil; hot paths check it before logf so discarded logs cost no argument boxing
	availMark float64 // start of current available span

	tickTimer *sim.Timer

	rpcInFlight   bool
	backoffUntil  []float64
	backoffCount  []int
	pendingReport [][]*job.Task
	reportDue     []*sim.Timer
	views         []fetch.ProjectView // static fields filled in New; floats updated per decision

	xfer *transfer.Manager

	onFrac [host.NumProcTypes]float64

	// Round-robin simulation hot-path state: a reusable simulator, the
	// scratch job slices it reads, and a fingerprint cache that skips
	// the simulation entirely when the workload is provably unchanged.
	rr          *rrsim.Simulator
	rrRes       rrsim.Result // reused output buffer; rrCache.res aliases it
	rrJobs      []rrsim.Job
	rrJobPtrs   []*rrsim.Job
	rrCache     rrCache
	rrCacheOff  bool   // tests: force a fresh simulation every tick
	rrCacheHits uint64 // tests/observability
}

// rrCache holds the last simulation's validity window. The input
// fingerprint needs no separate storage: the job array itself is the
// key (RunInto writes only the output fields), so a hit needs (a) every
// rebuilt input field equal to the previous run's and (b) now <=
// validUntil: endangered classification depends on absolute time, so
// the cached result is only reused while no job's slack can have run
// out — see rrsimValidUntil.
type rrCache struct {
	valid      bool
	validUntil float64
	res        *rrsim.Result
}

// New builds a client for the config.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:       cfg,
		sim:       sim.New(),
		hw:        &cfg.Host.Hardware,
		prefs:     cfg.Host.Prefs.Defaults(),
		rng:       stats.NewRNG(cfg.Seed),
		computeOn: true,
		gpuOn:     true,
		netOn:     true,
		logOn:     cfg.Log != nil,
		rr:        rrsim.New(),
	}
	c.shares = make([]float64, len(cfg.Projects))
	for i, p := range cfg.Projects {
		c.shares[i] = p.Share
		srv, err := project.NewServer(p, i, c.rng.Fork("server/"+p.Name))
		if err != nil {
			return nil, err
		}
		c.servers = append(c.servers, srv)
	}
	switch cfg.JobSched {
	case sched.JSGlobal, sched.JSLLF:
		c.acct = account.NewGlobalREC(c.shares, cfg.RECHalfLife)
	default:
		c.acct = account.NewLocalDebt(c.shares, c.hw)
	}
	c.prioFn = c.acct.PrioSched
	c.rec = metrics.New(c.hw, c.shares, 0)
	if cfg.MonotonyWindow > 0 {
		c.rec.SetWindow(cfg.MonotonyWindow)
	}
	if cfg.RecordTimeline {
		c.tl = timeline.NewRecorder()
	}
	c.xfer = transfer.New(c.sim, c.hw.DownloadBps, c.hw.UploadBps, cfg.TransferPolicy)
	c.backoffUntil = make([]float64, len(cfg.Projects))
	c.backoffCount = make([]int, len(cfg.Projects))
	c.pendingReport = make([][]*job.Task, len(cfg.Projects))
	c.reportDue = make([]*sim.Timer, len(cfg.Projects))
	c.views = make([]fetch.ProjectView, len(c.servers))
	for i, s := range c.servers {
		c.views[i] = fetch.ProjectView{Share: s.Spec.Share, Supplies: s}
	}
	c.tickFn = func() {
		t := c.tickTimer
		c.tickTimer = nil // this tick has fired; it no longer blocks rescheduling
		c.sim.Recycle(t)
		c.tick()
	}

	// The client's long-run availability estimate, used by the
	// round-robin simulation and sent to servers for deadline checks.
	computeFrac := cfg.Host.Avail.Frac(host.Compute)
	gpuFrac := computeFrac * cfg.Host.Avail.Frac(host.GPUCompute)
	c.onFrac[host.CPU] = computeFrac
	c.onFrac[host.NvidiaGPU] = gpuFrac
	c.onFrac[host.AtiGPU] = gpuFrac
	return c, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, "[%10.1f] %s\n", c.sim.Now(), fmt.Sprintf(format, args...))
	}
}

// Run executes the emulation and returns the figures of merit.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func (c *Client) Run() (*Result, error) { return c.RunContext(context.Background()) }

// Context checks in RunContext happen between batches of simulator
// events. Event cost varies over four orders of magnitude with the
// scenario — a job-heavy host can spend ~0.5 s of CPU in a single
// rr_sim pass — so a fixed batch size cannot both stay off the hot
// path and keep cancellation prompt. The batch therefore adapts to
// wall-clock: it doubles while batches finish quickly and shrinks
// when they run long, keeping check latency near ctxCheckTarget.
const (
	ctxCheckTarget    = 100 * time.Millisecond
	minCtxCheckEvents = 16
	maxCtxCheckEvents = 65536
)

// RunContext executes the emulation, honoring ctx between batches of
// simulator events: when ctx is canceled or times out, the run stops
// promptly (within roughly ctxCheckTarget, or one event if a single
// event runs longer) and returns an error wrapping the context's
// cause (so errors.Is(err, context.Canceled) works). A finished run
// is never invalidated retroactively — cancellation only affects runs
// still in progress. The adaptive batching controls only *when* ctx
// is observed, never the event order, so results stay bit-for-bit
// deterministic.
func (c *Client) RunContext(ctx context.Context) (*Result, error) {
	c.startAvailability()
	c.availMark = 0
	c.scheduleTick(0)
	batch := minCtxCheckEvents
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("client: emulation stopped at t=%.0f s after %d events: %w",
				c.sim.Now(), c.sim.Fired(), context.Cause(ctx))
		}
		start := time.Now() //bce:wallclock adaptive ctx-check batching measures host time, never sim state
		if c.sim.RunUntilN(c.cfg.Duration, batch) < batch {
			break
		}
		switch elapsed := time.Since(start); { //bce:wallclock adaptive ctx-check batching measures host time, never sim state
		case elapsed < ctxCheckTarget/4 && batch < maxCtxCheckEvents:
			batch *= 2
		case elapsed > ctxCheckTarget && batch > minCtxCheckEvents:
			batch /= 2
		}
	}

	// Final bookkeeping at the end time.
	c.advance()
	if c.computeOn {
		c.rec.OnAvailable(c.availMark, c.sim.Now())
	}
	if c.tl != nil {
		c.tl.CloseAll(c.sim.Now())
	}
	res := &Result{
		Metrics: c.rec.Report(),
		Events:  c.sim.Fired(),
	}
	res.Timeline = c.tl
	for _, s := range c.servers {
		res.Dispatched = append(res.Dispatched, s.Dispatched)
		res.Refused = append(res.Refused, s.Refused)
	}
	return res, nil
}

// startAvailability schedules the on/off transition events for the
// three availability channels (random processes or trace replays).
func (c *Client) startAvailability() {
	for ch := host.Channel(0); ch < host.NumChannels; ch++ {
		src := c.cfg.Host.Avail.Source(ch, c.rng.Fork("avail/"+ch.String()))
		c.startChannel(ch, src)
	}
}

func (c *Client) startChannel(ch host.Channel, src host.PeriodSource) {
	if src == nil {
		return // always on
	}
	// Each event enters the next period: flip the channel to the
	// period's state and schedule the following transition at its end.
	var next func()
	next = func() {
		d, on := src.Next()
		c.setChannel(ch, on)
		if d <= 0 && on {
			return // available forever
		}
		c.sim.Post(d, next)
	}
	// First period: the client starts in the "on" state; a trace may
	// begin with an off period, which takes effect immediately.
	d, on := src.Next()
	if d <= 0 && on {
		return
	}
	if !on {
		c.setChannel(ch, false)
	}
	c.sim.Post(d, next)
}

func (c *Client) setChannel(ch host.Channel, on bool) {
	switch ch {
	case host.Compute:
		if on == c.computeOn {
			return
		}
		c.advance()
		c.computeOn = on
		if on {
			c.logf("host available: computing resumes")
			c.availMark = c.sim.Now()
			c.scheduleTick(0)
		} else {
			c.logf("host unavailable: computing suspended")
			c.rec.OnAvailable(c.availMark, c.sim.Now())
			c.preemptAll()
		}
	case host.GPUCompute:
		if on == c.gpuOn {
			return
		}
		c.advance()
		c.gpuOn = on
		c.logf("GPU computing %s", onOff(on))
		if c.computeOn {
			c.scheduleTick(0)
		}
	case host.Network:
		if on == c.netOn {
			return
		}
		c.netOn = on
		c.xfer.SetOnline(on)
		c.logf("network %s", onOff(on))
		if on && c.computeOn {
			c.scheduleTick(0)
		}
	}
}

func onOff(b bool) string {
	if b {
		return "resumed"
	}
	return "suspended"
}

func (c *Client) preemptAll() {
	for _, t := range c.runningInOrder() {
		c.stopTask(t)
	}
}

// runningInOrder returns the running tasks in queue (arrival) order.
// Iterating the running set through the tasks slice keeps emulations
// deterministic: map iteration order would reorder floating-point
// accumulation and event scheduling between runs. The returned slice
// is scratch, valid until the next call; callers never hold it across
// a nested runningInOrder (advance, the stop pass and preemptAll are
// strictly sequential).
func (c *Client) runningInOrder() []*job.Task {
	out := c.runScratch[:0]
	for _, t := range c.tasks {
		if t.State == job.Running {
			out = append(out, t)
		}
	}
	c.runScratch = out
	return out
}

// stopTask preempts one running task, accounting for lost work.
func (c *Client) stopTask(t *job.Task) {
	lost := t.Preempt(!c.prefs.LeaveInMemory)
	if lost > 0 {
		c.rec.OnLostWork(t, lost)
	}
	if c.logOn {
		if lost > 0 {
			c.logf("preempt %s (lost %.0f s since checkpoint)", t.Name, lost)
		} else {
			c.logf("preempt %s", t.Name)
		}
	}
	if c.tl != nil {
		c.tl.Stop(c.sim.Now(), t.Name)
	}
}

// advance credits execution to running tasks for the span since the
// last advance, charging accounting and handling completions.
func (c *Client) advance() {
	now := c.sim.Now()
	dt := now - c.lastAdvance
	if dt <= 0 {
		c.lastAdvance = now
		return
	}
	completed := c.completedScratch[:0]
	for _, t := range c.runningInOrder() {
		// A task stops consuming the processor the moment it finishes;
		// clip the credited span so late advances (e.g. the final
		// catch-up at the end of the run) don't inflate usage.
		span := dt
		if r := t.Remaining(); r < span {
			span = r
		}
		end := c.lastAdvance + span
		c.rec.OnRun(c.lastAdvance, end, t)
		u := t.Usage
		cpuFlops := u.AvgCPUs * c.hw.Proc[host.CPU].FLOPSPerInst
		c.acct.Charge(end, t.Project, host.CPU, u.AvgCPUs*span, cpuFlops*span)
		if u.IsGPU() {
			gflops := u.GPUUsage * c.hw.Proc[u.GPUType].FLOPSPerInst
			c.acct.Charge(end, t.Project, u.GPUType, u.GPUUsage*span, gflops*span)
		}
		if t.Advance(span, end) {
			completed = append(completed, t)
		}
	}
	c.lastAdvance = now
	c.completedScratch = completed
	for _, t := range completed {
		c.completeTask(t)
	}
}

func (c *Client) completeTask(t *job.Task) {
	if c.tl != nil {
		c.tl.Stop(c.sim.Now(), t.Name)
	}
	c.rec.OnComplete(t)
	if c.logOn {
		if t.MissedDeadline {
			c.logf("completed %s AFTER deadline (%.0f > %.0f)", t.Name, t.CompletedAt, t.Deadline)
		} else {
			c.logf("completed %s (deadline %.0f)", t.Name, t.Deadline)
		}
	}
	// Remove from the queue.
	for i, q := range c.tasks {
		if q == t {
			c.tasks = append(c.tasks[:i], c.tasks[i+1:]...)
			break
		}
	}
	// Output files must be uploaded before the result can be reported.
	if t.OutputBytes > 0 && c.hw.UploadBps > 0 {
		if c.logOn {
			c.logf("upload %s (%.0f bytes)", t.Name, t.OutputBytes)
		}
		c.xfer.Enqueue(transfer.Up, &transfer.Transfer{
			Name:     t.Name,
			Bytes:    t.OutputBytes,
			Deadline: t.Deadline,
			Done:     func() { c.readyToReport(t) },
		})
		return
	}
	c.readyToReport(t)
}

// readyToReport queues a completed (and fully uploaded) task for the
// next scheduler RPC to its project, bounding the wait.
func (c *Client) readyToReport(t *job.Task) {
	p := t.Project
	c.pendingReport[p] = append(c.pendingReport[p], t)
	if c.reportDue[p] == nil {
		deadline := c.sim.Now() + c.cfg.ReportMaxDelay
		c.reportDue[p] = c.sim.At(deadline, func() {
			c.reportDue[p] = nil
			if len(c.pendingReport[p]) > 0 && c.netOn && !c.rpcInFlight {
				c.issueRPC(p, nil)
			}
		})
	}
}

// scheduleTick coalesces scheduling passes: it ensures a tick fires no
// later than delay seconds from now. A non-nil tickTimer is always
// pending (the fired callback nils it before anything else), so a
// later-scheduled pass moves the timer in place — no cancel/allocate
// churn — and takes a fresh sequence number, exactly as a cancel +
// reschedule would have ordered it.
func (c *Client) scheduleTick(delay float64) {
	at := c.sim.Now() + delay
	if c.tickTimer != nil {
		if c.tickTimer.At() <= at {
			return // an earlier tick is already pending
		}
		c.sim.Move(c.tickTimer, at)
		return
	}
	c.tickTimer = c.sim.At(at, c.tickFn)
}

// accruesShare is the eligibility predicate for debt accrual: a project
// accrues type-t debt while it supplies type-t jobs, whether or not any
// are currently queued (otherwise a starved project would never regain
// priority; the paper notes this accrual question is left open and we
// follow BOINC's work-fetch debt).
func (c *Client) accruesShare(p int, t host.ProcType) bool {
	return c.servers[p].SuppliesType(t)
}

// rrsimSlackEpsilon is subtracted from the cache validity bound so that
// last-ulp differences between a cached projection and a fresh run can
// never change an endangered verdict. It is far below the 60 s tick
// granularity, so it costs at most one spurious recomputation.
const rrsimSlackEpsilon = 1e-3

// runRRSim runs the round-robin simulation over the current queue, or
// reuses the previous result when the workload fingerprint is unchanged
// and every job's deadline slack provably still holds (empty-queue and
// all-waiting stretches hit this path on every tick). Endangered
// verdicts are not returned: they latch onto each task's
// DeadlineFlagged bit, which the scheduler reads directly.
//
//bce:hotpath
func (c *Client) runRRSim() *rrsim.Result {
	now := c.sim.Now()
	cc := &c.rrCache

	// Fingerprint and build in one pass: the previous run's job array
	// is itself the cache key, since RunInto writes only the output
	// fields. Each unfinished task is compared against, then written
	// over, the entry it would occupy; if every input field matched
	// (and the validity window holds) nothing changed and the cached
	// result stands.
	if cap(c.rrJobs) < len(c.tasks) {
		grown := make([]rrsim.Job, len(c.tasks)) //bce:allocok amortized grow of the cross-tick job cache, stops once sized to the queue
		copy(grown, c.rrJobs)
		c.rrJobs = grown[:len(c.rrJobs)]
	}
	prev := len(c.rrJobs)
	match := cc.valid && now <= cc.validUntil && !c.rrCacheOff
	jobs := c.rrJobs[:cap(c.rrJobs)]
	n := 0
	for _, t := range c.tasks {
		if t.Finished() {
			continue
		}
		j := &jobs[n]
		remaining := t.EstRemaining()
		instances := t.Usage.Instances()
		typ := t.Usage.Type()
		if match && (n >= prev || j.Task != t || j.Remaining != remaining ||
			j.Deadline != t.Deadline || j.Instances != instances ||
			j.Type != typ || j.Project != t.Project) {
			match = false
		}
		j.Task, j.Project, j.Type = t, t.Project, typ
		j.Instances, j.Remaining, j.Deadline = instances, remaining, t.Deadline
		n++
	}
	c.rrJobs = jobs[:n]

	if match && n == prev {
		c.rrCacheHits++
		return cc.res
	}

	// rrsim keeps no references past the run, so the pointer slice and
	// job array live across ticks as scratch.
	if cap(c.rrJobPtrs) < n {
		c.rrJobPtrs = make([]*rrsim.Job, n) //bce:allocok amortized grow of reusable scratch, stops once sized to the queue
	}
	c.rrJobPtrs = c.rrJobPtrs[:n]
	for i := range c.rrJobPtrs {
		c.rrJobPtrs[i] = &c.rrJobs[i]
	}

	res := &c.rrRes
	c.rr.RunInto(res, rrsim.Input{
		Now:            now,
		Hardware:       c.hw,
		Shares:         c.shares,
		OnFrac:         c.onFrac,
		HorizonMin:     c.prefs.MinQueue,
		HorizonMax:     c.prefs.MaxQueue,
		DeadlineMargin: c.cfg.DeadlineMargin,
		Jobs:           c.rrJobPtrs,
	})

	for _, j := range c.rrJobPtrs {
		if j.Endangered {
			j.Task.DeadlineFlagged = true // latch; see job.Task.DeadlineFlagged
		}
	}

	cc.res = res
	cc.valid = true
	cc.validUntil = c.rrsimValidUntil(now)
	return res
}

// rrsimValidUntil bounds how long the just-computed simulation stays
// valid for an unchanged workload. With identical jobs at a later time
// t, the simulation's relative dynamics (step lengths, rates, shortfall
// and SAT integrals) are bit-identical — only absolute finish times
// shift by t−now. So the one thing that can change is the endangered
// classification: a non-endangered job j flips once t−now exceeds its
// slack (Deadline − margin − ProjectedFinish). The cache is therefore
// valid until the smallest such slack runs out (minus an epsilon that
// absorbs final-addition round-off); already-endangered jobs only get
// later, and an empty or never-finishing queue is valid forever.
func (c *Client) rrsimValidUntil(now float64) float64 {
	margin := c.cfg.DeadlineMargin
	until := math.Inf(1)
	for i := range c.rrJobs {
		j := &c.rrJobs[i]
		if j.Endangered {
			continue
		}
		if u := now + (j.Deadline - margin - j.ProjectedFinish) - rrsimSlackEpsilon; u < until {
			until = u
		}
	}
	return until
}

// taskEndangered is the scheduler's deadline-verdict predicate: the
// round-robin simulation latches its endangered classification onto
// the task itself, so no per-tick verdict set has to be built.
func taskEndangered(t *job.Task) bool { return t.DeadlineFlagged }

// tick is one scheduling pass: advance time, re-run the round-robin
// simulation, enforce the job schedule, consider work fetch, and
// schedule the next pass.
func (c *Client) tick() {
	c.advance()
	if !c.computeOn {
		return
	}
	now := c.sim.Now()
	c.acct.Update(now, c.accruesShare)
	rr := c.runRRSim()

	dec := c.enforcer.Enforce(sched.Input{
		Policy:      c.cfg.JobSched,
		Now:         now,
		Hardware:    c.hw,
		Tasks:       c.tasks,
		Endangered:  taskEndangered,
		Prio:        c.prioFn,
		MaxMemBytes: c.prefs.MaxMemFrac * c.hw.MemBytes,
		GPUAllowed:  c.gpuOn,
	})
	for _, t := range c.runningInOrder() {
		if !dec.Contains(t) {
			c.stopTask(t)
		}
	}
	for _, t := range dec.Run {
		if t.State != job.Running {
			t.Start(now)
			if c.logOn {
				c.logf("start %s (project %d, %s)", t.Name, t.Project, t.Usage.Type())
			}
			if c.tl != nil {
				c.tl.Start(now, t.Name, t.Project, t.Usage.Type(), t.Usage.Instances())
			}
		}
	}

	// Next completion wakes us exactly on time. After the stop and
	// start passes the running set is exactly dec.Run.
	next := c.prefs.CPUSchedPeriod
	for _, t := range dec.Run {
		if r := t.Remaining(); r < next {
			next = r
		}
	}

	c.maybeFetch(rr)
	c.scheduleTick(math.Max(next, 1e-3))
}

// maybeFetch runs the work-fetch policy and issues at most one RPC.
func (c *Client) maybeFetch(rr *rrsim.Result) {
	if c.rpcInFlight || !c.netOn {
		return
	}
	if len(c.tasks) > maxQueuedTasks {
		c.logf("queue cap reached (%d tasks); fetch suspended", len(c.tasks))
		return
	}
	now := c.sim.Now()
	// The views' static fields (share, supplier) were set in New; only
	// the per-decision floats change, so no per-call allocation.
	for i := range c.views {
		c.views[i].PrioFetch = c.acct.PrioFetch(i)
		c.views[i].BackoffUntil = c.backoffUntil[i]
	}
	plan := fetch.Decide(c.cfg.JobFetch, fetch.Input{
		Now:      now,
		Hardware: c.hw,
		RR:       rr,
		MinQueue: c.prefs.MinQueue,
		MaxQueue: c.prefs.MaxQueue,
		Projects: c.views,
	})
	if plan.None() {
		return
	}
	c.issueRPC(plan.Project, plan.Requests)
}

// issueRPC simulates one scheduler RPC to project p: it reports any
// completed tasks of p and requests the planned work.
func (c *Client) issueRPC(p int, reqs []project.Request) {
	c.rpcInFlight = true
	c.rec.OnRPC()
	reporting := len(c.pendingReport[p])
	if c.logOn {
		c.logf("RPC to project %d: report %d, request %s", p, reporting, fmtReqs(reqs))
	}
	// The server stamps deadlines at dispatch time; the reply reaches
	// the client one RPC delay later, so that delay consumes slack.
	sentAt := c.sim.Now()
	c.sim.Post(c.cfg.RPCDelay, func() {
		c.rpcInFlight = false
		now := c.sim.Now()
		srv := c.servers[p]
		if !srv.Reachable(now) {
			c.backoff(p, "project down")
			c.scheduleTick(0)
			return
		}
		// Report completions.
		for _, t := range c.pendingReport[p] {
			t.State = job.Reported
		}
		c.pendingReport[p] = c.pendingReport[p][:0]
		if c.reportDue[p] != nil {
			c.sim.Cancel(c.reportDue[p])
			c.reportDue[p] = nil
		}
		// Receive new work. Jobs are generated (and their deadlines
		// stamped) at send time, but arrive only now.
		got := srv.Dispatch(sentAt, reqs, project.HostInfo{OnFrac: c.onFrac[host.CPU]})
		if len(got) == 0 && project.EstimatedQueueSeconds(reqs) > 0 {
			c.backoff(p, "no work available")
		} else {
			c.backoffCount[p] = 0
			c.backoffUntil[p] = now + rpcRetryMin
		}
		for _, t := range got {
			t := t
			t.ReceivedAt = now
			c.tasks = append(c.tasks, t)
			if c.logOn {
				c.logf("got %s (est %.0f s, deadline %.0f)", t.Name, t.EstDuration, t.Deadline)
			}
			// Input files must arrive before the task can run.
			if t.InputBytes > 0 && c.hw.DownloadBps > 0 {
				t.State = job.Downloading
				c.xfer.Enqueue(transfer.Down, &transfer.Transfer{
					Name:     t.Name,
					Bytes:    t.InputBytes,
					Deadline: t.Deadline,
					Done: func() {
						t.State = job.Queued
						if c.logOn {
							c.logf("download of %s complete", t.Name)
						}
						c.scheduleTick(0)
					},
				})
			}
		}
		c.scheduleTick(0)
	})
}

// backoff applies exponential backoff to a project after a failed or
// empty RPC.
func (c *Client) backoff(p int, why string) {
	c.backoffCount[p]++
	d := float64(uint64(60) << uint(min(c.backoffCount[p]-1, 8)))
	if d > rpcBackoffMax {
		d = rpcBackoffMax
	}
	// Jitter avoids lock-step retries.
	d *= 0.5 + c.rng.Float64()
	c.backoffUntil[p] = c.sim.Now() + d
	if c.logOn {
		c.logf("backoff project %d for %.0f s (%s)", p, d, why)
	}
}

func fmtReqs(reqs []project.Request) string {
	if len(reqs) == 0 {
		return "nothing (report only)"
	}
	s := ""
	for i, r := range reqs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %.0f s / %.1f inst", r.Type, r.Seconds, r.Instances)
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// QueueLen exposes the current queue length (for tests).
func (c *Client) QueueLen() int { return len(c.tasks) }
