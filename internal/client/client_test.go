package client

import (
	"math"
	"strings"
	"testing"

	"bce/internal/fetch"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
	"bce/internal/sched"
)

func cpuApp(mean, bound float64) project.AppSpec {
	return project.AppSpec{
		Name:             "cpu",
		Usage:            job.Usage{AvgCPUs: 1, MemBytes: 100e6},
		MeanDuration:     mean,
		LatencyBound:     bound,
		CheckpointPeriod: 60,
	}
}

func gpuApp(mean, bound float64) project.AppSpec {
	return project.AppSpec{
		Name:             "gpu",
		Usage:            job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1, MemBytes: 100e6},
		MeanDuration:     mean,
		LatencyBound:     bound,
		CheckpointPeriod: 60,
	}
}

// smallQueueHost returns a host with short queue preferences so tests
// run quickly and deterministically.
func smallQueueHost(ncpu int) *host.Host {
	h := host.StdHost(ncpu, 1e9, 0, 0)
	h.Prefs.MinQueue = 1200
	h.Prefs.MaxQueue = 3600
	return h
}

func baseConfig(h *host.Host, projects ...project.Spec) Config {
	return Config{
		Host:     h,
		Projects: projects,
		JobSched: sched.JSLocal,
		JobFetch: fetch.JFHysteresis,
		Duration: 2 * 86400,
		Seed:     1,
	}
}

func TestValidateConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Host: smallQueueHost(1)}); err == nil {
		t.Fatal("config without projects accepted")
	}
	bad := baseConfig(smallQueueHost(1), project.Spec{Name: "p", Share: 0})
	if _, err := New(bad); err == nil {
		t.Fatal("invalid project accepted")
	}
}

// TestDeadlineMarginSentinel pins the Config.DeadlineMargin encoding:
// zero is "use the default", negative is "exactly zero margin", and
// positive values pass through.
func TestDeadlineMarginSentinel(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, DefaultDeadlineMargin},
		{ZeroDeadlineMargin, 0},
		{-300, 0}, // any negative value means exactly zero
		{60, 60},
	}
	for _, tc := range cases {
		got := (Config{DeadlineMargin: tc.in}).withDefaults().DeadlineMargin
		if got != tc.want {
			t.Errorf("DeadlineMargin %v resolved to %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSingleProjectKeepsCPUBusy(t *testing.T) {
	cfg := baseConfig(smallQueueHost(2),
		project.Spec{Name: "p0", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 86400)}})
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.CompletedJobs < 100 {
		t.Fatalf("completed %d jobs over 2 days on 2 CPUs, want >= 100", m.CompletedJobs)
	}
	if m.IdleFraction > 0.05 {
		t.Fatalf("idle = %v, want near 0 with ample work", m.IdleFraction)
	}
	if m.WastedFraction > 0.01 {
		t.Fatalf("wasted = %v, want ~0 with loose deadlines", m.WastedFraction)
	}
	if m.MissedJobs != 0 {
		t.Fatalf("missed %d deadlines with huge latency bound", m.MissedJobs)
	}
}

func TestEqualSharesSplitEvenly(t *testing.T) {
	cfg := baseConfig(smallQueueHost(2),
		project.Spec{Name: "a", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 86400)}},
		project.Spec{Name: "b", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 86400)}})
	cfg.Duration = 4 * 86400
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.ShareViolation > 0.15 {
		t.Fatalf("share violation %v for equal shares, want small", m.ShareViolation)
	}
	frac := m.UsedByProject[0] / (m.UsedByProject[0] + m.UsedByProject[1])
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("project 0 got %.2f of processing, want ~0.5", frac)
	}
}

func TestUnequalSharesRespected(t *testing.T) {
	cfg := baseConfig(smallQueueHost(1),
		project.Spec{Name: "big", Share: 3, Apps: []project.AppSpec{cpuApp(500, 86400)}},
		project.Spec{Name: "small", Share: 1, Apps: []project.AppSpec{cpuApp(500, 86400)}})
	cfg.Duration = 4 * 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	frac := m.UsedByProject[0] / (m.UsedByProject[0] + m.UsedByProject[1])
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("share-3 project got %.2f, want ~0.75", frac)
	}
}

func TestGPUAndCPUBothUsed(t *testing.T) {
	h := host.StdHost(4, 1e9, 1, 10e9)
	h.Prefs.MinQueue = 1200
	h.Prefs.MaxQueue = 3600
	cfg := baseConfig(h,
		project.Spec{Name: "cpu", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 86400)}},
		project.Spec{Name: "gpu", Share: 1, Apps: []project.AppSpec{gpuApp(500, 86400)}})
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.UsedByProject[0] == 0 || m.UsedByProject[1] == 0 {
		t.Fatalf("one side starved: %v", m.UsedByProject)
	}
	if m.IdleFraction > 0.1 {
		t.Fatalf("idle %v with both device types supplied", m.IdleFraction)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Result {
		cfg := baseConfig(smallQueueHost(2),
			project.Spec{Name: "a", Share: 1, Apps: []project.AppSpec{cpuApp(700, 7000)}},
			project.Spec{Name: "b", Share: 2, Apps: []project.AppSpec{cpuApp(900, 86400)}})
		cfg.Duration = 86400
		c, _ := New(cfg)
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Metrics.Values() != b.Metrics.Values() ||
		a.Metrics.CompletedJobs != b.Metrics.CompletedJobs ||
		a.Metrics.RPCs != b.Metrics.RPCs ||
		a.Metrics.UsedFLOPSsec != b.Metrics.UsedFLOPSsec {
		t.Fatalf("same seed, different results:\n%v\n%v", a.Metrics, b.Metrics)
	}
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
}

func TestHostAvailabilityReducesThroughput(t *testing.T) {
	run := func(avail host.Availability) int {
		h := smallQueueHost(1)
		h.Avail = avail
		cfg := baseConfig(h,
			project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 86400*5)}})
		cfg.Duration = 4 * 86400
		c, _ := New(cfg)
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.CompletedJobs
	}
	alwaysOn := run(host.AlwaysOn())
	var half host.Availability
	half.Spec[host.Compute] = host.AvailSpec{MeanOn: 7200, MeanOff: 7200}
	halfOn := run(half)
	if halfOn >= alwaysOn {
		t.Fatalf("50%% availability completed %d >= always-on %d", halfOn, alwaysOn)
	}
	ratio := float64(halfOn) / float64(alwaysOn)
	if ratio < 0.3 || ratio > 0.75 {
		t.Fatalf("throughput ratio %v, want ~0.5", ratio)
	}
}

func TestTightDeadlinesWasteUnderWRR(t *testing.T) {
	// Latency bound == runtime: with two competing projects, WRR runs
	// project 1's jobs at half speed and every one misses.
	mk := func(policy sched.Policy) float64 {
		h := smallQueueHost(1)
		h.Prefs.MinQueue = 600
		h.Prefs.MaxQueue = 1200
		cfg := baseConfig(h,
			project.Spec{Name: "tight", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 1100)}},
			project.Spec{Name: "loose", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 864000)}})
		cfg.JobSched = policy
		cfg.Duration = 86400
		c, _ := New(cfg)
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.WastedFraction
	}
	wrr := mk(sched.JSWRR)
	edf := mk(sched.JSLocal)
	if edf >= wrr {
		t.Fatalf("deadline-aware policy wasted %v >= WRR %v", edf, wrr)
	}
}

func TestMessageLogProduced(t *testing.T) {
	var sb strings.Builder
	cfg := baseConfig(smallQueueHost(1),
		project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 86400)}})
	cfg.Duration = 7200
	cfg.Log = &sb
	c, _ := New(cfg)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	log := sb.String()
	for _, want := range []string{"RPC to project", "got ", "start ", "completed "} {
		if !strings.Contains(log, want) {
			t.Fatalf("message log missing %q:\n%s", want, log[:minInt(len(log), 2000)])
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTimelineRecorded(t *testing.T) {
	cfg := baseConfig(smallQueueHost(1),
		project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 86400)}})
	cfg.Duration = 7200
	cfg.RecordTimeline = true
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil || len(res.Timeline.Segments) == 0 {
		t.Fatal("no timeline segments recorded")
	}
	lo, hi := res.Timeline.Span()
	if lo < 0 || hi > 7200 {
		t.Fatalf("timeline span [%v,%v] outside run", lo, hi)
	}
}

func TestProjectDowntimeBackoff(t *testing.T) {
	spec := project.Spec{
		Name: "flaky", Share: 1,
		Apps:     []project.AppSpec{cpuApp(1000, 86400)},
		Downtime: host.AvailSpec{MeanOn: 3600, MeanOff: 3600},
	}
	cfg := baseConfig(smallQueueHost(1), spec)
	cfg.Duration = 2 * 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Still makes progress despite ~50% downtime.
	if res.Metrics.CompletedJobs == 0 {
		t.Fatal("no jobs completed with a flaky project")
	}
}

// TestRRSimCacheEquivalence pins the workload-fingerprint cache as a
// pure optimization: an emulation with the cache disabled must produce
// bit-identical results, and the cached run must actually hit (dry
// spells from the flaky project leave the queue unchanged across many
// ticks).
func TestRRSimCacheEquivalence(t *testing.T) {
	run := func(cacheOff bool) (*Result, uint64) {
		cfg := baseConfig(smallQueueHost(2),
			project.Spec{Name: "steady", Share: 2, Apps: []project.AppSpec{cpuApp(700, 7000)}},
			project.Spec{
				Name: "flaky", Share: 1,
				Apps:     []project.AppSpec{cpuApp(1000, 86400)},
				Downtime: host.AvailSpec{MeanOn: 3600, MeanOff: 7200},
			})
		cfg.Duration = 2 * 86400
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.rrCacheOff = cacheOff
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, c.rrCacheHits
	}
	cached, hits := run(false)
	plain, mustBeZero := run(true)
	if mustBeZero != 0 {
		t.Fatalf("disabled cache recorded %d hits", mustBeZero)
	}
	if hits == 0 {
		t.Fatal("cache never hit; scenario does not exercise reuse")
	}
	a, b := cached.Metrics, plain.Metrics
	if a.Values() != b.Values() ||
		a.CompletedJobs != b.CompletedJobs || a.MissedJobs != b.MissedJobs ||
		a.RPCs != b.RPCs ||
		a.UsedFLOPSsec != b.UsedFLOPSsec || a.WastedFLOPSsec != b.WastedFLOPSsec ||
		a.LostFLOPSsec != b.LostFLOPSsec || a.AvailFLOPSsec != b.AvailFLOPSsec {
		t.Fatalf("cache changed emulation results:\nwith:    %v\nwithout: %v", a, b)
	}
	if cached.Events != plain.Events {
		t.Fatalf("event counts differ: %d vs %d", cached.Events, plain.Events)
	}
}

func TestRPCAccountingMatchesJobFlow(t *testing.T) {
	cfg := baseConfig(smallQueueHost(2),
		project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{cpuApp(2000, 86400)}})
	cfg.Duration = 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.RPCs == 0 {
		t.Fatal("no RPCs recorded")
	}
	if res.Dispatched[0] < m.CompletedJobs {
		t.Fatalf("dispatched %d < completed %d", res.Dispatched[0], m.CompletedJobs)
	}
}

func TestHysteresisFewerRPCs(t *testing.T) {
	mk := func(kind fetch.PolicyKind) float64 {
		h := smallQueueHost(2)
		h.Prefs.MinQueue = 3600
		h.Prefs.MaxQueue = 4 * 3600
		cfg := baseConfig(h,
			project.Spec{Name: "a", Share: 1, Apps: []project.AppSpec{cpuApp(600, 864000)}},
			project.Spec{Name: "b", Share: 1, Apps: []project.AppSpec{cpuApp(600, 864000)}})
		cfg.JobFetch = kind
		cfg.Duration = 2 * 86400
		c, _ := New(cfg)
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.RPCsPerJob
	}
	orig := mk(fetch.JFOrig)
	hyst := mk(fetch.JFHysteresis)
	if hyst >= orig {
		t.Fatalf("hysteresis RPCs/job %v >= orig %v", hyst, orig)
	}
}

func TestMetricsInRange(t *testing.T) {
	cfg := baseConfig(smallQueueHost(4),
		project.Spec{Name: "a", Share: 2, Apps: []project.AppSpec{cpuApp(500, 2000)}},
		project.Spec{Name: "b", Share: 1, Apps: []project.AppSpec{cpuApp(3000, 86400)}})
	cfg.Duration = 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Metrics.Values() {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("metric %d = %v out of [0,1]", i, v)
		}
	}
}

func TestAvailabilityTraceReplay(t *testing.T) {
	// 6 h on / 6 h off trace: throughput should be about half of an
	// always-on host, and the off periods should show as non-available
	// capacity rather than idle time.
	h := smallQueueHost(1)
	h.Avail.Trace[host.Compute] = []host.Period{
		{Duration: 6 * 3600, On: true},
		{Duration: 6 * 3600, On: false},
	}
	cfg := baseConfig(h,
		project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{cpuApp(1000, 864000)}})
	cfg.Duration = 4 * 86400
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	wantAvail := 0.5 * 4 * 86400 * 1e9
	if math.Abs(m.AvailFLOPSsec-wantAvail)/wantAvail > 0.01 {
		t.Fatalf("available capacity %v, want ~%v (half the run)", m.AvailFLOPSsec, wantAvail)
	}
	if m.IdleFraction > 0.05 {
		t.Fatalf("idle %v, want near 0 (off time is not idle time)", m.IdleFraction)
	}
	if m.CompletedJobs < 100 {
		t.Fatalf("completed %d jobs, want substantial progress during on periods", m.CompletedJobs)
	}
}

func TestTraceStartingOff(t *testing.T) {
	h := smallQueueHost(1)
	h.Avail.Trace[host.Compute] = []host.Period{
		{Duration: 3600, On: false},
		{Duration: 3600, On: true},
	}
	cfg := baseConfig(h,
		project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{cpuApp(600, 864000)}})
	cfg.Duration = 2 * 3600
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Only the second hour is available.
	want := 3600 * 1e9
	if math.Abs(res.Metrics.AvailFLOPSsec-want)/want > 0.02 {
		t.Fatalf("available capacity %v, want ~%v", res.Metrics.AvailFLOPSsec, want)
	}
}

func TestFileTransfersDelayExecution(t *testing.T) {
	// 100 MB inputs over a 10 Mbps-ish link (1.25e6 B/s): each download
	// takes 80 s, so throughput should drop measurably versus an
	// infinite link, and idle time should appear while downloads block.
	mk := func(downBps float64) (int, float64) {
		h := smallQueueHost(1)
		h.Hardware.DownloadBps = downBps
		app := cpuApp(600, 864000)
		app.InputBytes = 100e6
		cfg := baseConfig(h, project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{app}})
		cfg.Duration = 86400
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.CompletedJobs, res.Metrics.IdleFraction
	}
	fastJobs, _ := mk(0)      // infinite link
	slowJobs, _ := mk(1.25e5) // 1 Mbps: 800 s per 100 MB input > job length
	if slowJobs >= fastJobs {
		t.Fatalf("slow link completed %d >= fast link %d", slowJobs, fastJobs)
	}
	if slowJobs == 0 {
		t.Fatal("no progress at all on the slow link")
	}
}

func TestUploadsGateReporting(t *testing.T) {
	h := smallQueueHost(1)
	h.Hardware.UploadBps = 1e5
	app := cpuApp(600, 864000)
	app.OutputBytes = 50e6 // 500 s per upload
	cfg := baseConfig(h, project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{app}})
	cfg.Duration = 4 * 3600
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CompletedJobs == 0 {
		t.Fatal("no jobs completed")
	}
	// Execution is not blocked by uploads (they overlap).
	if res.Metrics.IdleFraction > 0.2 {
		t.Fatalf("idle %v; uploads should not stall the CPU", res.Metrics.IdleFraction)
	}
}

func TestLLFEndToEnd(t *testing.T) {
	cfg := baseConfig(smallQueueHost(2),
		project.Spec{Name: "a", Share: 1, Apps: []project.AppSpec{cpuApp(800, 4000)}},
		project.Spec{Name: "b", Share: 1, Apps: []project.AppSpec{cpuApp(800, 864000)}})
	cfg.JobSched = sched.JSLLF
	cfg.Duration = 86400
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CompletedJobs == 0 {
		t.Fatal("JS-LLF run completed nothing")
	}
	if res.Metrics.WastedFraction > 0.3 {
		t.Fatalf("JS-LLF wasted %v; laxity scheduling should meet most deadlines", res.Metrics.WastedFraction)
	}
}
