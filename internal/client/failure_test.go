package client

// Failure-injection tests: the emulator must behave sensibly when the
// environment misbehaves — projects down for the whole run, hosts that
// are almost never available, servers that refuse everything, apps
// that never checkpoint, estimate errors, and degenerate queues.

import (
	"math"
	"strings"
	"testing"

	"bce/internal/fetch"
	"bce/internal/host"
	"bce/internal/project"
	"bce/internal/sched"
)

func TestProjectDownForever(t *testing.T) {
	spec := project.Spec{
		Name: "dead", Share: 1,
		Apps: []project.AppSpec{cpuApp(1000, 86400)},
		// Mean up period of a millisecond, down for ~forever.
		Downtime: host.AvailSpec{MeanOn: 1e-3, MeanOff: 1e12},
	}
	cfg := baseConfig(smallQueueHost(1), spec)
	cfg.Duration = 86400
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.CompletedJobs != 0 {
		t.Fatalf("dead project completed %d jobs", m.CompletedJobs)
	}
	if m.IdleFraction < 0.99 {
		t.Fatalf("idle %v, want ~1 (nothing to run)", m.IdleFraction)
	}
	// Backoff must bound the RPC count: without it the client would
	// hammer the server every minute (1440 RPCs/day).
	if m.RPCs > 300 {
		t.Fatalf("%d RPCs against a dead project; backoff not working", m.RPCs)
	}
}

func TestProjectNeverHasWork(t *testing.T) {
	spec := project.Spec{
		Name: "dry", Share: 1,
		Apps:     []project.AppSpec{cpuApp(1000, 86400)},
		WorkGaps: host.AvailSpec{MeanOn: 1e-3, MeanOff: 1e12},
	}
	cfg := baseConfig(smallQueueHost(1), spec)
	cfg.Duration = 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The work-gap process opens with one (here microscopic) has-work
	// period, so the very first RPC may net a batch; after that the
	// project stays dry for the whole run.
	if res.Metrics.CompletedJobs > 10 {
		t.Fatalf("dry project completed %d jobs, want at most the first batch", res.Metrics.CompletedJobs)
	}
	if res.Metrics.RPCs > 300 {
		t.Fatalf("%d RPCs against a dry project", res.Metrics.RPCs)
	}
}

func TestHostAlmostNeverAvailable(t *testing.T) {
	h := smallQueueHost(1)
	h.Avail.Spec[host.Compute] = host.AvailSpec{MeanOn: 60, MeanOff: 6000}
	cfg := baseConfig(h,
		project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{cpuApp(100, 864000)}})
	cfg.Duration = 2 * 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	// ~1% availability: some trickle of completions, capacity ~1%.
	if m.AvailFLOPSsec > 0.05*2*86400*1e9 {
		t.Fatalf("available capacity %v too high for ~1%% availability", m.AvailFLOPSsec)
	}
	for _, v := range m.Values() {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("metric out of range under extreme churn: %v", m)
		}
	}
}

func TestServerRefusesEverything(t *testing.T) {
	// SimpleCheck against jobs whose estimate exceeds the bound: the
	// server refuses every job; the client must keep backing off.
	app := cpuApp(1000, 500) // estimate 1000 > bound 500
	spec := project.Spec{Name: "picky", Share: 1, Apps: []project.AppSpec{app}, Check: project.SimpleCheck}
	cfg := baseConfig(smallQueueHost(1), spec)
	cfg.Duration = 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CompletedJobs != 0 {
		t.Fatal("refused jobs completed anyway")
	}
	if res.Refused[0] == 0 {
		t.Fatal("server never refused")
	}
	if res.Metrics.RPCs > 300 {
		t.Fatalf("%d RPCs against an always-refusing server", res.Metrics.RPCs)
	}
}

func TestNeverCheckpointingAppLosesWorkOnSuspend(t *testing.T) {
	h := smallQueueHost(1)
	// Availability cycles shorter than the job: an app that never
	// checkpoints loses everything at each suspension and never
	// finishes; one that checkpoints finishes fine.
	h.Avail.Spec[host.Compute] = host.AvailSpec{MeanOn: 1800, MeanOff: 600}
	mk := func(checkpoint float64) (int, float64) {
		app := cpuApp(3600, 8640000)
		app.CheckpointPeriod = checkpoint
		cfg := baseConfig(h,
			project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{app}})
		cfg.Duration = 2 * 86400
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.CompletedJobs, res.Metrics.LostFLOPSsec
	}
	withCP, lostCP := mk(60)
	without, lostNo := mk(0)
	if without >= withCP {
		t.Fatalf("non-checkpointing app completed %d >= checkpointing %d", without, withCP)
	}
	if lostNo <= lostCP {
		t.Fatalf("non-checkpointing app lost %v <= checkpointing %v", lostNo, lostCP)
	}
}

func TestEstimateErrorsStillConverge(t *testing.T) {
	app := cpuApp(1000, 86400)
	app.EstErrBias = 3 // server thinks jobs are 3× longer
	app.EstErrSigma = 0.5
	cfg := baseConfig(smallQueueHost(2),
		project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{app}})
	cfg.Duration = 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.CompletedJobs < 50 {
		t.Fatalf("completed %d with biased estimates, want steady progress", m.CompletedJobs)
	}
	// Over-estimates make the client under-fetch, but the queue should
	// still keep the CPU mostly busy.
	if m.IdleFraction > 0.3 {
		t.Fatalf("idle %v with 3× over-estimates", m.IdleFraction)
	}
}

func TestZeroShareRejected(t *testing.T) {
	cfg := baseConfig(smallQueueHost(1),
		project.Spec{Name: "p", Share: 0, Apps: []project.AppSpec{cpuApp(100, 1000)}})
	if _, err := New(cfg); err == nil {
		t.Fatal("zero-share project accepted")
	}
}

func TestManyTinyJobs(t *testing.T) {
	// 10-second jobs stress the event loop (thousands of completions
	// and RPC batches).
	h := smallQueueHost(2)
	h.Prefs.MinQueue = 300
	h.Prefs.MaxQueue = 600
	cfg := baseConfig(h,
		project.Spec{Name: "p", Share: 1, MaxJobsPerRPC: 128,
			Apps: []project.AppSpec{cpuApp(10, 86400)}})
	cfg.Duration = 4 * 3600
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CompletedJobs < 1000 {
		t.Fatalf("completed %d tiny jobs, want >1000", res.Metrics.CompletedJobs)
	}
	if res.Metrics.WastedFraction > 0.01 {
		t.Fatalf("wasted %v on deadline-free tiny jobs", res.Metrics.WastedFraction)
	}
}

func TestGPUChannelSuspension(t *testing.T) {
	h := host.StdHost(2, 1e9, 1, 10e9)
	h.Prefs.MinQueue = 1200
	h.Prefs.MaxQueue = 3600
	// GPU allowed only half the time; CPU always.
	h.Avail.Spec[host.GPUCompute] = host.AvailSpec{MeanOn: 3600, MeanOff: 3600}
	cfg := baseConfig(h,
		project.Spec{Name: "cpu", Share: 1, Apps: []project.AppSpec{cpuApp(500, 864000)}},
		project.Spec{Name: "gpu", Share: 1, Apps: []project.AppSpec{gpuApp(500, 864000)}})
	cfg.Duration = 2 * 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	// The GPU project should still get roughly half the GPU's ideal
	// throughput; the CPU side should be unaffected (nearly no idle
	// CPU time).
	gpuIdeal := 10e9 * 2 * 86400.0
	frac := m.UsedByProject[1] / gpuIdeal
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("GPU project got %.2f of ideal, want ~0.5 (GPU half-suspended)", frac)
	}
}

func TestNetworkOutagesDelayFetch(t *testing.T) {
	h := smallQueueHost(1)
	h.Prefs.MinQueue = 300
	h.Prefs.MaxQueue = 600
	h.Avail.Spec[host.Network] = host.AvailSpec{MeanOn: 600, MeanOff: 3600}
	cfg := baseConfig(h,
		project.Spec{Name: "p", Share: 1, Apps: []project.AppSpec{cpuApp(300, 864000)}})
	cfg.Duration = 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	// With the network mostly down and a tiny queue, the host starves
	// between connections: idle well above the always-connected case.
	if m.IdleFraction < 0.2 {
		t.Fatalf("idle %v; expected starvation from network outages", m.IdleFraction)
	}
	if m.CompletedJobs == 0 {
		t.Fatal("no jobs at all despite periodic connectivity")
	}
}

func TestWRRWithJFOrigEndToEnd(t *testing.T) {
	// Exercise the remaining policy combination end to end.
	cfg := baseConfig(smallQueueHost(2),
		project.Spec{Name: "a", Share: 2, Apps: []project.AppSpec{cpuApp(700, 864000)}},
		project.Spec{Name: "b", Share: 1, Apps: []project.AppSpec{cpuApp(900, 864000)}})
	cfg.JobSched = sched.JSWRR
	cfg.JobFetch = fetch.JFOrig
	cfg.Duration = 2 * 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.CompletedJobs == 0 {
		t.Fatal("no jobs completed")
	}
	frac := m.UsedByProject[0] / (m.UsedByProject[0] + m.UsedByProject[1])
	if frac < 0.5 || frac > 0.85 {
		t.Fatalf("share-2 project got %.2f, want ~2/3", frac)
	}
}

func TestSpreadFetchEndToEnd(t *testing.T) {
	cfg := baseConfig(smallQueueHost(2),
		project.Spec{Name: "a", Share: 1, Apps: []project.AppSpec{cpuApp(600, 864000)}},
		project.Spec{Name: "b", Share: 1, Apps: []project.AppSpec{cpuApp(600, 864000)}})
	cfg.JobFetch = fetch.JFSpread
	cfg.Duration = 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CompletedJobs == 0 {
		t.Fatal("JF-SPREAD completed nothing")
	}
	if res.Metrics.IdleFraction > 0.1 {
		t.Fatalf("JF-SPREAD idle %v", res.Metrics.IdleFraction)
	}
}

func TestMemoryBoundJobsSerialise(t *testing.T) {
	// Two 5 GB jobs on an 8 GB host (7.2 GB usable): only one runs at a
	// time even with two CPUs free.
	app := cpuApp(1000, 864000)
	app.Usage.MemBytes = 5e9
	cfg := baseConfig(smallQueueHost(2),
		project.Spec{Name: "fat", Share: 1, Apps: []project.AppSpec{app}})
	cfg.Duration = 86400
	c, _ := New(cfg)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	// One CPU's worth of throughput out of two: idle ≈ 0.5.
	if m.IdleFraction < 0.4 || m.IdleFraction > 0.6 {
		t.Fatalf("idle %v, want ~0.5 (memory-serialised)", m.IdleFraction)
	}
}

func TestLogContainsBackoffOnDeadProject(t *testing.T) {
	var sb strings.Builder
	spec := project.Spec{
		Name: "dead", Share: 1,
		Apps:     []project.AppSpec{cpuApp(1000, 86400)},
		Downtime: host.AvailSpec{MeanOn: 1e-3, MeanOff: 1e12},
	}
	cfg := baseConfig(smallQueueHost(1), spec)
	cfg.Duration = 4 * 3600
	cfg.Log = &sb
	c, _ := New(cfg)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "backoff") {
		t.Fatal("message log missing backoff entries")
	}
}
