package fetch

import (
	"math"
	"testing"

	"bce/internal/host"
	"bce/internal/rrsim"
)

func hwCPU(n int) *host.Hardware {
	h := host.StdHost(n, 1e9, 0, 0)
	return &h.Hardware
}

func hwMixed(ncpu, ngpu int) *host.Hardware {
	h := host.StdHost(ncpu, 1e9, ngpu, 10e9)
	return &h.Hardware
}

// suppliesFunc adapts a predicate to the Supplier interface for tests.
type suppliesFunc func(host.ProcType) bool

func (f suppliesFunc) SuppliesType(t host.ProcType) bool { return f(t) }

func cpuProject(share, prio float64) ProjectView {
	supplies := suppliesFunc(func(t host.ProcType) bool { return t == host.CPU })
	return ProjectView{Share: share, PrioFetch: prio, Supplies: supplies}
}

func gpuProject(share, prio float64) ProjectView {
	supplies := suppliesFunc(func(t host.ProcType) bool { return t == host.NvidiaGPU })
	return ProjectView{Share: share, PrioFetch: prio, Supplies: supplies}
}

func rrWith(sfMin, sfMax, sat, idle float64) *rrsim.Result {
	r := &rrsim.Result{}
	r.ShortfallMin[host.CPU] = sfMin
	r.ShortfallMax[host.CPU] = sfMax
	r.Saturated[host.CPU] = sat
	r.IdleNow[host.CPU] = idle
	return r
}

func TestPolicyNames(t *testing.T) {
	if JFOrig.String() != "JF-ORIG" || JFHysteresis.String() != "JF-HYSTERESIS" {
		t.Fatal("policy names wrong")
	}
	if PolicyKind(5).String() != "PolicyKind(5)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestOrigNoShortfallNoFetch(t *testing.T) {
	in := Input{
		Hardware: hwCPU(2), RR: rrWith(0, 500, 1e6, 0),
		MinQueue: 1000, MaxQueue: 2000,
		Projects: []ProjectView{cpuProject(1, 0)},
	}
	if p := Decide(JFOrig, in); !p.None() {
		t.Fatalf("JF-ORIG fetched with zero min shortfall: %+v", p)
	}
}

func TestOrigRequestsShareSlice(t *testing.T) {
	// Two CPU projects, shares 1 and 3; best priority is project 0.
	in := Input{
		Hardware: hwCPU(2), RR: rrWith(1000, 4000, 0, 2),
		MinQueue: 1000, MaxQueue: 2000,
		Projects: []ProjectView{cpuProject(1, 10), cpuProject(3, 5)},
	}
	p := Decide(JFOrig, in)
	if p.None() || p.Project != 0 {
		t.Fatalf("plan = %+v, want RPC to project 0", p)
	}
	// X = 1/4, shortfall(min horizon) = 1000 → request 250.
	if math.Abs(p.Requests[0].Seconds-250) > 1e-9 {
		t.Fatalf("requested %v s, want 250 (share slice)", p.Requests[0].Seconds)
	}
	if p.Requests[0].Instances != 2 {
		t.Fatalf("requested %v instances, want 2 idle", p.Requests[0].Instances)
	}
}

func TestHysteresisTriggersOnSAT(t *testing.T) {
	in := Input{
		Hardware: hwCPU(2), RR: rrWith(100, 4000, 500, 1),
		MinQueue: 1000, MaxQueue: 2000,
		Projects: []ProjectView{cpuProject(1, 0), cpuProject(1, 1)},
	}
	// SAT 500 < min_queue 1000: fetch the whole max-horizon shortfall
	// from the single best project (project 1, higher priority).
	p := Decide(JFHysteresis, in)
	if p.None() || p.Project != 1 {
		t.Fatalf("plan = %+v, want RPC to project 1", p)
	}
	if p.Requests[0].Seconds != 4000 {
		t.Fatalf("requested %v, want entire shortfall 4000", p.Requests[0].Seconds)
	}
}

func TestHysteresisHoldsWhileSaturated(t *testing.T) {
	in := Input{
		Hardware: hwCPU(2), RR: rrWith(100, 4000, 1500, 0),
		MinQueue: 1000, MaxQueue: 2000,
		Projects: []ProjectView{cpuProject(1, 0)},
	}
	// SAT 1500 >= min_queue 1000: no fetch even though shortfall > 0.
	if p := Decide(JFHysteresis, in); !p.None() {
		t.Fatalf("hysteresis fetched while saturated: %+v", p)
	}
}

func TestBestProjectByPriority(t *testing.T) {
	in := Input{
		Hardware: hwCPU(1), RR: rrWith(1000, 1000, 0, 1),
		MinQueue: 100, MaxQueue: 100,
		Projects: []ProjectView{cpuProject(1, -5), cpuProject(1, 7), cpuProject(1, 3)},
	}
	p := Decide(JFOrig, in)
	if p.Project != 1 {
		t.Fatalf("picked project %d, want 1 (highest fetch priority)", p.Project)
	}
}

func TestUnfetchableProjectSkipped(t *testing.T) {
	busy := cpuProject(1, 100)
	busy.BackoffUntil = math.Inf(1) // backed off
	in := Input{
		Hardware: hwCPU(1), RR: rrWith(1000, 1000, 0, 1),
		MinQueue: 100, MaxQueue: 100,
		Projects: []ProjectView{busy, cpuProject(1, 1)},
	}
	p := Decide(JFOrig, in)
	if p.Project != 1 {
		t.Fatalf("picked project %d, want 1 (0 is backed off)", p.Project)
	}
}

func TestNoProjectsNoFetch(t *testing.T) {
	in := Input{
		Hardware: hwCPU(1), RR: rrWith(1000, 1000, 0, 1),
		MinQueue: 100, MaxQueue: 100,
	}
	if p := Decide(JFOrig, in); !p.None() {
		t.Fatal("fetched with no projects")
	}
	if p := Decide(JFHysteresis, in); !p.None() {
		t.Fatal("hysteresis fetched with no projects")
	}
}

func TestGPUShortfallAsksGPUProject(t *testing.T) {
	r := &rrsim.Result{}
	r.ShortfallMin[host.NvidiaGPU] = 2000
	r.ShortfallMax[host.NvidiaGPU] = 2000
	r.IdleNow[host.NvidiaGPU] = 1
	// CPU fully covered.
	r.Saturated[host.CPU] = 1e9
	in := Input{
		Hardware: hwMixed(4, 1), RR: r,
		MinQueue: 100, MaxQueue: 100,
		Projects: []ProjectView{cpuProject(1, 100), gpuProject(1, 0)},
	}
	p := Decide(JFOrig, in)
	if p.None() || p.Project != 1 {
		t.Fatalf("plan = %+v, want GPU project despite lower priority", p)
	}
	if p.Requests[0].Type != host.NvidiaGPU {
		t.Fatalf("requested type %v, want NVIDIA", p.Requests[0].Type)
	}
	// The GPU project supplies only GPU: X = 1 (its share among
	// GPU-supplying projects).
	if p.Requests[0].Seconds != 2000 {
		t.Fatalf("requested %v, want full 2000 (only GPU supplier)", p.Requests[0].Seconds)
	}
}

func TestShareFracCountsOnlySuppliers(t *testing.T) {
	in := Input{
		Hardware: hwMixed(4, 1), RR: rrWith(1000, 1000, 0, 4),
		MinQueue: 100, MaxQueue: 100,
		Projects: []ProjectView{cpuProject(1, 5), gpuProject(3, 0)},
	}
	// CPU shortfall: project 0 is the only CPU supplier → X = 1.
	p := Decide(JFOrig, in)
	if p.Project != 0 || p.Requests[0].Seconds != 1000 {
		t.Fatalf("plan = %+v, want project 0 asked for the full 1000", p)
	}
}

func TestZeroShareProjectNeverAsked(t *testing.T) {
	in := Input{
		Hardware: hwCPU(1), RR: rrWith(1000, 1000, 0, 1),
		MinQueue: 100, MaxQueue: 100,
		Projects: []ProjectView{cpuProject(0, 100)},
	}
	if p := Decide(JFOrig, in); !p.None() {
		t.Fatal("zero-share project was asked for work")
	}
}

func TestAbsentHardwareSkipped(t *testing.T) {
	// GPU shortfall reported but host has no GPU: no fetch.
	r := &rrsim.Result{}
	r.ShortfallMin[host.NvidiaGPU] = 500
	r.ShortfallMax[host.NvidiaGPU] = 500
	in := Input{
		Hardware: hwCPU(2), RR: r,
		MinQueue: 100, MaxQueue: 100,
		Projects: []ProjectView{gpuProject(1, 0)},
	}
	if p := Decide(JFOrig, in); !p.None() {
		t.Fatal("fetched for a processor type the host lacks")
	}
}

func TestSpreadTriggersLikeHysteresis(t *testing.T) {
	in := Input{
		Hardware: hwCPU(2), RR: rrWith(100, 4000, 1500, 0),
		MinQueue: 1000, MaxQueue: 2000,
		Projects: []ProjectView{cpuProject(1, 0)},
	}
	// Saturated beyond min_queue: no fetch, like hysteresis.
	if p := Decide(JFSpread, in); !p.None() {
		t.Fatalf("JF-SPREAD fetched while saturated: %+v", p)
	}
}

func TestSpreadRequestsShareSlice(t *testing.T) {
	in := Input{
		Hardware: hwCPU(2), RR: rrWith(100, 4000, 500, 1),
		MinQueue: 1000, MaxQueue: 2000,
		Projects: []ProjectView{cpuProject(1, 10), cpuProject(3, 5)},
	}
	p := Decide(JFSpread, in)
	if p.None() || p.Project != 0 {
		t.Fatalf("plan = %+v, want project 0 (highest priority)", p)
	}
	// Share slice of the max-horizon shortfall: 1/4 × 4000 = 1000.
	if p.Requests[0].Seconds != 1000 {
		t.Fatalf("requested %v, want 1000 (share slice)", p.Requests[0].Seconds)
	}
}

func TestSpreadName(t *testing.T) {
	if JFSpread.String() != "JF-SPREAD" {
		t.Fatal("JF-SPREAD name")
	}
}

// TestShareFracEdgeCases drives shareFrac directly through its corner
// cases: projects with zero share, a nil Supplies, and no suppliers at
// all must never contribute to (or produce) a share.
func TestShareFracEdgeCases(t *testing.T) {
	cpu := suppliesFunc(func(t host.ProcType) bool { return t == host.CPU })
	gpu := suppliesFunc(func(t host.ProcType) bool { return t == host.NvidiaGPU })
	cases := []struct {
		name     string
		projects []ProjectView
		p        int
		want     float64
	}{
		{"sole supplier", []ProjectView{{Share: 2, Supplies: cpu}}, 0, 1},
		{"even split counts only suppliers", []ProjectView{
			{Share: 1, Supplies: cpu},
			{Share: 1, Supplies: cpu},
			{Share: 2, Supplies: gpu}, // other type: out of the sum
		}, 0, 0.5},
		{"zero-share supplier excluded from sum", []ProjectView{
			{Share: 3, Supplies: cpu},
			{Share: 0, Supplies: cpu},
		}, 0, 1},
		{"zero-share project gets zero", []ProjectView{
			{Share: 3, Supplies: cpu},
			{Share: 0, Supplies: cpu},
		}, 1, 0},
		{"nil Supplies treated as supplies nothing", []ProjectView{
			{Share: 1, Supplies: cpu},
			{Share: 9, Supplies: nil},
		}, 0, 1},
		{"no suppliers at all", []ProjectView{
			{Share: 1, Supplies: gpu},
			{Share: 1, Supplies: nil},
		}, 0, 0},
	}
	for _, tc := range cases {
		in := Input{Projects: tc.projects}
		if got := shareFrac(in, tc.p, host.CPU); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: shareFrac = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBestProjectEdgeCases drives bestProject directly: zero-share and
// nil-Supplies projects must be skipped even at top priority, and a
// fully backed-off roster yields no candidate.
func TestBestProjectEdgeCases(t *testing.T) {
	yes := suppliesFunc(func(host.ProcType) bool { return true })
	backedOff := math.Inf(1)
	cases := []struct {
		name     string
		projects []ProjectView
		want     int
	}{
		{"empty roster", nil, -1},
		{"all backed off", []ProjectView{
			{Share: 1, PrioFetch: 5, Supplies: yes, BackoffUntil: backedOff},
			{Share: 1, PrioFetch: 9, Supplies: yes, BackoffUntil: backedOff},
		}, -1},
		{"nil Supplies skipped", []ProjectView{
			{Share: 1, PrioFetch: 9, Supplies: nil},
			{Share: 1, PrioFetch: 1, Supplies: yes},
		}, 1},
		{"zero share skipped despite priority", []ProjectView{
			{Share: 0, PrioFetch: 9, Supplies: yes},
			{Share: 1, PrioFetch: 1, Supplies: yes},
		}, 1},
		{"negative share skipped", []ProjectView{
			{Share: -1, PrioFetch: 9, Supplies: yes},
			{Share: 1, PrioFetch: 1, Supplies: yes},
		}, 1},
		{"highest priority among eligible", []ProjectView{
			{Share: 1, PrioFetch: 2, Supplies: yes},
			{Share: 1, PrioFetch: 7, Supplies: yes, BackoffUntil: backedOff},
			{Share: 1, PrioFetch: 5, Supplies: yes},
		}, 2},
	}
	for _, tc := range cases {
		if got := bestProject(Input{Projects: tc.projects}, host.CPU); got != tc.want {
			t.Errorf("%s: bestProject = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestSpreadDiffersFromOrigAndHysteresis feeds the same rrsim.Result to
// all three policies and checks JF-SPREAD matches neither: it sizes
// like JF-ORIG (share slice, but of the max-horizon shortfall) and
// triggers like JF-HYSTERESIS.
func TestSpreadDiffersFromOrigAndHysteresis(t *testing.T) {
	projects := []ProjectView{cpuProject(1, 10), cpuProject(3, 5)}

	// Drained queue: SAT < min_queue, both shortfalls positive. All
	// three fetch from project 0, but each requests a different amount.
	in := Input{
		Hardware: hwCPU(2), RR: rrWith(1000, 4000, 500, 1),
		MinQueue: 1000, MaxQueue: 2000,
		Projects: projects,
	}
	orig := Decide(JFOrig, in)
	hyst := Decide(JFHysteresis, in)
	spread := Decide(JFSpread, in)
	for name, p := range map[string]Plan{"orig": orig, "hyst": hyst, "spread": spread} {
		if p.None() || p.Project != 0 {
			t.Fatalf("%s: plan = %+v, want RPC to project 0", name, p)
		}
	}
	if got := orig.Requests[0].Seconds; math.Abs(got-250) > 1e-9 {
		t.Errorf("JF-ORIG requested %v, want 250 (¼ of min-horizon 1000)", got)
	}
	if got := hyst.Requests[0].Seconds; got != 4000 {
		t.Errorf("JF-HYSTERESIS requested %v, want 4000 (full max-horizon)", got)
	}
	if got := spread.Requests[0].Seconds; math.Abs(got-1000) > 1e-9 {
		t.Errorf("JF-SPREAD requested %v, want 1000 (¼ of max-horizon 4000)", got)
	}

	// Saturated-but-leaky queue: SAT ≥ min_queue with positive min
	// shortfall. JF-ORIG tops up; the hysteresis trigger shared by
	// JF-HYSTERESIS and JF-SPREAD holds off.
	in.RR = rrWith(1000, 4000, 1500, 0)
	if p := Decide(JFOrig, in); p.None() {
		t.Error("JF-ORIG should top up on min-horizon shortfall")
	}
	if p := Decide(JFHysteresis, in); !p.None() {
		t.Errorf("JF-HYSTERESIS fetched while saturated: %+v", p)
	}
	if p := Decide(JFSpread, in); !p.None() {
		t.Errorf("JF-SPREAD fetched while saturated: %+v", p)
	}
}
