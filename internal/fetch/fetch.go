// Package fetch implements the client's job-fetch policies (paper §3.4):
//
//   - JF-ORIG: whenever the round-robin simulation shows a shortfall
//     within the min_queue horizon for some processor type, ask the
//     highest-fetch-priority project supplying that type for its
//     share-weighted slice of the shortfall.
//   - JF-HYSTERESIS: wait until a processor type's saturated period
//     drops below min_queue, then ask the single highest-priority
//     project for the whole shortfall up to max_queue.
//
// The two differ in trigger (top-up vs hysteresis) and in how the
// request is divided (share-split vs single project), which drives the
// paper's Figure 5 result: fewer, larger RPCs under hysteresis.
package fetch

import (
	"fmt"

	"bce/internal/host"
	"bce/internal/project"
	"bce/internal/rrsim"
)

// PolicyKind selects a job-fetch policy.
type PolicyKind int

const (
	// JFOrig is the original top-up policy.
	JFOrig PolicyKind = iota
	// JFHysteresis is the hysteresis policy.
	JFHysteresis
	// JFSpread is a hybrid explored as one of the paper's §6.2 "other
	// policy alternatives": it triggers like JF-HYSTERESIS (wait until
	// SAT(T) < min_queue) but sizes the request like JF-ORIG (the top
	// project gets only its share-weighted slice of the shortfall), so
	// refills are infrequent but spread across projects over successive
	// RPCs — trading some of hysteresis's RPC savings for less
	// monotony.
	JFSpread
)

// String returns the paper's name for the policy.
func (p PolicyKind) String() string {
	switch p {
	case JFOrig:
		return "JF-ORIG"
	case JFHysteresis:
		return "JF-HYSTERESIS"
	case JFSpread:
		return "JF-SPREAD"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(p))
}

// Supplier reports the static supplies-type property of a project:
// whether it has applications using a processor type. *project.Server
// implements it directly.
type Supplier interface {
	SuppliesType(t host.ProcType) bool
}

// ProjectView is what the fetch policy may know about one project when
// deciding whom to ask for work. It is a plain value — the dynamic
// per-decision state is two floats — so callers can keep a view slice
// alive across decisions and update it in place instead of building
// per-call closures on the emulator's hot path.
type ProjectView struct {
	Share     float64
	PrioFetch float64
	// BackoffUntil is the absolute time before which the project may
	// not be asked for work (RPC backoff / retry spacing); zero means
	// askable now.
	BackoffUntil float64
	// Supplies gates both fetch eligibility and share-splitting; a nil
	// Supplies makes the project unfetchable.
	Supplies Supplier
}

// fetchable reports whether the project can be asked for type-t jobs
// at time now (supplies the type, not backed off).
func (v ProjectView) fetchable(t host.ProcType, now float64) bool {
	return v.Supplies != nil && now >= v.BackoffUntil && v.Supplies.SuppliesType(t)
}

// Input is one fetch decision's context.
type Input struct {
	Now      float64
	Hardware *host.Hardware
	RR       *rrsim.Result
	MinQueue float64
	MaxQueue float64
	Projects []ProjectView
}

// Plan is the outcome: issue one scheduler RPC to Project with the
// given per-type requests, or no RPC (Project < 0).
type Plan struct {
	Project  int
	Requests []project.Request
}

// None reports whether the plan is "do nothing".
func (p Plan) None() bool { return p.Project < 0 }

// Decide runs the policy. At most one RPC is planned per call (the
// client's scheduler RPC loop issues one at a time, like BOINC's).
func Decide(kind PolicyKind, in Input) Plan {
	switch kind {
	case JFHysteresis:
		return decideHysteresis(in)
	case JFSpread:
		return decideSpread(in)
	default:
		return decideOrig(in)
	}
}

// bestProject returns the fetchable project with the highest fetch
// priority for type t, or -1.
func bestProject(in Input, t host.ProcType) int {
	best := -1
	for p, v := range in.Projects {
		if v.Share <= 0 || !v.fetchable(t, in.Now) {
			continue
		}
		if best < 0 || v.PrioFetch > in.Projects[best].PrioFetch {
			best = p
		}
	}
	return best
}

// shareFrac returns project p's resource share among projects that
// supply type t ("X" in the paper's JF-ORIG description).
func shareFrac(in Input, p int, t host.ProcType) float64 {
	var sum float64
	for _, v := range in.Projects {
		if v.Share > 0 && v.Supplies != nil && v.Supplies.SuppliesType(t) {
			sum += v.Share
		}
	}
	if sum <= 0 {
		return 0
	}
	return in.Projects[p].Share / sum
}

func decideOrig(in Input) Plan {
	// "if, for a given processor type T, SHORTFALL(T) > 0, then let P
	// be the project with jobs of type T for which PRIO_fetch(P) is
	// greatest. Request X*SHORTFALL(T) instance-seconds."
	// JF-ORIG's shortfall is measured over the min_queue horizon.
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if in.Hardware.Proc[t].Count == 0 {
			continue
		}
		sf := in.RR.ShortfallMin[t]
		if sf <= 1e-9 {
			continue
		}
		p := bestProject(in, t)
		if p < 0 {
			continue
		}
		x := shareFrac(in, p, t)
		if x <= 0 {
			continue
		}
		return Plan{Project: p, Requests: []project.Request{{
			Type:      t,
			Instances: in.RR.IdleNow[t],
			Seconds:   x * sf,
		}}}
	}
	return Plan{Project: -1}
}

func decideHysteresis(in Input) Plan {
	// "if, for a processor type T, SAT(T) < min_secs, then let P be the
	// project with jobs of type T for which PRIO_fetch(P) is greatest.
	// Request SHORTFALL(T) instance-seconds." Shortfall here is over
	// the max_queue horizon, producing the hysteresis band.
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if in.Hardware.Proc[t].Count == 0 {
			continue
		}
		if in.RR.Saturated[t] >= in.MinQueue {
			continue
		}
		sf := in.RR.ShortfallMax[t]
		if sf <= 1e-9 {
			continue
		}
		p := bestProject(in, t)
		if p < 0 {
			continue
		}
		return Plan{Project: p, Requests: []project.Request{{
			Type:      t,
			Instances: in.RR.IdleNow[t],
			Seconds:   sf,
		}}}
	}
	return Plan{Project: -1}
}

func decideSpread(in Input) Plan {
	// Hysteresis trigger, share-split request: refills start only when
	// the queue drains below min_queue, but each RPC asks the top
	// project for just its share slice of the max-horizon shortfall.
	for t := host.ProcType(0); t < host.NumProcTypes; t++ {
		if in.Hardware.Proc[t].Count == 0 {
			continue
		}
		if in.RR.Saturated[t] >= in.MinQueue {
			continue
		}
		sf := in.RR.ShortfallMax[t]
		if sf <= 1e-9 {
			continue
		}
		p := bestProject(in, t)
		if p < 0 {
			continue
		}
		x := shareFrac(in, p, t)
		if x <= 0 {
			continue
		}
		return Plan{Project: p, Requests: []project.Request{{
			Type:      t,
			Instances: in.RR.IdleNow[t],
			Seconds:   x * sf,
		}}}
	}
	return Plan{Project: -1}
}
