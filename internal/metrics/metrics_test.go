package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"bce/internal/host"
	"bce/internal/job"
)

func hw1() *host.Hardware {
	h := host.StdHost(1, 1e9, 0, 0)
	return &h.Hardware
}

func mkTask(p int) *job.Task {
	return &job.Task{Project: p, Usage: job.Usage{AvgCPUs: 1},
		Duration: 100, EstDuration: 100, Deadline: 1e9}
}

func TestIdleFraction(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	r.OnAvailable(0, 1000)
	tk := mkTask(0)
	r.OnRun(0, 600, tk)
	m := r.Report()
	if math.Abs(m.IdleFraction-0.4) > 1e-9 {
		t.Fatalf("idle = %v, want 0.4", m.IdleFraction)
	}
	if m.UsedFLOPSsec != 600e9 || m.AvailFLOPSsec != 1000e9 {
		t.Fatalf("raw counters wrong: %+v", m)
	}
}

func TestIdleFractionNoCapacity(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	m := r.Report()
	if m.IdleFraction != 0 || m.WastedFraction != 0 {
		t.Fatal("no-capacity run should report zeros")
	}
}

func TestWastedOnMissedDeadline(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	r.OnAvailable(0, 1000)
	tk := mkTask(0)
	tk.MissedDeadline = true
	r.OnRun(0, 500, tk)
	r.OnComplete(tk)
	m := r.Report()
	if math.Abs(m.WastedFraction-0.5) > 1e-9 {
		t.Fatalf("wasted = %v, want 0.5", m.WastedFraction)
	}
	if m.MissedJobs != 1 || m.CompletedJobs != 1 {
		t.Fatalf("counters wrong: %+v", m)
	}
}

func TestOnTimeJobNotWasted(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	r.OnAvailable(0, 1000)
	tk := mkTask(0)
	r.OnRun(0, 500, tk)
	r.OnComplete(tk)
	if m := r.Report(); m.WastedFraction != 0 || m.MissedJobs != 0 {
		t.Fatalf("on-time job wasted: %+v", m)
	}
}

func TestLostWorkIsWaste(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	r.OnAvailable(0, 1000)
	tk := mkTask(0)
	r.OnRun(0, 300, tk)
	r.OnLostWork(tk, 100)
	m := r.Report()
	if math.Abs(m.WastedFraction-0.1) > 1e-9 {
		t.Fatalf("wasted = %v, want 0.1 (lost work)", m.WastedFraction)
	}
	if m.LostFLOPSsec != 100e9 {
		t.Fatalf("lost = %v, want 100e9", m.LostFLOPSsec)
	}
}

// A checkpoint-less job that is preempted (losing its progress) and
// later misses its deadline executes some FLOPS-seconds exactly once,
// so they must be wasted exactly once: the lost portion is inside the
// task's usage tally AND reported via OnLostWork, and must not be
// summed twice into WastedFLOPSsec.
func TestPreemptedMissedJobWastedOnce(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	r.OnAvailable(0, 2000)
	tk := mkTask(0)
	tk.MissedDeadline = true
	// Runs 300 s, is preempted without a checkpoint (all 300 s lost),
	// then re-executes the full 100+300 = 400 s... keep it simple:
	// 300 s executed and lost, then 100 s executed to completion.
	r.OnRun(0, 300, tk)
	r.OnLostWork(tk, 300)
	r.OnRun(300, 400, tk)
	r.OnComplete(tk)
	m := r.Report()
	// 400 s executed in total at 1 GFLOPS — all of it waste, once.
	if m.WastedFLOPSsec != 400e9 {
		t.Fatalf("WastedFLOPSsec = %v, want 400e9 (counted once)", m.WastedFLOPSsec)
	}
	if m.WastedFLOPSsec > m.UsedFLOPSsec {
		t.Fatalf("wasted %v exceeds used %v", m.WastedFLOPSsec, m.UsedFLOPSsec)
	}
	if m.LostFLOPSsec != 300e9 {
		t.Fatalf("LostFLOPSsec = %v, want 300e9", m.LostFLOPSsec)
	}
	if math.Abs(m.WastedFraction-0.2) > 1e-9 {
		t.Fatalf("wasted fraction = %v, want 400/2000", m.WastedFraction)
	}
}

// Lost work on a job that then completes on time is still waste (the
// re-executed portion was paid for twice), but only the lost portion.
func TestLostWorkOnTimeJobWastedOnce(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	r.OnAvailable(0, 2000)
	tk := mkTask(0)
	r.OnRun(0, 50, tk)
	r.OnLostWork(tk, 50)
	r.OnRun(50, 150, tk) // redo + finish on time
	r.OnComplete(tk)
	m := r.Report()
	if m.WastedFLOPSsec != 50e9 {
		t.Fatalf("WastedFLOPSsec = %v, want 50e9 (lost portion only)", m.WastedFLOPSsec)
	}
}

func TestShareViolationPerfect(t *testing.T) {
	r := New(hw1(), []float64{1, 1}, 0)
	r.OnAvailable(0, 1000)
	r.OnRun(0, 500, mkTask(0))
	r.OnRun(500, 1000, mkTask(1))
	if m := r.Report(); m.ShareViolation > 1e-9 {
		t.Fatalf("violation = %v, want 0 for perfect split", m.ShareViolation)
	}
}

func TestShareViolationTotal(t *testing.T) {
	r := New(hw1(), []float64{1, 1}, 0)
	r.OnAvailable(0, 1000)
	r.OnRun(0, 1000, mkTask(0)) // project 1 starved
	m := r.Report()
	if math.Abs(m.ShareViolation-0.5) > 1e-9 {
		t.Fatalf("violation = %v, want RMS(0.5,-0.5) = 0.5", m.ShareViolation)
	}
}

func TestMonotonyAlternating(t *testing.T) {
	r := New(hw1(), []float64{1, 1}, 0)
	r.SetWindow(100)
	// Alternate projects every window: each window is single-project.
	for w := 0; w < 10; w++ {
		t0 := float64(w) * 100
		r.OnRun(t0, t0+100, mkTask(w%2))
	}
	m := r.Report()
	if math.Abs(m.Monotony-1) > 1e-9 {
		t.Fatalf("monotony = %v, want 1 (one project at a time)", m.Monotony)
	}
}

func TestMonotonyMixed(t *testing.T) {
	r := New(hw1(), []float64{1, 1}, 0)
	r.SetWindow(100)
	// Both projects evenly in every window.
	for w := 0; w < 10; w++ {
		t0 := float64(w) * 100
		r.OnRun(t0, t0+100, mkTask(0))
		r.OnRun(t0, t0+100, mkTask(1))
	}
	m := r.Report()
	if m.Monotony > 1e-9 {
		t.Fatalf("monotony = %v, want 0 (perfectly mixed)", m.Monotony)
	}
}

func TestMonotonySingleProjectZero(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	r.OnRun(0, 1000, mkTask(0))
	if m := r.Report(); m.Monotony != 0 {
		t.Fatalf("monotony with one project = %v, want 0", m.Monotony)
	}
}

func TestRunSpanningWindows(t *testing.T) {
	r := New(hw1(), []float64{1, 1}, 0)
	r.SetWindow(100)
	// One run crosses three windows.
	r.OnRun(50, 250, mkTask(0))
	r.OnRun(0, 300, mkTask(1))
	m := r.Report()
	// Window 0: p0 50, p1 100 → max 2/3; window 1: p0 100, p1 100 → 1/2;
	// window 2: p0 50, p1 100 → 2/3. Rescaled: (2/3-1/2)/(1/2)=1/3, 0, 1/3.
	want := (1.0/3 + 0 + 1.0/3) / 3
	if math.Abs(m.Monotony-want) > 1e-9 {
		t.Fatalf("monotony = %v, want %v", m.Monotony, want)
	}
}

func TestRPCsPerJob(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	for i := 0; i < 5; i++ {
		r.OnRPC()
	}
	for i := 0; i < 15; i++ {
		tk := mkTask(0)
		r.OnRun(0, 1, tk)
		r.OnComplete(tk)
	}
	m := r.Report()
	if math.Abs(m.RPCsPerJob-0.25) > 1e-9 {
		t.Fatalf("rpcs/job = %v, want 5/20", m.RPCsPerJob)
	}
	if m.RPCs != 5 || m.CompletedJobs != 15 {
		t.Fatalf("counters wrong: %+v", m)
	}
}

func TestValuesAndNames(t *testing.T) {
	m := Metrics{IdleFraction: 1, WastedFraction: 2, ShareViolation: 3, Monotony: 4, RPCsPerJob: 5}
	v := m.Values()
	if v != [5]float64{1, 2, 3, 4, 5} {
		t.Fatalf("Values() = %v", v)
	}
	n := Names()
	if n[0] != "idle" || n[4] != "rpcs_per_job" {
		t.Fatalf("Names() = %v", n)
	}
	if m.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestZeroLengthEventsIgnored(t *testing.T) {
	r := New(hw1(), []float64{1}, 0)
	r.OnAvailable(10, 10)
	r.OnRun(10, 10, mkTask(0))
	r.OnLostWork(mkTask(0), 0)
	m := r.Report()
	if m.UsedFLOPSsec != 0 || m.AvailFLOPSsec != 0 || m.WastedFLOPSsec != 0 {
		t.Fatalf("zero-length events counted: %+v", m)
	}
}

// Property: all five figures of merit stay in [0,1] for arbitrary
// event sequences.
func TestPropertyMetricsInRange(t *testing.T) {
	f := func(runs [10]uint16, missMask uint16, rpcs uint8) bool {
		r := New(hw1(), []float64{2, 1, 1}, 0)
		r.OnAvailable(0, 5000)
		now := 0.0
		for i, d := range runs {
			dt := float64(d % 500)
			tk := mkTask(i % 3)
			tk.MissedDeadline = missMask&(1<<uint(i)) != 0
			r.OnRun(now, now+dt, tk)
			r.OnComplete(tk)
			now += dt
		}
		for i := 0; i < int(rpcs%20); i++ {
			r.OnRPC()
		}
		m := r.Report()
		for _, v := range m.Values() {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
