// Package metrics accumulates the paper's five figures of merit
// (§4.2), each scaled to [0,1] where 0 is good:
//
//   - Idle fraction: available peak-FLOPS capacity left unused.
//   - Wasted fraction: capacity spent on jobs that missed their
//     deadline (the server reissues those, so all their processing is
//     waste) plus execution lost to preemption without a checkpoint.
//   - Resource-share violation: RMS over projects of the gap between
//     the share a project was due and the fraction of delivered
//     processing it received.
//   - Monotony: how much the host ran a single project for long
//     periods, measured per time window as the largest single-project
//     fraction of delivered processing, rescaled so 0 = perfectly
//     mixed and 1 = one project at a time.
//   - RPCs per job: scheduler RPC count scaled as rpcs/(rpcs+jobs).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/stats"
)

// DefaultWindow is the monotony window length in seconds.
const DefaultWindow = 3600

// Recorder accumulates events from one emulation run.
type Recorder struct {
	hw      *host.Hardware
	shares  []float64
	window  float64
	started float64

	availCapacity float64 // peak-FLOPS-seconds while computing allowed
	used          []float64
	usedByType    [][host.NumProcTypes]float64
	taskUsage     map[*job.Task]float64
	taskLost      map[*job.Task]float64
	wasted        float64
	lost          float64

	rpcs      int
	completed int
	missed    int

	windows map[int][]float64 // window index -> per-project usage
}

// New creates a recorder for a run starting at time start.
func New(hw *host.Hardware, shares []float64, start float64) *Recorder {
	return &Recorder{
		hw:         hw,
		shares:     shares,
		window:     DefaultWindow,
		started:    start,
		used:       make([]float64, len(shares)),
		usedByType: make([][host.NumProcTypes]float64, len(shares)),
		taskUsage:  make(map[*job.Task]float64),
		taskLost:   make(map[*job.Task]float64),
		windows:    make(map[int][]float64),
	}
}

// SetWindow overrides the monotony window (seconds).
func (r *Recorder) SetWindow(w float64) {
	if w > 0 {
		r.window = w
	}
}

// OnAvailable records that computing was allowed during [t0, t1]; the
// host's full peak FLOPS counts as available capacity for that span.
func (r *Recorder) OnAvailable(t0, t1 float64) {
	if t1 > t0 {
		r.availCapacity += r.hw.TotalPeakFLOPS() * (t1 - t0)
	}
}

// OnRun records that task tk executed during [t0, t1].
func (r *Recorder) OnRun(t0, t1 float64, tk *job.Task) {
	if t1 <= t0 {
		return
	}
	f := tk.Usage.PeakFLOPS(r.hw) * (t1 - t0)
	if tk.Project >= 0 && tk.Project < len(r.used) {
		r.used[tk.Project] += f
		dt := t1 - t0
		r.usedByType[tk.Project][host.CPU] += tk.Usage.AvgCPUs * r.hw.Proc[host.CPU].FLOPSPerInst * dt
		if tk.Usage.IsGPU() {
			r.usedByType[tk.Project][tk.Usage.GPUType] += tk.Usage.GPUUsage * r.hw.Proc[tk.Usage.GPUType].FLOPSPerInst * dt
		}
	}
	r.taskUsage[tk] += f

	// Split across monotony windows.
	w0 := int((t0 - r.started) / r.window)
	w1 := int((t1 - r.started) / r.window)
	for w := w0; w <= w1; w++ {
		lo := r.started + float64(w)*r.window
		hi := lo + r.window
		ov := math.Min(t1, hi) - math.Max(t0, lo)
		if ov <= 0 {
			continue
		}
		wa := r.windows[w]
		if wa == nil {
			wa = make([]float64, len(r.shares))
			r.windows[w] = wa
		}
		if tk.Project >= 0 && tk.Project < len(wa) {
			wa[tk.Project] += tk.Usage.PeakFLOPS(r.hw) * ov
		}
	}
}

// OnLostWork records execution discarded because a task was preempted
// past its last checkpoint (or the application never checkpoints).
func (r *Recorder) OnLostWork(tk *job.Task, seconds float64) {
	if seconds > 0 {
		f := seconds * tk.Usage.PeakFLOPS(r.hw)
		r.lost += f
		r.taskLost[tk] += f
	}
}

// OnComplete records a task finishing execution. All processing done
// for a deadline-missing task counts as wasted — except the portion
// already charged to lost work, which would otherwise be counted twice
// (once here via the task's usage tally, once via OnLostWork).
func (r *Recorder) OnComplete(tk *job.Task) {
	r.completed++
	if tk.MissedDeadline {
		r.missed++
		w := r.taskUsage[tk] - r.taskLost[tk]
		if w > 0 {
			r.wasted += w
		}
	}
	delete(r.taskUsage, tk)
	delete(r.taskLost, tk)
}

// OnRPC records one scheduler RPC.
func (r *Recorder) OnRPC() { r.rpcs++ }

// Metrics is the final report.
type Metrics struct {
	IdleFraction   float64
	WastedFraction float64
	ShareViolation float64
	Monotony       float64
	RPCsPerJob     float64

	// Raw counters for deeper analysis.
	RPCs           int
	CompletedJobs  int
	MissedJobs     int
	UsedFLOPSsec   float64
	WastedFLOPSsec float64
	LostFLOPSsec   float64
	AvailFLOPSsec  float64
	UsedByProject  []float64

	// UsedByProjectType splits each project's peak-FLOPS-seconds by
	// processor type (the paper's Figure 1 view of resource share).
	UsedByProjectType [][host.NumProcTypes]float64
}

// Values returns the five scaled figures of merit in paper order.
func (m Metrics) Values() [5]float64 {
	return [5]float64{m.IdleFraction, m.WastedFraction, m.ShareViolation, m.Monotony, m.RPCsPerJob}
}

// Names returns the metric names in the same order as Values.
func Names() [5]string {
	return [5]string{"idle", "wasted", "share_violation", "monotony", "rpcs_per_job"}
}

// String formats the metrics as a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("idle=%.3f wasted=%.3f viol=%.3f mono=%.3f rpc=%.3f (jobs=%d missed=%d rpcs=%d)",
		m.IdleFraction, m.WastedFraction, m.ShareViolation, m.Monotony, m.RPCsPerJob,
		m.CompletedJobs, m.MissedJobs, m.RPCs)
}

// Report computes the figures of merit at the end of a run.
func (r *Recorder) Report() Metrics {
	m := Metrics{
		RPCs:           r.rpcs,
		CompletedJobs:  r.completed,
		MissedJobs:     r.missed,
		WastedFLOPSsec: r.wasted + r.lost,
		LostFLOPSsec:   r.lost,
		AvailFLOPSsec:  r.availCapacity,
		UsedByProject:  append([]float64(nil), r.used...),
		UsedByProjectType: append([][host.NumProcTypes]float64(nil),
			r.usedByType...),
	}
	var total float64
	for _, u := range r.used {
		total += u
	}
	m.UsedFLOPSsec = total

	if r.availCapacity > 0 {
		m.IdleFraction = stats.Clamp01(1 - total/r.availCapacity)
		m.WastedFraction = stats.Clamp01((r.wasted + r.lost) / r.availCapacity)
	}

	// Share violation: RMS over projects of shareFrac − usedFrac.
	var shareSum float64
	for _, s := range r.shares {
		shareSum += s
	}
	if total > 0 && shareSum > 0 && len(r.shares) > 0 {
		var rms stats.RMS
		for p, s := range r.shares {
			rms.Add(s/shareSum - r.used[p]/total)
		}
		m.ShareViolation = stats.Clamp01(rms.Value())
	}

	// Monotony: mean over windows of the rescaled max project fraction.
	// Windows are visited in time order so the floating-point mean is
	// reproducible (map order would perturb the last few bits).
	n := len(r.shares)
	if n >= 2 {
		keys := make([]int, 0, len(r.windows))
		for k := range r.windows { //bce:unordered collecting keys to sort just below
			keys = append(keys, k)
		}
		sort.Ints(keys)
		var mono stats.Mean
		for _, k := range keys {
			wa := r.windows[k]
			var wtotal, wmax float64
			for _, u := range wa {
				wtotal += u
				if u > wmax {
					wmax = u
				}
			}
			if wtotal <= 0 {
				continue
			}
			frac := wmax / wtotal
			mono.Add((frac - 1/float64(n)) / (1 - 1/float64(n)))
		}
		if mono.N() > 0 {
			m.Monotony = stats.Clamp01(mono.Mean())
		}
	}

	if r.rpcs+r.completed > 0 {
		m.RPCsPerJob = float64(r.rpcs) / float64(r.rpcs+r.completed)
	}
	return m
}
