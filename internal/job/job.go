// Package job models BOINC jobs as seen by the client: device usage
// (possibly fractional CPUs and GPU instances), true and estimated
// durations, deadlines derived from the project latency bound, and the
// checkpoint/restart behaviour that determines how much progress is lost
// on preemption.
package job

import (
	"fmt"

	"bce/internal/host"
	"bce/internal/invariant"
)

// State is a task's lifecycle state on the client.
type State int

const (
	// Queued means downloaded, not yet started.
	Queued State = iota
	// Running means currently executing.
	Running
	// Preempted means started, currently suspended.
	Preempted
	// Done means execution finished (possibly past the deadline).
	Done
	// Reported means the completion has been reported to the server.
	Reported
	// Downloading means the task's input files are still in transfer;
	// it cannot run yet (file-transfer extension, paper §6.2).
	Downloading
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Preempted:
		return "preempted"
	case Done:
		return "done"
	case Reported:
		return "reported"
	case Downloading:
		return "downloading"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Usage describes the processing resources one job occupies while
// running (paper §2.3). GPUUsage applies to GPUType and may be
// fractional; AvgCPUs may also be fractional (e.g. the CPU thread
// feeding a GPU kernel).
type Usage struct {
	AvgCPUs  float64
	GPUType  host.ProcType // host.CPU when the job uses no GPU
	GPUUsage float64       // instances of GPUType; 0 for CPU jobs
	MemBytes float64       // working set size
}

// Type returns the processor type the job is scheduled against: its GPU
// type for GPU jobs, otherwise CPU. The paper calls jobs with GPUUsage>0
// "GPU jobs".
func (u Usage) Type() host.ProcType {
	if u.IsGPU() {
		return u.GPUType
	}
	return host.CPU
}

// IsGPU reports whether the job uses a coprocessor.
func (u Usage) IsGPU() bool { return u.GPUUsage > 0 && u.GPUType.IsGPU() }

// Instances returns the number of instances of the scheduled type the
// job occupies (AvgCPUs for CPU jobs, GPUUsage for GPU jobs).
func (u Usage) Instances() float64 {
	if u.IsGPU() {
		return u.GPUUsage
	}
	return u.AvgCPUs
}

// PeakFLOPS returns the peak FLOPS of the devices the job occupies on
// hw; this weights accounting and the figures of merit.
func (u Usage) PeakFLOPS(hw *host.Hardware) float64 {
	f := u.AvgCPUs * hw.Proc[host.CPU].FLOPSPerInst
	if u.IsGPU() {
		f += u.GPUUsage * hw.Proc[u.GPUType].FLOPSPerInst
	}
	return f
}

// Validate reports structural problems with the usage.
func (u Usage) Validate() error {
	if u.AvgCPUs < 0 || u.GPUUsage < 0 {
		return fmt.Errorf("job: negative device usage %+v", u)
	}
	if u.AvgCPUs == 0 && u.GPUUsage == 0 {
		return fmt.Errorf("job: uses no devices")
	}
	if u.GPUUsage > 0 && !u.GPUType.IsGPU() {
		return fmt.Errorf("job: GPUUsage %v with non-GPU type %v", u.GPUUsage, u.GPUType)
	}
	return nil
}

// Task is one job instance held by the client.
type Task struct {
	Name    string
	Project int // index of the owning project in the scenario
	Usage   Usage

	// Duration is the true wall-clock seconds of execution the task
	// needs with its full device allocation. EstDuration is the a
	// priori estimate the server and client plan with; it differs from
	// Duration when the scenario injects estimate errors.
	Duration    float64
	EstDuration float64

	ReceivedAt float64 // when the client got the task
	Deadline   float64 // ReceivedAt + project latency bound

	// CheckpointPeriod is the seconds of execution between checkpoints;
	// <= 0 means the application never checkpoints (all progress is
	// lost when the task is preempted out of memory).
	CheckpointPeriod float64

	// InputBytes/OutputBytes are the job's file sizes; with a finite
	// link speed the task must download its inputs before running and
	// upload its outputs before it can be reported.
	InputBytes  float64
	OutputBytes float64

	State          State
	Work           float64 // seconds of execution completed
	Checkpointed   float64 // seconds of execution saved by the last checkpoint
	StartedAt      float64 // last time it entered Running
	StartWork      float64 // Work when it last entered Running
	CompletedAt    float64 // when Work reached Duration
	MissedDeadline bool
	EverRan        bool

	// DeadlineFlagged latches the round-robin simulation's endangered
	// verdict: once a task has been classified deadline-endangered it
	// stays promoted until it finishes. Without the latch the
	// classification flips at the deadline boundary (running the job
	// makes it look safe, so it is preempted and becomes endangered
	// again), and the resulting thrash makes the job miss by seconds.
	DeadlineFlagged bool
}

// Remaining returns the seconds of execution still needed.
func (t *Task) Remaining() float64 {
	r := t.Duration - t.Work
	if r < 0 {
		return 0
	}
	return r
}

// EstRemaining returns the estimated seconds of execution still needed,
// scaling the remaining fraction by the estimated duration. The client
// plans (round-robin simulation, work fetch) with estimates, not truth.
func (t *Task) EstRemaining() float64 {
	if t.Duration <= 0 {
		return 0
	}
	frac := 1 - t.Work/t.Duration
	if frac < 0 {
		frac = 0
	}
	return frac * t.EstDuration
}

// FractionDone returns completed fraction in [0,1].
func (t *Task) FractionDone() float64 {
	if t.Duration <= 0 {
		return 1
	}
	f := t.Work / t.Duration
	if f > 1 {
		return 1
	}
	return f
}

// Start marks the task running at time now.
func (t *Task) Start(now float64) {
	t.State = Running
	t.StartedAt = now
	t.StartWork = t.Work
	t.EverRan = true
}

// CheckpointedSinceStart reports whether the task has reached a
// checkpoint during its current run session. The scheduler protects
// running tasks only until their first checkpoint (paper §3.3:
// "running jobs that have not checkpointed yet have precedence") —
// after that, preempting them loses at most one checkpoint period.
func (t *Task) CheckpointedSinceStart() bool {
	return t.Checkpointed > t.StartWork
}

// Advance credits dt seconds of execution to a running task, rolling
// the checkpoint forward to the last checkpoint boundary passed. It
// returns true if the task completed.
func (t *Task) Advance(dt float64, now float64) bool {
	if t.State != Running || dt < 0 {
		return false
	}
	t.Work += dt
	if invariant.Enabled {
		invariant.Check(t.Work >= 0,
			"job %s: negative completed work %v after advancing %v", t.Name, t.Work, dt)
		invariant.Check(t.Work <= t.Duration+dt,
			"job %s: work %v overran duration %v by more than the step %v", t.Name, t.Work, t.Duration, dt)
	}
	if t.CheckpointPeriod > 0 {
		// Checkpoints happen every CheckpointPeriod seconds of
		// execution; progress saved is the last boundary crossed.
		n := int(t.Work / t.CheckpointPeriod)
		cp := float64(n) * t.CheckpointPeriod
		if cp > t.Checkpointed {
			t.Checkpointed = cp
		}
	}
	if t.Work >= t.Duration-1e-9 {
		t.Work = t.Duration
		t.Checkpointed = t.Duration
		t.State = Done
		t.CompletedAt = now
		if now > t.Deadline {
			t.MissedDeadline = true
		}
		return true
	}
	if invariant.Enabled {
		invariant.Check(t.Checkpointed <= t.Work,
			"job %s: checkpoint %v ahead of work %v", t.Name, t.Checkpointed, t.Work)
	}
	return false
}

// Preempt suspends a running task. If removeFromMemory is true (the
// client is not keeping suspended tasks in RAM), execution since the
// last checkpoint is lost; the loss in seconds is returned.
func (t *Task) Preempt(removeFromMemory bool) (lost float64) {
	if t.State != Running {
		return 0
	}
	t.State = Preempted
	if removeFromMemory {
		lost = t.Work - t.Checkpointed
		if lost < 0 {
			lost = 0
		}
		t.Work = t.Checkpointed
	}
	return lost
}

// SinceCheckpoint returns the seconds of execution at risk (done but not
// yet checkpointed). The scheduler gives running tasks that have not
// reached a checkpoint precedence, to avoid wasting this work.
func (t *Task) SinceCheckpoint() float64 {
	d := t.Work - t.Checkpointed
	if d < 0 {
		return 0
	}
	return d
}

// Finished reports whether execution is complete.
func (t *Task) Finished() bool { return t.State == Done || t.State == Reported }

// Validate reports structural problems with the task.
func (t *Task) Validate() error {
	if err := t.Usage.Validate(); err != nil {
		return fmt.Errorf("task %s: %w", t.Name, err)
	}
	if t.Duration <= 0 {
		return fmt.Errorf("task %s: duration %v must be positive", t.Name, t.Duration)
	}
	if t.EstDuration <= 0 {
		return fmt.Errorf("task %s: estimated duration %v must be positive", t.Name, t.EstDuration)
	}
	if t.Deadline < t.ReceivedAt {
		return fmt.Errorf("task %s: deadline %v before receipt %v", t.Name, t.Deadline, t.ReceivedAt)
	}
	return nil
}
