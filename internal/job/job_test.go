package job

import (
	"math"
	"testing"
	"testing/quick"

	"bce/internal/host"
)

func cpuTask() *Task {
	return &Task{
		Name:             "t1",
		Usage:            Usage{AvgCPUs: 1},
		Duration:         1000,
		EstDuration:      1000,
		Deadline:         2000,
		CheckpointPeriod: 60,
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		Queued: "queued", Running: "running", Preempted: "preempted",
		Done: "done", Reported: "reported", State(42): "State(42)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestUsageType(t *testing.T) {
	cpu := Usage{AvgCPUs: 2}
	if cpu.Type() != host.CPU || cpu.IsGPU() || cpu.Instances() != 2 {
		t.Fatalf("CPU usage misclassified: %+v", cpu)
	}
	gpu := Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 0.5}
	if gpu.Type() != host.NvidiaGPU || !gpu.IsGPU() || gpu.Instances() != 0.5 {
		t.Fatalf("GPU usage misclassified: %+v", gpu)
	}
}

func TestUsagePeakFLOPS(t *testing.T) {
	h := host.StdHost(4, 10e9, 1, 100e9)
	gpu := Usage{AvgCPUs: 0.5, GPUType: host.NvidiaGPU, GPUUsage: 1}
	if got := gpu.PeakFLOPS(&h.Hardware); got != 105e9 {
		t.Fatalf("PeakFLOPS = %v, want 105e9", got)
	}
	cpu := Usage{AvgCPUs: 2}
	if got := cpu.PeakFLOPS(&h.Hardware); got != 20e9 {
		t.Fatalf("PeakFLOPS = %v, want 20e9", got)
	}
}

func TestUsageValidate(t *testing.T) {
	bad := []Usage{
		{},
		{AvgCPUs: -1},
		{AvgCPUs: 1, GPUUsage: -0.5, GPUType: host.NvidiaGPU},
		{GPUUsage: 1, GPUType: host.CPU}, // GPU usage with CPU type
	}
	for i, u := range bad {
		if u.Validate() == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, u)
		}
	}
	if (Usage{AvgCPUs: 1}).Validate() != nil {
		t.Fatal("Validate rejected plain CPU usage")
	}
	if (Usage{AvgCPUs: 0.2, GPUType: host.AtiGPU, GPUUsage: 1}).Validate() != nil {
		t.Fatal("Validate rejected ATI GPU usage")
	}
}

func TestAdvanceToCompletion(t *testing.T) {
	tk := cpuTask()
	tk.Start(0)
	if done := tk.Advance(999, 999); done {
		t.Fatal("task completed early")
	}
	if done := tk.Advance(1, 1000); !done {
		t.Fatal("task did not complete at full duration")
	}
	if tk.State != Done || tk.CompletedAt != 1000 || tk.MissedDeadline {
		t.Fatalf("completion state wrong: %+v", tk)
	}
	if tk.Remaining() != 0 || tk.FractionDone() != 1 {
		t.Fatal("remaining/fraction wrong after completion")
	}
}

func TestMissedDeadline(t *testing.T) {
	tk := cpuTask()
	tk.Start(0)
	tk.Advance(1000, 3000) // completes at t=3000, deadline 2000
	if !tk.MissedDeadline {
		t.Fatal("completion after deadline not flagged")
	}
}

func TestCheckpointRollforward(t *testing.T) {
	tk := cpuTask() // checkpoint every 60 s
	tk.Start(0)
	tk.Advance(150, 150)
	if tk.Checkpointed != 120 {
		t.Fatalf("Checkpointed = %v, want 120 (last 60 s boundary)", tk.Checkpointed)
	}
	if got := tk.SinceCheckpoint(); got != 30 {
		t.Fatalf("SinceCheckpoint = %v, want 30", got)
	}
}

func TestPreemptLosesUncheckpointedWork(t *testing.T) {
	tk := cpuTask()
	tk.Start(0)
	tk.Advance(150, 150)
	lost := tk.Preempt(true)
	if lost != 30 {
		t.Fatalf("lost = %v, want 30", lost)
	}
	if tk.Work != 120 || tk.State != Preempted {
		t.Fatalf("post-preempt state wrong: work=%v state=%v", tk.Work, tk.State)
	}
}

func TestPreemptLeaveInMemory(t *testing.T) {
	tk := cpuTask()
	tk.Start(0)
	tk.Advance(150, 150)
	if lost := tk.Preempt(false); lost != 0 {
		t.Fatalf("leave-in-memory preempt lost %v, want 0", lost)
	}
	if tk.Work != 150 {
		t.Fatalf("work = %v, want 150", tk.Work)
	}
}

func TestNeverCheckpointingApp(t *testing.T) {
	tk := cpuTask()
	tk.CheckpointPeriod = 0 // extension: app never checkpoints
	tk.Start(0)
	tk.Advance(700, 700)
	if lost := tk.Preempt(true); lost != 700 {
		t.Fatalf("non-checkpointing app lost %v, want all 700", lost)
	}
	if tk.Work != 0 {
		t.Fatalf("work = %v, want 0", tk.Work)
	}
}

func TestPreemptNotRunningNoop(t *testing.T) {
	tk := cpuTask()
	if lost := tk.Preempt(true); lost != 0 || tk.State != Queued {
		t.Fatal("preempting a queued task should be a no-op")
	}
}

func TestAdvanceIgnoredWhenNotRunning(t *testing.T) {
	tk := cpuTask()
	if tk.Advance(100, 100) || tk.Work != 0 {
		t.Fatal("Advance on non-running task should do nothing")
	}
}

func TestEstRemainingScalesWithEstimate(t *testing.T) {
	tk := cpuTask()
	tk.EstDuration = 2000 // server thinks it's twice as long
	tk.Start(0)
	tk.Advance(500, 500) // half done
	if got := tk.EstRemaining(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("EstRemaining = %v, want 1000", got)
	}
}

func TestTaskValidate(t *testing.T) {
	good := cpuTask()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	cases := []func(*Task){
		func(tk *Task) { tk.Duration = 0 },
		func(tk *Task) { tk.EstDuration = 0 },
		func(tk *Task) { tk.Deadline = -1; tk.ReceivedAt = 0 },
		func(tk *Task) { tk.Usage = Usage{} },
	}
	for i, mutate := range cases {
		tk := cpuTask()
		mutate(tk)
		if tk.Validate() == nil {
			t.Fatalf("case %d: Validate accepted invalid task", i)
		}
	}
}

// Property: Work never exceeds Duration, Checkpointed never exceeds
// Work, and SinceCheckpoint is never negative, for any sequence of
// advances and preemptions.
func TestPropertyCheckpointInvariants(t *testing.T) {
	f := func(steps []uint16, preemptMask uint32) bool {
		tk := cpuTask()
		tk.Duration = 5000
		tk.EstDuration = 5000
		now := 0.0
		tk.Start(now)
		for i, s := range steps {
			if tk.Finished() {
				break
			}
			dt := float64(s % 500)
			now += dt
			tk.Advance(dt, now)
			if preemptMask&(1<<uint(i%32)) != 0 && !tk.Finished() {
				tk.Preempt(i%2 == 0)
				tk.Start(now)
			}
			if tk.Work > tk.Duration+1e-9 {
				return false
			}
			if tk.Checkpointed > tk.Work+1e-9 {
				return false
			}
			if tk.SinceCheckpoint() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
