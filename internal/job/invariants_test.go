//go:build bceinvariants

package job

import (
	"strings"
	"testing"
)

// TestAdvanceTripsNegativeWorkInvariant corrupts a task the way an
// accounting bug would (completed work driven negative) and proves the
// bceinvariants build actually fires the assertion instead of carrying
// the corruption forward into the figures of merit.
func TestAdvanceTripsNegativeWorkInvariant(t *testing.T) {
	task := &Task{Name: "corrupt", State: Running, Duration: 100, EstDuration: 100, Work: -5}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Advance on a negative-work task did not trip the invariant")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "bce: invariant violated") ||
			!strings.Contains(msg, "negative completed work") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	task.Advance(1, 10)
}

// TestAdvanceHealthyTaskPassesInvariants runs a well-formed task to
// completion under the invariant build: the checks must stay silent.
func TestAdvanceHealthyTaskPassesInvariants(t *testing.T) {
	task := &Task{Name: "ok", State: Running, Duration: 10, EstDuration: 10, CheckpointPeriod: 3, Deadline: 100}
	for i := 0; i < 10; i++ {
		if done := task.Advance(1, float64(i+1)); done != (i == 9) {
			t.Fatalf("step %d: done = %v", i, done)
		}
	}
}
