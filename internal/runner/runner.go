// Package runner is the emulator's parallel execution engine. The
// paper's whole method is *many* emulator runs — policy variants ×
// seeds × parameter sweeps, and Monte-Carlo host populations — and
// every run is an independent single-threaded discrete-event
// simulation, so the engine is a bounded worker pool that executes a
// batch of runs concurrently while keeping the results bit-identical
// to the sequential path:
//
//   - each run builds its own client.Config inside the worker (configs
//     hold live *host.Host pointers, so sharing one between runs would
//     race),
//   - results are collected by batch index, so downstream aggregation
//     happens in submission order regardless of completion order,
//   - a panic inside one run is recovered and surfaced as that run's
//     error instead of taking down the whole batch,
//   - the context is honored between batches of simulator events, so
//     cancellation and timeouts stop a batch promptly, and
//   - live progress counters (runs started/done, events simulated,
//     wall-clock rate) are published to an optional callback.
//
// All fan-out layers — harness, study, fleet, experiments, and the
// public bce batch API — sit on top of Batch.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"bce/internal/client"
)

// Spec describes one run in a batch. Make is called inside the worker
// executing the run and must return a freshly built configuration:
// configs hold live *host.Host pointers, and two runs sharing one
// would race. Make must not capture mutable state shared with other
// specs.
type Spec struct {
	Label string
	Make  func() (client.Config, error)
}

// RunResult is the outcome of one run of a batch. Exactly one of
// Result and Err is non-nil unless the run was skipped by
// cancellation, in which case Err wraps ErrSkipped.
type RunResult struct {
	Index  int
	Label  string
	Result *client.Result
	Err    error
}

// ErrSkipped marks batch entries that were never started because the
// batch was canceled first.
var ErrSkipped = errors.New("run skipped")

// PanicError is a panic recovered from one emulation run, surfaced as
// that run's error so a single bad configuration cannot take down a
// whole batch.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("emulation panicked: %v\n%s", e.Value, e.Stack)
}

// Progress is a snapshot of a batch in flight, published to the
// WithProgress callback after every run state change.
type Progress struct {
	Total   int           // runs in the batch
	Started int           // runs handed to a worker
	Done    int           // runs finished (including failed)
	Failed  int           // runs finished with an error
	Events  uint64        // simulator events dispatched by finished runs
	Elapsed time.Duration // wall clock since the batch began
}

// RunsPerSec is the wall-clock completion rate so far.
func (p Progress) RunsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Done) / p.Elapsed.Seconds()
}

// EventsPerSec is the wall-clock event simulation rate so far.
func (p Progress) EventsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Events) / p.Elapsed.Seconds()
}

// Options is the engine's one shared option set: every fan-out layer
// (harness, study, fleet, population, the public bce batch API, the
// CLIs) configures Batch through these knobs and no others. The zero
// value selects all defaults. Apply it with WithOptions, or field by
// field with the With* helpers; Resolve folds a helper list back into
// a struct when a caller needs to inspect the effective settings.
type Options struct {
	// Workers bounds the worker pool to that many concurrent runs.
	// Zero (or negative) selects the default, runtime.GOMAXPROCS(0).
	Workers int

	// Progress, when non-nil, receives a snapshot after every run
	// state change. It is invoked serially (never concurrently with
	// itself), so it need not be thread-safe, but it runs on worker
	// goroutines and should return quickly.
	Progress func(Progress)

	// FailFast makes the first run error cancel the rest of the
	// batch; Batch then returns that first error. Otherwise errors
	// are recorded per run and the batch keeps going.
	FailFast bool
}

// Option configures a Batch call; build one with WithOptions or the
// field helpers.
type Option func(*Options)

// WithOptions applies every set field of o at once — the struct form
// of the field helpers, for callers assembling settings from config.
// Zero fields leave the corresponding defaults untouched.
func WithOptions(o Options) Option {
	return func(dst *Options) {
		if o.Workers > 0 {
			dst.Workers = o.Workers
		}
		if o.Progress != nil {
			dst.Progress = o.Progress
		}
		if o.FailFast {
			dst.FailFast = true
		}
	}
}

// Resolve folds opts over the defaults and returns the effective
// option set — what Batch itself runs with (before clamping workers
// to the batch size).
func Resolve(opts ...Option) Options {
	o := Options{Workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithWorkers bounds the worker pool to n concurrent runs. The default
// is runtime.GOMAXPROCS(0); values below 1 are ignored.
func WithWorkers(n int) Option {
	return func(o *Options) {
		if n > 0 {
			o.Workers = n
		}
	}
}

// WithProgress installs a progress callback; see Options.Progress for
// the callback contract.
func WithProgress(fn func(Progress)) Option {
	return func(o *Options) { o.Progress = fn }
}

// WithFailFast makes the first run error cancel the rest of the batch;
// see Options.FailFast.
func WithFailFast(on bool) Option {
	return func(o *Options) { o.FailFast = on }
}

// DeriveSeed deterministically derives the i-th run's RNG seed from a
// base seed (a SplitMix64 step), decorrelating replicated runs without
// any shared generator state: the same (base, i) always yields the
// same seed, on any machine, with any worker count.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Run executes one configuration under ctx with panic recovery — the
// single-run form of Batch.
func Run(ctx context.Context, cfg client.Config) (res *client.Result, err error) {
	defer recoverPanic(&err)
	c, err := client.New(cfg)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx)
}

// Batch executes the specs on a bounded worker pool and returns one
// RunResult per spec, indexed like specs (so aggregating the results
// in order is deterministic for any worker count). The returned error
// is non-nil only when the whole batch stopped early: the context was
// canceled, or a run failed under WithFailFast. Per-run failures are
// otherwise reported in the results only.
func Batch(ctx context.Context, specs []Spec, opts ...Option) ([]RunResult, error) {
	o := Resolve(opts...)
	if o.Workers > len(specs) {
		o.Workers = len(specs)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}

	results := make([]RunResult, len(specs))
	for i := range results {
		results[i] = RunResult{Index: i, Label: specs[i].Label}
	}

	tracker := newProgressTracker(len(specs), o.Progress)

	bctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var failOnce sync.Once
	var failErr error

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				sp := specs[i]
				tracker.started()

				res, err := runSpec(bctx, sp)

				// Disjoint indices per run, published by wg.Wait —
				// results needs no lock.
				results[i].Result, results[i].Err = res, err
				tracker.finished(res, err)

				if err != nil && o.FailFast {
					failOnce.Do(func() {
						failErr = fmt.Errorf("runner: %s: %w", labelOf(sp, i), err)
						cancel(failErr)
					})
				}
			}
		}()
	}

feed:
	for i := range specs {
		select {
		case indices <- i:
		case <-bctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()

	// Mark entries that never ran.
	skipped := 0
	for i := range results {
		if results[i].Result == nil && results[i].Err == nil {
			results[i].Err = fmt.Errorf("%w: %w", ErrSkipped, context.Cause(bctx))
			skipped++
		}
	}

	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("runner: batch stopped after %d/%d runs: %w",
			len(specs)-skipped, len(specs), context.Cause(ctx))
	}
	if failErr != nil {
		return results, failErr
	}
	return results, nil
}

// progressTracker owns the batch's shared progress counters: the
// worker pool reports transitions through it, and it serializes the
// user's Progress callback (Options.Progress promises calls are never
// concurrent).
type progressTracker struct {
	callback func(Progress)
	start    time.Time

	mu   sync.Mutex
	prog Progress //bce:guardedby mu
}

func newProgressTracker(total int, callback func(Progress)) *progressTracker {
	return &progressTracker{
		callback: callback,
		start:    time.Now(), //bce:wallclock progress reporting shows real elapsed time
		prog:     Progress{Total: total},
	}
}

func (t *progressTracker) started() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.prog.Started++
	t.emitLocked()
}

func (t *progressTracker) finished(res *client.Result, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.prog.Done++
	if err != nil {
		t.prog.Failed++
	}
	if res != nil {
		t.prog.Events += res.Events
	}
	t.emitLocked()
}

// emitLocked snapshots the counters for the callback; callers hold mu.
func (t *progressTracker) emitLocked() {
	if t.callback == nil {
		return
	}
	p := t.prog
	p.Elapsed = time.Since(t.start) //bce:wallclock see newProgressTracker
	t.callback(p)
}

// runSpec executes one spec: fresh config, fresh client, panic
// recovery. The context is rechecked first so canceled batches drain
// their queue without starting work.
func runSpec(ctx context.Context, sp Spec) (res *client.Result, err error) {
	defer recoverPanic(&err)
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, fmt.Errorf("%w: %w", ErrSkipped, context.Cause(ctx))
	}
	cfg, err := sp.Make()
	if err != nil {
		return nil, err
	}
	c, err := client.New(cfg)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx)
}

func recoverPanic(err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

func labelOf(sp Spec, i int) string {
	if sp.Label != "" {
		return sp.Label
	}
	return fmt.Sprintf("run %d", i)
}
