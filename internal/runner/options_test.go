package runner

import (
	"runtime"
	"testing"
)

func TestResolveDefaults(t *testing.T) {
	o := Resolve()
	if want := runtime.GOMAXPROCS(0); o.Workers != want {
		t.Fatalf("default Workers: got %d, want %d", o.Workers, want)
	}
	if o.Progress != nil || o.FailFast {
		t.Fatalf("defaults should leave Progress nil and FailFast off: %+v", o)
	}
}

func TestResolveAppliesOptionsInOrder(t *testing.T) {
	o := Resolve(WithWorkers(2), WithFailFast(true), WithWorkers(7))
	if o.Workers != 7 || !o.FailFast {
		t.Fatalf("last option wins: %+v", o)
	}
}

func TestWithOptionsStructForm(t *testing.T) {
	var calls int
	o := Resolve(WithOptions(Options{
		Workers:  3,
		Progress: func(Progress) { calls++ },
		FailFast: true,
	}))
	if o.Workers != 3 || !o.FailFast || o.Progress == nil {
		t.Fatalf("struct form must carry every set field: %+v", o)
	}
	o.Progress(Progress{})
	if calls != 1 {
		t.Fatal("Progress callback not preserved")
	}
}

func TestWithOptionsZeroFieldsKeepDefaults(t *testing.T) {
	// An all-zero struct is a no-op: unset fields must not clobber the
	// resolved defaults (or earlier options).
	o := Resolve(WithWorkers(5), WithOptions(Options{}))
	if o.Workers != 5 {
		t.Fatalf("zero Workers must not override an earlier option: got %d", o.Workers)
	}
	if o = Resolve(WithOptions(Options{})); o.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("zero struct must keep the default worker count: got %d", o.Workers)
	}
}
