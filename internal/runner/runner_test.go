package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"bce/internal/client"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
)

// tinyConfig is a fast two-project scenario (~a simulated hour).
func tinyConfig(seed int64, duration float64) client.Config {
	h := host.StdHost(1, 1e9, 0, 0)
	h.Prefs.MinQueue = 600
	h.Prefs.MaxQueue = 1800
	app := project.AppSpec{
		Name: "app", Usage: job.Usage{AvgCPUs: 1, MemBytes: 1e8},
		MeanDuration: 300, LatencyBound: 86400, CheckpointPeriod: 60,
	}
	return client.Config{
		Host: h,
		Projects: []project.Spec{
			{Name: "a", Share: 100, Apps: []project.AppSpec{app}},
			{Name: "b", Share: 100, Apps: []project.AppSpec{app}},
		},
		Duration: duration,
		Seed:     seed,
	}
}

func tinySpecs(n int, duration float64) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		i := i
		specs[i] = Spec{
			Label: fmt.Sprintf("run%d", i),
			Make:  func() (client.Config, error) { return tinyConfig(int64(i+1), duration), nil },
		}
	}
	return specs
}

// Batch with several workers must produce results bit-identical to the
// sequential single-worker path, in spec order.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	specs := tinySpecs(6, 3600)
	seq, err := Batch(context.Background(), specs, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Batch(context.Background(), tinySpecs(6, 3600), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("run %d errored: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if par[i].Index != i || par[i].Label != specs[i].Label {
			t.Fatalf("run %d misindexed: %+v", i, par[i])
		}
		if !reflect.DeepEqual(seq[i].Result.Metrics, par[i].Result.Metrics) {
			t.Errorf("run %d metrics differ between 1 and 4 workers", i)
		}
		if seq[i].Result.Events != par[i].Result.Events {
			t.Errorf("run %d events differ: %d vs %d", i, seq[i].Result.Events, par[i].Result.Events)
		}
	}
}

// The pool must never run more specs at once than WithWorkers allows.
func TestBatchBoundsConcurrency(t *testing.T) {
	var mu sync.Mutex
	inFlight, peak := 0, 0
	specs := make([]Spec, 8)
	for i := range specs {
		i := i
		specs[i] = Spec{Make: func() (client.Config, error) {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return tinyConfig(int64(i), 600), nil
		}}
	}
	if _, err := Batch(context.Background(), specs, WithWorkers(2)); err != nil {
		t.Fatal(err)
	}
	if peak > 2 {
		t.Fatalf("observed %d concurrent runs with 2 workers", peak)
	}
}

// A panicking run must surface as that run's error, not kill the batch.
func TestBatchRecoversPanics(t *testing.T) {
	specs := tinySpecs(3, 600)
	specs[1].Make = func() (client.Config, error) { panic("boom") }
	results, err := Batch(context.Background(), specs, WithWorkers(2))
	if err != nil {
		t.Fatalf("batch error without fail-fast: %v", err)
	}
	var pe *PanicError
	if results[1].Err == nil || !errors.As(results[1].Err, &pe) {
		t.Fatalf("run 1: want PanicError, got %v", results[1].Err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value = %v", pe.Value)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("run %d should have survived the sibling panic: %v", i, results[i].Err)
		}
	}
}

// Fail-fast must cancel the rest of the batch and report the failure.
func TestBatchFailFast(t *testing.T) {
	specs := tinySpecs(16, 3600)
	specs[0].Make = func() (client.Config, error) { return client.Config{}, fmt.Errorf("bad config") }
	results, err := Batch(context.Background(), specs, WithWorkers(1), WithFailFast(true))
	if err == nil || !strings.Contains(err.Error(), "bad config") {
		t.Fatalf("want fail-fast error mentioning the cause, got %v", err)
	}
	skipped := 0
	for _, r := range results {
		if errors.Is(r.Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("fail-fast should have skipped the queued remainder")
	}
}

// Cancelling the batch context stops promptly and marks the remainder.
func TestBatchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	specs := make([]Spec, 32)
	for i := range specs {
		i := i
		specs[i] = Spec{Make: func() (client.Config, error) {
			started <- struct{}{}
			// Long enough that cancellation, not completion, ends it.
			return tinyConfig(int64(i), 365*86400), nil
		}}
	}
	go func() {
		<-started
		cancel()
	}()
	begin := time.Now()
	results, err := Batch(ctx, specs, WithWorkers(2))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if d := time.Since(begin); d > 30*time.Second {
		t.Fatalf("cancellation took %v; want prompt return", d)
	}
	for _, r := range results {
		if r.Err == nil && r.Result == nil {
			t.Fatalf("run %d has neither result nor error after cancel", r.Index)
		}
	}
}

// Progress must be monotonic and end with Done == Total.
func TestBatchProgress(t *testing.T) {
	var snaps []Progress
	_, err := Batch(context.Background(), tinySpecs(4, 600),
		WithWorkers(2), WithProgress(func(p Progress) { snaps = append(snaps, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 8 { // one per start + one per finish
		t.Fatalf("got %d progress snapshots, want 8", len(snaps))
	}
	last := Progress{}
	for _, p := range snaps {
		if p.Started < last.Started || p.Done < last.Done || p.Events < last.Events {
			t.Fatalf("progress went backwards: %+v after %+v", p, last)
		}
		if p.Total != 4 {
			t.Fatalf("total = %d", p.Total)
		}
		last = p
	}
	if last.Done != 4 || last.Failed != 0 || last.Events == 0 {
		t.Fatalf("final snapshot %+v", last)
	}
	if last.RunsPerSec() <= 0 || last.EventsPerSec() <= 0 {
		t.Errorf("rates not positive: %v runs/s, %v ev/s", last.RunsPerSec(), last.EventsPerSec())
	}
}

// DeriveSeed must be stable and collision-free over realistic fan-outs.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := make(map[int64]bool)
	for _, base := range []int64{0, 1, 42, -9} {
		for i := 0; i < 10000; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
}

// Run must honor an already-canceled context without starting.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, tinyConfig(1, 365*86400))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
