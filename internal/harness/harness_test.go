package harness

import (
	"bytes"
	"strings"
	"testing"

	"bce/internal/client"
	"bce/internal/fetch"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
	"bce/internal/sched"
)

func tinyConfig(seed int64) client.Config {
	h := host.StdHost(1, 1e9, 0, 0)
	h.Prefs.MinQueue = 600
	h.Prefs.MaxQueue = 1800
	return client.Config{
		Host: h,
		Projects: []project.Spec{{
			Name: "p", Share: 1,
			Apps: []project.AppSpec{{
				Name:             "a",
				Usage:            job.Usage{AvgCPUs: 1},
				MeanDuration:     500,
				LatencyBound:     86400,
				CheckpointPeriod: 60,
			}},
		}},
		JobSched: sched.JSLocal,
		JobFetch: fetch.JFHysteresis,
		Duration: 6 * 3600,
		Seed:     seed,
	}
}

func tinyVariant(label string) Variant {
	return Variant{Label: label, Make: tinyConfig}
}

func TestRun(t *testing.T) {
	res, err := Run(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CompletedJobs == 0 {
		t.Fatal("no jobs completed")
	}
}

func TestRunInvalid(t *testing.T) {
	if _, err := Run(client.Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestReplicateAggregates(t *testing.T) {
	agg, err := Replicate(tinyVariant("x"), Seeds(3))
	if err != nil {
		t.Fatal(err)
	}
	if agg.N != 3 || len(agg.Raw) != 3 {
		t.Fatalf("agg.N = %d, want 3", agg.N)
	}
	for i, v := range agg.Mean {
		if v < 0 || v > 1 {
			t.Fatalf("mean metric %d = %v out of range", i, v)
		}
	}
	if agg.MetricByName("idle") != agg.Mean[0] {
		t.Fatal("MetricByName(idle) mismatch")
	}
	if v := agg.MetricByName("nope"); v == v { // NaN check
		t.Fatalf("unknown metric should be NaN, got %v", v)
	}
}

func TestSeedsDeterministic(t *testing.T) {
	a, b := Seeds(5), Seeds(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
	}
	if len(Seeds(0)) != 0 {
		t.Fatal("Seeds(0) should be empty")
	}
}

func TestCompareAndTable(t *testing.T) {
	cmp, err := Compare([]Variant{tinyVariant("A"), tinyVariant("B")}, Seeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Variants) != 2 {
		t.Fatalf("variants = %v", cmp.Variants)
	}
	table := cmp.Table()
	for _, want := range []string{"policy", "idle", "A", "B"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// Same config, same seeds: identical aggregates.
	if cmp.Aggs["A"].Mean != cmp.Aggs["B"].Mean {
		t.Fatal("identical variants diverged")
	}
}

func TestSweep(t *testing.T) {
	mk := func(x float64) []Variant {
		return []Variant{{Label: "only", Make: func(seed int64) client.Config {
			cfg := tinyConfig(seed)
			cfg.Projects[0].Apps[0].MeanDuration = x
			return cfg
		}}}
	}
	sw, err := Sweep("duration", []float64{200, 400}, mk, Seeds(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 || sw.Points[0].X != 200 {
		t.Fatalf("sweep points wrong: %+v", sw.Points)
	}
	xs, ys := sw.Series("only", "idle")
	if len(xs) != 2 || len(ys) != 2 {
		t.Fatal("series extraction wrong")
	}
	table := sw.Table("idle")
	if !strings.Contains(table, "duration") || !strings.Contains(table, "only") {
		t.Fatalf("sweep table malformed:\n%s", table)
	}
}

func TestSweepCSV(t *testing.T) {
	mk := func(x float64) []Variant { return []Variant{tinyVariant("v")} }
	sw, err := Sweep("p", []float64{1}, mk, Seeds(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 5 metrics.
	if len(lines) != 6 {
		t.Fatalf("CSV lines = %d, want 6:\n%s", len(lines), buf.String())
	}
	if lines[0] != "p,variant,metric,value" {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestChart(t *testing.T) {
	mk := func(x float64) []Variant { return []Variant{tinyVariant("v")} }
	sw, err := Sweep("p", []float64{1, 2, 3}, mk, Seeds(1))
	if err != nil {
		t.Fatal(err)
	}
	chart := sw.Chart("idle", 40, 10)
	if !strings.Contains(chart, "idle vs p") || !strings.Contains(chart, "*=v") {
		t.Fatalf("chart malformed:\n%s", chart)
	}
	if empty := (&SweepResult{}).Chart("idle", 40, 10); !strings.Contains(empty, "no data") {
		t.Fatal("empty chart should say no data")
	}
}

// staleVariant reuses one live host across calls — exactly the aliasing
// bug the fresh-state audit guards against.
func staleVariant() Variant {
	shared := tinyConfig(1)
	return Variant{Label: "stale", Make: func(seed int64) client.Config {
		cfg := shared
		cfg.Seed = seed
		return cfg
	}}
}

func TestReplicateRejectsSharedHost(t *testing.T) {
	if _, err := Replicate(staleVariant(), Seeds(2)); err == nil ||
		!strings.Contains(err.Error(), "shared *host.Host") {
		t.Fatalf("want shared-host rejection, got %v", err)
	}
}

func TestCompareRejectsSharedHost(t *testing.T) {
	_, err := Compare([]Variant{tinyVariant("ok"), staleVariant()}, Seeds(2))
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("want shared-host rejection naming the variant, got %v", err)
	}
}

func TestVariantMakeBuildsFreshState(t *testing.T) {
	v := tinyVariant("fresh")
	a, b := v.Make(1), v.Make(2)
	if a.Host == b.Host {
		t.Fatal("tinyVariant reuses its *host.Host across Make calls")
	}
}
