package harness

import "bce/internal/runner"

// The harness once declared its own worker/progress/fail-fast option
// types; they are now thin aliases of the engine's shared option set
// in internal/runner, kept so pre-consolidation call sites compile.

// Option configures the batch engine underlying Replicate, Compare and
// Sweep.
//
// Deprecated: use runner.Option (re-exported as bce.BatchOption).
type Option = runner.Option

// WithWorkers bounds the engine's worker pool.
//
// Deprecated: use runner.WithWorkers.
var WithWorkers = runner.WithWorkers

// WithProgress installs a live batch-progress callback.
//
// Deprecated: use runner.WithProgress.
var WithProgress = runner.WithProgress
