// Package harness is the emulator's controller (paper §4.3): it runs
// the emulator repeatedly — across policy variants, across seeds, and
// across parameter sweeps — and aggregates the figures of merit into
// tables, CSV, and quick ASCII charts.
package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"bce/internal/client"
	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/stats"
)

// Variant is one policy configuration under test. Make MUST build a
// fresh config on every call: configs hold live *host.Host pointers,
// and the runner engine executes seeds of one variant concurrently, so
// two runs sharing host or project state would race. Replicate rejects
// variants whose Make returns an aliased *host.Host.
type Variant struct {
	Label string
	Make  func(seed int64) client.Config
}

// checkFresh enforces the Variant contract above: calling Make twice
// must yield distinct host objects. Catching aliasing here turns a
// data race into a deterministic error.
func checkFresh(v Variant, seed int64) error {
	a, b := v.Make(seed), v.Make(seed)
	if a.Host != nil && a.Host == b.Host {
		return fmt.Errorf("harness: variant %q: Make returns a shared *host.Host; "+
			"each call must build fresh state so runs can execute concurrently", v.Label)
	}
	return nil
}

// Agg aggregates the metrics of replicated runs.
type Agg struct {
	N      int
	Mean   [5]float64 // figures of merit, paper order
	CI95   [5]float64
	Raw    []metrics.Metrics
	Events uint64
}

// Metric returns the aggregated value of the i-th figure of merit.
func (a Agg) Metric(i int) float64 { return a.Mean[i] }

// MetricByName returns the aggregated value for a metric name from
// metrics.Names.
func (a Agg) MetricByName(name string) float64 {
	for i, n := range metrics.Names() {
		if n == name {
			return a.Mean[i]
		}
	}
	return math.NaN()
}

// Run executes one config and returns its result.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Run(cfg client.Config) (*client.Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes one config under ctx on the runner engine
// (panic recovery, cancellation between simulator events).
func RunContext(ctx context.Context, cfg client.Config) (*client.Result, error) {
	return runner.Run(ctx, cfg)
}

// Replicate runs the variant once per seed and aggregates.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Replicate(v Variant, seeds []int64) (Agg, error) {
	return ReplicateContext(context.Background(), v, seeds)
}

// ReplicateContext runs the variant once per seed on the engine's
// worker pool and aggregates. Results are accumulated in seed order,
// so the aggregate is bit-identical to the sequential path for any
// worker count.
func ReplicateContext(ctx context.Context, v Variant, seeds []int64, opts ...runner.Option) (Agg, error) {
	var agg Agg
	if len(seeds) == 0 {
		return agg, nil
	}
	if err := checkFresh(v, seeds[0]); err != nil {
		return agg, err
	}
	specs := variantSpecs(v, seeds)
	results, err := runner.Batch(ctx, specs, append(opts, runner.WithFailFast(true))...)
	if err != nil {
		return agg, err
	}
	return aggregate(results), nil
}

// variantSpecs fans one variant out across seeds.
func variantSpecs(v Variant, seeds []int64) []runner.Spec {
	specs := make([]runner.Spec, len(seeds))
	for i, seed := range seeds {
		seed := seed
		specs[i] = runner.Spec{
			Label: fmt.Sprintf("%s (seed %d)", v.Label, seed),
			Make:  func() (client.Config, error) { return v.Make(seed), nil },
		}
	}
	return specs
}

// aggregate folds completed runs, in batch order, into an Agg.
func aggregate(results []runner.RunResult) Agg {
	var agg Agg
	accs := make([]stats.Mean, 5)
	for _, r := range results {
		agg.Raw = append(agg.Raw, r.Result.Metrics)
		agg.Events += r.Result.Events
		for i, x := range r.Result.Metrics.Values() {
			accs[i].Add(x)
		}
	}
	agg.N = len(results)
	for i := range accs {
		agg.Mean[i] = accs[i].Mean()
		agg.CI95[i] = accs[i].CI95()
	}
	return agg
}

// Seeds returns n deterministic seeds.
func Seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(1000 + 37*i)
	}
	return out
}

// Comparison holds the aggregated metrics of several variants.
type Comparison struct {
	Variants []string
	Aggs     map[string]Agg
}

// Compare replicates every variant over the same seeds.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Compare(vs []Variant, seeds []int64) (*Comparison, error) {
	return CompareContext(context.Background(), vs, seeds)
}

// CompareContext replicates every variant over the same seeds,
// flattening all (variant, seed) runs into one batch so the worker
// pool stays saturated across variant boundaries. Per-variant
// aggregation happens in (variant, seed) order, so the comparison is
// bit-identical to the sequential path for any worker count.
func CompareContext(ctx context.Context, vs []Variant, seeds []int64, opts ...runner.Option) (*Comparison, error) {
	c := &Comparison{Aggs: make(map[string]Agg)}
	if len(seeds) > 0 {
		for _, v := range vs {
			if err := checkFresh(v, seeds[0]); err != nil {
				return nil, err
			}
		}
	}
	var specs []runner.Spec
	for _, v := range vs {
		specs = append(specs, variantSpecs(v, seeds)...)
	}
	results, err := runner.Batch(ctx, specs, append(opts, runner.WithFailFast(true))...)
	if err != nil {
		return nil, err
	}
	for vi, v := range vs {
		c.Variants = append(c.Variants, v.Label)
		c.Aggs[v.Label] = aggregate(results[vi*len(seeds) : (vi+1)*len(seeds)])
	}
	return c, nil
}

// Table renders the comparison as an aligned text table, one row per
// variant, one column per figure of merit.
func (c *Comparison) Table() string {
	var b strings.Builder
	names := metrics.Names()
	fmt.Fprintf(&b, "%-16s", "policy")
	for _, n := range names {
		fmt.Fprintf(&b, " %15s", n)
	}
	b.WriteByte('\n')
	for _, label := range c.Variants {
		agg := c.Aggs[label]
		fmt.Fprintf(&b, "%-16s", label)
		for i := range names {
			fmt.Fprintf(&b, " %15s", fmt.Sprintf("%.4f±%.3f", agg.Mean[i], agg.CI95[i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SweepPoint is one x-value of a parameter sweep with per-variant
// aggregates.
type SweepPoint struct {
	X    float64
	Aggs map[string]Agg
}

// SweepResult is a full parameter sweep.
type SweepResult struct {
	Param    string
	Variants []string
	Points   []SweepPoint
}

// Sweep runs every variant at every parameter value. The variant's Make
// receives the seed; mk wraps a parameterised variant constructor.
//
//bce:ctxshim convenience wrapper; roots a background context and delegates to the Context variant
func Sweep(param string, xs []float64, mk func(x float64) []Variant, seeds []int64) (*SweepResult, error) {
	return SweepContext(context.Background(), param, xs, mk, seeds)
}

// SweepContext runs every variant at every parameter value, flattening
// all (point, variant, seed) runs into one batch for the worker pool.
// Aggregation order is fixed, so the sweep is bit-identical to the
// sequential path for any worker count.
func SweepContext(ctx context.Context, param string, xs []float64, mk func(x float64) []Variant, seeds []int64, opts ...runner.Option) (*SweepResult, error) {
	res := &SweepResult{Param: param}
	var specs []runner.Spec
	var vsAt [][]Variant
	for _, x := range xs {
		vs := mk(x)
		if res.Variants == nil {
			for _, v := range vs {
				res.Variants = append(res.Variants, v.Label)
			}
			if len(seeds) > 0 {
				for _, v := range vs {
					if err := checkFresh(v, seeds[0]); err != nil {
						return nil, err
					}
				}
			}
		}
		for _, v := range vs {
			sp := variantSpecs(v, seeds)
			for i := range sp {
				sp[i].Label = fmt.Sprintf("%s=%v: %s", param, x, sp[i].Label)
			}
			specs = append(specs, sp...)
		}
		res.Points = append(res.Points, SweepPoint{X: x, Aggs: make(map[string]Agg)})
		vsAt = append(vsAt, vs)
	}
	results, err := runner.Batch(ctx, specs, append(opts, runner.WithFailFast(true))...)
	if err != nil {
		return nil, err
	}
	off := 0
	for pi := range res.Points {
		for _, v := range vsAt[pi] {
			res.Points[pi].Aggs[v.Label] = aggregate(results[off : off+len(seeds)])
			off += len(seeds)
		}
	}
	return res, nil
}

// Series extracts one metric's series for one variant.
func (s *SweepResult) Series(variant, metric string) (xs, ys []float64) {
	for _, pt := range s.Points {
		xs = append(xs, pt.X)
		ys = append(ys, pt.Aggs[variant].MetricByName(metric))
	}
	return xs, ys
}

// Table renders the sweep for one metric: rows are x values, columns
// variants.
func (s *SweepResult) Table(metric string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", s.Param)
	for _, v := range s.Variants {
		fmt.Fprintf(&b, " %14s", v)
	}
	fmt.Fprintf(&b, "   (%s)\n", metric)
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%-12.4g", pt.X)
		for _, v := range s.Variants {
			fmt.Fprintf(&b, " %14.4f", pt.Aggs[v].MetricByName(metric))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV writes the sweep for all metrics in long form:
// param,variant,metric,value.
func (s *SweepResult) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,variant,metric,value\n", s.Param); err != nil {
		return err
	}
	names := metrics.Names()
	for _, pt := range s.Points {
		for _, v := range s.Variants {
			agg := pt.Aggs[v]
			for i, n := range names {
				if _, err := fmt.Fprintf(w, "%g,%s,%s,%g\n", pt.X, v, n, agg.Mean[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Chart renders one metric of a sweep as a crude ASCII line chart, one
// glyph per variant, good enough to eyeball the paper's figures in a
// terminal.
func (s *SweepResult) Chart(metric string, width, height int) string {
	if len(s.Points) == 0 || width < 8 || height < 3 {
		return "(no data)\n"
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	minX, maxX := s.Points[0].X, s.Points[len(s.Points)-1].X
	var maxY float64
	for _, pt := range s.Points {
		for _, v := range s.Variants {
			if y := pt.Aggs[v].MetricByName(metric); y > maxY {
				maxY = y
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for vi, v := range s.Variants {
		g := glyphs[vi%len(glyphs)]
		for _, pt := range s.Points {
			var col int
			if maxX > minX {
				col = int(float64(width-1) * (pt.X - minX) / (maxX - minX))
			}
			y := pt.Aggs[v].MetricByName(metric)
			row := height - 1 - int(float64(height-1)*y/maxY)
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s (ymax=%.3f)\n", metric, s.Param, maxY)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, " x: %.4g .. %.4g   ", minX, maxX)
	var legend []string
	for vi, v := range s.Variants {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[vi%len(glyphs)], v))
	}
	sort.Strings(legend)
	b.WriteString(strings.Join(legend, "  "))
	b.WriteByte('\n')
	return b.String()
}
