//go:build !bceinvariants

package invariant

// Enabled reports whether invariant checks are compiled in. It is a
// constant so `if invariant.Enabled { ... }` blocks vanish entirely
// from default builds.
const Enabled = false

// Check is a no-op without the bceinvariants build tag.
func Check(cond bool, format string, args ...any) {}
