//go:build bceinvariants

package invariant

import "fmt"

// Enabled reports whether invariant checks are compiled in. It is a
// constant so `if invariant.Enabled { ... }` blocks vanish entirely
// from default builds.
const Enabled = true

// Check panics if cond is false. Callers must wrap calls in
// `if invariant.Enabled { ... }` so argument evaluation is free when
// the build tag is off.
func Check(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("bce: invariant violated: "+format, args...))
	}
}
