//go:build !bceinvariants

package invariant

import "testing"

func TestCheckDisabledByDefault(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without -tags bceinvariants")
	}
	// A violated condition must be a no-op in default builds.
	Check(false, "ignored %d", 1)
}
