//go:build bceinvariants

package invariant

import (
	"strings"
	"testing"
)

func TestCheckViolationPanics(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under -tags bceinvariants")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Check(false, ...) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "bce: invariant violated: work -3 below 0") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	Check(false, "work %d below %d", -3, 0)
}

func TestCheckHoldsQuietly(t *testing.T) {
	Check(true, "never shown")
}
