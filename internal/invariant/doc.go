// Package invariant provides build-tag-gated runtime assertions for the
// core emulation invariants: non-negative remaining work, monotone
// simulated time, debt/REC conservation, and round-robin seat counts
// bounded by device counts.
//
// By default the package compiles to no-ops: Enabled is the constant
// false, so call sites written as
//
//	if invariant.Enabled {
//		invariant.Check(cond, "explanation %v", detail)
//	}
//
// are eliminated at compile time and cost nothing on the hot path (the
// guard keeps the varargs from ever being evaluated). Building with
//
//	go test -tags bceinvariants ./...
//
// turns the checks on; a violated invariant panics with a message
// prefixed "bce: invariant violated", pinpointing the broken contract
// at the moment it breaks rather than as a corrupted figure of merit
// three policy layers later. CI runs the full test suite once with the
// tag enabled (see .github/workflows/ci.yml).
package invariant
