package analyzers

import "go/ast"

// CtxPass flags context.Background() and context.TODO() in library
// packages. Since the batch-run API (DESIGN.md §8) every entry point
// accepts a context; minting a fresh root deep in library code
// disconnects that call tree from cancellation and deadlines. The
// deliberate exception is the context-free compatibility shims, which
// carry a //bce:ctxshim directive.
var CtxPass = &Analyzer{
	Name: "ctxpass",
	Doc: "forbid context.Background()/context.TODO() in library code; accept " +
		"and thread the caller's context (//bce:ctxshim for compatibility shims)",
	Run: runCtxPass,
}

func runCtxPass(pass *Pass) error {
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if !isPackageLevel(fn, "context") || (fn.Name() != "Background" && fn.Name() != "TODO") {
			return true
		}
		if pass.Allowed("ctxshim", call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() severs this call tree from the caller's cancellation; accept a ctx parameter, or mark a compatibility shim with //bce:ctxshim",
			fn.Name())
		return true
	})
	return nil
}
