// Package analysistest runs an analyzer over a golden package and
// checks its diagnostics against `// want` annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// An annotation is a trailing comment on the offending line holding
// one quoted regexp per expected diagnostic:
//
//	_ = time.Now() // want `wall-clock time\.Now`
//	_ = time.Now() // want "time.Now" "second diagnostic on this line"
//
// Lines without an annotation must produce no diagnostics; every
// annotation must be matched. Either direction of drift fails the
// test, so an analyzer whose diagnostics regress cannot pass its
// golden suite.
//
// Run checks a single golden package with direct analyzer passes;
// RunModule loads a whole mini-module (its own go.mod under testdata)
// and runs scoped rules through the interprocedural fact engine, so
// golden files can assert laundered-violation chains too.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bce/internal/analyzers"
)

// wantRe captures the annotation payload; quoted patterns follow.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants scans the golden source files for `// want` annotations,
// keyed by (file, line).
func parseWants(t *testing.T, pkg *analyzers.Package) map[token.Position][]*expectation {
	t.Helper()
	wants := make(map[token.Position][]*expectation)
	addWants(t, pkg, wants)
	return wants
}

func addWants(t *testing.T, pkg *analyzers.Package, wants map[token.Position][]*expectation) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := token.Position{Filename: pos.Filename, Line: pos.Line}
				for _, raw := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: raw})
				}
			}
		}
	}
}

// splitPatterns parses the space-separated quoted regexps after
// "want": "a" `b` → [a b].
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			t.Fatalf("%s: want patterns must be quoted, got %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		lit := s[:end+2]
		raw, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
		}
		out = append(out, raw)
		s = s[end+2:]
	}
}

// Run loads the golden package rooted at dir, applies the analyzer,
// and fails the test on any mismatch between reported diagnostics and
// `// want` annotations.
func Run(t *testing.T, a *analyzers.Analyzer, dir string) {
	t.Helper()
	pkg, err := analyzers.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading golden package %s: %v", dir, err)
	}
	diags, err := analyzers.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := parseWants(t, pkg)
	for _, d := range diags {
		key := token.Position{Filename: d.Pos.Filename, Line: d.Pos.Line}
		if !claim(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matching %q", fmt.Sprintf("%s:%d", key.Filename, key.Line), exp.raw)
			}
		}
	}
}

// RunModule loads the golden mini-module rooted at dir (its own
// go.mod, several packages) and applies the rules through the full
// interprocedural engine — direct passes plus call-graph fact
// propagation — checking `// want` annotations across every package.
// Interprocedural diagnostics embed the laundering chain in the
// message, so annotations can (and should) assert the chain:
//
//	return helper.Elapsed() // want `helper\.Elapsed → helper\.stamp → time\.Now`
func RunModule(t *testing.T, rules []analyzers.Rule, dir string) {
	t.Helper()
	pkgs, err := analyzers.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("loading golden module %s: %v", dir, err)
	}
	diags, err := analyzers.RunRules(pkgs, rules)
	if err != nil {
		t.Fatalf("running rules on %s: %v", dir, err)
	}
	wants := make(map[token.Position][]*expectation)
	for _, pkg := range pkgs {
		addWants(t, pkg, wants)
	}
	for _, d := range diags {
		key := token.Position{Filename: d.Pos.Filename, Line: d.Pos.Line}
		if !claim(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matching %q", fmt.Sprintf("%s:%d", key.Filename, key.Line), exp.raw)
			}
		}
	}
}

// claim marks the first unmatched expectation whose regexp matches the
// message, reporting whether one existed.
func claim(exps []*expectation, message string) bool {
	for _, exp := range exps {
		if !exp.matched && exp.re.MatchString(message) {
			exp.matched = true
			return true
		}
	}
	return false
}
