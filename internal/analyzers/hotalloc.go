package analyzers

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// HotAlloc enforces the allocation contract on the emulation kernel: a
// function annotated //bce:hotpath — and, through the interprocedural
// fact engine (allocfacts.go), everything it transitively calls inside
// the module — must not allocate. The per-package pass reports the
// direct allocation sites inside annotated functions; laundered
// allocations (a helper that allocates, reached from a hotpath root)
// are reported at the hotpath call site with the full witness chain.
//
// Allocation sites are found by conservative AST-level reasoning:
//
//   - composite literals, make and new whose value escapes the frame
//     (returned, stored to a heap location or a captured variable,
//     passed to a non-hotpath callee); a provably frame-local value is
//     allowed, matching what the compiler stack-allocates. Struct and
//     array literals are values — copies are free — so only slice/map
//     literals and address-taken composites (&T{...}) are candidates,
//   - append that is not the x = append(x, ...) self-append idiom
//     (self-append to a retained scratch buffer grows amortized; any
//     other append may allocate a fresh backing array every call),
//   - string <-> []byte/[]rune conversions and non-constant string
//     concatenation (always allocate-and-copy),
//   - interface boxing of non-pointer-shaped values (call arguments,
//     conversions, assignments into interface-typed locations),
//   - variadic calls (the argument slice is constructed per call) and
//     any call into the fmt package,
//   - function literals that capture enclosing variables (the closure
//     and its captures move to the heap).
//
// Code under `if cond { ... }` where cond is a compile-time false
// constant (the invariant.Enabled pattern) is dead in default builds
// and is not scanned. A justified allocation — an amortized grow path,
// a cold error branch — carries //bce:allocok <reason> on the site (or
// the line above, or the enclosing function's doc comment).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //bce:hotpath (and everything they transitively call in the module) " +
		"must not allocate; justify deliberate allocations with //bce:allocok <reason>",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	idx := pass.markerIdx()
	hot := hotpathFuncs(pass.Fset, pass.Files, pass.TypesInfo, idx)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil || !hot[fn] {
				continue
			}
			for _, site := range allocSitesIn(pass.Fset, pass.TypesInfo, fd, idx, hot) {
				pass.Reportf(site.pos,
					"%s on a //bce:hotpath function; make it allocation-free, or justify with //bce:allocok <reason>",
					site.what)
			}
		}
	}
	return nil
}

// markerIdx exposes the lazily built directive index to analyses that
// need raw marker queries beyond Pass.Allowed.
func (p *Pass) markerIdx() *markerIndex {
	if p.markers == nil {
		p.markers = indexMarkers(p.Fset, p.Files)
	}
	return p.markers
}

// hotpathFuncs collects the functions annotated //bce:hotpath (doc
// comment, the declaration line, or the line above it).
func hotpathFuncs(fset *token.FileSet, files []*ast.File, info *types.Info, idx *markerIndex) map[*types.Func]bool {
	hot := make(map[*types.Func]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if !idx.allows(fset, "hotpath", fd.Pos()) {
				continue
			}
			if fn, _ := info.Defs[fd.Name].(*types.Func); fn != nil {
				hot[fn] = true
			}
		}
	}
	return hot
}

// allocSite is one flagged allocation inside a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// posRange is a half-open source span.
type posRange struct{ from, to token.Pos }

func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.from <= pos && pos < r.to {
			return true
		}
	}
	return false
}

// deadRangesIn finds statement spans eliminated in default builds:
// the body of `if cond { ... }` with a compile-time false condition
// (and the else branch of a true one) — the invariant.Enabled pattern.
func deadRangesIn(info *types.Info, body ast.Node) []posRange {
	var dead []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		switch v, known := constBool(info, ifs.Cond); {
		case known && !v:
			dead = append(dead, posRange{ifs.Body.Pos(), ifs.Body.End()})
		case known && v && ifs.Else != nil:
			dead = append(dead, posRange{ifs.Else.Pos(), ifs.Else.End()})
		}
		return true
	})
	return dead
}

// constBool evaluates a condition that the type checker folded to a
// boolean constant (a const, or !const).
func constBool(info *types.Info, e ast.Expr) (value, known bool) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		return constant.BoolVal(tv.Value), true
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if c, ok := info.Uses[id].(*types.Const); ok && c.Val().Kind() == constant.Bool {
			return constant.BoolVal(c.Val()), true
		}
	}
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.NOT {
		if v, known := constBool(info, u.X); known {
			return !v, true
		}
	}
	return false, false
}

// allocScanner holds one function body's scan state.
type allocScanner struct {
	fset    *token.FileSet
	info    *types.Info
	idx     *markerIndex
	hot     map[*types.Func]bool
	fd      *ast.FuncDecl
	parents map[ast.Node]ast.Node
	dead    []posRange
	sites   map[ast.Node]allocSite // keyed by the alloc node, one report each
}

// allocSitesIn scans fd's body for allocation sites, in source order,
// already filtered through //bce:allocok directives and compile-time
// dead code.
func allocSitesIn(fset *token.FileSet, info *types.Info, fd *ast.FuncDecl, idx *markerIndex, hot map[*types.Func]bool) []allocSite {
	sc := &allocScanner{
		fset:    fset,
		info:    info,
		idx:     idx,
		hot:     hot,
		fd:      fd,
		parents: make(map[ast.Node]ast.Node),
		dead:    deadRangesIn(info, fd.Body),
		sites:   make(map[ast.Node]allocSite),
	}
	// Parent links for the escape climb.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			sc.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	sc.scan()

	out := make([]allocSite, 0, len(sc.sites))
	for _, s := range sc.sites {
		if inRanges(sc.dead, s.pos) || sc.idx.allows(sc.fset, "allocok", s.pos) {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func (sc *allocScanner) flag(n ast.Node, format string, args ...any) {
	if _, dup := sc.sites[n]; !dup {
		sc.sites[n] = allocSite{pos: n.Pos(), what: fmt.Sprintf(format, args...)}
	}
}

func (sc *allocScanner) scan() {
	ast.Inspect(sc.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sc.scanCall(n)
		case *ast.CompositeLit:
			// Only the outermost literal of a nested construction is a
			// candidate; its elements escape (or not) with it. Value
			// struct/array composites are plain copies — they allocate
			// only when address-taken (&T{}), while slice and map
			// literals always mint backing storage.
			if sc.allocatingComposite(n) && !sc.insideCompositeLit(n) && sc.escapes(n) {
				sc.flag(n, "composite literal %s escapes the frame and allocates", typeOf(sc.info, n))
			}
		case *ast.BinaryExpr:
			sc.scanConcat(n)
		case *ast.FuncLit:
			sc.scanFuncLit(n)
		case *ast.AssignStmt:
			sc.scanAssignBoxing(n)
		}
		return true
	})
}

// scanCall dispatches one call expression to the conversion, builtin,
// fmt, variadic and boxing checks.
func (sc *allocScanner) scanCall(call *ast.CallExpr) {
	// Type conversions.
	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		sc.scanConversion(call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := sc.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				if sc.escapes(call) {
					sc.flag(call, "%s(%s) escapes the frame and allocates", b.Name(), typeOf(sc.info, call))
				}
			case "append":
				if !sc.selfAppend(call) {
					sc.flag(call, "append outside the x = append(x, ...) self-append idiom may allocate a fresh backing array")
				}
			}
			return
		}
	}
	if fn := staticCallee(sc.info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		sc.flag(call, "call into fmt.%s allocates (formatting state and boxed arguments)", fn.Name())
		return
	}
	sig, _ := typeOf(sc.info, call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		sc.flag(call, "variadic call constructs a temporary argument slice")
	}
	// Boxing of fixed (non-variadic) interface parameters.
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
	}
	for i := 0; i < fixed && i < len(call.Args); i++ {
		if isInterface(sig.Params().At(i).Type()) && boxes(typeOf(sc.info, call.Args[i])) {
			sc.flag(call.Args[i], "passing %s boxes it into an interface and allocates", typeOf(sc.info, call.Args[i]))
		}
	}
}

// scanConversion flags string<->byte conversions and interface boxing
// through an explicit conversion.
func (sc *allocScanner) scanConversion(call *ast.CallExpr, to types.Type) {
	from := typeOf(sc.info, call.Args[0])
	if from == nil {
		return
	}
	tu, fu := to.Underlying(), from.Underlying()
	switch {
	case isString(tu) && isByteOrRuneSlice(fu), isByteOrRuneSlice(tu) && isString(fu):
		sc.flag(call, "conversion %s allocates and copies", types.ExprString(call))
	case isInterface(tu) && boxes(from):
		sc.flag(call, "conversion %s boxes a non-pointer value and allocates", types.ExprString(call))
	}
}

// scanConcat flags non-constant string concatenation, once per chain.
func (sc *allocScanner) scanConcat(b *ast.BinaryExpr) {
	if b.Op != token.ADD || !isString(typeOfUnderlying(sc.info, b)) {
		return
	}
	if tv, ok := sc.info.Types[b]; ok && tv.Value != nil {
		return // constant-folded at compile time
	}
	if p, ok := sc.parents[b].(*ast.BinaryExpr); ok && p.Op == token.ADD && isString(typeOfUnderlying(sc.info, p)) {
		return // an operand of a larger concat; flag the outermost only
	}
	sc.flag(b, "string concatenation allocates")
}

// scanFuncLit flags closures that capture enclosing variables.
func (sc *allocScanner) scanFuncLit(lit *ast.FuncLit) {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := sc.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= sc.fd.Pos() && v.Pos() <= sc.fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured = v
		}
		return true
	})
	if captured != nil {
		sc.flag(lit, "closure captures %s and allocates", captured.Name())
	}
}

// scanAssignBoxing flags assignments that box a concrete value into an
// interface-typed location.
func (sc *allocScanner) scanAssignBoxing(as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := typeOf(sc.info, as.Lhs[i])
		if lt == nil {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := sc.info.Uses[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		if lt != nil && isInterface(lt.Underlying()) && boxes(typeOf(sc.info, as.Rhs[i])) {
			sc.flag(as.Rhs[i], "assigning %s into an interface boxes it and allocates", typeOf(sc.info, as.Rhs[i]))
		}
	}
}

// selfAppend reports whether the append call is the amortized
// x = append(x, ...) idiom: the destination expression is structurally
// identical to the appended-to operand, so growth is retained and
// amortizes across calls.
func (sc *allocScanner) selfAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	as, ok := sc.parents[call].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN {
		return false
	}
	for i, r := range as.Rhs {
		if r == call && i < len(as.Lhs) {
			return types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0])
		}
	}
	return false
}

// allocatingComposite reports whether the literal itself mints heap
// storage: slice and map literals allocate their backing; struct and
// array literals are values, heap-bound only when address-taken.
func (sc *allocScanner) allocatingComposite(lit *ast.CompositeLit) bool {
	switch typeOfUnderlying(sc.info, lit).(type) {
	case *types.Slice, *types.Map:
		return true
	}
	var n ast.Node = lit
	for {
		p := sc.parents[n]
		if pe, ok := p.(*ast.ParenExpr); ok {
			n = pe
			continue
		}
		u, ok := p.(*ast.UnaryExpr)
		return ok && u.Op == token.AND
	}
}

// insideCompositeLit reports whether the literal is an element of an
// enclosing composite construction.
func (sc *allocScanner) insideCompositeLit(n ast.Node) bool {
	for p := sc.parents[n]; p != nil; p = sc.parents[p] {
		switch p.(type) {
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return true
		case *ast.UnaryExpr, *ast.ParenExpr:
			n = p
			continue
		}
		return false
	}
	return false
}

// escapes decides whether a freshly allocated value leaves the frame:
// it climbs the parent chain toward the consuming context, and follows
// local variables the value flows into (their every use is climbed the
// same way). Unknown contexts count as escaping — the analysis is
// deliberately conservative.
func (sc *allocScanner) escapes(n ast.Node) bool {
	work := []ast.Node{n}
	seenVar := make(map[*types.Var]bool)
	for len(work) > 0 {
		h := work[len(work)-1]
		work = work[:len(work)-1]
		esc, holder := sc.escapeStep(h)
		if esc {
			return true
		}
		if holder == nil || seenVar[holder] {
			continue
		}
		seenVar[holder] = true
		// The value now lives in a local; every use of that local is a
		// new context to climb. A use inside a nested function literal
		// is a capture, which moves the variable to the heap.
		ast.Inspect(sc.fd.Body, func(u ast.Node) bool {
			id, ok := u.(*ast.Ident)
			if !ok || sc.info.Uses[id] != holder {
				return true
			}
			work = append(work, id)
			return true
		})
		if sc.capturedByLit(holder) {
			return true
		}
	}
	return false
}

// capturedByLit reports whether any use of v sits inside a function
// literal nested in the scanned body.
func (sc *allocScanner) capturedByLit(v *types.Var) bool {
	captured := false
	ast.Inspect(sc.fd.Body, func(u ast.Node) bool {
		if captured {
			return false
		}
		if id, ok := u.(*ast.Ident); ok && sc.info.Uses[id] == v && sc.insideFuncLit(id) {
			captured = true
		}
		return true
	})
	return captured
}

func (sc *allocScanner) insideFuncLit(n ast.Node) bool {
	for p := sc.parents[n]; p != nil; p = sc.parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// escapeStep climbs from one expression to its consuming context,
// returning either a verdict or the local variable the value flowed
// into (whose uses the caller then chases).
func (sc *allocScanner) escapeStep(n ast.Node) (escaped bool, holder *types.Var) {
	child := n
	for {
		parent := sc.parents[child]
		if parent == nil {
			return false, nil
		}
		switch p := parent.(type) {
		case *ast.ParenExpr, *ast.UnaryExpr, *ast.CompositeLit, *ast.KeyValueExpr,
			*ast.StarExpr, *ast.SelectorExpr, *ast.SliceExpr, *ast.TypeAssertExpr:
			// Derived value (or element of a larger construction): the
			// verdict is the enclosing context's.
			child = parent
		case *ast.IndexExpr:
			if p.Index == child {
				return false, nil // used as an index, not retained
			}
			child = parent
		case *ast.ReturnStmt, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt:
			return true, nil
		case *ast.AssignStmt:
			for i, r := range p.Rhs {
				if r != child {
					continue
				}
				if len(p.Lhs) != len(p.Rhs) {
					return true, nil
				}
				if id, ok := p.Lhs[i].(*ast.Ident); ok {
					if id.Name == "_" {
						return false, nil
					}
					obj := sc.info.Defs[id]
					if obj == nil {
						obj = sc.info.Uses[id]
					}
					if v, ok := obj.(*types.Var); ok && !v.IsField() && sc.localVar(v) {
						return false, v
					}
				}
				return true, nil // store through a selector, index, deref, or non-local
			}
			return false, nil // part of the assignment target: a write destination, not a value
		case *ast.ValueSpec:
			for i, r := range p.Values {
				if r != child || i >= len(p.Names) {
					continue
				}
				if v, ok := sc.info.Defs[p.Names[i]].(*types.Var); ok && sc.localVar(v) {
					return false, v
				}
				return true, nil
			}
			return false, nil
		case *ast.CallExpr:
			if p.Fun == child {
				return false, nil // calling the value retains nothing
			}
			return sc.callArgEscapes(p, child)
		case *ast.ExprStmt, *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CaseClause, *ast.BlockStmt,
			*ast.IncDecStmt, *ast.LabeledStmt:
			return false, nil
		default:
			return true, nil // unknown context: assume the worst
		}
	}
}

// callArgEscapes decides the verdict for a fresh value passed as a
// call argument: copied-by builtins keep it local, hotpath callees are
// themselves under the no-alloc/no-retain contract, everything else is
// an escape.
func (sc *allocScanner) callArgEscapes(call *ast.CallExpr, arg ast.Node) (bool, *types.Var) {
	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() {
		return sc.escapeStep(call) // conversion: the verdict is the converted value's
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := sc.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "copy", "delete", "clear", "min", "max":
				return false, nil
			case "append":
				if len(call.Args) > 0 && call.Args[0] == arg {
					return sc.escapeStep(call) // appended-to: same backing flows onward
				}
				return true, nil // appended element: stored into the slice
			}
			return true, nil
		}
	}
	if fn := staticCallee(sc.info, call); fn != nil && sc.hot[fn] {
		return false, nil
	}
	return true, nil
}

// localVar reports whether v is declared inside the scanned function.
func (sc *allocScanner) localVar(v *types.Var) bool {
	return v.Pos() >= sc.fd.Pos() && v.Pos() <= sc.fd.End()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func typeOfUnderlying(info *types.Info, e ast.Expr) types.Type {
	t := typeOf(info, e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether storing a value of type t into an interface
// allocates: pointer-shaped kinds (pointers, channels, maps, funcs)
// fit in the interface word; everything else is copied to the heap.
func boxes(t types.Type) bool {
	if t == nil || isInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UnsafePointer:
			return false
		}
	}
	return true
}
