package analyzers

import "strings"

// Rule pairs an analyzer with the packages it governs. The analyzers
// themselves are package-agnostic (so the analysistest golden packages
// exercise them directly); scoping is a driver decision.
type Rule struct {
	Analyzer *Analyzer
	Applies  func(importPath string) bool
}

// simCorePackages are the packages whose map-iteration order can reach
// scheduling decisions, floating-point accumulation, or event
// ordering. Report/chart packages stay out: they must sort for stable
// *output*, which mapiter's blanket rule would over-approximate.
var simCorePackages = map[string]bool{
	"bce/internal/client":   true,
	"bce/internal/fetch":    true,
	"bce/internal/rrsim":    true,
	"bce/internal/sched":    true,
	"bce/internal/sim":      true,
	"bce/internal/project":  true,
	"bce/internal/emserver": true,
}

// libraryPackage reports whether the import path is library code, as
// opposed to a main package (cmd/, examples/) that legitimately owns
// its process: roots like signal-bound contexts or wall-clock
// timestamps belong there.
func libraryPackage(importPath string) bool {
	return !strings.HasPrefix(importPath, "bce/cmd/") &&
		!strings.HasPrefix(importPath, "bce/examples/")
}

func everywhere(string) bool { return true }

// seedDerivePackages excludes the two packages that *define* the
// blessed derivation primitives: runner.DeriveSeed is the required
// mixer, and stats.RNG.Fork legitimately mixes a label hash into a
// child seed. Everywhere else, ad-hoc seed arithmetic is the fleet
// seed-collision bug class.
func seedDerivePackages(path string) bool {
	return path != "bce/internal/runner" && path != "bce/internal/stats"
}

// Suite returns the determinism and concurrency rules bcelint and CI
// enforce.
func Suite() []Rule {
	return []Rule{
		{NoWallTime, libraryPackage},
		{SeededRand, everywhere},
		{MapIter, func(path string) bool { return simCorePackages[path] }},
		{CtxPass, libraryPackage},
		{SeedDerive, seedDerivePackages},
		{ErrDrop, libraryPackage},
		{GuardedBy, libraryPackage},
		{GoLeak, libraryPackage},
		{LockOrder, libraryPackage},
		{HotAlloc, everywhere},
		{NoRetain, everywhere},
	}
}

// RunSuite loads the packages matching patterns (from dir) and applies
// every applicable rule — direct per-package checks plus the
// interprocedural fact engine — returning all diagnostics in file
// order.
func RunSuite(dir string, patterns []string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return RunRules(pkgs, Suite())
}

// RunRules applies the rules to the loaded packages: every in-scope
// package gets the direct analyzer passes, then the module-wide call
// graph and fact store surface laundered violations — a wall-clock
// read, global rand draw, or map range buried in an out-of-scope
// helper — at the in-scope call site with the full call chain.
func RunRules(pkgs []*Package, rules []Rule) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, rule := range rules {
			if !rule.Applies(pkg.ImportPath) {
				continue
			}
			diags, err := RunAnalyzer(rule.Analyzer, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	graph := buildCallGraph(pkgs)
	all = append(all, computeFacts(pkgs, graph).report(rules)...)
	if concurrencyRules(rules) {
		all = append(all, computeConcurrency(pkgs, graph).report(rules)...)
	}
	if allocRules(rules) {
		all = append(all, computeAlloc(pkgs, graph).report(rules)...)
	}
	sortDiagnostics(all)
	return all, nil
}
