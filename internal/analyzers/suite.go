package analyzers

import "strings"

// Rule pairs an analyzer with the packages it governs. The analyzers
// themselves are package-agnostic (so the analysistest golden packages
// exercise them directly); scoping is a driver decision.
type Rule struct {
	Analyzer *Analyzer
	Applies  func(importPath string) bool
}

// simCorePackages are the packages whose map-iteration order can reach
// scheduling decisions, floating-point accumulation, or event
// ordering. Report/chart packages stay out: they must sort for stable
// *output*, which mapiter's blanket rule would over-approximate.
var simCorePackages = map[string]bool{
	"bce/internal/client":   true,
	"bce/internal/fetch":    true,
	"bce/internal/rrsim":    true,
	"bce/internal/sched":    true,
	"bce/internal/sim":      true,
	"bce/internal/project":  true,
	"bce/internal/emserver": true,
}

// libraryPackage reports whether the import path is library code, as
// opposed to a main package (cmd/, examples/) that legitimately owns
// its process: roots like signal-bound contexts or wall-clock
// timestamps belong there.
func libraryPackage(importPath string) bool {
	return !strings.HasPrefix(importPath, "bce/cmd/") &&
		!strings.HasPrefix(importPath, "bce/examples/")
}

func everywhere(string) bool { return true }

// Suite returns the determinism rules bcelint and CI enforce.
func Suite() []Rule {
	return []Rule{
		{NoWallTime, libraryPackage},
		{SeededRand, everywhere},
		{MapIter, func(path string) bool { return simCorePackages[path] }},
		{CtxPass, libraryPackage},
	}
}

// RunSuite loads the packages matching patterns (from dir) and applies
// every applicable rule, returning all diagnostics in file order.
func RunSuite(dir string, patterns []string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, rule := range Suite() {
			if !rule.Applies(pkg.ImportPath) {
				continue
			}
			diags, err := RunAnalyzer(rule.Analyzer, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	return all, nil
}
