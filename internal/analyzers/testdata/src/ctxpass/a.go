// Package a is the ctxpass golden package: fresh context roots are
// flagged; threading a caller's context and //bce:ctxshim-marked
// compatibility wrappers are not.
package a

import "context"

func bad() context.Context {
	ctx := context.Background() // want `context\.Background\(\) severs`
	_ = context.TODO()          // want `context\.TODO\(\) severs`
	return ctx
}

// Run is the context-free compatibility wrapper around RunContext.
//
//bce:ctxshim
func Run() error { return RunContext(context.Background()) }

// RunContext threads the caller's context; derived contexts are fine.
func RunContext(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return ctx.Err()
}
