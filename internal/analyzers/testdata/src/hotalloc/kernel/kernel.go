// Package kernel stands in for the emulation kernel: its //bce:hotpath
// functions must be allocation-free, directly and through everything
// they call in the module. Direct sites are flagged where they occur;
// laundered ones surface at the call site with the witness chain.
package kernel

import (
	"fmt"

	"hotalloc/helper"
)

// debug mimics internal/invariant.Enabled: blocks under a compile-time
// false constant are dead code and must not be scanned.
const debug = false

// Kernel is a reusable scratch simulator in the rrsim mold.
type Kernel struct {
	buf   []float64
	seats []int
	evs   []ev
}

var sink any

// Step is the per-event hot loop: self-appends to retained scratch and
// a frame-local temporary are fine; the laundered allocation inside
// helper.Fold is not.
//
//bce:hotpath
func (k *Kernel) Step(n int) float64 {
	k.buf = k.buf[:0]
	for i := 0; i < n; i++ {
		k.buf = append(k.buf, float64(i)) // self-append: amortized, allowed
	}
	tmp := make([]float64, 8) // frame-local scratch, never escapes: allowed
	var acc float64
	for _, v := range tmp {
		acc += v
	}
	if debug {
		s := fmt.Sprintf("n=%d", n) // dead under const false: not scanned
		_ = s
	}
	acc += helper.Lean(k.buf)
	return acc + helper.Fold(k.buf) // want `hotalloc/helper\.Fold → hotalloc/helper\.tally → hotalloc/helper\.scratch → make\(\[\]float64\) escapes the frame`
}

// Grow returns a fresh slice from the hot path.
//
//bce:hotpath
func Grow(n int) []float64 {
	return make([]float64, n) // want `make\(\[\]float64\) escapes the frame`
}

// Reset stores a fresh slice into the receiver — a heap store.
//
//bce:hotpath
func (k *Kernel) Reset(n int) {
	k.seats = make([]int, n) // want `make\(\[\]int\) escapes the frame`
}

// GrowOK exercises //bce:allocok placement: on the flagged line and on
// the line above it.
//
//bce:hotpath
func (k *Kernel) GrowOK(n int) {
	if cap(k.buf) < n {
		k.buf = make([]float64, n) //bce:allocok amortized grow path, proportional to fleet size
	}
	k.buf = k.buf[:n]
	if cap(k.seats) < n {
		//bce:allocok amortized grow path, proportional to fleet size
		k.seats = make([]int, n)
	}
	k.seats = k.seats[:n]
}

// Justified blesses a laundered allocation at the call site: the
// directive stops the interprocedural report.
//
//bce:hotpath
func Justified(vals []float64) float64 {
	return helper.Fold(vals) //bce:allocok cold startup path, runs once per scenario
}

// Outer calls another hotpath function that allocates: the finding is
// reported once, inside Inner, not at this call edge.
//
//bce:hotpath
func Outer() []float64 {
	return Inner(3)
}

//bce:hotpath
func Inner(n int) []float64 {
	return make([]float64, n) // want `make\(\[\]float64\) escapes the frame`
}

// Drive dispatches through an interface: CHA carries the allocating
// implementation's fact to the dynamic call site.
//
//bce:hotpath
func Drive(a helper.Accum) float64 {
	return a.Add(1) // want `\(hotalloc/helper\.Accum\)\.Add → \(\*hotalloc/helper\.Boxy\)\.Add → append outside the x = append\(x, \.\.\.\) self-append idiom`
}

// Fingerprint converts bytes to string in the hot path.
//
//bce:hotpath
func Fingerprint(b []byte) int {
	s := string(b) // want `conversion string\(b\) allocates and copies`
	return len(s)
}

// Describe calls into fmt.
//
//bce:hotpath
func Describe(x int) string {
	return fmt.Sprintf("x=%d", x) // want `call into fmt\.Sprintf allocates`
}

// Spread makes a variadic call without an existing slice to spread.
//
//bce:hotpath
func Spread(a, b int) int {
	return helper.Variadic(a, b) // want `variadic call constructs a temporary argument slice`
}

// CopyJoin appends to a slice it does not own.
//
//bce:hotpath
func CopyJoin(dst, extra []float64) []float64 {
	out := append(dst, extra...) // want `append outside the x = append\(x, \.\.\.\) self-append idiom`
	return out
}

// Capture closes over a local.
//
//bce:hotpath
func Capture(n int) int {
	total := 0
	add := func(x int) { total += x } // want `closure captures total and allocates`
	add(n)
	return total
}

// BoxAssign boxes a concrete value into an interface-typed variable.
//
//bce:hotpath
func BoxAssign(v int) {
	sink = v // want `assigning int into an interface boxes it`
}

// ev is a value event record.
type ev struct {
	at   float64
	kind int
}

// Push appends a value composite to retained scratch: the struct is
// copied into the backing array, no allocation beyond the amortized
// self-append.
//
//bce:hotpath
func (k *Kernel) Push(at float64) {
	k.evs = append(k.evs, ev{at: at, kind: 1})
	var cur ev
	cur = ev{at: at} // value copy, not an allocation
	_ = cur
}

// NewEv takes the address of a composite, forcing it to the heap.
//
//bce:hotpath
func NewEv(at float64) *ev {
	return &ev{at: at} // want `composite literal .*ev escapes the frame`
}

// Tabulate builds an escaping slice literal.
//
//bce:hotpath
func (k *Kernel) Tabulate() {
	k.buf = []float64{1, 2, 3} // want `composite literal \[\]float64 escapes the frame`
}

// BoxArg boxes a concrete value into an interface parameter.
//
//bce:hotpath
func BoxArg(v float64) {
	sinkIface(v) // want `passing float64 boxes it into an interface`
}

func sinkIface(v any) { _ = v }
