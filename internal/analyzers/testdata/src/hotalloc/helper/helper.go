// Package helper holds innocent-looking helpers whose allocations are
// laundered into the kernel's hotpath roots: none of them is annotated
// //bce:hotpath, so the direct pass stays quiet here and every finding
// must surface interprocedurally, at the kernel call site, with the
// witness chain.
package helper

// Fold launders an allocation two hops deep: Fold → tally → scratch.
func Fold(vals []float64) float64 {
	return tally(vals)
}

func tally(vals []float64) float64 {
	tmp := scratch(len(vals))
	copy(tmp, vals)
	var acc float64
	for _, v := range tmp {
		acc += v
	}
	return acc
}

func scratch(n int) []float64 {
	return make([]float64, n)
}

// Lean is allocation-free all the way down: no fact, no report at its
// hotpath call sites.
func Lean(vals []float64) float64 {
	var acc float64
	for _, v := range vals {
		acc += v
	}
	return acc
}

// Variadic sums its argument slice without allocating itself; the
// temporary slice is constructed at the call site.
func Variadic(vs ...int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

// Accum is dispatched dynamically from the kernel; class-hierarchy
// analysis must carry the allocating implementation's fact through the
// interface method to the dynamic call site.
type Accum interface {
	Add(x float64) float64
}

// Boxy allocates a fresh backing array on every Add.
type Boxy struct{ vals []float64 }

func (b *Boxy) Add(x float64) float64 {
	b.vals = append([]float64{x}, b.vals...)
	return x
}

// Tight is the allocation-free implementation.
type Tight struct{ sum float64 }

func (t *Tight) Add(x float64) float64 {
	t.sum += x
	return t.sum
}
