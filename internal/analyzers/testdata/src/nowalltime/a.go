// Package a is the nowalltime golden package: flagged wall-clock
// reads, the three //bce:wallclock allowlist placements, and benign
// time-package calls.
package a

import "time"

func bad() {
	_ = time.Now()          // want `wall-clock time\.Now`
	time.Sleep(time.Second) // want `wall-clock time\.Sleep`
	start := time.Now()     // want `wall-clock time\.Now`
	_ = time.Since(start)   // want `wall-clock time\.Since`
}

func allowedSameLine() {
	_ = time.Now() //bce:wallclock profiling hook
}

func allowedLineAbove() {
	//bce:wallclock upload timestamp
	_ = time.Now()
}

// allowedByDoc measures host time deliberately; the directive in the
// doc comment covers the whole function.
//
//bce:wallclock
func allowedByDoc() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// closures pins directive resolution for function literals: a marker
// on the literal's opening line, or the line above it, covers the
// whole body — FuncLits have no doc comment for the FuncDecl rule to
// see.
func closures() {
	f := func() { //bce:wallclock timing closure measures host time
		_ = time.Now()
		time.Sleep(time.Second)
	}
	//bce:wallclock elapsed-time probe
	g := func() time.Duration {
		start := time.Now()
		return time.Since(start)
	}
	h := func() {
		_ = time.Now() // want `wall-clock time\.Now`
	}
	f()
	_ = g()
	h()
}

func benign() time.Time {
	after := time.After // a value reference, not a wall-clock read we police
	_ = after
	return time.Date(2011, 5, 20, 0, 0, 0, 0, time.UTC)
}
