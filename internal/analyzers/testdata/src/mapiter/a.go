// Package a is the mapiter golden package: ranging over maps (named
// or literal types) is flagged; slices, strings, channels, and
// //bce:unordered-annotated loops are not.
package a

import "sort"

type registry map[string]float64

func bad(m map[string]int, r registry) float64 {
	var sum float64
	for _, v := range r { // want `range over map`
		sum += v
	}
	for k := range m { // want `range over map`
		_ = k
	}
	return sum
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //bce:unordered collecting keys to sort below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// minValue computes a pure min over a set.
//
//bce:unordered
func minValue(r registry) float64 {
	best := 0.0
	for _, v := range r {
		if v < best {
			best = v
		}
	}
	return best
}

func otherRanges(xs []int, s string, ch chan int, n int) {
	for range xs {
	}
	for range s {
	}
	for range ch {
	}
	for range n {
	}
}
