// Package noretain exercises the //bce:scratch retention contract: a
// scratch API must not retain references to caller-provided slices or
// pointers beyond the call. Deep copies of value elements are fine;
// storing the caller's backing arrays or pointees is not.
package noretain

// Job carries only values, so copying its elements is a deep copy.
type Job struct {
	ID     int
	Weight float64
}

// Linked carries a reference, so even copied elements retain caller
// memory.
type Linked struct {
	Deps []int
}

// Sim is a reusable scratch simulator in the rrsim mold.
type Sim struct {
	jobs      []Job
	links     []Linked
	out       []*Job
	byID      map[int]*Job
	last      *Job
	lastTotal float64
	notify    chan *Job
}

var registry []*Job

// Run retains the caller's slice and an interior pointer.
//
//bce:scratch
func (s *Sim) Run(jobs []Job) {
	s.jobs = jobs // want `stores a caller-provided reference into the receiver \(s\)`
	for i := range jobs {
		s.last = &jobs[i] // want `stores a caller-provided reference into the receiver \(s\)`
	}
}

// RunCopy reuses its scratch correctly: value elements are deep-copied
// into retained storage, nothing aliases the caller.
//
//bce:scratch
func (s *Sim) RunCopy(jobs []Job) {
	s.jobs = append(s.jobs[:0], jobs...)
	if len(s.jobs) < len(jobs) {
		s.jobs = make([]Job, len(jobs))
	}
	copy(s.jobs, jobs)
}

// RunLinked deep-copies elements that themselves carry references —
// still a retention.
//
//bce:scratch
func (s *Sim) RunLinked(links []Linked) {
	s.links = append(s.links[:0], links...) // want `stores a caller-provided reference into the receiver \(s\)`
}

// Alias launders the slice through a local before storing it.
//
//bce:scratch
func (s *Sim) Alias(jobs []Job) {
	view := jobs[1:]
	s.jobs = view // want `stores a caller-provided reference into the receiver \(s\)`
}

// Fill shows the copy builtin both ways: value elements deep-copy,
// pointer elements retain the pointees.
//
//bce:scratch
func (s *Sim) Fill(jobs []Job, ptrs []*Job) {
	if len(s.jobs) < len(jobs) {
		s.jobs = make([]Job, len(jobs))
	}
	copy(s.jobs, jobs)
	copy(s.out, ptrs) // want `stores a caller-provided reference into the receiver \(s\)`
}

// Index stores interior pointers into a retained map.
//
//bce:scratch
func (s *Sim) Index(jobs []Job) {
	for i := range jobs {
		s.byID[jobs[i].ID] = &jobs[i] // want `stores a caller-provided reference into the receiver \(s\)`
	}
}

// Send retains through a held channel.
//
//bce:scratch
func (s *Sim) Send(j *Job) {
	s.notify <- j // want `stores a caller-provided reference into the receiver \(s\)`
}

// Register retains into package-level state.
//
//bce:scratch
func Register(j *Job) {
	registry = append(registry, j) // want `stores a caller-provided reference into package-level registry`
}

// Sum stores only a computed value: values are not references.
//
//bce:scratch
func (s *Sim) Sum(jobs []Job) float64 {
	var total float64
	for i := range jobs {
		total += jobs[i].Weight
	}
	s.lastTotal = total
	return total
}

// Hold documents a deliberate alias with //bce:retainok.
//
//bce:scratch
func (s *Sim) Hold(j *Job) {
	s.last = j //bce:retainok aliased only until the next Run resets it (documented contract)
}

// Retain is not annotated //bce:scratch: out of contract, unchecked.
func (s *Sim) Retain(jobs []Job) {
	s.jobs = jobs
}
