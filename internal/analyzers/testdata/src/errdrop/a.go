// Package a is the errdrop golden package: bare call statements,
// defer/go statements, and blank assignments that drop an error are
// flagged; handled errors, //bce:errok drops, and the infallible-
// writer exemptions (fmt, bytes.Buffer, strings.Builder) are not.
package a

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

func work() error { return errors.New("x") }

func pair() (int, error) { return 0, errors.New("x") }

func bad(f *os.File) {
	work()         // want `error result of work silently discarded`
	_ = work()     // want `error result of work discarded into _`
	n, _ := pair() // want `error result of pair discarded into _`
	_ = n
	defer f.Close() // want `error result of Close silently discarded`
	go work()       // want `error result of work silently discarded`
	os.Remove("x")  // want `error result of os.Remove silently discarded`
}

func handled() error {
	if err := work(); err != nil {
		return err
	}
	n, err := pair()
	_ = n
	return err
}

func allowed(f *os.File) {
	work() //bce:errok best-effort telemetry write
	//bce:errok read-side close: the decode above already succeeded
	f.Close()
	//bce:errok
	_ = work()
}

// cleanup tears down best-effort; the doc directive covers the body.
//
//bce:errok
func cleanup(f *os.File) {
	f.Close()
	work()
}

func closures(f *os.File) {
	g := func() { //bce:errok directive on the closure covers its body
		work()
	}
	g()
	h := func() {
		work() // want `error result of work silently discarded`
	}
	h()
}

func exempt(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("hi")
	fmt.Fprintf(buf, "x%d", 1)
	buf.WriteString("x")
	sb.WriteByte('x')
	io.Copy(sb, buf) // want `error result of io.Copy silently discarded`
}

func noError() {
	println("builtin, no error")
	_ = len("x")
	f := func() int { return 1 }
	f()
}
