// Package core stands in for a sim-core package: the golden test
// scopes nowalltime, seededrand and mapiter to it alone, so every
// laundered chain from interp/helper must be reported here, at the
// call site, exactly once, with the chain in the message.
package core

import "interp/helper"

func UseElapsed() float64 {
	return helper.Elapsed() // want `interp/helper\.Elapsed → interp/helper\.stamp → time\.Now`
}

func UseJitter() float64 {
	return helper.Jitter() // want `interp/helper\.Jitter → interp/helper\.draw → math/rand\.Float64`
}

func UseSum(m map[string]float64) float64 {
	return helper.SumValues(m) // want `interp/helper\.SumValues → range over map\[string\]float64`
}

// UseBlessed calls a helper whose wall-clock read carries a directive
// at the source: no fact, no report.
func UseBlessed() int64 {
	return helper.Blessed().Unix()
}

func UseCycle() (float64, float64) {
	a := helper.Ping(3) // want `interp/helper\.Ping → time\.Now`
	b := helper.Pong(3) // want `interp/helper\.Pong → interp/helper\.Ping → time\.Now`
	return a, b
}

func UseTickerStatic() float64 {
	return helper.Spin(helper.Clock{}, 2) // want `interp/helper\.Spin → \(interp/helper\.Ticker\)\.Tick → \(interp/helper\.Clock\)\.Tick → time\.Now`
}

func UseTickerDynamic(t helper.Ticker) float64 {
	return t.Tick(1) // want `\(interp/helper\.Ticker\)\.Tick → \(interp/helper\.Clock\)\.Tick → time\.Now`
}

// AllowedCallSite blesses the laundered read at the call site; the
// function-doc directive covers the body.
//
//bce:wallclock demo driver shows real elapsed time
func AllowedCallSite() float64 {
	return helper.Elapsed()
}

// AllowedClosure pins the FuncLit directive fix in the
// interprocedural path: the marker above the literal covers the
// laundered call inside it.
func AllowedClosure() func() float64 {
	//bce:wallclock profiling closure measures host time
	return func() float64 {
		return helper.Elapsed()
	}
}
