module interp

go 1.22
