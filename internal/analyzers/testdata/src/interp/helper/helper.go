// Package helper is deliberately *outside* the scope the
// interprocedural golden test governs: nothing here is flagged
// directly. Every unsanctioned primitive below seeds a fact that must
// surface in interp/core, at the call site, with the full chain.
package helper

import (
	"math/rand"
	"time"
)

// Elapsed launders a wall-clock read behind one more call.
func Elapsed() float64 { return stamp() }

func stamp() float64 { return float64(time.Now().UnixNano()) }

// Jitter launders a global math/rand draw.
func Jitter() float64 { return draw() }

func draw() float64 { return rand.Float64() }

// SumValues ranges over a map without sorting.
func SumValues(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Blessed reads host time deliberately; the directive stops the fact
// at its source, so callers stay clean.
//
//bce:wallclock upload timestamps are real time by definition
func Blessed() time.Time { return time.Now() }

// Ping and Pong are mutually recursive: the wall-clock fact must reach
// both through the cycle, and the fixpoint must terminate.
func Ping(n int) float64 {
	if n == 0 {
		return float64(time.Now().Unix())
	}
	return Pong(n - 1)
}

func Pong(n int) float64 {
	if n == 0 {
		return 0
	}
	return Ping(n - 1)
}
