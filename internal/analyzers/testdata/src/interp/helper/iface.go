package helper

import "time"

// Ticker's Tick is implemented by Clock, whose body calls back through
// Spin's interface dispatch: a call-graph cycle that exists only via
// the CHA edges. The engine must still converge and carry the
// wall-clock fact to every dynamic call site.
type Ticker interface {
	Tick(n int) float64
}

// Clock implements Ticker with a wall-clock read at the base case.
type Clock struct{}

// Tick recurses through the interface before bottoming out on
// time.Now.
func (Clock) Tick(n int) float64 {
	if n == 0 {
		return float64(time.Now().UnixNano())
	}
	return Spin(Clock{}, n-1)
}

// Spin dispatches dynamically, closing the cycle.
func Spin(t Ticker, n int) float64 { return t.Tick(n) }
