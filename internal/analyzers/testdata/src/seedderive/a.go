// Package a is the seedderive golden package: the accept/reject table
// for seed derivations. DeriveSeed is clean, ad-hoc arithmetic into an
// RNG constructor or Seed field is flagged — including the exact
// seed+h*101 shape the fleet package shipped (one emulation per host,
// seeds seed+0·101, seed+1·101, ... — adjacent hosts landed on
// correlated rand.Source streams), pinned here as a regression.
package a

import (
	"math/rand"
	rand2 "math/rand/v2"

	"bce/internal/runner"
	"bce/internal/stats"
)

// Spec mirrors the shape of client.Config: an int64 Seed field set by
// callers fanning out runs.
type Spec struct {
	Seed int64
	Name string
}

func accept(base int64, i, h int) {
	_ = stats.NewRNG(base)
	_ = stats.NewRNG(42)
	_ = stats.NewRNG(runner.DeriveSeed(base, i))
	_ = stats.NewRNG(runner.DeriveSeed(base, i+1)) // arithmetic feeding the mixer, not the RNG
	_ = Spec{Seed: runner.DeriveSeed(base, h), Name: "ok"}
	_ = rand.New(rand.NewSource(base))
	const k = 100 + 1
	_ = stats.NewRNG(k + 2) // constant arithmetic cannot collide per-index
	var s Spec
	s.Seed = runner.DeriveSeed(base, i)
	s.Name = "untouched"
	_ = s
}

func reject(base, seed int64, i, h int) {
	_ = stats.NewRNG(base + int64(i))   // want `ad-hoc seed arithmetic`
	_ = stats.NewRNG(base * 31)         // want `ad-hoc seed arithmetic`
	_ = stats.NewRNG(base ^ int64(h))   // want `ad-hoc seed arithmetic`
	_ = stats.NewRNG(int64(i) + base)   // want `ad-hoc seed arithmetic`
	_ = rand.NewSource(base + int64(i)) // want `ad-hoc seed arithmetic`

	// The pinned fleet regression: Seed: seed + h*101 in a composite
	// literal, exactly as fleet.EvaluateContext once wrote it.
	_ = Spec{Seed: seed + int64(h)*101} // want `ad-hoc seed arithmetic`

	var s Spec
	s.Seed = base + int64(i) // want `ad-hoc seed arithmetic`
	_ = s
}

func conversionsDoNotLaunder(base int64, i int) {
	_ = stats.NewRNG(int64(int(base) + i))         // want `ad-hoc seed arithmetic`
	_ = stats.NewRNG((base + int64(i)))            // want `ad-hoc seed arithmetic`
	_ = rand2.NewPCG(uint64(base+1), uint64(base)) // want `ad-hoc seed arithmetic`
}

// forkEquivalent mixes entropy deliberately, the way stats.RNG.Fork
// does inside its own (suite-exempt) package; outside that package the
// escape hatch is the directive.
func forkEquivalent(entropy, label int64) {
	_ = stats.NewRNG(entropy ^ label) //bce:seedok label-decorrelated child stream, mirrors stats.RNG.Fork
}
