module conc

go 1.22
