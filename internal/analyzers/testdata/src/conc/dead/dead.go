// Package dead exercises the lockorder analyzer: an A→B / B→A cycle
// (the B→A half hidden behind a helper call) reported exactly once
// with both acquisition chains, and a reentrant self-cycle through a
// method call.
package dead

import "sync"

var (
	amu sync.Mutex
	bmu sync.Mutex
)

// AB takes the locks in A→B order.
func AB() {
	amu.Lock()
	defer amu.Unlock()
	bmu.Lock() // want `lock-order cycle \(potential deadlock\): conc/dead\.AB acquires dead\.bmu while holding dead\.amu; conc/dead\.BA acquires dead\.amu while holding dead\.bmu via conc/dead\.grabA`
	defer bmu.Unlock()
}

// BA takes B, then A through a helper — the interprocedural half of
// the cycle.
func BA() {
	bmu.Lock()
	defer bmu.Unlock()
	grabA()
}

func grabA() {
	amu.Lock()
	defer amu.Unlock()
}

// R's methods are not reentrant: Outer holds r.mu across a call into
// inner, which reacquires it — guaranteed self-deadlock.
type R struct {
	mu sync.Mutex
}

func (r *R) inner() {
	r.mu.Lock()
	defer r.mu.Unlock()
}

func (r *R) Outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner() // want `lock-order cycle \(potential deadlock\): .*Outer calls .*inner, which reacquires the held dead\.R\.mu`
}
