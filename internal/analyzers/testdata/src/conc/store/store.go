// Package store exercises the guardedby analyzer: annotated fields,
// held-lock tracking through defer, RWMutex read/write strength,
// helpers discharged at locked call sites, and cross-function
// requirement propagation with witness chains.
package store

import "sync"

type Store struct {
	mu    sync.Mutex
	count int //bce:guardedby mu
}

func (s *Store) Inc() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func (s *Store) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *Store) Reset() {
	s.count = 0 // want `write of store\.Store\.count without holding store\.Store\.mu`
}

// NewStore pre-seeds a Store; nothing else can see it yet.
func NewStore(n int) *Store {
	s := &Store{}
	s.count = n //bce:lockok construction precedes publication
	return s
}

// bump adds n to the counter; callers hold s.mu.
func (s *Store) bump(n int) {
	s.count += n
}

// Add discharges bump's lock requirement.
func (s *Store) Add(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump(n)
}

// AddRacy imports bump's requirement without discharging it: the
// violation surfaces here, at the root, with the chain down to the
// raw write.
func (s *Store) AddRacy(n int) {
	s.bump(n) // want `call into .*bump needs store\.Store\.mu held \(.*AddRacy → .*bump → write of store\.Store\.count\)`
}

type Gauge struct {
	mu  sync.RWMutex
	val int //bce:guardedby mu
}

func (g *Gauge) Read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// BadWrite holds only the read lock across a write.
func (g *Gauge) BadWrite(v int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val = v // want `write of store\.Gauge\.val without holding store\.Gauge\.mu`
}

func (g *Gauge) Set(v int) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// Registry demonstrates the qualified Type.field form: entry records
// are owned — and locked — by the containing Registry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry //bce:guardedby mu
}

type entry struct {
	hits int //bce:guardedby Registry.mu
}

func (r *Registry) Hit(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[k]; ok {
		e.hits++
	}
}

func (r *Registry) Peek(k string) int {
	if e, ok := r.entries[k]; ok { // want `read of store\.Registry\.entries without holding store\.Registry\.mu`
		return e.hits // want `read of store\.entry\.hits without holding store\.Registry\.mu`
	}
	return 0
}

type broken struct {
	n int //bce:guardedby nosuch // want `no sibling field or package-level variable`
}
