// Package bg exercises the goleak analyzer: goroutines with and
// without visible termination paths — lifeline arguments, channel
// signals in the spawned body, awaited WaitGroups, interprocedural
// terminates facts, and the //bce:bgok escape.
package bg

import (
	"context"
	"sync"
)

// Leak spawns work with no termination path at all.
func Leak(work func()) {
	go work() // want `goroutine has no visible termination path`
}

// OKCtx hands the goroutine a context — a caller-provided lifeline.
func OKCtx(ctx context.Context, work func(context.Context)) {
	go work(ctx)
}

// OKClosureCtx's closure waits on the context itself.
func OKClosureCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// OKStopChan's closure selects on a stop channel.
func OKStopChan(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}

func spin() {}

// OKWaitGroup tracks its goroutines with an awaited WaitGroup.
func OKWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spin()
		}()
	}
	wg.Wait()
}

// LeakUntracked uses a WaitGroup nothing ever waits on.
func LeakUntracked(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `goroutine has no visible termination path`
			defer wg.Done()
			spin()
		}()
	}
}

// Server's run loop terminates two calls deep: Start spawns serveOne,
// serveOne calls loop, and loop selects on the quit channel — a
// terminates fact propagated through the call graph.
type Server struct {
	quit chan struct{}
}

func (s *Server) loop() {
	for {
		select {
		case <-s.quit:
			return
		}
	}
}

func (s *Server) serveOne() {
	s.loop()
}

func (s *Server) Start() {
	go s.serveOne()
}

// FireAndForget is deliberate: best-effort, process-lifetime work.
func FireAndForget(f func()) {
	go f() //bce:bgok best-effort, process-lifetime
}
