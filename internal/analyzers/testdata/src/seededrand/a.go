// Package a is the seededrand golden package: global draws from both
// math/rand generations are flagged; explicitly seeded generators and
// their methods are not.
package a

import (
	mrand "math/rand"
	"math/rand/v2"
)

func bad() {
	_ = mrand.Intn(10)                  // want `global math/rand\.Intn`
	_ = mrand.Float64()                 // want `global math/rand\.Float64`
	mrand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	_ = rand.IntN(10)                   // want `global math/rand/v2\.IntN`
	_ = rand.Float64()                  // want `global math/rand/v2\.Float64`
}

func seeded() {
	r := mrand.New(mrand.NewSource(42))
	_ = r.Intn(10)
	_ = r.Perm(3)
	z := mrand.NewZipf(r, 1.1, 1, 100)
	_ = z.Uint64()
	p := rand.New(rand.NewPCG(1, 2))
	_ = p.IntN(10)
	c := rand.New(rand.NewChaCha8([32]byte{}))
	_ = c.Uint64()
}
