package analyzers

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// This file is the module-level half of the allocation tier: a
// "transitively allocates" fact fixpoint over the same call graph and
// Tarjan SCC machinery the determinism (facts.go) and concurrency
// (concurrency.go) tiers use. The per-package hotalloc pass reports
// direct allocation sites inside //bce:hotpath functions; this engine
// reports laundered allocations — a hotpath root calling an innocent-
// looking helper that allocates two hops down — at the hotpath call
// site, with the witness chain to the raw allocation. Interface calls
// flow through the synthetic CHA nodes, so an implementation that
// allocates taints every dynamic call site of the method.
//
// Calls leaving the module are opaque (except the fmt family, which
// the direct pass flags at the call site): the contract covers code we
// can see, which is the same documented under-approximation as the
// other fact tiers. An //bce:allocok directive on a call site stops
// fact propagation through that edge — the allocation is justified, so
// neither the caller nor anything above it inherits it.

// allocInfo is one function's witness that it (transitively)
// allocates: where inside the function, and the next hop toward the
// raw allocation site (nil at the leaf). Witnesses are assigned
// exactly once, so chains stay finite inside call-graph cycles.
type allocInfo struct {
	pos  token.Pos
	what string      // leaf only: "make([]rank) escapes the frame and allocates"
	via  *types.Func // next hop toward the allocation; nil at the leaf
}

// allocEngine holds the computed allocation facts for the module.
type allocEngine struct {
	fset    *token.FileSet
	graph   *callGraph
	markers map[*Package]*markerIndex
	hot     map[*types.Func]bool
	facts   map[*types.Func]*allocInfo
	dead    map[*cgNode][]posRange
}

// allocRules reports whether the allocation tier is in the rule set,
// so RunRules can skip the engine entirely for other suites.
func allocRules(rules []Rule) bool {
	for _, r := range rules {
		if r.Analyzer.Name == "hotalloc" {
			return true
		}
	}
	return false
}

// computeAlloc builds the engine: the module-wide //bce:hotpath set,
// per-function direct seeds from the shared allocation-site scanner,
// then the fact fixpoint over strongly connected components in reverse
// topological order.
func computeAlloc(pkgs []*Package, graph *callGraph) *allocEngine {
	e := &allocEngine{
		graph:   graph,
		markers: make(map[*Package]*markerIndex, len(pkgs)),
		hot:     make(map[*types.Func]bool),
		facts:   make(map[*types.Func]*allocInfo),
		dead:    make(map[*cgNode][]posRange),
	}
	for _, pkg := range pkgs {
		e.fset = pkg.Fset // Load shares one FileSet across the module
		e.markers[pkg] = indexMarkers(pkg.Fset, pkg.Files)
	}

	for _, n := range graph.order {
		if n.body == nil || n.pkg == nil {
			continue
		}
		if e.markers[n.pkg].allows(e.fset, "hotpath", n.body.Pos()) {
			e.hot[n.fn] = true
		}
	}

	for _, n := range graph.order {
		if n.body == nil || n.pkg == nil {
			continue
		}
		e.dead[n] = deadRangesIn(n.pkg.Info, n.body)
		sites := allocSitesIn(e.fset, n.pkg.Info, n.body, e.markers[n.pkg], e.hot)
		if len(sites) > 0 {
			e.facts[n.fn] = &allocInfo{pos: sites[0].pos, what: sites[0].what}
		}
	}

	for _, comp := range graph.sccs() {
		changed := true
		for changed {
			changed = false
			for _, n := range comp {
				if e.propagate(n) {
					changed = true
				}
			}
		}
	}
	return e
}

// propagate flows "allocates" facts across n's call edges: a callee
// with the fact gives it to n, unless the edge is compile-time dead or
// carries an //bce:allocok justification.
func (e *allocEngine) propagate(n *cgNode) bool {
	if e.facts[n.fn] != nil {
		return false // witness already assigned
	}
	var idx *markerIndex
	if n.pkg != nil {
		idx = e.markers[n.pkg]
	}
	for _, edge := range n.out {
		if e.graph.nodes[edge.callee] == nil {
			continue // callee outside the module: opaque
		}
		if e.facts[edge.callee] == nil {
			continue
		}
		pos := edge.pos
		if !pos.IsValid() {
			pos = n.fn.Pos() // synthetic CHA edge: anchor at the interface method
		}
		if edge.pos.IsValid() && inRanges(e.dead[n], edge.pos) {
			continue // call eliminated in default builds (invariant.Enabled)
		}
		if idx != nil && edge.pos.IsValid() && idx.allows(e.fset, "allocok", edge.pos) {
			continue // justified at the call site; callers do not inherit it
		}
		e.facts[n.fn] = &allocInfo{pos: pos, via: edge.callee}
		return true
	}
	return false
}

// report emits the interprocedural hotalloc diagnostics: every call
// edge from a //bce:hotpath function into an in-module callee that
// transitively allocates. Callees that are themselves //bce:hotpath
// are skipped — their violations are already reported where they
// occur, so each laundered allocation surfaces exactly once.
func (e *allocEngine) report(rules []Rule) []Diagnostic {
	var rule *Rule
	for i := range rules {
		if rules[i].Analyzer.Name == "hotalloc" {
			rule = &rules[i]
			break
		}
	}
	if rule == nil {
		return nil
	}
	var out []Diagnostic
	for _, n := range e.graph.order {
		if n.pkg == nil || !e.hot[n.fn] || !rule.Applies(n.pkg.ImportPath) {
			continue
		}
		idx := e.markers[n.pkg]
		for _, edge := range n.out {
			if e.graph.nodes[edge.callee] == nil || !edge.pos.IsValid() {
				continue
			}
			if e.facts[edge.callee] == nil || e.hot[edge.callee] {
				continue
			}
			if inRanges(e.dead[n], edge.pos) || idx.allows(e.fset, "allocok", edge.pos) {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: rule.Analyzer.Name,
				Pos:      e.fset.Position(edge.pos),
				Message: fmt.Sprintf("call into %s allocates on a //bce:hotpath function (%s); make the callee allocation-free, annotate it //bce:hotpath to enforce the contract there, or justify with //bce:allocok <reason>",
					edge.callee.FullName(), e.chainSummary(n.fn, edge)),
				Chain: e.chain(n.fn, edge),
			})
		}
	}
	return out
}

// chain renders the witness path from the hotpath root down to the
// raw allocation site.
func (e *allocEngine) chain(root *types.Func, edge cgEdge) []ChainStep {
	steps := []ChainStep{{
		Func: root.FullName(),
		Pos:  e.fset.Position(edge.pos),
		What: "calls " + edge.callee.FullName(),
	}}
	for cur := edge.callee; cur != nil && len(steps) < maxChainLen; {
		fi := e.facts[cur]
		if fi == nil {
			break
		}
		what := fi.what
		if fi.via != nil {
			what = "calls " + fi.via.FullName()
		}
		steps = append(steps, ChainStep{Func: cur.FullName(), Pos: e.fset.Position(fi.pos), What: what})
		cur = fi.via
	}
	return steps
}

// chainSummary is the compact one-line form: "sched.(*Enforcer).Enforce
// → sched.buildRanks → make([]rank) escapes the frame and allocates".
func (e *allocEngine) chainSummary(root *types.Func, edge cgEdge) string {
	parts := []string{root.FullName(), edge.callee.FullName()}
	for cur := edge.callee; len(parts) < maxChainLen; {
		fi := e.facts[cur]
		if fi == nil {
			break
		}
		if fi.via == nil {
			parts = append(parts, fi.what)
			break
		}
		parts = append(parts, fi.via.FullName())
		cur = fi.via
	}
	return strings.Join(parts, " → ")
}
