package analyzers

import "go/ast"

// SeededRand flags calls to the global math/rand and math/rand/v2
// top-level functions, whose shared process-wide state breaks seed
// threading: two emulations sharing the global stream perturb each
// other, and v2's globals cannot be seeded at all. Constructing an
// explicitly seeded generator (rand.New, rand.NewSource, ...) and
// calling its methods is allowed — that is what internal/stats.RNG
// wraps — so every draw traces back to the scenario seed.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions; all randomness must flow through " +
		"explicitly seeded generators (internal/stats.RNG)",
	Run: runSeededRand,
}

// randConstructors are the package-level functions that build
// explicitly seeded generators rather than drawing from global state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runSeededRand(pass *Pass) error {
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || randConstructors[fn.Name()] {
			return true
		}
		if !isPackageLevel(fn, "math/rand") && !isPackageLevel(fn, "math/rand/v2") {
			return true
		}
		pass.Reportf(call.Pos(),
			"global %s.%s draws from unseeded process-wide state; thread an internal/stats.RNG (or an explicitly seeded *rand.Rand) instead",
			fn.Pkg().Path(), fn.Name())
		return true
	})
	return nil
}
