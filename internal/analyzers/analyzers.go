// Package analyzers is BCE's contract-enforcing static-analysis
// suite. It mirrors the golang.org/x/tools/go/analysis API shape on the
// standard library alone (go/ast + go/types + gc export data via `go
// list -export`), because the module is intentionally dependency-free.
//
// Six analyzers enforce the determinism contract the paper's
// methodology rests on (see DESIGN.md §10):
//
//   - nowalltime: wall-clock time must not leak into the emulation —
//     sim time comes from the simulated clock.
//   - seededrand: all randomness flows through seeded generators
//     (internal/stats.RNG), never the global math/rand state.
//   - mapiter: core scheduling packages must not range over maps,
//     whose iteration order is deliberately randomized by the runtime.
//   - ctxpass: library code threads the caller's context instead of
//     minting context.Background()/TODO().
//   - seedderive: ad-hoc seed arithmetic (seed+i, seed*k, seed^h)
//     flowing into an RNG constructor or Seed field must go through
//     runner.DeriveSeed instead.
//   - errdrop: library code must not silently discard errors.
//
// Three more enforce the concurrency contract (DESIGN.md §10.2):
//
//   - guardedby: fields annotated //bce:guardedby <mu> are only
//     accessed with the lock held, tracked through the held-lock set
//     and checked across calls.
//   - goleak: every go statement has a visible termination path — a
//     context, a stop channel, or an awaited WaitGroup.
//   - lockorder: the module-wide lock-order graph stays acyclic;
//     cycles are reported as potential deadlocks with both chains.
//
// Two more enforce the allocation contract on the emulation kernel
// (DESIGN.md §10.3):
//
//   - hotalloc: functions annotated //bce:hotpath — and everything
//     they transitively call inside the module — must not allocate:
//     escaping composite literals and make/new, non-self-append
//     append, string<->[]byte conversions, interface boxing, closure
//     captures, variadic slice construction, and fmt calls.
//   - noretain: functions annotated //bce:scratch (the reusable-
//     simulator pattern) must not retain references to caller-provided
//     slices or pointers beyond the call.
//
// Several rules also propagate interprocedurally: a module-wide call
// graph and fact store (facts.go for the determinism facts,
// concurrency.go for requires-lock/acquires/terminates, allocfacts.go
// for transitively-allocates) surface a violation buried in an
// out-of-scope helper at the governed call site, with the full call
// chain.
//
// Escape hatches are directive comments: //bce:wallclock,
// //bce:unordered, //bce:ctxshim, //bce:seedok, //bce:errok,
// //bce:lockok, //bce:bgok, //bce:allocok and //bce:retainok, honored
// on the flagged line, the line above it, the enclosing function's doc
// comment, or (for closures) the function literal's opening line or
// the line above it. Every escape carries a trailing justification
// ("//bce:allocok amortized grow path"), enforced by the suite's
// hygiene meta-check.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check, structured like
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding. Interprocedural findings (a
// determinism fact laundered through helper calls, see facts.go) carry
// the call chain from the flagged call site down to the root primitive.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Chain    []ChainStep
}

// ChainStep is one hop of a laundered-fact call chain: inside Func, at
// Pos, What happens (a call to the next function in the chain, or the
// root primitive itself).
type ChainStep struct {
	Func string
	Pos  token.Position
	What string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report  func(Diagnostic)
	markers *markerIndex
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether the position is covered by the given
// directive marker (e.g. "wallclock" for //bce:wallclock): a marker
// comment on the same line, on the line immediately above, in the doc
// comment of the enclosing function declaration, or on (or immediately
// above) the opening line of an enclosing function literal.
func (p *Pass) Allowed(marker string, pos token.Pos) bool {
	if p.markers == nil {
		p.markers = indexMarkers(p.Fset, p.Files)
	}
	return p.markers.allows(p.Fset, marker, pos)
}

func (idx *markerIndex) allows(fset *token.FileSet, marker string, pos token.Pos) bool {
	where := fset.Position(pos)
	key := markerKey{file: where.Filename, marker: marker}
	if lines := idx.lines[key]; lines[where.Line] || lines[where.Line-1] {
		return true
	}
	for _, s := range idx.funcs[key] {
		if s.from <= where.Line && where.Line <= s.to {
			return true
		}
	}
	return false
}

type markerKey struct {
	file   string
	marker string
}

type lineSpan struct{ from, to int }

type markerIndex struct {
	lines map[markerKey]map[int]bool
	funcs map[markerKey][]lineSpan
}

// markersIn extracts the directive names from one comment group:
// "//bce:wallclock — profiling" yields ["wallclock"].
func markersIn(cg *ast.CommentGroup) []string {
	var out []string
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		text, ok := strings.CutPrefix(strings.TrimSpace(text), "bce:")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(text, " ")
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func indexMarkers(fset *token.FileSet, files []*ast.File) *markerIndex {
	idx := &markerIndex{
		lines: make(map[markerKey]map[int]bool),
		funcs: make(map[markerKey][]lineSpan),
	}
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		markersAt := make(map[int][]string) // line -> directive names on it
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := fset.Position(c.Pos()).Line
				for _, m := range markersIn(&ast.CommentGroup{List: []*ast.Comment{c}}) {
					key := markerKey{file: fileName, marker: m}
					if idx.lines[key] == nil {
						idx.lines[key] = make(map[int]bool)
					}
					idx.lines[key][line] = true
					markersAt[line] = append(markersAt[line], m)
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			span := lineSpan{
				from: fset.Position(fd.Pos()).Line,
				to:   fset.Position(fd.End()).Line,
			}
			for _, m := range markersIn(fd.Doc) {
				key := markerKey{file: fileName, marker: m}
				idx.funcs[key] = append(idx.funcs[key], span)
			}
		}
		// Function literals have no doc comment in the AST, so a marker
		// on the literal's opening line (or the line above it) covers
		// the whole literal body — without this, a directive on a
		// closure would only bless the opening line itself.
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			span := lineSpan{
				from: fset.Position(lit.Pos()).Line,
				to:   fset.Position(lit.End()).Line,
			}
			for _, m := range append(markersAt[span.from], markersAt[span.from-1]...) {
				key := markerKey{file: fileName, marker: m}
				idx.funcs[key] = append(idx.funcs[key], span)
			}
			return true
		})
	}
	return idx
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// through a selector (pkg.F or recv.M), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// staticCallee resolves a call through either a plain identifier
// (same-package helper()) or a selector (pkg.F, recv.M) to the
// *types.Func it names, or nil for calls of function values, builtins
// and type conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPackageLevel reports whether fn is a package-level function (not a
// method) of the package with the given import path.
func isPackageLevel(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// inspect walks every file of the pass in source order.
func (p *Pass) inspect(visit func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, visit)
	}
}
