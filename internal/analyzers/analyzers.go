// Package analyzers is BCE's determinism-enforcing static-analysis
// suite. It mirrors the golang.org/x/tools/go/analysis API shape on the
// standard library alone (go/ast + go/types + gc export data via `go
// list -export`), because the module is intentionally dependency-free.
//
// Four analyzers enforce the determinism contract the paper's
// methodology rests on (see DESIGN.md §10):
//
//   - nowalltime: wall-clock time must not leak into the emulation —
//     sim time comes from the simulated clock.
//   - seededrand: all randomness flows through seeded generators
//     (internal/stats.RNG), never the global math/rand state.
//   - mapiter: core scheduling packages must not range over maps,
//     whose iteration order is deliberately randomized by the runtime.
//   - ctxpass: library code threads the caller's context instead of
//     minting context.Background()/TODO().
//
// Escape hatches are directive comments: //bce:wallclock,
// //bce:unordered and //bce:ctxshim, honored on the flagged line, the
// line above it, or the enclosing function's doc comment.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check, structured like
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report  func(Diagnostic)
	markers *markerIndex
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether the position is covered by the given
// directive marker (e.g. "wallclock" for //bce:wallclock): a marker
// comment on the same line, on the line immediately above, or in the
// doc comment of the enclosing function declaration.
func (p *Pass) Allowed(marker string, pos token.Pos) bool {
	if p.markers == nil {
		p.markers = indexMarkers(p.Fset, p.Files)
	}
	where := p.Fset.Position(pos)
	key := markerKey{file: where.Filename, marker: marker}
	if lines := p.markers.lines[key]; lines[where.Line] || lines[where.Line-1] {
		return true
	}
	for _, s := range p.markers.funcs[key] {
		if s.from <= where.Line && where.Line <= s.to {
			return true
		}
	}
	return false
}

type markerKey struct {
	file   string
	marker string
}

type lineSpan struct{ from, to int }

type markerIndex struct {
	lines map[markerKey]map[int]bool
	funcs map[markerKey][]lineSpan
}

// markersIn extracts the directive names from one comment group:
// "//bce:wallclock — profiling" yields ["wallclock"].
func markersIn(cg *ast.CommentGroup) []string {
	var out []string
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		text, ok := strings.CutPrefix(strings.TrimSpace(text), "bce:")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(text, " ")
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func indexMarkers(fset *token.FileSet, files []*ast.File) *markerIndex {
	idx := &markerIndex{
		lines: make(map[markerKey]map[int]bool),
		funcs: make(map[markerKey][]lineSpan),
	}
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range markersIn(&ast.CommentGroup{List: []*ast.Comment{c}}) {
					key := markerKey{file: fileName, marker: m}
					if idx.lines[key] == nil {
						idx.lines[key] = make(map[int]bool)
					}
					idx.lines[key][fset.Position(c.Pos()).Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			span := lineSpan{
				from: fset.Position(fd.Pos()).Line,
				to:   fset.Position(fd.End()).Line,
			}
			for _, m := range markersIn(fd.Doc) {
				key := markerKey{file: fileName, marker: m}
				idx.funcs[key] = append(idx.funcs[key], span)
			}
		}
	}
	return idx
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// through a selector (pkg.F or recv.M), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// isPackageLevel reports whether fn is a package-level function (not a
// method) of the package with the given import path.
func isPackageLevel(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// inspect walks every file of the pass in source order.
func (p *Pass) inspect(visit func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, visit)
	}
}
