package analyzers_test

import (
	"testing"

	"bce/internal/analyzers"
)

// TestRepoCleanUnderSuite is the enforcement point for the determinism
// contract: the whole module must pass every rule of the suite, so a
// wall-clock read, global rand draw, unsorted map range in a core
// package, fresh context root, ad-hoc seed arithmetic, or silently
// dropped library error fails `go test ./...` as well as the dedicated
// CI bcelint step — including violations laundered through helper
// packages, which the fact engine reports at the governed call site.
func TestRepoCleanUnderSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command to load and type-check the module")
	}
	diags, err := analyzers.RunSuite("", []string{"bce/..."})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSuiteScope pins the driver's package scoping so a refactor
// cannot silently drop a rule from the packages it guards.
func TestSuiteScope(t *testing.T) {
	rules := make(map[string]func(string) bool)
	for _, r := range analyzers.Suite() {
		rules[r.Analyzer.Name] = r.Applies
	}
	if len(rules) != 9 {
		t.Fatalf("suite has %d rules, want 9", len(rules))
	}
	cases := []struct {
		analyzer string
		path     string
		want     bool
	}{
		{"nowalltime", "bce/internal/client", true},
		{"nowalltime", "bce/internal/web", true},
		{"nowalltime", "bce/cmd/bcectl", false},
		{"nowalltime", "bce/examples/quickstart", false},
		{"seededrand", "bce/cmd/bcectl", true},
		{"seededrand", "bce/internal/stats", true},
		{"mapiter", "bce/internal/client", true},
		{"mapiter", "bce/internal/rrsim", true},
		{"mapiter", "bce/internal/report", false},
		{"mapiter", "bce/internal/metrics", false},
		{"ctxpass", "bce", true},
		{"ctxpass", "bce/internal/harness", true},
		{"ctxpass", "bce/cmd/bce", false},
		{"seedderive", "bce/internal/fleet", true},
		{"seedderive", "bce/cmd/bcectl", true},
		{"seedderive", "bce/internal/stats", false},
		{"seedderive", "bce/internal/runner", false},
		{"errdrop", "bce/internal/web", true},
		{"errdrop", "bce/internal/population", true},
		{"errdrop", "bce/cmd/bcectl", false},
		{"errdrop", "bce/examples/quickstart", false},
		{"guardedby", "bce/internal/serve", true},
		{"guardedby", "bce/cmd/bcectl", false},
		{"goleak", "bce/internal/runner", true},
		{"goleak", "bce/cmd/bceweb", false},
		{"lockorder", "bce/internal/serve", true},
		{"lockorder", "bce/examples/quickstart", false},
	}
	for _, c := range cases {
		if got := rules[c.analyzer](c.path); got != c.want {
			t.Errorf("%s applies to %s = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}
