package analyzers_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bce/internal/analyzers"
)

// TestRepoCleanUnderSuite is the enforcement point for the determinism
// contract: the whole module must pass every rule of the suite, so a
// wall-clock read, global rand draw, unsorted map range in a core
// package, fresh context root, ad-hoc seed arithmetic, or silently
// dropped library error fails `go test ./...` as well as the dedicated
// CI bcelint step — including violations laundered through helper
// packages, which the fact engine reports at the governed call site.
func TestRepoCleanUnderSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command to load and type-check the module")
	}
	diags, err := analyzers.RunSuite("", []string{"bce/..."})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// escapeDirectives is every //bce:<name> marker that suppresses a
// suite finding. Annotation markers (hotpath, scratch, guardedby)
// state a contract rather than waive one and are exempt from the
// justification requirement.
var escapeDirectives = map[string]bool{
	"wallclock": true,
	"unordered": true,
	"ctxshim":   true,
	"seedok":    true,
	"errok":     true,
	"lockok":    true,
	"bgok":      true,
	"allocok":   true,
	"retainok":  true,
}

// annotationDirectives are the non-escape markers the suite consumes.
var annotationDirectives = map[string]bool{
	"hotpath":   true,
	"scratch":   true,
	"guardedby": true,
}

// TestDirectiveHygiene walks the module and requires every escape
// directive to carry a trailing justification — an unexplained
// //bce:errok is indistinguishable from a silenced bug a year later —
// and every //bce: marker to use a known name, so a misspelled
// directive fails the build instead of silently suppressing nothing
// while the author believes otherwise. Analyzer goldens under
// testdata exercise bare and malformed directives deliberately and
// are skipped.
func TestDirectiveHygiene(t *testing.T) {
	root := filepath.Join("..", "..")
	re := regexp.MustCompile(`//bce:([a-zA-Z0-9_-]+)(.*)`)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := re.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			name, rest := m[1], strings.TrimSpace(m[2])
			switch {
			case escapeDirectives[name]:
				if rest == "" {
					t.Errorf("%s:%d: //bce:%s without a justification; say why the escape is sound", path, i+1, name)
				}
			case annotationDirectives[name]:
				// Contract annotations need no justification.
			default:
				t.Errorf("%s:%d: unknown directive //bce:%s", path, i+1, name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
}

// TestSuiteScope pins the driver's package scoping so a refactor
// cannot silently drop a rule from the packages it guards.
func TestSuiteScope(t *testing.T) {
	rules := make(map[string]func(string) bool)
	for _, r := range analyzers.Suite() {
		rules[r.Analyzer.Name] = r.Applies
	}
	if len(rules) != 11 {
		t.Fatalf("suite has %d rules, want 11", len(rules))
	}
	cases := []struct {
		analyzer string
		path     string
		want     bool
	}{
		{"nowalltime", "bce/internal/client", true},
		{"nowalltime", "bce/internal/web", true},
		{"nowalltime", "bce/cmd/bcectl", false},
		{"nowalltime", "bce/examples/quickstart", false},
		{"seededrand", "bce/cmd/bcectl", true},
		{"seededrand", "bce/internal/stats", true},
		{"mapiter", "bce/internal/client", true},
		{"mapiter", "bce/internal/rrsim", true},
		{"mapiter", "bce/internal/report", false},
		{"mapiter", "bce/internal/metrics", false},
		{"ctxpass", "bce", true},
		{"ctxpass", "bce/internal/harness", true},
		{"ctxpass", "bce/cmd/bce", false},
		{"seedderive", "bce/internal/fleet", true},
		{"seedderive", "bce/cmd/bcectl", true},
		{"seedderive", "bce/internal/stats", false},
		{"seedderive", "bce/internal/runner", false},
		{"errdrop", "bce/internal/web", true},
		{"errdrop", "bce/internal/population", true},
		{"errdrop", "bce/cmd/bcectl", false},
		{"errdrop", "bce/examples/quickstart", false},
		{"guardedby", "bce/internal/serve", true},
		{"guardedby", "bce/cmd/bcectl", false},
		{"goleak", "bce/internal/runner", true},
		{"goleak", "bce/cmd/bceweb", false},
		{"lockorder", "bce/internal/serve", true},
		{"lockorder", "bce/examples/quickstart", false},
		{"hotalloc", "bce/internal/rrsim", true},
		{"hotalloc", "bce/cmd/bcectl", true},
		{"noretain", "bce/internal/sched", true},
		{"noretain", "bce/cmd/bceweb", true},
	}
	for _, c := range cases {
		if got := rules[c.analyzer](c.path); got != c.want {
			t.Errorf("%s applies to %s = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}
