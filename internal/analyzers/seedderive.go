package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SeedDerive flags ad-hoc arithmetic flowing into a seed sink: an
// argument of stats.NewRNG (or rand.NewSource / rand.NewPCG), a
// `Seed:` field in a composite literal, or an assignment to a field
// named Seed. Linear derivations like seed+i or seed+h*101 collide
// across indices — two hosts of one fleet can end up on overlapping
// RNG streams, which is exactly the bug the fleet package shipped and
// later fixed by switching to runner.DeriveSeed (a SplitMix64 step).
// The mixer itself and stats.RNG.Fork are the sanctioned derivations;
// anything else must call runner.DeriveSeed(base, i), or carry a
// //bce:seedok directive with a justification.
var SeedDerive = &Analyzer{
	Name: "seedderive",
	Doc: "forbid ad-hoc seed arithmetic (seed+i, seed*k, ...) flowing into RNG " +
		"constructors or Seed fields; derive with runner.DeriveSeed (//bce:seedok to allow)",
	Run: runSeedDerive,
}

// seedArithOps are the operators that make an expression an ad-hoc
// derivation when applied to non-constant operands.
var seedArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

func runSeedDerive(pass *Pass) error {
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := staticCallee(pass.TypesInfo, n)
			if fn == nil || !isSeedSink(fn) {
				return true
			}
			for _, arg := range n.Args {
				checkSeedExpr(pass, arg, fn.Name())
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Seed" {
					checkSeedExpr(pass, kv.Value, "a Seed field")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if ok && sel.Sel.Name == "Seed" {
					checkSeedExpr(pass, n.Rhs[i], "a Seed field")
				}
			}
		}
		return true
	})
	return nil
}

// isSeedSink reports whether fn constructs an RNG (or RNG source)
// directly from an integer seed.
func isSeedSink(fn *types.Func) bool {
	switch fn.Name() {
	case "NewRNG":
		return true
	case "NewSource", "NewPCG":
		return isPackageLevel(fn, "math/rand") || isPackageLevel(fn, "math/rand/v2")
	}
	return false
}

// checkSeedExpr flags e when, after stripping parens and conversions,
// it is non-constant integer arithmetic.
func checkSeedExpr(pass *Pass, e ast.Expr, sink string) {
	x := unwrapConversions(pass, e)
	bin, ok := x.(*ast.BinaryExpr)
	if !ok || !seedArithOps[bin.Op] {
		return
	}
	if tv, ok := pass.TypesInfo.Types[x]; ok && tv.Value != nil {
		return // constant arithmetic cannot collide per-index
	}
	if pass.Allowed("seedok", e.Pos()) {
		return
	}
	pass.Reportf(e.Pos(),
		"ad-hoc seed arithmetic %s flows into %s; linear derivations collide across indices (the fleet seed+h*101 bug) — use runner.DeriveSeed(base, i), or justify with //bce:seedok",
		types.ExprString(e), sink)
}

// unwrapConversions strips parentheses and type conversions:
// int64(seed+i) exposes seed+i.
func unwrapConversions(pass *Pass, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}
