package analyzers

import "go/ast"

// NoWallTime flags reads of the host's wall clock — time.Now,
// time.Since and time.Sleep — which make emulation results depend on
// the machine running them instead of the simulated clock. Legitimate
// host-time measurements (profiling hooks, upload timestamps) carry a
// //bce:wallclock directive.
var NoWallTime = &Analyzer{
	Name: "nowalltime",
	Doc: "forbid wall-clock reads (time.Now/Since/Sleep) in emulation code; " +
		"sim time must come from the simulated clock (//bce:wallclock to allow)",
	Run: runNoWallTime,
}

var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Sleep": true,
}

func runNoWallTime(pass *Pass) error {
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if !isPackageLevel(fn, "time") || !wallClockFuncs[fn.Name()] {
			return true
		}
		if pass.Allowed("wallclock", call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"wall-clock time.%s leaks host time into the emulation; use the simulated clock, or annotate a deliberate host-time measurement with //bce:wallclock",
			fn.Name())
		return true
	})
	return nil
}
