package analyzers

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the module-level half of the concurrency tier: three
// interprocedural fact fixpoints over the same call graph and Tarjan
// SCC machinery the determinism facts use (facts.go), feeding the
// guardedby, goleak and lockorder rules.
//
//   - requires: function f needs lock L held on entry (it accesses a
//     //bce:guardedby field, or calls a helper that does, without
//     acquiring L itself). Discharged at call sites that hold L;
//     reported at root functions (exported, or called by nobody in the
//     module) with the witness chain down to the raw field access.
//   - acquires: f may take lock L (directly or transitively). The
//     cross product of "locks held at a call site" × "locks the callee
//     may acquire" yields the module-wide lock-order graph; any cycle
//     in it is a potential deadlock, reported once with the acquisition
//     chains as evidence.
//   - terminates: f has a visible termination path (a context or
//     receivable-channel parameter, or a body that receives, selects,
//     or ranges over a channel — directly or through a callee). A go
//     statement with no lifeline argument, no such signal in the
//     spawned body, no awaited WaitGroup and no terminating callee is a
//     leak-prone fire-and-forget goroutine (goleak), escapable with
//     //bce:bgok.

// guardKey is one lock requirement: the guard's typeKey plus the
// access strength (a write needs the exclusive lock, so read and write
// requirements propagate independently).
type guardKey struct {
	lock  lockID
	write bool
}

// reqInfo is one function's witness for one requirement: where inside
// the function it arises, and the next function toward the raw access
// (nil at the leaf). Like the determinism facts, witnesses are
// assigned exactly once, so chains are finite inside call-graph
// cycles.
type reqInfo struct {
	pos  token.Pos
	what string      // leaf only: "write of serve.job.state"
	via  *types.Func // next hop toward the access; nil at the leaf
}

// acqInfo is one function's witness for one (transitive) lock
// acquisition.
type acqInfo struct {
	pos  token.Pos
	read bool
	via  *types.Func // nil: a direct Lock/RLock at pos
}

// concEngine holds the computed concurrency facts for the module.
type concEngine struct {
	fset    *token.FileSet
	graph   *callGraph
	markers map[*Package]*markerIndex

	guards    guardTable
	badGuards []badGuard
	sums      map[*types.Func]*funcSummary

	requires   map[*types.Func]map[guardKey]*reqInfo
	acquires   map[*types.Func]map[lockID]*acqInfo
	terminates map[*types.Func]bool
	awaitedWGs map[types.Object]bool
	callers    map[*types.Func]int
}

// concurrencyRules reports whether any concurrency-tier rule is in the
// set, so RunRules can skip the engine entirely for other suites.
func concurrencyRules(rules []Rule) bool {
	for _, r := range rules {
		switch r.Analyzer.Name {
		case "guardedby", "goleak", "lockorder":
			return true
		}
	}
	return false
}

// computeConcurrency builds the engine: per-function summaries from the
// held-lock body scan (locks.go), then the three fact fixpoints over
// the call graph's strongly connected components in reverse topological
// order.
func computeConcurrency(pkgs []*Package, graph *callGraph) *concEngine {
	e := &concEngine{
		graph:      graph,
		markers:    make(map[*Package]*markerIndex, len(pkgs)),
		sums:       make(map[*types.Func]*funcSummary),
		requires:   make(map[*types.Func]map[guardKey]*reqInfo),
		acquires:   make(map[*types.Func]map[lockID]*acqInfo),
		terminates: make(map[*types.Func]bool),
		awaitedWGs: make(map[types.Object]bool),
		callers:    make(map[*types.Func]int),
	}
	for _, pkg := range pkgs {
		e.fset = pkg.Fset // Load shares one FileSet across the module
		e.markers[pkg] = indexMarkers(pkg.Fset, pkg.Files)
	}
	e.guards, e.badGuards = collectGuards(pkgs)

	for _, n := range graph.order {
		if n.body != nil {
			sum := summarize(n, e.guards)
			e.sums[n.fn] = sum
			for _, wg := range sum.wgWaits {
				e.awaitedWGs[wg] = true
			}
		}
		for _, edge := range n.out {
			e.callers[edge.callee]++
		}
	}

	for _, n := range graph.order {
		if sum := e.sums[n.fn]; sum != nil {
			e.seed(n, sum)
		}
	}

	for _, comp := range graph.sccs() {
		changed := true
		for changed {
			changed = false
			for _, n := range comp {
				for _, c := range e.callRecords(n) {
					if e.propagate(n, c) {
						changed = true
					}
				}
			}
		}
	}
	return e
}

// seed records each function's direct facts: unguarded accesses to
// annotated fields (requirements), direct lock acquisitions, and
// termination signals from the body or the signature.
func (e *concEngine) seed(n *cgNode, sum *funcSummary) {
	idx := e.markers[n.pkg]
	for _, a := range sum.accesses {
		if a.held.satisfies(a.guard.lock, a.write) {
			continue
		}
		if idx.allows(e.fset, "lockok", a.pos) {
			continue
		}
		key := guardKey{lock: a.guard.lock, write: a.write}
		if e.req(n.fn)[key] == nil {
			rw := "read"
			if a.write {
				rw = "write"
			}
			e.req(n.fn)[key] = &reqInfo{pos: a.pos, what: fmt.Sprintf("%s of %s", rw, a.guard.display)}
		}
	}
	for _, acq := range sum.acqs {
		key := acq.id.typeKey()
		if e.acq(n.fn)[key] == nil {
			e.acq(n.fn)[key] = &acqInfo{pos: acq.pos, read: acq.read}
		}
	}
	if sum.termSeed || signatureLifeline(n.fn) {
		e.terminates[n.fn] = true
	}
}

// callRecords is the list of (call site, held locks) pairs facts flow
// through for one node: the scanned call sites for declared functions,
// or the synthetic CHA edges (no position, nothing held) for interface
// methods.
func (e *concEngine) callRecords(n *cgNode) []callSite {
	if sum := e.sums[n.fn]; sum != nil {
		return sum.calls
	}
	records := make([]callSite, 0, len(n.out))
	for _, edge := range n.out {
		records = append(records, callSite{pos: n.fn.Pos(), callee: edge.callee, held: nil})
	}
	return records
}

// propagate flows the callee's facts across one call site: lock
// requirements not discharged by the held set, transitive acquisitions,
// and termination.
func (e *concEngine) propagate(n *cgNode, c callSite) bool {
	changed := false
	var idx *markerIndex
	if n.pkg != nil {
		idx = e.markers[n.pkg]
	}
	if from := e.requires[c.callee]; len(from) > 0 {
		for _, key := range sortedGuardKeys(from) {
			if c.held.satisfies(key.lock, key.write) {
				continue
			}
			if idx != nil && idx.allows(e.fset, "lockok", c.pos) {
				continue
			}
			if e.req(n.fn)[key] == nil {
				e.req(n.fn)[key] = &reqInfo{pos: c.pos, via: c.callee}
				changed = true
			}
		}
	}
	if from := e.acquires[c.callee]; len(from) > 0 {
		for _, key := range sortedLockKeys(from) {
			if e.acq(n.fn)[key] == nil {
				e.acq(n.fn)[key] = &acqInfo{pos: c.pos, read: from[key].read, via: c.callee}
				changed = true
			}
		}
	}
	if e.terminates[c.callee] && !e.terminates[n.fn] {
		e.terminates[n.fn] = true
		changed = true
	}
	return changed
}

func (e *concEngine) req(fn *types.Func) map[guardKey]*reqInfo {
	m := e.requires[fn]
	if m == nil {
		m = make(map[guardKey]*reqInfo)
		e.requires[fn] = m
	}
	return m
}

func (e *concEngine) acq(fn *types.Func) map[lockID]*acqInfo {
	m := e.acquires[fn]
	if m == nil {
		m = make(map[lockID]*acqInfo)
		e.acquires[fn] = m
	}
	return m
}

// signatureLifeline reports whether fn's parameters include a context
// or a receivable channel — a caller-provided termination path.
func signatureLifeline(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isContextType(t) || isReceivableChan(t) {
			return true
		}
	}
	return false
}

// isRootFunc reports whether requirements surface at fn: exported
// functions can be entered from anywhere, and a function nobody in the
// module calls has no call site left to discharge its requirement.
func (e *concEngine) isRootFunc(fn *types.Func) bool {
	return fn.Exported() || e.callers[fn] == 0
}

// report emits the concurrency-tier diagnostics for the rules present
// in the set.
func (e *concEngine) report(rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, rule := range rules {
		switch rule.Analyzer.Name {
		case "guardedby":
			out = append(out, e.reportGuardedBy(rule)...)
		case "goleak":
			out = append(out, e.reportGoLeak(rule)...)
		case "lockorder":
			out = append(out, e.reportLockOrder(rule)...)
		}
	}
	return out
}

// reportGuardedBy emits malformed annotations, every unguarded direct
// access in a root function, and undischarged requirements imported
// through calls — the latter with the witness chain down to the raw
// access.
func (e *concEngine) reportGuardedBy(rule Rule) []Diagnostic {
	var out []Diagnostic
	for _, bg := range e.badGuards {
		if !rule.Applies(bg.pkg.ImportPath) {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: rule.Analyzer.Name,
			Pos:      e.fset.Position(bg.pos),
			Message:  bg.message,
		})
	}
	for _, n := range e.graph.order {
		sum := e.sums[n.fn]
		if sum == nil || n.pkg == nil || !rule.Applies(n.pkg.ImportPath) {
			continue
		}
		if !e.isRootFunc(n.fn) {
			continue // a caller discharges or inherits the requirement
		}
		idx := e.markers[n.pkg]
		for _, a := range sum.accesses {
			if a.held.satisfies(a.guard.lock, a.write) || idx.allows(e.fset, "lockok", a.pos) {
				continue
			}
			rw := "read"
			if a.write {
				rw = "write"
			}
			out = append(out, Diagnostic{
				Analyzer: rule.Analyzer.Name,
				Pos:      e.fset.Position(a.pos),
				Message: fmt.Sprintf("%s of %s without holding %s; acquire the lock, or annotate a checked invariant with //bce:lockok",
					rw, a.guard.display, a.guard.lock.display()),
			})
		}
		for _, key := range sortedGuardKeys(e.requires[n.fn]) {
			ri := e.requires[n.fn][key]
			if ri.via == nil {
				continue // direct accesses already reported above
			}
			out = append(out, Diagnostic{
				Analyzer: rule.Analyzer.Name,
				Pos:      e.fset.Position(ri.pos),
				Message: fmt.Sprintf("call into %s needs %s held (%s); acquire the lock before this call, or annotate a checked invariant with //bce:lockok",
					ri.via.FullName(), key.lock.display(), e.reqChainSummary(n.fn, key)),
				Chain: e.reqChain(n.fn, key),
			})
		}
	}
	return out
}

// reqChain renders the witness path from fn down to the raw field
// access.
func (e *concEngine) reqChain(fn *types.Func, key guardKey) []ChainStep {
	var steps []ChainStep
	for cur := fn; cur != nil && len(steps) < maxChainLen; {
		ri := e.requires[cur][key]
		if ri == nil {
			break
		}
		what := ri.what
		if ri.via != nil {
			what = "calls " + ri.via.FullName()
		}
		steps = append(steps, ChainStep{Func: cur.FullName(), Pos: e.fset.Position(ri.pos), What: what})
		cur = ri.via
	}
	return steps
}

// reqChainSummary is the compact one-line form: "serve.(*Service).Watch
// → serve.(*Service).viewLocked → read of serve.job.state".
func (e *concEngine) reqChainSummary(fn *types.Func, key guardKey) string {
	parts := []string{fn.FullName()}
	for cur := fn; len(parts) < maxChainLen; {
		ri := e.requires[cur][key]
		if ri == nil {
			break
		}
		if ri.via == nil {
			parts = append(parts, ri.what)
			break
		}
		parts = append(parts, ri.via.FullName())
		cur = ri.via
	}
	return strings.Join(parts, " → ")
}

// reportGoLeak flags go statements with no visible termination path.
func (e *concEngine) reportGoLeak(rule Rule) []Diagnostic {
	var out []Diagnostic
	for _, n := range e.graph.order {
		sum := e.sums[n.fn]
		if sum == nil || n.pkg == nil || !rule.Applies(n.pkg.ImportPath) {
			continue
		}
		idx := e.markers[n.pkg]
		for _, g := range sum.goSites {
			if e.goSiteSupervised(g) || idx.allows(e.fset, "bgok", g.pos) {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: rule.Analyzer.Name,
				Pos:      e.fset.Position(g.pos),
				Message: "goroutine has no visible termination path (no context or stop channel reaches it, " +
					"and no awaited WaitGroup tracks it); tie its lifetime to one, or annotate deliberate " +
					"fire-and-forget with //bce:bgok",
			})
		}
	}
	return out
}

// goSiteSupervised reports whether a go statement has a visible
// termination path: a lifeline argument or identifier, a channel signal
// in the spawned body, an awaited WaitGroup, or a (transitively)
// terminating callee.
func (e *concEngine) goSiteSupervised(g goSite) bool {
	if g.lifeline || g.chanSig {
		return true
	}
	for _, wg := range g.wgs {
		if e.awaitedWGs[wg] {
			return true
		}
	}
	if g.named != nil && e.terminates[g.named] {
		return true
	}
	for _, callee := range g.callees {
		if e.terminates[callee] {
			return true
		}
	}
	return false
}

// lockEdge is one lock-order edge: while holding from, fn (at pos)
// acquires to — directly, or by calling via, which acquires it
// transitively.
type lockEdge struct {
	from, to lockID // typeKeys
	fn       *types.Func
	pkg      *Package
	pos      token.Pos
	via      *types.Func
}

// reportLockOrder builds the module-wide lock-order graph and reports
// every cycle — a potential deadlock — exactly once, with the
// acquisition chains of each edge as evidence.
func (e *concEngine) reportLockOrder(rule Rule) []Diagnostic {
	edges := e.lockEdges()

	// Strongly connected components of the lock graph: every cycle —
	// including a self-loop (reacquiring a held lock) — lives inside
	// one, and one diagnostic per component reports each deadlock
	// exactly once however many edges participate.
	adj := make(map[lockID][]lockID)
	for _, edge := range edges {
		adj[edge.from] = append(adj[edge.from], edge.to)
	}
	comps := lockSCCs(adj)

	var out []Diagnostic
	for _, comp := range comps {
		inComp := make(map[lockID]bool, len(comp))
		for _, id := range comp {
			inComp[id] = true
		}
		// Representative edge per ordered pair inside the component,
		// first occurrence (deterministic order) wins.
		type pair struct{ from, to lockID }
		seen := make(map[pair]bool)
		var cycle []lockEdge
		selfLoop := false
		for _, edge := range edges {
			if !inComp[edge.from] || !inComp[edge.to] {
				continue
			}
			if edge.from == edge.to {
				selfLoop = true
			}
			p := pair{edge.from, edge.to}
			if seen[p] {
				continue
			}
			seen[p] = true
			cycle = append(cycle, edge)
		}
		if len(comp) == 1 && !selfLoop {
			continue // a single lock with no self-edge is not a cycle
		}
		if len(cycle) == 0 {
			continue
		}
		// Position the diagnostic at the first in-scope edge.
		var at *lockEdge
		for i := range cycle {
			if cycle[i].pkg != nil && rule.Applies(cycle[i].pkg.ImportPath) {
				at = &cycle[i]
				break
			}
		}
		if at == nil {
			continue
		}
		var parts []string
		var chain []ChainStep
		for _, edge := range cycle {
			parts = append(parts, e.edgeSummary(edge))
			chain = append(chain, e.edgeChain(edge)...)
		}
		out = append(out, Diagnostic{
			Analyzer: rule.Analyzer.Name,
			Pos:      e.fset.Position(at.pos),
			Message:  "lock-order cycle (potential deadlock): " + strings.Join(parts, "; "),
			Chain:    chain,
		})
	}
	return out
}

// lockEdges collects every lock-order edge in deterministic order:
// direct acquisitions made while holding another lock, and call sites
// whose callee transitively acquires one.
func (e *concEngine) lockEdges() []lockEdge {
	var edges []lockEdge
	for _, n := range e.graph.order {
		sum := e.sums[n.fn]
		if sum == nil {
			continue
		}
		for _, acq := range sum.acqs {
			to := acq.id.typeKey()
			for _, h := range acq.held.sorted() {
				from := h.typeKey()
				if from == to && h.root != nil && acq.id.root != nil && h.root != acq.id.root {
					continue // provably distinct instances of the same field
				}
				edges = append(edges, lockEdge{from: from, to: to, fn: n.fn, pkg: n.pkg, pos: acq.pos})
			}
		}
		for _, c := range sum.calls {
			from := e.acquires[c.callee]
			if len(from) == 0 || len(c.held) == 0 {
				continue
			}
			for _, to := range sortedLockKeys(from) {
				for _, h := range c.held.sorted() {
					edges = append(edges, lockEdge{from: h.typeKey(), to: to, fn: n.fn, pkg: n.pkg, pos: c.pos, via: c.callee})
				}
			}
		}
	}
	return edges
}

// edgeSummary renders one edge for the cycle message.
func (e *concEngine) edgeSummary(edge lockEdge) string {
	if edge.from == edge.to {
		if edge.via != nil {
			return fmt.Sprintf("%s calls %s, which reacquires the held %s",
				edge.fn.FullName(), edge.via.FullName(), edge.to.display())
		}
		return fmt.Sprintf("%s reacquires the held %s", edge.fn.FullName(), edge.to.display())
	}
	s := fmt.Sprintf("%s acquires %s while holding %s", edge.fn.FullName(), edge.to.display(), edge.from.display())
	if edge.via != nil {
		s += " via " + edge.via.FullName()
	}
	return s
}

// edgeChain renders one edge's acquisition chain: the witness function
// and, when the acquisition happens inside a callee, the hops down to
// the raw Lock.
func (e *concEngine) edgeChain(edge lockEdge) []ChainStep {
	what := fmt.Sprintf("acquires %s while holding %s", edge.to.display(), edge.from.display())
	if edge.via != nil {
		what = fmt.Sprintf("calls %s while holding %s", edge.via.FullName(), edge.from.display())
	}
	steps := []ChainStep{{Func: edge.fn.FullName(), Pos: e.fset.Position(edge.pos), What: what}}
	for cur := edge.via; cur != nil && len(steps) < maxChainLen; {
		ai := e.acquires[cur][edge.to]
		if ai == nil {
			break
		}
		what := "acquires " + edge.to.display()
		if ai.via != nil {
			what = "calls " + ai.via.FullName()
		}
		steps = append(steps, ChainStep{Func: cur.FullName(), Pos: e.fset.Position(ai.pos), What: what})
		cur = ai.via
	}
	return steps
}

// lockSCCs is Tarjan's algorithm over the lock graph, emitting
// components deterministically (roots visited in sorted order).
func lockSCCs(adj map[lockID][]lockID) [][]lockID {
	nodes := make(map[lockID]bool)
	for from, tos := range adj {
		nodes[from] = true
		for _, to := range tos {
			nodes[to] = true
		}
	}
	order := make([]lockID, 0, len(nodes))
	for id := range nodes {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].sortKey() < order[j].sortKey() })
	for _, tos := range adj {
		sort.Slice(tos, func(i, j int) bool { return tos[i].sortKey() < tos[j].sortKey() })
	}

	index := make(map[lockID]int, len(nodes))
	low := make(map[lockID]int, len(nodes))
	onStack := make(map[lockID]bool, len(nodes))
	var stack []lockID
	var comps [][]lockID
	next := 0

	var strongConnect func(n lockID)
	strongConnect = func(n lockID) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, w := range adj[n] {
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[n] {
					low[n] = low[w]
				}
			} else if onStack[w] && index[w] < low[n] {
				low[n] = index[w]
			}
		}
		if low[n] == index[n] {
			var comp []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == n {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongConnect(n)
		}
	}
	return comps
}

// sortedGuardKeys orders a requirement map deterministically.
func sortedGuardKeys(m map[guardKey]*reqInfo) []guardKey {
	keys := make([]guardKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.lock.sortKey() != kj.lock.sortKey() {
			return ki.lock.sortKey() < kj.lock.sortKey()
		}
		return !ki.write && kj.write
	})
	return keys
}

// sortedLockKeys orders an acquisition map deterministically.
func sortedLockKeys(m map[lockID]*acqInfo) []lockID {
	keys := make([]lockID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].sortKey() < keys[j].sortKey() })
	return keys
}
