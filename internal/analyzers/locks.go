package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// This file is the intra-procedural half of the concurrency tier
// (guardedby / goleak / lockorder, see concurrency.go): lock identity,
// //bce:guardedby annotation collection, and a per-function body scan
// that tracks the set of locks held at every field access, call site,
// lock acquisition and go statement. The scan is path-insensitive by
// design: branches are analyzed with a copy of the held set and their
// lock operations do not escape the branch, so an early `mu.Unlock();
// return` inside an if does not release the lock for the code after
// it. sync.Mutex.TryLock is ignored entirely (its acquisition is
// conditional), and ownership transfer through channels is invisible —
// both documented limitations (DESIGN.md §10.2).

// lockStrength distinguishes shared (RLock) from exclusive (Lock)
// acquisition: a read access is satisfied by either, a write only by
// the exclusive lock.
type lockStrength uint8

const (
	readHeld lockStrength = iota + 1
	writeHeld
)

// lockID identifies a mutex. Field mutexes are identified by their
// declaring struct type and field name — type-based, so a helper's
// "requires Service.mu" is satisfied by any held Service.mu, which
// over-approximates instance identity (two distinct Services are
// indistinguishable; the root object sharpens the few checks where it
// matters and is resolvable). Package-level and local mutex variables
// are identified by their object.
type lockID struct {
	root  types.Object // base variable of the selector chain (s in s.mu), when resolvable
	owner string       // declaring struct as "pkgpath.Type" for field mutexes; "" otherwise
	field string       // field name for field mutexes
}

// typeKey drops instance identity: the key requirement matching and the
// lock-order graph run on. Field locks collapse to (owner, field);
// variable locks keep their object (a variable is its own singleton).
func (id lockID) typeKey() lockID {
	if id.owner != "" {
		return lockID{owner: id.owner, field: id.field}
	}
	return lockID{root: id.root}
}

// display renders the lock for diagnostics: "serve.Service.mu" for
// fields, "dead.amu" for package variables, "mu (local)" for locals.
func (id lockID) display() string {
	if id.owner != "" {
		dot := strings.LastIndex(id.owner, ".")
		slash := strings.LastIndex(id.owner, "/")
		short := id.owner
		if dot > slash {
			short = path.Base(id.owner[:dot]) + id.owner[dot:]
		}
		return short + "." + id.field
	}
	if v, ok := id.root.(*types.Var); ok {
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return path.Base(v.Pkg().Path()) + "." + v.Name()
		}
		return v.Name() + " (local)"
	}
	return "<unknown lock>"
}

// sortKey orders lockIDs deterministically (display ties broken by
// declaration position).
func (id lockID) sortKey() string {
	pos := 0
	if id.root != nil {
		pos = int(id.root.Pos())
	}
	return fmt.Sprintf("%s.%s/%s#%d", id.owner, id.field, id.display(), pos)
}

// heldSet is the set of locks held at a program point, keyed by full
// (instance-qualified where possible) lockID.
type heldSet map[lockID]lockStrength

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// satisfies reports whether some held lock matches the guard's typeKey
// at sufficient strength (write access needs the exclusive lock).
func (h heldSet) satisfies(guard lockID, write bool) bool {
	for id, strength := range h {
		if id.typeKey() != guard {
			continue
		}
		if !write || strength == writeHeld {
			return true
		}
	}
	return false
}

// sorted returns the held locks in deterministic order.
func (h heldSet) sorted() []lockID {
	ids := make([]lockID, 0, len(h))
	for id := range h {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].sortKey() < ids[j].sortKey() })
	return ids
}

// guardSpec is one //bce:guardedby annotation, resolved: the guarded
// field must only be accessed while lock (a typeKey) is held.
type guardSpec struct {
	lock    lockID // type-level guard
	display string // "serve.job.state", for diagnostics
}

// guardTable maps every annotated field object to its guard.
type guardTable map[*types.Var]guardSpec

// badGuard is a malformed annotation, reported by the guardedby rule.
type badGuard struct {
	pkg     *Package
	pos     token.Pos
	message string
}

// directiveArg extracts the argument of a //bce:<name> <arg> directive
// from a comment group: "//bce:guardedby mu — note" yields ("mu", true).
func directiveArg(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text, ok := strings.CutPrefix(strings.TrimSpace(text), "bce:")
		if !ok {
			continue
		}
		dir, rest, _ := strings.Cut(text, " ")
		if dir != name {
			continue
		}
		arg, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
		return arg, true
	}
	return "", false
}

// collectGuards resolves every //bce:guardedby annotation in the loaded
// packages. The argument names either a sibling field of the same
// struct ("mu"), a field of another struct in the same package
// ("Service.mu" — for records owned and locked by a containing type),
// or a package-level mutex variable.
func collectGuards(pkgs []*Package) (guardTable, []badGuard) {
	guards := make(guardTable)
	var bad []badGuard
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					collectStructGuards(pkg, ts.Name.Name, st, guards, &bad)
				}
			}
		}
	}
	return guards, bad
}

func collectStructGuards(pkg *Package, structName string, st *ast.StructType, guards guardTable, bad *[]badGuard) {
	owner := pkg.ImportPath + "." + structName
	shortOwner := path.Base(pkg.ImportPath) + "." + structName
	for _, field := range st.Fields.List {
		arg, ok := directiveArg(field.Comment, "guardedby")
		if !ok {
			arg, ok = directiveArg(field.Doc, "guardedby")
		}
		if !ok {
			continue
		}
		lock, err := resolveGuardArg(pkg, owner, st, arg)
		if err != "" {
			*bad = append(*bad, badGuard{pkg: pkg, pos: field.Pos(), message: err})
			continue
		}
		for _, name := range field.Names {
			fv, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			guards[fv] = guardSpec{lock: lock, display: shortOwner + "." + name.Name}
		}
	}
}

// resolveGuardArg resolves a guardedby argument to a type-level lockID,
// or a non-empty error message.
func resolveGuardArg(pkg *Package, owner string, st *ast.StructType, arg string) (lockID, string) {
	if arg == "" {
		return lockID{}, "//bce:guardedby needs an argument: a sibling mutex field, Type.field, or a package-level mutex"
	}
	if typ, field, qualified := strings.Cut(arg, "."); qualified {
		return lockID{owner: pkg.ImportPath + "." + typ, field: field}, ""
	}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if name.Name == arg {
				return lockID{owner: owner, field: arg}, ""
			}
		}
	}
	if obj, ok := pkg.Types.Scope().Lookup(arg).(*types.Var); ok {
		return lockID{root: obj}, ""
	}
	return lockID{}, fmt.Sprintf("//bce:guardedby %s: no sibling field or package-level variable of that name", arg)
}

// --- per-function summaries ---

// fieldAccess is one read or write of a guarded field, with the locks
// held at that point.
type fieldAccess struct {
	pos   token.Pos
	guard guardSpec
	write bool
	held  heldSet
}

// callSite is one statically resolved call, with the locks held around
// it — the joint currency of requirement discharge (guardedby) and
// lock-order edge construction (lockorder).
type callSite struct {
	pos    token.Pos
	callee *types.Func
	held   heldSet
}

// lockAcq is one direct Lock/RLock, with the locks already held when it
// executes.
type lockAcq struct {
	id   lockID
	pos  token.Pos
	read bool
	held heldSet
}

// goSite is one go statement and the termination signals visible at it.
type goSite struct {
	pos      token.Pos
	named    *types.Func   // go f(...) with a statically resolved f
	callees  []*types.Func // static callees inside a spawned closure
	lifeline bool          // a context/receivable-channel argument or context identifier in the body
	chanSig  bool          // the spawned body receives, selects, or ranges over a channel
	wgs      []types.Object
}

// funcSummary is everything the module-level concurrency engine needs
// to know about one function body.
type funcSummary struct {
	fn       *types.Func
	pkg      *Package
	accesses []fieldAccess
	calls    []callSite
	acqs     []lockAcq
	goSites  []goSite
	termSeed bool           // body contains a receive, select, or range over a channel
	wgWaits  []types.Object // sync.WaitGroups this body calls Wait on
}

// scanner walks one function body in statement order.
type scanner struct {
	info   *types.Info
	guards guardTable
	sum    *funcSummary
	// spawned is non-nil while scanning the body of a go-spawned
	// function literal: termination signals found there belong to the
	// corresponding goSite.
	spawned *goSite
}

// summarize scans one declared function body.
func summarize(n *cgNode, guards guardTable) *funcSummary {
	sc := &scanner{info: n.pkg.Info, guards: guards, sum: &funcSummary{fn: n.fn, pkg: n.pkg}}
	sc.stmts(n.body.Body.List, make(heldSet))
	return sc.sum
}

func (sc *scanner) stmts(list []ast.Stmt, held heldSet) {
	for _, st := range list {
		sc.stmt(st, held)
	}
}

// stmt processes one statement, mutating held for sequential lock
// operations and forking a copy for nested blocks.
func (sc *scanner) stmt(st ast.Stmt, held heldSet) {
	switch st := st.(type) {
	case nil:
	case *ast.ExprStmt:
		sc.expr(st.X, held)
		sc.applyLockOp(st.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock holds the lock to function end (no held
		// change); any other deferred call is recorded with the locks
		// held at the defer statement.
		sc.deferredCall(st.Call, held)
	case *ast.GoStmt:
		sc.goStmt(st, held)
	case *ast.SendStmt:
		sc.expr(st.Chan, held)
		sc.expr(st.Value, held)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			sc.expr(rhs, held)
		}
		for _, lhs := range st.Lhs {
			sc.writeTarget(lhs, held)
		}
	case *ast.IncDecStmt:
		sc.writeTarget(st.X, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			sc.expr(e, held)
		}
	case *ast.IfStmt:
		sc.stmt(st.Init, held)
		sc.expr(st.Cond, held)
		sc.stmts(st.Body.List, held.clone())
		if st.Else != nil {
			sc.stmt(st.Else, held.clone())
		}
	case *ast.ForStmt:
		sc.stmt(st.Init, held)
		if st.Cond != nil {
			sc.expr(st.Cond, held)
		}
		inner := held.clone()
		sc.stmts(st.Body.List, inner)
		sc.stmt(st.Post, inner)
	case *ast.RangeStmt:
		sc.expr(st.X, held)
		if tv, ok := sc.info.Types[st.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				sc.termSignal()
			}
		}
		if st.Tok == token.ASSIGN {
			sc.writeTarget(st.Key, held)
			sc.writeTarget(st.Value, held)
		}
		sc.stmts(st.Body.List, held.clone())
	case *ast.SwitchStmt:
		sc.stmt(st.Init, held)
		sc.expr(st.Tag, held)
		for _, cc := range st.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					sc.expr(e, held)
				}
				sc.stmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		sc.stmt(st.Init, held)
		sc.stmt(st.Assign, held)
		for _, cc := range st.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				sc.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		sc.termSignal()
		for _, cc := range st.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				inner := held.clone()
				sc.stmt(cc.Comm, inner)
				sc.stmts(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		sc.stmts(st.List, held)
	case *ast.LabeledStmt:
		sc.stmt(st.Stmt, held)
	}
}

// writeTarget records e as a write when it is a guarded field (or an
// element of one); its subexpressions are reads.
func (sc *scanner) writeTarget(e ast.Expr, held heldSet) {
	switch e := ast.Unparen(e).(type) {
	case nil:
	case *ast.SelectorExpr:
		if spec, ok := sc.guardOf(e); ok {
			sc.sum.accesses = append(sc.sum.accesses, fieldAccess{
				pos: e.Sel.Pos(), guard: spec, write: true, held: held.clone(),
			})
			sc.expr(e.X, held)
			return
		}
		sc.expr(e, held)
	case *ast.IndexExpr:
		// Writing s.jobs[id] mutates the guarded map/slice itself.
		sc.writeTarget(e.X, held)
		sc.expr(e.Index, held)
	case *ast.StarExpr:
		sc.expr(e.X, held)
	default:
		sc.expr(e, held)
	}
}

// expr records guarded-field reads, call sites and termination signals
// in an expression tree. Function literals are separate scopes: their
// bodies start with no locks held, and their own lock operations are
// tracked within.
func (sc *scanner) expr(e ast.Expr, held heldSet) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if sc.spawned != nil && isContextType(sc.typeOf(e)) {
			sc.spawned.lifeline = true
		}
	case *ast.SelectorExpr:
		if spec, ok := sc.guardOf(e); ok {
			sc.sum.accesses = append(sc.sum.accesses, fieldAccess{
				pos: e.Sel.Pos(), guard: spec, held: held.clone(),
			})
		}
		if sc.spawned != nil && isContextType(sc.typeOf(e)) {
			sc.spawned.lifeline = true
		}
		sc.expr(e.X, held)
	case *ast.CallExpr:
		sc.call(e, held)
	case *ast.FuncLit:
		sc.funcLit(e)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			sc.termSignal()
		}
		sc.expr(e.X, held)
	case *ast.BinaryExpr:
		sc.expr(e.X, held)
		sc.expr(e.Y, held)
	case *ast.ParenExpr:
		sc.expr(e.X, held)
	case *ast.StarExpr:
		sc.expr(e.X, held)
	case *ast.IndexExpr:
		sc.expr(e.X, held)
		sc.expr(e.Index, held)
	case *ast.IndexListExpr:
		sc.expr(e.X, held)
	case *ast.SliceExpr:
		sc.expr(e.X, held)
		sc.expr(e.Low, held)
		sc.expr(e.High, held)
		sc.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		sc.expr(e.X, held)
	case *ast.KeyValueExpr:
		// Struct-literal keys name fields without accessing an object —
		// construction precedes publication, so they are exempt. Map
		// keys are ordinary expressions.
		if key, ok := e.Key.(*ast.Ident); ok {
			if v, isVar := sc.info.Uses[key].(*types.Var); isVar && v.IsField() {
				sc.expr(e.Value, held)
				return
			}
		}
		sc.expr(e.Key, held)
		sc.expr(e.Value, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			sc.expr(el, held)
		}
	case *ast.Ellipsis:
		sc.expr(e.Elt, held)
	}
}

// call records one call expression: mutex operations are handled by
// applyLockOp at statement level, WaitGroup Wait/Done feed the goroutine
// lifecycle analysis, and everything else becomes a callSite.
func (sc *scanner) call(e *ast.CallExpr, held heldSet) {
	callee := staticCallee(sc.info, e)
	switch {
	case callee == nil:
		// Function value, builtin, or conversion: opaque.
	case isMutexMethod(callee) != "":
		// Lock-state effects are applied by the enclosing statement.
	case isWaitGroupMethod(callee, "Wait"):
		if obj := receiverObject(sc.info, e); obj != nil {
			sc.sum.wgWaits = append(sc.sum.wgWaits, obj)
		}
	case isWaitGroupMethod(callee, "Done"):
		if sc.spawned != nil {
			if obj := receiverObject(sc.info, e); obj != nil {
				sc.spawned.wgs = append(sc.spawned.wgs, obj)
			}
		}
	default:
		sc.sum.calls = append(sc.sum.calls, callSite{pos: e.Pos(), callee: callee, held: held.clone()})
		if sc.spawned != nil {
			sc.spawned.callees = append(sc.spawned.callees, callee)
		}
	}
	sc.expr(e.Fun, held)
	for _, a := range e.Args {
		sc.expr(a, held)
	}
}

// funcLit scans a function literal body as its own scope: no locks held
// on entry, lock operations tracked within. Accesses and calls land in
// the enclosing function's summary.
func (sc *scanner) funcLit(lit *ast.FuncLit) {
	sc.stmts(lit.Body.List, make(heldSet))
}

// deferredCall handles `defer f(...)`: a deferred Unlock pins the lock
// held to function end; other deferred work is scanned normally.
func (sc *scanner) deferredCall(call *ast.CallExpr, held heldSet) {
	if name := isMutexMethod(staticCallee(sc.info, call)); name == "Unlock" || name == "RUnlock" {
		return // held until return — no effect on the sequential scan
	}
	sc.expr(call, held)
}

// goStmt records a go statement and the termination signals visible at
// it: lifeline arguments (context or receivable channel), the spawned
// closure's own receive/select/range signals and WaitGroup tracking, or
// a statically named callee whose termination fact the module engine
// checks.
func (sc *scanner) goStmt(st *ast.GoStmt, held heldSet) {
	site := goSite{pos: st.Pos()}
	call := st.Call
	for _, a := range call.Args {
		if t := sc.typeOf(a); isContextType(t) || isReceivableChan(t) {
			site.lifeline = true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		prev := sc.spawned
		sc.spawned = &site
		sc.funcLit(lit)
		sc.spawned = prev
	} else {
		site.named = staticCallee(sc.info, call)
		sc.expr(call.Fun, held)
		if site.named != nil {
			// The spawned body runs with no locks held.
			sc.sum.calls = append(sc.sum.calls, callSite{pos: call.Pos(), callee: site.named, held: make(heldSet)})
		}
	}
	for _, a := range call.Args {
		sc.expr(a, held)
	}
	sc.sum.goSites = append(sc.sum.goSites, site)
}

// termSignal notes a receive/select/channel-range: a termination seed
// for the enclosing function, and a liveness signal for a spawned
// closure under analysis.
func (sc *scanner) termSignal() {
	sc.sum.termSeed = true
	if sc.spawned != nil {
		sc.spawned.chanSig = true
	}
}

// applyLockOp mutates held when e is a direct mutex operation, and
// records acquisitions (with the locks already held — the raw material
// of the lock-order graph).
func (sc *scanner) applyLockOp(e ast.Expr, held heldSet) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	name := isMutexMethod(staticCallee(sc.info, call))
	if name == "" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := resolveLockExpr(sc.info, sel.X)
	if !ok {
		return
	}
	switch name {
	case "Lock":
		sc.sum.acqs = append(sc.sum.acqs, lockAcq{id: id, pos: call.Pos(), held: held.clone()})
		held[id] = writeHeld
	case "RLock":
		sc.sum.acqs = append(sc.sum.acqs, lockAcq{id: id, pos: call.Pos(), read: true, held: held.clone()})
		if held[id] != writeHeld {
			held[id] = readHeld
		}
	case "Unlock", "RUnlock":
		delete(held, id)
	}
}

// resolveLockExpr resolves the receiver of a mutex method call to a
// lockID: a field selector (s.mu — declaring struct plus field, with
// the base object when the chain is simple) or a plain mutex variable.
func resolveLockExpr(info *types.Info, e ast.Expr) (lockID, bool) {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return lockID{root: v}, true
		}
	case *ast.SelectorExpr:
		sel := info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return lockID{}, false
		}
		owner := namedOwner(sel.Recv())
		if owner == "" {
			return lockID{}, false
		}
		id := lockID{owner: owner, field: sel.Obj().Name()}
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if v, ok := info.Uses[base].(*types.Var); ok {
				id.root = v
			}
		}
		return id, true
	}
	return lockID{}, false
}

// namedOwner renders the named struct type owning a field selection as
// "pkgpath.Type".
func namedOwner(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// isMutexMethod reports the method name when fn is
// (*sync.Mutex/RWMutex).Lock/Unlock/RLock/RUnlock, else "".
func isMutexMethod(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	recv := recvNamed(fn)
	if recv == "Mutex" || recv == "RWMutex" {
		return fn.Name()
	}
	return ""
}

// isWaitGroupMethod reports whether fn is (*sync.WaitGroup).<name>.
func isWaitGroupMethod(fn *types.Func, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		fn.Name() == name && recvNamed(fn) == "WaitGroup"
}

// recvNamed is the name of fn's receiver type (pointer dereferenced),
// or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// receiverObject resolves the receiver expression of a method call
// (x.M() or s.f.M()) to the object of x / the field f.
func receiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

func (sc *scanner) guardOf(e *ast.SelectorExpr) (guardSpec, bool) {
	sel := sc.info.Selections[e]
	if sel == nil || sel.Kind() != types.FieldVal {
		return guardSpec{}, false
	}
	fv, ok := sel.Obj().(*types.Var)
	if !ok {
		return guardSpec{}, false
	}
	spec, ok := sc.guards[fv]
	return spec, ok
}

func (sc *scanner) typeOf(e ast.Expr) types.Type {
	if tv, ok := sc.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isReceivableChan reports whether t is a channel the holder can
// receive from (a termination signal; a send-only channel is not one).
func isReceivableChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	return ok && ch.Dir() != types.SendOnly
}
