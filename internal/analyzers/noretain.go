package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoRetain enforces the scratch-reuse contract: a function annotated
// //bce:scratch (the reusable-simulator pattern — rrsim.Simulator,
// runner scratch buffers, the client's fingerprint arrays) must not
// retain references to caller-provided slices or pointers beyond the
// call. Retention is the aliasing bug class bit-identical goldens
// cannot catch until a later run mutates through the stale alias.
//
// The check is intraprocedural taint tracking: reference-carrying
// parameters (slices, pointers, maps, channels, funcs, interfaces, and
// any struct or array containing one — strings are immutable and
// exempt) are tainted, taint flows through local aliases, field and
// element selections, address-taking, and composite construction, and
// a flagged retention is a store whose destination roots at the
// receiver or a package-level variable (including the copy builtin
// when the element type itself carries references, and channel sends).
// append([]T(nil), src...) and copy into value-element buffers are
// recognized as deep copies and stay untainted.
//
// Known imprecision, by design: stores through a pointer local that
// aliases the receiver are missed, ownership handoff between calls is
// not modeled, and callees are opaque (a helper that retains must be
// annotated //bce:scratch itself to be checked). Deliberate,
// documented aliasing — e.g. sched.Decision aliasing the Enforcer's
// scratch until the next Enforce — carries //bce:retainok <reason>.
var NoRetain = &Analyzer{
	Name: "noretain",
	Doc: "APIs annotated //bce:scratch must not retain caller-provided slices or pointers " +
		"beyond the call; justify deliberate aliasing with //bce:retainok <reason>",
	Run: runNoRetain,
}

func runNoRetain(pass *Pass) error {
	idx := pass.markerIdx()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !idx.allows(pass.Fset, "scratch", fd.Pos()) {
				continue
			}
			newRetainChecker(pass, fd).check()
		}
	}
	return nil
}

type retainChecker struct {
	pass  *Pass
	fd    *ast.FuncDecl
	recv  types.Object
	taint map[types.Object]bool
}

func newRetainChecker(pass *Pass, fd *ast.FuncDecl) *retainChecker {
	c := &retainChecker{pass: pass, fd: fd, taint: make(map[types.Object]bool)}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		c.recv = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj != nil && containsRefs(obj.Type()) {
					c.taint[obj] = true
				}
			}
		}
	}
	return c
}

func (c *retainChecker) check() {
	c.propagateAliases()
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.CallExpr:
			c.checkCopy(n)
		case *ast.SendStmt:
			if root := c.persistentRoot(n.Chan); root != "" && c.refLike(n.Value) && c.tainted(n.Value) {
				c.flag(n.Pos(), root)
			}
		}
		return true
	})
}

// propagateAliases grows the taint set through local assignments and
// range bindings until it stabilizes.
func (c *retainChecker) propagateAliases() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if c.taintLocal(n.Lhs[i], c.tainted(n.Rhs[i])) {
							changed = true
						}
					}
				} else if len(n.Rhs) == 1 && c.tainted(n.Rhs[0]) {
					for _, l := range n.Lhs {
						if c.taintLocal(l, true) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if c.tainted(n.X) {
					if c.taintLocal(n.Key, true) {
						changed = true
					}
					if c.taintLocal(n.Value, true) {
						changed = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && c.tainted(vs.Values[i]) {
							if obj := c.pass.TypesInfo.Defs[name]; obj != nil && containsRefs(obj.Type()) && !c.taint[obj] {
								c.taint[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
}

// taintLocal marks the variable behind a plain-identifier assignment
// target as tainted; reports whether the set changed.
func (c *retainChecker) taintLocal(lhs ast.Expr, tainted bool) bool {
	if !tainted {
		return false
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !containsRefs(v.Type()) {
		return false
	}
	if v.Pos() < c.fd.Pos() || v.Pos() > c.fd.End() {
		return false // not a local; persistent stores are flagged separately
	}
	if c.taint[v] {
		return false
	}
	c.taint[v] = true
	return true
}

// checkAssign flags stores of tainted references into persistent
// destinations (the receiver or a package-level variable).
func (c *retainChecker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			if root := c.persistentRoot(as.Lhs[i]); root != "" && c.refLike(as.Rhs[i]) && c.tainted(as.Rhs[i]) {
				c.flag(as.Lhs[i].Pos(), root)
			}
		}
		return
	}
	if len(as.Rhs) == 1 && c.tainted(as.Rhs[0]) {
		for _, l := range as.Lhs {
			if root := c.persistentRoot(l); root != "" && containsRefs(typeOf(c.pass.TypesInfo, l)) {
				c.flag(l.Pos(), root)
			}
		}
	}
}

// checkCopy flags copy(dst, src) where dst is persistent, the element
// type itself carries references, and src is tainted — the elements
// land in retained storage still pointing at caller memory. Value
// elements are a deep copy and are fine.
func (c *retainChecker) checkCopy(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 2 {
		return
	}
	if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "copy" {
		return
	}
	root := c.persistentRoot(call.Args[0])
	if root == "" || !c.tainted(call.Args[1]) {
		return
	}
	if s, ok := typeOfUnderlying(c.pass.TypesInfo, call.Args[0]).(*types.Slice); ok && containsRefs(s.Elem()) {
		c.flag(call.Pos(), root)
	}
}

func (c *retainChecker) flag(pos token.Pos, root string) {
	if c.pass.Allowed("retainok", pos) {
		return
	}
	c.pass.Reportf(pos,
		"//bce:scratch function stores a caller-provided reference into %s, retaining it beyond the call; copy the contents instead, or justify with //bce:retainok <reason>",
		root)
}

// refLike reports whether the expression's static type can carry a
// reference worth retaining.
func (c *retainChecker) refLike(e ast.Expr) bool {
	return containsRefs(typeOf(c.pass.TypesInfo, e))
}

// persistentRoot climbs a store destination to its base identifier and
// returns a display name when that base outlives the call: the
// receiver, or a package-level variable. Caller-provided out-params
// are the caller's own memory and do not count as retention.
func (c *retainChecker) persistentRoot(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return ""
			}
			if c.recv != nil && obj == c.recv {
				return "the receiver (" + x.Name + ")"
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "package-level " + x.Name
			}
			return ""
		default:
			return ""
		}
	}
}

// tainted reports whether the expression may carry a caller-provided
// reference, bottom-up: selections, slicing, and address-taking keep
// taint; indexes used as keys, deep copies, and plain values do not.
func (c *retainChecker) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		return obj != nil && c.taint[obj]
	case *ast.ParenExpr:
		return c.tainted(e.X)
	case *ast.SelectorExpr:
		return c.tainted(e.X)
	case *ast.IndexExpr:
		return c.tainted(e.X)
	case *ast.SliceExpr:
		return c.tainted(e.X)
	case *ast.StarExpr:
		return c.tainted(e.X)
	case *ast.TypeAssertExpr:
		return c.tainted(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.tainted(e.X)
		}
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.tainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return c.taintedCall(e)
	case *ast.FuncLit:
		found := false
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.taint[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// taintedCall handles calls inside taint expressions: conversions pass
// taint through, append to a fresh slice is a deep copy unless the
// elements themselves carry references, and ordinary calls are
// conservative (tainted in, tainted out).
func (c *retainChecker) taintedCall(call *ast.CallExpr) bool {
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.tainted(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "copy", "make", "new", "min", "max":
				return false
			case "append":
				// append copies the appended elements, so the result is
				// tainted only if the destination already was, or the
				// element type itself carries references (copying a
				// caller's *Job still retains the pointee). The
				// value-element deep-copy idioms — s.buf =
				// append(s.buf[:0], in...) and append([]T(nil), in...)
				// — stay clean.
				if len(call.Args) == 0 {
					return false
				}
				if c.tainted(call.Args[0]) {
					return true
				}
				s, ok := typeOfUnderlying(c.pass.TypesInfo, call).(*types.Slice)
				if !ok || !containsRefs(s.Elem()) {
					return false
				}
				for _, a := range call.Args[1:] {
					if c.tainted(a) {
						return true
					}
				}
				return false
			}
		}
	}
	for _, a := range call.Args {
		if c.tainted(a) {
			return true
		}
	}
	return false
}

// containsRefs reports whether a value of type t can carry a reference
// into caller memory: pointers, slices, maps, channels, funcs,
// interfaces, or any struct/array containing one. Strings are
// immutable, so retaining one cannot alias a later mutation.
func containsRefs(t types.Type) bool {
	return refsWalk(t, make(map[types.Type]bool))
}

func refsWalk(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refsWalk(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return refsWalk(u.Elem(), seen)
	}
	return false
}
