package analyzers_test

import (
	"path/filepath"
	"testing"

	"bce/internal/analyzers"
	"bce/internal/analyzers/analysistest"
)

func golden(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNoWallTime(t *testing.T) {
	analysistest.Run(t, analyzers.NoWallTime, golden("nowalltime"))
}

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, analyzers.SeededRand, golden("seededrand"))
}

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analyzers.MapIter, golden("mapiter"))
}

func TestCtxPass(t *testing.T) {
	analysistest.Run(t, analyzers.CtxPass, golden("ctxpass"))
}

func TestSeedDerive(t *testing.T) {
	analysistest.Run(t, analyzers.SeedDerive, golden("seedderive"))
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analyzers.ErrDrop, golden("errdrop"))
}

// TestInterprocedural runs the fact engine over the interp golden
// mini-module: interp/core is the only in-scope package, so every
// laundered wall-clock read, global rand draw, and map range in
// interp/helper must surface at the core call site, exactly once, with
// the full chain in the message. The module includes mutual recursion
// and a cycle through an interface method, so a fixpoint that fails to
// terminate hangs this test and a double report fails the want check.
func TestInterprocedural(t *testing.T) {
	core := func(path string) bool { return path == "interp/core" }
	rules := []analyzers.Rule{
		{Analyzer: analyzers.NoWallTime, Applies: core},
		{Analyzer: analyzers.SeededRand, Applies: core},
		{Analyzer: analyzers.MapIter, Applies: core},
	}
	analysistest.RunModule(t, rules, golden("interp"))
}

// TestHotAlloc runs the allocation tier over the hotalloc golden
// mini-module: direct sites inside //bce:hotpath functions (escaping
// make/composite, non-self append, string conversions, boxing, closure
// captures, variadic construction, fmt), the two-hop laundering chain
// (kernel → helper.Fold → tally → scratch), interface dispatch through
// a CHA node, //bce:allocok placement on the line / line above / call
// site, and compile-time dead code under a const-false guard.
func TestHotAlloc(t *testing.T) {
	all := func(string) bool { return true }
	rules := []analyzers.Rule{
		{Analyzer: analyzers.HotAlloc, Applies: all},
	}
	analysistest.RunModule(t, rules, golden("hotalloc"))
}

// TestNoRetain runs the scratch-retention check over its golden
// package: slice/interior-pointer retention into receiver fields, maps
// and channels, package-level stores, alias laundering through locals,
// the copy builtin both ways, and the value-element deep-copy idioms
// that must stay clean.
func TestNoRetain(t *testing.T) {
	analysistest.Run(t, analyzers.NoRetain, golden("noretain"))
}

// TestConcurrency runs the concurrency tier over the conc golden
// mini-module: guardedby (held-lock tracking, RWMutex strength,
// cross-function requirements with witness chains), goleak (lifeline
// arguments, channel signals, awaited WaitGroups, interprocedural
// terminates facts), and lockorder (the A→B / B→A deadlock cycle —
// one half hidden behind a helper — reported exactly once with both
// chains, plus a reentrant self-cycle).
func TestConcurrency(t *testing.T) {
	all := func(string) bool { return true }
	rules := []analyzers.Rule{
		{Analyzer: analyzers.GuardedBy, Applies: all},
		{Analyzer: analyzers.GoLeak, Applies: all},
		{Analyzer: analyzers.LockOrder, Applies: all},
	}
	analysistest.RunModule(t, rules, golden("conc"))
}
