package analyzers_test

import (
	"path/filepath"
	"testing"

	"bce/internal/analyzers"
	"bce/internal/analyzers/analysistest"
)

func golden(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNoWallTime(t *testing.T) {
	analysistest.Run(t, analyzers.NoWallTime, golden("nowalltime"))
}

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, analyzers.SeededRand, golden("seededrand"))
}

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analyzers.MapIter, golden("mapiter"))
}

func TestCtxPass(t *testing.T) {
	analysistest.Run(t, analyzers.CtxPass, golden("ctxpass"))
}
