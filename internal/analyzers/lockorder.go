package analyzers

// LockOrder records per-function lock-acquisition facts — "f may
// acquire L", propagated through calls — and builds the module-wide
// lock-order graph: an edge A→B whenever some function acquires B
// (directly or via a callee) while holding A. Any cycle in that graph
// is a potential deadlock: two goroutines entering the cycle from
// different edges can each hold the lock the other wants. Each cycle
// is reported exactly once, with one representative edge per ordered
// pair and the acquisition chains as evidence; a self-edge (calling a
// method that reacquires a lock the caller already holds) is the
// reentrant-deadlock special case, since sync.Mutex is not reentrant.
// Lock identity is collapsed by owning type, except that two provably
// distinct instances (different root variables) of the same field do
// not form a self-edge — see DESIGN.md §10.2.
//
// All reporting happens in the module-wide concurrency engine
// (concurrency.go); the per-package pass is empty.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "the module-wide lock-order graph must be acyclic; cycles are potential deadlocks, " +
		"reported with both acquisition chains",
	Run: func(*Pass) error { return nil },
}
