package analyzers

// GoLeak flags go statements in library packages that have no visible
// termination path. A spawned goroutine is considered supervised when
// any of these hold:
//
//   - the go statement passes a context.Context or a receivable
//     channel to the callee (a caller-provided lifeline);
//   - the spawned closure itself receives from, selects on, or ranges
//     over a channel, or references a context;
//   - the goroutine calls Done on a sync.WaitGroup that some function
//     in the module awaits with Wait;
//   - the named callee (or a function the closure calls) has a
//     "terminates" fact: a context/channel parameter or a channel
//     signal in its body, propagated interprocedurally.
//
// Anything else is a fire-and-forget goroutine that outlives its
// spawner silently — the serve/runner worker-leak bug class.
// Deliberate fire-and-forget is annotated //bce:bgok.
//
// All reporting happens in the module-wide concurrency engine
// (concurrency.go); the per-package pass is empty.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "every go statement needs a visible termination path — a context, a stop channel, " +
		"or an awaited WaitGroup (//bce:bgok to allow)",
	Run: func(*Pass) error { return nil },
}
