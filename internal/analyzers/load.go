package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` in dir over the patterns
// and decodes the stream of package objects.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies type-check imports from the gc export data
// files that `go list -export` wrote into the build cache.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, listed []*listedPackage) *exportImporter {
	ei := &exportImporter{exports: make(map[string]string, len(listed))}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	ei.gc = importer.ForCompiler(fset, "gc", lookup)
	for _, p := range listed {
		if p.Export != "" {
			ei.exports[p.ImportPath] = p.Export
		}
	}
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}

// typeCheck parses and type-checks one package from its source files.
func typeCheck(fset *token.FileSet, importPath, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("package %s: no Go files", importPath)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// moduleImporter resolves imports of analyzed (source-checked)
// packages to their source-checked *types.Package, falling back to gc
// export data for everything else. Sharing one object universe across
// the module is what gives the call graph pointer identity: the
// *types.Func a caller resolves must be the same object the callee's
// package defined, or interprocedural facts cannot flow.
type moduleImporter struct {
	exports *exportImporter
	source  map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p := mi.source[path]; p != nil {
		return p, nil
	}
	return mi.exports.Import(path)
}

// Load type-checks the packages matching the patterns (resolved by the
// go command from dir; "" means the current directory). Only non-test
// Go files are analyzed, matching what ships in builds. Packages are
// checked in dependency order (`go list -deps` emits dependencies
// first), so every intra-module import resolves to the source-checked
// package.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := &moduleImporter{
		exports: newExportImporter(fset, listed),
		source:  make(map[string]*types.Package),
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		pkg, err := typeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		imp.source[p.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir type-checks a standalone directory of Go files that is not
// part of the module's package graph (the analysistest golden packages
// under testdata/src). Imports are resolved to gc export data by
// listing the imported paths explicitly.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var fileNames []string
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fileNames = append(fileNames, e.Name())
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "unsafe" {
				imports[path] = true
			}
		}
	}
	sort.Strings(fileNames)
	var listed []*listedPackage
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err = goList(dir, paths)
		if err != nil {
			return nil, err
		}
	}
	// Positions from the ImportsOnly pass above are discarded; parse
	// fresh on a clean fileset shared with the importer.
	fset = token.NewFileSet()
	imp := newExportImporter(fset, listed)
	return typeCheck(fset, filepath.Base(dir), dir, fileNames, imp)
}

// RunAnalyzer applies one analyzer to one loaded package.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders findings by position, then analyzer name, so
// suite output is stable however the rules and the fact engine
// interleave.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Pos, diags[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
