package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FactKind identifies one transitive determinism property tracked by
// the interprocedural engine (modeled on x/tools analysis facts, on
// the standard library alone). A function carries a fact when its body
// — or anything it transitively calls inside the module — performs the
// corresponding primitive without a sanctioning directive at the site.
type FactKind uint8

const (
	// FactWallClock: transitively reads the host's wall clock
	// (time.Now / time.Since / time.Sleep).
	FactWallClock FactKind = iota
	// FactGlobalRand: transitively draws from the global math/rand or
	// math/rand/v2 state.
	FactGlobalRand
	// FactMapRange: transitively ranges over a map, whose iteration
	// order is randomized per run.
	FactMapRange

	numFactKinds
)

// factInfo is one function's witness for one fact kind: the site
// inside the function that causes the fact, and the next function
// toward the root primitive (nil at the leaf). Witnesses are assigned
// exactly once, when the fact is first acquired, from a function whose
// own chain already terminates — so chains are finite even inside
// call-graph cycles.
type factInfo struct {
	has  bool
	pos  token.Pos   // offending site within the function
	what string      // leaf only: the root primitive ("time.Now", ...)
	via  *types.Func // next hop toward the root; nil at the leaf
}

// factStore holds the computed facts for every module function.
type factStore struct {
	graph   *callGraph
	fset    *token.FileSet
	markers map[*Package]*markerIndex
	facts   map[*types.Func]*[numFactKinds]factInfo
}

func (s *factStore) info(fn *types.Func) *[numFactKinds]factInfo {
	fi := s.facts[fn]
	if fi == nil {
		fi = new([numFactKinds]factInfo)
		s.facts[fn] = fi
	}
	return fi
}

// computeFacts seeds direct facts from every function body and
// propagates them through the call graph: strongly connected
// components are processed in reverse topological order (callees
// before callers), and within each SCC a worklist iterates to a
// fixpoint, so mutual recursion — including cycles through interface
// dispatch — converges with every member carrying the facts reachable
// from it.
func computeFacts(pkgs []*Package, graph *callGraph) *factStore {
	s := &factStore{
		graph:   graph,
		markers: make(map[*Package]*markerIndex, len(pkgs)),
		facts:   make(map[*types.Func]*[numFactKinds]factInfo),
	}
	for _, pkg := range pkgs {
		s.fset = pkg.Fset // Load shares one FileSet across the module
		s.markers[pkg] = indexMarkers(pkg.Fset, pkg.Files)
	}
	for _, n := range graph.order {
		if n.body != nil {
			s.seedDirect(n)
		}
	}
	for _, comp := range graph.sccs() {
		changed := true
		for changed {
			changed = false
			for _, n := range comp {
				for _, e := range n.out {
					callee := graph.nodes[e.callee]
					if callee == nil {
						continue
					}
					from := s.facts[callee.fn]
					if from == nil {
						continue
					}
					for k := FactKind(0); k < numFactKinds; k++ {
						if !from[k].has {
							continue
						}
						to := s.info(n.fn)
						if to[k].has {
							continue
						}
						pos := e.pos
						if !pos.IsValid() {
							// CHA interface→implementation edge: anchor
							// the hop at the implementation itself.
							pos = callee.fn.Pos()
						}
						to[k] = factInfo{has: true, pos: pos, via: callee.fn}
						changed = true
					}
				}
			}
		}
	}
	return s
}

// seedDirect records the first unallowed primitive of each kind found
// in the function body.
func (s *factStore) seedDirect(n *cgNode) {
	idx := s.markers[n.pkg]
	info := n.pkg.Info
	ast.Inspect(n.body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			fn := staticCallee(info, node)
			if fn == nil {
				return true
			}
			switch {
			case isPackageLevel(fn, "time") && wallClockFuncs[fn.Name()]:
				if !idx.allows(s.fset, "wallclock", node.Pos()) {
					s.setDirect(n.fn, FactWallClock, node.Pos(), "time."+fn.Name())
				}
			case !randConstructors[fn.Name()] &&
				(isPackageLevel(fn, "math/rand") || isPackageLevel(fn, "math/rand/v2")):
				s.setDirect(n.fn, FactGlobalRand, node.Pos(), fn.Pkg().Path()+"."+fn.Name())
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[node.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if !idx.allows(s.fset, "unordered", node.Pos()) {
				s.setDirect(n.fn, FactMapRange, node.Pos(),
					"range over "+types.TypeString(tv.Type, types.RelativeTo(n.pkg.Types)))
			}
		}
		return true
	})
}

func (s *factStore) setDirect(fn *types.Func, k FactKind, pos token.Pos, what string) {
	fi := s.info(fn)
	if !fi[k].has {
		fi[k] = factInfo{has: true, pos: pos, what: what}
	}
}

// maxChainLen bounds rendered chains; witness chains are acyclic by
// construction, this is a belt against pathological depth.
const maxChainLen = 16

// chain renders the witness path from fn down to the root primitive.
func (s *factStore) chain(fn *types.Func, k FactKind) []ChainStep {
	var steps []ChainStep
	for cur := fn; cur != nil && len(steps) < maxChainLen; {
		fi := s.facts[cur]
		if fi == nil || !fi[k].has {
			break
		}
		what := fi[k].what
		if fi[k].via != nil {
			what = "calls " + fi[k].via.FullName()
		}
		steps = append(steps, ChainStep{
			Func: cur.FullName(),
			Pos:  s.fset.Position(fi[k].pos),
			What: what,
		})
		cur = fi[k].via
	}
	return steps
}

// chainSummary is the compact one-line form embedded in messages:
// "helper.Elapsed → helper.stamp → time.Now".
func (s *factStore) chainSummary(fn *types.Func, k FactKind) string {
	parts := []string{fn.FullName()}
	for cur := fn; len(parts) < maxChainLen; {
		fi := s.facts[cur]
		if fi == nil || !fi[k].has {
			break
		}
		if fi[k].via == nil {
			parts = append(parts, fi[k].what)
			break
		}
		parts = append(parts, fi[k].via.FullName())
		cur = fi[k].via
	}
	return strings.Join(parts, " → ")
}

// factRule describes how one analyzer consumes the fact store: which
// kind it propagates and which caller-side directive sanctions a
// flagged call site.
type factRule struct {
	kind   FactKind
	marker string // "" = no escape hatch
	format string // Sprintf(format, callee, chain)
}

var analyzerFacts = map[string]factRule{
	"nowalltime": {FactWallClock, "wallclock",
		"call into %s reaches a wall-clock read (%s); use the simulated clock, or annotate a deliberate host-time measurement with //bce:wallclock"},
	"seededrand": {FactGlobalRand, "",
		"call into %s reaches the global math/rand state (%s); thread an explicitly seeded internal/stats.RNG instead"},
	"mapiter": {FactMapRange, "unordered",
		"call into %s reaches a randomized-order map range (%s) that can diverge replay; sort at the source, or mark an order-insensitive loop there with //bce:unordered"},
}

// report emits the laundered-fact diagnostics: a call site in a
// package the rule governs, whose callee carries the fact rooted in a
// package the rule does not govern (a violation in a governed package
// is already reported at its source by the direct analyzer, so each
// violation surfaces exactly once).
func (s *factStore) report(rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, rule := range rules {
		fr, ok := analyzerFacts[rule.Analyzer.Name]
		if !ok {
			continue
		}
		for _, n := range s.graph.order {
			if n.pkg == nil || !rule.Applies(n.pkg.ImportPath) {
				continue
			}
			for _, e := range n.out {
				if !e.pos.IsValid() {
					continue
				}
				callee := s.graph.nodes[e.callee]
				if callee == nil {
					continue
				}
				fi := s.facts[callee.fn]
				if fi == nil || !fi[fr.kind].has {
					continue
				}
				if rule.Applies(s.rootPath(callee.fn, fr.kind, e.dynamic)) {
					continue
				}
				if fr.marker != "" && s.markers[n.pkg].allows(s.fset, fr.marker, e.pos) {
					continue
				}
				out = append(out, Diagnostic{
					Analyzer: rule.Analyzer.Name,
					Pos:      s.fset.Position(e.pos),
					Message: fmt.Sprintf(fr.format,
						callee.fn.FullName(), s.chainSummary(callee.fn, fr.kind)),
					Chain: s.chain(callee.fn, fr.kind),
				})
			}
		}
	}
	return out
}

// rootPath is the package path the scope test runs against. For a
// static callee that is the callee's own package. An interface method
// has no body to report in, so a dynamic call is scope-tested against
// the witness implementation instead.
func (s *factStore) rootPath(fn *types.Func, k FactKind, dynamic bool) string {
	if dynamic {
		if fi := s.facts[fn]; fi != nil && fi[k].via != nil {
			fn = fi[k].via
		}
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
