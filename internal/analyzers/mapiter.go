package analyzers

import (
	"go/ast"
	"go/types"
)

// MapIter flags `range` over map values in the core scheduling
// packages. Go randomizes map iteration order per run, so a map range
// that feeds ordered output, floating-point accumulation, or a
// scheduling decision silently breaks bit-identical replay. Iterate a
// sorted key slice instead, or mark a provably order-insensitive loop
// (e.g. a pure min/max or set rebuild) with //bce:unordered.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "forbid ranging over maps in scheduling code; iterate sorted keys, " +
		"or mark order-insensitive loops with //bce:unordered",
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	pass.inspect(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Allowed("unordered", rng.Pos()) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"range over map %s iterates in randomized order and can diverge replay; iterate a sorted key slice, or mark an order-insensitive loop with //bce:unordered",
			types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		return true
	})
	return nil
}
