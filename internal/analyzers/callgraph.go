package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// callGraph is a module-wide over-approximation of "who calls whom",
// keyed by *types.Func. Static calls (pkg.F, helper(), recv.M on a
// concrete receiver) resolve exactly; calls through an interface
// resolve to the interface method, which in turn gets one edge per
// module-declared concrete type implementing it (class-hierarchy
// analysis). Function literals have no node of their own: their bodies
// are attributed to the enclosing declared function, so a fact inside
// a closure propagates to the function that created it. Calls of plain
// function *values* are opaque — the fact engine cannot see through
// them, which is the documented under-approximation of the suite.
type callGraph struct {
	nodes map[*types.Func]*cgNode
	order []*cgNode // packages sorted by import path, then source order
}

type cgNode struct {
	fn   *types.Func
	pkg  *Package      // defining package; nil for synthetic interface-method nodes
	body *ast.FuncDecl // nil for synthetic interface-method nodes
	out  []cgEdge
}

type cgEdge struct {
	callee  *types.Func
	pos     token.Pos // call site; NoPos for CHA interface→implementation edges
	dynamic bool      // dispatched through an interface
}

// buildCallGraph constructs the graph over the loaded packages, which
// Load returns sorted by import path so node and edge order — and
// therefore every downstream fixpoint and diagnostic — is
// deterministic.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*cgNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &cgNode{fn: fn, pkg: pkg, body: fd}
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}

	ifaceMethods := make(map[*types.Func]bool)
	for _, n := range g.order {
		ast.Inspect(n.body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(n.pkg.Info, call)
			if callee == nil {
				return true
			}
			dyn := isInterfaceMethod(callee)
			if dyn {
				ifaceMethods[callee] = true
			}
			n.out = append(n.out, cgEdge{callee: callee, pos: call.Pos(), dynamic: dyn})
			return true
		})
	}

	g.addInterfaceEdges(pkgs, ifaceMethods)
	return g
}

// addInterfaceEdges gives every interface method that appears as a
// callee a synthetic node with one edge per module-declared concrete
// type that implements the interface (CHA). These edges let facts flow
// from an implementation, through the interface method, to every
// dynamic call site — including cycles that pass through dynamic
// dispatch.
func (g *callGraph) addInterfaceEdges(pkgs []*Package, ifaceMethods map[*types.Func]bool) {
	var concrete []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); !isIface {
				concrete = append(concrete, named)
			}
		}
	}

	methods := make([]*types.Func, 0, len(ifaceMethods))
	for m := range ifaceMethods {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(i, j int) bool {
		if methods[i].FullName() != methods[j].FullName() {
			return methods[i].FullName() < methods[j].FullName()
		}
		return methods[i].Pos() < methods[j].Pos()
	})

	for _, m := range methods {
		iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		node := &cgNode{fn: m}
		for _, named := range concrete {
			var impl types.Type = named
			if !types.Implements(impl, iface) {
				impl = types.NewPointer(named)
				if !types.Implements(impl, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
			cm, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			// Only methods with a body in the module carry facts;
			// promoted methods from types outside the module are opaque.
			if _, inModule := g.nodes[cm]; !inModule {
				continue
			}
			node.out = append(node.out, cgEdge{callee: cm, pos: token.NoPos})
		}
		g.nodes[m] = node
		g.order = append(g.order, node)
	}
}

// isInterfaceMethod reports whether fn is declared on an interface
// type (so a call of it dispatches dynamically).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// sccs returns the strongly connected components of the graph in
// reverse topological order (callees before callers), via Tarjan's
// algorithm — which emits components in exactly that order.
func (g *callGraph) sccs() [][]*cgNode {
	index := make(map[*cgNode]int, len(g.order))
	low := make(map[*cgNode]int, len(g.order))
	onStack := make(map[*cgNode]bool, len(g.order))
	var stack []*cgNode
	var comps [][]*cgNode
	next := 0

	var strongConnect func(n *cgNode)
	strongConnect = func(n *cgNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.out {
			w := g.nodes[e.callee]
			if w == nil {
				continue // callee outside the module
			}
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[n] {
					low[n] = low[w]
				}
			} else if onStack[w] && index[w] < low[n] {
				low[n] = index[w]
			}
		}
		if low[n] == index[n] {
			var comp []*cgNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == n {
					break
				}
			}
			comps = append(comps, comp)
		}
	}

	for _, n := range g.order {
		if _, seen := index[n]; !seen {
			strongConnect(n)
		}
	}
	return comps
}
