package analyzers

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags error results that library code silently discards: a
// call used as a bare statement (including defer and go), or an error
// result assigned to the blank identifier. A dropped error hides
// exactly the failures — a checkpoint that didn't persist, a state
// file that didn't parse — that make emulation results silently wrong.
// Deliberate drops carry a //bce:errok directive with a justification.
//
// Functions that cannot fail in practice are exempt: everything in
// package fmt (whose error surfaces only for failing writers the
// caller already owns), and the never-failing writers *bytes.Buffer
// and *strings.Builder.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "forbid silently discarded error results in library code " +
		"(//bce:errok to justify a deliberate drop)",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				checkDroppedCall(pass, call)
			}
		case *ast.DeferStmt:
			checkDroppedCall(pass, n.Call)
		case *ast.GoStmt:
			checkDroppedCall(pass, n.Call)
		case *ast.AssignStmt:
			checkBlankAssign(pass, n)
		}
		return true
	})
	return nil
}

// checkDroppedCall reports a call statement whose results include an
// error nobody looks at.
func checkDroppedCall(pass *Pass, call *ast.CallExpr) {
	if !returnsError(pass, call) || errDropExempt(pass, call) {
		return
	}
	if pass.Allowed("errok", call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"error result of %s silently discarded; handle it, or justify a deliberate drop with //bce:errok",
		callName(pass, call))
}

// checkBlankAssign reports error values assigned to the blank
// identifier straight off a call: x, _ := f() and _ = f().
func checkBlankAssign(pass *Pass, stmt *ast.AssignStmt) {
	report := func(call *ast.CallExpr) {
		if errDropExempt(pass, call) || pass.Allowed("errok", stmt.Pos()) {
			return
		}
		pass.Reportf(stmt.Pos(),
			"error result of %s discarded into _; handle it, or justify a deliberate drop with //bce:errok",
			callName(pass, call))
	}
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				report(call)
				return
			}
		}
		return
	}
	if len(stmt.Rhs) != len(stmt.Lhs) {
		return
	}
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) {
			continue
		}
		call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[call]; ok && tv.Type != nil && isErrorType(tv.Type) {
			report(call)
		}
	}
}

// returnsError reports whether any result of the call is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// errDropExempt reports whether the callee's error is infallible noise
// rather than a failure signal: package fmt, and the documented
// never-failing writers.
func errDropExempt(pass *Pass, call *ast.CallExpr) bool {
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// callName renders the called expression for the diagnostic.
func callName(pass *Pass, call *ast.CallExpr) string {
	if fn := staticCallee(pass.TypesInfo, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() != pass.Pkg.Path() &&
			(fn.Type().(*types.Signature).Recv() == nil) {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}
