package analyzers

// GuardedBy enforces //bce:guardedby annotations: a struct field
// annotated `//bce:guardedby mu` may only be read or written while mu
// is held. The held-lock set is tracked through each function body
// (Lock/Unlock/RLock/RUnlock, including deferred unlocks), and
// "requires mu held" facts propagate interprocedurally so a helper
// that touches the field is checked at every call site: callers that
// hold the lock discharge the requirement, and the violation surfaces
// at root functions (exported, or called by nobody in the module) with
// the witness chain down to the raw access. RWMutex read locks satisfy
// reads only; writes need the exclusive lock. The analysis is
// path-insensitive and collapses lock instances by owning type — see
// DESIGN.md §10.2. A checked invariant (e.g. access before any
// goroutine exists) is annotated //bce:lockok.
//
// All reporting happens in the module-wide concurrency engine
// (concurrency.go); the per-package pass is empty.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated //bce:guardedby <mu> may only be accessed with the lock held, " +
		"checked interprocedurally with witness chains (//bce:lockok to allow)",
	Run: func(*Pass) error { return nil },
}
