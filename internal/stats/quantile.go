// Fixed-size streaming quantile estimation (the P² algorithm of Jain &
// Chlamtac, CACM 1985). A population study folds millions of
// per-scenario figure-of-merit values; P² tracks a quantile with five
// markers — O(1) memory and update cost, no sample retention — which is
// what keeps the streaming study's footprint independent of the
// scenario count. The marker state is plain exported float64/int
// fields, so a sketch serializes to JSON and resumes bit-identically
// (Go's JSON encoding of float64 is exact round-trip).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates one quantile of a stream with five markers.
// The zero value is not ready for use; call NewP2Quantile.
type P2Quantile struct {
	P float64 `json:"p"` // target quantile in (0,1)
	N int     `json:"n"` // observations folded so far

	// Marker state, meaningful once N >= 5: H are the marker heights
	// (H[2] estimates the quantile), Pos their integer positions, Des
	// the desired (fractional) positions.
	H   [5]float64 `json:"h"`
	Pos [5]int     `json:"pos"`
	Des [5]float64 `json:"des"`
}

// NewP2Quantile returns a sketch targeting quantile p in (0,1).
func NewP2Quantile(p float64) P2Quantile {
	return P2Quantile{P: p}
}

// Add folds one observation into the sketch.
func (q *P2Quantile) Add(x float64) {
	if q.N < 5 {
		q.H[q.N] = x
		q.N++
		if q.N == 5 {
			sort.Float64s(q.H[:])
			for i := range q.Pos {
				q.Pos[i] = i + 1
			}
			q.Des = [5]float64{1, 1 + 2*q.P, 1 + 4*q.P, 3 + 2*q.P, 5}
		}
		return
	}
	q.N++

	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < q.H[0]:
		q.H[0] = x
		k = 0
	case x >= q.H[4]:
		q.H[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < q.H[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.Pos[i]++
	}
	q.Des[1] += q.P / 2
	q.Des[2] += q.P
	q.Des[3] += (1 + q.P) / 2
	q.Des[4]++

	// Adjust the interior markers toward their desired positions with a
	// piecewise-parabolic (hence P²) height prediction.
	for i := 1; i <= 3; i++ {
		d := q.Des[i] - float64(q.Pos[i])
		if (d >= 1 && q.Pos[i+1]-q.Pos[i] > 1) || (d <= -1 && q.Pos[i-1]-q.Pos[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			h := q.parabolic(i, s)
			if q.H[i-1] < h && h < q.H[i+1] {
				q.H[i] = h
			} else {
				q.H[i] = q.linear(i, s)
			}
			q.Pos[i] += s
		}
	}
}

// parabolic is the P² quadratic height prediction for moving marker i
// by s (±1).
func (q *P2Quantile) parabolic(i, s int) float64 {
	ni := float64(q.Pos[i])
	np := float64(q.Pos[i+1])
	nm := float64(q.Pos[i-1])
	fs := float64(s)
	return q.H[i] + fs/(np-nm)*
		((ni-nm+fs)*(q.H[i+1]-q.H[i])/(np-ni)+
			(np-ni-fs)*(q.H[i]-q.H[i-1])/(ni-nm))
}

// linear is the fallback height prediction when the parabola would
// break marker monotonicity.
func (q *P2Quantile) linear(i, s int) float64 {
	return q.H[i] + float64(s)*(q.H[i+s]-q.H[i])/float64(q.Pos[i+s]-q.Pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact nearest-rank small-sample
// quantile: the ceil(p·N)-th smallest observation (the standard
// nearest-rank definition), not the floor(p·N)+1-th — e.g. p=0.25 over
// 4 samples is the 1st-smallest, not the 2nd.
func (q *P2Quantile) Value() float64 {
	if q.N == 0 {
		return 0
	}
	if q.N < 5 {
		h := make([]float64, q.N)
		copy(h, q.H[:q.N])
		sort.Float64s(h)
		i := int(math.Ceil(q.P*float64(q.N))) - 1
		if i < 0 {
			i = 0
		}
		if i >= q.N {
			i = q.N - 1
		}
		return h[i]
	}
	return q.H[2]
}

// DefaultQuantiles are the targets a QuantileSketch tracks unless told
// otherwise: quartiles plus the tail the study report quotes.
var DefaultQuantiles = []float64{0.25, 0.5, 0.75, 0.9, 0.95}

// QuantileSketch tracks a fixed set of quantiles of one stream, one P²
// estimator per target — constant memory regardless of stream length.
type QuantileSketch struct {
	Targets []P2Quantile `json:"targets"`
}

// NewQuantileSketch returns a sketch for the given targets
// (DefaultQuantiles when none are given).
func NewQuantileSketch(ps ...float64) QuantileSketch {
	if len(ps) == 0 {
		ps = DefaultQuantiles
	}
	s := QuantileSketch{Targets: make([]P2Quantile, len(ps))}
	for i, p := range ps {
		s.Targets[i] = NewP2Quantile(p)
	}
	return s
}

// Add folds one observation into every target estimator.
func (s *QuantileSketch) Add(x float64) {
	for i := range s.Targets {
		s.Targets[i].Add(x)
	}
}

// Quantile returns the estimate for target p, which must be one of the
// sketch's targets.
func (s *QuantileSketch) Quantile(p float64) (float64, error) {
	for i := range s.Targets {
		if s.Targets[i].P == p {
			return s.Targets[i].Value(), nil
		}
	}
	return 0, fmt.Errorf("stats: quantile %g not tracked by this sketch", p)
}
