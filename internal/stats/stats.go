// Package stats provides the random processes and summary statistics used
// by the emulator: seeded RNG streams, truncated-normal and exponential
// draws for job runtimes and availability periods, lognormal runtime
// estimate errors, and small accumulators (mean, RMS, exponential decay).
//
// All randomness in an emulation flows through an *RNG derived from the
// scenario seed, so runs are reproducible bit-for-bit.
package stats

import (
	"encoding/json"
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. Distinct model components should
// use distinct streams (see Fork) so adding draws to one component does
// not perturb another.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream; the label keeps children
// with different purposes decorrelated even with equal parent state.
func (g *RNG) Fork(label string) *RNG {
	h := int64(14695981039346656037 & 0x7fffffffffffffff)
	for _, c := range label {
		h = (h ^ int64(c)) * 1099511628211
	}
	return NewRNG(g.r.Int63() ^ h)
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform draw in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal draw with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stdev float64) float64 {
	return mean + stdev*g.r.NormFloat64()
}

// TruncNormal returns a normal draw truncated (by resampling, then
// clamping) to [lo, hi]. The emulator uses it for job runtimes, which the
// paper models as normally distributed but which must stay positive.
func (g *RNG) TruncNormal(mean, stdev, lo, hi float64) float64 {
	if stdev <= 0 {
		return math.Min(hi, math.Max(lo, mean))
	}
	for i := 0; i < 8; i++ {
		x := g.Normal(mean, stdev)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Exp returns an exponential draw with the given mean. Used for
// availability on/off period lengths, per the paper's host model.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Lognormal returns exp(N(mu, sigma)). Runtime estimate errors are
// modelled as multiplicative lognormal factors with median exp(mu).
func (g *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Mean is an online mean/variance accumulator. It keeps the exact sum
// and exact sum of squares of its samples as non-overlapping float64
// expansions (see exactsum.go), so the accumulated state is a pure
// function of the sample multiset: adding samples in any order, or
// splitting them across accumulators and merging, yields bit-identical
// Mean/Var/State results. That is the property the sharded population
// study relies on for shard-count-invariant output.
//
// A Mean holds internal slices; do not copy a Mean that is still being
// Added to (pass pointers, as every method already requires).
type Mean struct {
	n     int
	sum   []float64 // exact Σx as non-overlapping partials
	sumsq []float64 // exact Σx² as non-overlapping partials
}

// MeanState is the serializable form of a Mean accumulator: the count
// plus the canonical expansions of the exact sum and sum of squares.
// Canonical means the first component is the correctly-rounded total,
// the next the correctly-rounded remainder, and so on — a pure function
// of the exact sums, so two accumulators that saw the same samples in
// any order serialize byte-for-byte identically. JSON encodes float64
// in shortest round-trip form, so a state written to a checkpoint and
// read back reconstructs the accumulator bit-for-bit.
type MeanState struct {
	N     int       `json:"n"`
	Sum   []float64 `json:"sum,omitempty"`
	SumSq []float64 `json:"sumsq,omitempty"`
}

// State exports the accumulator for checkpointing, in canonical form.
func (m Mean) State() MeanState {
	return MeanState{
		N:     m.n,
		Sum:   canonicalPartials(m.sum),
		SumSq: canonicalPartials(m.sumsq),
	}
}

// MeanFromState reconstructs an accumulator from an exported state.
func MeanFromState(s MeanState) Mean {
	return Mean{
		n:     s.N,
		sum:   append([]float64(nil), s.Sum...),
		sumsq: append([]float64(nil), s.SumSq...),
	}
}

// Merge folds accumulator s into m, exactly: the result is
// bit-identical to a single accumulator that saw both sample sets, in
// any order. Merge is therefore associative and commutative.
func (s MeanState) Merge(o MeanState) MeanState {
	m := MeanFromState(s)
	other := MeanFromState(o)
	m.Merge(&other)
	return m.State()
}

// MarshalJSON encodes the accumulator as its canonical MeanState.
func (m Mean) MarshalJSON() ([]byte, error) { return json.Marshal(m.State()) }

// UnmarshalJSON decodes a MeanState back into the accumulator.
func (m *Mean) UnmarshalJSON(b []byte) error {
	var s MeanState
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*m = MeanFromState(s)
	return nil
}

// Add folds a sample into the accumulator.
//
//bce:hotpath
func (m *Mean) Add(x float64) {
	m.n++
	m.sum = addPartial(m.sum, x)
	m.sumsq = addPartial(m.sumsq, x*x)
}

// Merge folds all samples seen by o into m, exactly (see the type
// comment). o is unchanged.
func (m *Mean) Merge(o *Mean) {
	m.n += o.n
	m.sum = mergePartials(m.sum, o.sum)
	m.sumsq = mergePartials(m.sumsq, o.sumsq)
}

// N returns the number of samples.
func (m *Mean) N() int { return m.n }

// Mean returns the sample mean (0 with no samples). The result is the
// correctly-rounded exact sum divided by n, so it does not depend on
// the order the samples arrived or on how accumulators were merged.
func (m *Mean) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return sumPartials(m.sum) / float64(m.n)
}

// Var returns the sample variance (0 with <2 samples), computed from
// the correctly-rounded exact sums as (Σx² − (Σx)²/n)/(n−1), clamped at
// zero. The exact sums make the result order-independent; the clamp
// absorbs the final-rounding wobble that can push a near-zero variance
// fractionally negative.
func (m *Mean) Var() float64 {
	if m.n < 2 {
		return 0
	}
	n := float64(m.n)
	sv := sumPartials(m.sum)
	qv := sumPartials(m.sumsq)
	v := (qv - sv*(sv/n)) / (n - 1)
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// Stdev returns the sample standard deviation.
func (m *Mean) Stdev() float64 { return math.Sqrt(m.Var()) }

// CI95 returns the half-width of an approximate 95% confidence interval
// on the mean (normal approximation).
func (m *Mean) CI95() float64 {
	if m.n < 2 {
		return 0
	}
	return 1.96 * m.Stdev() / math.Sqrt(float64(m.n))
}

// RMS accumulates the root-mean-square of samples.
type RMS struct {
	n  int
	ss float64
}

// Add folds a sample into the accumulator.
func (r *RMS) Add(x float64) {
	r.n++
	r.ss += x * x
}

// Value returns sqrt(mean of squares) (0 with no samples).
func (r *RMS) Value() float64 {
	if r.n == 0 {
		return 0
	}
	return math.Sqrt(r.ss / float64(r.n))
}

// DecayAvg is an exponentially-decaying accumulator with a configurable
// half-life, the primitive behind REC (recent estimated credit)
// accounting. Value decays continuously; Add charges an amount at a
// given time.
type DecayAvg struct {
	HalfLife float64 // seconds; <=0 means no decay
	value    float64
	lastT    float64
}

// DecayTo decays the accumulator to time t without adding anything.
func (d *DecayAvg) DecayTo(t float64) {
	if d.HalfLife > 0 && t > d.lastT {
		d.value *= math.Exp2(-(t - d.lastT) / d.HalfLife)
	}
	if t > d.lastT {
		d.lastT = t
	}
}

// Add decays to time t and then adds amount.
func (d *DecayAvg) Add(t, amount float64) {
	d.DecayTo(t)
	d.value += amount
}

// Value returns the accumulator decayed to time t.
func (d *DecayAvg) Value(t float64) float64 {
	d.DecayTo(t)
	return d.value
}

// Clamp01 clamps x to [0,1]; figures of merit are defined on that range.
func Clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x), x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
