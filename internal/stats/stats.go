// Package stats provides the random processes and summary statistics used
// by the emulator: seeded RNG streams, truncated-normal and exponential
// draws for job runtimes and availability periods, lognormal runtime
// estimate errors, and small accumulators (mean, RMS, exponential decay).
//
// All randomness in an emulation flows through an *RNG derived from the
// scenario seed, so runs are reproducible bit-for-bit.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. Distinct model components should
// use distinct streams (see Fork) so adding draws to one component does
// not perturb another.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream; the label keeps children
// with different purposes decorrelated even with equal parent state.
func (g *RNG) Fork(label string) *RNG {
	h := int64(14695981039346656037 & 0x7fffffffffffffff)
	for _, c := range label {
		h = (h ^ int64(c)) * 1099511628211
	}
	return NewRNG(g.r.Int63() ^ h)
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform draw in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal draw with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stdev float64) float64 {
	return mean + stdev*g.r.NormFloat64()
}

// TruncNormal returns a normal draw truncated (by resampling, then
// clamping) to [lo, hi]. The emulator uses it for job runtimes, which the
// paper models as normally distributed but which must stay positive.
func (g *RNG) TruncNormal(mean, stdev, lo, hi float64) float64 {
	if stdev <= 0 {
		return math.Min(hi, math.Max(lo, mean))
	}
	for i := 0; i < 8; i++ {
		x := g.Normal(mean, stdev)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Exp returns an exponential draw with the given mean. Used for
// availability on/off period lengths, per the paper's host model.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Lognormal returns exp(N(mu, sigma)). Runtime estimate errors are
// modelled as multiplicative lognormal factors with median exp(mu).
func (g *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Mean is an online mean/variance accumulator (Welford).
type Mean struct {
	n    int
	mean float64
	m2   float64
}

// MeanState is the serializable form of a Mean accumulator: the Welford
// triple (count, running mean, sum of squared deviations). JSON encodes
// float64 values exactly (shortest round-trip form), so a state written
// to a checkpoint and read back reconstructs the accumulator
// bit-for-bit.
type MeanState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State exports the accumulator for checkpointing.
func (m Mean) State() MeanState { return MeanState{N: m.n, Mean: m.mean, M2: m.m2} }

// MeanFromState reconstructs an accumulator from an exported state.
func MeanFromState(s MeanState) Mean { return Mean{n: s.N, mean: s.Mean, m2: s.M2} }

// Add folds a sample into the accumulator.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples.
func (m *Mean) N() int { return m.n }

// Mean returns the sample mean (0 with no samples).
func (m *Mean) Mean() float64 { return m.mean }

// Var returns the sample variance (0 with <2 samples).
func (m *Mean) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Stdev returns the sample standard deviation.
func (m *Mean) Stdev() float64 { return math.Sqrt(m.Var()) }

// CI95 returns the half-width of an approximate 95% confidence interval
// on the mean (normal approximation).
func (m *Mean) CI95() float64 {
	if m.n < 2 {
		return 0
	}
	return 1.96 * m.Stdev() / math.Sqrt(float64(m.n))
}

// RMS accumulates the root-mean-square of samples.
type RMS struct {
	n  int
	ss float64
}

// Add folds a sample into the accumulator.
func (r *RMS) Add(x float64) {
	r.n++
	r.ss += x * x
}

// Value returns sqrt(mean of squares) (0 with no samples).
func (r *RMS) Value() float64 {
	if r.n == 0 {
		return 0
	}
	return math.Sqrt(r.ss / float64(r.n))
}

// DecayAvg is an exponentially-decaying accumulator with a configurable
// half-life, the primitive behind REC (recent estimated credit)
// accounting. Value decays continuously; Add charges an amount at a
// given time.
type DecayAvg struct {
	HalfLife float64 // seconds; <=0 means no decay
	value    float64
	lastT    float64
}

// DecayTo decays the accumulator to time t without adding anything.
func (d *DecayAvg) DecayTo(t float64) {
	if d.HalfLife > 0 && t > d.lastT {
		d.value *= math.Exp2(-(t - d.lastT) / d.HalfLife)
	}
	if t > d.lastT {
		d.lastT = t
	}
}

// Add decays to time t and then adds amount.
func (d *DecayAvg) Add(t, amount float64) {
	d.DecayTo(t)
	d.value += amount
}

// Value returns the accumulator decayed to time t.
func (d *DecayAvg) Value(t float64) float64 {
	d.DecayTo(t)
	return d.value
}

// Clamp01 clamps x to [0,1]; figures of merit are defined on that range.
func Clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x), x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
