package stats

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
)

// randomSamples draws a mix of magnitudes nasty enough to defeat naive
// float summation: large and tiny values interleaved, signs mixed.
func randomSamples(g *RNG, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch g.Intn(4) {
		case 0:
			xs[i] = g.Uniform(-1, 1)
		case 1:
			xs[i] = g.Uniform(-1e9, 1e9)
		case 2:
			xs[i] = g.Uniform(-1e-9, 1e-9)
		default:
			xs[i] = g.Lognormal(0, 3)
		}
	}
	return xs
}

// splitPoints cuts [0,n) into k random contiguous parts.
func splitPoints(g *RNG, n, k int) []int {
	cuts := map[int]bool{}
	for len(cuts) < k-1 {
		cuts[1+g.Intn(n-1)] = true
	}
	pts := []int{0}
	for c := range cuts {
		pts = append(pts, c)
	}
	pts = append(pts, n)
	sort.Ints(pts)
	return pts
}

func meanJSON(t *testing.T, m *Mean) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestMeanMergeMatchesSingleFold is the core merge law: fold samples
// into one accumulator, versus splitting them into random contiguous
// shards, folding each shard separately, and merging the shards back in
// a random order and grouping. Everything must be bit-identical — the
// serialized state, the mean, and the variance.
func TestMeanMergeMatchesSingleFold(t *testing.T) {
	g := NewRNG(42)
	for trial := 0; trial < 50; trial++ {
		n := 50 + g.Intn(500)
		xs := randomSamples(g, n)

		var whole Mean
		for _, x := range xs {
			whole.Add(x)
		}
		want := meanJSON(t, &whole)

		k := 2 + g.Intn(7)
		pts := splitPoints(g, n, k)
		parts := make([]*Mean, k)
		for i := 0; i < k; i++ {
			parts[i] = &Mean{}
			for _, x := range xs[pts[i]:pts[i+1]] {
				parts[i].Add(x)
			}
		}
		// Merge in a random order with left-fold grouping; associativity
		// plus commutativity of the exact sums means any order must give
		// the same canonical state.
		perm := g.Perm(k)
		var merged Mean
		for _, pi := range perm {
			merged.Merge(parts[pi])
		}

		if got := meanJSON(t, &merged); got != want {
			t.Fatalf("trial %d (n=%d k=%d): merged state %s != whole state %s", trial, n, k, got, want)
		}
		if merged.Mean() != whole.Mean() || merged.Var() != whole.Var() {
			t.Fatalf("trial %d: merged mean/var (%v, %v) != whole (%v, %v)",
				trial, merged.Mean(), merged.Var(), whole.Mean(), whole.Var())
		}
	}
}

// TestMeanMergeAssociative checks (a⊔b)⊔c == a⊔(b⊔c) bitwise, via the
// exported MeanState.Merge.
func TestMeanMergeAssociative(t *testing.T) {
	g := NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		states := make([]MeanState, 3)
		for i := range states {
			var m Mean
			for _, x := range randomSamples(g, 10+g.Intn(100)) {
				m.Add(x)
			}
			states[i] = m.State()
		}
		left := states[0].Merge(states[1]).Merge(states[2])
		right := states[0].Merge(states[1].Merge(states[2]))
		lb, _ := json.Marshal(left)
		rb, _ := json.Marshal(right)
		if string(lb) != string(rb) {
			t.Fatalf("trial %d: (a·b)·c = %s but a·(b·c) = %s", trial, lb, rb)
		}
	}
}

// TestMeanExactOnHostileSum: the exact-summation core must recover sums
// that plain left-to-right addition destroys.
func TestMeanExactOnHostileSum(t *testing.T) {
	var m Mean
	for _, x := range []float64{1e100, 1, -1e100, 1} {
		m.Add(x)
	}
	if got := sumPartials(m.sum); got != 2 {
		t.Fatalf("exact sum = %v, want 2", got)
	}
	if got := m.Mean(); got != 0.5 {
		t.Fatalf("mean = %v, want 0.5", got)
	}
}

func sketchJSON(t *testing.T, s *MergingSketch) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestSketchMergeMatchesSingleFold: same shard-split/merge law as the
// mean accumulator, for the quantile sketch. Bucket counts are
// integers, so the whole serialized sketch — and every quantile read
// from it — must be bit-identical however the samples were sharded.
func TestSketchMergeMatchesSingleFold(t *testing.T) {
	g := NewRNG(99)
	for trial := 0; trial < 30; trial++ {
		n := 50 + g.Intn(500)
		xs := randomSamples(g, n)

		whole := NewMergingSketch(0)
		for _, x := range xs {
			whole.Add(x)
		}
		want := sketchJSON(t, &whole)

		k := 2 + g.Intn(7)
		pts := splitPoints(g, n, k)
		parts := make([]*MergingSketch, k)
		for i := 0; i < k; i++ {
			sk := NewMergingSketch(0)
			for _, x := range xs[pts[i]:pts[i+1]] {
				sk.Add(x)
			}
			parts[i] = &sk
		}
		perm := g.Perm(k)
		merged := NewMergingSketch(0)
		for _, pi := range perm {
			if err := merged.Merge(parts[pi]); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}

		if got := sketchJSON(t, &merged); got != want {
			t.Fatalf("trial %d (n=%d k=%d): merged sketch %s != whole %s", trial, n, k, got, want)
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 1} {
			if merged.Quantile(p) != whole.Quantile(p) {
				t.Fatalf("trial %d: q(%v) merged %v != whole %v", trial, p, merged.Quantile(p), whole.Quantile(p))
			}
		}
	}
}

// TestSketchAccuracy: quantile estimates must be within the documented
// relative error alpha of the exact nearest-rank sample.
func TestSketchAccuracy(t *testing.T) {
	g := NewRNG(5)
	const n = 10000
	xs := make([]float64, n)
	sk := NewMergingSketch(0)
	for i := range xs {
		// Positive, spread over several decades, like the day-scale
		// makespans and unit-scale fractions the study records.
		xs[i] = g.Lognormal(0, 2)
		sk.Add(xs[i])
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		rank := int(math.Ceil(p * n))
		exact := sorted[rank-1]
		got := sk.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > DefaultSketchAlpha+1e-9 {
			t.Errorf("q(%v): got %v, exact %v, relative error %v > %v", p, got, exact, rel, DefaultSketchAlpha)
		}
	}
	if sk.Quantile(0) != sorted[0] {
		t.Errorf("q(0) = %v, want exact min %v", sk.Quantile(0), sorted[0])
	}
	if sk.Quantile(1) != sorted[n-1] {
		t.Errorf("q(1) = %v, want exact max %v", sk.Quantile(1), sorted[n-1])
	}
}

// TestSketchZeroAndNegative: the zero bucket and mirrored negative
// store keep signed data exact in rank.
func TestSketchZeroAndNegative(t *testing.T) {
	sk := NewMergingSketch(0)
	for _, x := range []float64{-4, -2, 0, 0, 1, 3} {
		sk.Add(x)
	}
	if got := sk.Quantile(0); got != -4 {
		t.Errorf("q(0) = %v, want -4", got)
	}
	if got := sk.Quantile(0.5); got != 0 {
		t.Errorf("q(0.5) = %v, want 0 (rank 3 of 6)", got)
	}
	if got := sk.Quantile(1); got != 3 {
		t.Errorf("q(1) = %v, want 3", got)
	}
	if q := sk.Quantile(0.3); q != -2 && (q > -2*(1-DefaultSketchAlpha) || q < -2*(1+DefaultSketchAlpha)) {
		t.Errorf("q(0.3) = %v, want within alpha of -2", q)
	}
}

// TestSketchMergeEmpty: merging with an empty sketch in either
// direction is the identity, and absorbing into an empty sketch is a
// deep copy — later additions to one side must not leak into the
// other through a shared bin slice.
func TestSketchMergeEmpty(t *testing.T) {
	full := NewMergingSketch(0)
	for _, x := range []float64{-3, 0, 0.5, 7} {
		full.Add(x)
	}
	before, err := json.Marshal(&full)
	if err != nil {
		t.Fatal(err)
	}

	empty := NewMergingSketch(0)
	if err := full.Merge(&empty); err != nil {
		t.Fatalf("merging an empty sketch in: %v", err)
	}
	if after, _ := json.Marshal(&full); string(after) != string(before) {
		t.Errorf("merge with empty changed the sketch:\n before %s\n after  %s", before, after)
	}

	if err := empty.Merge(&full); err != nil {
		t.Fatalf("merging into an empty sketch: %v", err)
	}
	if got, _ := json.Marshal(&empty); string(got) != string(before) {
		t.Errorf("empty.Merge(full) is not a faithful copy:\n want %s\n got  %s", before, got)
	}
	empty.Add(1e6)
	if after, _ := json.Marshal(&full); string(after) != string(before) {
		t.Errorf("mutating the copy leaked into the source:\n before %s\n after  %s", before, after)
	}
}

// TestSketchAllEqual: a degenerate one-bucket distribution — every
// quantile of N identical samples is that sample exactly, because the
// [Min, Max] clamp collapses the bucket's representative error.
func TestSketchAllEqual(t *testing.T) {
	sk := NewMergingSketch(0)
	for i := 0; i < 1000; i++ {
		sk.Add(42)
	}
	if sk.N() != 1000 {
		t.Fatalf("N = %d, want 1000", sk.N())
	}
	for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.99, 1} {
		if got := sk.Quantile(p); got != 42 {
			t.Errorf("q(%v) = %v, want exactly 42", p, got)
		}
	}
}

// TestSketchNegativeAndZeroOnly: a sample set with no positive mass
// exercises the mirrored store and zero counter on their own — the
// positive scan must contribute nothing.
func TestSketchNegativeAndZeroOnly(t *testing.T) {
	sk := NewMergingSketch(0)
	for _, x := range []float64{-8, -4, -2, -1, 0, 0, 0} {
		sk.Add(x)
	}
	if got := sk.Quantile(0); got != -8 {
		t.Errorf("q(0) = %v, want exact min -8", got)
	}
	if got := sk.Quantile(1); got != 0 {
		t.Errorf("q(1) = %v, want exact max 0", got)
	}
	// Rank 4 of 7: the sample -1, accurate to alpha and sign-correct.
	if got := sk.Quantile(0.5); got >= 0 || math.Abs(got-(-1)) > DefaultSketchAlpha+1e-9 {
		t.Errorf("q(0.5) = %v, want within alpha of -1", got)
	}
	// Rank 6 of 7 lands in the zero bucket.
	if got := sk.Quantile(0.8); got != 0 {
		t.Errorf("q(0.8) = %v, want 0", got)
	}
}

// TestSketchMultiWayMergeExtremes: after folding several shards
// together, q(0) and q(1) are the exact global min and max — the
// tracked extremes must survive merging, not just single-stream Adds.
func TestSketchMultiWayMergeExtremes(t *testing.T) {
	g := NewRNG(11)
	var all []float64
	parts := make([]MergingSketch, 5)
	for i := range parts {
		parts[i] = NewMergingSketch(0)
		for j := 0; j < 200; j++ {
			x := g.Uniform(-50, 50)
			parts[i].Add(x)
			all = append(all, x)
		}
	}
	merged := NewMergingSketch(0)
	for i := range parts {
		if err := merged.Merge(&parts[i]); err != nil {
			t.Fatalf("merging shard %d: %v", i, err)
		}
	}
	sort.Float64s(all)
	if merged.N() != int64(len(all)) {
		t.Fatalf("N = %d, want %d", merged.N(), len(all))
	}
	if got := merged.Quantile(0); got != all[0] {
		t.Errorf("q(0) = %v, want exact min %v", got, all[0])
	}
	if got := merged.Quantile(1); got != all[len(all)-1] {
		t.Errorf("q(1) = %v, want exact max %v", got, all[len(all)-1])
	}
}

func TestSketchAlphaMismatch(t *testing.T) {
	a := NewMergingSketch(0.01)
	b := NewMergingSketch(0.05)
	a.Add(1)
	b.Add(2)
	if err := a.Merge(&b); err == nil {
		t.Fatal("merging sketches with different alpha should fail")
	}
	empty := NewMergingSketch(0.05)
	if err := a.Merge(&empty); err != nil {
		t.Fatalf("merging an empty sketch should succeed, got %v", err)
	}
}

// TestCanonicalPartialsDeterministic: different partials lists
// representing the same exact value canonicalize identically.
func TestCanonicalPartialsDeterministic(t *testing.T) {
	g := NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		xs := randomSamples(g, 40)
		var a, b []float64
		for _, x := range xs {
			a = addPartial(a, x)
		}
		perm := g.Perm(len(xs))
		for _, i := range perm {
			b = addPartial(b, xs[i])
		}
		ca, cb := canonicalPartials(a), canonicalPartials(b)
		if len(ca) != len(cb) {
			t.Fatalf("trial %d: canonical lengths differ: %v vs %v", trial, ca, cb)
		}
		for i := range ca {
			if math.Float64bits(ca[i]) != math.Float64bits(cb[i]) {
				t.Fatalf("trial %d: canonical forms differ: %v vs %v", trial, ca, cb)
			}
		}
	}
}
