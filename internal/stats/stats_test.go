package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkDecorrelates(t *testing.T) {
	g := NewRNG(1)
	a := g.Fork("availability")
	b := NewRNG(1).Fork("runtimes")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("forked streams with different labels agree on %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(2, 5)
		if x < 2 || x >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", x)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 2000; i++ {
		x := g.TruncNormal(1000, 500, 100, 3000)
		if x < 100 || x > 3000 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
}

func TestTruncNormalZeroStdev(t *testing.T) {
	g := NewRNG(3)
	if x := g.TruncNormal(50, 0, 0, 100); x != 50 {
		t.Fatalf("TruncNormal with stdev 0 = %v, want 50", x)
	}
	if x := g.TruncNormal(500, 0, 0, 100); x != 100 {
		t.Fatalf("TruncNormal clamps mean to hi: got %v, want 100", x)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(11)
	var m Mean
	for i := 0; i < 50000; i++ {
		m.Add(g.Exp(3600))
	}
	if math.Abs(m.Mean()-3600) > 100 {
		t.Fatalf("Exp(3600) sample mean = %v, want ~3600", m.Mean())
	}
	if g.Exp(0) != 0 || g.Exp(-5) != 0 {
		t.Fatal("Exp with nonpositive mean should be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(13)
	var m Mean
	for i := 0; i < 50000; i++ {
		m.Add(g.Normal(10, 2))
	}
	if math.Abs(m.Mean()-10) > 0.1 {
		t.Fatalf("Normal mean = %v, want ~10", m.Mean())
	}
	if math.Abs(m.Stdev()-2) > 0.1 {
		t.Fatalf("Normal stdev = %v, want ~2", m.Stdev())
	}
}

func TestLognormalMedian(t *testing.T) {
	g := NewRNG(17)
	n, below := 20000, 0
	for i := 0; i < n; i++ {
		if g.Lognormal(0, 0.5) < 1 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("Lognormal(0,.5) median fraction below 1 = %v, want ~0.5", frac)
	}
}

func TestMeanWelford(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 || m.Mean() != 5 {
		t.Fatalf("mean = %v (n=%d), want 5 (8)", m.Mean(), m.N())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(m.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v, want %v", m.Var(), 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Var() != 0 || m.CI95() != 0 {
		t.Fatal("empty Mean should report zeros")
	}
}

func TestRMS(t *testing.T) {
	var r RMS
	r.Add(3)
	r.Add(4)
	want := math.Sqrt(12.5)
	if math.Abs(r.Value()-want) > 1e-12 {
		t.Fatalf("RMS = %v, want %v", r.Value(), want)
	}
	var empty RMS
	if empty.Value() != 0 {
		t.Fatal("empty RMS should be 0")
	}
}

func TestDecayAvgHalfLife(t *testing.T) {
	d := DecayAvg{HalfLife: 100}
	d.Add(0, 8)
	if v := d.Value(100); math.Abs(v-4) > 1e-12 {
		t.Fatalf("after one half-life: %v, want 4", v)
	}
	if v := d.Value(300); math.Abs(v-1) > 1e-12 {
		t.Fatalf("after three half-lives: %v, want 1", v)
	}
}

func TestDecayAvgNoDecay(t *testing.T) {
	d := DecayAvg{} // HalfLife 0: plain accumulator
	d.Add(0, 5)
	d.Add(1000, 5)
	if v := d.Value(1e9); v != 10 {
		t.Fatalf("no-decay accumulator = %v, want 10", v)
	}
}

func TestDecayAvgTimeMonotone(t *testing.T) {
	d := DecayAvg{HalfLife: 50}
	d.Add(100, 10)
	// Asking for an earlier time must not rewind the accumulator.
	v1 := d.Value(100)
	v2 := d.Value(50)
	if v1 != v2 {
		t.Fatalf("Value at earlier time changed accumulator: %v vs %v", v1, v2)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1}, {math.NaN(), 0},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Fatalf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPropertyDecayNonincreasing(t *testing.T) {
	f := func(amount, dt1, dt2 float64) bool {
		amount = math.Abs(amount)
		dt1, dt2 = math.Abs(dt1), math.Abs(dt2)
		if math.IsNaN(amount) || math.IsInf(amount, 0) || math.IsNaN(dt1) || math.IsNaN(dt2) || math.IsInf(dt1, 0) || math.IsInf(dt2, 0) {
			return true
		}
		d := DecayAvg{HalfLife: 3600}
		d.Add(0, amount)
		v1 := d.Value(dt1)
		v2 := d.Value(dt1 + dt2)
		return v2 <= v1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyClampRange(t *testing.T) {
	f := func(x float64) bool {
		v := Clamp01(x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
