// Exact float64 summation via error-free transformations (Shewchuk's
// expansion arithmetic, the algorithm behind Python's math.fsum). A sum
// is kept as a list of non-overlapping "partials" whose mathematical
// sum equals the true real-number sum of everything added — no rounding
// error accumulates, ever. That exactness is what makes the population
// study's aggregates mergeable with bit-identical results: the exact
// sum of a multiset of floats does not depend on the order or grouping
// of the additions, so folding shards separately and merging them
// reproduces the single-process fold down to the last bit.
package stats

import "math"

// addPartial folds x into the partials list in place, preserving the
// invariant that the partials are non-overlapping and ordered by
// increasing magnitude, and that their exact sum is unchanged plus x.
// This is the inner loop of fsum: every two-sum is an error-free
// transformation, so no information is lost.
//
//bce:hotpath
func addPartial(partials []float64, x float64) []float64 {
	i := 0
	for _, y := range partials {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			partials[i] = lo
			i++
		}
		x = hi
	}
	// Non-overlapping partials of a float64 sum number at most a few
	// dozen, so growth stops almost immediately on real sample streams.
	return append(partials[:i], x) //bce:allocok amortized growth of the caller's retained partials buffer
}

// sumPartials returns the correctly-rounded float64 nearest the exact
// sum of the partials (CPython's fsum rounding step, including the
// round-half-even correction for exact halfway cases).
func sumPartials(p []float64) float64 {
	n := len(p)
	if n == 0 {
		return 0
	}
	hi := p[n-1]
	lo := 0.0
	i := n - 1
	for i > 0 {
		i--
		x, y := hi, p[i]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	// Exact halfway case: look one partial further down to decide the
	// rounding direction (round half to even would otherwise be decided
	// by information the two-sum already discarded).
	if i > 0 && ((lo < 0 && p[i-1] < 0) || (lo > 0 && p[i-1] > 0)) {
		y := lo * 2
		x := hi + y
		if yr := x - hi; y == yr {
			hi = x
		}
	}
	return hi
}

// canonicalPartials reduces a partials list to the canonical expansion
// of its exact sum: the first component is the correctly-rounded sum,
// the second the correctly-rounded remainder, and so on until the
// remainder is exactly zero. The result is a pure function of the exact
// real value — two partials lists built by different add/merge orders
// that represent the same exact sum canonicalize to identical bits,
// which is what makes serialized aggregate state comparable byte-for-
// byte across shard topologies. Components come out in increasing
// magnitude, ready to be used as a partials list again.
func canonicalPartials(partials []float64) []float64 {
	ps := append([]float64(nil), partials...)
	var desc []float64
	// An exact sum of float64s is a dyadic rational; each peeled
	// component removes at least 53 bits, so the loop terminates well
	// inside the exponent range. The cap is an unreachable safety net.
	for range [64]struct{}{} {
		v := sumPartials(ps)
		if v == 0 {
			break
		}
		desc = append(desc, v)
		ps = addPartial(ps, -v)
	}
	if len(desc) == 0 {
		return nil
	}
	for i, j := 0, len(desc)-1; i < j; i, j = i+1, j-1 {
		desc[i], desc[j] = desc[j], desc[i]
	}
	return desc
}

// mergePartials folds every partial of b into a, exactly.
func mergePartials(a []float64, b []float64) []float64 {
	for _, x := range b {
		a = addPartial(a, x)
	}
	return a
}
