package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestP2QuantileUniform(t *testing.T) {
	rng := NewRNG(7)
	for _, p := range []float64{0.25, 0.5, 0.9} {
		q := NewP2Quantile(p)
		for i := 0; i < 20000; i++ {
			q.Add(rng.Float64())
		}
		if got := q.Value(); math.Abs(got-p) > 0.02 {
			t.Errorf("p=%g: estimate %g, want within 0.02", p, got)
		}
	}
}

func TestP2QuantileNormalMedian(t *testing.T) {
	rng := NewRNG(11)
	q := NewP2Quantile(0.5)
	for i := 0; i < 20000; i++ {
		q.Add(rng.Normal(3, 2))
	}
	if got := q.Value(); math.Abs(got-3) > 0.1 {
		t.Errorf("normal median estimate %g, want ~3", got)
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty sketch should report 0")
	}
	q.Add(5)
	if q.Value() != 5 {
		t.Fatalf("one sample: %g, want 5", q.Value())
	}
	q.Add(1)
	q.Add(9)
	if got := q.Value(); got != 5 {
		t.Fatalf("three samples median %g, want 5", got)
	}
}

// The engine's checkpoint guarantee rests on sketches resuming
// bit-identically: fold half, round-trip through JSON, fold the rest —
// the state must match an uninterrupted fold exactly.
func TestQuantileSketchJSONResumeBitIdentical(t *testing.T) {
	rng1 := NewRNG(3)
	straight := NewQuantileSketch()
	resumed := NewQuantileSketch()
	for i := 0; i < 5000; i++ {
		x := rng1.Lognormal(0, 1)
		straight.Add(x)
		resumed.Add(x)
	}
	blob, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	var reloaded QuantileSketch
	if err := json.Unmarshal(blob, &reloaded); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		x := rng1.Lognormal(0, 1)
		straight.Add(x)
		reloaded.Add(x)
	}
	a, _ := json.Marshal(straight)
	b, _ := json.Marshal(reloaded)
	if string(a) != string(b) {
		t.Fatalf("resumed sketch diverged:\n%s\n%s", a, b)
	}
}

func TestMeanStateRoundTrip(t *testing.T) {
	rng := NewRNG(5)
	var straight, front Mean
	for i := 0; i < 1000; i++ {
		x := rng.Normal(0, 1)
		straight.Add(x)
		front.Add(x)
	}
	blob, err := json.Marshal(front.State())
	if err != nil {
		t.Fatal(err)
	}
	var st MeanState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	back := MeanFromState(st)
	for i := 0; i < 1000; i++ {
		x := rng.Normal(2, 3)
		straight.Add(x)
		back.Add(x)
	}
	if back.Mean() != straight.Mean() || back.Var() != straight.Var() || back.N() != straight.N() {
		t.Fatalf("state round-trip diverged: %v/%v vs %v/%v",
			back.Mean(), back.Var(), straight.Mean(), straight.Var())
	}
}

func TestQuantileSketchUnknownTarget(t *testing.T) {
	s := NewQuantileSketch(0.5)
	if _, err := s.Quantile(0.9); err == nil {
		t.Fatal("untracked quantile accepted")
	}
	s.Add(1)
	if v, err := s.Quantile(0.5); err != nil || v != 1 {
		t.Fatalf("tracked quantile: %v, %v", v, err)
	}
}
