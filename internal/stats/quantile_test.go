package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestP2QuantileUniform(t *testing.T) {
	rng := NewRNG(7)
	for _, p := range []float64{0.25, 0.5, 0.9} {
		q := NewP2Quantile(p)
		for i := 0; i < 20000; i++ {
			q.Add(rng.Float64())
		}
		if got := q.Value(); math.Abs(got-p) > 0.02 {
			t.Errorf("p=%g: estimate %g, want within 0.02", p, got)
		}
	}
}

func TestP2QuantileNormalMedian(t *testing.T) {
	rng := NewRNG(11)
	q := NewP2Quantile(0.5)
	for i := 0; i < 20000; i++ {
		q.Add(rng.Normal(3, 2))
	}
	if got := q.Value(); math.Abs(got-3) > 0.1 {
		t.Errorf("normal median estimate %g, want ~3", got)
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty sketch should report 0")
	}
	q.Add(5)
	if q.Value() != 5 {
		t.Fatalf("one sample: %g, want 5", q.Value())
	}
	q.Add(1)
	q.Add(9)
	if got := q.Value(); got != 5 {
		t.Fatalf("three samples median %g, want 5", got)
	}
}

// The engine's checkpoint guarantee rests on sketches resuming
// bit-identically: fold half, round-trip through JSON, fold the rest —
// the state must match an uninterrupted fold exactly.
func TestQuantileSketchJSONResumeBitIdentical(t *testing.T) {
	rng1 := NewRNG(3)
	straight := NewQuantileSketch()
	resumed := NewQuantileSketch()
	for i := 0; i < 5000; i++ {
		x := rng1.Lognormal(0, 1)
		straight.Add(x)
		resumed.Add(x)
	}
	blob, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	var reloaded QuantileSketch
	if err := json.Unmarshal(blob, &reloaded); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		x := rng1.Lognormal(0, 1)
		straight.Add(x)
		reloaded.Add(x)
	}
	a, _ := json.Marshal(straight)
	b, _ := json.Marshal(reloaded)
	if string(a) != string(b) {
		t.Fatalf("resumed sketch diverged:\n%s\n%s", a, b)
	}
}

func TestMeanStateRoundTrip(t *testing.T) {
	rng := NewRNG(5)
	var straight, front Mean
	for i := 0; i < 1000; i++ {
		x := rng.Normal(0, 1)
		straight.Add(x)
		front.Add(x)
	}
	blob, err := json.Marshal(front.State())
	if err != nil {
		t.Fatal(err)
	}
	var st MeanState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	back := MeanFromState(st)
	for i := 0; i < 1000; i++ {
		x := rng.Normal(2, 3)
		straight.Add(x)
		back.Add(x)
	}
	if back.Mean() != straight.Mean() || back.Var() != straight.Var() || back.N() != straight.N() {
		t.Fatalf("state round-trip diverged: %v/%v vs %v/%v",
			back.Mean(), back.Var(), straight.Mean(), straight.Var())
	}
}

func TestQuantileSketchUnknownTarget(t *testing.T) {
	s := NewQuantileSketch(0.5)
	if _, err := s.Quantile(0.9); err == nil {
		t.Fatal("untracked quantile accepted")
	}
	s.Add(1)
	if v, err := s.Quantile(0.5); err != nil || v != 1 {
		t.Fatalf("tracked quantile: %v, %v", v, err)
	}
}

// Small-sample Value must follow the standard nearest-rank definition:
// the ceil(p·N)-th smallest observation. The old int(p*N) floor indexed
// one element low (e.g. the p90 of two samples returned the smaller).
func TestP2QuantileSmallSampleNearestRank(t *testing.T) {
	cases := []struct {
		p    float64
		obs  []float64
		want float64
	}{
		// N=1: every quantile is the single observation.
		{0.1, []float64{7}, 7},
		{0.5, []float64{7}, 7},
		{0.99, []float64{7}, 7},
		// N=2: ceil(0.5·2)=1st for the median, 2nd for p90/p99.
		{0.5, []float64{10, 20}, 10},
		{0.9, []float64{10, 20}, 20},
		{0.99, []float64{10, 20}, 20},
		{0.25, []float64{10, 20}, 10},
		// N=3: median is the 2nd smallest, p90/p99 the 3rd.
		{0.5, []float64{1, 5, 9}, 5},
		{0.9, []float64{1, 5, 9}, 9},
		{0.1, []float64{1, 5, 9}, 1},
		// N=4: ceil(0.5·4)=2nd, ceil(0.9·4)=4th, ceil(0.25·4)=1st.
		{0.5, []float64{2, 4, 6, 8}, 4},
		{0.9, []float64{2, 4, 6, 8}, 8},
		{0.25, []float64{2, 4, 6, 8}, 2},
		{0.75, []float64{2, 4, 6, 8}, 6},
	}
	for _, c := range cases {
		q := NewP2Quantile(c.p)
		// Insert in reverse to exercise the sorted-insert path too.
		for i := len(c.obs) - 1; i >= 0; i-- {
			q.Add(c.obs[i])
		}
		if got := q.Value(); got != c.want {
			t.Errorf("p%g of %v = %g, want %g", c.p*100, c.obs, got, c.want)
		}
	}
}
