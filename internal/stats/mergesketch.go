package stats

import (
	"fmt"
	"math"
)

// DefaultSketchAlpha is the relative-accuracy parameter used by
// MergingSketch when none is set: quantile values are accurate to
// within 1% of the true sample value at the queried rank.
const DefaultSketchAlpha = 0.01

// Bucket indices are clamped to this symmetric range, which covers
// every normal positive float64 at the default accuracy (|ln x|/ln γ <
// 35,500 for the full double exponent range); only subnormals and
// values beyond ~1e308 ever hit the clamp.
const sketchMaxIndex = 36000

// SketchBin is one log-spaced bucket of a MergingSketch: bucket key K
// holds N samples. Bins serialize in ascending-K order, so two sketches
// with the same bucket contents encode byte-for-byte identically.
type SketchBin struct {
	K int32 `json:"k"`
	N int64 `json:"n"`
}

// MergingSketch is a mergeable quantile sketch over float64 samples,
// built on log-spaced buckets (the DDSketch construction): a positive
// sample x lands in bucket ⌈ln(x)/ln γ⌉ with γ = (1+α)/(1−α), negative
// samples mirror into a second store, and zeros get their own counter.
// Every bucket boundary is a pure function of α, so merging two
// sketches is pointwise integer addition of bucket counts — exactly
// associative, commutative, and order-insensitive, which makes sharded
// population studies reproduce the single-process sketch bit-for-bit.
//
// Accuracy: Quantile(p) returns a value within relative error α of the
// sample at rank ⌈p·N⌉ of the sorted input (rank selection itself is
// exact — integer counts — so the error is purely the bucket's value
// resolution), except for samples clamped at the index range, where
// only ordering is preserved. Memory is one bin per occupied bucket:
// bounded by the spread of the data, not the sample count.
//
// The zero value is ready to use and assumes DefaultSketchAlpha. All
// fields are exported only for JSON checkpointing; mutate through
// methods.
type MergingSketch struct {
	Alpha float64     `json:"alpha,omitempty"`
	Count int64       `json:"count"`
	Zero  int64       `json:"zero,omitempty"`
	Pos   []SketchBin `json:"pos,omitempty"` // ascending K
	Neg   []SketchBin `json:"neg,omitempty"` // ascending K; bucket of |x|
	Min   float64     `json:"min"`           // exact smallest sample (0 when empty)
	Max   float64     `json:"max"`           // exact largest sample (0 when empty)
}

// NewMergingSketch returns an empty sketch with the given relative
// accuracy; alpha <= 0 selects DefaultSketchAlpha.
func NewMergingSketch(alpha float64) MergingSketch {
	if alpha <= 0 {
		alpha = DefaultSketchAlpha
	}
	return MergingSketch{Alpha: alpha}
}

func (s *MergingSketch) alpha() float64 {
	if s.Alpha <= 0 {
		return DefaultSketchAlpha
	}
	return s.Alpha
}

func (s *MergingSketch) gamma() float64 {
	a := s.alpha()
	return (1 + a) / (1 - a)
}

// key maps a positive magnitude to its bucket index.
func (s *MergingSketch) key(x float64) int32 {
	k := math.Ceil(math.Log(x) / math.Log(s.gamma()))
	if k > sketchMaxIndex {
		return sketchMaxIndex
	}
	if k < -sketchMaxIndex {
		return -sketchMaxIndex
	}
	return int32(k)
}

// rep returns the representative magnitude of bucket k: the value whose
// relative distance to every point of the bucket (γ^(k−1), γ^k] is at
// most α.
func (s *MergingSketch) rep(k int32) float64 {
	g := s.gamma()
	return 2 * math.Pow(g, float64(k)) / (g + 1)
}

//bce:hotpath
func addBin(bins []SketchBin, k int32, n int64) []SketchBin {
	// Inlined binary search for the first bin with K >= k: sort.Search
	// takes its predicate as a closure, which costs an allocation per
	// sample on the sketch's hot path.
	i, hi := 0, len(bins)
	for i < hi {
		mid := int(uint(i+hi) >> 1)
		if bins[mid].K < k {
			i = mid + 1
		} else {
			hi = mid
		}
	}
	if i < len(bins) && bins[i].K == k {
		bins[i].N += n
		return bins
	}
	bins = append(bins, SketchBin{})
	copy(bins[i+1:], bins[i:])
	bins[i] = SketchBin{K: k, N: n}
	return bins
}

// Add folds one sample into the sketch. NaN samples are ignored;
// infinities are recorded at the clamped extreme bucket.
//
//bce:hotpath
func (s *MergingSketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if s.Count == 0 || x < s.Min {
		s.Min = x
	}
	if s.Count == 0 || x > s.Max {
		s.Max = x
	}
	s.Count++
	switch {
	case x == 0:
		s.Zero++
	case x > 0:
		s.Pos = addBin(s.Pos, s.key(x), 1)
	default:
		s.Neg = addBin(s.Neg, s.key(-x), 1)
	}
}

// N returns the number of samples folded in.
func (s *MergingSketch) N() int64 { return s.Count }

// Merge folds every sample counted by o into s: pointwise bucket
// addition, so the result is bit-identical to a single sketch that saw
// both sample streams in any order. The two sketches must share the
// same accuracy parameter (an empty sketch merges with anything).
func (s *MergingSketch) Merge(o *MergingSketch) error {
	if o.Count == 0 {
		return nil
	}
	if s.Count == 0 {
		*s = MergingSketch{
			Alpha: o.Alpha,
			Count: o.Count,
			Zero:  o.Zero,
			Pos:   append([]SketchBin(nil), o.Pos...),
			Neg:   append([]SketchBin(nil), o.Neg...),
			Min:   o.Min,
			Max:   o.Max,
		}
		return nil
	}
	if s.alpha() != o.alpha() {
		return fmt.Errorf("stats: merging sketches with different accuracy (alpha %v vs %v)", s.alpha(), o.alpha())
	}
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Zero += o.Zero
	for _, b := range o.Pos {
		s.Pos = addBin(s.Pos, b.K, b.N)
	}
	for _, b := range o.Neg {
		s.Neg = addBin(s.Neg, b.K, b.N)
	}
	return nil
}

// Quantile returns an α-accurate estimate of the p-quantile: the
// representative value of the bucket holding the sample at nearest rank
// ⌈p·N⌉, clamped into [Min, Max] so the tails return the exact extreme
// samples. Returns 0 on an empty sketch; p is clamped to [0,1].
func (s *MergingSketch) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	// The extreme ranks are tracked exactly; return them directly so
	// q(0) and q(1) are the true min and max samples.
	if rank == 1 {
		return s.Min
	}
	if rank == s.Count {
		return s.Max
	}
	var v float64
	seen := int64(0)
	found := false
	// Ascending sample order: most-negative first (descending K in the
	// negative store), then zeros, then positives (ascending K).
	for i := len(s.Neg) - 1; i >= 0 && !found; i-- {
		seen += s.Neg[i].N
		if seen >= rank {
			v, found = -s.rep(s.Neg[i].K), true
		}
	}
	if !found {
		seen += s.Zero
		if seen >= rank {
			v, found = 0, true
		}
	}
	for i := 0; i < len(s.Pos) && !found; i++ {
		seen += s.Pos[i].N
		if seen >= rank {
			v, found = s.rep(s.Pos[i].K), true
		}
	}
	if !found {
		// Unreachable: bucket counts always sum to Count.
		v = s.Max
	}
	if v < s.Min {
		v = s.Min
	}
	if v > s.Max {
		v = s.Max
	}
	return v
}
