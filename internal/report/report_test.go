package report

import (
	"bytes"
	"strings"
	"testing"

	"bce/internal/client"
	"bce/internal/experiments"
	"bce/internal/fetch"
	"bce/internal/harness"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
	"bce/internal/sched"
)

func sampleFigure() *experiments.Figure {
	return &experiments.Figure{
		ID: "figX", Title: "sample sweep", XLabel: "bound", YLabel: "wasted",
		Labels: []string{"A", "B"},
		X:      []float64{1000, 1500, 2000},
		Y: map[string][]float64{
			"A": {0.5, 0.2, 0.1},
			"B": {0.5, 0.5, 0.4},
		},
		Notes: "A should fall faster",
	}
}

func barFigure() *experiments.Figure {
	return &experiments.Figure{
		ID: "figY", Title: "two bars", XLabel: "metric", YLabel: "value",
		Labels: []string{"L"},
		X:      []float64{0, 1},
		Y:      map[string][]float64{"L": {0.3, 0.6}},
	}
}

func tinyVariant(label string) harness.Variant {
	return harness.Variant{Label: label, Make: func(seed int64) client.Config {
		h := host.StdHost(1, 1e9, 0, 0)
		h.Prefs.MinQueue = 600
		h.Prefs.MaxQueue = 1800
		return client.Config{
			Host: h,
			Projects: []project.Spec{{
				Name: "p", Share: 1,
				Apps: []project.AppSpec{{
					Name: "a", Usage: job.Usage{AvgCPUs: 1},
					MeanDuration: 500, LatencyBound: 86400, CheckpointPeriod: 60,
				}},
			}},
			JobSched: sched.JSLocal,
			JobFetch: fetch.JFHysteresis,
			Duration: 3 * 3600,
			Seed:     seed,
		}
	}}
}

func render(t *testing.T, r *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFigureSection(t *testing.T) {
	r := New("test report")
	r.AddFigure(sampleFigure())
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	html := render(t, r)
	for _, want := range []string{
		"<!doctype html", "test report", "figX: sample sweep",
		"<polyline", "A should fall faster", "<table>", "0.5000",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestBarFigureSection(t *testing.T) {
	r := New("bars")
	r.AddFigure(barFigure())
	html := render(t, r)
	if !strings.Contains(html, "<rect") || strings.Contains(html, "<polyline") {
		t.Fatal("two-point figure should render as bars")
	}
}

func TestComparisonSection(t *testing.T) {
	cmp, err := harness.Compare([]harness.Variant{tinyVariant("P1"), tinyVariant("P2")}, harness.Seeds(1))
	if err != nil {
		t.Fatal(err)
	}
	r := New("cmp")
	r.AddComparison("policy shoot-out", cmp)
	html := render(t, r)
	for _, want := range []string{"policy shoot-out", "P1", "P2", "rpcs_per_job", "±"} {
		if !strings.Contains(html, want) {
			t.Fatalf("comparison report missing %q", want)
		}
	}
}

func TestSweepSection(t *testing.T) {
	sw, err := harness.Sweep("x", []float64{1, 2, 3},
		func(x float64) []harness.Variant { return []harness.Variant{tinyVariant("v")} },
		harness.Seeds(1))
	if err != nil {
		t.Fatal(err)
	}
	r := New("sweep")
	r.AddSweep("idle vs x", sw, "idle")
	html := render(t, r)
	if !strings.Contains(html, "idle vs x") || !strings.Contains(html, "<polyline") {
		t.Fatal("sweep section malformed")
	}
}

func TestProseEscaped(t *testing.T) {
	r := New("esc")
	r.AddProse("notes", "<script>alert(1)</script>")
	html := render(t, r)
	if strings.Contains(html, "<script>alert") {
		t.Fatal("prose not escaped")
	}
	if !strings.Contains(html, "&lt;script&gt;") {
		t.Fatal("escaped prose missing")
	}
}

func TestEmptyReport(t *testing.T) {
	html := render(t, New("empty"))
	if !strings.Contains(html, "empty") || !strings.Contains(html, "</html>") {
		t.Fatal("empty report malformed")
	}
}
