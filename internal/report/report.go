// Package report renders emulation studies — figure reproductions,
// policy comparisons, parameter sweeps — as a single self-contained
// HTML file with embedded SVG charts, the shareable artifact of a
// controller session (paper §4.3's "graphs summarizing the figures of
// merit").
package report

import (
	"fmt"
	"html/template"
	"io"
	"strings"

	"bce/internal/chart"
	"bce/internal/experiments"
	"bce/internal/harness"
	"bce/internal/metrics"
	"bce/internal/population"
)

// Report accumulates sections and renders them as one HTML document.
type Report struct {
	Title    string
	sections []section
}

type section struct {
	Heading string
	Prose   string
	SVG     template.HTML
	Table   template.HTML
}

// New starts an empty report.
func New(title string) *Report { return &Report{Title: title} }

// Len returns the number of sections added so far.
func (r *Report) Len() int { return len(r.sections) }

// AddFigure renders a reproduced paper figure: a line chart for sweeps
// (3+ x points), grouped bars otherwise, plus the data table.
func (r *Report) AddFigure(f *experiments.Figure) {
	c := chart.Chart{
		Title:  fmt.Sprintf("%s — %s", f.ID, f.Title),
		XLabel: f.XLabel,
		YLabel: f.YLabel,
	}
	var svg string
	if len(f.X) >= 3 && f.Labels != nil {
		for _, l := range f.Labels {
			c.Series = append(c.Series, chart.Series{Label: l, X: f.X, Y: f.Y[l]})
		}
		svg = c.LineSVG()
	} else {
		for _, l := range f.Labels {
			c.Series = append(c.Series, chart.Series{Label: l, Y: f.Y[l]})
		}
		for _, x := range f.X {
			c.Categories = append(c.Categories, fmt.Sprintf("%g", x))
		}
		svg = c.BarSVG()
	}

	var tb strings.Builder
	tb.WriteString("<table><tr><th>" + template.HTMLEscapeString(f.XLabel) + "</th>")
	for _, l := range f.Labels {
		tb.WriteString("<th>" + template.HTMLEscapeString(l) + "</th>")
	}
	tb.WriteString("</tr>\n")
	for i, x := range f.X {
		fmt.Fprintf(&tb, "<tr><td>%g</td>", x)
		for _, l := range f.Labels {
			fmt.Fprintf(&tb, "<td>%.4f</td>", f.Y[l][i])
		}
		tb.WriteString("</tr>\n")
	}
	tb.WriteString("</table>")

	r.sections = append(r.sections, section{
		Heading: f.ID + ": " + f.Title,
		Prose:   f.Notes,
		SVG:     template.HTML(svg), // chart output is generated, not user input
		Table:   template.HTML(tb.String()),
	})
}

// AddComparison renders a policy comparison as grouped bars over the
// five figures of merit plus the numeric table.
func (r *Report) AddComparison(heading string, cmp *harness.Comparison) {
	names := metrics.Names()
	c := chart.Chart{Title: heading, YLabel: "value (0 = good)", Categories: names[:]}
	for _, v := range cmp.Variants {
		agg := cmp.Aggs[v]
		c.Series = append(c.Series, chart.Series{Label: v, Y: agg.Mean[:]})
	}
	var tb strings.Builder
	tb.WriteString("<table><tr><th>policy</th>")
	for _, n := range names {
		tb.WriteString("<th>" + n + "</th>")
	}
	tb.WriteString("</tr>\n")
	for _, v := range cmp.Variants {
		agg := cmp.Aggs[v]
		fmt.Fprintf(&tb, "<tr><td>%s</td>", template.HTMLEscapeString(v))
		for i := range names {
			fmt.Fprintf(&tb, "<td>%.4f ± %.3f</td>", agg.Mean[i], agg.CI95[i])
		}
		tb.WriteString("</tr>\n")
	}
	tb.WriteString("</table>")
	r.sections = append(r.sections, section{
		Heading: heading,
		SVG:     template.HTML(c.BarSVG()),
		Table:   template.HTML(tb.String()),
	})
}

// AddPopulation renders a streaming population study: grouped bars of
// the population means over the five figures of merit, plus a table
// with confidence intervals and the paired-wins summary.
func (r *Report) AddPopulation(heading string, st *population.Study) {
	names := metrics.Names()
	c := chart.Chart{Title: heading, YLabel: "population mean (0 = good)", Categories: names[:]}
	for ci, combo := range st.Combos {
		ys := make([]float64, len(names))
		for m := range names {
			ys[m], _ = st.Mean(ci, m)
		}
		c.Series = append(c.Series, chart.Series{Label: combo.String(), Y: ys})
	}
	var tb strings.Builder
	tb.WriteString("<table><tr><th>policy</th>")
	for _, n := range names {
		tb.WriteString("<th>" + n + "</th>")
	}
	tb.WriteString("<th>failed</th></tr>\n")
	for ci, combo := range st.Combos {
		fmt.Fprintf(&tb, "<tr><td>%s</td>", template.HTMLEscapeString(combo.String()))
		for m := range names {
			mean, halfCI := st.Mean(ci, m)
			fmt.Fprintf(&tb, "<td>%.4f ± %.3f</td>", mean, halfCI)
		}
		fmt.Fprintf(&tb, "<td>%d</td></tr>\n", st.Aggs[ci].Failed)
	}
	tb.WriteString("</table>")
	tb.WriteString("<pre>" + template.HTMLEscapeString(st.WinsTable(2)+"\n"+st.WinsTable(4)) + "</pre>")
	r.sections = append(r.sections, section{
		Heading: heading,
		Prose:   fmt.Sprintf("%d scenarios sampled with seed %d.", st.Done, st.Seed),
		SVG:     template.HTML(c.BarSVG()),
		Table:   template.HTML(tb.String()),
	})
}

// AddSweep renders one metric of a parameter sweep as a line chart.
func (r *Report) AddSweep(heading string, sw *harness.SweepResult, metric string) {
	c := chart.Chart{Title: heading, XLabel: sw.Param, YLabel: metric}
	for _, v := range sw.Variants {
		xs, ys := sw.Series(v, metric)
		c.Series = append(c.Series, chart.Series{Label: v, X: xs, Y: ys})
	}
	var tb strings.Builder
	tb.WriteString("<pre>" + template.HTMLEscapeString(sw.Table(metric)) + "</pre>")
	r.sections = append(r.sections, section{
		Heading: heading,
		SVG:     template.HTML(c.LineSVG()),
		Table:   template.HTML(tb.String()),
	})
}

// AddProse adds a text-only section.
func (r *Report) AddProse(heading, text string) {
	r.sections = append(r.sections, section{Heading: heading, Prose: text})
}

var page = template.Must(template.New("report").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
 body { font-family: sans-serif; max-width: 64em; margin: 2em auto; color: #222; }
 h1 { border-bottom: 2px solid #4e79a7; padding-bottom: 0.2em; }
 h2 { margin-top: 2em; }
 table { border-collapse: collapse; margin: 1em 0; }
 td, th { border: 1px solid #ccc; padding: 0.3em 0.7em; text-align: right; font-size: 0.9em; }
 th { background: #f0f4f8; }
 pre { background: #f7f7f7; padding: 1em; overflow-x: auto; }
 .prose { max-width: 48em; }
</style></head>
<body>
<h1>{{.Title}}</h1>
{{range .Sections}}
<h2>{{.Heading}}</h2>
{{if .Prose}}<p class="prose">{{.Prose}}</p>{{end}}
{{.SVG}}
{{.Table}}
{{end}}
</body></html>
`))

// Render writes the HTML document.
func (r *Report) Render(w io.Writer) error {
	return page.Execute(w, struct {
		Title    string
		Sections []section
	}{r.Title, r.sections})
}
