package perf

import (
	"context"
	"net/http/httptest"
	"testing"

	"bce/internal/runner"
	"bce/internal/serve"
	"bce/internal/web"
)

// ServeSuite returns the job-service benchmarks: the async submission
// layer (internal/serve) measured in-process and over HTTP. These land
// in the BENCH ledger so service-layer regressions show up in the same
// trajectory as kernel ones; they are not part of the CI alloc gate.
func ServeSuite() []Bench {
	return []Bench{
		{Name: "serve_cache_hit", Doc: "content-addressed cache hit on the sync fast-path (fingerprint + LRU)", F: BenchServeCacheHit},
		{Name: "serve_submit_poll", Doc: "async ticket round-trip in-process: submit, watch to done", F: BenchServeSubmitPoll},
		{Name: "serve_loadgen", Doc: "HTTP submit→poll→result cycles against an in-process bceweb; reports p50/p99/rps", F: BenchServeLoadgen},
	}
}

// benchRequest is the fixed tiny submission the serve benches reuse.
func benchRequest(seed int64) serve.Request {
	s := serve.DefaultLoadgenScenario(0.02)
	s.Seed = seed
	return serve.Request{Kind: serve.KindRun, Scenario: s}
}

// BenchServeCacheHit measures the cache-hit path end to end: request
// fingerprinting plus the LRU lookup, no emulation. This is the cost
// every duplicate submission pays, so it must stay trivial next to a
// run.
func BenchServeCacheHit(b *testing.B) {
	svc := serve.New(serve.Config{Batch: runner.Options{Workers: 1}})
	//bce:ctxshim a benchmark is a call-tree root; there is no caller context to thread
	ctx := context.Background()
	req := benchRequest(1)
	if _, _, err := svc.Do(ctx, req); err != nil { // prewarm: first Do emulates and fills the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hit, err := svc.Do(ctx, req)
		if err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "hits/s")
}

// BenchServeSubmitPoll measures the full async ticket machinery
// in-process: enqueue a distinct tiny run, watch it to completion.
// Includes one real emulation per iteration, so it tracks queue and
// event-fanout overhead on top of the kernel floor.
func BenchServeSubmitPoll(b *testing.B) {
	svc := serve.New(serve.Config{Batch: runner.Options{Workers: 2}, QueueCap: 4, MaxJobs: 16})
	//bce:ctxshim a benchmark is a call-tree root; there is no caller context to thread
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := svc.Submit(benchRequest(runner.DeriveSeed(7, i)))
		if err != nil {
			b.Fatal(err)
		}
		ch, cancelW, err := svc.Watch(v.ID)
		if err != nil {
			b.Fatal(err)
		}
		for range ch {
		}
		cancelW()
		if view, err := svc.Job(v.ID); err != nil || view.State != serve.StateDone {
			b.Fatalf("job ended %+v (%v)", view, err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// loadgenRequests is the fixed per-iteration request count of the
// serve_loadgen bench; per-request metrics divide by it.
const loadgenRequests = 16

// BenchServeLoadgen measures the whole service over HTTP: an
// in-process bceweb (4 workers) driven by the closed-loop load
// generator, 16 submit→poll→result cycles per iteration. Reports the
// generator's p50/p99 (ms) and completed-request throughput, which is
// what `bcectl loadgen` reproduces against a live deployment.
func BenchServeLoadgen(b *testing.B) {
	srv := web.NewServer("")
	srv.Svc = serve.New(serve.Config{Batch: runner.Options{Workers: 4}, QueueCap: 64})
	//bce:ctxshim a benchmark is a call-tree root; there is no caller context to thread
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.Start(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	opts := serve.LoadgenOptions{
		URL:      ts.URL,
		Requests: loadgenRequests,
		// 8 clients against 4 workers keeps the queue nonempty without
		// tripping load-shedding.
		Concurrency: 8,
	}
	// Prewarm once so the one-off server spin-up (socket, first GC of
	// the pool) stays out of the measured section even at -benchtime 1x.
	if _, err := serve.Loadgen(ctx, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *serve.LoadgenResult
	for i := 0; i < b.N; i++ {
		// A fresh seed base per iteration keeps every submission a real
		// emulation; otherwise iteration 2+ would measure only the cache.
		scn := serve.DefaultLoadgenScenario(0)
		scn.Seed = runner.DeriveSeed(9, i+1)
		opts.Scenario = scn
		res, err := serve.Loadgen(ctx, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed > 0 {
			b.Fatalf("loadgen failed %d of %d requests", res.Failed, opts.Requests)
		}
		last = res
	}
	b.ReportMetric(float64(last.P50.Microseconds())/1e3, "p50_ms")
	b.ReportMetric(float64(last.P99.Microseconds())/1e3, "p99_ms")
	b.ReportMetric(last.Throughput, "rps")
}
